// Command p4lint runs the repository's domain-aware static-analysis
// passes over package patterns and reports file:line diagnostics. It
// exits non-zero when any diagnostic is found, so it gates CI alongside
// go vet and the race detector.
//
// Usage:
//
//	p4lint [-only locks,timeunits,...] [-syntactic|-deep] [-json|-gha] [pattern ...]
//
// Patterns are directories, optionally ending in /... to recurse
// (default "./..."). Examples:
//
//	go run ./cmd/p4lint ./...
//	go run ./cmd/p4lint -only regwidth ./internal/dataplane
//	go run ./cmd/p4lint -deep ./...
//	go run ./cmd/p4lint -json ./internal/... > lint.json
//	go run ./cmd/p4lint -gha ./...   # GitHub Actions ::error annotations
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	syntactic := flag.Bool("syntactic", false, "run only the per-package syntactic passes (cheap, no call graph)")
	deep := flag.Bool("deep", false, "run only the whole-program dataflow passes (hotpathprop, atomicmix, lockorder, determinism)")
	asJSON := flag.Bool("json", false, "emit diagnostics as a JSON array")
	asGHA := flag.Bool("gha", false, "emit diagnostics as GitHub Actions ::error annotations")
	flag.Usage = usage
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := analysis.All()
	if *syntactic {
		analyzers = analysis.Syntactic()
	}
	if *deep {
		analyzers = analysis.Deep()
	}
	if *only != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*only, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4lint:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4lint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4lint:", err)
		os.Exit(2)
	}
	// Surface hard type-check failures: analyzers silently miss bugs in
	// packages whose type information is incomplete.
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "p4lint: type error in %s: %v\n", pkg.Path, terr)
		}
	}

	diags := analysis.Run(pkgs, analyzers)
	switch {
	case *asJSON:
		if err := analysis.RenderJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "p4lint:", err)
			os.Exit(2)
		}
	case *asGHA:
		analysis.RenderGitHub(os.Stdout, diags)
	default:
		analysis.RenderText(os.Stdout, diags)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "p4lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: p4lint [-only a,b] [-deep] [-json|-gha] [pattern ...]\n\nanalyzers:\n")
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-13s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}
