// Command p4lint runs the repository's domain-aware static-analysis
// passes over package patterns and reports file:line diagnostics. It
// exits non-zero when any diagnostic is found, so it gates CI alongside
// go vet and the race detector.
//
// Usage:
//
//	p4lint [-only locks,timeunits,...] [-json] [pattern ...]
//
// Patterns are directories, optionally ending in /... to recurse
// (default "./..."). Examples:
//
//	go run ./cmd/p4lint ./...
//	go run ./cmd/p4lint -only regwidth ./internal/dataplane
//	go run ./cmd/p4lint -json ./internal/... > lint.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	asJSON := flag.Bool("json", false, "emit diagnostics as a JSON array")
	flag.Usage = usage
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := analysis.All()
	if *only != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*only, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4lint:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4lint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p4lint:", err)
		os.Exit(2)
	}
	// Surface hard type-check failures: analyzers silently miss bugs in
	// packages whose type information is incomplete.
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "p4lint: type error in %s: %v\n", pkg.Path, terr)
		}
	}

	diags := analysis.Run(pkgs, analyzers)
	if *asJSON {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, len(diags))
		for i, d := range diags {
			out[i] = jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "p4lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "p4lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: p4lint [-only a,b] [-json] [pattern ...]\n\nanalyzers:\n")
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-13s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}
