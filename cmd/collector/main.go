// Command collector runs the switch control-plane agent as a live
// daemon: it drives the simulated Science DMZ in real time (one
// virtual second per wall second), accepts psconfig config-P4
// commands over TCP, and ships every Report_v1 record as
// newline-delimited JSON to a Logstash TCP input — exactly the Figure
// 7 wiring. Without --logstash it prints the reports to stdout.
//
// Shipping is resilient (package resilient): the collector starts
// even when the archiver is down, reconnects with exponential
// backoff, spools reports to --spool-dir during outages and replays
// them in order on reconnect, and accounts for every record in the
// stats line it prints at shutdown. SIGINT/SIGTERM flush the
// in-flight reports before exiting.
//
// Usage:
//
//	collector [--listen :9161] [--logstash HOST:PORT] [--duration 60] [--seed 42]
//	          [--shards N] [--spool-dir DIR] [--max-spool BYTES] [--mem-spool N]
//	          [--backoff-min D] [--backoff-max D] [--write-timeout D]
//	          [--obs-addr :9600] [--site NAME --switch-id NAME]
//	          [--coordinator HOST:9559] [--heartbeat 1s]
//
// The federation flags make the collector a fleet member (DESIGN.md
// §5.9): --site/--switch-id stamp every report with the member
// identity so a shared archiver can attribute documents, and
// --coordinator registers with a federation coordinator and heartbeats
// on the --heartbeat interval, reporting the live config generation.
//
// With --obs-addr the collector serves its own telemetry: Prometheus
// text at /metrics (pipeline counters, extraction-latency histograms,
// the shipper's degradation-ladder gauges), the report-lifecycle trace
// ring at /trace, expvar at /debug/vars and pprof at /debug/pprof/.
//
// Try it together with the other tools:
//
//	collector --listen :9161 &
//	psconfig config-P4 --collector localhost:9161 --metric rtt --samples_per_second 4
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/p4runtime"
	"repro/internal/psconfig"
	"repro/internal/resilient"
	"repro/internal/simtime"
	"repro/internal/tcp"
)

// engineGuard serialises engine stepping with the scrape/table paths
// that still read engine-owned state (obs register scans, p4runtime).
// psconfig commands no longer need it: ControlPlane.Update publishes
// config generations lock-free, so the config channel can never stall
// the simulation stepper (DESIGN.md §5.7).
type engineGuard struct {
	mu sync.Mutex
}

func main() {
	listen := flag.String("listen", ":9161", "address for psconfig config-P4 commands")
	p4rtAddr := flag.String("p4rt", ":9559", "address for p4runtime register/table access (empty disables)")
	logstash := flag.String("logstash", "", "Logstash TCP input address (default: stdout)")
	duration := flag.Int("duration", 60, "virtual seconds to run")
	seed := flag.Uint64("seed", 42, "simulation seed")
	shards := flag.Int("shards", 1, "data-plane pipes to partition flows across (1 = single pipe)")
	spoolDir := flag.String("spool-dir", "", "directory for the on-disk report spool during archiver outages (empty disables)")
	maxSpool := flag.Int64("max-spool", 64<<20, "cap on pending disk-spool bytes before reports degrade to stdout")
	memSpool := flag.Int("mem-spool", 4096, "in-memory report queue depth (oldest dropped beyond it)")
	backoffMin := flag.Duration("backoff-min", 50*time.Millisecond, "initial reconnect backoff")
	backoffMax := flag.Duration("backoff-max", 5*time.Second, "reconnect backoff ceiling")
	writeTimeout := flag.Duration("write-timeout", 5*time.Second, "per-write deadline on the archiver connection")
	obsAddr := flag.String("obs-addr", "", "self-telemetry HTTP endpoint: /metrics, /trace, expvar, pprof (empty disables)")
	agingWindow := flag.Duration("aging-window", 0, "evict unannounced flow-table cells idle longer than this to the sketch tier (0 disables aging)")
	site := flag.String("site", "", "federation site identity stamped into every report as site_id (empty disables stamping)")
	switchID := flag.String("switch-id", "", "federation switch identity stamped into every report as switch_id")
	coordinator := flag.String("coordinator", "", "federation coordinator p4runtime address to register and heartbeat with (empty disables)")
	heartbeat := flag.Duration("heartbeat", time.Second, "heartbeat interval to the federation coordinator")
	flag.Parse()

	cfg := resilient.Config{
		MemSpool:      *memSpool,
		SpoolDir:      *spoolDir,
		MaxSpoolBytes: *maxSpool,
		BackoffMin:    *backoffMin,
		BackoffMax:    *backoffMax,
		WriteTimeout:  *writeTimeout,
		Seed:          *seed,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "collector: shipper: "+format+"\n", args...)
		},
	}
	if *logstash != "" {
		addr := *logstash
		cfg.Dial = func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	shipper, err := resilient.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "collector:", err)
		os.Exit(1)
	}
	// The counter upstream of the shipper bounds loss end to end: its
	// count must equal the shipper's Emitted at shutdown.
	sink := &controlplane.CountingSink{Next: shipper}
	// In a federated fleet each member stamps its identity before
	// counting, so the shared archiver can attribute every document.
	var extra controlplane.Sink = sink
	if *site != "" || *switchID != "" {
		extra = controlplane.IdentitySink{SiteID: *site, SwitchID: *switchID, Next: sink}
	}

	// A fast-scale Fig. 9-style workload provides live traffic; the
	// resilient shipper receives every report alongside the in-memory
	// mirror.
	sys := core.NewSystem(core.Options{
		BottleneckBps: netsim.Mbps(500),
		Seed:          *seed,
		Shards:        *shards,
		ExtraSink:     extra,
		ControlPlane: controlplane.Config{
			AgingWindow: simtime.Time(agingWindow.Nanoseconds()),
		},
	})
	guard := &engineGuard{}

	// Self-telemetry (opt-in): counters, histograms and the shipper
	// trace ring behind /metrics, /trace, expvar and pprof. Scrapes of
	// engine-owned state (register scans, the flow directory) run under
	// the same mutex that serialises simulation stepping.
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		reg.Sync = func(f func()) {
			guard.mu.Lock()
			defer guard.mu.Unlock()
			f()
		}
		reg.AddProcessMetrics()
		sys.DataPlane.RegisterObs(reg)
		sys.ControlPlane.RegisterObs(reg)
		shipper.RegisterObs(reg)
		srv, bound, err := reg.Serve(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "collector:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "collector: self-telemetry on http://%s/ (metrics, trace, pprof)\n", bound)
	}
	sys.Start()

	sender := tcp.Config{MSS: 1448}
	total := simtime.Time(*duration) * simtime.Second
	sys.TransferToExternal(0, 0, 0, total, sender, tcp.Config{})
	sys.TransferToExternal(1, 0, 0, total, sender, tcp.Config{})
	sys.TransferToExternal(2, total/3, 0, total-total/3, sender, tcp.Config{})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "collector:", err)
		os.Exit(1)
	}
	defer ln.Close()
	go psconfig.ServeConfig(ln, sys.ControlPlane)
	fmt.Fprintf(os.Stderr, "collector: config API on %s, running %d virtual seconds\n", ln.Addr(), *duration)

	// The p4runtime endpoint: external tools (cmd/p4rt) read registers
	// and program the monitor table on the live pipeline.
	if *p4rtAddr != "" {
		rtServer := p4runtime.NewServer(sys.DataPlane)
		rtServer.Guard = func(f func()) {
			guard.mu.Lock()
			defer guard.mu.Unlock()
			f()
		}
		rtLn, err := net.Listen("tcp", *p4rtAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "collector:", err)
			os.Exit(1)
		}
		defer rtLn.Close()
		go p4runtime.Serve(rtLn, rtServer)
		fmt.Fprintf(os.Stderr, "collector: p4runtime on %s\n", rtLn.Addr())
	}

	// Federation membership (opt-in): register with the coordinator and
	// heartbeat on a timer, reporting the live config generation so the
	// coordinator can spot lagging members after a fan-out.
	if *coordinator != "" {
		info := p4runtime.MemberInfo{
			Site: *site, Switch: *switchID,
			ConfigAddr: *listen,
			Generation: sys.ControlPlane.ConfigGenerations().Seq,
		}
		coord, err := p4runtime.Dial(*coordinator, 5*time.Second)
		if err != nil {
			fmt.Fprintln(os.Stderr, "collector:", err)
			os.Exit(1)
		}
		defer coord.Close()
		ack, err := coord.MemberRegister(info)
		if err != nil {
			fmt.Fprintln(os.Stderr, "collector: register:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "collector: joined fleet as %s/%s (incarnation %d, fleet seq %d)\n",
			*site, *switchID, ack.Incarnation, ack.FleetSeq)
		hbStop := make(chan struct{})
		defer close(hbStop)
		go func() {
			t := time.NewTicker(*heartbeat)
			defer t.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-t.C:
					info.Generation = sys.ControlPlane.ConfigGenerations().Seq
					if _, err := coord.MemberHeartbeat(info); err != nil {
						fmt.Fprintln(os.Stderr, "collector: heartbeat:", err)
					}
				}
			}
		}()
	}

	// Flush-then-exit on SIGINT/SIGTERM: stop stepping the simulation,
	// let the shipper drain (to the archiver, the disk spool, or
	// stdout), and print the accounting before exiting.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)

	// Advance the simulation one virtual second per wall second so the
	// report stream looks live.
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	interrupted := false
loop:
	for vt := simtime.Second; vt <= total; vt += simtime.Second {
		select {
		case sig := <-sigs:
			fmt.Fprintf(os.Stderr, "collector: %v, flushing reports\n", sig)
			interrupted = true
			break loop
		case <-ticker.C:
		}
		guard.mu.Lock()
		sys.Engine.Run(vt)
		guard.mu.Unlock()
	}

	// Close flushes the in-memory queue: remaining records ship if the
	// archiver is reachable, otherwise spill to disk or stdout — never
	// silently vanish.
	if err := shipper.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "collector: closing shipper:", err)
	}
	st := shipper.Stats()
	fmt.Fprintf(os.Stderr, "collector: done, %d reports emitted (%s)\n", sink.Count(), st)
	if interrupted {
		os.Exit(130)
	}
}
