// Command collector runs the switch control-plane agent as a live
// daemon: it drives the simulated Science DMZ in real time (one
// virtual second per wall second), accepts psconfig config-P4
// commands over TCP, and ships every Report_v1 record as
// newline-delimited JSON to a Logstash TCP input — exactly the Figure
// 7 wiring. Without --logstash it prints the reports to stdout.
//
// Usage:
//
//	collector [--listen :9161] [--logstash HOST:PORT] [--duration 60] [--seed 42]
//
// Try it together with the other tools:
//
//	collector --listen :9161 &
//	psconfig config-P4 --collector localhost:9161 --metric rtt --samples_per_second 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/p4runtime"
	"repro/internal/psconfig"
	"repro/internal/simtime"
	"repro/internal/tcp"
)

// liveSink forwards reports to a JSON-lines TCP connection (or stdout)
// as the simulation advances.
type liveSink struct {
	mu   sync.Mutex
	out  *json.Encoder
	conn net.Conn
	n    uint64
}

func newLiveSink(logstashAddr string) (*liveSink, error) {
	s := &liveSink{}
	if logstashAddr == "" {
		s.out = json.NewEncoder(os.Stdout)
		return s, nil
	}
	conn, err := net.DialTimeout("tcp", logstashAddr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("collector: connecting to logstash: %w", err)
	}
	s.conn = conn
	s.out = json.NewEncoder(conn)
	return s, nil
}

func (s *liveSink) Emit(r controlplane.Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	if err := s.out.Encode(r); err != nil {
		fmt.Fprintln(os.Stderr, "collector: emit:", err)
	}
}

func (s *liveSink) Close() error {
	if s.conn != nil {
		return s.conn.Close()
	}
	return nil
}

// guardedCP serialises psconfig calls with the simulation stepper.
type guardedCP struct {
	mu sync.Mutex
	cp *controlplane.ControlPlane
}

func (g *guardedCP) SetRate(m controlplane.Metric, sps float64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cp.SetRate(m, sps)
}

func (g *guardedCP) SetAlert(m controlplane.Metric, th, esc float64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cp.SetAlert(m, th, esc)
}

func main() {
	listen := flag.String("listen", ":9161", "address for psconfig config-P4 commands")
	p4rtAddr := flag.String("p4rt", ":9559", "address for p4runtime register/table access (empty disables)")
	logstash := flag.String("logstash", "", "Logstash TCP input address (default: stdout)")
	duration := flag.Int("duration", 60, "virtual seconds to run")
	seed := flag.Uint64("seed", 42, "simulation seed")
	flag.Parse()

	sink, err := newLiveSink(*logstash)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer sink.Close()

	// A fast-scale Fig. 9-style workload provides live traffic; the
	// live sink receives every report alongside the in-memory mirror.
	sys := core.NewSystem(core.Options{
		BottleneckBps: netsim.Mbps(500),
		Seed:          *seed,
		ExtraSink:     sink,
	})
	sys.Start()
	guard := &guardedCP{cp: sys.ControlPlane}

	sender := tcp.Config{MSS: 1448}
	total := simtime.Time(*duration) * simtime.Second
	sys.TransferToExternal(0, 0, 0, total, sender, tcp.Config{})
	sys.TransferToExternal(1, 0, 0, total, sender, tcp.Config{})
	sys.TransferToExternal(2, total/3, 0, total-total/3, sender, tcp.Config{})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "collector:", err)
		os.Exit(1)
	}
	defer ln.Close()
	go psconfig.ServeConfig(ln, guard)
	fmt.Fprintf(os.Stderr, "collector: config API on %s, running %d virtual seconds\n", ln.Addr(), *duration)

	// The p4runtime endpoint: external tools (cmd/p4rt) read registers
	// and program the monitor table on the live pipeline.
	if *p4rtAddr != "" {
		rtServer := p4runtime.NewServer(sys.DataPlane)
		rtServer.Guard = func(f func()) {
			guard.mu.Lock()
			defer guard.mu.Unlock()
			f()
		}
		rtLn, err := net.Listen("tcp", *p4rtAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "collector:", err)
			os.Exit(1)
		}
		defer rtLn.Close()
		go p4runtime.Serve(rtLn, rtServer)
		fmt.Fprintf(os.Stderr, "collector: p4runtime on %s\n", rtLn.Addr())
	}

	// Advance the simulation one virtual second per wall second so the
	// report stream looks live.
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for vt := simtime.Second; vt <= total; vt += simtime.Second {
		<-ticker.C
		guard.mu.Lock()
		sys.Engine.Run(vt)
		guard.mu.Unlock()
	}
	fmt.Fprintf(os.Stderr, "collector: done, %d reports emitted\n", sink.n)
}
