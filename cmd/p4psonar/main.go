// Command p4psonar regenerates the paper's tables and figures.
//
// Usage:
//
//	p4psonar run [-paper] [-shards N] [-out DIR] [-seed N] [-cpuprofile F]
//	             [-memprofile F] [-obs-addr :9600]
//	             table1|fig9|fig10|fig11|fig12|fig13|fig14|all
//
// By default experiments run at fast scale (1/20 bandwidth, identical
// RTTs and shapes); -paper runs the full 10 Gbps testbed parameters.
// -shards partitions flows across N independent data-plane pipes
// (Tofino's multi-pipe model); 1 is the byte-identical single pipe.
// Each experiment prints its panels as ASCII charts and, with -out,
// writes CSV series for external plotting. -cpuprofile and -memprofile
// capture pprof profiles over the selected experiments (see README's
// Profiling section); -obs-addr serves the live alternative — process
// self-metrics at /metrics plus on-demand pprof at /debug/pprof/ —
// for watching a long -paper run from the outside.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 || os.Args[1] != "run" {
		usage()
		os.Exit(2)
	}
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	paper := fs.Bool("paper", false, "run at full 10 Gbps paper scale (slow)")
	shards := fs.Int("shards", 1, "data-plane pipes to partition flows across (1 = single pipe)")
	out := fs.String("out", "", "directory for CSV output (optional)")
	seed := fs.Uint64("seed", 42, "simulation seed")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile over the selected experiments to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile taken after the experiments to this file")
	obsAddr := fs.String("obs-addr", "", "self-telemetry HTTP endpoint: process /metrics, expvar, pprof (empty disables)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2) // flag.ExitOnError has already printed the problem
	}

	targets := fs.Args()
	if len(targets) == 0 {
		usage()
		os.Exit(2)
	}

	if *obsAddr != "" {
		reg := obs.NewRegistry()
		reg.AddProcessMetrics()
		srv, bound, err := reg.Serve(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p4psonar:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "p4psonar: self-telemetry on http://%s/ (metrics, pprof)\n", bound)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p4psonar:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "p4psonar:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	scale := experiments.Fast()
	if *paper {
		scale = experiments.Paper()
	}
	scale.Shards = *shards

	run := func(name string) error {
		fmt.Printf("=== %s (%s scale) ===\n\n", name, scale.Name)
		switch name {
		case "table1":
			r := experiments.RunTable1(experiments.Table1Config{Scale: scale, Seed: *seed})
			fmt.Println(r.Render())
		case "fig9", "fig10":
			r := experiments.RunFig9(experiments.Fig9Config{Scale: scale, Seed: *seed})
			if name == "fig9" {
				fmt.Println(r.Render())
			} else {
				fmt.Println(r.RenderFig10())
			}
			if *out != "" {
				return r.SaveCSV(*out)
			}
		case "fig11":
			r := experiments.RunFig11(experiments.Fig11Config{Scale: scale, Seed: *seed})
			fmt.Println(r.Render())
			if *out != "" {
				return r.SaveCSV(*out)
			}
		case "fig12":
			r := experiments.RunFig12(experiments.Fig12Config{Scale: scale, Seed: *seed})
			fmt.Println(r.Render())
			if *out != "" {
				return r.SaveCSV(*out)
			}
		case "fig13":
			r := experiments.RunFig13(experiments.Fig13Config{Scale: scale, Seed: *seed})
			fmt.Println(r.Render())
			if *out != "" {
				return r.SaveCSV(*out)
			}
		case "fig14":
			r := experiments.RunFig14(experiments.Fig13Config{Scale: scale, Seed: *seed})
			fmt.Println(r.Render())
			if *out != "" {
				return r.SaveCSV(*out)
			}
		case "coexistence":
			r := experiments.RunExtCoexistence(experiments.CoexistenceConfig{Scale: scale, Seed: *seed})
			fmt.Println(r.Render())
		case "reconfig":
			r, err := experiments.RunReconfigUnderLoad(experiments.ReconfigConfig{Seed: *seed})
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		case "federation":
			// Fast is the CI-sized 2×2 fleet; -paper the 10-switch,
			// 210k-flow multi-site topology from EXPERIMENTS.md.
			spool, err := os.MkdirTemp("", "p4-fed-spool-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(spool)
			fcfg := experiments.FederationConfig{SpoolRoot: spool, Seed: *seed}
			if *paper {
				fcfg = experiments.FederationPaper(spool)
				fcfg.Seed = *seed
			}
			r, err := experiments.RunFederation(fcfg)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
			if *out != "" {
				if err := r.SaveCSV(*out); err != nil {
					return err
				}
			}
			if !r.Pass() {
				return fmt.Errorf("federation violated its accounting invariants")
			}
		case "scale":
			// Fast sweeps to 200k flows; -paper to the full 1M-flow
			// point the nightly workflow records.
			r := experiments.RunScaleSweep(experiments.ScaleSweepConfig{Scale: scale, Shards: *shards, Seed: *seed})
			fmt.Println(r.Render())
			if !r.Pass() {
				return fmt.Errorf("scale sweep violated its analytical guarantees")
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if len(targets) == 1 && targets[0] == "all" {
		targets = []string{"table1", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "coexistence", "reconfig"}
	}
	for _, name := range targets {
		if err := run(name); err != nil {
			fmt.Fprintln(os.Stderr, "p4psonar:", err)
			os.Exit(1)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p4psonar:", err)
			os.Exit(1)
		}
		defer f.Close()
		// The allocation profile samples every heap allocation site since
		// process start; GC first so live-heap numbers are meaningful too.
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "p4psonar:", err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: p4psonar run [-paper] [-shards N] [-out DIR] [-seed N] [-cpuprofile F] [-memprofile F] [-obs-addr ADDR] table1|fig9|fig10|fig11|fig12|fig13|fig14|coexistence|reconfig|scale|federation|all`)
}
