package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestMakefileTargets(t *testing.T) {
	dir := t.TempDir()
	mk := filepath.Join(dir, "Makefile")
	writeFile(t, mk, `GO ?= go
COVER_MIN := 76.0

.PHONY: all test lint
all: test lint

test:
	$(GO) test ./...

bin/p4psonar cover.out: deps
	touch $@

%.gen: %.src
	gen $<
`)
	targets, err := makefileTargets(mk)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"all", "test", "bin/p4psonar", "cover.out"} {
		if !targets[want] {
			t.Errorf("target %q not harvested (got %v)", want, targets)
		}
	}
	for _, bad := range []string{"GO", "COVER_MIN", ".PHONY", "%.gen", "$(GO)"} {
		if targets[bad] {
			t.Errorf("non-target %q harvested", bad)
		}
	}
}

func TestCommandFlags(t *testing.T) {
	dir := t.TempDir()
	// A flag-package command and a manually parsed one.
	writeFile(t, filepath.Join(dir, "cmd", "tool", "main.go"), `package main

import "flag"

func main() {
	_ = flag.String("addr", "", "")
	var n int
	flag.IntVar(&n, "shards", 1, "")
}
`)
	writeFile(t, filepath.Join(dir, "cmd", "manual", "main.go"), `package main

import "os"

func main() {
	usage := "usage: manual [--collector HOST] [--samples_per_second N]"
	for _, a := range os.Args {
		if a == "--alert" {
			_ = usage
		}
	}
}
`)
	cmds, err := commandFlags(filepath.Join(dir, "cmd"))
	if err != nil {
		t.Fatal(err)
	}
	tool := cmds["tool"]
	if !tool["addr"] || !tool["shards"] {
		t.Errorf("tool flags = %v, want addr and shards", tool)
	}
	manual := cmds["manual"]
	for _, want := range []string{"collector", "samples_per_second", "alert"} {
		if !manual[want] {
			t.Errorf("manual flags = %v, want %q from string literals", manual, want)
		}
	}
	// Hyphenated prose inside literals must not become flags.
	if manual["second"] || tool["second"] {
		t.Error("mid-word hyphen harvested as a flag")
	}
}

func TestCodeRegionsJoinsContinuationsAndSpans(t *testing.T) {
	doc := "Intro prose with a -dash that is not code.\n" +
		"```sh\n" +
		"tool --addr :1 \\\n" +
		"    --shards 4   # comment stripped\n" +
		"# full-line comment dropped\n" +
		"```\n" +
		"Use `make test` and `--collector` inline.\n"
	regions := codeRegions(doc)
	var texts []string
	for _, r := range regions {
		if strings.TrimSpace(r.text) != "" {
			texts = append(texts, strings.Join(strings.Fields(r.text), " "))
		}
	}
	want := []string{"tool --addr :1 --shards 4", "make test", "--collector"}
	if len(texts) != len(want) {
		t.Fatalf("regions = %q, want %q", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("region %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestCheckDoc(t *testing.T) {
	targets := map[string]bool{"test": true, "lint": true}
	cmds := map[string]map[string]bool{
		"tool": {"addr": true, "shards": true},
	}
	doc := "```sh\n" +
		"make test VERBOSE=1\n" +
		"make fmt\n" +
		"go run ./cmd/tool -addr :1 -shards=4\n" +
		"go run ./cmd/tool -bogus | go test -run X .\n" +
		"go test -race ./...\n" +
		"```\n" +
		"Inline `make lint`, `make nope`, `-shards`, and `-missing` too.\n"
	problems := checkDoc("doc.md", doc, targets, cmds, nil)
	var got []string
	for _, p := range problems {
		got = append(got, p)
	}
	wantSubstrings := []string{
		`make target "fmt"`,
		`flag "-bogus"`,
		`make target "nope"`,
		`flag "-missing"`,
	}
	if len(got) != len(wantSubstrings) {
		t.Fatalf("problems = %v, want %d entries", got, len(wantSubstrings))
	}
	for i, sub := range wantSubstrings {
		if !strings.Contains(got[i], sub) {
			t.Errorf("problem %d = %q, want substring %q", i, got[i], sub)
		}
	}
}

func TestCheckSegmentContextRules(t *testing.T) {
	targets := map[string]bool{}
	cmds := map[string]map[string]bool{
		"tool":  {"addr": true},
		"other": {"deep": true},
	}
	// Foreign commands are never checked, even with unknown flags.
	if p := checkSegment("d", 1, "curl -s localhost:9600/metrics", targets, cmds); len(p) != 0 {
		t.Errorf("foreign command flagged: %v", p)
	}
	// Bare command name establishes context.
	if p := checkSegment("d", 1, "tool -addr :1", targets, cmds); len(p) != 0 {
		t.Errorf("bare command context failed: %v", p)
	}
	if p := checkSegment("d", 1, "tool -deep", targets, cmds); len(p) != 1 {
		t.Errorf("per-command isolation failed: %v", p)
	}
	// Isolated flags check against the union of all commands.
	if p := checkSegment("d", 1, "--deep", targets, cmds); len(p) != 0 {
		t.Errorf("union fallback failed: %v", p)
	}
	if p := checkSegment("d", 1, "--gone", targets, cmds); len(p) != 1 {
		t.Errorf("union fallback missed a stale flag: %v", p)
	}
	// Optional-argument brackets are stripped.
	if p := checkSegment("d", 1, "tool [-addr :1]", targets, cmds); len(p) != 0 {
		t.Errorf("bracket stripping failed: %v", p)
	}
}

func TestMetricsInventory(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "src", "obs.go"), `package x

const whole = "p4_fed_members"

func reg() {
	gauge("p4_dataplane_rtt_ns", 0)
	registerAs("p4_shipper_") // registration prefix
}
`)
	// Test files must not contribute scrape names.
	writeFile(t, filepath.Join(dir, "src", "obs_test.go"), `package x

const testOnly = "p4_test_only_metric"
`)
	inv, err := metricsInventory([]string{filepath.Join(dir, "src")})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"p4_fed_members", "p4_dataplane_rtt_ns", "p4_shipper"} {
		if !inv[want] {
			t.Errorf("inventory missing %q (got %v)", want, inv)
		}
	}
	if inv["p4_test_only_metric"] {
		t.Error("test-file literal harvested")
	}
}

func TestKnownMetric(t *testing.T) {
	inv := map[string]bool{"p4_fed_members": true, "p4_shipper": true, "p4_dataplane_rtt_ns": true}
	for _, ok := range []string{
		"p4_fed_members",               // exact
		"p4_shipper_alpha_sw1_emitted", // prefix-registered family
		"p4_dataplane_rtt_ns_bucket",   // histogram expansion
		"p4_shipper_",                  // prose naming the family by prefix
		"p4_fed_*",                     // glob family reference
		"p4_dataplane_*",               // glob matching a longer name
	} {
		if !knownMetric(ok, inv) {
			t.Errorf("%q should resolve", ok)
		}
	}
	for _, bad := range []string{"p4_fed_member_count", "p4_gone", "p4_shippers_emitted", "p4_missing_*"} {
		if knownMetric(bad, inv) {
			t.Errorf("%q should not resolve", bad)
		}
	}
}

func TestCheckDocMetrics(t *testing.T) {
	inv := map[string]bool{"p4_fed_members": true, "p4_shipper": true}
	doc := "Watch `p4_fed_members` and the `p4_shipper_site_sw_emitted` family.\n" +
		"But `p4_fed_memberz` was renamed.\n"
	problems := checkDoc("doc.md", doc, nil, map[string]map[string]bool{}, inv)
	if len(problems) != 1 || !strings.Contains(problems[0], `"p4_fed_memberz"`) {
		t.Fatalf("problems = %v", problems)
	}
}
