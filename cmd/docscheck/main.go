// Command docscheck keeps the prose documentation honest: every make
// target and every CLI flag named in the documentation must actually
// exist. It parses the Makefile for target names and the cmd/
// packages for flag registrations (both flag.FlagSet calls and the
// literal "--flag" tokens of manually parsed commands like psconfig),
// then scans the code regions of the given markdown files — fenced
// blocks and inline `spans`, with backslash continuations joined and
// shell comments stripped — and reports any `make <target>` whose
// target the Makefile lacks, or any -flag/--flag on a command line
// whose binary does not register it.
//
// It also generates a metrics inventory: every "p4_..." string
// literal in the non-test Go sources is a registered metric name (or,
// for fleet deployments, a registration prefix like "p4_shipper"), and
// every p4_-shaped token in the documentation must resolve against
// that inventory — exactly, or as <prefix>_<suffix> for prefix-
// registered families and histogram _bucket/_sum/_count expansions.
// This closes the drift class where docs keep referencing a renamed
// gauge.
//
// Usage:
//
//	docscheck [-makefile Makefile] [-cmd-dir cmd] [-metrics-src internal,cmd] [file.md ...]
//
// Without file arguments it checks README.md, ARCHITECTURE.md and
// OPERATIONS.md.
// Exit status is 1 when any reference is stale, making it suitable as
// a CI gate (the docs job runs `make docs`).
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	makefile := flag.String("makefile", "Makefile", "Makefile to harvest targets from")
	cmdDir := flag.String("cmd-dir", "cmd", "directory holding the command packages")
	metricsSrc := flag.String("metrics-src", "internal,cmd", "comma-separated source trees to harvest the metrics inventory from")
	flag.Parse()
	docs := flag.Args()
	if len(docs) == 0 {
		docs = []string{"README.md", "ARCHITECTURE.md", "OPERATIONS.md"}
	}

	targets, err := makefileTargets(*makefile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	cmds, err := commandFlags(*cmdDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	metrics, err := metricsInventory(strings.Split(*metricsSrc, ","))
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}

	var problems []string
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docscheck:", err)
			os.Exit(2)
		}
		problems = append(problems, checkDoc(doc, string(data), targets, cmds, metrics)...)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d stale reference(s)\n", len(problems))
		os.Exit(1)
	}
	names := make([]string, 0, len(cmds))
	for n := range cmds {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("docscheck: ok (%d make targets, %d metric names, %d commands: %s)\n",
		len(targets), len(metrics), len(names), strings.Join(names, " "))
}

// makefileTargets returns the set of rule targets declared in the
// Makefile: fields before a ':' at the start of a line, skipping
// variable assignments (:=), pattern rules and .SPECIAL targets.
func makefileTargets(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	targets := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || line[0] == '\t' || line[0] == '#' || line[0] == ' ' {
			continue
		}
		i := strings.IndexByte(line, ':')
		if i <= 0 || strings.HasPrefix(line[i:], ":=") {
			continue
		}
		for _, name := range strings.Fields(line[:i]) {
			if strings.HasPrefix(name, ".") || strings.ContainsAny(name, "%$=") {
				continue
			}
			targets[name] = true
		}
	}
	return targets, nil
}

// flagMethods are the flag.FlagSet registration calls whose first
// string-literal argument names a flag.
var flagMethods = map[string]bool{
	"String": true, "StringVar": true, "Bool": true, "BoolVar": true,
	"Int": true, "IntVar": true, "Int64": true, "Int64Var": true,
	"Uint": true, "UintVar": true, "Uint64": true, "Uint64Var": true,
	"Float64": true, "Float64Var": true, "Duration": true, "DurationVar": true,
	"Var": true, "Func": true, "TextVar": true,
}

// literalFlagRe finds "--flag"-shaped tokens inside string literals —
// the registration form of manually parsed commands (psconfig) whose
// usage strings and comparisons spell the flags out.
var literalFlagRe = regexp.MustCompile(`(?:^|[^\w-])(--?[A-Za-z][A-Za-z0-9_-]*)`)

// commandFlags harvests, per command package under dir, the set of
// flag names the binary accepts.
func commandFlags(dir string) (map[string]map[string]bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	cmds := map[string]map[string]bool{}
	fset := token.NewFileSet()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		flags := map[string]bool{"h": true, "help": true} // flag package built-ins
		srcs, err := filepath.Glob(filepath.Join(dir, name, "*.go"))
		if err != nil {
			return nil, err
		}
		for _, src := range srcs {
			if strings.HasSuffix(src, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, src, nil, 0)
			if err != nil {
				return nil, err
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					if name, ok := flagCallName(x); ok {
						flags[name] = true
					}
				case *ast.BasicLit:
					if x.Kind == token.STRING {
						if s, err := strconv.Unquote(x.Value); err == nil {
							for _, m := range literalFlagRe.FindAllStringSubmatch(s, -1) {
								flags[strings.TrimLeft(m[1], "-")] = true
							}
						}
					}
				}
				return true
			})
		}
		cmds[name] = flags
	}
	return cmds, nil
}

// flagCallName extracts the flag name from a registration call like
// flag.String("addr", ...) or fs.IntVar(&v, "shards", ...).
func flagCallName(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !flagMethods[sel.Sel.Name] || len(call.Args) == 0 {
		return "", false
	}
	arg := call.Args[0]
	if strings.HasSuffix(sel.Sel.Name, "Var") && len(call.Args) > 1 {
		arg = call.Args[1]
	}
	lit, ok := arg.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil || s == "" {
		return "", false
	}
	return s, true
}

// metricLiteralRe matches the leading metric-shaped run of a string
// literal: the repo's metric namespace is "p4_" + lowercase snake.
// Matching the prefix rather than the whole literal also harvests
// format-built families ("p4_pipes_shard%d_" → p4_pipes_shard).
var metricLiteralRe = regexp.MustCompile(`"(p4_[a-z0-9_]+)`)

// metricsInventory harvests every metric-shaped string literal from
// the non-test Go sources under dirs. The result is the generated
// inventory documented metric names are verified against: literals
// registered whole (p4_fed_members) and prefixes handed to
// prefix-parameterised registrations (p4_shipper → the per-member
// p4_shipper_<site>_<switch>_* families).
func metricsInventory(dirs []string) (map[string]bool, error) {
	inv := map[string]bool{}
	for _, dir := range dirs {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range metricLiteralRe.FindAllStringSubmatch(string(data), -1) {
				inv[strings.TrimRight(m[1], "_")] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return inv, nil
}

// docMetricRe finds metric-shaped tokens inside documentation code
// regions, including glob-style family references (p4_fed_*).
var docMetricRe = regexp.MustCompile(`\bp4_[a-z0-9_]+\*?`)

// knownMetric reports whether a documented metric name resolves
// against the inventory: exactly; as a suffixed expansion of a
// registered name or prefix (prefix-parameterised shipper families,
// histogram _bucket/_sum/_count series); or, for a glob family
// reference like "p4_fed_*", when at least one registered name
// carries the prefix.
func knownMetric(name string, metrics map[string]bool) bool {
	if glob, ok := strings.CutSuffix(name, "*"); ok {
		for m := range metrics {
			if strings.HasPrefix(m, glob) {
				return true
			}
		}
		return false
	}
	name = strings.TrimRight(name, "_")
	if metrics[name] {
		return true
	}
	for i := strings.LastIndexByte(name, '_'); i > 0; i = strings.LastIndexByte(name[:i], '_') {
		if metrics[name[:i]] {
			return true
		}
	}
	return false
}

// codeRegion is one checkable chunk of a markdown file: a line of a
// fenced code block or the contents of an inline `span`.
type codeRegion struct {
	line int // 1-based line in the source file
	text string
}

var inlineSpanRe = regexp.MustCompile("`([^`\n]+)`")

// codeRegions extracts fenced-block lines (with trailing-backslash
// continuations joined and shell comments stripped) and inline code
// spans from a markdown document.
func codeRegions(doc string) []codeRegion {
	var regions []codeRegion
	lines := strings.Split(doc, "\n")
	inFence := false
	for i := 0; i < len(lines); i++ {
		line := lines[i]
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			start := i
			joined := strings.TrimSuffix(line, "\r")
			for strings.HasSuffix(stripComment(joined), "\\") && i+1 < len(lines) {
				joined = strings.TrimSuffix(stripComment(joined), "\\")
				i++
				joined += " " + strings.TrimSpace(lines[i])
			}
			regions = append(regions, codeRegion{line: start + 1, text: stripComment(joined)})
			continue
		}
		for _, m := range inlineSpanRe.FindAllStringSubmatch(line, -1) {
			regions = append(regions, codeRegion{line: i + 1, text: m[1]})
		}
	}
	return regions
}

// stripComment removes a trailing shell comment (space-delimited "#")
// from a command line.
func stripComment(line string) string {
	if i := strings.Index(line, " #"); i >= 0 {
		return strings.TrimRight(line[:i], " \t")
	}
	if strings.HasPrefix(strings.TrimSpace(line), "#") {
		return ""
	}
	return strings.TrimRight(line, " \t")
}

// checkDoc validates every code region of one document against the
// harvested make targets, per-command flag sets and the metrics
// inventory.
func checkDoc(file, doc string, targets map[string]bool, cmds map[string]map[string]bool, metrics map[string]bool) []string {
	var problems []string
	for _, region := range codeRegions(doc) {
		// Pipelines and && chains carry independent command contexts.
		for _, segment := range splitSegments(region.text) {
			problems = append(problems, checkSegment(file, region.line, segment, targets, cmds)...)
		}
		for _, name := range docMetricRe.FindAllString(region.text, -1) {
			if !knownMetric(name, metrics) {
				problems = append(problems, fmt.Sprintf("%s:%d: metric %q not in the registered-metrics inventory", file, region.line, name))
			}
		}
	}
	return problems
}

var segmentSplitRe = regexp.MustCompile(`\|\||&&|\|`)

func splitSegments(line string) []string {
	return segmentSplitRe.Split(line, -1)
}

// checkSegment checks one command segment: make targets when the
// segment invokes make, flag names when it invokes (or consists only
// of) one of our commands.
func checkSegment(file string, line int, segment string, targets map[string]bool, cmds map[string]map[string]bool) []string {
	tokens := strings.Fields(segment)
	if len(tokens) == 0 {
		return nil
	}
	var problems []string

	// make <target>: every non-flag, non-assignment word after "make"
	// must be a real target.
	for i, tok := range tokens {
		if tok != "make" {
			continue
		}
		for _, t := range tokens[i+1:] {
			t = strings.Trim(t, "[]")
			if t == "" || strings.HasPrefix(t, "-") || strings.ContainsAny(t, "=$<>") {
				continue
			}
			if !targets[t] {
				problems = append(problems, fmt.Sprintf("%s:%d: make target %q not in Makefile", file, line, t))
			}
		}
		return problems // a make segment never also carries our CLI flags
	}

	// Resolve the command context: a token naming one of our binaries
	// (bare, ./bin/<name>, ./cmd/<name>, go run ./cmd/<name>).
	var known map[string]bool
	found := false
	for _, tok := range tokens {
		base := filepath.Base(strings.Trim(tok, "[]"))
		if f, ok := cmds[base]; ok {
			known, found = f, true
			break
		}
	}
	if !found {
		// An isolated flag mention (`-shards`, `--collector`) has no
		// command context: it must exist in at least one binary.
		if !strings.HasPrefix(tokens[0], "-") {
			return problems
		}
		known = map[string]bool{}
		for _, f := range cmds {
			for name := range f {
				known[name] = true
			}
		}
	}
	for _, tok := range tokens {
		tok = strings.Trim(tok, "[]|")
		if !strings.HasPrefix(tok, "-") || tok == "-" || tok == "--" {
			continue
		}
		name := strings.TrimLeft(tok, "-")
		if i := strings.IndexByte(name, '='); i >= 0 {
			name = name[:i]
		}
		if name == "" || !isFlagName(name) {
			continue
		}
		if !known[name] {
			problems = append(problems, fmt.Sprintf("%s:%d: flag %q not registered by any matching command", file, line, "-"+name))
		}
	}
	return problems
}

var flagNameRe = regexp.MustCompile(`^[A-Za-z][A-Za-z0-9_-]*$`)

func isFlagName(s string) bool { return flagNameRe.MatchString(s) }
