package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleProfile = `mode: atomic
repro/internal/obs/obs.go:10.2,12.3 2 5
repro/internal/obs/obs.go:14.2,16.3 3 0
repro/internal/obs/trace.go:8.2,9.3 1 1
repro/internal/dataplane/reads.go:20.2,22.3 4 2
repro/internal/dataplane/reads.go:20.2,22.3 4 0
`

func parse(t *testing.T, profile string) map[string]block {
	t.Helper()
	blocks, err := parseProfile(bufio.NewScanner(strings.NewReader(profile)))
	if err != nil {
		t.Fatal(err)
	}
	return blocks
}

func TestParseProfile(t *testing.T) {
	blocks := parse(t, sampleProfile)
	if len(blocks) != 4 {
		t.Fatalf("got %d blocks, want 4 (duplicate merged)", len(blocks))
	}
	// The duplicate dataplane block must keep the max count, so the
	// package reads as covered even though one test binary missed it.
	b, ok := blocks["repro/internal/dataplane/reads.go:20.2,22.3"]
	if !ok {
		t.Fatal("dataplane block missing")
	}
	if b.count != 2 || b.numStmts != 4 {
		t.Fatalf("dedup kept count=%d stmts=%d, want count=2 stmts=4", b.count, b.numStmts)
	}
}

func TestParseProfileRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not a mode line\n",
		"mode: set\nmissing-fields\n",
		"mode: set\nf.go:1.1,2.2 x 1\n",
		"mode: set\nf.go:1.1,2.2 1 y\n",
	} {
		if _, err := parseProfile(bufio.NewScanner(strings.NewReader(bad))); err == nil {
			t.Errorf("profile %q parsed without error", bad)
		}
	}
}

func TestPkgOf(t *testing.T) {
	for pos, want := range map[string]string{
		"repro/internal/obs/obs.go:10.2,12.3": "repro/internal/obs",
		"repro/main.go:1.1,2.2":               "repro",
	} {
		if got := pkgOf(pos); got != want {
			t.Errorf("pkgOf(%q) = %q, want %q", pos, got, want)
		}
	}
}

func TestTallyPct(t *testing.T) {
	blocks := parse(t, sampleProfile)
	var grand tally
	for _, b := range blocks {
		grand.total += b.numStmts
		if b.count > 0 {
			grand.covered += b.numStmts
		}
	}
	// 2+1+4 covered of 2+3+1+4 total.
	if grand.total != 10 || grand.covered != 7 {
		t.Fatalf("tally = %d/%d, want 7/10", grand.covered, grand.total)
	}
	if pct := grand.pct(); pct != 70.0 {
		t.Fatalf("pct = %v, want 70.0", pct)
	}
	if (tally{}).pct() != 100.0 {
		t.Fatal("empty tally must read 100%, not NaN")
	}
}
