// Command covercheck enforces the repository's coverage ratchet: it
// parses a `go test -coverprofile` file with no dependencies beyond
// the standard library, prints a per-package statement-coverage
// breakdown, and exits non-zero when total coverage falls below the
// committed minimum.
//
// Usage:
//
//	go test ./... -coverprofile=cover.out
//	go run ./cmd/covercheck -profile cover.out -min 78.0 [-breakdown cover.txt]
//
// The -min threshold is the ratchet: it is committed in the Makefile
// (COVER_MIN) and CI fails below it. When coverage rises, raise the
// ratchet in the same PR; it must never be lowered to make a build
// pass.
//
// Profile format (cover/profile.go in golang.org/x/tools is the
// canonical parser; this is a minimal reimplementation):
//
//	mode: set|count|atomic
//	name.go:line.col,line.col numStmts count
//
// The same block can appear multiple times when several test binaries
// ran the same package; blocks are deduplicated by position, keeping
// the highest count, exactly like `go tool cover -func` does.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// block is one coverage block: a span of statements and whether the
// tests executed it.
type block struct {
	numStmts int
	count    int
}

// parseProfile reads a coverprofile and returns blocks keyed by
// "file:start,end", with duplicate blocks merged by max count.
func parseProfile(r *bufio.Scanner) (map[string]block, error) {
	blocks := make(map[string]block)
	lineNo := 0
	for r.Scan() {
		lineNo++
		line := strings.TrimSpace(r.Text())
		if line == "" {
			continue
		}
		if lineNo == 1 {
			if !strings.HasPrefix(line, "mode: ") {
				return nil, fmt.Errorf("line 1: want \"mode: ...\", got %q", line)
			}
			continue
		}
		// file.go:sl.sc,el.ec numStmts count
		pos, rest, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("line %d: malformed block %q", lineNo, line)
		}
		stmtsStr, countStr, ok := strings.Cut(rest, " ")
		if !ok {
			return nil, fmt.Errorf("line %d: malformed block %q", lineNo, line)
		}
		numStmts, err := strconv.Atoi(stmtsStr)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad statement count %q", lineNo, stmtsStr)
		}
		count, err := strconv.Atoi(countStr)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad execution count %q", lineNo, countStr)
		}
		if b, dup := blocks[pos]; dup {
			if count > b.count {
				b.count = count
				blocks[pos] = b
			}
			continue
		}
		blocks[pos] = block{numStmts: numStmts, count: count}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return blocks, nil
}

// pkgOf maps a block position ("repro/internal/obs/obs.go:10.2,12.3")
// to its package directory ("repro/internal/obs").
func pkgOf(pos string) string {
	file := pos
	if i := strings.LastIndexByte(pos, ':'); i >= 0 {
		file = pos[:i]
	}
	return path.Dir(file)
}

// tally is per-package statement accounting.
type tally struct {
	total   int
	covered int
}

func (t tally) pct() float64 {
	if t.total == 0 {
		return 100.0
	}
	return 100.0 * float64(t.covered) / float64(t.total)
}

func run() error {
	profile := flag.String("profile", "cover.out", "coverage profile from go test -coverprofile")
	min := flag.Float64("min", 0, "fail when total statement coverage is below this percentage")
	breakdown := flag.String("breakdown", "", "also write the per-package table to this file")
	flag.Parse()

	f, err := os.Open(*profile)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	blocks, err := parseProfile(sc)
	if err != nil {
		return fmt.Errorf("%s: %w", *profile, err)
	}
	if len(blocks) == 0 {
		return fmt.Errorf("%s: no coverage blocks", *profile)
	}

	perPkg := make(map[string]tally)
	var grand tally
	for pos, b := range blocks {
		pkg := pkgOf(pos)
		t := perPkg[pkg]
		t.total += b.numStmts
		grand.total += b.numStmts
		if b.count > 0 {
			t.covered += b.numStmts
			grand.covered += b.numStmts
		}
		perPkg[pkg] = t
	}

	pkgs := make([]string, 0, len(perPkg))
	for pkg := range perPkg {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)

	var out strings.Builder
	w := func(format string, args ...interface{}) {
		fmt.Fprintf(&out, format, args...)
	}
	w("statement coverage by package:\n")
	for _, pkg := range pkgs {
		t := perPkg[pkg]
		w("  %-40s %6.1f%%  (%d/%d stmts)\n", pkg, t.pct(), t.covered, t.total)
	}
	w("total: %.1f%% (%d/%d stmts), ratchet minimum %.1f%%\n",
		grand.pct(), grand.covered, grand.total, *min)
	fmt.Print(out.String())
	if *breakdown != "" {
		if err := os.WriteFile(*breakdown, []byte(out.String()), 0o644); err != nil {
			return err
		}
	}

	if grand.pct() < *min {
		return fmt.Errorf("total coverage %.1f%% is below the ratchet minimum %.1f%%", grand.pct(), *min)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(1)
	}
}
