// Command replay drives the data plane's batch execution path at full
// machine speed and reports throughput: packets per second and the
// gigabits per second the ingested traffic represents. It is the
// ingest front-end counterpart to p4psonar — where p4psonar answers
// "what does the pipeline measure", replay answers "how fast does this
// machine push packets through the real match-action program".
//
// Usage:
//
//	replay [-n N] [-flows N] [-mss N] [-shards N] [-batch N]
//	       [-trace FILE] [-record FILE] [-cpuprofile FILE]
//
// By default a deterministic synthetic workload of -n TAP records
// (interleaved TCP flows with ACKs, egress copies and periodic
// retransmissions) streams through a -shards pipeline in fronts of
// -batch views. -trace replays a recorded binary trace instead (see
// trafficgen.Recorder); -record writes the synthetic workload to a
// trace file and exits, so the exact same packet stream can be
// replayed later or on another machine. -cpuprofile captures a pprof
// profile of the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"repro/internal/dataplane"
	"repro/internal/replay"
)

func main() {
	n := flag.Int("n", 2_000_000, "synthetic TAP records to generate")
	flows := flag.Int("flows", 64, "concurrent synthetic flows")
	mss := flag.Int("mss", 1460, "TCP payload bytes per synthetic data segment")
	shards := flag.Int("shards", 1, "data-plane pipes to partition flows across (1 = single pipe)")
	batch := flag.Int("batch", 1024, "front capacity: views per ProcessFront call")
	trace := flag.String("trace", "", "replay this recorded trace file instead of generating traffic")
	record := flag.String("record", "", "write the synthetic workload to this trace file and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the replay run to this file")
	flag.Parse()

	synth := &replay.Synth{Flows: *flows, Packets: *n, MSS: *mss}

	if *record != "" {
		if err := recordTrace(*record, synth); err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d synthetic records to %s\n", *n, *record)
		return
	}

	var src replay.Source = synth
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		defer f.Close()
		src = replay.NewReader(f)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	plane := dataplane.NewPipes(dataplane.Config{}, *shards)
	res := replay.Runner{Plane: plane, Batch: *batch}.Run(src)
	if rd, ok := src.(*replay.Reader); ok {
		if err := rd.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "replay:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("records    %d (%d ingress, %d egress)\n",
		res.Packets, res.Stats.IngressCopies, res.Stats.EgressCopies)
	fmt.Printf("elapsed    %v\n", res.Elapsed)
	fmt.Printf("throughput %.2f Mpps, %.2f Gbps represented\n",
		res.PPS()/1e6, res.Gbps())
	fmt.Printf("pipeline   %d rtt samples, %d losses counted, %d microbursts, %d skipped\n",
		res.Stats.RTTSamples, lossCount(plane), res.Stats.Microbursts, res.Stats.SkippedPackets)
}

// lossCount sums the pkt_loss register across the flow table — the
// pipeline's retransmission tally for the whole run.
func lossCount(p *dataplane.Pipes) uint64 {
	var total uint64
	size := p.Config().FlowTableSize
	for idx := 0; idx < size; idx++ {
		v, _ := p.ReadRegister("pkt_loss", uint32(idx))
		total += v
	}
	return total
}

// recordTrace streams the synthetic workload into a trace file.
func recordTrace(path string, src replay.Source) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := replay.NewWriter(f)
	var rec replay.Record
	for src.Next(&rec) {
		if err := w.Write(&rec); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return err
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close() // the flush error is the one worth reporting
		return err
	}
	return f.Close()
}
