// Command p4rt is the switch-operator tool for a running collector:
// it speaks the runtime API (the stand-in for P4Runtime/BfRt) to read
// data-plane registers, inspect pipeline statistics and program the
// monitor table — the operations §4.1 attributes to "the APIs provided
// by the manufacturer of the switch".
//
// Usage:
//
//	p4rt [-addr HOST:9559] registers
//	p4rt [-addr HOST:9559] register-read NAME INDEX
//	p4rt [-addr HOST:9559] flow-read FLOWID REVID     (hex ids from the digests)
//	p4rt [-addr HOST:9559] table-skip PREFIX          (e.g. 10.9.0.0/16)
//	p4rt [-addr HOST:9559] stats
//	p4rt [-addr HOST:9559] members                    (federation coordinator only)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/p4runtime"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9559", "collector p4runtime address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	client, err := p4runtime.Dial(*addr, 5*time.Second)
	if err != nil {
		fatal(err)
	}
	defer client.Close()

	switch args[0] {
	case "registers":
		names, err := client.ListRegisters()
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}

	case "register-read":
		if len(args) != 3 {
			usage()
			os.Exit(2)
		}
		idx, err := strconv.ParseUint(args[2], 0, 32)
		if err != nil {
			fatal(fmt.Errorf("bad index %q: %w", args[2], err))
		}
		v, err := client.RegisterRead(args[1], uint32(idx))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s[%d] = %d\n", args[1], idx, v)

	case "flow-read":
		if len(args) != 3 {
			usage()
			os.Exit(2)
		}
		id, err1 := strconv.ParseUint(args[1], 0, 32)
		rev, err2 := strconv.ParseUint(args[2], 0, 32)
		if err1 != nil || err2 != nil {
			fatal(fmt.Errorf("flow ids must be numeric (hex ok): %v %v", err1, err2))
		}
		f, err := client.FlowRead(uint32(id), uint32(rev))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("bytes=%d pkts=%d loss=%d rtt=%.3fms qdelay=%dns flight=%d fin=%v\n",
			f.Bytes, f.Pkts, f.PktLoss, f.RTTMs, f.QDelay, f.Flight, f.FinSeen)

	case "table-skip":
		if len(args) != 2 {
			usage()
			os.Exit(2)
		}
		if err := client.TableSkip(args[1]); err != nil {
			fatal(err)
		}
		fmt.Printf("monitor table: skip %s\n", args[1])

	case "members":
		ms, err := client.MemberList()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-24s %-8s %12s %11s\n", "member", "state", "incarnation", "config_seq")
		for _, m := range ms {
			fmt.Printf("%-24s %-8s %12d %11d\n", m.Site+"/"+m.Switch, m.State, m.Incarnation, m.ConfigSeq)
		}

	case "stats":
		resp, err := client.Do(p4runtime.Request{Op: p4runtime.OpStats})
		if err != nil {
			fatal(err)
		}
		s := resp.Stats
		fmt.Printf("ingress=%d egress=%d rtt-samples=%d eack-evictions=%d qsig-miss=%d collisions=%d microbursts=%d skipped=%d\n",
			s.IngressCopies, s.EgressCopies, s.RTTSamples, s.EACKEvictions,
			s.QSigMismatches, s.SlotCollisions, s.Microbursts, s.SkippedPackets)

	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: p4rt [-addr HOST:9559] registers|register-read NAME IDX|flow-read ID REV|table-skip PREFIX|stats|members`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p4rt:", err)
	os.Exit(1)
}
