// Command benchcmp is the benchmark-regression gate. It reads
// `go test -bench` output on stdin and either records it as a baseline
// or compares it against a committed one, failing on ns/op regressions:
//
//	go test -run '^$' -bench Fig9 -benchmem | benchcmp -write BENCH_7.json
//	go test -run '^$' -bench Fig9 -benchmem | benchcmp -baseline BENCH_7.json
//
// Wall-clock comparisons across different machines are inherently
// noisy; the -max-regress-pct threshold (default 10) absorbs ordinary
// jitter while still catching the order-of-magnitude slips a hot-path
// allocation causes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchcmp"
)

func main() {
	write := flag.String("write", "", "record stdin as a baseline JSON file and exit")
	baseline := flag.String("baseline", "", "committed baseline JSON to compare stdin against")
	maxPct := flag.Float64("max-regress-pct", 10, "fail when ns/op regresses more than this percentage")
	notes := flag.String("notes", "", "free-form provenance note stored with -write")
	flag.Parse()

	current, err := benchcmp.Parse(os.Stdin)
	if err != nil {
		fatal("reading benchmark output: %v", err)
	}
	if len(current) == 0 {
		fatal("no benchmark results on stdin (run go test -bench ... -benchmem | benchcmp)")
	}

	switch {
	case *write != "":
		b := benchcmp.Baseline{Notes: *notes, Benchmarks: current}
		if err := benchcmp.WriteBaseline(*write, b); err != nil {
			fatal("writing %s: %v", *write, err)
		}
		fmt.Printf("benchcmp: recorded %d benchmarks to %s\n", len(current), *write)
	case *baseline != "":
		base, err := benchcmp.LoadBaseline(*baseline)
		if err != nil {
			fatal("%v", err)
		}
		deltas := benchcmp.Compare(base.Benchmarks, current)
		if len(deltas) == 0 {
			fatal("no benchmarks shared between %s and stdin", *baseline)
		}
		bad := benchcmp.Report(os.Stdout, deltas, *maxPct)
		if len(bad) > 0 {
			fatal("%d benchmark(s) regressed more than %.0f%% ns/op", len(bad), *maxPct)
		}
		fmt.Printf("benchcmp: %d benchmarks within %.0f%% of %s\n", len(deltas), *maxPct, *baseline)
	default:
		fatal("one of -write or -baseline is required")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcmp: "+format+"\n", args...)
	os.Exit(1)
}
