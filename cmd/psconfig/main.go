// Command psconfig implements the paper's extended pSConfig CLI
// (Figure 6): the config-P4 subcommand configures a running
// collector's reporting rates and alert thresholds.
//
// Usage:
//
//	psconfig config-P4 [--collector HOST:PORT] [--retries N] --metric M --samples_per_second N
//	psconfig config-P4 [--collector HOST:PORT] [--retries N] --metric M --alert --threshold T --samples_per_second N
//
// Refused connections are retried with jittered exponential backoff,
// --retries attempts in total (default 3); errors after a connection
// is up are never retried, so a command cannot be double-applied.
// Without --collector the command parses, validates and echoes the
// configuration (dry run) — useful for checking Figure 6 syntax.
package main

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/psconfig"
)

func main() {
	if len(os.Args) < 2 || os.Args[1] != "config-P4" {
		fmt.Fprintln(os.Stderr, "usage: psconfig config-P4 [--collector HOST:PORT] [--metric M] [--samples_per_second N] [--alert --threshold T]")
		os.Exit(2)
	}
	args := os.Args[2:]

	// Extract --collector and --retries before handing the rest to the
	// Figure 6 parser.
	collector := ""
	retries := 3
	var rest []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "--collector":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "psconfig: --collector requires a value")
				os.Exit(2)
			}
			collector = args[i+1]
			i++
		case "--retries":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "psconfig: --retries requires a value")
				os.Exit(2)
			}
			n, err := strconv.Atoi(args[i+1])
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "psconfig: invalid retries %q\n", args[i+1])
				os.Exit(2)
			}
			retries = n
			i++
		default:
			rest = append(rest, args[i])
		}
	}

	cmd, err := psconfig.ParseConfigP4(rest)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if collector == "" {
		fmt.Printf("parsed OK (dry run): %s\n", cmd)
		return
	}
	if err := cmd.SendWith(collector, psconfig.SendOptions{Timeout: 5 * time.Second, Attempts: retries}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("applied: %s\n", cmd)
}
