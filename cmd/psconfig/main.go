// Command psconfig implements the paper's extended pSConfig CLI
// (Figure 6): the config-P4 subcommand configures a running
// collector's reporting rates and alert thresholds.
//
// Usage:
//
//	psconfig config-P4 [--collector HOST:PORT] --metric M --samples_per_second N
//	psconfig config-P4 [--collector HOST:PORT] --metric M --alert --threshold T --samples_per_second N
//
// Without --collector the command parses, validates and echoes the
// configuration (dry run) — useful for checking Figure 6 syntax.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/psconfig"
)

func main() {
	if len(os.Args) < 2 || os.Args[1] != "config-P4" {
		fmt.Fprintln(os.Stderr, "usage: psconfig config-P4 [--collector HOST:PORT] [--metric M] [--samples_per_second N] [--alert --threshold T]")
		os.Exit(2)
	}
	args := os.Args[2:]

	// Extract --collector before handing the rest to the Figure 6
	// parser.
	collector := ""
	var rest []string
	for i := 0; i < len(args); i++ {
		if args[i] == "--collector" {
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "psconfig: --collector requires a value")
				os.Exit(2)
			}
			collector = args[i+1]
			i++
			continue
		}
		rest = append(rest, args[i])
	}

	cmd, err := psconfig.ParseConfigP4(rest)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if collector == "" {
		fmt.Printf("parsed OK (dry run): %s\n", cmd)
		return
	}
	if err := cmd.Send(collector, 5*time.Second); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("applied: %s\n", cmd)
}
