// Microburst detection (§5.4.1 / Figure 11): a small (BDP/4) switch
// buffer, three long flows, and an injected UDP packet train. The P4
// data plane watches queue occupancy per packet and reports the burst
// with nanosecond start time and duration — something no sampled
// monitor can see.
//
//	go run ./examples/microburst
package main

import (
	"fmt"

	"repro/p4psonar"
)

func main() {
	const bottleneck = 500e6 // fast-scale 10 Gbps
	rtt := 100 * p4psonar.Millisecond
	buffer := p4psonar.BDPBytes(bottleneck, rtt) / 4 // the paper's small buffer

	sys := p4psonar.NewSystem(p4psonar.Options{
		BottleneckBps: bottleneck,
		RTTs:          [3]p4psonar.Time{rtt, rtt, rtt},
		BufferBytes:   buffer,
	})
	sys.Start()

	sender := p4psonar.SenderConfig{MSS: 1448}
	for i := 0; i < 3; i++ {
		sys.TransferToExternal(i, 0, 0, 30*p4psonar.Second, sender, p4psonar.ReceiverConfig{})
	}

	// The microburst: 400 packets back-to-back at the access-link rate.
	sys.InjectMicroburst(0, 15*p4psonar.Second, 400, 1448)

	sys.Run(30 * p4psonar.Second)

	fmt.Printf("buffer = BDP/4 = %d bytes (drain time %v)\n\n", buffer, sys.MaxQueueDelay())

	bursts := sys.MicroburstReports()
	fmt.Printf("microbursts detected by the data plane: %d\n", len(bursts))
	for _, b := range bursts {
		fmt.Printf("  start=%v duration=%v peak-occupancy=%.1f%% packets=%d\n",
			p4psonar.Time(b.TimeNs), p4psonar.Time(b.DurationNs), b.Value, b.BurstPackets)
	}

	fmt.Println("\nimpact on the flows (loss % per destination):")
	for dst, series := range sys.SeriesByDestination(p4psonar.MetricPacketLoss) {
		fmt.Printf("  %s: worst window %.3f%%\n", dst, series.Max())
	}

	fmt.Println("\nalerts raised by the control plane:")
	for _, a := range sys.ControlPlane.AlertLog {
		fmt.Printf("  t=%v metric=%s value=%.1f threshold=%.1f\n",
			p4psonar.Time(a.TimeNs), a.Metric, a.Value, a.Threshold)
	}
	if len(sys.ControlPlane.AlertLog) == 0 {
		fmt.Println("  (none configured — use psconfig config-P4 --alert to add thresholds)")
	}
}
