// In-band Network Telemetry (extension, after the AmLight deployment
// in the paper's related work): both legacy switches append per-hop
// metadata to transit packets, and an INT sink at the destination DTN
// strips and aggregates it — per-hop latency and queue depth for every
// packet, complementing the TAP-based passive measurements.
//
//	go run ./examples/inband
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/inband"
	"repro/internal/packet"
	"repro/p4psonar"
)

func main() {
	sys := core.NewSystem(core.Options{
		BottleneckBps: 500e6,
	})
	// Instrument both switches as INT transit hops.
	sys.CoreSwitch.INTEnabled = true
	sys.AggSwitch.INTEnabled = true

	// The destination DTN acts as the INT sink: it strips the stacks
	// and feeds the collector.
	collector := inband.NewCollector()
	sys.ExternalDTNs[0].OnINT = func(pkt *packet.Packet) {
		collector.Ingest(inband.Report{
			Flow: pkt.FiveTuple(),
			At:   sys.Engine.Now(),
			Path: inband.Extract(pkt),
		})
	}

	sys.Start()
	// Two flows to the same destination congest the bottleneck so the
	// per-hop telemetry has something to show.
	sender := p4psonar.SenderConfig{MSS: 1448}
	sys.TransferToExternal(0, 0, 0, 10*p4psonar.Second, sender, p4psonar.ReceiverConfig{})
	sys.TransferToExternal(0, 2*p4psonar.Second, 0, 8*p4psonar.Second, sender, p4psonar.ReceiverConfig{})
	sys.Run(10 * p4psonar.Second)

	fmt.Println(collector.Summary())

	fmt.Println("where the queueing lives:")
	for _, hop := range collector.Hops() {
		lat := collector.HopLatencySeries(hop)
		q := collector.HopQueueSeries(hop)
		fmt.Printf("  %-12s p-latency max %9.1fus  queue max %9.0f bytes\n",
			hop, lat.Max(), q.Max())
	}
	fmt.Println("\n(the core switch's WAN port is the bottleneck, and INT shows it per packet)")
}
