// mmWave LOS blockage (§5.4.3 / Figures 13-14): a CBR flow crosses a
// 60 GHz link that a 2-second blockage severs at t=7s. Per-packet
// inter-arrival times in the data plane reveal the blockage orders of
// magnitude faster than throughput polling or RSSI averaging, so the
// P4-based system fails over before throughput visibly degrades.
//
//	go run ./examples/mmwave
package main

import (
	"fmt"

	"repro/p4psonar"
)

func main() {
	fmt.Println("== Figure 13: the IAT signal ==")
	f13 := p4psonar.RunFig13(p4psonar.Fig13Config{})
	fmt.Println(f13.Render())

	fmt.Println("== Figure 14: detector race ==")
	f14 := p4psonar.RunFig14(p4psonar.Fig13Config{})
	fmt.Println(f14.Render())

	fmt.Println("per-system outcome:")
	for _, k := range []p4psonar.BlockageDetector{
		p4psonar.DetectorP4IAT, p4psonar.DetectorThroughput, p4psonar.DetectorRSSI,
	} {
		fmt.Println("  " + f14.Results[k].Describe())
	}
}
