// Limitation identification (§5.4.2 / Figure 12): three concurrent
// transfers, each bottlenecked differently — by the network (random
// loss), by the receiver (small TCP buffer), and by the sender
// (application pacing). The P4 data plane watches flight size against
// packet losses (the Dapper heuristic) and tells the administrator
// which transfers would NOT benefit from active measurements.
//
//	go run ./examples/limitation
package main

import (
	"fmt"

	"repro/p4psonar"
)

func main() {
	r := p4psonar.RunFig12(p4psonar.Fig12Config{
		Duration: 30 * p4psonar.Second,
	})

	fmt.Println(r.Render())

	fmt.Println("operator guidance (§3.3.4):")
	for dst, verdict := range r.Verdicts {
		switch verdict {
		case p4psonar.LimitedByNetwork:
			fmt.Printf("  %s: network-limited -> running active tests to localise the problem is justified\n", dst)
		case p4psonar.LimitedByEndpoint:
			fmt.Printf("  %s: endpoint-limited -> do NOT run active tests; tune the DTN instead\n", dst)
		default:
			fmt.Printf("  %s: %s\n", dst, verdict)
		}
	}
}
