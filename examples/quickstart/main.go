// Quickstart: build the paper's Science DMZ testbed, run two data
// transfers through the tapped core switch, and read back what the P4
// data plane measured — per-flow throughput, RTT, queue occupancy and
// packet loss, plus the control plane's aggregates.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/p4psonar"
)

func main() {
	// A fast-scale testbed: 500 Mbps bottleneck instead of 10 Gbps so
	// the example finishes in a couple of wall seconds. Everything
	// else matches the paper's §5.1 setup (RTTs 50/75/100 ms, 1-BDP
	// buffer, TAPs on the core switch feeding the P4 pipeline).
	sys := p4psonar.NewSystem(p4psonar.Options{
		BottleneckBps: 500e6,
	})
	sys.Start()

	// Two iPerf3-style transfers from the internal DTN to external
	// DTN1 and DTN2, 15 virtual seconds each.
	sender := p4psonar.SenderConfig{MSS: 1448}
	sys.TransferToExternal(0, 0, 0, 15*p4psonar.Second, sender, p4psonar.ReceiverConfig{})
	sys.TransferToExternal(1, 0, 0, 15*p4psonar.Second, sender, p4psonar.ReceiverConfig{})

	sys.Run(16 * p4psonar.Second)

	fmt.Println("== per-flow measurements (data plane registers, via control plane) ==")
	for _, metric := range []p4psonar.Metric{
		p4psonar.MetricThroughput,
		p4psonar.MetricRTT,
		p4psonar.MetricQueueOccupancy,
		p4psonar.MetricPacketLoss,
	} {
		for dst, series := range sys.SeriesByDestination(metric) {
			fmt.Printf("%-16s -> %-14s samples=%-4d mean=%10.3f max=%10.3f\n",
				metric, dst, series.Len(), series.Mean(), series.Max())
		}
	}

	util, fairness, _ := sys.AggregateSeries()
	fmt.Println("\n== control-plane aggregates (§5.3) ==")
	fmt.Printf("link utilization: mean %.2f\n", util.Mean())
	fmt.Printf("Jain's fairness:  mean %.3f\n", fairness.Mean())

	fmt.Println("\n== terminated-flow reports (§3.3.2) ==")
	for _, s := range sys.FlowSummaries() {
		fmt.Printf("%s:%d -> %s:%d  bytes=%d pkts=%d avg=%.1f Mbps retrans=%d (%.3f%%)\n",
			s.SrcIP, s.SrcPort, s.DstIP, s.DstPort,
			s.Bytes, s.Packets, s.AvgThroughputBps/1e6, s.Retransmissions, s.RetransmitPct)
	}

	fmt.Println("\n== archiver (Report_v2 documents in OpenSearch) ==")
	for _, idx := range sys.Store.Indices() {
		fmt.Printf("index %-28s %5d documents\n", idx, sys.Store.Count(idx))
	}
}
