//go:build !race

// Zero-allocation assertions for the per-packet hot path. The race
// detector instruments allocations, so these run only in the ordinary
// test configuration (CI's build/test job; the race job skips them).
package repro

import (
	"testing"

	"repro/internal/dataplane"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/sketch"
	"repro/internal/tap"
)

// allocFlow is the synthetic 5-tuple the assertions drive through the
// pipeline.
func allocFlow() packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   packet.MustAddr("172.16.0.10"),
		DstIP:   packet.MustAddr("192.168.1.10"),
		SrcPort: 40000,
		DstPort: 5201,
		Proto:   packet.ProtoTCP,
	}
}

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	f() // warm up: first-flow announcements, lazy table growth
	if avg := testing.AllocsPerRun(200, f); avg != 0 {
		t.Errorf("%s: %.2f allocs/op, want 0", name, avg)
	}
}

// TestAllocFreeDataPlanePerPacket pins the tentpole property: the
// ingress data path, the ingress ACK path and the egress path allocate
// nothing per packet once a flow's state exists.
func TestAllocFreeDataPlanePerPacket(t *testing.T) {
	dp := dataplane.New(dataplane.Config{})
	ft := allocFlow()
	data := packet.NewTCP(ft, 1, 0, packet.FlagACK|packet.FlagPSH, 1448)
	ack := packet.NewTCP(ft.Reverse(), 1, 1449, packet.FlagACK, 0)

	seq := uint64(1)
	at := simtime.Millisecond
	assertZeroAllocs(t, "ingress data", func() {
		data.SeqExt = seq
		data.IPID = uint16(seq)
		seq += 1448
		at += 10 * simtime.Microsecond
		dp.ProcessCopy(tap.Copy{Pkt: data, Point: tap.Ingress, At: at})
	})

	ackNo := uint64(1449)
	assertZeroAllocs(t, "ingress ack", func() {
		ack.AckExt = ackNo
		ackNo += 1448
		at += 10 * simtime.Microsecond
		dp.ProcessCopy(tap.Copy{Pkt: ack, Point: tap.Ingress, At: at})
	})

	assertZeroAllocs(t, "egress", func() {
		at += 10 * simtime.Microsecond
		dp.ProcessCopy(tap.Copy{Pkt: data, Point: tap.Egress, At: at})
	})
}

// TestAllocFreeDataPlaneInstrumented repeats the per-packet assertions
// with self-telemetry enabled: RegisterObs must not change the
// allocation profile, because every hook on the packet path is an
// atomic add into preallocated counter/histogram storage.
func TestAllocFreeDataPlaneInstrumented(t *testing.T) {
	dp := dataplane.New(dataplane.Config{})
	dp.RegisterObs(obs.NewRegistry())
	ft := allocFlow()
	data := packet.NewTCP(ft, 1, 0, packet.FlagACK|packet.FlagPSH, 1448)
	ack := packet.NewTCP(ft.Reverse(), 1, 1449, packet.FlagACK, 0)

	seq := uint64(1)
	at := simtime.Millisecond
	assertZeroAllocs(t, "instrumented ingress data", func() {
		data.SeqExt = seq
		data.IPID = uint16(seq)
		seq += 1448
		at += 10 * simtime.Microsecond
		dp.ProcessCopy(tap.Copy{Pkt: data, Point: tap.Ingress, At: at})
	})

	ackNo := uint64(1449)
	assertZeroAllocs(t, "instrumented ingress ack", func() {
		ack.AckExt = ackNo
		ackNo += 1448
		at += 10 * simtime.Microsecond
		dp.ProcessCopy(tap.Copy{Pkt: ack, Point: tap.Ingress, At: at})
	})

	assertZeroAllocs(t, "instrumented egress", func() {
		at += 10 * simtime.Microsecond
		dp.ProcessCopy(tap.Copy{Pkt: data, Point: tap.Egress, At: at})
	})
}

// TestAllocFreePipesPerPacket extends the per-packet contract to the
// sharded front-end. At shards=1 every call forwards synchronously —
// the profile must be identical to the bare pipeline. At shards>1 the
// per-packet cost is parse + lock + batch append into pre-allocated
// capacity: still zero allocations per packet (flush-worker spawns are
// per-barrier and amortised, never per-packet).
func TestAllocFreePipesPerPacket(t *testing.T) {
	ft := allocFlow()
	for _, shards := range []int{1, 4} {
		p := dataplane.NewPipes(dataplane.Config{}, shards)
		data := packet.NewTCP(ft, 1, 0, packet.FlagACK|packet.FlagPSH, 1448)
		ack := packet.NewTCP(ft.Reverse(), 1, 1449, packet.FlagACK, 0)

		name := func(s string) string { return s }
		if shards > 1 {
			name = func(s string) string { return s + " (sharded enqueue)" }
		}
		seq := uint64(1)
		at := simtime.Millisecond
		assertZeroAllocs(t, name("pipes ingress data"), func() {
			data.SeqExt = seq
			data.IPID = uint16(seq)
			seq += 1448
			at += 10 * simtime.Microsecond
			p.ProcessCopy(tap.Copy{Pkt: data, Point: tap.Ingress, At: at})
		})

		ackNo := uint64(1449)
		assertZeroAllocs(t, name("pipes ingress ack"), func() {
			ack.AckExt = ackNo
			ackNo += 1448
			at += 10 * simtime.Microsecond
			p.ProcessCopy(tap.Copy{Pkt: ack, Point: tap.Ingress, At: at})
		})

		assertZeroAllocs(t, name("pipes egress"), func() {
			at += 10 * simtime.Microsecond
			p.ProcessCopy(tap.Copy{Pkt: data, Point: tap.Egress, At: at})
		})
	}
}

// TestAllocFreeBatchPath pins the batch execution path: filling a
// capacity-retained Front and draining it through ProcessFront
// run-to-completion allocates nothing per batch at shards 1 and 4
// (front append into retained capacity, hoisted counter commits,
// memoised flow-ID hashing — no per-view work that could allocate).
func TestAllocFreeBatchPath(t *testing.T) {
	ft := allocFlow()
	for _, shards := range []int{1, 4} {
		p := dataplane.NewPipes(dataplane.Config{}, shards)
		data := packet.NewTCP(ft, 1, 0, packet.FlagACK|packet.FlagPSH, 1448)
		ack := packet.NewTCP(ft.Reverse(), 1, 1449, packet.FlagACK, 0)

		const batch = 64
		f := dataplane.NewFront(batch)
		seq := uint64(1)
		at := simtime.Millisecond
		name := "batch fill+drain"
		if shards > 1 {
			name = "batch fill+drain (sharded)"
		}
		assertZeroAllocs(t, name, func() {
			for i := 0; i < batch; i++ {
				at += 10 * simtime.Microsecond
				switch i % 4 {
				case 0, 1:
					data.SeqExt = seq
					data.IPID = uint16(seq)
					seq += 1448
					f.AppendCopy(tap.Copy{Pkt: data, Point: tap.Ingress, At: at})
				case 2:
					f.AppendCopy(tap.Copy{Pkt: data, Point: tap.Egress, At: at})
				default:
					ack.AckExt = seq
					f.AppendCopy(tap.Copy{Pkt: ack, Point: tap.Ingress, At: at})
				}
			}
			p.ProcessFront(f)
			f.Reset()
		})
	}
}

// TestAllocFreeGenerationRead pins the reconfiguration model's hot
// half: pinning a tuning generation (Acquire/Value/Release — the work
// every packet front does once) allocates nothing, with and without a
// concurrent history of publishes behind it. Publishing allocates (a
// new snapshot by design); reading never may.
func TestAllocFreeGenerationRead(t *testing.T) {
	dp := dataplane.New(dataplane.Config{})
	st := dp.TuningStore()
	var sink uint64
	assertZeroAllocs(t, "tuning Acquire/Value/Release", func() {
		g := st.Acquire()
		sink += g.Value().LongFlowBytes
		st.Release(g)
	})
	// A published successor must not change the read-side profile.
	if err := dp.UpdateTuning(func(tn *dataplane.Tuning) error {
		tn.LongFlowBytes = 2 << 20
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	assertZeroAllocs(t, "tuning read after publish", func() {
		g := st.Acquire()
		sink += g.Value().LongFlowBytes
		st.Release(g)
	})
	if sink == 0 {
		t.Fatal("generation reads returned no data")
	}
}

// TestAllocFreeObsPrimitives pins the telemetry primitives themselves:
// counter and gauge mutation, a histogram observation, and a trace-ring
// append are all single atomic ops or in-place ring writes.
func TestAllocFreeObsPrimitives(t *testing.T) {
	r := obs.NewRegistry()
	c := r.NewCounter("p4_alloc_test_total", "alloc assertion")
	g := r.NewGauge("p4_alloc_test_gauge", "alloc assertion")
	h := r.NewHistogram("p4_alloc_test_ns", "alloc assertion")
	tr := r.NewTrace("alloc", 64)

	var v uint64
	assertZeroAllocs(t, "Counter.Inc", func() { c.Inc() })
	assertZeroAllocs(t, "Gauge.Set", func() { v++; g.Set(v) })
	assertZeroAllocs(t, "Histogram.Observe", func() { v++; h.Observe(v) })
	assertZeroAllocs(t, "Trace.Add", func() { v++; tr.Add("tick", v, 0) })
}

// TestAllocFreeFlowHashing pins the key-packing and sketch paths: one
// KeyOf per packet, every derived hash reading the packed bytes.
func TestAllocFreeFlowHashing(t *testing.T) {
	ft := allocFlow()
	var sink dataplane.FlowID
	assertZeroAllocs(t, "KeyOf+Hash+Reverse", func() {
		k := dataplane.KeyOf(ft)
		sink = k.Hash() ^ k.Reverse().Hash()
	})
	cms := dataplane.NewCMS(1024, 4)
	k := dataplane.KeyOf(ft)
	assertZeroAllocs(t, "CMS UpdateKey", func() {
		cms.UpdateKey(k, 1448)
	})
	_ = sink
}

// TestAllocFreeScheduler pins the engine's steady state: scheduling
// into reserved heap capacity and draining events allocates nothing,
// and a Timer re-arm reuses its bound callback.
func TestAllocFreeScheduler(t *testing.T) {
	e := simtime.NewEngine()
	e.Reserve(64)
	fired := 0
	fn := func() { fired++ }
	assertZeroAllocs(t, "Schedule+RunAll", func() {
		for i := 0; i < 16; i++ {
			e.Schedule(simtime.Time(i%4), fn)
		}
		e.RunAll()
	})

	timer := simtime.NewTimer(e, fn)
	assertZeroAllocs(t, "Timer Reset cycle", func() {
		timer.Reset(simtime.Millisecond)
		timer.Reset(5 * simtime.Millisecond) // lazy re-target: no new event
		e.RunAll()
	})
	if fired == 0 {
		t.Fatal("callbacks never fired")
	}
}

// TestAllocFreePacketPool pins the arena round trip: a Get/Release
// cycle (and the pooled TCP/UDP constructors) reuse recycled slots.
func TestAllocFreePacketPool(t *testing.T) {
	ft := allocFlow()
	assertZeroAllocs(t, "Get/Release", func() {
		p := packet.Get()
		p.Release()
	})
	assertZeroAllocs(t, "GetTCP/Release", func() {
		p := packet.GetTCP(ft, 1, 2, packet.FlagACK, 1448)
		p.Release()
	})
	assertZeroAllocs(t, "GetUDP/Release", func() {
		p := packet.GetUDP(ft, 512)
		p.Release()
	})
}

// TestAllocFreeSketchTier pins the lean tier's hot path: CMS updates,
// dup-filter probes, loss counting and estimates are pure array
// arithmetic over preallocated storage.
func TestAllocFreeSketchTier(t *testing.T) {
	lean := sketch.NewLean(sketch.Config{})
	k := sketch.Key(dataplane.KeyOf(allocFlow()))
	seq := uint64(1)
	assertZeroAllocs(t, "Lean.Observe", func() { lean.Observe(&k, 1488) })
	assertZeroAllocs(t, "Lean.SeenSeq", func() { seq += 1448; lean.SeenSeq(&k, seq) })
	assertZeroAllocs(t, "Lean.CountLoss", func() { lean.CountLoss(&k) })
	var sink uint64
	assertZeroAllocs(t, "Lean.Estimate", func() {
		b, p, l := lean.Estimate(&k)
		sink += b + p + l
	})
	if sink == 0 {
		t.Fatal("estimates returned nothing")
	}
}

// TestAllocFreeSketchTierIngress pins the non-admitted packet path
// through the pipeline: with a 1-cell table, a second flow loses
// admission and every one of its packets takes the leanIngress route —
// aliasing accounting, sketch updates and dup-filter probes included —
// without allocating.
func TestAllocFreeSketchTierIngress(t *testing.T) {
	dp := dataplane.New(dataplane.Config{FlowTableSize: 1})
	owner := allocFlow()
	loser := allocFlow()
	loser.SrcPort = 40001
	at := simtime.Millisecond
	own := packet.NewTCP(owner, 1, 0, packet.FlagACK|packet.FlagPSH, 1448)
	dp.ProcessCopy(tap.Copy{Pkt: own, Point: tap.Ingress, At: at})

	data := packet.NewTCP(loser, 1, 0, packet.FlagACK|packet.FlagPSH, 1448)
	seq := uint64(1)
	assertZeroAllocs(t, "sketch-tier ingress data", func() {
		data.SeqExt = seq
		data.IPID = uint16(seq)
		seq += 1448
		at += 10 * simtime.Microsecond
		dp.ProcessCopy(tap.Copy{Pkt: data, Point: tap.Ingress, At: at})
	})
	if dp.Stats.AliasedPackets == 0 {
		t.Fatal("loser flow was not routed to the sketch tier")
	}
}

// TestAllocFreeRTTHistogram pins the in-register histogram: the ACK
// path's bucket increment is one register Add, and reading a flow's
// histogram back copies into a caller-frame value.
func TestAllocFreeRTTHistogram(t *testing.T) {
	dp := dataplane.New(dataplane.Config{})
	ft := allocFlow()
	id := dataplane.HashFiveTuple(ft)
	data := packet.NewTCP(ft, 1, 0, packet.FlagACK|packet.FlagPSH, 1448)
	ack := packet.NewTCP(ft.Reverse(), 1, 1449, packet.FlagACK, 0)

	seq := uint64(1)
	at := simtime.Millisecond
	assertZeroAllocs(t, "data+ack with histogram update", func() {
		data.SeqExt = seq
		data.IPID = uint16(seq)
		dp.ProcessCopy(tap.Copy{Pkt: data, Point: tap.Ingress, At: at})
		ack.AckExt = seq + 1448
		dp.ProcessCopy(tap.Copy{Pkt: ack, Point: tap.Ingress, At: at + 5*simtime.Millisecond})
		seq += 1448
		at += 10 * simtime.Millisecond
	})
	if dp.Stats.RTTSamples == 0 {
		t.Fatal("no RTT samples recorded")
	}
	var count uint64
	assertZeroAllocs(t, "ReadRTTHist", func() {
		h := dp.ReadRTTHist(id)
		count = h.Count()
	})
	if count == 0 {
		t.Fatal("histogram empty after sampled ACKs")
	}
}
