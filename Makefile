# Convenience targets mirroring the CI gate (.github/workflows/ci.yml).

GO ?= go

# The headline exhibits the benchmark-regression gate judges.
BENCH_GATE = ^BenchmarkFig9PerFlow$$|^BenchmarkTable1Comparison$$|^BenchmarkReplayThroughput$$|^BenchmarkSketchUpdate$$|^BenchmarkScaleSweep$$

# The coverage ratchet: `make cover` (and CI's cover job) fails when
# total statement coverage drops below this. Raise it in the PR that
# raises coverage; never lower it to make a build pass.
COVER_MIN = 79.0

.PHONY: all build vet test race lint lint-deep chaos bench benchcmp replay-bench cover obs scale docs ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-instrumented experiment simulations can exceed go test's default
# 10-minute per-package timeout on small (1–2 core) runners.
race:
	$(GO) test -race -timeout 30m ./...

# lint runs the cheap per-package syntactic passes; lint-deep the
# whole-program dataflow passes (call graph, hotpath propagation,
# atomic/plain mixing, lock ordering, determinism). CI runs both; when
# invoked inside GitHub Actions, lint-deep emits ::error annotations so
# findings land inline on the PR diff.
lint:
	$(GO) run ./cmd/p4lint -syntactic ./...

lint-deep:
	$(GO) run ./cmd/p4lint -deep $(if $(GITHUB_ACTIONS),-gha) ./...

# chaos runs the fault-injection suites under the race detector: the
# scripted-outage shipper tests, the archiver ingest robustness tests,
# the config-channel fault harness, the end-to-end outage and
# reconfigure-under-load scenarios — plus the goleak pass proving the
# shipper's goroutines terminate on Close.
chaos:
	$(GO) test -race -timeout 30m ./internal/faultnet ./internal/resilient ./internal/psarchiver ./internal/psconfig ./internal/genconfig
	$(GO) test -race -timeout 30m -run 'TestExtOutage|TestReconfig' ./internal/experiments
	$(GO) run ./cmd/p4lint -only goleak ./internal/resilient ./internal/faultnet

# bench re-measures the gated exhibits and records them as the new
# committed baseline (BENCH_9.json). Run it on a quiet machine after an
# intentional performance change, and commit the result.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE)' -benchmem -benchtime 1x . | tee bench.out
	$(GO) run ./cmd/benchcmp -write BENCH_9.json < bench.out

# benchcmp is the regression gate: a fresh run must stay within 10%
# ns/op of the committed baseline.
benchcmp:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE)' -benchmem -benchtime 1x . | tee bench.out
	$(GO) run ./cmd/benchcmp -baseline BENCH_9.json -max-regress-pct 10 < bench.out

# replay-bench streams a large synthetic workload through the batch
# ingest path and prints the machine's packets/sec and Gbps (the
# interactive counterpart of BenchmarkReplayThroughput; EXPERIMENTS.md
# records representative numbers).
replay-bench:
	$(GO) run ./cmd/replay -n 5000000

# cover measures statement coverage across every package and enforces
# the ratchet, with a per-package breakdown written to
# cover-by-package.txt (CI uploads it as an artifact).
cover:
	$(GO) test ./... -coverprofile=cover.out -timeout 30m
	$(GO) run ./cmd/covercheck -profile cover.out -min $(COVER_MIN) -breakdown cover-by-package.txt

# obs gates the self-telemetry layer: the exposition-format golden and
# trace-ring ordering tests under the race detector, the mid-outage
# /metrics ladder-invariant scrape test, and the zero-alloc assertions
# proving instrumentation adds nothing to the packet path (these last
# run without -race, whose instrumented allocator would distort them).
obs:
	$(GO) test -race -timeout 30m ./internal/obs
	$(GO) test -race -timeout 30m -run 'TestExtOutageObsInvariant' ./internal/experiments
	$(GO) test -run 'TestAllocFree' -count=1 .

# scale gates the memory-bounded telemetry tier: the sketch, admission
# and aging suites under the race detector, then the CI-sized
# accuracy-vs-memory sweep (10k–200k flows) via the batch front-end.
# The nightly workflow runs the same sweep to the 1M-flow paper point.
scale:
	$(GO) test -race -timeout 30m ./internal/sketch
	$(GO) test -race -timeout 30m -run 'TestAdmission|TestAgeFlows|TestRTTHist|TestRTTBucket|TestFlowTableMemory' ./internal/dataplane
	$(GO) test -race -timeout 30m -run 'TestScaleSweep' ./internal/experiments
	$(GO) run ./cmd/p4psonar run scale

# federation runs the fleet scenario end to end: the CI-sized 2×2
# topology under -race (registration, fan-out, member-kill/rejoin,
# exact cross-site accounting, byte-stable witness), then the CLI
# wiring through cmd/p4psonar. The nightly workflow runs the
# 10-switch -paper topology.
federation:
	$(GO) test -race -timeout 10m -run 'TestRunFederation|TestFederationPaper' ./internal/experiments
	$(GO) test -race -timeout 10m -run 'TestMembership|TestServeShutdown' ./internal/p4runtime
	$(GO) run ./cmd/p4psonar run federation

# docs keeps the prose honest: every make target, CLI flag and obs
# metric name in the documentation's code regions must exist (Makefile
# targets, flag registrations in cmd/, the generated metrics
# inventory). CI's docs job runs this.
docs:
	$(GO) run ./cmd/docscheck README.md ARCHITECTURE.md EXPERIMENTS.md OPERATIONS.md DESIGN.md

ci: build vet test race lint lint-deep docs
