# Convenience targets mirroring the CI gate (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build vet test race lint ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/p4lint ./...

ci: build vet race lint
