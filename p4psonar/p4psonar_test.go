package p4psonar_test

import (
	"testing"

	"repro/p4psonar"
)

// TestFacadeEndToEnd drives the library exactly as the README's
// quick-start shows, through the public facade only.
func TestFacadeEndToEnd(t *testing.T) {
	sys := p4psonar.NewSystem(p4psonar.Options{
		BottleneckBps: 200e6,
	})
	sys.Start()
	sys.TransferToExternal(0, 0, 0, 5*p4psonar.Second,
		p4psonar.SenderConfig{MSS: 1448}, p4psonar.ReceiverConfig{})
	sys.Run(6 * p4psonar.Second)

	series := sys.SeriesByDestination(p4psonar.MetricThroughput)
	if len(series) != 1 {
		t.Fatalf("series: %d", len(series))
	}
	for _, s := range series {
		if s.Len() == 0 || s.Max() <= 0 {
			t.Fatal("empty throughput series")
		}
	}
}

func TestFacadeBDP(t *testing.T) {
	if p4psonar.BDPBytes(10e9, 100*p4psonar.Millisecond) != 125_000_000 {
		t.Fatal("BDP arithmetic wrong")
	}
}

func TestFacadeConfigP4(t *testing.T) {
	cmd, err := p4psonar.ParseConfigP4([]string{"--metric", "rtt", "--samples_per_second", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Metric != "rtt" || cmd.SamplesPerSecond != 2 {
		t.Fatalf("cmd: %+v", cmd)
	}
}

func TestFacadeScales(t *testing.T) {
	if p4psonar.PaperScale().Bottleneck() != 10e9 {
		t.Fatal("paper scale wrong")
	}
	if p4psonar.FastScale().Bottleneck() != 500e6 {
		t.Fatal("fast scale wrong")
	}
}

func TestFacadeMMWave(t *testing.T) {
	r := p4psonar.RunFig14(p4psonar.Fig13Config{})
	if !r.OrderingHolds {
		t.Fatal("detector ordering violated through facade")
	}
	if r.Results[p4psonar.DetectorP4IAT].DetectionLatency <= 0 {
		t.Fatal("no detection latency")
	}
}
