// Package p4psonar is the public facade of the P4-perfSONAR
// reproduction: it re-exports the assembled system (topology + TAPs +
// P4 data plane + control plane + perfSONAR archiver), the experiment
// drivers for every table and figure in the paper, and the pSConfig
// config-P4 command surface.
//
// Quick start:
//
//	sys := p4psonar.NewSystem(p4psonar.Options{})
//	sys.Start()
//	sys.TransferToExternal(0, 0, 0, 10*p4psonar.Second, p4psonar.SenderConfig{MSS: 8960}, p4psonar.ReceiverConfig{})
//	sys.Run(12 * p4psonar.Second)
//	for dst, series := range sys.SeriesByDestination(p4psonar.MetricThroughput) {
//		fmt.Println(dst, series.Mean())
//	}
package p4psonar

import (
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/inband"
	"repro/internal/mmwave"
	"repro/internal/psconfig"
	"repro/internal/simtime"
	"repro/internal/tcp"
)

// System assembly.
type (
	// System is the full testbed plus measurement chain (Figure 4).
	System = core.System
	// Options configures the testbed; zero values select the paper's
	// parameters (10 Gbps bottleneck, 50/75/100 ms RTTs, 1-BDP buffer).
	Options = core.Options
	// SenderConfig tunes a transfer's sending endpoint.
	SenderConfig = tcp.Config
	// ReceiverConfig tunes a transfer's receiving endpoint.
	ReceiverConfig = tcp.Config
)

// NewSystem builds the testbed.
func NewSystem(opts Options) *System { return core.NewSystem(opts) }

// BDPBytes computes a bandwidth-delay product in bytes.
func BDPBytes(bps float64, rtt Time) int { return core.BDPBytes(bps, rtt) }

// Virtual time.
type Time = simtime.Time

// Time units.
const (
	Nanosecond  = simtime.Nanosecond
	Microsecond = simtime.Microsecond
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
)

// Metrics and reports.
type (
	// Metric names one of the four monitored quantities.
	Metric = controlplane.Metric
	// Report is the structured record the control plane emits.
	Report = controlplane.Report
)

// The four configurable metrics of Figure 5(a).
const (
	MetricThroughput     = controlplane.MetricThroughput
	MetricPacketLoss     = controlplane.MetricPacketLoss
	MetricRTT            = controlplane.MetricRTT
	MetricQueueOccupancy = controlplane.MetricQueueOccupancy
)

// Limitation verdicts (§4.4).
const (
	LimitedByNetwork  = controlplane.LimitedByNetwork
	LimitedByEndpoint = controlplane.LimitedByEndpoint
)

// pSConfig integration (Figure 6).
type (
	// ConfigCommand is a parsed `psconfig config-P4` invocation.
	ConfigCommand = psconfig.Command
)

// ParseConfigP4 parses config-P4 arguments.
func ParseConfigP4(args []string) (ConfigCommand, error) { return psconfig.ParseConfigP4(args) }

// Experiments: one entry point per table/figure.
type (
	// Scale selects paper-scale or fast-scale experiment runs.
	Scale = experiments.Scale
)

// PaperScale runs experiments at the testbed's 10 Gbps.
func PaperScale() Scale { return experiments.Paper() }

// FastScale runs experiments at 1/20 bandwidth for quick iteration.
func FastScale() Scale { return experiments.Fast() }

// Experiment configurations and results.
type (
	Fig9Config   = experiments.Fig9Config
	Fig9Result   = experiments.Fig9Result
	Fig11Config  = experiments.Fig11Config
	Fig11Result  = experiments.Fig11Result
	Fig12Config  = experiments.Fig12Config
	Fig12Result  = experiments.Fig12Result
	Fig13Config  = experiments.Fig13Config
	Fig13Result  = experiments.Fig13Result
	Fig14Result  = experiments.Fig14Result
	Table1Config = experiments.Table1Config
	Table1Result = experiments.Table1Result
)

// RunFig9 regenerates Figure 9 (and Figure 10's data).
func RunFig9(cfg Fig9Config) *Fig9Result { return experiments.RunFig9(cfg) }

// RunFig11 regenerates Figure 11.
func RunFig11(cfg Fig11Config) *Fig11Result { return experiments.RunFig11(cfg) }

// RunFig12 regenerates Figure 12.
func RunFig12(cfg Fig12Config) *Fig12Result { return experiments.RunFig12(cfg) }

// RunFig13 regenerates Figure 13.
func RunFig13(cfg Fig13Config) *Fig13Result { return experiments.RunFig13(cfg) }

// RunFig14 regenerates Figure 14.
func RunFig14(cfg Fig13Config) *Fig14Result { return experiments.RunFig14(cfg) }

// RunTable1 regenerates the Table 1 comparison.
func RunTable1(cfg Table1Config) *Table1Result { return experiments.RunTable1(cfg) }

// Coexistence extension (beyond the paper; from its related work).
type (
	// CoexistenceConfig parameterises the CUBIC/BBR coexistence and
	// P4CCI-style identification experiment.
	CoexistenceConfig = experiments.CoexistenceConfig
	// CoexistenceResult reports shares and CCA verdicts.
	CoexistenceResult = experiments.CoexistenceResult
)

// RunCoexistence runs the CUBIC/BBR extension experiment.
func RunCoexistence(cfg CoexistenceConfig) *CoexistenceResult {
	return experiments.RunExtCoexistence(cfg)
}

// In-band Network Telemetry extension (AmLight-style, from the paper's
// related work).
type (
	// INTCollector aggregates per-hop telemetry reports.
	INTCollector = inband.Collector
	// INTReport is one collected packet's path telemetry.
	INTReport = inband.Report
	// INTHop is one hop's metadata entry.
	INTHop = inband.HopMetadata
)

// NewINTCollector creates an empty INT collector.
func NewINTCollector() *INTCollector { return inband.NewCollector() }

// ExtractINT strips a packet's telemetry stack (the sink operation).
var ExtractINT = inband.Extract

// mmWave blockage use case (§5.4.3).
type (
	// BlockageDetector selects a detection design for the mmWave use
	// case.
	BlockageDetector = mmwave.DetectorKind
	// BlockageResult reports one blockage scenario run.
	BlockageResult = mmwave.Result
)

// Blockage detector kinds.
const (
	DetectorP4IAT      = mmwave.DetectorP4IAT
	DetectorThroughput = mmwave.DetectorThroughput
	DetectorRSSI       = mmwave.DetectorRSSI
)
