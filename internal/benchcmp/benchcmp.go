// Package benchcmp parses `go test -bench` output and compares runs
// against a committed baseline — the benchmark-regression gate wired
// into `make benchcmp` and the CI bench job. It understands the subset
// of the benchmark format the gate needs: ns/op and allocs/op.
package benchcmp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measured cost.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Iterations is the b.N the run settled on, kept for context.
	Iterations int64 `json:"iterations,omitempty"`
}

// Baseline is the committed reference file (BENCH_7.json): the measured
// results keyed by benchmark name, plus free-form notes describing the
// machine and command that produced them.
type Baseline struct {
	Notes      string            `json:"notes,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Parse reads `go test -bench` text output and returns results keyed by
// benchmark name with the -cpu suffix stripped (Benchmark runs report as
// "BenchmarkName-8"; the gate compares across machines, so core count is
// noise). Non-benchmark lines are ignored.
func Parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Shortest valid line: name, iterations, value, "ns/op".
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		found := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				found = true
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if found {
			out[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadBaseline reads a committed baseline JSON file.
func LoadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("benchcmp: parsing %s: %w", path, err)
	}
	if b.Benchmarks == nil {
		return b, fmt.Errorf("benchcmp: %s has no benchmarks", path)
	}
	return b, nil
}

// WriteBaseline marshals a baseline to path, sorted and indented so the
// committed file diffs cleanly.
func WriteBaseline(path string, b Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Delta is one benchmark's comparison against the baseline.
type Delta struct {
	Name           string
	BaselineNs     float64
	CurrentNs      float64
	NsChangePct    float64 // positive = slower than baseline
	BaselineAllocs float64
	CurrentAllocs  float64
}

// Regressed reports whether the benchmark got more than maxPct slower.
func (d Delta) Regressed(maxPct float64) bool { return d.NsChangePct > maxPct }

// Compare matches current results against the baseline by name and
// returns deltas sorted by name. Benchmarks present on only one side
// are skipped: the gate judges shared exhibits, not coverage.
func Compare(baseline, current map[string]Result) []Delta {
	var out []Delta
	for name, base := range baseline {
		cur, ok := current[name]
		if !ok || base.NsPerOp == 0 {
			continue
		}
		out = append(out, Delta{
			Name:           name,
			BaselineNs:     base.NsPerOp,
			CurrentNs:      cur.NsPerOp,
			NsChangePct:    (cur.NsPerOp - base.NsPerOp) / base.NsPerOp * 100,
			BaselineAllocs: base.AllocsPerOp,
			CurrentAllocs:  cur.AllocsPerOp,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Report renders the comparison and returns the regressions that exceed
// maxPct. A negative change means the current run is faster.
func Report(w io.Writer, deltas []Delta, maxPct float64) []Delta {
	var bad []Delta
	for _, d := range deltas {
		mark := "ok"
		if d.Regressed(maxPct) {
			mark = "REGRESSED"
			bad = append(bad, d)
		}
		fmt.Fprintf(w, "%-40s %14.0f -> %14.0f ns/op  %+7.1f%%  (allocs %0.f -> %0.f)  %s\n",
			d.Name, d.BaselineNs, d.CurrentNs, d.NsChangePct,
			d.BaselineAllocs, d.CurrentAllocs, mark)
	}
	return bad
}
