package benchcmp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkFig9PerFlow-8   	       1	2400000000 ns/op	         0.970 fairness	 1200000 B/op	    9000 allocs/op
BenchmarkTable1Comparison-8      1	4500000000 ns/op	        40 passive-samples	 2000000 B/op	   12000 allocs/op
BenchmarkNoAllocInfo-8           5	 100 ns/op
PASS
ok  	repro	7.1s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	fig9, ok := got["BenchmarkFig9PerFlow"]
	if !ok {
		t.Fatalf("Fig9 missing (got %v)", got)
	}
	if fig9.NsPerOp != 2.4e9 || fig9.AllocsPerOp != 9000 || fig9.Iterations != 1 {
		t.Fatalf("Fig9 parsed wrong: %+v", fig9)
	}
	// Custom ReportMetric units (fairness, passive-samples) must not be
	// mistaken for ns/op or allocs/op.
	t1 := got["BenchmarkTable1Comparison"]
	if t1.NsPerOp != 4.5e9 || t1.AllocsPerOp != 12000 {
		t.Fatalf("Table1 parsed wrong: %+v", t1)
	}
	// A line with only ns/op still parses; allocs default to zero.
	if n := got["BenchmarkNoAllocInfo"]; n.NsPerOp != 100 || n.AllocsPerOp != 0 {
		t.Fatalf("minimal line parsed wrong: %+v", n)
	}
}

func TestParseStripsCPUSuffixOnly(t *testing.T) {
	// A benchmark whose name legitimately ends in a dash-number from
	// b.Run (e.g. a size sub-benchmark) still loses only the -cpu part.
	got, err := Parse(strings.NewReader("BenchmarkAblationCMS/512-8  3  1000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["BenchmarkAblationCMS/512"]; !ok {
		t.Fatalf("sub-benchmark name mangled: %v", got)
	}
}

func TestCompareAndReport(t *testing.T) {
	baseline := map[string]Result{
		"BenchmarkA":    {NsPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkB":    {NsPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkGone": {NsPerOp: 500},
	}
	current := map[string]Result{
		"BenchmarkA":   {NsPerOp: 1050, AllocsPerOp: 0},  // +5%: within gate
		"BenchmarkB":   {NsPerOp: 1200, AllocsPerOp: 10}, // +20%: regression
		"BenchmarkNew": {NsPerOp: 1},
	}
	deltas := Compare(baseline, current)
	if len(deltas) != 2 {
		t.Fatalf("expected 2 shared benchmarks, got %d: %v", len(deltas), deltas)
	}
	var sb strings.Builder
	bad := Report(&sb, deltas, 10)
	if len(bad) != 1 || bad[0].Name != "BenchmarkB" {
		t.Fatalf("expected only BenchmarkB to regress, got %v", bad)
	}
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Fatalf("report missing REGRESSED marker:\n%s", sb.String())
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := Baseline{
		Notes:      "test",
		Benchmarks: map[string]Result{"BenchmarkA": {NsPerOp: 42, AllocsPerOp: 7, Iterations: 3}},
	}
	if err := WriteBaseline(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks["BenchmarkA"] != want.Benchmarks["BenchmarkA"] || got.Notes != "test" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	os.WriteFile(empty, []byte("{}"), 0o644)
	if _, err := LoadBaseline(empty); err == nil {
		t.Fatal("expected error for baseline without benchmarks")
	}
}
