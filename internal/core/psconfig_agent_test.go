package core

import (
	"testing"

	"repro/internal/controlplane"
	"repro/internal/psconfig"
	"repro/internal/simtime"
)

const agentTemplate = `{
  "archives": {
    "opensearch": {"archiver": "opensearch"}
  },
  "tasks": {
    "p4-monitoring": {"type": "p4", "spec": {"metric": "throughput", "samples_per_second": "2"}},
    "p4-qocc-alert": {"type": "p4", "spec": {"metric": "queue_occupancy", "alert": "true", "threshold": "30", "samples_per_second": "10"}},
    "mesh-throughput": {"type": "throughput", "interval": "PT20S",
      "spec": {"src": "ps-local", "dst": "ps1", "duration": "PT3S"}},
    "mesh-latency": {"type": "latency", "interval": "PT15S",
      "spec": {"src": "ps-local", "dst": "ps2", "count": "5"}},
    "mesh-trace": {"type": "trace", "interval": "PT30S",
      "spec": {"src": "dtn-internal", "dst": "dtn3", "count": "6"}}
  }
}`

func TestApplyPSConfigTemplate(t *testing.T) {
	s := NewSystem(scaledOptions())
	tpl, err := psconfig.ParseTemplate([]byte(agentTemplate))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyPSConfigTemplate(tpl); err != nil {
		t.Fatal(err)
	}
	s.Start()
	s.Run(40 * simtime.Second)

	// The p4 tasks configured the control plane.
	if got := s.ControlPlane.MetricConfigFor(controlplane.MetricThroughput).SamplesPerSecond; got != 2 {
		t.Fatalf("throughput rate %f, want 2", got)
	}
	mc := s.ControlPlane.MetricConfigFor(controlplane.MetricQueueOccupancy)
	if mc.AlertThreshold != 30 || mc.AlertSamplesPerSecond != 10 {
		t.Fatalf("alert config %+v", mc)
	}

	// The classic tasks ran on schedule: throughput at 1,21s -> 2 runs;
	// latency at 1,16,31 -> 3; trace at 1,31 -> 2.
	if got := len(s.Scheduler.Throughput); got != 2 {
		t.Fatalf("throughput runs %d, want 2", got)
	}
	if got := len(s.Scheduler.Latency); got != 3 {
		t.Fatalf("latency runs %d, want 3", got)
	}
	if got := len(s.Scheduler.Traces); got != 2 {
		t.Fatalf("trace runs %d, want 2", got)
	}
	if !s.Scheduler.Traces[0].Reached {
		t.Fatal("trace did not reach dtn3")
	}
}

func TestApplyTemplateErrors(t *testing.T) {
	s := NewSystem(scaledOptions())
	cases := []string{
		`{"tasks": {"x": {"type": "warp-drive"}}}`,
		`{"tasks": {"x": {"type": "throughput", "spec": {"src": "nope", "dst": "ps1"}}}}`,
		`{"tasks": {"x": {"type": "throughput", "interval": "whenever", "spec": {"src": "ps-local", "dst": "ps1"}}}}`,
		`{"tasks": {"x": {"type": "p4", "spec": {"metric": "bogus"}}}}`,
	}
	for i, raw := range cases {
		tpl, err := psconfig.ParseTemplate([]byte(raw))
		if err != nil {
			t.Fatalf("case %d: template parse: %v", i, err)
		}
		if err := s.ApplyPSConfigTemplate(tpl); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestHostByName(t *testing.T) {
	s := NewSystem(scaledOptions())
	for _, name := range []string{"dtn-internal", "ps-local", "dtn1", "dtn3", "ps2"} {
		h, err := s.HostByName(name)
		if err != nil || h.Name() != name {
			t.Fatalf("lookup %q: %v", name, err)
		}
	}
	if _, err := s.HostByName("nonexistent"); err == nil {
		t.Fatal("unknown host must error")
	}
}
