package core

import (
	"fmt"
	"sort"

	"repro/internal/psconfig"
	"repro/internal/simtime"
	"repro/internal/tcp"
)

// ApplyPSConfigTemplate plays the role of the pSConfig agent on the
// local perfSONAR node: it consumes a template document and turns its
// tasks into running configuration — "p4" tasks program the switch
// control plane (the paper's extension), and classic "throughput",
// "latency" and "trace" tasks schedule the corresponding active tests
// on pScheduler.
//
// Task spec fields for active tests:
//
//	src, dst   host names ("ps-local", "ps1", "dtn2", ...)
//	interval   ISO-8601 duration between runs (task.Interval)
//	duration   throughput test length (default PT5S)
//	count      latency probe count / trace max hops (default 10)
func (s *System) ApplyPSConfigTemplate(tpl *psconfig.Template) error {
	// The paper's config-P4 tasks first.
	cmds, err := tpl.P4Commands()
	if err != nil {
		return err
	}
	for _, cmd := range cmds {
		if err := cmd.Apply(s.ControlPlane); err != nil {
			return err
		}
	}

	// Classic scheduled tests, in sorted task order: template maps are
	// unordered, and the scheduler's event sequence (and therefore the
	// witness output) must not depend on Go's map iteration order.
	names := make([]string, 0, len(tpl.Tasks))
	for name := range tpl.Tasks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		task := tpl.Tasks[name]
		switch task.Type {
		case "p4":
			continue // handled above
		case "throughput", "latency", "trace":
		default:
			return fmt.Errorf("core: task %q: unsupported type %q", name, task.Type)
		}

		src, err := s.HostByName(task.Spec["src"])
		if err != nil {
			return fmt.Errorf("core: task %q: %w", name, err)
		}
		dst, err := s.HostByName(task.Spec["dst"])
		if err != nil {
			return fmt.Errorf("core: task %q: %w", name, err)
		}
		interval := simtime.Time(0)
		if task.Interval != "" {
			interval, err = psconfig.ParseISODuration(task.Interval)
			if err != nil {
				return fmt.Errorf("core: task %q: %w", name, err)
			}
		} else {
			interval = 60 * simtime.Second
		}

		switch task.Type {
		case "throughput":
			dur := 5 * simtime.Second
			if v := task.Spec["duration"]; v != "" {
				dur, err = psconfig.ParseISODuration(v)
				if err != nil {
					return fmt.Errorf("core: task %q: %w", name, err)
				}
			}
			s.Scheduler.ScheduleThroughput(src, dst, simtime.Second, interval, dur,
				tcp.Config{MSS: 1448})
		case "latency":
			count := specInt(task.Spec, "count", 10)
			s.Scheduler.ScheduleLatency(src, dst, simtime.Second, interval,
				count, 200*simtime.Millisecond)
		case "trace":
			hops := specInt(task.Spec, "count", 10)
			s.Scheduler.ScheduleTrace(src, dst, simtime.Second, interval, hops)
		}
	}
	return nil
}

func specInt(spec map[string]string, key string, def int) int {
	v, ok := spec[key]
	if !ok {
		return def
	}
	n := 0
	for _, r := range v {
		if r < '0' || r > '9' {
			return def
		}
		n = n*10 + int(r-'0')
	}
	if n == 0 {
		return def
	}
	return n
}

// HostByName resolves a topology host by its name ("dtn-internal",
// "ps-local", "dtn1", "ps3", ...).
func (s *System) HostByName(name string) (*tcp.Host, error) {
	switch name {
	case s.InternalDTN.Name():
		return s.InternalDTN, nil
	case s.LocalPerfNode.Name():
		return s.LocalPerfNode, nil
	}
	for i := 0; i < ExternalNetworks; i++ {
		if s.ExternalDTNs[i].Name() == name {
			return s.ExternalDTNs[i], nil
		}
		if s.ExternalPerf[i].Name() == name {
			return s.ExternalPerf[i], nil
		}
	}
	return nil, fmt.Errorf("core: unknown host %q", name)
}
