package core

import (
	"sort"

	"repro/internal/controlplane"
	"repro/internal/metrics"
)

// SeriesByDestination groups one metric's reports into per-destination
// time series, exactly how the paper's Grafana dashboard groups the
// figures ("Grafana will group the reported measurements by their
// destination IP address", §5.1). Only flows toward external networks
// are included (the data direction); reverse ACK flows are skipped.
func (s *System) SeriesByDestination(metric controlplane.Metric) map[string]*metrics.Series {
	out := make(map[string]*metrics.Series)
	for _, r := range s.Reports.MetricReports(metric, "") {
		if !isExternal(r.DstIP) {
			continue
		}
		ser, ok := out[r.DstIP]
		if !ok {
			ser = metrics.NewSeries(string(metric) + "->" + r.DstIP)
			out[r.DstIP] = ser
		}
		ser.Append(r.Time(), r.Value)
	}
	return out
}

// isExternal reports whether ip belongs to one of the external
// networks (192.168.0.0/16 in the addressing plan).
func isExternal(ip string) bool {
	return len(ip) >= 8 && ip[:8] == "192.168."
}

// AggregateSeries extracts the control plane's aggregate reports as
// (utilization, fairness, activeFlows) series — the Figure 10 data.
func (s *System) AggregateSeries() (util, fairness, active *metrics.Series) {
	util = metrics.NewSeries("utilization")
	fairness = metrics.NewSeries("fairness")
	active = metrics.NewSeries("active_flows")
	for _, r := range s.Reports.ByKind(controlplane.KindAggregate) {
		util.Append(r.Time(), r.Utilization)
		fairness.Append(r.Time(), r.Fairness)
		active.Append(r.Time(), float64(r.ActiveFlows))
	}
	return util, fairness, active
}

// MicroburstReports returns the burst events, ordered by start time.
func (s *System) MicroburstReports() []controlplane.Report {
	reps := s.Reports.ByKind(controlplane.KindMicroburst)
	sort.Slice(reps, func(i, j int) bool { return reps[i].TimeNs < reps[j].TimeNs })
	return reps
}

// LimitationVerdicts returns the most recent limitation classification
// per destination IP.
func (s *System) LimitationVerdicts() map[string]string {
	out := make(map[string]string)
	for _, r := range s.Reports.ByKind(controlplane.KindLimitation) {
		if isExternal(r.DstIP) {
			out[r.DstIP] = r.Limitation
		}
	}
	return out
}

// FlowSummaries returns the terminated-long-flow reports.
func (s *System) FlowSummaries() []controlplane.Report {
	return s.Reports.ByKind(controlplane.KindFlowSummary)
}
