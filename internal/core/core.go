// Package core assembles the paper's full system (Figures 3, 4 and 8):
// the Science DMZ topology — an internal network and three external
// networks joined by two legacy switches with a 10 Gbps bottleneck —
// plus the measurement chain: passive optical TAPs on the core switch,
// the P4 data plane, the switch control plane, and the perfSONAR
// archiver (Logstash → OpenSearch). Experiments and examples build a
// System and drive traffic through it.
package core

import (
	"fmt"
	"net/netip"

	"repro/internal/controlplane"
	"repro/internal/dataplane"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/psarchiver"
	"repro/internal/pscheduler"
	"repro/internal/simtime"
	"repro/internal/switchsim"
	"repro/internal/tap"
	"repro/internal/tcp"
	"repro/internal/trafficgen"
)

// ExternalNetworks is the number of external networks in Figure 8.
const ExternalNetworks = 3

// Options configures a System. Zero values select the paper's testbed
// parameters.
type Options struct {
	// BottleneckBps is the inter-switch link rate; default 10 Gbps
	// ("the link interconnecting these switches acts as a performance
	// bottleneck, operating at a throughput of 10 Gbps").
	BottleneckBps float64
	// AccessBps is the host access-link rate; default 4x the
	// bottleneck, so sender bursts queue at the monitored core-switch
	// port rather than at the NIC.
	AccessBps float64
	// RTTs are the round-trip times from the internal DTN to the three
	// external DTNs; default 50, 75, 100 ms (§5.1).
	RTTs [ExternalNetworks]simtime.Time
	// BufferBytes is the core switch's bottleneck-port buffer. Default
	// one BDP at the largest RTT (the §5.4.1 guideline).
	BufferBytes int
	// Seed drives every random stream in the simulation.
	Seed uint64
	// DataPlane tunes the P4 pipeline; zero values take the defaults.
	DataPlane dataplane.Config
	// Shards is the number of independent data-plane pipes the flows
	// are partitioned across (the multi-pipe model of a Tofino ASIC).
	// 0 or 1 runs the single-pipe pipeline with byte-identical output;
	// higher values batch per-shard work and replay it in parallel at
	// barriers (see dataplane.Pipes).
	Shards int
	// ControlPlane tunes extraction and alerting; LinkCapacityBps and
	// BufferBytes are filled in from the topology automatically.
	ControlPlane controlplane.Config
	// ExtraSink, when set, additionally receives every control-plane
	// report (the live collector daemon streams them to Logstash this
	// way).
	ExtraSink controlplane.Sink
}

func (o Options) withDefaults() Options {
	if o.BottleneckBps <= 0 {
		o.BottleneckBps = netsim.Gbps(10)
	}
	if o.AccessBps <= 0 {
		o.AccessBps = 4 * o.BottleneckBps
	}
	var zero [ExternalNetworks]simtime.Time
	if o.RTTs == zero {
		o.RTTs = [ExternalNetworks]simtime.Time{
			50 * simtime.Millisecond,
			75 * simtime.Millisecond,
			100 * simtime.Millisecond,
		}
	}
	if o.BufferBytes <= 0 {
		maxRTT := o.RTTs[0]
		for _, r := range o.RTTs[1:] {
			if r > maxRTT {
				maxRTT = r
			}
		}
		o.BufferBytes = BDPBytes(o.BottleneckBps, maxRTT)
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// BDPBytes computes the bandwidth-delay product in bytes (§5.4.1).
func BDPBytes(bps float64, rtt simtime.Time) int {
	return int(bps * rtt.Seconds() / 8)
}

// System is the assembled testbed plus measurement chain.
type System struct {
	Opts   Options
	Engine *simtime.Engine
	RNG    *simtime.RNG

	// Hosts (Figure 8).
	InternalDTN   *tcp.Host
	LocalPerfNode *tcp.Host
	ExternalDTNs  [ExternalNetworks]*tcp.Host
	ExternalPerf  [ExternalNetworks]*tcp.Host

	// Switches. CoreSwitch is the tapped legacy switch next to the
	// internal network; AggSwitch is the second legacy switch.
	CoreSwitch *switchsim.Switch
	AggSwitch  *switchsim.Switch
	// BottleneckPort is the monitored core-switch output port on the
	// inter-switch link.
	BottleneckPort *switchsim.Port
	// BottleneckLink is the core→agg direction of the inter-switch link.
	BottleneckLink *netsim.Link
	// ExternalAccessLinks are the agg→DTN_i links (impairment points
	// for the Fig. 12 network-loss test).
	ExternalAccessLinks [ExternalNetworks]*netsim.Link

	// Measurement chain. DataPlane is the sharded front-end (a single
	// pipe unless Options.Shards > 1); reads through it always see the
	// merged multi-pipe view.
	Taps         *tap.Pair
	DataPlane    *dataplane.Pipes
	ControlPlane *controlplane.ControlPlane
	Pipeline     *psarchiver.Pipeline
	Store        *psarchiver.Store
	Scheduler    *pscheduler.Scheduler

	// Reports mirrors everything the control plane emitted, for direct
	// inspection by experiments (the archiver holds the same data as
	// Report_v2 documents).
	Reports *controlplane.MemorySink
}

// internal addressing plan
var (
	internalDTNIP  = packet.MustAddr("172.16.0.10")
	internalPerfIP = packet.MustAddr("172.16.0.20")
)

// externalIP returns the address of host "kind" (10=DTN, 20=perfSONAR)
// in external network i (0-based).
func externalIP(i, host int) netip.Addr {
	return packet.MustAddr(fmt.Sprintf("192.168.%d.%d", i+1, host))
}

// NewSystem builds the full testbed. It seeds the data-plane burst
// floor from the bottleneck drain time before generation 0 is cut.
//
// p4:gen-init
func NewSystem(opts Options) *System {
	opts = opts.withDefaults()
	e := simtime.NewEngine()
	rng := simtime.NewRNG(opts.Seed)

	s := &System{Opts: opts, Engine: e, RNG: rng}

	// Hosts.
	s.InternalDTN = tcp.NewHost(e, "dtn-internal", internalDTNIP)
	s.LocalPerfNode = tcp.NewHost(e, "ps-local", internalPerfIP)
	for i := 0; i < ExternalNetworks; i++ {
		s.ExternalDTNs[i] = tcp.NewHost(e, fmt.Sprintf("dtn%d", i+1), externalIP(i, 10))
		s.ExternalPerf[i] = tcp.NewHost(e, fmt.Sprintf("ps%d", i+1), externalIP(i, 20))
	}

	// Switches. Router addresses make them traceroute-visible hops.
	s.CoreSwitch = switchsim.New(e, "core-switch")
	s.CoreSwitch.RouterIP = packet.MustAddr("172.16.0.1")
	s.AggSwitch = switchsim.New(e, "agg-switch")
	s.AggSwitch.RouterIP = packet.MustAddr("192.168.0.1")

	const hostDelay = 50 * simtime.Microsecond
	const interSwitchDelay = 2 * simtime.Millisecond
	bigBuffer := 1 << 30

	// Internal hosts <-> core switch.
	wireHost := func(h *tcp.Host, sw *switchsim.Switch, bps float64, delay simtime.Time) *netsim.Link {
		up := netsim.NewLink(e, h.Name()+"-up", sw, bps, delay, rng.Fork())
		h.AttachUplink(up)
		down := netsim.NewLink(e, h.Name()+"-down", h, bps, delay, rng.Fork())
		sw.AddRoute(netip.PrefixFrom(h.IP(), 32), down, bigBuffer)
		return down
	}
	wireHost(s.InternalDTN, s.CoreSwitch, opts.AccessBps, hostDelay)
	wireHost(s.LocalPerfNode, s.CoreSwitch, opts.AccessBps, hostDelay)

	// Inter-switch bottleneck.
	s.BottleneckLink = netsim.NewLink(e, "core-agg", s.AggSwitch, opts.BottleneckBps, interSwitchDelay, rng.Fork())
	aggToCore := netsim.NewLink(e, "agg-core", s.CoreSwitch, opts.BottleneckBps, interSwitchDelay, rng.Fork())
	s.BottleneckPort = s.CoreSwitch.AddRoute(netip.MustParsePrefix("192.168.0.0/16"), s.BottleneckLink, opts.BufferBytes)
	s.AggSwitch.AddRoute(netip.MustParsePrefix("172.16.0.0/24"), aggToCore, bigBuffer)

	// External networks: the per-network access delay absorbs the RTT
	// difference (RTT_i = 2*(hostDelay + interSwitchDelay + extDelay_i)).
	for i := 0; i < ExternalNetworks; i++ {
		extDelay := opts.RTTs[i]/2 - interSwitchDelay - hostDelay
		if extDelay < 0 {
			extDelay = 0
		}
		s.ExternalAccessLinks[i] = wireHostWithReturn(s, s.ExternalDTNs[i], opts.AccessBps, extDelay, bigBuffer)
		wireHostWithReturn(s, s.ExternalPerf[i], opts.AccessBps, extDelay, bigBuffer)
	}

	// Measurement chain: TAPs on the core switch feed the P4 pipeline.
	// The microburst floor defaults to a tenth of the monitored
	// buffer's drain time: excursions smaller than that are queueing
	// noise, not bursts worth alerting on.
	dpCfg := opts.DataPlane
	if dpCfg.BurstFloor == 0 {
		drain := simtime.Time(float64(opts.BufferBytes*8) / opts.BottleneckBps * 1e9)
		dpCfg.BurstFloor = drain / 10
	}
	s.DataPlane = dataplane.NewPipes(dpCfg, opts.Shards)
	s.Taps = tap.NewPair(e, s.DataPlane)
	// The egress TAP mirrors the WAN-side port only — the monitored
	// bottleneck queue of §4.2 — so queue-delay and microburst signals
	// come from one queue.
	bottleneckName := s.BottleneckLink.Name()
	s.Taps.EgressFilter = func(link string) bool { return link == bottleneckName }
	// The data plane reads registers and returns without retaining the
	// mirrored copy, so TAP copies can come from the packet arena.
	s.Taps.Recycle = true
	s.Taps.Attach(s.CoreSwitch)

	s.Store = psarchiver.NewStore()
	s.Pipeline = psarchiver.NewPipeline()
	s.Pipeline.OpenSearchOutput(s.Store)
	s.Reports = &controlplane.MemorySink{}

	cpCfg := opts.ControlPlane
	cpCfg.LinkCapacityBps = opts.BottleneckBps
	cpCfg.BufferBytes = opts.BufferBytes
	sinks := controlplane.TeeSink{s.Reports, s.Pipeline}
	if opts.ExtraSink != nil {
		sinks = append(sinks, opts.ExtraSink)
	}
	s.ControlPlane = controlplane.New(e, s.DataPlane, sinks, cpCfg)

	s.Scheduler = pscheduler.New(e, s.Pipeline)
	return s
}

// wireHostWithReturn connects an external host to the agg switch and
// returns the downlink (agg→host), the convenient impairment point.
func wireHostWithReturn(s *System, h *tcp.Host, bps float64, delay simtime.Time, buffer int) *netsim.Link {
	up := netsim.NewLink(s.Engine, h.Name()+"-up", s.AggSwitch, bps, delay, s.RNG.Fork())
	h.AttachUplink(up)
	down := netsim.NewLink(s.Engine, h.Name()+"-down", h, bps, delay, s.RNG.Fork())
	s.AggSwitch.AddRoute(netip.PrefixFrom(h.IP(), 32), down, buffer)
	return down
}

// Start launches the control plane's extraction tickers. Call after
// any psconfig adjustments that should apply from t=0.
func (s *System) Start() { s.ControlPlane.Start() }

// Run advances the simulation to the given absolute time.
func (s *System) Run(until simtime.Time) { s.Engine.Run(until) }

// TransferToExternal starts an iPerf3-style transfer from the internal
// DTN to external DTN i (0-based). A Duration of zero with Bytes zero
// defaults to 10 s.
func (s *System) TransferToExternal(i int, start simtime.Time, bytes uint64, duration simtime.Time, sender tcp.Config, receiver tcp.Config) *trafficgen.Handle {
	if i < 0 || i >= ExternalNetworks {
		panic(fmt.Sprintf("core: external network %d out of range", i))
	}
	return trafficgen.Transfer{
		From:           s.InternalDTN,
		To:             s.ExternalDTNs[i],
		Port:           uint16(5201 + i),
		Bytes:          bytes,
		Start:          start,
		Duration:       duration,
		SenderConfig:   sender,
		ReceiverConfig: receiver,
	}.Launch(s.Engine)
}

// InjectMicroburst fires a UDP packet train from the internal DTN
// toward external DTN i at the given time.
func (s *System) InjectMicroburst(i int, at simtime.Time, count, payload int) {
	trafficgen.Burst{
		From:    s.InternalDTN,
		DstIP:   s.ExternalDTNs[i].IP(),
		Count:   count,
		Payload: payload,
		At:      at,
		Tag:     "microburst",
	}.Launch(s.Engine)
}

// MaxQueueDelay returns the bottleneck buffer's drain time — 100%
// queue occupancy expressed as delay.
func (s *System) MaxQueueDelay() simtime.Time {
	return simtime.Time(float64(s.Opts.BufferBytes*8) / s.Opts.BottleneckBps * 1e9)
}
