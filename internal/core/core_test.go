package core

import (
	"testing"

	"repro/internal/controlplane"
	"repro/internal/netsim"
	"repro/internal/psarchiver"
	"repro/internal/simtime"
	"repro/internal/tcp"
)

// scaledOptions returns a laptop-fast variant of the testbed: the
// 10 Gbps / 50-100 ms topology scaled to 200 Mbps / 20-40 ms so tests
// complete in milliseconds of wall time while preserving every
// qualitative behaviour.
func scaledOptions() Options {
	return Options{
		BottleneckBps: netsim.Mbps(200),
		RTTs: [ExternalNetworks]simtime.Time{
			20 * simtime.Millisecond,
			30 * simtime.Millisecond,
			40 * simtime.Millisecond,
		},
		Seed: 7,
	}
}

func scaledSender() tcp.Config { return tcp.Config{MSS: 1448} }

func TestSystemDefaults(t *testing.T) {
	s := NewSystem(Options{})
	if s.Opts.BottleneckBps != netsim.Gbps(10) {
		t.Fatalf("bottleneck default %f", s.Opts.BottleneckBps)
	}
	if s.Opts.RTTs[2] != 100*simtime.Millisecond {
		t.Fatalf("RTT defaults wrong: %v", s.Opts.RTTs)
	}
	// Default buffer: 1 BDP at 100ms and 10Gbps = 125 MB (§5.4.1).
	if s.Opts.BufferBytes != 125_000_000 {
		t.Fatalf("buffer default %d, want 125MB", s.Opts.BufferBytes)
	}
}

func TestBDPBytes(t *testing.T) {
	// The paper's arithmetic: 10 Gbps x 100 ms = 125 MB.
	if got := BDPBytes(netsim.Gbps(10), 100*simtime.Millisecond); got != 125_000_000 {
		t.Fatalf("BDP=%d", got)
	}
}

func TestEndToEndTransferProducesReports(t *testing.T) {
	s := NewSystem(scaledOptions())
	s.Start()
	h := s.TransferToExternal(0, 100*simtime.Millisecond, 0, 5*simtime.Second, scaledSender(), tcp.Config{})
	s.Run(7 * simtime.Second)

	if h.Conn == nil || h.Conn.Stats.BytesAcked == 0 {
		t.Fatal("transfer moved no data")
	}

	tput := s.Reports.MetricReports(controlplane.MetricThroughput, "")
	if len(tput) == 0 {
		t.Fatal("no throughput reports from the measurement chain")
	}
	// The flow should be visible at roughly the bottleneck rate once
	// past slow start.
	var best float64
	for _, r := range tput {
		if r.DstIP == s.ExternalDTNs[0].IP().String() && r.Value > best {
			best = r.Value
		}
	}
	if best < 0.5*s.Opts.BottleneckBps {
		t.Fatalf("peak reported throughput %.1f Mbps, want >100", best/1e6)
	}

	// RTT reports should reflect the 20ms path. The RTT register is
	// indexed by the ACK flow's ID; the control plane joins it back to
	// the data flow via the reversed ID, so the report's destination is
	// the external DTN.
	rtts := s.Reports.MetricReports(controlplane.MetricRTT, "")
	found := false
	for _, r := range rtts {
		if r.DstIP == s.ExternalDTNs[0].IP().String() && r.Value > 19 && r.Value < 120 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no plausible RTT report among %d", len(rtts))
	}
}

func TestEndToEndArchiverReceivesDocuments(t *testing.T) {
	s := NewSystem(scaledOptions())
	s.Start()
	s.TransferToExternal(0, 100*simtime.Millisecond, 0, 3*simtime.Second, scaledSender(), tcp.Config{})
	s.Run(5 * simtime.Second)

	// Report_v1 records must land in OpenSearch as Report_v2 documents
	// with the Logstash metadata added (Figure 7).
	idx := "p4-psonar-metric"
	if s.Store.Count(idx) == 0 {
		t.Fatalf("no documents in %s; indices: %v", idx, s.Store.Indices())
	}
	doc := s.Store.Search(psarchiver.Query{Index: idx})[0]
	if doc.Str("host") != "p4-switch-cp" || doc.Str("@version") != "1" {
		t.Fatalf("Logstash metadata missing: %v", doc)
	}
}

func TestTerminatedFlowSummary(t *testing.T) {
	s := NewSystem(scaledOptions())
	s.Start()
	s.TransferToExternal(1, 100*simtime.Millisecond, 10_000_000, 0, scaledSender(), tcp.Config{})
	s.Run(20 * simtime.Second)

	sums := s.FlowSummaries()
	if len(sums) == 0 {
		t.Fatal("no terminated-flow summary")
	}
	var data *controlplane.Report
	for i := range sums {
		if sums[i].DstIP == s.ExternalDTNs[1].IP().String() {
			data = &sums[i]
		}
	}
	if data == nil {
		t.Fatal("no summary for the data flow")
	}
	if data.Bytes < 10_000_000 {
		t.Fatalf("summary bytes %d below transfer size", data.Bytes)
	}
	if data.AvgThroughputBps <= 0 || data.Packets == 0 {
		t.Fatalf("summary incomplete: %+v", data)
	}
	if data.StartNs <= 0 || data.EndNs <= data.StartNs {
		t.Fatalf("summary timestamps wrong: %+v", data)
	}
}

func TestSeriesByDestinationGroupsLikeGrafana(t *testing.T) {
	s := NewSystem(scaledOptions())
	s.Start()
	s.TransferToExternal(0, 100*simtime.Millisecond, 0, 4*simtime.Second, scaledSender(), tcp.Config{})
	s.TransferToExternal(1, 100*simtime.Millisecond, 0, 4*simtime.Second, scaledSender(), tcp.Config{})
	s.Run(5 * simtime.Second)

	series := s.SeriesByDestination(controlplane.MetricThroughput)
	if len(series) != 2 {
		t.Fatalf("series for %d destinations, want 2", len(series))
	}
	for dst, ser := range series {
		if ser.Len() == 0 {
			t.Fatalf("empty series for %s", dst)
		}
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	// The Figure 9/10 behaviour in miniature: two flows with close
	// RTTs converge near a fair share; fairness approaches 1.
	s := NewSystem(scaledOptions())
	s.Start()
	s.TransferToExternal(0, 0, 0, 20*simtime.Second, scaledSender(), tcp.Config{})
	s.TransferToExternal(1, 0, 0, 20*simtime.Second, scaledSender(), tcp.Config{})
	s.Run(20 * simtime.Second)

	_, fairness, _ := s.AggregateSeries()
	if fairness.Len() == 0 {
		t.Fatal("no fairness series")
	}
	// Average fairness over the last 5 seconds should be high.
	tail := fairness.Between(15*simtime.Second, 20*simtime.Second)
	var sum float64
	for _, p := range tail {
		sum += p.V
	}
	// CUBIC is RTT-unfair (the 20 ms flow beats the 30 ms flow), so
	// equilibrium fairness sits below 1; it must still be far above
	// the 0.5 of a starved flow.
	if len(tail) == 0 || sum/float64(len(tail)) < 0.65 {
		t.Fatalf("late fairness %.3f, want >0.65", sum/float64(len(tail)))
	}
}

func TestMicroburstInjectionDetected(t *testing.T) {
	opts := scaledOptions()
	// Small buffer (BDP/4 at the 40ms path) so the burst bloats it.
	opts.BufferBytes = BDPBytes(opts.BottleneckBps, 40*simtime.Millisecond) / 4
	s := NewSystem(opts)
	s.Start()
	s.TransferToExternal(2, 0, 0, 10*simtime.Second, scaledSender(), tcp.Config{})
	// 300 jumbo packets back-to-back at 4x bottleneck rate.
	s.InjectMicroburst(2, 5*simtime.Second, 300, 8960)
	s.Run(10 * simtime.Second)

	bursts := s.MicroburstReports()
	if len(bursts) == 0 {
		t.Fatal("injected microburst not detected")
	}
	b := bursts[0]
	if b.DurationNs <= 0 || b.PeakDelayNs <= 0 {
		t.Fatalf("burst report incomplete: %+v", b)
	}
}

func TestInvalidExternalIndexPanics(t *testing.T) {
	s := NewSystem(scaledOptions())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range external index must panic")
		}
	}()
	s.TransferToExternal(99, 0, 0, simtime.Second, tcp.Config{}, tcp.Config{})
}

func TestMaxQueueDelay(t *testing.T) {
	opts := scaledOptions()
	opts.BufferBytes = 250_000 // 10ms at 200Mbps
	s := NewSystem(opts)
	if got := s.MaxQueueDelay(); got != 10*simtime.Millisecond {
		t.Fatalf("MaxQueueDelay=%v", got)
	}
}
