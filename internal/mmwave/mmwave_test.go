package mmwave

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

// fastCfg is a scaled scenario that runs in milliseconds of wall time.
func fastCfg() Config {
	return Config{
		RateBps:          netsim.Mbps(100),
		Duration:         8 * simtime.Second,
		BlockageStart:    3 * simtime.Second,
		BlockageDuration: 2 * simtime.Second, // the paper's 2 s window
	}
}

func TestNoBlockageNoDetectorSteadyIAT(t *testing.T) {
	cfg := fastCfg()
	cfg.BlockageStart = 100 * simtime.Second // never happens within Duration
	r := Run(DetectorNone, cfg)
	if r.Delivered == 0 {
		t.Fatal("no packets delivered")
	}
	// Figure 13(a): without blockage, IAT stays at the CBR gap.
	gap := simtime.Time(float64((1400+42)*8) / cfg.RateBps * 1e9)
	if r.MaxIAT > 3*gap {
		t.Fatalf("maxIAT %v far above CBR gap %v", r.MaxIAT, gap)
	}
}

func TestBlockageCausesIATSpike(t *testing.T) {
	// Figure 13(b): blockage multiplies IAT by orders of magnitude.
	r := Run(DetectorNone, fastCfg())
	if r.MaxIAT < 900*simtime.Millisecond {
		t.Fatalf("maxIAT %v, want ~1s (the blockage window)", r.MaxIAT)
	}
	gap := simtime.Time(float64((1400+42)*8) / fastCfg().RateBps * 1e9)
	if float64(r.MaxIAT)/float64(gap) < 1000 {
		t.Fatalf("IAT increase only %.0fx, want orders of magnitude", float64(r.MaxIAT)/float64(gap))
	}
}

func TestP4DetectorReactsWithinThreshold(t *testing.T) {
	cfg := fastCfg()
	r := Run(DetectorP4IAT, cfg)
	if r.DetectedAt == 0 {
		t.Fatal("P4 detector never fired")
	}
	if r.DetectionLatency > 3*cfg.withDefaults().IATThreshold {
		t.Fatalf("P4 detection latency %v, want ~IAT threshold", r.DetectionLatency)
	}
	if r.RecoveredAt == 0 {
		t.Fatal("no recovery after handover")
	}
}

func TestThroughputDetectorSlowerThanP4(t *testing.T) {
	cfg := fastCfg()
	p4 := Run(DetectorP4IAT, cfg)
	tp := Run(DetectorThroughput, cfg)
	if tp.DetectedAt == 0 {
		t.Fatal("throughput detector never fired")
	}
	if tp.DetectionLatency <= p4.DetectionLatency {
		t.Fatalf("throughput detector (%v) must be slower than P4 (%v)",
			tp.DetectionLatency, p4.DetectionLatency)
	}
}

func TestRSSIDetectorSlowest(t *testing.T) {
	cfg := fastCfg()
	tp := Run(DetectorThroughput, cfg)
	rs := Run(DetectorRSSI, cfg)
	if rs.DetectedAt == 0 {
		t.Fatal("RSSI detector never fired")
	}
	if rs.DetectionLatency <= tp.DetectionLatency {
		t.Fatalf("RSSI detector (%v) must be slower than throughput-based (%v)",
			rs.DetectionLatency, tp.DetectionLatency)
	}
}

func TestFigure14Ordering(t *testing.T) {
	// The paper's headline: outage duration P4 < throughput < RSSI,
	// and the no-detector run only recovers when the blockage lifts.
	all := CompareAll(fastCfg())
	p4 := all[DetectorP4IAT].OutageDuration
	tp := all[DetectorThroughput].OutageDuration
	rs := all[DetectorRSSI].OutageDuration
	none := all[DetectorNone].OutageDuration
	if !(p4 < tp && tp < rs) {
		t.Fatalf("outage ordering wrong: p4=%v tp=%v rssi=%v", p4, tp, rs)
	}
	if none < fastCfg().BlockageDuration {
		t.Fatalf("no-detector run recovered during blockage: %v", none)
	}
	if p4 > 100*simtime.Millisecond {
		t.Fatalf("p4 outage %v, should be a few ms", p4)
	}
}

func TestThroughputSeriesShowsOutage(t *testing.T) {
	r := Run(DetectorNone, fastCfg())
	// Bins inside the blockage window must be ~zero; bins before must
	// be ~the offered rate.
	inBlockage := r.Throughput.Between(3200*simtime.Millisecond, 3800*simtime.Millisecond)
	for _, p := range inBlockage {
		if p.V > 0.1*netsim.Mbps(100) {
			t.Fatalf("throughput %v during blockage at %v", p.V, p.T)
		}
	}
	before := r.Throughput.Between(2*simtime.Second, 3*simtime.Second)
	for _, p := range before {
		if p.V < 0.8*netsim.Mbps(100) {
			t.Fatalf("throughput %v before blockage at %v", p.V, p.T)
		}
	}
}

func TestDeliveredAccounting(t *testing.T) {
	r := Run(DetectorP4IAT, fastCfg())
	if r.Delivered == 0 || r.Offered == 0 || r.Delivered > r.Offered {
		t.Fatalf("delivery accounting wrong: %d/%d", r.Delivered, r.Offered)
	}
	// With fast handover nearly everything is delivered.
	frac := float64(r.Delivered) / float64(r.Offered)
	if frac < 0.99 {
		t.Fatalf("delivered fraction %.4f with P4 handover, want >0.99", frac)
	}
}

func TestDetectorKindString(t *testing.T) {
	if DetectorP4IAT.String() != "p4-iat" || DetectorRSSI.String() != "rssi" ||
		DetectorThroughput.String() != "throughput" || DetectorNone.String() != "none" {
		t.Fatal("detector names wrong")
	}
}

func TestDescribe(t *testing.T) {
	r := Run(DetectorP4IAT, fastCfg())
	s := r.Describe()
	if len(s) == 0 || s[:6] != "p4-iat" {
		t.Fatalf("describe: %q", s)
	}
}
