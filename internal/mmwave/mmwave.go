// Package mmwave reproduces the paper's §5.4.3 use case: detecting
// throughput degradation caused by line-of-sight (LOS) blockage on
// 60 GHz mmWave links in data centers, following Mazloum et al. [26].
// A constant-bit-rate flow crosses a mmWave link that a blockage
// severs for a fixed window; three detector designs race to notice and
// fail traffic over to a backup path:
//
//   - the P4-based detector watches per-packet inter-arrival times in
//     the data plane (Figure 13's signal) and reacts within an IAT
//     threshold;
//   - the throughput-based detector is a controller polling byte
//     counters on an interval;
//   - the RSSI-based detector mimics off-the-shelf devices that
//     average received signal strength and apply hysteresis before
//     declaring the beam lost.
//
// Figure 14's result — P4 reacts before throughput even degrades,
// throughput-polling next, RSSI last — falls out of the three
// reaction mechanisms.
package mmwave

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// DetectorKind selects the blockage-detection design.
type DetectorKind int

// The three systems Figure 14 compares.
const (
	DetectorNone       DetectorKind = iota // no detector: Figure 13 observation runs
	DetectorP4IAT                          // P4 data plane watching inter-arrival times
	DetectorThroughput                     // controller polling throughput
	DetectorRSSI                           // device-level RSSI with averaging + hysteresis
)

// String names the detector variant for report and chart labels.
func (k DetectorKind) String() string {
	switch k {
	case DetectorP4IAT:
		return "p4-iat"
	case DetectorThroughput:
		return "throughput"
	case DetectorRSSI:
		return "rssi"
	default:
		return "none"
	}
}

// Config parameterises a blockage scenario.
type Config struct {
	// RateBps is the CBR offered load; default 1 Gbps (multi-Gbps
	// point-to-point mmWave).
	RateBps float64
	// PktPayload is the payload per packet; default 1400 bytes.
	PktPayload int
	// LinkBps is the mmWave link capacity; default 2x RateBps.
	LinkBps float64
	// Duration is the total run; default 14 s (Figure 13 plots ~14 s).
	Duration simtime.Time
	// BlockageStart and BlockageDuration define the LOS loss window;
	// defaults t=7 s and 2 s (Figures 13 and 14).
	BlockageStart    simtime.Time
	BlockageDuration simtime.Time

	// Detector tuning.
	IATThreshold  simtime.Time // P4 watchdog; default 1 ms
	PollInterval  simtime.Time // throughput controller; default 100 ms
	RSSIWindow    simtime.Time // averaging+hysteresis; default 1 s
	RSSISameple   simtime.Time // RSSI sampling period; default 10 ms
	ThroughputCut float64      // degradation fraction that triggers; default 0.5
}

func (c Config) withDefaults() Config {
	if c.RateBps <= 0 {
		c.RateBps = netsim.Gbps(1)
	}
	if c.PktPayload <= 0 {
		c.PktPayload = 1400
	}
	if c.LinkBps <= 0 {
		c.LinkBps = 2 * c.RateBps
	}
	if c.Duration <= 0 {
		c.Duration = 14 * simtime.Second
	}
	if c.BlockageStart <= 0 {
		c.BlockageStart = 7 * simtime.Second
	}
	if c.BlockageDuration <= 0 {
		c.BlockageDuration = 2 * simtime.Second
	}
	if c.IATThreshold <= 0 {
		c.IATThreshold = simtime.Millisecond
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 100 * simtime.Millisecond
	}
	if c.RSSIWindow <= 0 {
		c.RSSIWindow = simtime.Second
	}
	if c.RSSISameple <= 0 {
		c.RSSISameple = 10 * simtime.Millisecond
	}
	if c.ThroughputCut <= 0 {
		c.ThroughputCut = 0.5
	}
	return c
}

// Result reports one scenario run.
type Result struct {
	Kind Config
	// Detector identifies the system under test.
	Detector DetectorKind
	// DetectedAt is when the detector declared blockage (0 = never).
	DetectedAt simtime.Time
	// DetectionLatency = DetectedAt - BlockageStart.
	DetectionLatency simtime.Time
	// RecoveredAt is when delivered throughput climbed back above 90%
	// of the offered rate after the blockage began (0 = never).
	RecoveredAt simtime.Time
	// OutageDuration = RecoveredAt - BlockageStart: the Figure 14
	// "recovery speed".
	OutageDuration simtime.Time
	// Throughput is the delivered rate in 50 ms bins (Figure 14 curve).
	Throughput *metrics.Series
	// IAT is the per-packet inter-arrival series, subsampled (Figure 13
	// curve).
	IAT *metrics.Series
	// MaxIAT is the largest observed inter-arrival gap.
	MaxIAT simtime.Time
	// Delivered and Offered count packets.
	Delivered, Offered uint64
}

// rssiLOS and rssiBlocked model received signal strength in dBm.
const (
	rssiLOS     = -45.0
	rssiBlocked = -85.0
	rssiCut     = -75.0
)

// Run executes one blockage scenario with the chosen detector.
func Run(kind DetectorKind, cfg Config) Result {
	cfg = cfg.withDefaults()
	e := simtime.NewEngine()

	res := Result{Kind: cfg, Detector: kind}
	res.Throughput = metrics.NewSeries("throughput-" + kind.String())
	res.IAT = metrics.NewSeries("iat-" + kind.String())

	// Receiver: counts arrivals, tracks IAT.
	var lastArrival simtime.Time
	var binBytes uint64
	handedOver := false

	rx := &netsim.Sink{Label: "rx"}

	// Paths: primary (mmWave, blockable) and backup.
	primary := netsim.NewLink(e, "mmwave", rx, cfg.LinkBps, 5*simtime.Microsecond, simtime.NewRNG(1))
	backup := netsim.NewLink(e, "backup", rx, cfg.LinkBps, 20*simtime.Microsecond, simtime.NewRNG(2))

	// Watchdog for the P4 IAT detector.
	var watchdogGen uint64
	triggerHandover := func(at simtime.Time) {
		if handedOver {
			return
		}
		handedOver = true
		res.DetectedAt = at
		res.DetectionLatency = at - cfg.BlockageStart
	}
	armWatchdog := func() {
		if kind != DetectorP4IAT || handedOver {
			return
		}
		watchdogGen++
		gen := watchdogGen
		e.Schedule(cfg.IATThreshold, func() {
			if gen == watchdogGen && !handedOver {
				triggerHandover(e.Now())
			}
		})
	}

	rx.OnPacket = func(p *packet.Packet) {
		now := e.Now()
		if lastArrival != 0 {
			iat := now - lastArrival
			if iat > res.MaxIAT {
				res.MaxIAT = iat
			}
			// Subsample the IAT series to keep figures tractable: every
			// 256th packet, plus every abnormal gap.
			if rx.Packets%256 == 0 || iat > 10*cfg.IATThreshold {
				res.IAT.Append(now, iat.Seconds()*1e6) // microseconds
			}
		}
		lastArrival = now
		binBytes += uint64(p.WireLen())
		armWatchdog()
	}

	// CBR source: one packet every gap, steered by handedOver.
	ft := packet.FiveTuple{
		SrcIP:   packet.MustAddr("10.1.0.1"),
		DstIP:   packet.MustAddr("10.1.0.2"),
		SrcPort: 7000,
		DstPort: 7001,
		Proto:   packet.ProtoUDP,
	}
	wire := cfg.PktPayload + packet.EthernetHeaderLen + packet.IPv4HeaderLen + packet.UDPHeaderLen
	gap := simtime.Time(float64(wire*8) / cfg.RateBps * 1e9)
	var send func()
	send = func() {
		if e.Now() >= cfg.Duration {
			return
		}
		p := packet.NewUDP(ft, cfg.PktPayload)
		res.Offered++
		if handedOver {
			backup.Send(p)
		} else {
			primary.Send(p)
		}
		e.Schedule(gap, send)
	}
	e.Schedule(0, send)

	// Blockage window.
	e.At(cfg.BlockageStart, func() { primary.Down = true })
	e.At(cfg.BlockageStart+cfg.BlockageDuration, func() { primary.Down = false })

	// Throughput-based controller.
	if kind == DetectorThroughput {
		var prev uint64
		simtime.NewTicker(e, cfg.PollInterval, cfg.PollInterval, func(now simtime.Time) {
			delta := rx.Bytes - prev
			prev = rx.Bytes
			rate := float64(delta*8) / cfg.PollInterval.Seconds()
			if now > cfg.PollInterval && rate < cfg.ThroughputCut*cfg.RateBps {
				triggerHandover(now)
			}
		})
	}

	// RSSI-based device logic: EWMA of sampled RSSI with a hysteresis
	// window — the device waits for the averaged signal to stay below
	// the cut for the whole window before declaring the beam lost.
	if kind == DetectorRSSI {
		ewma := rssiLOS
		belowSince := simtime.Time(-1)
		rng := simtime.NewRNG(99)
		simtime.NewTicker(e, cfg.RSSISameple, cfg.RSSISameple, func(now simtime.Time) {
			raw := rssiLOS
			if now >= cfg.BlockageStart && now < cfg.BlockageStart+cfg.BlockageDuration {
				raw = rssiBlocked
			}
			raw += (rng.Float64() - 0.5) * 4 // ±2 dB noise
			ewma = 0.8*ewma + 0.2*raw
			if ewma < rssiCut {
				if belowSince < 0 {
					belowSince = now
				} else if now-belowSince >= cfg.RSSIWindow {
					triggerHandover(now)
				}
			} else {
				belowSince = -1
			}
		})
	}

	// Throughput bins (50 ms) and recovery detection.
	const bin = 50 * simtime.Millisecond
	simtime.NewTicker(e, bin, bin, func(now simtime.Time) {
		rate := float64(binBytes*8) / bin.Seconds()
		binBytes = 0
		res.Throughput.Append(now, rate)
		if res.RecoveredAt == 0 && now > cfg.BlockageStart && rate >= 0.9*cfg.RateBps {
			res.RecoveredAt = now
			res.OutageDuration = now - cfg.BlockageStart
		}
	})

	e.Run(cfg.Duration)
	res.Delivered = rx.Packets
	return res
}

// CompareAll runs the three detectors plus the no-detector observation
// under identical conditions — the full Figure 13 + 14 experiment.
func CompareAll(cfg Config) map[DetectorKind]Result {
	out := make(map[DetectorKind]Result, 4)
	for _, k := range []DetectorKind{DetectorNone, DetectorP4IAT, DetectorThroughput, DetectorRSSI} {
		out[k] = Run(k, cfg)
	}
	return out
}

// Describe renders a result line for the experiment console.
func (r Result) Describe() string {
	det := "never"
	if r.DetectedAt > 0 {
		det = fmt.Sprintf("+%v", r.DetectionLatency)
	}
	rec := "never"
	if r.RecoveredAt > 0 {
		rec = fmt.Sprintf("+%v", r.OutageDuration)
	}
	return fmt.Sprintf("%-11s detected %s, throughput recovered %s, maxIAT %v",
		r.Detector, det, rec, r.MaxIAT)
}
