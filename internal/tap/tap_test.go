package tap

import (
	"net/netip"
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/switchsim"
)

// recorder collects TAP copies.
type recorder struct {
	copies []Copy
}

func (r *recorder) ProcessCopy(c Copy) { r.copies = append(r.copies, c) }

func buildTappedSwitch(e *simtime.Engine, mon Monitor) (*switchsim.Switch, *netsim.Sink, *Pair) {
	sw := switchsim.New(e, "core")
	sink := &netsim.Sink{Label: "dst"}
	l := netsim.NewLink(e, "out", sink, netsim.Mbps(8), 0, nil)
	sw.AddRoute(netip.MustParsePrefix("192.168.1.0/24"), l, 0)
	pair := NewPair(e, mon)
	pair.Attach(sw)
	return sw, sink, pair
}

func pkt(payload int) *packet.Packet {
	ft := packet.FiveTuple{
		SrcIP:   packet.MustAddr("10.0.0.1"),
		DstIP:   packet.MustAddr("192.168.1.2"),
		SrcPort: 1,
		DstPort: 2,
		Proto:   packet.ProtoTCP,
	}
	return packet.NewTCP(ft, 1, 0, packet.FlagACK, payload)
}

func TestPairMirrorsBothPoints(t *testing.T) {
	e := simtime.NewEngine()
	rec := &recorder{}
	sw, sink, pair := buildTappedSwitch(e, rec)
	sw.Receive(pkt(946), nil)
	e.Run(simtime.Second)

	if pair.IngressCopies != 1 || pair.EgressCopies != 1 {
		t.Fatalf("copies %d/%d", pair.IngressCopies, pair.EgressCopies)
	}
	if len(rec.copies) != 2 {
		t.Fatalf("monitor saw %d copies", len(rec.copies))
	}
	if rec.copies[0].Point != Ingress || rec.copies[1].Point != Egress {
		t.Fatal("copy points wrong")
	}
	// Egress stamp minus ingress stamp is the switch transit time
	// (1 ms serialisation at 8 Mbps for 1000 wire bytes).
	if d := rec.copies[1].At - rec.copies[0].At; d != simtime.Millisecond {
		t.Fatalf("transit %v, want 1ms", d)
	}
	if sink.Packets != 1 {
		t.Fatal("production path must still deliver")
	}
}

func TestCopiesAreClones(t *testing.T) {
	e := simtime.NewEngine()
	rec := &recorder{}
	sw, _, _ := buildTappedSwitch(e, rec)
	p := pkt(100)
	sw.Receive(p, nil)
	e.Run(simtime.Second)

	// Mutating the monitor's copy must not affect the original packet
	// still traversing the production path.
	rec.copies[0].Pkt.SeqExt = 999999
	if p.SeqExt == 999999 {
		t.Fatal("monitor copy aliases the production packet")
	}
}

func TestMirrorDelayShiftsDeliveryNotTimestamps(t *testing.T) {
	e := simtime.NewEngine()
	rec := &recorder{}
	var deliveredAt []simtime.Time
	mon := monitorFunc(func(c Copy) {
		rec.ProcessCopy(c)
		deliveredAt = append(deliveredAt, e.Now())
	})
	sw := switchsim.New(e, "core")
	sink := &netsim.Sink{Label: "dst"}
	l := netsim.NewLink(e, "out", sink, netsim.Mbps(8), 0, nil)
	sw.AddRoute(netip.MustParsePrefix("192.168.1.0/24"), l, 0)
	pair := NewPair(e, mon)
	pair.MirrorDelay = 3 * simtime.Millisecond
	pair.Attach(sw)

	sw.Receive(pkt(946), nil)
	e.Run(simtime.Second)

	if len(rec.copies) != 2 {
		t.Fatalf("copies: %d", len(rec.copies))
	}
	// Timestamps embedded in the copies are the TAP instants...
	if rec.copies[0].At != 0 || rec.copies[1].At != simtime.Millisecond {
		t.Fatalf("stamps %v %v", rec.copies[0].At, rec.copies[1].At)
	}
	// ...while delivery to the monitor happens MirrorDelay later.
	if deliveredAt[0] != 3*simtime.Millisecond {
		t.Fatalf("delivered at %v, want 3ms", deliveredAt[0])
	}
}

type monitorFunc func(Copy)

func (f monitorFunc) ProcessCopy(c Copy) { f(c) }

func TestCopyPointString(t *testing.T) {
	if Ingress.String() != "ingress" || Egress.String() != "egress" {
		t.Fatal("point names wrong")
	}
}

func TestPassiveNoInterference(t *testing.T) {
	// The §3.3.1 property: the same workload with and without TAPs
	// delivers packets at identical times.
	run := func(withTap bool) []simtime.Time {
		e := simtime.NewEngine()
		sw := switchsim.New(e, "core")
		var arrivals []simtime.Time
		sink := &netsim.Sink{Label: "dst", OnPacket: func(*packet.Packet) {
			arrivals = append(arrivals, e.Now())
		}}
		l := netsim.NewLink(e, "out", sink, netsim.Mbps(8), simtime.Millisecond, nil)
		sw.AddRoute(netip.MustParsePrefix("192.168.1.0/24"), l, 0)
		if withTap {
			NewPair(e, &recorder{}).Attach(sw)
		}
		for i := 0; i < 10; i++ {
			sw.Receive(pkt(500+i), nil)
		}
		e.Run(simtime.Second)
		return arrivals
	}
	a := run(false)
	b := run(true)
	if len(a) != len(b) {
		t.Fatal("different delivery counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tap changed delivery time %d: %v vs %v", i, a[i], b[i])
		}
	}
}
