// Package tap models the pair of passive optical TAPs the paper inserts
// at the ingress and egress ports of the legacy core switch (§3.1,
// §4.2). Each TAP delivers a timestamped copy of every packet to the
// monitor port of the P4 programmable switch; the production path never
// observes the TAP (zero interference — the "passive measurement"
// property of §3.3.1).
package tap

import (
	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/switchsim"
)

// CopyPoint distinguishes the two mirror locations.
type CopyPoint int

// The two TAP positions on the core switch.
const (
	Ingress CopyPoint = iota // packet entering the core switch
	Egress                   // packet leaving the core switch
)

// String names the TAP attachment point (ingress or egress).
func (p CopyPoint) String() string {
	if p == Ingress {
		return "ingress"
	}
	return "egress"
}

// Copy is one mirrored packet delivered to the monitoring device.
type Copy struct {
	Pkt   *packet.Packet
	Point CopyPoint
	// At is the nanosecond timestamp at which the original packet
	// passed the TAP.
	At simtime.Time
}

// Monitor consumes TAP copies; the P4 programmable switch's data plane
// implements this.
type Monitor interface {
	ProcessCopy(c Copy)
}

// Pair is the two optical TAPs wired to one core switch. Attach splices
// them into the switch's ingress and egress mirror hooks.
type Pair struct {
	monitor Monitor

	// EgressFilter restricts which departure port the egress TAP
	// mirrors, by link name. The paper's TAPs sit on the core switch's
	// WAN-side pair, so the monitored queue is that one port — mixing
	// per-packet queue delays from unrelated ports would corrupt the
	// microburst signal. Nil mirrors every port.
	EgressFilter func(link string) bool

	// MirrorDelay models the propagation from TAP to monitor port. It
	// shifts delivery time but not the embedded timestamps, exactly like
	// a fixed fibre run. Zero by default (the timestamps are what the
	// algorithms use, so the delay is immaterial to results).
	MirrorDelay simtime.Time

	// Recycle, when true, draws mirror copies from the packet arena and
	// releases them as soon as the monitor's ProcessCopy returns. Enable
	// it only for monitors that do not retain copies (the data plane
	// reads registers and returns); recorders that keep Copy values must
	// leave it false — the default — so copies are ordinary heap clones.
	Recycle bool

	engine *simtime.Engine

	// Stats
	IngressCopies uint64
	EgressCopies  uint64
}

// NewPair creates a TAP pair delivering to monitor.
func NewPair(e *simtime.Engine, monitor Monitor) *Pair {
	return &Pair{monitor: monitor, engine: e}
}

// Attach splices the pair into the core switch.
func (p *Pair) Attach(sw *switchsim.Switch) {
	sw.IngressTap = func(pkt *packet.Packet, at simtime.Time, _ string) {
		p.IngressCopies++
		p.deliver(Copy{Pkt: p.clone(pkt), Point: Ingress, At: at})
	}
	sw.EgressTap = func(pkt *packet.Packet, at simtime.Time, link string) {
		if p.EgressFilter != nil && !p.EgressFilter(link) {
			return
		}
		p.EgressCopies++
		p.deliver(Copy{Pkt: p.clone(pkt), Point: Egress, At: at})
	}
}

// p4:hotpath
func (p *Pair) clone(pkt *packet.Packet) *packet.Packet {
	if p.Recycle {
		return pkt.ClonePooled()
	}
	return pkt.Clone()
}

// p4:hotpath
func (p *Pair) deliver(c Copy) {
	if p.MirrorDelay <= 0 {
		p.monitor.ProcessCopy(c)
		if p.Recycle {
			c.Pkt.Release()
		}
		return
	}
	p.engine.Schedule(p.MirrorDelay, func() {
		p.monitor.ProcessCopy(c)
		if p.Recycle {
			c.Pkt.Release()
		}
	})
}
