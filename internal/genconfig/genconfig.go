// Package genconfig is the repository's RCU-style configuration
// publication primitive, modelled on yanet2's cp_config_gen idiom
// (SNIPPETS.md snippets 1–3): all runtime-tunable state lives in an
// immutable Generation snapshot published through a single atomic
// pointer. Readers pin the live generation once per work quantum (one
// control-plane tick, one batch front), read every field from that one
// snapshot, and release it; writers build a complete successor off the
// current snapshot and install it with one compare-and-swap.
//
// The discipline makes two failure modes structurally impossible:
//
//   - Torn reads. A reader holds exactly one *Gen for the whole
//     quantum, and a Gen's value is never mutated after publication,
//     so every (field A, field B) pair a reader observes comes from
//     the same published snapshot — there is no instant at which half
//     of a reconfiguration is visible.
//
//   - Partial application. Publish runs the caller's build function
//     against a scratch copy; an error publishes nothing, and the CAS
//     installs the successor in one step. Concurrent writers that lose
//     the CAS race rebuild against the winner's snapshot and retry, so
//     every published generation is a complete, validated state.
//
// Retirement is the drain proof: when a generation is superseded and
// its last reader releases it, the store's retire counter advances.
// Counters().Outstanding == 0 therefore certifies that no reader can
// still observe any pre-reconfiguration value.
package genconfig

import "sync/atomic"

// Gen is one immutable configuration generation. The value is written
// exactly once (before the generation is published) and never mutated
// afterwards; readers share the pointer and copy the value out.
type Gen[T any] struct {
	val T
	seq uint64

	// readers counts Acquire pins not yet Released.
	readers atomic.Int64
	// superseded is set once a successor generation has been published.
	superseded atomic.Bool
	// retired latches the one transition into the store's retire
	// counter (several goroutines can race to retire; exactly one
	// wins the CAS).
	retired atomic.Bool
}

// Seq returns the generation's sequence number (0 for the initial
// generation; each successful Publish increments it by one).
func (g *Gen[T]) Seq() uint64 { return g.seq }

// Value returns a copy of the generation's snapshot. The copy shares
// nothing with the store, so callers may hold it past Release.
func (g *Gen[T]) Value() T { return g.val }

// Counters is a snapshot of a store's generation accounting.
type Counters struct {
	// Seq is the live generation's sequence number.
	Seq uint64
	// Published counts successful Publish calls (generation 0 from
	// NewStore is not counted).
	Published uint64
	// Retired counts superseded generations whose last reader has
	// released them.
	Retired uint64
	// Outstanding is Published - Retired: superseded generations that
	// may still be pinned by a reader. Zero proves every old
	// generation has drained.
	Outstanding uint64
}

// Store publishes immutable generations of a config value T. T must be
// a pure value (no maps, slices or pointers to shared state): a copy
// of T must share nothing with the original, or the immutability
// argument above does not hold.
//
// All methods are safe for concurrent use. Acquire/Release are
// allocation-free (the per-packet benchmark gate depends on this);
// Publish allocates one Gen per successful installation and runs off
// the packet path.
type Store[T any] struct {
	cur       atomic.Pointer[Gen[T]]
	published atomic.Uint64
	retired   atomic.Uint64
}

// NewStore returns a store whose generation 0 holds initial.
func NewStore[T any](initial T) *Store[T] {
	s := &Store[T]{}
	s.cur.Store(&Gen[T]{val: initial})
	return s
}

// Acquire pins the live generation and returns it. The caller must
// Release the same pointer when its work quantum ends; between the two
// calls every configuration read must come from the returned Gen. The
// pin-then-revalidate loop guarantees the returned generation was the
// live one at some instant after the pin was visible, so a concurrent
// Publish either sees the reader (and defers retirement) or happened
// entirely before the acquire.
func (s *Store[T]) Acquire() *Gen[T] {
	for {
		g := s.cur.Load()
		g.readers.Add(1)
		if s.cur.Load() == g {
			return g
		}
		// A publish raced between the load and the pin: the pin may
		// have landed on an already-superseded generation after its
		// retirement check. Undo and retry on the new head.
		s.release(g)
	}
}

// Release unpins a generation returned by Acquire. When the last
// reader of a superseded generation leaves, the generation retires and
// the store's retire counter advances.
func (s *Store[T]) Release(g *Gen[T]) { s.release(g) }

func (s *Store[T]) release(g *Gen[T]) {
	if g.readers.Add(-1) == 0 && g.superseded.Load() {
		s.tryRetire(g)
	}
}

// tryRetire advances the retire counter exactly once per generation,
// and only when no reader holds a pin. A stale Acquire may briefly
// re-pin a retired generation during its revalidation loop; it never
// returns it to a caller, so retirement remains the "no consumer can
// observe this snapshot" certificate.
func (s *Store[T]) tryRetire(g *Gen[T]) {
	if g.readers.Load() == 0 && g.retired.CompareAndSwap(false, true) {
		s.retired.Add(1)
	}
}

// Current returns a copy of the live generation's value: the
// single-atomic-load form of Acquire+Value+Release for callers whose
// whole quantum is one read. The copy is torn-free for the same reason
// a pinned read is — the snapshot behind the pointer never mutates.
func (s *Store[T]) Current() T { return s.cur.Load().val }

// Seq returns the live generation's sequence number.
func (s *Store[T]) Seq() uint64 { return s.cur.Load().seq }

// Publish installs a new generation built by build, which receives a
// copy of the current snapshot and returns the complete successor. An
// error from build aborts the publish: the store is untouched and the
// error is returned. When a concurrent Publish wins the CAS race,
// build is re-run against the winner's snapshot, so the transaction
// semantics survive any number of concurrent writers. Returns the new
// generation's sequence number.
func (s *Store[T]) Publish(build func(cur T) (T, error)) (uint64, error) {
	for {
		old := s.cur.Load()
		next, err := build(old.val)
		if err != nil {
			return old.seq, err
		}
		ng := &Gen[T]{val: next, seq: old.seq + 1}
		if !s.cur.CompareAndSwap(old, ng) {
			continue
		}
		s.published.Add(1)
		// Readers already pinned on old keep reading it coherently;
		// mark it superseded and retire it now if it is unread.
		old.superseded.Store(true)
		if old.readers.Load() == 0 {
			s.tryRetire(old)
		}
		return ng.seq, nil
	}
}

// Counters returns the store's generation accounting. Outstanding == 0
// proves every superseded generation has drained (no reader can still
// observe pre-publish values).
func (s *Store[T]) Counters() Counters {
	// Load retired before published: a concurrent publish+retire
	// between the two loads can then only make Outstanding read high
	// (never negative), keeping the drain certificate conservative.
	retired := s.retired.Load()
	published := s.published.Load()
	return Counters{
		Seq:         s.cur.Load().seq,
		Published:   published,
		Retired:     retired,
		Outstanding: published - retired,
	}
}
