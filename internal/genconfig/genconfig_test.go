package genconfig

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// pair is a two-field config: the torn-read tests assert the fields
// are always observed moving together.
type pair struct {
	A, B uint64
}

func TestPublishAndCurrent(t *testing.T) {
	s := NewStore(pair{A: 1, B: 1})
	if got := s.Current(); got != (pair{1, 1}) {
		t.Fatalf("initial = %+v", got)
	}
	seq, err := s.Publish(func(cur pair) (pair, error) {
		cur.A, cur.B = 2, 2
		return cur, nil
	})
	if err != nil || seq != 1 {
		t.Fatalf("publish: seq=%d err=%v", seq, err)
	}
	if got := s.Current(); got != (pair{2, 2}) {
		t.Fatalf("after publish = %+v", got)
	}
	if s.Seq() != 1 {
		t.Fatalf("seq = %d", s.Seq())
	}
}

func TestPublishErrorChangesNothing(t *testing.T) {
	s := NewStore(pair{A: 7, B: 7})
	boom := errors.New("boom")
	_, err := s.Publish(func(cur pair) (pair, error) {
		cur.A = 99 // half-applied scratch state must be discarded
		return cur, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := s.Current(); got != (pair{7, 7}) {
		t.Fatalf("config changed on failed publish: %+v", got)
	}
	c := s.Counters()
	if c.Published != 0 || c.Seq != 0 {
		t.Fatalf("counters moved on failed publish: %+v", c)
	}
}

func TestAcquireReleaseRetires(t *testing.T) {
	s := NewStore(pair{A: 1})
	g := s.Acquire()
	if _, err := s.Publish(func(cur pair) (pair, error) { cur.A = 2; return cur, nil }); err != nil {
		t.Fatal(err)
	}
	// The old generation is pinned: superseded but not retired.
	c := s.Counters()
	if c.Published != 1 || c.Retired != 0 || c.Outstanding != 1 {
		t.Fatalf("pinned counters: %+v", c)
	}
	// The pinned snapshot still reads the old value coherently.
	if g.Value() != (pair{A: 1}) {
		t.Fatalf("pinned value = %+v", g.Value())
	}
	s.Release(g)
	c = s.Counters()
	if c.Retired != 1 || c.Outstanding != 0 {
		t.Fatalf("after release: %+v", c)
	}
}

func TestUnreadGenerationRetiresOnPublish(t *testing.T) {
	s := NewStore(pair{})
	for i := 0; i < 5; i++ {
		if _, err := s.Publish(func(cur pair) (pair, error) { cur.A++; return cur, nil }); err != nil {
			t.Fatal(err)
		}
	}
	c := s.Counters()
	if c.Published != 5 || c.Retired != 5 || c.Outstanding != 0 {
		t.Fatalf("counters: %+v", c)
	}
}

// TestConcurrentPublishersSerialize proves the CAS loop loses no
// update: N goroutines each add 1 to a counter field, and the final
// value is exactly N with exactly N publishes.
func TestConcurrentPublishersSerialize(t *testing.T) {
	const writers, each = 8, 200
	s := NewStore(pair{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := s.Publish(func(cur pair) (pair, error) {
					cur.A++
					cur.B++
					return cur, nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Current(); got.A != writers*each || got.B != writers*each {
		t.Fatalf("lost updates: %+v", got)
	}
	c := s.Counters()
	if c.Published != writers*each || c.Seq != writers*each {
		t.Fatalf("counters: %+v", c)
	}
	if c.Outstanding != 0 {
		t.Fatalf("outstanding after quiesce: %+v", c)
	}
}

// TestNoTornReadsUnderStorm runs readers (pinned and Current) against
// concurrent publishers that always keep A == B. Any observation with
// A != B is a torn read.
func TestNoTornReadsUnderStorm(t *testing.T) {
	s := NewStore(pair{})
	done := make(chan struct{})
	var readers, writers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				g := s.Acquire()
				v := g.Value()
				s.Release(g)
				if v.A != v.B {
					t.Errorf("torn pinned read: %+v", v)
					return
				}
				if v := s.Current(); v.A != v.B {
					t.Errorf("torn Current read: %+v", v)
					return
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				_, _ = s.Publish(func(cur pair) (pair, error) {
					cur.A += uint64(w + 1)
					cur.B = cur.A
					return cur, nil
				})
			}
		}(w)
	}
	writers.Wait()
	close(done)
	readers.Wait()
	c := s.Counters()
	if c.Outstanding != 0 {
		t.Fatalf("generations leaked: %+v", c)
	}
	if c.Retired != c.Published {
		t.Fatalf("retired %d != published %d", c.Retired, c.Published)
	}
}

// TestAcquireReleaseAllocFree pins the hot-path contract: pinned reads
// allocate nothing (Publish may allocate; it is off the packet path).
func TestAcquireReleaseAllocFree(t *testing.T) {
	s := NewStore(pair{A: 3, B: 3})
	var sink uint64
	allocs := testing.AllocsPerRun(1000, func() {
		g := s.Acquire()
		sink += g.Value().A
		s.Release(g)
		sink += s.Current().B
	})
	if allocs != 0 {
		t.Fatalf("pinned read allocates %.1f/op (sink=%d)", allocs, sink)
	}
}

// TestStaleAcquireRetries proves a reader that pins a generation just
// as it is superseded retries onto the new head rather than returning
// a retired snapshot — and that the accounting still balances.
func TestStaleAcquireRetries(t *testing.T) {
	s := NewStore(pair{})
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				g := s.Acquire()
				s.Release(g)
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		if _, err := s.Publish(func(cur pair) (pair, error) { cur.A++; cur.B++; return cur, nil }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	c := s.Counters()
	if c.Outstanding != 0 || c.Retired != c.Published {
		t.Fatalf("accounting off after churn: %+v", c)
	}
}

func ExampleStore_Publish() {
	s := NewStore(pair{A: 1, B: 1})
	_, err := s.Publish(func(cur pair) (pair, error) {
		cur.A, cur.B = 4, 4
		return cur, nil
	})
	fmt.Println(s.Current().A, s.Current().B, err)
	// Output: 4 4 <nil>
}
