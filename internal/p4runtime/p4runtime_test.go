package p4runtime

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/dataplane"
	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/tap"
)

func testFlow() packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   packet.MustAddr("172.16.0.10"),
		DstIP:   packet.MustAddr("192.168.1.10"),
		SrcPort: 40001,
		DstPort: 5201,
		Proto:   packet.ProtoTCP,
	}
}

func feed(dp *dataplane.Pipes, n int) {
	ft := testFlow()
	for i := 0; i < n; i++ {
		p := packet.NewTCP(ft, uint64(1+i*1000), 0, packet.FlagACK|packet.FlagPSH, 1000)
		p.IPID = uint16(i + 1)
		dp.ProcessCopy(tap.Copy{Pkt: p, Point: tap.Ingress, At: simtime.Time(i+1) * simtime.Millisecond})
	}
}

func TestServerRegisterRead(t *testing.T) {
	dp := dataplane.NewPipes(dataplane.Config{}, 1)
	feed(dp, 5)
	s := NewServer(dp)

	id := dataplane.HashFiveTuple(testFlow())
	size := dp.Shard(0).RegisterByName("flow_pkts").Size()
	resp := s.Handle(Request{Op: OpRegisterRead, Register: "flow_pkts", Index: uint32(id) % uint32(size)})
	if !resp.OK || resp.Value != 5 {
		t.Fatalf("resp: %+v", resp)
	}
}

func TestServerUnknownRegister(t *testing.T) {
	s := NewServer(dataplane.NewPipes(dataplane.Config{}, 1))
	if resp := s.Handle(Request{Op: OpRegisterRead, Register: "nope"}); resp.OK {
		t.Fatal("unknown register must fail")
	}
}

func TestServerFlowRead(t *testing.T) {
	dp := dataplane.NewPipes(dataplane.Config{}, 1)
	feed(dp, 7)
	s := NewServer(dp)
	ft := testFlow()
	resp := s.Handle(Request{
		Op:     OpFlowRead,
		FlowID: uint32(dataplane.HashFiveTuple(ft)),
		RevID:  uint32(dataplane.HashReverse(ft)),
	})
	if !resp.OK || resp.Flow == nil {
		t.Fatalf("resp: %+v", resp)
	}
	if resp.Flow.Pkts != 7 || resp.Flow.Bytes != 7*1040 {
		t.Fatalf("flow: %+v", resp.Flow)
	}
}

func TestServerTableSkip(t *testing.T) {
	dp := dataplane.NewPipes(dataplane.Config{}, 1)
	s := NewServer(dp)
	if resp := s.Handle(Request{Op: OpTableSkip, Prefix: "192.168.1.0/24"}); !resp.OK {
		t.Fatalf("resp: %+v", resp)
	}
	feed(dp, 3)
	if dp.StatsSnapshot().SkippedPackets != 3 {
		t.Fatalf("skipped=%d", dp.StatsSnapshot().SkippedPackets)
	}
	if resp := s.Handle(Request{Op: OpTableSkip, Prefix: "not-a-prefix"}); resp.OK {
		t.Fatal("bad prefix must fail")
	}
}

func TestServerListAndStats(t *testing.T) {
	dp := dataplane.NewPipes(dataplane.Config{}, 1)
	feed(dp, 2)
	s := NewServer(dp)
	lr := s.Handle(Request{Op: OpListRegisters})
	if !lr.OK || len(lr.Registers) < 20 {
		t.Fatalf("registers: %v", lr.Registers)
	}
	st := s.Handle(Request{Op: OpStats})
	if !st.OK || st.Stats.IngressCopies != 2 {
		t.Fatalf("stats: %+v", st.Stats)
	}
}

func TestServerUnknownOp(t *testing.T) {
	s := NewServer(dataplane.NewPipes(dataplane.Config{}, 1))
	if resp := s.Handle(Request{Op: "frobnicate"}); resp.OK {
		t.Fatal("unknown op must fail")
	}
}

func TestServerGuardSerialises(t *testing.T) {
	dp := dataplane.NewPipes(dataplane.Config{}, 1)
	s := NewServer(dp)
	var mu sync.Mutex
	guarded := 0
	s.Guard = func(f func()) {
		mu.Lock()
		guarded++
		f()
		mu.Unlock()
	}
	s.Handle(Request{Op: OpStats})
	s.Handle(Request{Op: OpListRegisters})
	if guarded != 2 {
		t.Fatalf("guard used %d times", guarded)
	}
}

func TestClientServerOverTCP(t *testing.T) {
	dp := dataplane.NewPipes(dataplane.Config{}, 1)
	feed(dp, 4)
	s := NewServer(dp)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go Serve(ln, s)

	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	regs, err := c.ListRegisters()
	if err != nil || len(regs) == 0 {
		t.Fatalf("list: %v %v", regs, err)
	}
	ft := testFlow()
	flow, err := c.FlowRead(uint32(dataplane.HashFiveTuple(ft)), uint32(dataplane.HashReverse(ft)))
	if err != nil {
		t.Fatal(err)
	}
	if flow.Pkts != 4 {
		t.Fatalf("flow over wire: %+v", flow)
	}
	if err := c.TableSkip("10.9.0.0/16"); err != nil {
		t.Fatal(err)
	}
	// Server-side errors surface as client errors.
	if _, err := c.RegisterRead("bogus", 0); err == nil {
		t.Fatal("server error not propagated")
	}
	// The connection survives an error and handles further requests.
	v, err := c.RegisterRead("flow_pkts", 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = v
}
