package p4runtime

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
)

// fakeMembership is a scriptable Membership for transport tests: it
// counts calls and can fail on demand, standing in for the federation
// coordinator without importing it (which would cycle).
type fakeMembership struct {
	mu         sync.Mutex
	registers  []MemberInfo
	heartbeats []MemberInfo
	fleetSeq   uint64
	failNext   bool
}

func (f *fakeMembership) MemberRegister(info MemberInfo) (MemberAck, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failNext {
		f.failNext = false
		return MemberAck{}, fmt.Errorf("registry full")
	}
	f.registers = append(f.registers, info)
	return MemberAck{Incarnation: uint64(len(f.registers)), FleetSeq: f.fleetSeq}, nil
}

func (f *fakeMembership) MemberHeartbeat(info MemberInfo) (MemberAck, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.heartbeats = append(f.heartbeats, info)
	return MemberAck{Incarnation: 1, FleetSeq: f.fleetSeq}, nil
}

func (f *fakeMembership) MemberList() []MemberStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []MemberStatus
	for i, r := range f.registers {
		out = append(out, MemberStatus{Site: r.Site, Switch: r.Switch, State: "alive", Incarnation: uint64(i + 1)})
	}
	return out
}

func (f *fakeMembership) counts() (int, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.registers), len(f.heartbeats)
}

func member(sw string, gen uint64) MemberInfo {
	return MemberInfo{Site: "alpha", Switch: sw, ConfigAddr: "alpha/" + sw + ":config", Generation: gen}
}

func TestMembershipNotServed(t *testing.T) {
	s := NewServer(nil)
	if resp := s.Handle(Request{Op: OpMemberRegister, Member: &MemberInfo{Site: "a", Switch: "b"}}); resp.OK {
		t.Fatal("membership op must fail without a Membership implementation")
	}
	// A membership-only server rejects data-plane ops instead of
	// dereferencing a nil pipeline.
	if resp := s.Handle(Request{Op: OpStats}); resp.OK {
		t.Fatal("data-plane op must fail without a data plane")
	}
}

func TestMembershipMissingInfo(t *testing.T) {
	s := NewServer(nil)
	s.Members = &fakeMembership{}
	for _, op := range []Op{OpMemberRegister, OpMemberHeartbeat} {
		if resp := s.Handle(Request{Op: op}); resp.OK {
			t.Fatalf("%s without member info must fail", op)
		}
	}
}

func TestMembershipOverTransport(t *testing.T) {
	fm := &fakeMembership{fleetSeq: 7}
	s := NewServer(nil)
	s.Members = fm
	ln := faultnet.NewListener()
	defer ln.Close()
	go Serve(ln, s)

	conn, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	defer c.Close()

	ack, err := c.MemberRegister(member("sw1", 0))
	if err != nil {
		t.Fatal(err)
	}
	if ack.Incarnation != 1 || ack.FleetSeq != 7 {
		t.Fatalf("ack: %+v", ack)
	}
	ack, err = c.MemberHeartbeat(member("sw1", 7))
	if err != nil {
		t.Fatal(err)
	}
	if ack.FleetSeq != 7 {
		t.Fatalf("heartbeat ack: %+v", ack)
	}
	ms, err := c.MemberList()
	if err != nil || len(ms) != 1 || ms[0].Switch != "sw1" {
		t.Fatalf("list: %+v err=%v", ms, err)
	}
	// A server-side registry error surfaces as a client error and the
	// connection survives it.
	fm.mu.Lock()
	fm.failNext = true
	fm.mu.Unlock()
	if _, err := c.MemberRegister(member("sw2", 0)); err == nil {
		t.Fatal("registry error not propagated")
	}
	if _, err := c.MemberHeartbeat(member("sw1", 7)); err != nil {
		t.Fatalf("connection did not survive server error: %v", err)
	}
}

// TestMembershipMidRecordReset cuts the client connection mid-request
// (the JSON line is torn at a byte offset): the in-flight call fails,
// the server drops the partial record without registering anything,
// and a fresh connection re-registers cleanly — the duplicate shows up
// registry-side, not as transport corruption.
func TestMembershipMidRecordReset(t *testing.T) {
	fm := &fakeMembership{}
	s := NewServer(nil)
	s.Members = fm
	ln := faultnet.NewListener()
	defer ln.Close()
	go Serve(ln, s)

	// First connection: the first write resets after 10 bytes —
	// mid-record, well inside the JSON request line.
	ln.ScriptNext(faultnet.Script{{AfterBytes: 10, Kind: faultnet.Reset}})
	conn, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	if _, err := c.MemberRegister(member("sw1", 0)); err == nil {
		t.Fatal("mid-record reset must fail the in-flight call")
	}
	c.Close()

	// The torn fragment must not have produced a registration.
	waitCond(t, func() bool { r, _ := fm.counts(); return r == 0 })

	// Reconnect and register for real.
	conn2, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewClient(conn2)
	defer c2.Close()
	if _, err := c2.MemberRegister(member("sw1", 0)); err != nil {
		t.Fatal(err)
	}
	if r, _ := fm.counts(); r != 1 {
		t.Fatalf("registers after recovery: %d", r)
	}
}

// TestMembershipStalledHeartbeat stalls a heartbeat's write long
// enough that the caller's deadline logic (here: a timed wait) would
// declare the member suspect before the beat lands — the transport
// delivers it late rather than corrupting it.
func TestMembershipStalledHeartbeat(t *testing.T) {
	fm := &fakeMembership{}
	s := NewServer(nil)
	s.Members = fm
	ln := faultnet.NewListener()
	defer ln.Close()
	go Serve(ln, s)

	ln.ScriptNext(faultnet.Script{{AfterBytes: 10, Kind: faultnet.Stall, Delay: 50 * time.Millisecond}})
	conn, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	defer c.Close()

	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := c.MemberHeartbeat(member("sw1", 0))
		done <- err
	}()
	// The beat has not arrived by the 20ms "deadline" …
	time.Sleep(20 * time.Millisecond)
	if _, hb := fm.counts(); hb != 0 {
		t.Fatal("stalled heartbeat arrived before the stall elapsed")
	}
	// … but it lands, intact, once the stall elapses.
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("heartbeat returned before the stall: %v", elapsed)
	}
	if _, hb := fm.counts(); hb != 1 {
		t.Fatal("stalled heartbeat lost")
	}
}

// TestMembershipConcurrentClients registers members from concurrent
// connections (run under -race): one serveConn goroutine per client
// all calling into the shared Membership.
func TestMembershipConcurrentClients(t *testing.T) {
	fm := &fakeMembership{}
	s := NewServer(nil)
	s.Members = fm
	ln := faultnet.NewListener()
	defer ln.Close()
	go Serve(ln, s)

	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := ln.Dial()
			if err != nil {
				t.Error(err)
				return
			}
			c := NewClient(conn)
			defer c.Close()
			if _, err := c.MemberRegister(member(fmt.Sprintf("sw%d", i), 0)); err != nil {
				t.Error(err)
				return
			}
			if _, err := c.MemberHeartbeat(member(fmt.Sprintf("sw%d", i), 0)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	r, hb := fm.counts()
	if r != n || hb != n {
		t.Fatalf("registers=%d heartbeats=%d", r, hb)
	}
}

// TestServeShutdownNoLeak proves coordinator-side shutdown leaks no
// goroutines: closing the listener ends the accept loop, and closing
// client connections ends every serveConn.
func TestServeShutdownNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	fm := &fakeMembership{}
	s := NewServer(nil)
	s.Members = fm
	ln := faultnet.NewListener()
	go Serve(ln, s)

	var clients []*Client
	for i := 0; i < 4; i++ {
		conn, err := ln.Dial()
		if err != nil {
			t.Fatal(err)
		}
		c := NewClient(conn)
		if _, err := c.MemberRegister(member(fmt.Sprintf("sw%d", i), 0)); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	for _, c := range clients {
		c.Close()
	}
	ln.Close()
	waitCond(t, func() bool { return runtime.NumGoroutine() <= before })
}

// waitCond polls until cond holds or the test deadline budget runs
// out — shutdown and delivery are asynchronous, so assertions
// synchronise on observed state, never on fixed sleeps.
func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition did not converge")
}
