package p4runtime

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Serve accepts runtime connections on ln until the listener closes.
// Each connection carries a stream of JSON-encoded Requests, answered
// in order with JSON-encoded Responses — one object per line.
func Serve(ln net.Listener, s *Server) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go serveConn(conn, s)
	}
}

func serveConn(conn net.Conn, s *Server) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		if err := enc.Encode(s.Handle(req)); err != nil {
			return
		}
	}
}

// Client talks to a remote runtime server over one TCP connection.
type Client struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a runtime server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("p4runtime: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do executes one operation.
func (c *Client) Do(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("p4runtime: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("p4runtime: recv: %w", err)
	}
	if !resp.OK {
		return resp, fmt.Errorf("p4runtime: server error: %s", resp.Error)
	}
	return resp, nil
}

// RegisterRead reads one register cell by P4 instance name.
func (c *Client) RegisterRead(register string, index uint32) (uint64, error) {
	resp, err := c.Do(Request{Op: OpRegisterRead, Register: register, Index: index})
	return resp.Value, err
}

// FlowRead reads a flow snapshot by its digest IDs.
func (c *Client) FlowRead(flowID, revID uint32) (*FlowReply, error) {
	resp, err := c.Do(Request{Op: OpFlowRead, FlowID: flowID, RevID: revID})
	return resp.Flow, err
}

// TableSkip programs a skip entry in the monitor table.
func (c *Client) TableSkip(prefix string) error {
	_, err := c.Do(Request{Op: OpTableSkip, Prefix: prefix})
	return err
}

// ListRegisters enumerates the pipeline's register instances.
func (c *Client) ListRegisters() ([]string, error) {
	resp, err := c.Do(Request{Op: OpListRegisters})
	return resp.Registers, err
}
