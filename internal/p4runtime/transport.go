package p4runtime

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Serve accepts runtime connections on ln until the listener closes.
// Each connection carries a stream of JSON-encoded Requests, answered
// in order with JSON-encoded Responses — one object per line.
func Serve(ln net.Listener, s *Server) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go serveConn(conn, s)
	}
}

func serveConn(conn net.Conn, s *Server) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		if err := enc.Encode(s.Handle(req)); err != nil {
			return
		}
	}
}

// Client talks to a remote runtime server over one TCP connection.
type Client struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a runtime server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("p4runtime: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}, nil
}

// NewClient wraps an already-established connection (a faultnet pipe
// in tests, a pre-dialled socket in the federation harness) in a
// runtime client. The client owns the connection and closes it.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do executes one operation.
func (c *Client) Do(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("p4runtime: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("p4runtime: recv: %w", err)
	}
	if !resp.OK {
		return resp, fmt.Errorf("p4runtime: server error: %s", resp.Error)
	}
	return resp, nil
}

// RegisterRead reads one register cell by P4 instance name.
func (c *Client) RegisterRead(register string, index uint32) (uint64, error) {
	resp, err := c.Do(Request{Op: OpRegisterRead, Register: register, Index: index})
	return resp.Value, err
}

// FlowRead reads a flow snapshot by its digest IDs.
func (c *Client) FlowRead(flowID, revID uint32) (*FlowReply, error) {
	resp, err := c.Do(Request{Op: OpFlowRead, FlowID: flowID, RevID: revID})
	return resp.Flow, err
}

// TableSkip programs a skip entry in the monitor table.
func (c *Client) TableSkip(prefix string) error {
	_, err := c.Do(Request{Op: OpTableSkip, Prefix: prefix})
	return err
}

// ListRegisters enumerates the pipeline's register instances.
func (c *Client) ListRegisters() ([]string, error) {
	resp, err := c.Do(Request{Op: OpListRegisters})
	return resp.Registers, err
}

// MemberRegister registers (or re-registers) a fleet member with the
// coordinator behind this server.
func (c *Client) MemberRegister(info MemberInfo) (MemberAck, error) {
	resp, err := c.Do(Request{Op: OpMemberRegister, Member: &info})
	if err != nil {
		return MemberAck{}, err
	}
	if resp.Ack == nil {
		return MemberAck{}, fmt.Errorf("p4runtime: register: empty ack")
	}
	return *resp.Ack, nil
}

// MemberHeartbeat refreshes a member's liveness deadline.
func (c *Client) MemberHeartbeat(info MemberInfo) (MemberAck, error) {
	resp, err := c.Do(Request{Op: OpMemberHeartbeat, Member: &info})
	if err != nil {
		return MemberAck{}, err
	}
	if resp.Ack == nil {
		return MemberAck{}, fmt.Errorf("p4runtime: heartbeat: empty ack")
	}
	return *resp.Ack, nil
}

// MemberList snapshots the coordinator's member registry.
func (c *Client) MemberList() ([]MemberStatus, error) {
	resp, err := c.Do(Request{Op: OpMemberList})
	return resp.Members, err
}
