// Package p4runtime models "the APIs provided by the manufacturer of
// the switch" (§4.1) that the paper's control plane uses to read
// data-plane registers at run time — the role P4Runtime/BfRt play on
// real Tofino deployments. A Server wraps a DataPlane and executes
// runtime operations: register reads (by P4 instance name), monitor
// table programming, flow snapshots and pipeline statistics. The
// operations travel as JSON lines over TCP so external tools (the
// cmd/p4rt CLI) can inspect a live collector.
package p4runtime

import (
	"fmt"
	"net/netip"

	"repro/internal/dataplane"
)

// Op names a runtime operation.
type Op string

// The supported runtime operations.
const (
	OpRegisterRead  Op = "register_read"
	OpRegisterReset Op = "register_reset"
	OpFlowRead      Op = "flow_read"
	OpTableSkip     Op = "table_skip"
	OpListRegisters Op = "list_registers"
	OpStats         Op = "stats"

	// Fleet-membership operations (DESIGN.md §5.9). They travel over
	// the same JSON-lines transport but are served by a Membership
	// implementation (the federation coordinator) rather than the data
	// plane; a server without one rejects them.
	OpMemberRegister  Op = "member_register"
	OpMemberHeartbeat Op = "member_heartbeat"
	OpMemberList      Op = "member_list"
)

// MemberInfo identifies a fleet member in membership operations: who
// is registering or heartbeating, where its config channel listens,
// and which config generation it currently runs (the coordinator uses
// Generation to detect members that rejoined with stale configuration).
type MemberInfo struct {
	Site       string `json:"site"`
	Switch     string `json:"switch"`
	ConfigAddr string `json:"config_addr,omitempty"`
	Generation uint64 `json:"generation,omitempty"`
}

// MemberAck answers a register or heartbeat: the incarnation the
// coordinator assigned to this (re)registration, and the fleet-wide
// config generation, so a member can tell it is running stale
// configuration (Generation < FleetSeq).
type MemberAck struct {
	Incarnation uint64 `json:"incarnation"`
	FleetSeq    uint64 `json:"fleet_seq"`
}

// MemberStatus is one member's registry entry as reported by
// OpMemberList.
type MemberStatus struct {
	Site        string `json:"site"`
	Switch      string `json:"switch"`
	State       string `json:"state"`
	Incarnation uint64 `json:"incarnation"`
	ConfigSeq   uint64 `json:"config_seq"`
}

// Membership serves the fleet-membership operations. The federation
// coordinator is the production implementation; the p4runtime server
// only transports the calls.
type Membership interface {
	// MemberRegister admits (or re-admits) a member to the fleet.
	MemberRegister(info MemberInfo) (MemberAck, error)
	// MemberHeartbeat refreshes a member's liveness deadline.
	MemberHeartbeat(info MemberInfo) (MemberAck, error)
	// MemberList snapshots the registry.
	MemberList() []MemberStatus
}

// Request is one runtime operation.
type Request struct {
	Op Op `json:"op"`

	// Register operations.
	Register string `json:"register,omitempty"`
	Index    uint32 `json:"index,omitempty"`

	// Flow operations: the flow and reversed IDs from the long-flow
	// digest.
	FlowID uint32 `json:"flow_id,omitempty"`
	RevID  uint32 `json:"rev_id,omitempty"`

	// Table operations.
	Prefix string `json:"prefix,omitempty"`

	// Membership operations (OpMemberRegister, OpMemberHeartbeat).
	Member *MemberInfo `json:"member,omitempty"`
}

// FlowReply carries one flow's register snapshot.
type FlowReply struct {
	Bytes   uint64  `json:"bytes"`
	Pkts    uint64  `json:"pkts"`
	PktLoss uint64  `json:"pkt_loss"`
	RTTMs   float64 `json:"rtt_ms"`
	QDelay  int64   `json:"qdelay_ns"`
	Flight  uint64  `json:"flight"`
	FinSeen bool    `json:"fin_seen"`
}

// Response answers a Request.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	Value     uint64           `json:"value,omitempty"`
	Flow      *FlowReply       `json:"flow,omitempty"`
	Registers []string         `json:"registers,omitempty"`
	Stats     *dataplane.Stats `json:"stats,omitempty"`

	// Membership answers.
	Ack     *MemberAck     `json:"ack,omitempty"`
	Members []MemberStatus `json:"members,omitempty"`
}

// Server executes runtime operations against the (possibly sharded)
// data plane. Register and flow reads go through the Pipes front-end,
// which flushes pending batches and merges per-shard cells, so a
// runtime read always sees the coherent multi-pipe view. Access is
// not synchronised internally beyond that; callers that share the
// pipeline with a running simulation must serialise externally (the
// collector daemon does so with its stepper mutex via the Guard hook).
type Server struct {
	dp *dataplane.Pipes

	// Guard, when set, wraps every operation — the collector daemon
	// uses it to serialise runtime access with the simulation stepper.
	Guard func(func())

	// Members, when set, serves the fleet-membership operations. The
	// federation coordinator implements it; a plain collector leaves it
	// nil and rejects membership requests. Membership implementations
	// must be internally synchronised — the Guard only serialises
	// data-plane access.
	Members Membership
}

// NewServer wraps a sharded pipeline front-end. dp may be nil for a
// membership-only server (the federation coordinator), which then
// rejects every data-plane operation.
func NewServer(dp *dataplane.Pipes) *Server { return &Server{dp: dp} }

// Handle executes one operation.
func (s *Server) Handle(req Request) Response {
	var resp Response
	run := func() { resp = s.handleLocked(req) }
	if s.Guard != nil {
		s.Guard(run)
	} else {
		run()
	}
	return resp
}

func (s *Server) handleLocked(req Request) Response {
	switch req.Op {
	case OpMemberRegister, OpMemberHeartbeat, OpMemberList:
		return s.handleMember(req)
	}
	if s.dp == nil {
		return errResp("no data plane attached")
	}
	switch req.Op {
	case OpRegisterRead:
		v, ok := s.dp.ReadRegister(req.Register, req.Index)
		if !ok {
			return errResp("unknown register %q", req.Register)
		}
		return Response{OK: true, Value: v}

	case OpRegisterReset:
		if !s.dp.WriteRegister(req.Register, req.Index, 0) {
			return errResp("unknown register %q", req.Register)
		}
		return Response{OK: true}

	case OpFlowRead:
		snap := s.dp.ReadFlow(dataplane.FlowID(req.FlowID), dataplane.FlowID(req.RevID))
		return Response{OK: true, Flow: &FlowReply{
			Bytes:   snap.Bytes,
			Pkts:    snap.Pkts,
			PktLoss: snap.PktLoss,
			RTTMs:   snap.RTT.Millis(),
			QDelay:  int64(snap.QDelay),
			Flight:  snap.Flight,
			FinSeen: snap.FinSeen,
		}}

	case OpTableSkip:
		prefix, err := netip.ParsePrefix(req.Prefix)
		if err != nil {
			return errResp("bad prefix %q: %v", req.Prefix, err)
		}
		if err := s.dp.SkipSubnet(prefix); err != nil {
			return errResp("%v", err)
		}
		return Response{OK: true}

	case OpListRegisters:
		return Response{OK: true, Registers: s.dp.RegisterNames()}

	case OpStats:
		st := s.dp.StatsSnapshot()
		return Response{OK: true, Stats: &st}

	default:
		return errResp("unknown op %q", req.Op)
	}
}

func (s *Server) handleMember(req Request) Response {
	if s.Members == nil {
		return errResp("membership not served here")
	}
	switch req.Op {
	case OpMemberRegister, OpMemberHeartbeat:
		if req.Member == nil {
			return errResp("%s: missing member info", req.Op)
		}
		var (
			ack MemberAck
			err error
		)
		if req.Op == OpMemberRegister {
			ack, err = s.Members.MemberRegister(*req.Member)
		} else {
			ack, err = s.Members.MemberHeartbeat(*req.Member)
		}
		if err != nil {
			return errResp("%v", err)
		}
		return Response{OK: true, Ack: &ack}
	default: // OpMemberList
		return Response{OK: true, Members: s.Members.MemberList()}
	}
}

func errResp(format string, args ...interface{}) Response {
	return Response{Error: fmt.Sprintf(format, args...)}
}
