// Package p4runtime models "the APIs provided by the manufacturer of
// the switch" (§4.1) that the paper's control plane uses to read
// data-plane registers at run time — the role P4Runtime/BfRt play on
// real Tofino deployments. A Server wraps a DataPlane and executes
// runtime operations: register reads (by P4 instance name), monitor
// table programming, flow snapshots and pipeline statistics. The
// operations travel as JSON lines over TCP so external tools (the
// cmd/p4rt CLI) can inspect a live collector.
package p4runtime

import (
	"fmt"
	"net/netip"

	"repro/internal/dataplane"
)

// Op names a runtime operation.
type Op string

// The supported runtime operations.
const (
	OpRegisterRead  Op = "register_read"
	OpRegisterReset Op = "register_reset"
	OpFlowRead      Op = "flow_read"
	OpTableSkip     Op = "table_skip"
	OpListRegisters Op = "list_registers"
	OpStats         Op = "stats"
)

// Request is one runtime operation.
type Request struct {
	Op Op `json:"op"`

	// Register operations.
	Register string `json:"register,omitempty"`
	Index    uint32 `json:"index,omitempty"`

	// Flow operations: the flow and reversed IDs from the long-flow
	// digest.
	FlowID uint32 `json:"flow_id,omitempty"`
	RevID  uint32 `json:"rev_id,omitempty"`

	// Table operations.
	Prefix string `json:"prefix,omitempty"`
}

// FlowReply carries one flow's register snapshot.
type FlowReply struct {
	Bytes   uint64  `json:"bytes"`
	Pkts    uint64  `json:"pkts"`
	PktLoss uint64  `json:"pkt_loss"`
	RTTMs   float64 `json:"rtt_ms"`
	QDelay  int64   `json:"qdelay_ns"`
	Flight  uint64  `json:"flight"`
	FinSeen bool    `json:"fin_seen"`
}

// Response answers a Request.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	Value     uint64           `json:"value,omitempty"`
	Flow      *FlowReply       `json:"flow,omitempty"`
	Registers []string         `json:"registers,omitempty"`
	Stats     *dataplane.Stats `json:"stats,omitempty"`
}

// Server executes runtime operations against the (possibly sharded)
// data plane. Register and flow reads go through the Pipes front-end,
// which flushes pending batches and merges per-shard cells, so a
// runtime read always sees the coherent multi-pipe view. Access is
// not synchronised internally beyond that; callers that share the
// pipeline with a running simulation must serialise externally (the
// collector daemon does so with its stepper mutex via the Guard hook).
type Server struct {
	dp *dataplane.Pipes

	// Guard, when set, wraps every operation — the collector daemon
	// uses it to serialise runtime access with the simulation stepper.
	Guard func(func())
}

// NewServer wraps a sharded pipeline front-end.
func NewServer(dp *dataplane.Pipes) *Server { return &Server{dp: dp} }

// Handle executes one operation.
func (s *Server) Handle(req Request) Response {
	var resp Response
	run := func() { resp = s.handleLocked(req) }
	if s.Guard != nil {
		s.Guard(run)
	} else {
		run()
	}
	return resp
}

func (s *Server) handleLocked(req Request) Response {
	switch req.Op {
	case OpRegisterRead:
		v, ok := s.dp.ReadRegister(req.Register, req.Index)
		if !ok {
			return errResp("unknown register %q", req.Register)
		}
		return Response{OK: true, Value: v}

	case OpRegisterReset:
		if !s.dp.WriteRegister(req.Register, req.Index, 0) {
			return errResp("unknown register %q", req.Register)
		}
		return Response{OK: true}

	case OpFlowRead:
		snap := s.dp.ReadFlow(dataplane.FlowID(req.FlowID), dataplane.FlowID(req.RevID))
		return Response{OK: true, Flow: &FlowReply{
			Bytes:   snap.Bytes,
			Pkts:    snap.Pkts,
			PktLoss: snap.PktLoss,
			RTTMs:   snap.RTT.Millis(),
			QDelay:  int64(snap.QDelay),
			Flight:  snap.Flight,
			FinSeen: snap.FinSeen,
		}}

	case OpTableSkip:
		prefix, err := netip.ParsePrefix(req.Prefix)
		if err != nil {
			return errResp("bad prefix %q: %v", req.Prefix, err)
		}
		if err := s.dp.SkipSubnet(prefix); err != nil {
			return errResp("%v", err)
		}
		return Response{OK: true}

	case OpListRegisters:
		return Response{OK: true, Registers: s.dp.RegisterNames()}

	case OpStats:
		st := s.dp.StatsSnapshot()
		return Response{OK: true, Stats: &st}

	default:
		return errResp("unknown op %q", req.Op)
	}
}

func errResp(format string, args ...interface{}) Response {
	return Response{Error: fmt.Sprintf(format, args...)}
}
