package netsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/simtime"
)

func tcpPkt(payload int) *packet.Packet {
	ft := packet.FiveTuple{
		SrcIP:   packet.MustAddr("10.0.0.1"),
		DstIP:   packet.MustAddr("10.0.0.2"),
		SrcPort: 1000,
		DstPort: 2000,
		Proto:   packet.ProtoTCP,
	}
	return packet.NewTCP(ft, 0, 0, packet.FlagACK, payload)
}

func TestLinkDelivery(t *testing.T) {
	e := simtime.NewEngine()
	sink := &Sink{Label: "sink"}
	l := NewLink(e, "l", sink, Gbps(1), 10*simtime.Millisecond, nil)
	p := tcpPkt(1000)
	l.Send(p)
	e.Run(simtime.Second)
	if sink.Packets != 1 {
		t.Fatalf("packet not delivered")
	}
}

func TestLinkLatencyIsSerializationPlusPropagation(t *testing.T) {
	e := simtime.NewEngine()
	var arrived simtime.Time
	sink := &Sink{Label: "sink", OnPacket: func(*packet.Packet) { arrived = e.Now() }}
	l := NewLink(e, "l", sink, Gbps(1), 10*simtime.Millisecond, nil)
	p := tcpPkt(1000)
	l.Send(p)
	e.Run(simtime.Second)
	wire := p.WireLen() // bytes
	wantSer := simtime.Time(float64(wire*8) / Gbps(1) * 1e9)
	want := wantSer + 10*simtime.Millisecond
	if arrived != want {
		t.Fatalf("arrived at %v, want %v", arrived, want)
	}
}

func TestLinkSerializesBackToBack(t *testing.T) {
	e := simtime.NewEngine()
	var arrivals []simtime.Time
	sink := &Sink{Label: "sink", OnPacket: func(*packet.Packet) { arrivals = append(arrivals, e.Now()) }}
	l := NewLink(e, "l", sink, Mbps(8), 0, nil) // 1 byte per microsecond
	p := tcpPkt(946)                            // 1000 wire bytes
	if p.WireLen() != 1000 {
		t.Fatalf("setup: wire len %d", p.WireLen())
	}
	l.Send(p)
	l.Send(p.Clone())
	e.Run(simtime.Second)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals: %d", len(arrivals))
	}
	if d := arrivals[1] - arrivals[0]; d != 1000*simtime.Microsecond {
		t.Fatalf("spacing %v, want 1ms", d)
	}
}

func TestLinkQueuedDelay(t *testing.T) {
	e := simtime.NewEngine()
	sink := &Sink{Label: "sink"}
	l := NewLink(e, "l", sink, Mbps(8), 0, nil)
	p := tcpPkt(946) // 1ms serialisation at 8 Mbps
	l.Send(p)
	l.Send(p.Clone())
	if got := l.QueuedDelay(); got != 2*simtime.Millisecond {
		t.Fatalf("QueuedDelay=%v, want 2ms", got)
	}
	e.Run(simtime.Second)
	if got := l.QueuedDelay(); got != 0 {
		t.Fatalf("QueuedDelay after drain=%v", got)
	}
}

func TestLinkLossRate(t *testing.T) {
	e := simtime.NewEngine()
	sink := &Sink{Label: "sink"}
	l := NewLink(e, "l", sink, Gbps(10), 0, simtime.NewRNG(77))
	l.LossRate = 0.1
	const n = 20000
	for i := 0; i < n; i++ {
		l.Send(tcpPkt(100))
	}
	e.Run(simtime.Second)
	lossFrac := float64(l.DroppedPackets) / n
	if lossFrac < 0.08 || lossFrac > 0.12 {
		t.Fatalf("loss fraction %f, want ~0.1", lossFrac)
	}
	if sink.Packets != n-l.DroppedPackets {
		t.Fatalf("delivered %d + dropped %d != sent %d", sink.Packets, l.DroppedPackets, n)
	}
}

func TestLinkDown(t *testing.T) {
	e := simtime.NewEngine()
	sink := &Sink{Label: "sink"}
	l := NewLink(e, "l", sink, Gbps(1), 0, nil)
	l.Down = true
	l.Send(tcpPkt(100))
	e.Run(simtime.Second)
	if sink.Packets != 0 {
		t.Fatal("down link delivered a packet")
	}
	l.Down = false
	l.Send(tcpPkt(100))
	e.Run(2 * simtime.Second)
	if sink.Packets != 1 {
		t.Fatal("restored link did not deliver")
	}
}

func TestLinkOnDepartureTiming(t *testing.T) {
	e := simtime.NewEngine()
	sink := &Sink{Label: "sink"}
	l := NewLink(e, "l", sink, Mbps(8), 5*simtime.Millisecond, nil)
	var departed simtime.Time
	l.OnDeparture = func(_ *packet.Packet, at simtime.Time) { departed = at }
	p := tcpPkt(946) // 1ms serialisation
	l.Send(p)
	e.Run(simtime.Second)
	if departed != simtime.Millisecond {
		t.Fatalf("departure at %v, want 1ms (excludes propagation)", departed)
	}
}

func TestDuplexLinkBothDirections(t *testing.T) {
	e := simtime.NewEngine()
	a := &Sink{Label: "a"}
	b := &Sink{Label: "b"}
	d := NewDuplexLink(e, "ab", a, b, Gbps(1), simtime.Millisecond, simtime.NewRNG(1))
	d.AtoB.Send(tcpPkt(100))
	d.BtoA.Send(tcpPkt(100))
	e.Run(simtime.Second)
	if a.Packets != 1 || b.Packets != 1 {
		t.Fatalf("a=%d b=%d", a.Packets, b.Packets)
	}
}

func TestGbpsMbpsHelpers(t *testing.T) {
	if Gbps(10) != 1e10 || Mbps(500) != 5e8 {
		t.Fatal("rate helpers wrong")
	}
}
