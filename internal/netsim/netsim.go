// Package netsim provides the nodes-and-links layer of the simulator:
// hosts and switches exchange packets over duplex links with configurable
// bandwidth, propagation delay and (for impairment experiments) random
// loss. The package deliberately models only what the paper's testbed
// exercises — point-to-point full-duplex links and store-and-forward
// devices.
package netsim

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/simtime"
)

// Node is anything that can receive packets from a link: a host NIC, a
// switch port, a TAP monitor port.
type Node interface {
	// Name identifies the node in topology descriptions and logs.
	Name() string
	// Receive is invoked by the engine when a packet fully arrives at
	// the node (after serialisation and propagation delay).
	Receive(pkt *packet.Packet, from *Link)
}

// Gbps expresses a link rate in bits per second.
func Gbps(g float64) float64 { return g * 1e9 }

// Mbps expresses a link rate in bits per second.
func Mbps(m float64) float64 { return m * 1e6 }

// Link is a unidirectional channel between two nodes. Use NewDuplexLink
// to build the usual bidirectional pair. Packets are serialised at the
// link bandwidth (back-to-back packets queue behind each other at the
// transmitter) and then experience the propagation delay.
type Link struct {
	name      string
	engine    *simtime.Engine
	dst       Node
	bandwidth float64      // bits per second
	delay     simtime.Time // one-way propagation delay

	// busyUntil is the time at which the transmitter finishes the last
	// scheduled serialisation; it implements transmitter serialisation
	// without modelling a separate queue (senders that need a bounded
	// queue, i.e. switches, queue before the link).
	busyUntil simtime.Time

	// LossRate drops packets independently with this probability. Used
	// to emulate the netem-style 0.01% impairment of the Fig. 12 DTN1
	// test. Zero disables loss.
	LossRate float64
	rng      *simtime.RNG

	// Down simulates a severed link (mmWave blockage): packets are
	// silently discarded while true.
	Down bool

	// OnDeparture, if set, is invoked at the instant the packet's last
	// bit leaves the transmitter. The egress optical TAP hangs here: it
	// observes packets exactly when they exit the core switch.
	OnDeparture func(pkt *packet.Packet, at simtime.Time)

	// Stats
	SentPackets    uint64
	SentBytes      uint64
	DroppedPackets uint64
}

// NewLink creates a unidirectional link to dst.
func NewLink(e *simtime.Engine, name string, dst Node, bandwidthBps float64, delay simtime.Time, rng *simtime.RNG) *Link {
	if bandwidthBps <= 0 {
		panic(fmt.Sprintf("netsim: link %s bandwidth must be positive", name))
	}
	if rng == nil {
		rng = simtime.NewRNG(1)
	}
	return &Link{
		name:      name,
		engine:    e,
		dst:       dst,
		bandwidth: bandwidthBps,
		delay:     delay,
		rng:       rng,
	}
}

// Name returns the link's identifier.
func (l *Link) Name() string { return l.name }

// Dst returns the receiving node.
func (l *Link) Dst() Node { return l.dst }

// Bandwidth returns the link rate in bits per second.
func (l *Link) Bandwidth() float64 { return l.bandwidth }

// PropagationDelay returns the one-way delay.
func (l *Link) PropagationDelay() simtime.Time { return l.delay }

// SerializationDelay returns how long the link needs to clock out a
// packet of n bytes.
func (l *Link) SerializationDelay(n int) simtime.Time {
	return simtime.Time(float64(n*8) / l.bandwidth * 1e9)
}

// Scheduler thunks. These are package-level simtime.CallFunc values so
// that the per-packet Send path schedules without allocating closures;
// the link and packet ride in the event's argument slots (pointers, so
// boxing them into any is also allocation-free).

func departureThunk(now simtime.Time, a, b any) {
	l := a.(*Link)
	l.OnDeparture(b.(*packet.Packet), now)
}

func arrivalThunk(_ simtime.Time, a, b any) {
	l := a.(*Link)
	l.dst.Receive(b.(*packet.Packet), l)
}

func releaseThunk(_ simtime.Time, a, _ any) {
	a.(*packet.Packet).Release()
}

// Send transmits pkt toward the destination node. The packet arrives at
// dst after waiting for the transmitter to free up, serialising at the
// link rate, and propagating. Loss injection and link-down are applied
// at send time (the packet never arrives).
//
// p4:hotpath
func (l *Link) Send(pkt *packet.Packet) {
	now := l.engine.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	txEnd := start + l.SerializationDelay(pkt.WireLen())
	l.busyUntil = txEnd
	l.SentPackets++
	l.SentBytes += uint64(pkt.WireLen())
	if l.OnDeparture != nil {
		l.engine.AtCall(txEnd, departureThunk, l, pkt)
	}
	// Loss and link-down are applied on the wire: the packet serialises
	// normally (so upstream queue accounting stays correct) and is then
	// lost in flight, never reaching the receiver. A lost pooled packet
	// is recycled — after the departure event (if any) has observed it:
	// the release event is scheduled later at the same instant, so the
	// engine's FIFO tie-break guarantees it fires second.
	if l.Down || (l.LossRate > 0 && l.rng.Float64() < l.LossRate) {
		l.DroppedPackets++
		if l.OnDeparture != nil {
			l.engine.AtCall(txEnd, releaseThunk, pkt, nil)
		} else {
			pkt.Release()
		}
		return
	}
	l.engine.AtCall(txEnd+l.delay, arrivalThunk, l, pkt)
}

// QueuedDelay reports how long a packet handed to the link right now
// would wait before starting serialisation (transmitter backlog).
func (l *Link) QueuedDelay() simtime.Time {
	now := l.engine.Now()
	if l.busyUntil <= now {
		return 0
	}
	return l.busyUntil - now
}

// Duplex is a bidirectional link: a matched pair of unidirectional
// links between nodes A and B.
type Duplex struct {
	AtoB *Link
	BtoA *Link
}

// NewDuplexLink wires a full-duplex link between a and b with symmetric
// bandwidth and delay.
func NewDuplexLink(e *simtime.Engine, name string, a, b Node, bandwidthBps float64, oneWayDelay simtime.Time, rng *simtime.RNG) *Duplex {
	var r1, r2 *simtime.RNG
	if rng != nil {
		r1, r2 = rng.Fork(), rng.Fork()
	}
	return &Duplex{
		AtoB: NewLink(e, name+":fwd", b, bandwidthBps, oneWayDelay, r1),
		BtoA: NewLink(e, name+":rev", a, bandwidthBps, oneWayDelay, r2),
	}
}

// Sink is a Node that counts and discards everything it receives; handy
// as a default destination and in tests.
type Sink struct {
	Label    string
	Packets  uint64
	Bytes    uint64
	LastSeen *packet.Packet
	OnPacket func(*packet.Packet)
}

// Name implements Node.
func (s *Sink) Name() string { return s.Label }

// Receive implements Node.
func (s *Sink) Receive(pkt *packet.Packet, from *Link) {
	s.Packets++
	s.Bytes += uint64(pkt.WireLen())
	s.LastSeen = pkt
	if s.OnPacket != nil {
		s.OnPacket(pkt)
	}
}
