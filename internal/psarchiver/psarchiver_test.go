package psarchiver

import (
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/controlplane"
)

func TestStoreIndexAndCount(t *testing.T) {
	s := NewStore()
	s.Index("a", Document{"x": 1.0})
	s.Index("a", Document{"x": 2.0})
	s.Index("b", Document{"x": 3.0})
	if s.Count("a") != 2 || s.Count("b") != 1 || s.Count("zzz") != 0 {
		t.Fatal("counts wrong")
	}
	idx := s.Indices()
	if len(idx) != 2 || idx[0] != "a" || idx[1] != "b" {
		t.Fatalf("indices: %v", idx)
	}
}

func TestStoreSearchTerms(t *testing.T) {
	s := NewStore()
	s.Index("m", Document{"flow_id": "aa", "v": 1.0})
	s.Index("m", Document{"flow_id": "bb", "v": 2.0})
	s.Index("m", Document{"flow_id": "aa", "v": 3.0})
	got := s.Search(Query{Index: "m", Terms: map[string]string{"flow_id": "aa"}})
	if len(got) != 2 {
		t.Fatalf("got %d docs", len(got))
	}
}

func TestStoreSearchTimeRange(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		s.Index("m", Document{"time_ns": float64(i * 1000)})
	}
	got := s.Search(Query{Index: "m", TimeField: "time_ns", FromNs: 3000, ToNs: 7000})
	if len(got) != 4 { // 3000,4000,5000,6000
		t.Fatalf("got %d docs", len(got))
	}
}

func TestStoreAggregate(t *testing.T) {
	s := NewStore()
	for _, v := range []float64{10, 20, 30} {
		s.Index("m", Document{"value": v})
	}
	st, err := s.Aggregate(Query{Index: "m"}, "value")
	if err != nil {
		t.Fatal(err)
	}
	if st.Min != 10 || st.Max != 30 || st.Mean != 20 || st.Count != 3 || st.Sum != 60 {
		t.Fatalf("stats: %+v", st)
	}
	if _, err := s.Aggregate(Query{Index: "m"}, "missing"); err == nil {
		t.Fatal("aggregate over missing field must error")
	}
}

func TestDocumentAccessors(t *testing.T) {
	d := Document{"f": 1.5, "i": 7, "s": "hi"}
	if v, ok := d.Float("f"); !ok || v != 1.5 {
		t.Fatal("float accessor")
	}
	if v, ok := d.Float("i"); !ok || v != 7 {
		t.Fatal("int accessor")
	}
	if _, ok := d.Float("s"); ok {
		t.Fatal("string must not read as float")
	}
	if d.Str("s") != "hi" || d.Str("f") != "" {
		t.Fatal("str accessor")
	}
}

func TestPipelineAddsMetadataAndRoutes(t *testing.T) {
	p := NewPipeline()
	store := NewStore()
	p.OpenSearchOutput(store)
	p.Process(Document{"kind": "metric", "time_ns": int64(42)})
	if store.Count("p4-psonar-metric") != 1 {
		t.Fatalf("routing wrong: %v", store.Indices())
	}
	doc := store.Search(Query{Index: "p4-psonar-metric"})[0]
	if doc.Str("host") != "p4-switch-cp" || doc.Str("@version") != "1" {
		t.Fatalf("metadata missing: %v", doc)
	}
	if doc["@timestamp_ns"] != int64(42) {
		t.Fatalf("timestamp not copied: %v", doc["@timestamp_ns"])
	}
}

func TestPipelineFilterCanDrop(t *testing.T) {
	p := NewPipeline()
	store := NewStore()
	p.OpenSearchOutput(store)
	p.AddFilter(func(d Document) bool { return d.Str("kind") != "noise" })
	p.Process(Document{"kind": "noise"})
	p.Process(Document{"kind": "metric"})
	if st := p.Stats(); st.Dropped != 1 || st.Shipped != 1 {
		t.Fatalf("dropped=%d shipped=%d", st.Dropped, st.Shipped)
	}
	if store.Count("p4-psonar-noise") != 0 {
		t.Fatal("dropped doc reached the store")
	}
}

func TestPipelineEmitImplementsSink(t *testing.T) {
	p := NewPipeline()
	store := NewStore()
	p.OpenSearchOutput(store)
	var sink controlplane.Sink = p
	sink.Emit(controlplane.Report{Kind: controlplane.KindAlert, TimeNs: 7, Metric: controlplane.MetricRTT, Value: 3})
	docs := store.Search(Query{Index: "p4-psonar-alert"})
	if len(docs) != 1 {
		t.Fatalf("docs=%d", len(docs))
	}
	if docs[0].Str("metric") != "rtt" {
		t.Fatalf("doc: %v", docs[0])
	}
}

func TestPipelineUnknownKind(t *testing.T) {
	p := NewPipeline()
	store := NewStore()
	p.OpenSearchOutput(store)
	p.Process(Document{"v": 1.0})
	if store.Count("p4-psonar-unknown") != 1 {
		t.Fatal("unknown kind not routed")
	}
}

func TestTCPInputIngestsJSONLines(t *testing.T) {
	p := NewPipeline()
	store := NewStore()
	p.OpenSearchOutput(store)
	in, err := NewTCPInput(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	conn, err := net.Dial("tcp", in.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		line, _ := json.Marshal(map[string]interface{}{"kind": "metric", "value": i})
		conn.Write(append(line, '\n'))
	}
	conn.Write([]byte("this is not json\n"))
	conn.Close()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if store.Count("p4-psonar-metric") == 5 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := store.Count("p4-psonar-metric"); got != 5 {
		t.Fatalf("ingested %d docs, want 5", got)
	}
	if got := in.Errors(); got != 1 {
		t.Fatalf("errors=%d, want 1 for the garbage line", got)
	}
}

func TestTCPInputMultipleConnections(t *testing.T) {
	p := NewPipeline()
	store := NewStore()
	p.OpenSearchOutput(store)
	in, err := NewTCPInput(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	const conns = 4
	const docsPer = 25
	done := make(chan error, conns)
	for c := 0; c < conns; c++ {
		go func(c int) {
			conn, err := net.Dial("tcp", in.Addr())
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			for i := 0; i < docsPer; i++ {
				fmt.Fprintf(conn, "{\"kind\":\"metric\",\"conn\":%d,\"i\":%d}\n", c, i)
			}
			done <- nil
		}(c)
	}
	for c := 0; c < conns; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if store.Count("p4-psonar-metric") == conns*docsPer {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := store.Count("p4-psonar-metric"); got != conns*docsPer {
		t.Fatalf("ingested %d, want %d", got, conns*docsPer)
	}
}

func TestTCPInputCloseIdempotent(t *testing.T) {
	p := NewPipeline()
	in, err := NewTCPInput(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
}
