package psarchiver

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/controlplane"
)

// Filter transforms a document in the Logstash pipeline; returning
// false drops the event.
type Filter func(Document) bool

// Output ships a processed document, like Logstash's output plugins.
type Output func(index string, doc Document)

// Pipeline is the Logstash stand-in of Figure 7: events enter from an
// input plugin, pass the filter chain, and exit through the output.
// IndexFor routes each document to an OpenSearch index by its report
// kind, the way perfSONAR's Logstash configuration routes test results.
type Pipeline struct {
	mu      sync.Mutex
	filters []Filter
	outputs []Output

	// IndexPrefix namespaces the destination indices; documents land in
	// "<prefix>-<kind>". Default "p4-psonar".
	IndexPrefix string

	// Stats, guarded by mu: the TCP input writes them from
	// per-connection goroutines while callers poll. Read via Stats().
	received uint64
	dropped  uint64
	shipped  uint64
}

// PipelineStats is a consistent snapshot of the pipeline counters.
type PipelineStats struct {
	Received uint64
	Dropped  uint64
	Shipped  uint64
}

// Stats returns the current counters under the pipeline lock.
func (p *Pipeline) Stats() PipelineStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PipelineStats{Received: p.received, Dropped: p.dropped, Shipped: p.shipped}
}

// NewPipeline builds a pipeline with the standard metadata filter
// installed (the "adds the metadata required by the OpenSearch
// database" step of Figure 7).
func NewPipeline() *Pipeline {
	p := &Pipeline{IndexPrefix: "p4-psonar"}
	p.AddFilter(AddMetadata)
	return p
}

// AddFilter appends a filter to the chain.
func (p *Pipeline) AddFilter(f Filter) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.filters = append(p.filters, f)
}

// AddOutput appends an output plugin.
func (p *Pipeline) AddOutput(o Output) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.outputs = append(p.outputs, o)
}

// OpenSearchOutput wires the pipeline's output plugin to a Store.
func (p *Pipeline) OpenSearchOutput(store *Store) {
	p.AddOutput(func(index string, doc Document) {
		store.Index(index, doc)
	})
}

// AddMetadata is the default filter: it stamps the document with the
// fields the OpenSearch output needs, producing Report_v2.
func AddMetadata(doc Document) bool {
	if _, ok := doc["time_ns"]; ok {
		doc["@timestamp_ns"] = doc["time_ns"]
	}
	doc["@version"] = "1"
	doc["host"] = "p4-switch-cp"
	doc["pipeline"] = "p4-psonar"
	return true
}

// Process pushes one document through filters and outputs.
func (p *Pipeline) Process(doc Document) {
	p.mu.Lock()
	filters := p.filters
	outputs := p.outputs
	prefix := p.IndexPrefix
	p.received++
	p.mu.Unlock()

	for _, f := range filters {
		if !f(doc) {
			p.mu.Lock()
			p.dropped++
			p.mu.Unlock()
			return
		}
	}
	kind := doc.Str("kind")
	if kind == "" {
		kind = "unknown"
	}
	index := fmt.Sprintf("%s-%s", prefix, kind)
	for _, o := range outputs {
		o(index, doc)
	}
	p.mu.Lock()
	p.shipped++
	p.mu.Unlock()
}

// Emit implements controlplane.Sink, the in-simulation input plugin:
// the control plane hands Report_v1 records straight to the pipeline.
func (p *Pipeline) Emit(r controlplane.Report) {
	doc, err := reportToDoc(r)
	if err != nil {
		p.mu.Lock()
		p.dropped++
		p.mu.Unlock()
		return
	}
	p.Process(doc)
}

func reportToDoc(r controlplane.Report) (Document, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, err
	}
	return doc, nil
}

// TCPInput is the Logstash TCP input plugin [12 in the paper]: it
// accepts connections carrying newline-delimited JSON and feeds each
// line into the pipeline. Used by the live collector daemon.
type TCPInput struct {
	pipeline *Pipeline
	ln       net.Listener
	wg       sync.WaitGroup

	// obs is the optional self-telemetry hook (RegisterObs). Atomic:
	// registration may race the per-connection goroutines.
	obs atomic.Pointer[inputObs]

	mu       sync.Mutex
	closed   bool
	errCount uint64 // undecodable lines, guarded by mu
}

// Errors returns the number of undecodable lines seen so far. It is
// safe to call while connections are being served.
func (in *TCPInput) Errors() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.errCount
}

// NewTCPInput starts the plugin listening on addr (e.g.
// "127.0.0.1:0"). Close must be called to release the socket.
func NewTCPInput(pipeline *Pipeline, addr string) (*TCPInput, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("psarchiver: tcp input: %w", err)
	}
	return NewInputFromListener(pipeline, ln), nil
}

// NewInputFromListener runs the same input plugin over an
// already-bound listener — the fault-injection harness plugs an
// in-memory faultnet.Listener in here so outage tests exercise the
// real ingest code. Close closes the listener.
func NewInputFromListener(pipeline *Pipeline, ln net.Listener) *TCPInput {
	in := &TCPInput{pipeline: pipeline, ln: ln}
	in.wg.Add(1)
	go in.acceptLoop()
	return in
}

// Addr returns the bound address.
func (in *TCPInput) Addr() string { return in.ln.Addr().String() }

func (in *TCPInput) acceptLoop() {
	defer in.wg.Done()
	for {
		conn, err := in.ln.Accept()
		if err != nil {
			return // listener closed
		}
		in.wg.Add(1)
		go in.serve(conn)
	}
}

// maxLineBytes bounds one JSON line; anything larger is counted as one
// error and skipped, and the connection keeps serving. (The previous
// bufio.Scanner-based loop silently killed the whole connection on an
// oversized line or a read error, with no trace in any counter.)
const maxLineBytes = 1 << 20

func (in *TCPInput) countError() {
	in.mu.Lock()
	in.errCount++
	in.mu.Unlock()
	if o := in.obs.Load(); o != nil {
		o.errors.Inc()
	}
}

func (in *TCPInput) handleLine(line []byte) {
	if len(line) == 0 {
		return
	}
	if o := in.obs.Load(); o != nil {
		o.lines.Inc()
	}
	var doc Document
	if err := json.Unmarshal(line, &doc); err != nil {
		in.countError()
		return
	}
	in.pipeline.Process(doc)
}

func (in *TCPInput) serve(conn net.Conn) {
	defer in.wg.Done()
	defer conn.Close()
	if o := in.obs.Load(); o != nil {
		o.conns.Inc()
	}
	r := bufio.NewReaderSize(conn, 64<<10)
	var buf []byte
	tooLong := false
	for {
		chunk, err := r.ReadSlice('\n')
		if len(chunk) > 0 && !tooLong {
			buf = append(buf, chunk...)
			if len(buf) > maxLineBytes {
				// One error for the whole oversized line, however many
				// reads it spans; the rest of it is discarded below.
				in.countError()
				tooLong = true
				buf = buf[:0]
			}
		}
		switch err {
		case nil:
			// A complete line (buf ends in '\n') — or the tail of an
			// oversized one we are discarding.
			if !tooLong {
				// Trim like bufio.ScanLines did: the newline plus an
				// optional carriage return.
				in.handleLine(bytes.TrimRight(buf, "\r\n"))
			}
			tooLong = false
			buf = buf[:0]
		case bufio.ErrBufferFull:
			// Mid-line: keep accumulating (or discarding).
		case io.EOF:
			// A trailing unterminated line still counts (mid-line
			// resets surface here as an undecodable fragment).
			if !tooLong {
				in.handleLine(buf)
			}
			return
		default:
			// Read error (connection reset and friends): count it so
			// the loss is visible, then let the accept loop keep
			// serving other connections.
			in.countError()
			return
		}
	}
}

// Close stops accepting and waits for in-flight connections to finish.
func (in *TCPInput) Close() error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil
	}
	in.closed = true
	in.mu.Unlock()
	err := in.ln.Close()
	in.wg.Wait()
	return err
}
