package psarchiver

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/controlplane"
	"repro/internal/faultnet"
)

func waitCount(t *testing.T, what string, want int, get func() int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if get() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s: got %d, want %d", what, get(), want)
}

// TestTCPInputOversizedLineCountedAndSurvived is the regression test
// for the silent-kill bug: a line over the 1 MB cap used to terminate
// the scanner loop with sc.Err() unchecked — no error counted, the
// rest of the stream discarded. Now the oversized line counts as one
// error and BOTH a later line on the same connection and lines on
// subsequent connections still ingest.
func TestTCPInputOversizedLineCountedAndSurvived(t *testing.T) {
	p := NewPipeline()
	store := NewStore()
	p.OpenSearchOutput(store)
	in, err := NewTCPInput(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	conn, err := net.Dial("tcp", in.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte(`{"kind":"metric","i":1}` + "\n")); err != nil {
		t.Fatal(err)
	}
	// An oversized (>1 MB) line: valid JSON, but over the cap.
	huge := append([]byte(`{"kind":"metric","pad":"`), bytes.Repeat([]byte{'x'}, maxLineBytes+1024)...)
	huge = append(huge, []byte(`"}`+"\n")...)
	if _, err := conn.Write(huge); err != nil {
		t.Fatal(err)
	}
	// The same connection must keep working afterwards.
	if _, err := conn.Write([]byte(`{"kind":"metric","i":2}` + "\n")); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	waitCount(t, "both small docs ingested", 2, func() int { return store.Count("p4-psonar-metric") })
	waitCount(t, "oversized line counted", 1, func() int { return int(in.Errors()) })

	// A fresh connection is served as before.
	conn2, err := net.Dial("tcp", in.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Write([]byte(`{"kind":"metric","i":3}` + "\n")); err != nil {
		t.Fatal(err)
	}
	conn2.Close()
	waitCount(t, "doc on follow-up connection", 3, func() int { return store.Count("p4-psonar-metric") })
}

// TestTCPInputMidLineReset asserts that a connection dying in the
// middle of a record neither ingests the fragment nor goes
// unaccounted: the torn prefix is one counted error.
func TestTCPInputMidLineReset(t *testing.T) {
	p := NewPipeline()
	store := NewStore()
	p.OpenSearchOutput(store)
	in, err := NewTCPInput(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	conn, err := net.Dial("tcp", in.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte(`{"kind":"metric","i":1}` + "\n" + `{"kind":"metr`)); err != nil {
		t.Fatal(err)
	}
	conn.Close() // mid-line

	waitCount(t, "complete doc ingested", 1, func() int { return store.Count("p4-psonar-metric") })
	waitCount(t, "torn fragment counted", 1, func() int { return int(in.Errors()) })
}

// TestTCPInputManySimultaneousConnections hammers the input with
// concurrent connections, some of which die mid-line, and checks exact
// accounting: every complete line ingests, every torn one counts.
func TestTCPInputManySimultaneousConnections(t *testing.T) {
	p := NewPipeline()
	store := NewStore()
	p.OpenSearchOutput(store)
	in, err := NewTCPInput(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	const conns = 16
	const docsPer = 50
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", in.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			for i := 0; i < docsPer; i++ {
				fmt.Fprintf(conn, "{\"kind\":\"metric\",\"conn\":%d,\"i\":%d}\n", c, i)
			}
			if c%2 == 0 {
				// Half the connections die mid-record.
				fmt.Fprintf(conn, "{\"kind\":\"met")
			}
		}(c)
	}
	wg.Wait()

	waitCount(t, "all complete docs ingested", conns*docsPer, func() int { return store.Count("p4-psonar-metric") })
	waitCount(t, "all torn fragments counted", conns/2, func() int { return int(in.Errors()) })
}

// TestTCPInputOverFaultnetListener runs the real ingest loop over the
// in-memory fault-injection listener: a scripted reset tears one
// record, which must surface as exactly one counted error while every
// intact record ingests.
func TestTCPInputOverFaultnetListener(t *testing.T) {
	p := NewPipeline()
	store := NewStore()
	p.OpenSearchOutput(store)
	l := faultnet.NewListener()
	in := NewInputFromListener(p, l)
	defer in.Close()

	line := []byte(`{"kind":"metric","i":0}` + "\n")
	// Cut the second record in half.
	l.ScriptNext(faultnet.Script{{AfterBytes: len(line) + 10, Kind: faultnet.Reset}})
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := conn.Write(append(append([]byte{}, line...), line...)); werr == nil {
		t.Fatal("scripted reset should fail the write")
	}

	waitCount(t, "intact record ingested", 1, func() int { return store.Count("p4-psonar-metric") })
	waitCount(t, "torn record counted", 1, func() int { return int(in.Errors()) })
}

// TestPipelineConcurrentProcessAndMutation drives Process from many
// goroutines while filters and outputs are appended concurrently —
// run under -race, it proves the pipeline's locking discipline.
func TestPipelineConcurrentProcessAndMutation(t *testing.T) {
	p := NewPipeline()
	store := NewStore()
	p.OpenSearchOutput(store)

	const workers = 8
	const docs = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < docs; i++ {
				p.Process(Document{"kind": "metric", "w": w, "i": i})
			}
		}(w)
	}
	// Mutate the chains while documents are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			p.AddFilter(func(d Document) bool { return true })
			p.AddOutput(func(index string, doc Document) {})
		}
	}()
	// And poll the stats, like the collector does.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = p.Stats()
		}
	}()
	wg.Wait()

	st := p.Stats()
	if st.Received != workers*docs || st.Shipped != workers*docs || st.Dropped != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if got := store.Count("p4-psonar-metric"); got != workers*docs {
		t.Fatalf("store holds %d docs, want %d", got, workers*docs)
	}
}

// TestPipelineEmitConcurrentWithTCPInput mixes the two input paths —
// direct Sink emits and TCP-ingested lines — concurrently.
func TestPipelineEmitConcurrentWithTCPInput(t *testing.T) {
	p := NewPipeline()
	store := NewStore()
	p.OpenSearchOutput(store)
	in, err := NewTCPInput(p, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	const n = 100
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			p.Emit(controlplane.Report{Kind: controlplane.KindMetric, TimeNs: int64(i)})
		}
	}()
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", in.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		for i := 0; i < n; i++ {
			fmt.Fprintf(conn, "{\"kind\":\"metric\",\"i\":%d}\n", i)
		}
	}()
	wg.Wait()
	waitCount(t, "both paths ingested", 2*n, func() int { return store.Count("p4-psonar-metric") })
	if in.Errors() != 0 {
		t.Fatalf("errors=%d", in.Errors())
	}
}
