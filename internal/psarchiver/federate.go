package psarchiver

import (
	"sort"
	"strings"

	"repro/internal/metrics"
)

// This file is the shared archiver's fleet view (DESIGN.md §5.9): N
// members ship identity-stamped reports into one Store, and CrossSite
// rebuilds the observatory picture — per-site rollups, global
// fairness, per-member document accounting, and end-to-end path
// metrics joined across tap points that saw the same flow.

// SwitchDocs counts one member's documents inside a site rollup — the
// member-by-member resolution of the fleet exact-accounting invariant
// (every archived document is attributable to exactly one switch).
type SwitchDocs struct {
	Switch    string
	Documents int
}

// SiteAggregate is one site's rollup across all of its switches.
type SiteAggregate struct {
	Site string
	// Switches lists the site's members and their document counts, in
	// switch order.
	Switches []SwitchDocs
	// Documents is the site total (sum over Switches).
	Documents int
	// Flows counts distinct flows summarised by this site's switches.
	Flows int
	// TotalBytes and TotalPackets sum the site's flow summaries (each
	// flow counted once, at its fullest tap-point observation).
	TotalBytes   float64
	TotalPackets float64
	// Fairness is Jain's index over the site's per-flow byte totals.
	Fairness float64
}

// PathMetric is one flow observed at two or more tap points, joined by
// flow ID — the end-to-end path view a single switch cannot produce.
type PathMetric struct {
	FlowID string
	// Switches lists the observing tap points as "site/switch", sorted.
	Switches []string
	// Bytes is the fullest observation of the flow; DeltaBytes is the
	// spread between the fullest and thinnest tap points (a nonzero
	// spread means the tap points disagree about the flow — on-path
	// loss between them, or an observation cut short).
	Bytes      float64
	DeltaBytes float64
}

// FleetAggregate is the cross-site rollup of a shared archiver.
type FleetAggregate struct {
	// Sites holds per-site rollups in site order.
	Sites []SiteAggregate
	// Documents counts every document in the prefix's indices;
	// Unstamped counts those without a member identity (single-switch
	// streams shipped into the shared store).
	Documents int
	Unstamped int
	// GlobalFairness is Jain's index over fleet-wide per-flow byte
	// totals, each flow counted once across all tap points.
	GlobalFairness float64
	// Paths lists flows seen at two or more tap points, by flow ID.
	Paths []PathMetric
}

// MemberDocs returns the total archived documents attributed to one
// member, resolving "site/switch" against the aggregate.
func (f FleetAggregate) MemberDocs(site, sw string) int {
	for _, s := range f.Sites {
		if s.Site != site {
			continue
		}
		for _, m := range s.Switches {
			if m.Switch == sw {
				return m.Documents
			}
		}
	}
	return 0
}

// CrossSite aggregates every index under "<prefix>-" into the fleet
// view. It is read-only over the store and deterministic: all slices
// come out sorted, so its rendering is witness-stable.
func CrossSite(store *Store, prefix string) FleetAggregate {
	type memberKey struct{ site, sw string }
	type flowObs struct {
		// bySwitch holds each tap point's fullest bytes observation of
		// the flow ("site/switch" → max bytes across that switch's
		// summaries), so per-round cumulative snapshots collapse to one
		// figure per tap point before tap points are compared.
		bySwitch   map[string]float64
		maxPackets float64
		sites      map[string]bool
	}
	docsByMember := make(map[memberKey]int)
	flows := make(map[string]*flowObs)

	var agg FleetAggregate
	for _, index := range store.Indices() {
		if !strings.HasPrefix(index, prefix+"-") {
			continue
		}
		for _, doc := range store.Search(Query{Index: index}) {
			agg.Documents++
			site, sw := doc.Str("site_id"), doc.Str("switch_id")
			if site == "" && sw == "" {
				agg.Unstamped++
				continue
			}
			docsByMember[memberKey{site, sw}]++
			if doc.Str("kind") != "flow_summary" {
				continue
			}
			id := doc.Str("flow_id")
			if id == "" {
				continue
			}
			bytes, _ := doc.Float("bytes")
			packets, _ := doc.Float("packets")
			f := flows[id]
			if f == nil {
				f = &flowObs{bySwitch: make(map[string]float64), sites: make(map[string]bool)}
				flows[id] = f
			}
			tap := site + "/" + sw
			if bytes > f.bySwitch[tap] || f.bySwitch[tap] == 0 {
				f.bySwitch[tap] = bytes
			}
			if packets > f.maxPackets {
				f.maxPackets = packets
			}
			f.sites[site] = true
		}
	}

	// Per-site rollups from the member counts and flow observations.
	bySite := make(map[string]*SiteAggregate)
	siteOf := func(site string) *SiteAggregate {
		s := bySite[site]
		if s == nil {
			s = &SiteAggregate{Site: site}
			bySite[site] = s
		}
		return s
	}
	for k, n := range docsByMember {
		s := siteOf(k.site)
		s.Switches = append(s.Switches, SwitchDocs{Switch: k.sw, Documents: n})
		s.Documents += n
	}
	siteBytes := make(map[string][]float64)
	var globalBytes []float64
	flowIDs := make([]string, 0, len(flows))
	for id := range flows {
		flowIDs = append(flowIDs, id)
	}
	sort.Strings(flowIDs)
	for _, id := range flowIDs {
		f := flows[id]
		var minTap, maxTap float64
		first := true
		for _, b := range f.bySwitch {
			if first || b < minTap {
				minTap = b
			}
			if b > maxTap {
				maxTap = b
			}
			first = false
		}
		globalBytes = append(globalBytes, maxTap)
		for site := range f.sites {
			s := siteOf(site)
			s.Flows++
			s.TotalBytes += maxTap
			s.TotalPackets += f.maxPackets
			siteBytes[site] = append(siteBytes[site], maxTap)
		}
		if len(f.bySwitch) >= 2 {
			sws := make([]string, 0, len(f.bySwitch))
			for sw := range f.bySwitch {
				sws = append(sws, sw)
			}
			sort.Strings(sws)
			agg.Paths = append(agg.Paths, PathMetric{
				FlowID:     id,
				Switches:   sws,
				Bytes:      maxTap,
				DeltaBytes: maxTap - minTap,
			})
		}
	}
	for site, s := range bySite {
		sort.Slice(s.Switches, func(i, j int) bool { return s.Switches[i].Switch < s.Switches[j].Switch })
		s.Fairness = metrics.JainFairness(siteBytes[site])
		agg.Sites = append(agg.Sites, *s)
	}
	sort.Slice(agg.Sites, func(i, j int) bool { return agg.Sites[i].Site < agg.Sites[j].Site })
	agg.GlobalFairness = metrics.JainFairness(globalBytes)
	return agg
}
