package psarchiver

import (
	"fmt"
	"testing"
)

func flowDoc(site, sw, flow string, bytes, packets float64) Document {
	return Document{
		"kind":      "flow_summary",
		"site_id":   site,
		"switch_id": sw,
		"flow_id":   flow,
		"bytes":     bytes,
		"packets":   packets,
	}
}

func fleetStore() *Store {
	s := NewStore()
	// alpha/sw1 and alpha/sw2 tap the same flows (two tap points on one
	// path); beta/sw1 sees its own flow. Flow f1 is snapshotted twice by
	// sw1 (cumulative rounds) — only the fullest snapshot must count.
	s.Index("p4-psonar-throughput", flowDoc("alpha", "sw1", "f1", 1000, 10))
	s.Index("p4-psonar-throughput", flowDoc("alpha", "sw1", "f1", 4000, 40))
	s.Index("p4-psonar-throughput", flowDoc("alpha", "sw2", "f1", 4000, 40))
	s.Index("p4-psonar-throughput", flowDoc("alpha", "sw1", "f2", 2000, 20))
	s.Index("p4-psonar-throughput", flowDoc("alpha", "sw2", "f2", 1500, 20))
	s.Index("p4-psonar-throughput", flowDoc("beta", "sw1", "f3", 6000, 60))
	// An aggregate document counts toward member accounting but not flows.
	s.Index("p4-psonar-aggregate", Document{"kind": "aggregate", "site_id": "beta", "switch_id": "sw1"})
	// Unstamped: a single-switch stream sharing the store.
	s.Index("p4-psonar-throughput", flowDoc("", "", "legacy", 100, 1))
	// Outside the prefix: ignored entirely.
	s.Index("other-throughput", flowDoc("alpha", "sw1", "f9", 1, 1))
	return s
}

func TestCrossSiteRollups(t *testing.T) {
	agg := CrossSite(fleetStore(), "p4-psonar")
	if agg.Documents != 8 || agg.Unstamped != 1 {
		t.Fatalf("documents=%d unstamped=%d", agg.Documents, agg.Unstamped)
	}
	if len(agg.Sites) != 2 || agg.Sites[0].Site != "alpha" || agg.Sites[1].Site != "beta" {
		t.Fatalf("sites: %+v", agg.Sites)
	}
	alpha, beta := agg.Sites[0], agg.Sites[1]
	if alpha.Documents != 5 || beta.Documents != 2 {
		t.Fatalf("site docs: alpha=%d beta=%d", alpha.Documents, beta.Documents)
	}
	// f1 counted once at its fullest tap observation (4000), not the
	// early 1000-byte snapshot and not double across tap points.
	if alpha.Flows != 2 || alpha.TotalBytes != 4000+2000 {
		t.Fatalf("alpha rollup: flows=%d bytes=%.0f", alpha.Flows, alpha.TotalBytes)
	}
	if beta.Flows != 1 || beta.TotalBytes != 6000 {
		t.Fatalf("beta rollup: flows=%d bytes=%.0f", beta.Flows, beta.TotalBytes)
	}
	if alpha.Fairness <= 0 || alpha.Fairness > 1 || agg.GlobalFairness <= 0 || agg.GlobalFairness > 1 {
		t.Fatalf("fairness out of range: site=%f global=%f", alpha.Fairness, agg.GlobalFairness)
	}
}

func TestCrossSitePathJoin(t *testing.T) {
	agg := CrossSite(fleetStore(), "p4-psonar")
	if len(agg.Paths) != 2 {
		t.Fatalf("paths: %+v", agg.Paths)
	}
	// Sorted by flow ID; tap points sorted inside each path.
	p1, p2 := agg.Paths[0], agg.Paths[1]
	if p1.FlowID != "f1" || p2.FlowID != "f2" {
		t.Fatalf("path order: %s, %s", p1.FlowID, p2.FlowID)
	}
	if fmt.Sprint(p1.Switches) != "[alpha/sw1 alpha/sw2]" {
		t.Fatalf("tap points: %v", p1.Switches)
	}
	// Both tap points converged on f1 → zero spread; f2's thinner tap
	// (1500 vs 2000) shows as on-path delta.
	if p1.Bytes != 4000 || p1.DeltaBytes != 0 {
		t.Fatalf("f1: bytes=%.0f delta=%.0f", p1.Bytes, p1.DeltaBytes)
	}
	if p2.Bytes != 2000 || p2.DeltaBytes != 500 {
		t.Fatalf("f2: bytes=%.0f delta=%.0f", p2.Bytes, p2.DeltaBytes)
	}
}

func TestCrossSiteMemberDocs(t *testing.T) {
	agg := CrossSite(fleetStore(), "p4-psonar")
	cases := []struct {
		site, sw string
		want     int
	}{
		{"alpha", "sw1", 3},
		{"alpha", "sw2", 2},
		{"beta", "sw1", 2},
		{"alpha", "ghost", 0},
		{"gamma", "sw1", 0},
	}
	for _, c := range cases {
		if got := agg.MemberDocs(c.site, c.sw); got != c.want {
			t.Fatalf("MemberDocs(%s,%s)=%d want %d", c.site, c.sw, got, c.want)
		}
	}
}

func TestCrossSiteEmptyStore(t *testing.T) {
	agg := CrossSite(NewStore(), "p4-psonar")
	if agg.Documents != 0 || len(agg.Sites) != 0 || len(agg.Paths) != 0 {
		t.Fatalf("empty store aggregate: %+v", agg)
	}
}
