// Package psarchiver models the perfSONAR archiver of Figure 7: a
// Logstash data-processing pipeline (input plugins → filters → output
// plugin) in front of an OpenSearch document store. The control plane's
// Report_v1 records enter through the TCP input plugin (or directly,
// in-simulation), gain the OpenSearch metadata Logstash adds
// (Report_v2), and land in the store, where dashboards and experiments
// query them.
package psarchiver

import (
	"fmt"
	"sort"
	"sync"
)

// Document is one stored record: the Report_v2 of Figure 7, i.e. the
// report fields plus Logstash-added metadata.
type Document map[string]interface{}

// Float reads a numeric field, tolerating the float64/int64 variants
// JSON decoding produces.
func (d Document) Float(key string) (float64, bool) {
	switch v := d[key].(type) {
	case float64:
		return v, true
	case int64:
		return float64(v), true
	case int:
		return float64(v), true
	case uint64:
		return float64(v), true
	}
	return 0, false
}

// Str reads a string field.
func (d Document) Str(key string) string {
	if s, ok := d[key].(string); ok {
		return s
	}
	return ""
}

// Query selects documents from an index.
type Query struct {
	// Index to search. Required.
	Index string
	// Term equality constraints (string fields).
	Terms map[string]string
	// TimeField with FromNs/ToNs bounds the numeric time field
	// [FromNs, ToNs); zero values disable the bound.
	TimeField string
	FromNs    int64
	ToNs      int64
}

// Store is the OpenSearch stand-in: named indices of documents with
// the small query surface the experiments and dashboards need. It is
// safe for concurrent use (the live collector writes from a goroutine).
type Store struct {
	mu      sync.RWMutex
	indices map[string][]Document
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{indices: make(map[string][]Document)}
}

// Index appends a document to an index, creating it on first use.
func (s *Store) Index(index string, doc Document) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.indices[index] = append(s.indices[index], doc)
}

// Count returns the number of documents in an index.
func (s *Store) Count(index string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.indices[index])
}

// Indices lists the index names, sorted.
func (s *Store) Indices() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.indices))
	for name := range s.indices {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Search returns the documents matching the query, in insertion order.
func (s *Store) Search(q Query) []Document {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Document
	for _, doc := range s.indices[q.Index] {
		if !matches(doc, q) {
			continue
		}
		out = append(out, doc)
	}
	return out
}

func matches(doc Document, q Query) bool {
	for k, v := range q.Terms {
		if doc.Str(k) != v {
			return false
		}
	}
	if q.TimeField != "" {
		t, ok := doc.Float(q.TimeField)
		if !ok {
			return false
		}
		if q.FromNs != 0 && t < float64(q.FromNs) {
			return false
		}
		if q.ToNs != 0 && t >= float64(q.ToNs) {
			return false
		}
	}
	return true
}

// AggStats summarises a numeric field over a query result.
type AggStats struct {
	Count int
	Min   float64
	Max   float64
	Mean  float64
	Sum   float64
}

// Aggregate computes min/max/mean/sum of field over the matching
// documents, mirroring the aggregations the perfSONAR dashboard issues.
func (s *Store) Aggregate(q Query, field string) (AggStats, error) {
	docs := s.Search(q)
	var st AggStats
	for _, d := range docs {
		v, ok := d.Float(field)
		if !ok {
			continue
		}
		if st.Count == 0 || v < st.Min {
			st.Min = v
		}
		if st.Count == 0 || v > st.Max {
			st.Max = v
		}
		st.Sum += v
		st.Count++
	}
	if st.Count == 0 {
		return st, fmt.Errorf("psarchiver: no numeric %q values in %s", field, q.Index)
	}
	st.Mean = st.Sum / float64(st.Count)
	return st, nil
}
