package psarchiver

import "repro/internal/obs"

// inputObs is the TCP input's optional self-telemetry.
type inputObs struct {
	conns  *obs.Counter
	lines  *obs.Counter
	errors *obs.Counter
}

// RegisterObs wires the input plugin's ingest and error rates into r.
// Safe to call while connections are being served (the hook pointer is
// atomic); events before registration are visible only in Errors().
func (in *TCPInput) RegisterObs(r *obs.Registry) {
	in.obs.Store(&inputObs{
		conns:  r.NewCounter("p4_archiver_input_connections_total", "Connections accepted by the TCP input."),
		lines:  r.NewCounter("p4_archiver_input_lines_total", "NDJSON lines ingested (decodable or not)."),
		errors: r.NewCounter("p4_archiver_input_errors_total", "Undecodable lines, oversized lines and read errors."),
	})
}

// RegisterObs exposes the pipeline counters as one consistent gauge
// group: received/dropped/shipped are read from a single mutex-guarded
// snapshot per scrape.
func (p *Pipeline) RegisterObs(r *obs.Registry) {
	r.Collect(func(w obs.MetricWriter) {
		st := p.Stats()
		w.Gauge("p4_archiver_pipeline_received", "Documents entering the Logstash-model pipeline.", st.Received)
		w.Gauge("p4_archiver_pipeline_dropped", "Documents rejected by a filter or undecodable.", st.Dropped)
		w.Gauge("p4_archiver_pipeline_shipped", "Documents delivered to the output plugins.", st.Shipped)
	})
}
