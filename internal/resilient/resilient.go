// Package resilient is the report-export subsystem between the switch
// control plane and any downstream archiver (Figure 7's "Report_v1 →
// Logstash" hop). The paper's value proposition is a *continuous*
// stream of measurement records; a fail-fast exporter that dials once
// and drops on any error silently falsifies every downstream dashboard.
// This package instead degrades in explicit, counted steps:
//
//	archiver up      → ship over TCP with a per-write deadline
//	transient error  → keep the record, reconnect with exponential
//	                   backoff + deterministic jitter, resend
//	archiver down    → circuit breaker opens after N consecutive
//	                   failures; records spill to a newline-delimited
//	                   JSON disk spool, replayed in order on reconnect
//	disk unavailable → records degrade to the fallback writer (stdout)
//	memory spool full→ drop-oldest, with an exact dropped counter
//
// Every record is accounted for exactly once in Stats:
//
//	Emitted == Shipped + Replayed + Fallback + Dropped + Queued + SpoolPending
//
// holds in every Stats snapshot — state transitions that move a record
// between terms happen under the same lock the snapshot takes, so even
// a mid-outage /metrics scrape balances exactly (modulo records
// inherited from a previous run's spool file, which are Replayed
// without having been Emitted), and after Close with Queued == 0.
// Tests assert this invariant under scripted faults (package faultnet)
// rather than observing good behaviour by luck; RegisterObs exposes
// the same counters as live gauges plus a lifecycle trace ring.
package resilient

import (
	"fmt"
	"io"
	"net"
	"os"
	"time"
)

// Stats is a consistent snapshot of the shipper's counters, in the
// style of psarchiver.PipelineStats.
type Stats struct {
	// Emitted counts reports accepted by Emit (including ones later
	// dropped or degraded).
	Emitted uint64
	// Shipped counts records fully delivered to an archiver
	// connection.
	Shipped uint64
	// Replayed counts the subset of deliveries that came back off the
	// disk spool after an outage (Replayed records are NOT counted in
	// Shipped; the two are disjoint).
	Replayed uint64
	// Retried counts write attempts that failed and left the record
	// queued for resend.
	Retried uint64
	// Dropped counts records lost with certainty: memory-spool
	// overflow (drop-oldest), encode failures, fallback write errors,
	// and emits after Close.
	Dropped uint64
	// Spilled counts records appended to the disk spool while the
	// circuit breaker was open (or during a failed final flush).
	Spilled uint64
	// Fallback counts records degraded to the fallback writer because
	// no disk spool was available (or it was full / broken).
	Fallback uint64
	// DialAttempts and Reconnects describe connection churn:
	// Reconnects counts successful dials that followed at least one
	// failure.
	DialAttempts uint64
	Reconnects   uint64
	// BreakerOpens counts circuit-breaker open transitions.
	BreakerOpens uint64
	// Queued is the current memory-spool depth; SpoolPending the
	// number of records waiting on disk (including records left over
	// from a previous process run).
	Queued       uint64
	SpoolPending uint64
}

// Delivered is the total number of records that reached the archiver,
// in-order shipments plus post-outage replays.
func (s Stats) Delivered() uint64 { return s.Shipped + s.Replayed }

// String renders the counters the way the collector prints them at
// shutdown.
func (s Stats) String() string {
	return fmt.Sprintf(
		"emitted=%d shipped=%d replayed=%d retried=%d dropped=%d spilled=%d fallback=%d dials=%d reconnects=%d breaker_opens=%d queued=%d spool_pending=%d",
		s.Emitted, s.Shipped, s.Replayed, s.Retried, s.Dropped, s.Spilled,
		s.Fallback, s.DialAttempts, s.Reconnects, s.BreakerOpens, s.Queued, s.SpoolPending)
}

// Config parameterises a Shipper. The zero value of every field except
// Dial selects a production-reasonable default.
type Config struct {
	// Dial opens a connection to the archiver. It is retried with
	// backoff, so it may fail at startup — the shipper still starts
	// and spools. A nil Dial puts the shipper in terminal mode: every
	// record goes straight to Fallback (the collector's stdout mode).
	Dial func() (net.Conn, error)

	// MemSpool bounds the in-memory queue, in records. When full the
	// OLDEST queued record is dropped (and counted) so the stream
	// stays fresh. Default 4096.
	MemSpool int

	// SpoolDir enables the disk spool: records spilled during an
	// outage land in SpoolDir/reports.spool.ndjson and are replayed in
	// order on reconnect (including across process restarts). Empty
	// disables the disk tier.
	SpoolDir string

	// MaxSpoolBytes caps the pending bytes on disk; beyond it records
	// degrade to Fallback. Default 64 MiB.
	MaxSpoolBytes int64

	// BackoffMin/BackoffMax bound the reconnect backoff (exponential,
	// doubling, with deterministic "equal jitter" in [d/2, d)).
	// Defaults 50ms and 5s.
	BackoffMin time.Duration
	BackoffMax time.Duration

	// BreakerFailures is the number of consecutive dial/write failures
	// that opens the circuit breaker (switching from hold-in-memory to
	// spill-to-disk). Default 3.
	BreakerFailures int

	// WriteTimeout is the per-write deadline on archiver connections;
	// a stalled archiver fails the write instead of wedging the
	// shipper. Default 5s.
	WriteTimeout time.Duration

	// Seed drives the jitter RNG. The same seed and fault sequence
	// reproduce the same backoff schedule.
	Seed uint64

	// Fallback is the last-resort destination. Default os.Stdout.
	Fallback io.Writer

	// Sleep, when non-nil, replaces the backoff sleep — the test hook
	// that makes chaos scenarios run in microseconds. It must return
	// false if the shipper should stop waiting (Close).
	Sleep func(d time.Duration) bool

	// Logf, when non-nil, receives one line per state transition
	// (reconnects, breaker opens, spool events).
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.MemSpool <= 0 {
		c.MemSpool = 4096
	}
	if c.MaxSpoolBytes <= 0 {
		c.MaxSpoolBytes = 64 << 20
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.BackoffMax < c.BackoffMin {
		c.BackoffMax = c.BackoffMin
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Fallback == nil {
		c.Fallback = os.Stdout
	}
	return c
}
