package resilient

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/controlplane"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Shipper implements controlplane.Sink with the degradation ladder
// described in the package comment. Emit is non-blocking and safe for
// concurrent use; a single background goroutine owns the connection,
// the disk spool and the fallback writer, and terminates on Close.
type Shipper struct {
	cfg Config
	rng *simtime.RNG

	mu      sync.Mutex
	queue   [][]byte // ring buffer of encoded NDJSON lines
	head    int
	n       int
	stats   Stats
	closing bool

	notify chan struct{} // cap 1: "the queue may be non-empty"
	stop   chan struct{} // closed by Close
	done   chan struct{} // closed when run returns

	// trace, when set by RegisterObs, receives one event per
	// report-lifecycle and ladder transition. Atomic because
	// registration may race the run goroutine.
	trace atomic.Pointer[obs.Trace]

	// Run-loop state, touched only by the run goroutine.
	conn        connWriter
	consecFail  int
	breakerOpen bool
	backoff     time.Duration
	spool       *diskSpool
}

// connWriter is the slice of net.Conn the shipper uses; it lets tests
// substitute scripted connections.
type connWriter interface {
	Write(b []byte) (int, error)
	SetWriteDeadline(t time.Time) error
	Close() error
}

// New starts a shipper. It never fails because the archiver is down —
// that is the point — only on local misconfiguration (an unusable
// spool directory).
func New(cfg Config) (*Shipper, error) {
	cfg = cfg.withDefaults()
	s := &Shipper{
		cfg:    cfg,
		rng:    simtime.NewRNG(cfg.Seed),
		queue:  make([][]byte, cfg.MemSpool),
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if cfg.SpoolDir != "" && cfg.Dial != nil {
		spool, err := openDiskSpool(cfg.SpoolDir, cfg.MaxSpoolBytes)
		if err != nil {
			return nil, err
		}
		s.spool = spool
		s.stats.SpoolPending = uint64(spool.pending)
		if spool.pending > 0 {
			s.logf("resilient: %d spooled records from a previous run pending replay", spool.pending)
		}
	}
	go s.run()
	return s, nil
}

// Emit implements controlplane.Sink: encode, enqueue, never block on
// the network. Overflow drops the oldest queued record and counts it.
func (s *Shipper) Emit(r controlplane.Report) {
	line, err := r.MarshalJSONLine()
	s.mu.Lock()
	s.stats.Emitted++
	if err != nil || s.closing {
		s.stats.Dropped++
		s.mu.Unlock()
		s.tev("drop", 0, 0)
		return
	}
	dropOldest := s.n == len(s.queue)
	if dropOldest {
		// Drop-oldest: stale telemetry is worth less than fresh.
		s.head = (s.head + 1) % len(s.queue)
		s.n--
		s.stats.Dropped++
	}
	s.queue[(s.head+s.n)%len(s.queue)] = line
	s.n++
	s.stats.Queued = uint64(s.n)
	s.mu.Unlock()
	if dropOldest {
		s.tev("drop_oldest", uint64(len(s.queue)), 0)
	}
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Stats returns a consistent snapshot of the counters.
func (s *Shipper) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close flushes and stops the shipper: queued records are shipped if
// the connection is healthy, spilled to the disk spool if not, and
// degraded to the fallback writer as a last resort. It is idempotent
// and returns after the background goroutine has terminated.
func (s *Shipper) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closing = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
	if s.spool != nil {
		return s.spool.close()
	}
	return nil
}

func (s *Shipper) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Shipper) isClosing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closing
}

// bump adjusts one counter under the lock.
func (s *Shipper) bump(c *uint64) {
	s.mu.Lock()
	*c++
	s.mu.Unlock()
}

// run is the single owner of connection/spool state. Its loop always
// observes the stop channel (directly or through sleep/next), so the
// goroutine terminates promptly on Close.
func (s *Shipper) run() {
	defer close(s.done)
	defer func() {
		if s.conn != nil {
			s.conn.Close()
		}
	}()
	for {
		if s.cfg.Dial == nil {
			if !s.terminalStep() {
				return
			}
			continue
		}
		if s.conn == nil {
			if !s.connectStep() {
				s.finalize()
				return
			}
			continue
		}
		// Connected: older disk records replay before fresh ones so
		// per-flow report order survives an outage.
		if s.spool != nil && (s.spool.pending > 0 || s.spool.peeked != nil) {
			if err := s.replaySpool(); err != nil {
				s.connFailed("replay: %v", err)
				continue
			}
		}
		line, ok := s.next()
		if !ok {
			s.finalize()
			return
		}
		if line == nil {
			continue // spurious wakeup; re-check state
		}
		if err := s.shipHead(line); err != nil {
			s.connFailed("write: %v", err)
		}
	}
}

// next peeks the oldest queued record, blocking until one exists. It
// returns ok=false when the shipper is closing and the queue is empty,
// and (nil, true) on a spurious wakeup.
func (s *Shipper) next() ([]byte, bool) {
	s.mu.Lock()
	if s.n > 0 {
		line := s.queue[s.head]
		s.mu.Unlock()
		return line, true
	}
	closing := s.closing
	s.mu.Unlock()
	if closing {
		return nil, false
	}
	select {
	case <-s.notify:
	case <-s.stop:
	}
	return nil, true
}

// pop removes the queue head after its record reached a terminal
// state, crediting the given counter.
func (s *Shipper) pop(counter *uint64) {
	s.mu.Lock()
	s.popLocked(counter)
	s.mu.Unlock()
}

// popLocked is pop with s.mu already held — used where the pop must be
// atomic with other counter updates (the disk-spill transition) so a
// concurrent Stats snapshot never sees a record in two states at once.
func (s *Shipper) popLocked(counter *uint64) {
	s.queue[s.head] = nil
	s.head = (s.head + 1) % len(s.queue)
	s.n--
	s.stats.Queued = uint64(s.n)
	*counter++
}

// shipHead writes the queue head to the live connection. The record is
// popped only once every byte was accepted, so a torn write leaves it
// queued for resend on the next connection (the archiver discards the
// torn prefix as one undecodable line).
func (s *Shipper) shipHead(line []byte) error {
	// A deadline-set failure surfaces as a write failure right after;
	// no separate handling needed.
	_ = s.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	n, err := s.conn.Write(line)
	if n == len(line) {
		s.pop(&s.stats.Shipped)
		s.tev("ship", uint64(n), 0)
		return err // a fully-accepted write may still report the teardown
	}
	s.bump(&s.stats.Retried)
	s.tev("retry", uint64(n), uint64(len(line)))
	return err
}

// replaySpool streams pending disk records to the connection, oldest
// first, truncating the file once drained. On a connection error the
// cursor stays put and replay resumes on the next connect.
func (s *Shipper) replaySpool() error {
	for {
		line, err := s.spool.peek()
		if err != nil {
			// The spool file itself is unreadable; counted loss beats
			// a wedged shipper. Drop the remainder and reset.
			s.mu.Lock()
			s.stats.Dropped += uint64(s.spool.pending)
			s.stats.SpoolPending = 0
			s.mu.Unlock()
			s.tev("spool_abandon", uint64(s.spool.pending), 0)
			s.logf("resilient: abandoning unreadable spool: %v", err)
			s.spool.pending = 0
			s.spool.peeked = nil
			s.spool.readOff = s.spool.size
			return nil
		}
		if line == nil {
			return nil
		}
		_ = s.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		n, werr := s.conn.Write(line)
		if n != len(line) {
			s.bump(&s.stats.Retried)
			return werr
		}
		if derr := s.spool.delivered(); derr != nil {
			s.logf("resilient: spool bookkeeping: %v", derr)
		}
		s.mu.Lock()
		s.stats.Replayed++
		s.stats.SpoolPending = uint64(s.spool.pending)
		s.mu.Unlock()
		s.tev("replay", uint64(n), 0)
		if werr != nil {
			return werr
		}
	}
}

// connFailed tears down the connection and advances the breaker.
func (s *Shipper) connFailed(format string, args ...interface{}) {
	s.logf("resilient: connection failed: "+format, args...)
	if s.conn != nil {
		_ = s.conn.Close() // already failed; teardown is best-effort
		s.conn = nil
	}
	s.consecFail++
	s.tev("conn_fail", uint64(s.consecFail), 0)
	s.maybeOpenBreaker()
}

func (s *Shipper) maybeOpenBreaker() {
	if !s.breakerOpen && s.consecFail >= s.cfg.BreakerFailures {
		s.breakerOpen = true
		s.bump(&s.stats.BreakerOpens)
		s.tev("breaker_open", uint64(s.consecFail), 0)
		s.logf("resilient: circuit breaker open after %d consecutive failures; spilling to %s",
			s.consecFail, s.spoolDesc())
	}
}

func (s *Shipper) spoolDesc() string {
	if s.spool != nil {
		return s.spool.path
	}
	return "fallback writer"
}

// connectStep runs one iteration of the disconnected state: spill if
// the breaker is open, try to dial, back off on failure. It returns
// false when the shipper should finalize and exit.
func (s *Shipper) connectStep() bool {
	if s.breakerOpen {
		s.spillQueue()
	}
	if s.isClosing() {
		return false
	}
	s.bump(&s.stats.DialAttempts)
	conn, err := s.cfg.Dial()
	if err == nil {
		if s.consecFail > 0 {
			s.bump(&s.stats.Reconnects)
			s.logf("resilient: reconnected after %d failures", s.consecFail)
		}
		if s.breakerOpen {
			s.tev("breaker_close", uint64(s.consecFail), 0)
			s.logf("resilient: circuit breaker closed; replaying spool")
		}
		s.tev("connect", uint64(s.consecFail), 0)
		s.conn = conn
		s.consecFail = 0
		s.breakerOpen = false
		s.backoff = 0
		return true
	}
	s.consecFail++
	s.tev("dial_fail", uint64(s.consecFail), 0)
	s.maybeOpenBreaker()
	if s.breakerOpen {
		// Spill what arrived while dialing before going back to sleep.
		s.spillQueue()
	}
	return s.sleep(s.nextBackoff())
}

// nextBackoff doubles the base delay up to the cap and applies equal
// jitter in [d/2, d). The RNG is seeded, so a scripted fault sequence
// reproduces the same schedule run after run.
func (s *Shipper) nextBackoff() time.Duration {
	if s.backoff == 0 {
		s.backoff = s.cfg.BackoffMin
	} else {
		s.backoff = s.backoff * 2
		if s.backoff > s.cfg.BackoffMax {
			s.backoff = s.cfg.BackoffMax
		}
	}
	half := s.backoff / 2
	return half + time.Duration(s.rng.Float64()*float64(half))
}

// sleep waits d, abandoning the wait when Close arrives. Tests inject
// Config.Sleep to record the schedule instead of actually waiting.
func (s *Shipper) sleep(d time.Duration) bool {
	if s.cfg.Sleep != nil {
		return s.cfg.Sleep(d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.stop:
		return false
	}
}

// spillQueue drains the memory queue to the disk spool (breaker open),
// degrading to the fallback writer when the spool is absent, full or
// broken.
func (s *Shipper) spillQueue() {
	for {
		s.mu.Lock()
		if s.n == 0 {
			s.mu.Unlock()
			return
		}
		line := s.queue[s.head]
		s.mu.Unlock()
		s.spillOne(line)
	}
}

// spillOne moves one queued record to the disk spool or fallback.
func (s *Shipper) spillOne(line []byte) {
	if s.spool != nil {
		switch err := s.spool.append(line); err {
		case nil:
			// One lock for SpoolPending and the pop: a concurrent
			// Stats snapshot (the /metrics scrape) must never see the
			// record counted as both queued and spool-pending.
			s.mu.Lock()
			s.stats.SpoolPending = uint64(s.spool.pending)
			s.popLocked(&s.stats.Spilled)
			s.mu.Unlock()
			s.tev("spill", uint64(len(line)), 0)
			return
		case ErrSpoolFull:
			s.logf("resilient: disk spool full (%d bytes cap); degrading to fallback", s.cfg.MaxSpoolBytes)
		default:
			s.logf("resilient: disk spool write failed: %v; degrading to fallback", err)
		}
	}
	if _, err := s.cfg.Fallback.Write(line); err != nil {
		s.pop(&s.stats.Dropped)
		s.tev("drop", uint64(len(line)), 0)
		return
	}
	s.pop(&s.stats.Fallback)
	s.tev("fallback", uint64(len(line)), 0)
}

// terminalStep is the Dial == nil mode: one record from queue to
// fallback, blocking while idle. Returns false when closing and empty.
func (s *Shipper) terminalStep() bool {
	line, ok := s.next()
	if !ok {
		return false
	}
	if line == nil {
		return true
	}
	if _, err := s.cfg.Fallback.Write(line); err != nil {
		s.pop(&s.stats.Dropped)
		s.tev("drop", uint64(len(line)), 0)
		return true
	}
	s.pop(&s.stats.Fallback)
	s.tev("fallback", uint64(len(line)), 0)
	return true
}

// finalize is the shutdown flush: with no usable connection every
// remaining record is spilled (disk first, then fallback) so nothing
// silently vanishes. Remaining disk records stay pending for the next
// run.
func (s *Shipper) finalize() {
	s.spillQueue()
}
