package resilient

import (
	"strings"

	"repro/internal/obs"
)

// RegisterObs wires the shipper's self-telemetry into r.
//
// The ladder counters are rendered by one Collect callback reading a
// single mutex-consistent Stats snapshot, so the PR-3 accounting
// invariant
//
//	emitted == shipped + replayed + fallback + dropped + queued + spool_pending
//
// holds in every /metrics scrape, not just at quiescent points (the
// shipper moves records between states under the same lock the
// snapshot takes). The trace ring records report-lifecycle and
// ladder-transition events: ship, retry, replay, spill, fallback,
// drop, dial, connect, breaker_open, breaker_close, spool_abandon.
func (s *Shipper) RegisterObs(r *obs.Registry) {
	s.RegisterObsAs(r, "p4_shipper")
}

// RegisterObsAs is RegisterObs under an explicit metric-name prefix
// (and trace-ring name), for fleet deployments where several member
// shippers share one registry: scrape output must keep names unique,
// so each member registers as e.g. "p4_shipper_siteA_sw1". The prefix
// replaces the default "p4_shipper".
func (s *Shipper) RegisterObsAs(r *obs.Registry, prefix string) {
	// The trace ring keeps its historical name ("shipper" under the
	// default prefix): rings are namespaced by /trace, not /metrics.
	s.trace.Store(r.NewTrace(strings.TrimPrefix(prefix, "p4_"), 1024))
	r.Collect(func(w obs.MetricWriter) {
		st := s.Stats()
		w.Gauge(prefix+"_emitted", "Reports accepted by Emit.", st.Emitted)
		w.Gauge(prefix+"_shipped", "Records fully delivered to a live archiver connection.", st.Shipped)
		w.Gauge(prefix+"_replayed", "Records delivered off the disk spool after an outage.", st.Replayed)
		w.Gauge(prefix+"_retried", "Write attempts that failed and left the record queued.", st.Retried)
		w.Gauge(prefix+"_dropped", "Records lost with certainty (overflow, encode, fallback errors).", st.Dropped)
		w.Gauge(prefix+"_spilled", "Records appended to the disk spool.", st.Spilled)
		w.Gauge(prefix+"_fallback", "Records degraded to the fallback writer.", st.Fallback)
		w.Gauge(prefix+"_dial_attempts", "Archiver dial attempts.", st.DialAttempts)
		w.Gauge(prefix+"_reconnects", "Successful dials that followed at least one failure.", st.Reconnects)
		w.Gauge(prefix+"_breaker_opens", "Circuit-breaker open transitions.", st.BreakerOpens)
		w.Gauge(prefix+"_queued", "Current in-memory queue depth.", st.Queued)
		w.Gauge(prefix+"_spool_pending", "Records waiting on disk for replay.", st.SpoolPending)
	})
}

// tev records one trace event when instrumentation is on. kind must be
// a string literal so recording stays allocation-free.
func (s *Shipper) tev(kind string, a, b uint64) {
	if t := s.trace.Load(); t != nil {
		t.Add(kind, a, b)
	}
}
