package resilient

import "repro/internal/obs"

// RegisterObs wires the shipper's self-telemetry into r.
//
// The ladder counters are rendered by one Collect callback reading a
// single mutex-consistent Stats snapshot, so the PR-3 accounting
// invariant
//
//	emitted == shipped + replayed + fallback + dropped + queued + spool_pending
//
// holds in every /metrics scrape, not just at quiescent points (the
// shipper moves records between states under the same lock the
// snapshot takes). The trace ring records report-lifecycle and
// ladder-transition events: ship, retry, replay, spill, fallback,
// drop, dial, connect, breaker_open, breaker_close, spool_abandon.
func (s *Shipper) RegisterObs(r *obs.Registry) {
	s.trace.Store(r.NewTrace("shipper", 1024))
	r.Collect(func(w obs.MetricWriter) {
		st := s.Stats()
		w.Gauge("p4_shipper_emitted", "Reports accepted by Emit.", st.Emitted)
		w.Gauge("p4_shipper_shipped", "Records fully delivered to a live archiver connection.", st.Shipped)
		w.Gauge("p4_shipper_replayed", "Records delivered off the disk spool after an outage.", st.Replayed)
		w.Gauge("p4_shipper_retried", "Write attempts that failed and left the record queued.", st.Retried)
		w.Gauge("p4_shipper_dropped", "Records lost with certainty (overflow, encode, fallback errors).", st.Dropped)
		w.Gauge("p4_shipper_spilled", "Records appended to the disk spool.", st.Spilled)
		w.Gauge("p4_shipper_fallback", "Records degraded to the fallback writer.", st.Fallback)
		w.Gauge("p4_shipper_dial_attempts", "Archiver dial attempts.", st.DialAttempts)
		w.Gauge("p4_shipper_reconnects", "Successful dials that followed at least one failure.", st.Reconnects)
		w.Gauge("p4_shipper_breaker_opens", "Circuit-breaker open transitions.", st.BreakerOpens)
		w.Gauge("p4_shipper_queued", "Current in-memory queue depth.", st.Queued)
		w.Gauge("p4_shipper_spool_pending", "Records waiting on disk for replay.", st.SpoolPending)
	})
}

// tev records one trace event when instrumentation is on. kind must be
// a string literal so recording stays allocation-free.
func (s *Shipper) tev(kind string, a, b uint64) {
	if t := s.trace.Load(); t != nil {
		t.Add(kind, a, b)
	}
}
