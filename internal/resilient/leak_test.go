package resilient

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/faultnet"
)

// TestCloseTerminatesGoroutines is the runtime half of the goleak
// gate (cmd/p4lint's static pass is the other half): every goroutine a
// shipper starts — the run loop plus whatever per-connection servers
// its dials induced — must be gone after Close, in every degradation
// state. The harness (listener, archiver accept loop) is created
// before the baseline count so only shipper-owned goroutines are
// measured.
func TestCloseTerminatesGoroutines(t *testing.T) {
	scenarios := map[string]func(t *testing.T) func() *Shipper{
		"terminal": func(t *testing.T) func() *Shipper {
			return func() *Shipper {
				s, _ := New(Config{Fallback: &lockedBuffer{}, Seed: 1})
				return s
			}
		},
		"healthy": func(t *testing.T) func() *Shipper {
			l := faultnet.NewListener()
			t.Cleanup(func() { l.Close() })
			newTestArchiver(l)
			return func() *Shipper {
				s, _ := New(Config{Dial: l.Dial, Sleep: fastSleep, Seed: 1, Fallback: &lockedBuffer{}})
				return s
			}
		},
		"refused-backing-off": func(t *testing.T) func() *Shipper {
			l := faultnet.NewListener()
			t.Cleanup(func() { l.Close() })
			l.Refuse(true)
			return func() *Shipper {
				// Real sleeps: Close must interrupt a pending backoff.
				s, _ := New(Config{Dial: l.Dial, BackoffMin: 50 * time.Millisecond, Seed: 1, Fallback: &lockedBuffer{}})
				return s
			}
		},
		"breaker-open-spilling": func(t *testing.T) func() *Shipper {
			l := faultnet.NewListener()
			t.Cleanup(func() { l.Close() })
			l.Refuse(true)
			dir := t.TempDir()
			return func() *Shipper {
				s, _ := New(Config{Dial: l.Dial, SpoolDir: dir, BreakerFailures: 1, Sleep: fastSleep, Seed: 1, Fallback: &lockedBuffer{}})
				return s
			}
		},
	}
	for name, setup := range scenarios {
		t.Run(name, func(t *testing.T) {
			mk := setup(t)
			before := runtime.NumGoroutine()
			s := mk()
			for i := 0; i < 25; i++ {
				s.Emit(report(i))
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			// Conn-teardown propagation to the archiver's per-conn
			// goroutines is asynchronous; allow a grace period.
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				if runtime.NumGoroutine() <= before {
					return
				}
				runtime.Gosched()
				time.Sleep(time.Millisecond)
			}
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		})
	}
}
