package resilient

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/controlplane"
	"repro/internal/faultnet"
)

// testArchiver accepts connections from a faultnet listener and
// collects newline-delimited JSON records, counting undecodable lines
// (torn writes) separately — a miniature Logstash TCP input.
type testArchiver struct {
	mu      sync.Mutex
	reports []controlplane.Report
	badLine int
	wg      sync.WaitGroup
}

func newTestArchiver(l *faultnet.Listener) *testArchiver {
	a := &testArchiver{}
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			a.wg.Add(1)
			go func(c net.Conn) {
				defer a.wg.Done()
				defer c.Close()
				sc := bufio.NewScanner(c)
				sc.Buffer(make([]byte, 64<<10), 1<<20)
				for sc.Scan() {
					line := sc.Bytes()
					if len(line) == 0 {
						continue
					}
					var r controlplane.Report
					if err := json.Unmarshal(line, &r); err != nil {
						a.mu.Lock()
						a.badLine++
						a.mu.Unlock()
						continue
					}
					a.mu.Lock()
					a.reports = append(a.reports, r)
					a.mu.Unlock()
				}
			}(conn)
		}
	}()
	return a
}

func (a *testArchiver) count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.reports)
}

func (a *testArchiver) badLines() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.badLine
}

// timestamps returns the TimeNs of every archived report, in arrival
// order.
func (a *testArchiver) timestamps() []int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]int64, len(a.reports))
	for i, r := range a.reports {
		out[i] = r.TimeNs
	}
	return out
}

func report(i int) controlplane.Report {
	return controlplane.Report{Kind: controlplane.KindMetric, TimeNs: int64(i), Metric: controlplane.MetricRTT, Value: float64(i)}
}

// waitFor polls cond until true or the deadline passes; the chaos
// tests synchronise on *outcomes* (counters reaching their exact final
// values), never on timing.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fastSleep yields briefly instead of honouring backoff, keeping chaos
// tests fast while still exercising the schedule computation.
func fastSleep(d time.Duration) bool {
	time.Sleep(50 * time.Microsecond)
	return true
}

// checkInvariant asserts the package's accounting identity.
func checkInvariant(t *testing.T, st Stats) {
	t.Helper()
	got := st.Shipped + st.Replayed + st.Fallback + st.Dropped + st.Queued + st.SpoolPending
	if got != st.Emitted {
		t.Fatalf("accounting broken: emitted=%d but terminal states sum to %d (%s)", st.Emitted, got, st)
	}
}

func TestShipsInOrderWhenHealthy(t *testing.T) {
	l := faultnet.NewListener()
	defer l.Close()
	arch := newTestArchiver(l)

	s, err := New(Config{Dial: l.Dial, Sleep: fastSleep, Seed: 7, Fallback: &lockedBuffer{}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		s.Emit(report(i))
	}
	waitFor(t, "all reports delivered", func() bool { return s.Stats().Delivered() == n })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Shipped != n || st.Dropped != 0 || st.Retried != 0 {
		t.Fatalf("stats: %s", st)
	}
	checkInvariant(t, st)
	ts := arch.timestamps()
	for i, v := range ts {
		if v != int64(i) {
			t.Fatalf("order broken at %d: %v", i, ts)
		}
	}
}

func TestStartsWhileArchiverDownThenSpillsAndReplays(t *testing.T) {
	l := faultnet.NewListener()
	defer l.Close()
	arch := newTestArchiver(l)
	l.Refuse(true)

	dir := t.TempDir()
	s, err := New(Config{Dial: l.Dial, SpoolDir: dir, Sleep: fastSleep, Seed: 7, BreakerFailures: 2, Fallback: &lockedBuffer{}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		s.Emit(report(i))
	}
	// The breaker opens after 2 refused dials and everything spills.
	waitFor(t, "all reports spilled to disk", func() bool {
		st := s.Stats()
		return st.Spilled == n && st.SpoolPending == n
	})
	if st := s.Stats(); st.BreakerOpens != 1 {
		t.Fatalf("breaker should have opened exactly once: %s", st)
	}
	if data, err := os.ReadFile(filepath.Join(dir, SpoolFileName)); err != nil || bytes.Count(data, []byte{'\n'}) != n {
		t.Fatalf("spool file: err=%v lines=%d", err, bytes.Count(data, []byte{'\n'}))
	}

	// The archiver comes back: the spool replays, in order, then empties.
	l.Refuse(false)
	waitFor(t, "spool replayed", func() bool { return s.Stats().Replayed == n })
	waitFor(t, "archiver caught up", func() bool { return arch.count() == n })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Dropped != 0 || st.SpoolPending != 0 {
		t.Fatalf("stats: %s", st)
	}
	checkInvariant(t, st)
	ts := arch.timestamps()
	for i, v := range ts {
		if v != int64(i) {
			t.Fatalf("replay order broken at %d: %v", i, ts)
		}
	}
	if data, err := os.ReadFile(filepath.Join(dir, SpoolFileName)); err != nil || len(data) != 0 {
		t.Fatalf("drained spool should be truncated: err=%v len=%d", err, len(data))
	}
}

func TestTornWriteIsResentNotLost(t *testing.T) {
	l := faultnet.NewListener()
	defer l.Close()
	arch := newTestArchiver(l)
	// First connection dies 10 bytes into the stream — mid-record.
	l.ScriptNext(faultnet.Script{{AfterBytes: 10, Kind: faultnet.Reset}})

	s, err := New(Config{Dial: l.Dial, Sleep: fastSleep, Seed: 7, Fallback: &lockedBuffer{}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		s.Emit(report(i))
	}
	waitFor(t, "all reports delivered", func() bool { return s.Stats().Delivered() == n })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Retried == 0 {
		t.Fatalf("the torn write must be counted as a retry: %s", st)
	}
	if st.Dropped != 0 {
		t.Fatalf("nothing may be dropped: %s", st)
	}
	checkInvariant(t, st)
	waitFor(t, "archiver saw the torn line", func() bool { return arch.badLines() == 1 })
	// Exactly n good records, no duplicates, order preserved.
	ts := arch.timestamps()
	if len(ts) != n {
		t.Fatalf("archived %d, want %d: %v", len(ts), n, ts)
	}
	for i, v := range ts {
		if v != int64(i) {
			t.Fatalf("order broken: %v", ts)
		}
	}
}

func TestStalledArchiverHitsWriteDeadline(t *testing.T) {
	l := faultnet.NewListener()
	defer l.Close()
	arch := newTestArchiver(l)
	l.ScriptNext(faultnet.Script{{AfterBytes: 10, Kind: faultnet.Stall, Delay: 200 * time.Millisecond}})

	s, err := New(Config{Dial: l.Dial, Sleep: fastSleep, Seed: 7, WriteTimeout: 20 * time.Millisecond, Fallback: &lockedBuffer{}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		s.Emit(report(i))
	}
	waitFor(t, "all reports delivered despite the stall", func() bool { return s.Stats().Delivered() == n })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Retried == 0 {
		t.Fatalf("the stalled write must fail its deadline and be retried: %s", st)
	}
	if st.Dropped != 0 {
		t.Fatalf("stats: %s", st)
	}
	checkInvariant(t, st)
	if got := arch.count(); got != n {
		t.Fatalf("archived %d, want %d", got, n)
	}
}

func TestMemorySpoolDropsOldestExactly(t *testing.T) {
	l := faultnet.NewListener()
	defer l.Close()
	arch := newTestArchiver(l)
	l.Refuse(true)

	// Huge breaker threshold: the breaker never opens, so records pile
	// up in the bounded memory queue while the archiver is down.
	s, err := New(Config{Dial: l.Dial, MemSpool: 4, BreakerFailures: 1 << 30, Sleep: fastSleep, Seed: 7, Fallback: &lockedBuffer{}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		s.Emit(report(i))
	}
	// The drop count is exact and immediate: Emit itself drops the
	// oldest, no goroutine involved.
	if st := s.Stats(); st.Dropped != n-4 || st.Queued != 4 {
		t.Fatalf("stats: %s", st)
	}
	l.Refuse(false)
	waitFor(t, "survivors delivered", func() bool { return s.Stats().Delivered() == 4 })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, s.Stats())
	// The four newest records survive, in order.
	want := []int64{6, 7, 8, 9}
	ts := arch.timestamps()
	if len(ts) != len(want) {
		t.Fatalf("archived %v, want %v", ts, want)
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("archived %v, want %v", ts, want)
		}
	}
}

func TestNoSpoolDirDegradesToFallback(t *testing.T) {
	l := faultnet.NewListener()
	defer l.Close()
	l.Refuse(true)

	var fb lockedBuffer
	s, err := New(Config{Dial: l.Dial, BreakerFailures: 1, Sleep: fastSleep, Seed: 7, Fallback: &fb})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		s.Emit(report(i))
	}
	waitFor(t, "records degraded to fallback", func() bool { return s.Stats().Fallback == n })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Dropped != 0 {
		t.Fatalf("degradation must be counted, not dropped: %s", st)
	}
	checkInvariant(t, st)
	if got := bytes.Count(fb.Bytes(), []byte{'\n'}); got != n {
		t.Fatalf("fallback lines=%d, want %d", got, n)
	}
}

func TestSpoolByteCapOverflowsToFallback(t *testing.T) {
	l := faultnet.NewListener()
	defer l.Close()
	l.Refuse(true)

	// Reports 10..19 all encode to the same line length (two-digit
	// timestamps and values), so the byte cap admits exactly 3.
	oneLine, _ := report(10).MarshalJSONLine()
	var fb lockedBuffer
	s, err := New(Config{
		Dial: l.Dial, SpoolDir: t.TempDir(),
		MaxSpoolBytes:   int64(3*len(oneLine) + 2), // room for exactly 3 records
		BreakerFailures: 1, Sleep: fastSleep, Seed: 7, Fallback: &fb,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 10; i < 10+n; i++ {
		s.Emit(report(i))
	}
	waitFor(t, "spool capped and remainder degraded", func() bool {
		st := s.Stats()
		return st.Spilled == 3 && st.Fallback == n-3
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, s.Stats())
}

func TestCloseFlushesHealthyConnection(t *testing.T) {
	l := faultnet.NewListener()
	defer l.Close()
	arch := newTestArchiver(l)

	var fb lockedBuffer
	s, err := New(Config{Dial: l.Dial, Sleep: fastSleep, Seed: 7, Fallback: &fb})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		s.Emit(report(i))
	}
	// Close once the connection is live but before the queue has
	// drained: the flush must deliver every still-queued record over
	// the live connection rather than dropping it.
	waitFor(t, "connection established", func() bool { return s.Stats().Delivered() > 0 })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Delivered()+st.Spilled+st.Fallback+st.Dropped != n || st.Queued != 0 {
		t.Fatalf("flush incomplete: %s", st)
	}
	if st.Dropped != 0 {
		t.Fatalf("flush may degrade but never drop: %s", st)
	}
	checkInvariant(t, st)
	waitFor(t, "archiver drained", func() bool { return arch.count() == int(st.Delivered()) })
}

func TestCloseWhileDownSpillsAndNextRunReplays(t *testing.T) {
	l := faultnet.NewListener()
	defer l.Close()
	arch := newTestArchiver(l)
	l.Refuse(true)
	dir := t.TempDir()

	s, err := New(Config{Dial: l.Dial, SpoolDir: dir, BreakerFailures: 1, Sleep: fastSleep, Seed: 7, Fallback: &lockedBuffer{}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 0; i < n; i++ {
		s.Emit(report(i))
	}
	waitFor(t, "records spilled", func() bool { return s.Stats().SpoolPending == n })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, s.Stats())

	// A new shipper (a collector restart) inherits the spool and
	// replays it once the archiver is back. The listener still refuses
	// while we inspect the inherited state.
	s2, err := New(Config{Dial: l.Dial, SpoolDir: dir, Sleep: fastSleep, Seed: 8, Fallback: &lockedBuffer{}})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.SpoolPending != n {
		t.Fatalf("restart should inherit %d pending records: %s", n, st)
	}
	l.Refuse(false)
	waitFor(t, "inherited spool replayed", func() bool { return s2.Stats().Replayed == n })
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "archiver caught up", func() bool { return arch.count() == n })
	ts := arch.timestamps()
	for i, v := range ts {
		if v != int64(i) {
			t.Fatalf("replay order broken: %v", ts)
		}
	}
}

func TestTerminalModeWritesFallback(t *testing.T) {
	var fb lockedBuffer
	s, err := New(Config{Fallback: &fb, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		s.Emit(report(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Fallback != n || st.Dropped != 0 {
		t.Fatalf("stats: %s", st)
	}
	checkInvariant(t, st)
	if got := bytes.Count(fb.Bytes(), []byte{'\n'}); got != n {
		t.Fatalf("fallback lines=%d, want %d", got, n)
	}
}

func TestEmitAfterCloseCountsDropped(t *testing.T) {
	var fb lockedBuffer
	s, err := New(Config{Fallback: &fb, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.Emit(report(0))
	st := s.Stats()
	if st.Emitted != 1 || st.Dropped != 1 {
		t.Fatalf("stats: %s", st)
	}
	// Idempotent Close.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBackoffScheduleIsDeterministicAndBounded(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		l := faultnet.NewListener()
		defer l.Close()
		newTestArchiver(l)
		l.RefuseNext(8)
		var mu sync.Mutex
		var ds []time.Duration
		s, err := New(Config{
			Dial: l.Dial, Seed: seed,
			// The breaker must not open: this test pins the backoff
			// schedule, so the record has to stay queued until the
			// ninth dial succeeds.
			BreakerFailures: 1 << 30,
			Fallback:        &lockedBuffer{},
			BackoffMin:      10 * time.Millisecond, BackoffMax: 80 * time.Millisecond,
			Sleep: func(d time.Duration) bool {
				mu.Lock()
				ds = append(ds, d)
				mu.Unlock()
				return true
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Emit(report(0))
		waitFor(t, "delivery after 8 refusals", func() bool { return s.Stats().Delivered() == 1 })
		s.Close()
		mu.Lock()
		defer mu.Unlock()
		return append([]time.Duration(nil), ds...)
	}

	a, b := schedule(42), schedule(42)
	if len(a) < 8 {
		t.Fatalf("expected >=8 backoff sleeps, got %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff schedule not deterministic: %v vs %v", a, b)
		}
	}
	// Equal jitter keeps each delay within [base/2, base) where base
	// doubles from BackoffMin up to BackoffMax.
	base := 10 * time.Millisecond
	for i, d := range a {
		if d < base/2 || d >= base {
			t.Fatalf("sleep %d = %v outside [%v, %v)", i, d, base/2, base)
		}
		base *= 2
		if base > 80*time.Millisecond {
			base = 80 * time.Millisecond
		}
	}
	c := schedule(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds should jitter differently")
	}
}

// lockedBuffer is a bytes.Buffer safe for cross-goroutine use (the run
// loop writes, the test reads).
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}
