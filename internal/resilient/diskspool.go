package resilient

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ErrSpoolFull reports that appending a record would exceed the disk
// spool's byte cap; the caller degrades the record to the fallback
// writer instead.
var ErrSpoolFull = errors.New("resilient: disk spool full")

// SpoolFileName is the newline-delimited JSON file the shipper keeps
// under Config.SpoolDir.
const SpoolFileName = "reports.spool.ndjson"

// diskSpool is the durable middle tier: an append-only NDJSON file plus
// a replay cursor. It is used by exactly one goroutine (the shipper's
// run loop), so it needs no locking; concurrency-safe counters live in
// the Shipper.
//
// Layout: bytes [0, readOff) have been replayed and delivered; bytes
// [readOff, size) are pending. When everything pending has been
// delivered the file is truncated back to zero, so steady-state disk
// usage is nil. The cursor is process-lifetime only: after a crash the
// whole file is pending again, giving at-least-once delivery across
// restarts (see DESIGN.md, shipping-path failure model).
type diskSpool struct {
	path    string
	max     int64 // cap on pending bytes (size - readOff)
	w       *os.File
	r       *os.File
	br      *bufio.Reader
	size    int64
	readOff int64
	pending int64  // complete records in [readOff, size)
	peeked  []byte // the record at the cursor, once read
}

// openDiskSpool opens (creating if needed) the spool under dir. A
// trailing partial line — a crash during a previous spill — is
// truncated away so it cannot merge with the next appended record.
// Complete leftover records are counted as pending and will replay on
// the first connect.
func openDiskSpool(dir string, max int64) (*diskSpool, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resilient: spool dir: %w", err)
	}
	path := filepath.Join(dir, SpoolFileName)
	existing, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("resilient: spool file: %w", err)
	}
	if cut := len(existing); cut > 0 && existing[cut-1] != '\n' {
		// Drop the torn trailing line.
		if i := bytes.LastIndexByte(existing, '\n'); i >= 0 {
			existing = existing[:i+1]
		} else {
			existing = nil
		}
		if err := os.WriteFile(path, existing, 0o644); err != nil {
			return nil, fmt.Errorf("resilient: truncating torn spool line: %w", err)
		}
	}
	w, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resilient: spool append handle: %w", err)
	}
	r, err := os.Open(path)
	if err != nil {
		_ = w.Close() // unwound before any write; the open error wins
		return nil, fmt.Errorf("resilient: spool read handle: %w", err)
	}
	d := &diskSpool{
		path:    path,
		max:     max,
		w:       w,
		r:       r,
		br:      bufio.NewReader(r),
		size:    int64(len(existing)),
		pending: int64(bytes.Count(existing, []byte{'\n'})),
	}
	return d, nil
}

// append adds one newline-terminated record, enforcing the pending-byte
// cap.
func (d *diskSpool) append(line []byte) error {
	if d.size-d.readOff+int64(len(line)) > d.max {
		return ErrSpoolFull
	}
	n, err := d.w.Write(line)
	d.size += int64(n)
	if err != nil {
		return err
	}
	if n != len(line) {
		return fmt.Errorf("resilient: short spool write (%d of %d bytes)", n, len(line))
	}
	d.pending++
	return nil
}

// peek returns the record at the replay cursor without advancing it;
// repeated peeks (e.g. across a reconnect) return the same record.
// It returns nil when nothing is pending.
func (d *diskSpool) peek() ([]byte, error) {
	if d.peeked != nil {
		return d.peeked, nil
	}
	if d.pending == 0 {
		return nil, nil
	}
	line, err := d.br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("resilient: spool read: %w", err)
	}
	d.peeked = line
	return line, nil
}

// delivered advances the cursor past the peeked record; once the spool
// drains completely the file is truncated back to empty.
func (d *diskSpool) delivered() error {
	if d.peeked == nil {
		return fmt.Errorf("resilient: delivered without peek")
	}
	d.readOff += int64(len(d.peeked))
	d.peeked = nil
	d.pending--
	if d.pending == 0 && d.readOff == d.size {
		if err := d.w.Truncate(0); err != nil {
			return fmt.Errorf("resilient: truncating drained spool: %w", err)
		}
		if _, err := d.r.Seek(0, 0); err != nil {
			return fmt.Errorf("resilient: rewinding drained spool: %w", err)
		}
		d.br.Reset(d.r)
		d.size, d.readOff = 0, 0
	}
	return nil
}

func (d *diskSpool) close() error {
	rerr := d.r.Close()
	werr := d.w.Close()
	if werr != nil {
		return werr
	}
	return rerr
}
