package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestJainFairnessEqualAllocations(t *testing.T) {
	if f := JainFairness([]float64{5, 5, 5}); math.Abs(f-1) > 1e-12 {
		t.Fatalf("equal allocations must give 1, got %f", f)
	}
}

func TestJainFairnessMonopoly(t *testing.T) {
	// One flow hogging everything: F = 1/N.
	f := JainFairness([]float64{10, 0, 0, 0})
	if math.Abs(f-0.25) > 1e-12 {
		t.Fatalf("monopoly with N=4 must give 0.25, got %f", f)
	}
}

func TestJainFairnessPaperExample(t *testing.T) {
	// Two flows at parity, one at half: F = (2.5)^2 / (3*2.25) = 0.926.
	f := JainFairness([]float64{1, 1, 0.5})
	want := 2.5 * 2.5 / (3 * 2.25)
	if math.Abs(f-want) > 1e-12 {
		t.Fatalf("got %f, want %f", f, want)
	}
}

func TestJainFairnessEdgeCases(t *testing.T) {
	if JainFairness(nil) != 0 {
		t.Fatal("empty input must give 0")
	}
	if JainFairness([]float64{0, 0}) != 0 {
		t.Fatal("all-zero input must give 0")
	}
	if JainFairness([]float64{7}) != 1 {
		t.Fatal("single flow is trivially fair")
	}
}

func TestJainFairnessBoundsProperty(t *testing.T) {
	// 1/N <= F <= 1 for any non-negative, non-all-zero allocation.
	f := func(a, b, c, d uint16) bool {
		x := []float64{float64(a), float64(b), float64(c), float64(d)}
		sum := x[0] + x[1] + x[2] + x[3]
		if sum == 0 {
			return JainFairness(x) == 0
		}
		v := JainFairness(x)
		return v >= 0.25-1e-9 && v <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestJainFairnessScaleInvariance(t *testing.T) {
	x := []float64{3, 7, 2, 9}
	y := []float64{30, 70, 20, 90}
	if math.Abs(JainFairness(x)-JainFairness(y)) > 1e-12 {
		t.Fatal("fairness must be scale invariant")
	}
}

func TestUtilization(t *testing.T) {
	if u := Utilization([]float64{4e9, 5e9}, 10e9); math.Abs(u-0.9) > 1e-12 {
		t.Fatalf("u=%f", u)
	}
	if u := Utilization([]float64{20e9}, 10e9); u != 1 {
		t.Fatalf("must clamp to 1, got %f", u)
	}
	if Utilization(nil, 10e9) != 0 || Utilization([]float64{1}, 0) != 0 {
		t.Fatal("edge cases wrong")
	}
}

func TestSeriesAppendAndQuery(t *testing.T) {
	s := NewSeries("tput")
	for i := 0; i < 10; i++ {
		s.Append(simtime.Time(i)*simtime.Second, float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("len=%d", s.Len())
	}
	if s.Last().V != 9 {
		t.Fatalf("last=%v", s.Last())
	}
	mid := s.Between(3*simtime.Second, 6*simtime.Second)
	if len(mid) != 3 || mid[0].V != 3 || mid[2].V != 5 {
		t.Fatalf("between: %v", mid)
	}
}

func TestSeriesRejectsTimeTravel(t *testing.T) {
	s := NewSeries("x")
	s.Append(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("descending timestamps must panic")
		}
	}()
	s.Append(5, 2)
}

func TestSeriesStats(t *testing.T) {
	s := NewSeries("x")
	for _, v := range []float64{2, 8, 5} {
		s.Append(s.Last().T+1, v)
	}
	if s.Max() != 8 || s.Min() != 2 || s.Mean() != 5 {
		t.Fatalf("max=%f min=%f mean=%f", s.Max(), s.Min(), s.Mean())
	}
	empty := NewSeries("e")
	if empty.Max() != 0 || empty.Min() != 0 || empty.Mean() != 0 {
		t.Fatal("empty series stats must be 0")
	}
}

func TestSeriesValues(t *testing.T) {
	s := NewSeries("x")
	s.Append(1, 10)
	s.Append(2, 20)
	v := s.Values()
	if len(v) != 2 || v[0] != 10 || v[1] != 20 {
		t.Fatalf("values: %v", v)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(vals, 50); math.Abs(p-5.5) > 1e-9 {
		t.Fatalf("p50=%f", p)
	}
	if p := Percentile(vals, 0); p != 1 {
		t.Fatalf("p0=%f", p)
	}
	if p := Percentile(vals, 100); p != 10 {
		t.Fatalf("p100=%f", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile must be 0")
	}
	// Input must not be mutated.
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 {
		t.Fatal("Percentile mutated its input")
	}
}
