package metrics

import (
	"testing"

	"repro/internal/simtime"
)

// TestSeriesEmpty pins every accessor's zero-value behaviour: the
// experiment harness queries series before the first report interval
// lands, so all of these must be total functions.
func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("empty")
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Last(); got != (Point{}) {
		t.Fatalf("Last = %+v, want zero Point", got)
	}
	if got := s.Between(0, simtime.Second); len(got) != 0 {
		t.Fatalf("Between on empty = %v", got)
	}
	if got := s.Values(); len(got) != 0 {
		t.Fatalf("Values on empty = %v", got)
	}
	if s.Max() != 0 || s.Min() != 0 || s.Mean() != 0 {
		t.Fatalf("empty stats: max=%v min=%v mean=%v", s.Max(), s.Min(), s.Mean())
	}
}

// TestSeriesSinglePoint pins the one-sample case, where min == max ==
// mean == last and every Between window either contains the point or
// not.
func TestSeriesSinglePoint(t *testing.T) {
	s := NewSeries("single")
	s.Append(3*simtime.Second, -7.5)
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Last(); got.T != 3*simtime.Second || got.V != -7.5 {
		t.Fatalf("Last = %+v", got)
	}
	// A negative value exercises Max's first-element seeding: a naive
	// "m := 0" maximum would wrongly report 0.
	if s.Max() != -7.5 || s.Min() != -7.5 || s.Mean() != -7.5 {
		t.Fatalf("stats: max=%v min=%v mean=%v, want all -7.5", s.Max(), s.Min(), s.Mean())
	}
	if got := s.Between(0, 3*simtime.Second); len(got) != 0 {
		t.Fatalf("half-open window must exclude T==to: %v", got)
	}
	if got := s.Between(3*simtime.Second, 4*simtime.Second); len(got) != 1 {
		t.Fatalf("window starting at the sample must include it: %v", got)
	}
}

// TestSeriesNonMonotonicAppend pins the append contract from both
// sides: strictly decreasing timestamps panic (a scheduling bug
// upstream must not be silently recorded), while equal timestamps are
// legal — two reports can legitimately land in the same tick.
func TestSeriesNonMonotonicAppend(t *testing.T) {
	s := NewSeries("ties")
	s.Append(simtime.Second, 1)
	s.Append(simtime.Second, 2) // tie: allowed
	s.Append(simtime.Second, 3)
	if s.Len() != 3 || s.Last().V != 3 {
		t.Fatalf("ties rejected: len=%d last=%+v", s.Len(), s.Last())
	}
	if got := s.Between(simtime.Second, simtime.Second+1); len(got) != 3 {
		t.Fatalf("Between must return all tied samples: %v", got)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("decreasing timestamp must panic")
		}
		if s.Len() != 3 {
			t.Fatalf("failed append mutated the series: len=%d", s.Len())
		}
	}()
	s.Append(simtime.Second-1, 4)
}
