// Package metrics provides the small numerical toolbox the control
// plane and the experiment harness share: time series containers and
// the aggregate statistics the paper's §5.3 derives in the switch
// control plane (Jain's fairness index, link utilisation).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/simtime"
)

// Point is one timestamped sample.
type Point struct {
	T simtime.Time
	V float64
}

// Series is an append-only time series, the unit every figure in the
// paper plots.
type Series struct {
	Name   string
	Points []Point
}

// NewSeries creates an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Append adds a sample; timestamps must be non-decreasing.
func (s *Series) Append(t simtime.Time, v float64) {
	if n := len(s.Points); n > 0 && s.Points[n-1].T > t {
		panic(fmt.Sprintf("metrics: series %s: timestamp %v before %v", s.Name, t, s.Points[n-1].T))
	}
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Last returns the most recent sample, or a zero Point if empty.
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// Between returns the samples with T in [from, to).
func (s *Series) Between(from, to simtime.Time) []Point {
	lo := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= from })
	hi := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= to })
	return s.Points[lo:hi]
}

// Values extracts the sample values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Max returns the maximum value, or 0 for an empty series.
func (s *Series) Max() float64 {
	m := 0.0
	for i, p := range s.Points {
		if i == 0 || p.V > m {
			m = p.V
		}
	}
	return m
}

// Min returns the minimum value, or 0 for an empty series.
func (s *Series) Min() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].V
	for _, p := range s.Points {
		if p.V < m {
			m = p.V
		}
	}
	return m
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// JainFairness computes Jain's fairness index over per-flow resource
// allocations (Eq. 1 of the paper):
//
//	F = (Σ x_i)^2 / (N · Σ x_i^2)
//
// The result is 1 for perfectly equal allocations and approaches 1/N as
// one flow monopolises the resource. Zero-only inputs return 0.
func JainFairness(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, v := range x {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(x)) * sumSq)
}

// Utilization is the aggregate throughput over capacity, clamped to
// [0, 1].
func Utilization(throughputBps []float64, capacityBps float64) float64 {
	if capacityBps <= 0 {
		return 0
	}
	var sum float64
	for _, v := range throughputBps {
		sum += v
	}
	u := sum / capacityBps
	return math.Min(math.Max(u, 0), 1)
}

// Percentile returns the p-th percentile (0-100) using linear
// interpolation; the input is not modified.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
