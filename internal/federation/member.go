package federation

import (
	"repro/internal/controlplane"
	"repro/internal/genconfig"
)

// MemberRuntime is a member-side runtime-config holder: a
// genconfig-backed psconfig.Target whose generation sequence doubles
// as the member's reported config generation. A full collector embeds
// the same mechanics inside controlplane.ControlPlane; MemberRuntime
// serves coordination tests and thin members that track configuration
// without running a control loop.
type MemberRuntime struct {
	store *genconfig.Store[controlplane.RuntimeConfig]
}

// NewMemberRuntime seeds the runtime with an initial config
// generation.
func NewMemberRuntime(initial controlplane.RuntimeConfig) *MemberRuntime {
	return &MemberRuntime{store: genconfig.NewStore(initial)}
}

// Update implements psconfig.Target: the mutation runs against a
// scratch copy and an error publishes nothing, so each config-P4
// command applies transactionally.
func (m *MemberRuntime) Update(mut func(*controlplane.RuntimeConfig) error) error {
	_, err := m.store.Publish(func(cur controlplane.RuntimeConfig) (controlplane.RuntimeConfig, error) {
		if err := mut(&cur); err != nil {
			return cur, err
		}
		return cur, nil
	})
	return err
}

// Seq returns the live generation's sequence number — what the member
// reports as MemberInfo.Generation in heartbeats.
func (m *MemberRuntime) Seq() uint64 { return m.store.Seq() }

// Snapshot returns the live runtime config.
func (m *MemberRuntime) Snapshot() controlplane.RuntimeConfig { return m.store.Current() }

// Counters exposes the underlying generation accounting.
func (m *MemberRuntime) Counters() genconfig.Counters { return m.store.Counters() }
