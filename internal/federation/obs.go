package federation

import "repro/internal/obs"

// RegisterObs wires the coordinator's self-telemetry into r. One
// Collect callback renders the whole group from a single
// mutex-consistent snapshot, so every scrape sees coherent membership
// counts (alive + suspect + dead == members) and event counters.
func (c *Coordinator) RegisterObs(r *obs.Registry) {
	r.Collect(func(w obs.MetricWriter) {
		c.mu.Lock()
		total := uint64(len(c.members))
		seq := c.fleetSeq
		logLen := uint64(len(c.log))
		ct := c.counters
		var alive, suspect, dead uint64
		for _, m := range c.members {
			switch m.state {
			case StateAlive:
				alive++
			case StateSuspect:
				suspect++
			case StateDead:
				dead++
			}
		}
		c.mu.Unlock()
		w.Gauge("p4_fed_members", "Registered fleet members.", total)
		w.Gauge("p4_fed_members_alive", "Members in the Alive liveness state.", alive)
		w.Gauge("p4_fed_members_suspect", "Members in the Suspect liveness state.", suspect)
		w.Gauge("p4_fed_members_dead", "Members in the Dead liveness state.", dead)
		w.Gauge("p4_fed_fleet_seq", "Fleet-wide config generation (latest fan-out sequence).", seq)
		w.Gauge("p4_fed_command_log", "Commands retained in the fleet command log.", logLen)
		w.Gauge("p4_fed_registered", "First-time member registrations.", ct.Registered)
		w.Gauge("p4_fed_rejoined", "Re-registrations by Suspect or Dead members.", ct.Rejoined)
		w.Gauge("p4_fed_duplicate_registrations", "Re-registrations by members still Alive.", ct.DuplicateRegistrations)
		w.Gauge("p4_fed_heartbeats", "Heartbeats accepted from known members.", ct.HeartbeatsAccepted)
		w.Gauge("p4_fed_unknown_heartbeats", "Heartbeats rejected from unregistered members.", ct.UnknownHeartbeats)
		w.Gauge("p4_fed_stale_heartbeats", "Heartbeats reporting a config generation behind the fleet.", ct.StaleHeartbeats)
		w.Gauge("p4_fed_suspect_transitions", "Alive-to-Suspect liveness degradations.", ct.SuspectTransitions)
		w.Gauge("p4_fed_dead_transitions", "Transitions into the Dead state.", ct.DeadTransitions)
		w.Gauge("p4_fed_recovered", "Returns to Alive from Suspect or Dead.", ct.Recovered)
		w.Gauge("p4_fed_fanouts", "Fleet-wide configuration fan-outs.", ct.FanOuts)
		w.Gauge("p4_fed_fanout_ok", "Per-member fan-out applications that succeeded.", ct.FanOutOK)
		w.Gauge("p4_fed_fanout_failed", "Per-member fan-out applications that failed.", ct.FanOutFailed)
		w.Gauge("p4_fed_fanout_skipped", "Members skipped by fan-out (not Alive or deselected).", ct.FanOutSkipped)
		w.Gauge("p4_fed_reconciled", "Commands replayed to lagging members.", ct.Reconciled)
		w.Gauge("p4_fed_reconcile_failures", "Reconciliation replays that failed.", ct.ReconcileFailures)
	})
}
