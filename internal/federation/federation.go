// Package federation is the fleet layer (DESIGN.md §5.9): many
// switches, one observatory. Real Science DMZ deployments run a tap
// point per site border, not one; the coordinator in this package
// turns N autonomous collector loops into a single observable fleet
// without putting itself on any measurement path.
//
// The coordinator keeps a member registry with deadline-based liveness
// (heartbeat → Alive, missed deadlines → Suspect → Dead, counted
// transitions), fans configuration out to members through the existing
// psconfig wire channel with per-member generation tracking (a member
// that fails mid-fan-out keeps its previous config intact — each
// member's application is genconfig-transactional — and the registry
// records exactly which generation each member runs), and reconciles
// rejoining members by replaying the fleet command log they missed.
// Membership RPCs ride the internal/p4runtime JSON-lines transport
// (OpMemberRegister/OpMemberHeartbeat/OpMemberList), so cmd/p4rt can
// inspect a live fleet.
//
// Time is explicit throughout: every liveness decision takes a
// simtime.Time argument or derives one from the injected Now hook, so
// fleet behaviour is deterministic under test and in the witness-bearing
// federation experiment (experiments.RunFederation).
package federation

import (
	"fmt"

	"repro/internal/psconfig"
	"repro/internal/simtime"
)

// Identity names a fleet member: which site it serves and which switch
// within the site it is.
type Identity struct {
	Site   string
	Switch string
}

// String renders the identity as "site/switch".
func (id Identity) String() string { return id.Site + "/" + id.Switch }

// Less orders identities by site, then switch — the deterministic
// fleet order used for listings and fan-out.
func (id Identity) Less(o Identity) bool {
	if id.Site != o.Site {
		return id.Site < o.Site
	}
	return id.Switch < o.Switch
}

// State is a member's liveness state.
type State int

// The liveness states. A member is Alive while heartbeats arrive
// before SuspectAfter, Suspect once they stop, Dead after DeadAfter of
// silence. Any heartbeat or re-registration returns it to Alive.
const (
	StateAlive State = iota
	StateSuspect
	StateDead
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Applier pushes one config-P4 command at a member's config channel.
// The production applier dials the member's psconfig wire address;
// tests substitute direct in-process application.
type Applier func(configAddr string, cmd psconfig.Command) error

// Config tunes a Coordinator. The zero value is usable: every field
// has a default.
type Config struct {
	// SuspectAfter is the silence (no heartbeat) after which an Alive
	// member turns Suspect (default 2 simulated seconds).
	SuspectAfter simtime.Time
	// DeadAfter is the silence after which a member turns Dead
	// (default 5 simulated seconds). Must exceed SuspectAfter.
	DeadAfter simtime.Time
	// Apply pushes one command to one member during fan-out and
	// reconciliation. Nil means fan-out only records the command in
	// the fleet log (members pull it on reconcile via a later Apply).
	Apply Applier
	// Now supplies the coordinator's clock for membership RPCs that
	// arrive without an explicit timestamp (the p4runtime transport
	// path). Nil defaults to the coordinator's logical clock, which
	// advances only via Tick — fully deterministic.
	Now func() simtime.Time
}

func (c Config) withDefaults() Config {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2 * simtime.Second
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = 5 * simtime.Second
		if c.DeadAfter <= c.SuspectAfter {
			c.DeadAfter = 2 * c.SuspectAfter
		}
	}
	return c
}

// Counters is a snapshot of the coordinator's event accounting — the
// counted state transitions DESIGN.md §5.9 requires, exposed through
// internal/obs by RegisterObs.
type Counters struct {
	// Registered counts first-time member registrations.
	Registered uint64
	// Rejoined counts re-registrations by Suspect or Dead members.
	Rejoined uint64
	// DuplicateRegistrations counts re-registrations by members that
	// were still Alive (a restarted collector racing its old self; the
	// new incarnation wins).
	DuplicateRegistrations uint64
	// HeartbeatsAccepted counts heartbeats from known members.
	HeartbeatsAccepted uint64
	// UnknownHeartbeats counts heartbeats rejected because the member
	// never registered (or registered under a different identity).
	UnknownHeartbeats uint64
	// StaleHeartbeats counts heartbeats whose reported config
	// generation lags the fleet generation — the rejoin-with-stale-
	// config signal that triggers reconciliation.
	StaleHeartbeats uint64
	// SuspectTransitions and DeadTransitions count liveness
	// degradations; Recovered counts returns to Alive from either.
	SuspectTransitions uint64
	DeadTransitions    uint64
	Recovered          uint64
	// FanOuts counts FanOut calls; the per-member outcomes split into
	// applied (FanOutOK), failed (FanOutFailed, member config left on
	// its previous generation) and skipped non-Alive members
	// (FanOutSkipped).
	FanOuts       uint64
	FanOutOK      uint64
	FanOutFailed  uint64
	FanOutSkipped uint64
	// Reconciled counts commands replayed to lagging members;
	// ReconcileFailures counts replay attempts that failed (the member
	// stays lagging and keeps its generation).
	Reconciled        uint64
	ReconcileFailures uint64
}
