package federation

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/obs"
	"repro/internal/p4runtime"
	"repro/internal/psconfig"
	"repro/internal/simtime"
)

func info(site, sw string, gen uint64) p4runtime.MemberInfo {
	return p4runtime.MemberInfo{Site: site, Switch: sw, ConfigAddr: site + "/" + sw + ":config", Generation: gen}
}

func at(s int) simtime.Time { return simtime.Time(s) * simtime.Second }

func TestIdentityOrderAndString(t *testing.T) {
	a := Identity{Site: "alpha", Switch: "sw2"}
	b := Identity{Site: "beta", Switch: "sw1"}
	if a.String() != "alpha/sw2" {
		t.Fatalf("string: %s", a)
	}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("site ordering broken")
	}
	c := Identity{Site: "alpha", Switch: "sw1"}
	if !c.Less(a) {
		t.Fatal("switch ordering broken")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{StateAlive: "alive", StateSuspect: "suspect", StateDead: "dead", State(9): "state(9)"} {
		if s.String() != want {
			t.Fatalf("%d: %s", int(s), s)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	c := NewCoordinator(Config{})
	if _, err := c.RegisterAt(p4runtime.MemberInfo{Site: "", Switch: "sw1"}, 0); err == nil {
		t.Fatal("empty site must fail")
	}
	if _, err := c.RegisterAt(p4runtime.MemberInfo{Site: "a", Switch: ""}, 0); err == nil {
		t.Fatal("empty switch must fail")
	}
}

func TestLivenessLifecycle(t *testing.T) {
	c := NewCoordinator(Config{SuspectAfter: 2 * simtime.Second, DeadAfter: 4 * simtime.Second})
	if _, err := c.RegisterAt(info("alpha", "sw1", 0), at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterAt(info("alpha", "sw2", 0), at(0)); err != nil {
		t.Fatal(err)
	}

	// sw1 heartbeats, sw2 goes silent.
	if _, err := c.HeartbeatAt(info("alpha", "sw1", 0), at(1)); err != nil {
		t.Fatal(err)
	}
	c.Tick(at(2)) // sw2 silence = 2s → suspect
	if a, s, d := c.States(); a != 1 || s != 1 || d != 0 {
		t.Fatalf("states: alive=%d suspect=%d dead=%d", a, s, d)
	}
	if _, err := c.HeartbeatAt(info("alpha", "sw1", 0), at(3)); err != nil {
		t.Fatal(err)
	}
	c.Tick(at(4)) // sw2 silence = 4s → dead
	if a, s, d := c.States(); a != 1 || s != 0 || d != 1 {
		t.Fatalf("states: alive=%d suspect=%d dead=%d", a, s, d)
	}

	// A heartbeat from the dead member recovers it.
	if _, err := c.HeartbeatAt(info("alpha", "sw2", 0), at(5)); err != nil {
		t.Fatal(err)
	}
	if a, _, d := c.States(); a != 2 || d != 0 {
		t.Fatalf("recovery failed: alive=%d dead=%d", a, d)
	}
	ct := c.Counters()
	if ct.SuspectTransitions != 1 || ct.DeadTransitions != 1 || ct.Recovered != 1 {
		t.Fatalf("counters: %+v", ct)
	}
}

func TestSilentAliveGoesStraightToDead(t *testing.T) {
	c := NewCoordinator(Config{SuspectAfter: simtime.Second, DeadAfter: 2 * simtime.Second})
	if _, err := c.RegisterAt(info("a", "s", 0), at(0)); err != nil {
		t.Fatal(err)
	}
	c.Tick(at(10)) // far beyond both deadlines in one tick
	if _, _, d := c.States(); d != 1 {
		t.Fatal("member not dead")
	}
	ct := c.Counters()
	if ct.SuspectTransitions != 1 || ct.DeadTransitions != 1 {
		t.Fatalf("straight-to-dead must count both transitions: %+v", ct)
	}
}

func TestUnknownHeartbeatRejected(t *testing.T) {
	c := NewCoordinator(Config{})
	if _, err := c.HeartbeatAt(info("a", "ghost", 0), at(1)); err == nil {
		t.Fatal("unknown heartbeat must fail")
	}
	if ct := c.Counters(); ct.UnknownHeartbeats != 1 {
		t.Fatalf("counters: %+v", ct)
	}
}

func TestDuplicateAndRejoinRegistration(t *testing.T) {
	c := NewCoordinator(Config{SuspectAfter: simtime.Second, DeadAfter: 2 * simtime.Second})
	ack1, err := c.RegisterAt(info("a", "s", 0), at(0))
	if err != nil {
		t.Fatal(err)
	}
	// Still alive: duplicate registration, new incarnation wins.
	ack2, err := c.RegisterAt(info("a", "s", 0), at(0))
	if err != nil {
		t.Fatal(err)
	}
	if ack2.Incarnation <= ack1.Incarnation {
		t.Fatalf("incarnation did not advance: %d → %d", ack1.Incarnation, ack2.Incarnation)
	}
	// Dead, then re-register: a rejoin.
	c.Tick(at(5))
	if _, err := c.RegisterAt(info("a", "s", 0), at(5)); err != nil {
		t.Fatal(err)
	}
	ct := c.Counters()
	if ct.DuplicateRegistrations != 1 || ct.Rejoined != 1 || ct.Registered != 1 {
		t.Fatalf("counters: %+v", ct)
	}
	if a, _, _ := c.States(); a != 1 {
		t.Fatal("rejoined member not alive")
	}
}

func mustCmd(t *testing.T, args ...string) psconfig.Command {
	t.Helper()
	cmd, err := psconfig.ParseConfigP4(args)
	if err != nil {
		t.Fatal(err)
	}
	return cmd
}

// applyLog is a test Applier recording per-address applications and
// failing configured addresses.
type applyLog struct {
	applied map[string]int
	fail    map[string]bool
}

func (a *applyLog) apply(addr string, cmd psconfig.Command) error {
	if a.fail[addr] {
		return fmt.Errorf("config channel down")
	}
	if a.applied == nil {
		a.applied = map[string]int{}
	}
	a.applied[addr]++
	return nil
}

func TestFanOutTracksPerMemberGenerations(t *testing.T) {
	al := &applyLog{fail: map[string]bool{"a/s2:config": true}}
	c := NewCoordinator(Config{Apply: al.apply})
	for _, sw := range []string{"s1", "s2", "s3"} {
		if _, err := c.RegisterAt(info("a", sw, 0), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	fr := c.FanOut(mustCmd(t, "--samples_per_second", "4"), nil)
	if fr.Seq != 1 || len(fr.Applied) != 2 || len(fr.Failed) != 1 {
		t.Fatalf("fanout: %+v", fr)
	}
	if fr.Failed[0] != (Identity{Site: "a", Switch: "s2"}) {
		t.Fatalf("wrong failure: %+v", fr.Failed)
	}
	// The failed member's generation did not advance: it is lagging.
	lag := c.Lagging()
	if len(lag) != 1 || lag[0].Switch != "s2" {
		t.Fatalf("lagging: %+v", lag)
	}
	// Member list shows per-member generations.
	for _, m := range c.MemberList() {
		want := uint64(1)
		if m.Switch == "s2" {
			want = 0
		}
		if m.ConfigSeq != want {
			t.Fatalf("%s config_seq=%d want %d", m.Switch, m.ConfigSeq, want)
		}
	}
	// Channel recovers; reconciliation replays exactly the missed
	// command and the fleet converges.
	al.fail["a/s2:config"] = false
	n, err := c.Reconcile(Identity{Site: "a", Switch: "s2"})
	if err != nil || n != 1 {
		t.Fatalf("reconcile: n=%d err=%v", n, err)
	}
	if lag := c.Lagging(); len(lag) != 0 {
		t.Fatalf("still lagging: %+v", lag)
	}
	ct := c.Counters()
	if ct.FanOuts != 1 || ct.FanOutOK != 2 || ct.FanOutFailed != 1 || ct.Reconciled != 1 {
		t.Fatalf("counters: %+v", ct)
	}
}

func TestFanOutSkipsNonAliveAndSelector(t *testing.T) {
	al := &applyLog{}
	c := NewCoordinator(Config{SuspectAfter: simtime.Second, DeadAfter: 2 * simtime.Second, Apply: al.apply})
	if _, err := c.RegisterAt(info("a", "s1", 0), at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterAt(info("a", "s2", 0), at(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterAt(info("b", "s1", 0), at(0)); err != nil {
		t.Fatal(err)
	}
	// s2 goes silent and dies; a selector also deselects site b.
	if _, err := c.HeartbeatAt(info("a", "s1", 0), at(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.HeartbeatAt(info("b", "s1", 0), at(3)); err != nil {
		t.Fatal(err)
	}
	c.Tick(at(3))
	fr := c.FanOut(mustCmd(t, "--samples_per_second", "2"), func(id Identity) bool { return id.Site == "a" })
	if len(fr.Applied) != 1 || len(fr.Skipped) != 2 {
		t.Fatalf("fanout: %+v", fr)
	}
	if al.applied["a/s1:config"] != 1 || len(al.applied) != 1 {
		t.Fatalf("applied: %+v", al.applied)
	}
}

func TestReconcileStopsAtFirstFailure(t *testing.T) {
	al := &applyLog{}
	c := NewCoordinator(Config{Apply: al.apply})
	if _, err := c.RegisterAt(info("a", "s1", 0), at(0)); err != nil {
		t.Fatal(err)
	}
	// Two fan-outs while the member's channel is down.
	al.fail = map[string]bool{"a/s1:config": true}
	c.FanOut(mustCmd(t, "--samples_per_second", "4"), nil)
	c.FanOut(mustCmd(t, "--samples_per_second", "8"), nil)
	// Reconcile with the channel still down: zero replayed, counted.
	if n, err := c.Reconcile(Identity{Site: "a", Switch: "s1"}); err == nil || n != 0 {
		t.Fatalf("reconcile should fail: n=%d err=%v", n, err)
	}
	al.fail["a/s1:config"] = false
	n, err := c.Reconcile(Identity{Site: "a", Switch: "s1"})
	if err != nil || n != 2 {
		t.Fatalf("reconcile: n=%d err=%v", n, err)
	}
	if ct := c.Counters(); ct.ReconcileFailures != 1 || ct.Reconciled != 2 {
		t.Fatalf("counters: %+v", ct)
	}
	if _, err := c.Reconcile(Identity{Site: "zz", Switch: "zz"}); err == nil {
		t.Fatal("unknown member must fail")
	}
}

func TestStaleGenerationDetection(t *testing.T) {
	al := &applyLog{}
	c := NewCoordinator(Config{Apply: al.apply})
	if _, err := c.RegisterAt(info("a", "s1", 0), at(0)); err != nil {
		t.Fatal(err)
	}
	c.FanOut(mustCmd(t, "--samples_per_second", "4"), nil)
	// A heartbeat still reporting generation 0 is stale.
	ack, err := c.HeartbeatAt(info("a", "s1", 0), at(1))
	if err != nil {
		t.Fatal(err)
	}
	if ack.FleetSeq != 1 {
		t.Fatalf("ack: %+v", ack)
	}
	if ct := c.Counters(); ct.StaleHeartbeats != 1 {
		t.Fatalf("counters: %+v", ct)
	}
}

func TestMembershipInterfaceUsesLogicalClock(t *testing.T) {
	c := NewCoordinator(Config{SuspectAfter: simtime.Second, DeadAfter: 2 * simtime.Second})
	var _ p4runtime.Membership = c
	if _, err := c.MemberRegister(info("a", "s1", 0)); err != nil {
		t.Fatal(err)
	}
	c.Tick(at(10)) // clock advances; member registered at 0 → dead
	if _, _, d := c.States(); d != 1 {
		t.Fatal("member should be dead")
	}
	// Heartbeat through the interface stamps at the ticked clock and
	// recovers the member.
	if _, err := c.MemberHeartbeat(info("a", "s1", 0)); err != nil {
		t.Fatal(err)
	}
	c.Tick(at(10)) // same instant: no silence accumulated
	if a, _, _ := c.States(); a != 1 {
		t.Fatal("member should be alive")
	}
	ms := c.MemberList()
	if len(ms) != 1 || ms[0].State != "alive" {
		t.Fatalf("list: %+v", ms)
	}
}

func TestConfigNowHook(t *testing.T) {
	now := at(0)
	c := NewCoordinator(Config{SuspectAfter: simtime.Second, DeadAfter: 2 * simtime.Second, Now: func() simtime.Time { return now }})
	if _, err := c.MemberRegister(info("a", "s1", 0)); err != nil {
		t.Fatal(err)
	}
	now = at(3)
	if _, err := c.MemberHeartbeat(info("a", "s1", 0)); err != nil {
		t.Fatal(err)
	}
	c.Tick(at(3))
	if a, _, _ := c.States(); a != 1 {
		t.Fatal("hook-stamped heartbeat ignored")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.SuspectAfter <= 0 || cfg.DeadAfter <= cfg.SuspectAfter {
		t.Fatalf("defaults: %+v", cfg)
	}
	// A DeadAfter at or below SuspectAfter is repaired.
	cfg = Config{SuspectAfter: 10 * simtime.Second, DeadAfter: simtime.Second}.withDefaults()
	if cfg.DeadAfter <= cfg.SuspectAfter {
		t.Fatalf("defaults: %+v", cfg)
	}
}

func TestMemberRuntimeTransactional(t *testing.T) {
	mr := NewMemberRuntime(controlplane.RuntimeConfig{})
	if mr.Seq() != 0 {
		t.Fatalf("seq: %d", mr.Seq())
	}
	if err := mustCmd(t, "--metric", "throughput", "--samples_per_second", "4").Apply(mr); err != nil {
		t.Fatal(err)
	}
	if mr.Seq() != 1 {
		t.Fatalf("seq after apply: %d", mr.Seq())
	}
	before := mr.Snapshot()
	// A failing mutation publishes nothing: seq and value unchanged.
	if err := mr.Update(func(rc *controlplane.RuntimeConfig) error { return fmt.Errorf("boom") }); err == nil {
		t.Fatal("error must propagate")
	}
	if mr.Seq() != 1 || mr.Snapshot() != before {
		t.Fatal("failed update must not publish")
	}
	if ct := mr.Counters(); ct.Published != 1 {
		t.Fatalf("genconfig counters: %+v", ct)
	}
}

func TestFanOutOrderIsDeterministic(t *testing.T) {
	var order []string
	c := NewCoordinator(Config{Apply: func(addr string, cmd psconfig.Command) error {
		order = append(order, addr)
		return nil
	}})
	// Register in shuffled order; fan-out must visit sorted.
	for _, sw := range []string{"s3", "s1", "s2"} {
		if _, err := c.RegisterAt(info("a", sw, 0), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	c.FanOut(mustCmd(t, "--samples_per_second", "1"), nil)
	if strings.Join(order, ",") != "a/s1:config,a/s2:config,a/s3:config" {
		t.Fatalf("order: %v", order)
	}
}

func TestRegisterObsScrape(t *testing.T) {
	al := &applyLog{}
	c := NewCoordinator(Config{Apply: al.apply})
	if _, err := c.RegisterAt(info("a", "s1", 0), at(0)); err != nil {
		t.Fatal(err)
	}
	c.FanOut(mustCmd(t, "--samples_per_second", "4"), nil)
	if c.FleetSeq() != 1 {
		t.Fatalf("fleet seq: %d", c.FleetSeq())
	}
	r := obs.NewRegistry()
	c.RegisterObs(r)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"p4_fed_members 1",
		"p4_fed_members_alive 1",
		"p4_fed_fleet_seq 1",
		"p4_fed_command_log 1",
		"p4_fed_registered 1",
		"p4_fed_fanout_ok 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
}
