package federation

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/p4runtime"
	"repro/internal/psconfig"
	"repro/internal/simtime"
)

// member is one registry entry.
type member struct {
	id          Identity
	state       State
	incarnation uint64
	configAddr  string
	lastBeat    simtime.Time
	// configSeq is the last fleet command sequence this member is
	// known to have applied (via fan-out or reconciliation).
	configSeq uint64
	// reportedGen is the generation the member itself claimed in its
	// latest register/heartbeat — the rejoin-staleness signal.
	reportedGen uint64
}

// fleetCommand is one fan-out entry in the fleet command log.
type fleetCommand struct {
	seq uint64
	cmd psconfig.Command
}

// Coordinator is the fleet's membership and configuration authority.
// It sits off the measurement path: members measure and ship reports
// autonomously whether or not the coordinator is reachable, and the
// coordinator's only write path into a member is the psconfig config
// channel, where each command applies transactionally.
//
// All methods are safe for concurrent use. Coordinator implements
// p4runtime.Membership, so it can be mounted on a p4runtime.Server and
// spoken to by cmd/p4rt.
type Coordinator struct {
	mu       sync.Mutex
	cfg      Config
	members  map[Identity]*member
	fleetSeq uint64
	log      []fleetCommand
	clock    simtime.Time // logical clock, advanced by Tick
	nextInc  uint64
	counters Counters
}

// NewCoordinator builds an empty registry with cfg (zero value OK).
func NewCoordinator(cfg Config) *Coordinator {
	return &Coordinator{
		cfg:     cfg.withDefaults(),
		members: make(map[Identity]*member),
	}
}

// now returns the coordinator's idea of the current time under c.mu.
func (c *Coordinator) now() simtime.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	return c.clock
}

// RegisterAt admits (or re-admits) a member at an explicit time. A new
// identity registers; a Suspect/Dead identity rejoins; an Alive
// identity re-registering is counted as a duplicate and the new
// incarnation wins. The member's reported config generation seeds its
// per-member generation tracking, so a rejoin with stale config is
// visible immediately.
func (c *Coordinator) RegisterAt(info p4runtime.MemberInfo, now simtime.Time) (p4runtime.MemberAck, error) {
	if info.Site == "" || info.Switch == "" {
		return p4runtime.MemberAck{}, fmt.Errorf("federation: register: empty site or switch")
	}
	id := Identity{Site: info.Site, Switch: info.Switch}
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	if !ok {
		m = &member{id: id}
		c.members[id] = m
		c.counters.Registered++
	} else if m.state == StateAlive {
		c.counters.DuplicateRegistrations++
	} else {
		c.counters.Rejoined++
		c.counters.Recovered++
	}
	c.nextInc++
	m.incarnation = c.nextInc
	m.state = StateAlive
	m.lastBeat = now
	m.configAddr = info.ConfigAddr
	m.configSeq = info.Generation
	m.reportedGen = info.Generation
	if info.Generation < c.fleetSeq {
		c.counters.StaleHeartbeats++
	}
	return p4runtime.MemberAck{Incarnation: m.incarnation, FleetSeq: c.fleetSeq}, nil
}

// HeartbeatAt refreshes a member's liveness deadline at an explicit
// time. Unknown members are rejected (they must register first); a
// Suspect or Dead member recovers to Alive. The ack carries the fleet
// config generation so the member can see it lags.
func (c *Coordinator) HeartbeatAt(info p4runtime.MemberInfo, now simtime.Time) (p4runtime.MemberAck, error) {
	id := Identity{Site: info.Site, Switch: info.Switch}
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	if !ok {
		c.counters.UnknownHeartbeats++
		return p4runtime.MemberAck{}, fmt.Errorf("federation: heartbeat from unregistered member %s", id)
	}
	c.counters.HeartbeatsAccepted++
	if m.state != StateAlive {
		c.counters.Recovered++
		m.state = StateAlive
	}
	if now > m.lastBeat {
		m.lastBeat = now
	}
	m.reportedGen = info.Generation
	if info.ConfigAddr != "" {
		m.configAddr = info.ConfigAddr
	}
	if info.Generation < c.fleetSeq {
		c.counters.StaleHeartbeats++
	}
	return p4runtime.MemberAck{Incarnation: m.incarnation, FleetSeq: c.fleetSeq}, nil
}

// MemberRegister implements p4runtime.Membership using the injected
// clock (Config.Now, defaulting to the Tick-advanced logical clock).
func (c *Coordinator) MemberRegister(info p4runtime.MemberInfo) (p4runtime.MemberAck, error) {
	c.mu.Lock()
	now := c.now()
	c.mu.Unlock()
	return c.RegisterAt(info, now)
}

// MemberHeartbeat implements p4runtime.Membership.
func (c *Coordinator) MemberHeartbeat(info p4runtime.MemberInfo) (p4runtime.MemberAck, error) {
	c.mu.Lock()
	now := c.now()
	c.mu.Unlock()
	return c.HeartbeatAt(info, now)
}

// MemberList implements p4runtime.Membership: a registry snapshot in
// deterministic (site, switch) order.
func (c *Coordinator) MemberList() []p4runtime.MemberStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]p4runtime.MemberStatus, 0, len(c.members))
	for _, m := range c.sortedLocked() {
		out = append(out, p4runtime.MemberStatus{
			Site:        m.id.Site,
			Switch:      m.id.Switch,
			State:       m.state.String(),
			Incarnation: m.incarnation,
			ConfigSeq:   m.configSeq,
		})
	}
	return out
}

// sortedLocked returns members in (site, switch) order; c.mu held.
func (c *Coordinator) sortedLocked() []*member {
	ms := make([]*member, 0, len(c.members))
	for _, m := range c.members {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].id.Less(ms[j].id) })
	return ms
}

// Tick advances the logical clock and applies the liveness deadlines:
// Alive members silent past SuspectAfter turn Suspect, members silent
// past DeadAfter turn Dead. It returns the number of members that
// changed state.
func (c *Coordinator) Tick(now simtime.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now > c.clock {
		c.clock = now
	}
	changed := 0
	for _, m := range c.members {
		silence := now - m.lastBeat
		switch {
		case m.state != StateDead && silence >= c.cfg.DeadAfter:
			if m.state == StateAlive {
				c.counters.SuspectTransitions++
			}
			m.state = StateDead
			c.counters.DeadTransitions++
			changed++
		case m.state == StateAlive && silence >= c.cfg.SuspectAfter:
			m.state = StateSuspect
			c.counters.SuspectTransitions++
			changed++
		}
	}
	return changed
}

// FleetSeq returns the fleet-wide config generation: the sequence
// number of the latest fan-out.
func (c *Coordinator) FleetSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fleetSeq
}

// FanOutResult reports one fan-out's per-member outcomes.
type FanOutResult struct {
	// Seq is the fleet generation this fan-out established.
	Seq uint64
	// Applied lists members that acknowledged the command (their
	// configSeq advanced to Seq); Failed lists members whose
	// application errored (config left on their previous generation —
	// member-side application is transactional); Skipped lists
	// non-Alive members, which will catch up on reconciliation.
	Applied []Identity
	Failed  []Identity
	Skipped []Identity
}

// FanOut pushes cmd to every Alive member (selector nil) or to the
// Alive members selector approves, advancing the fleet generation and
// appending to the fleet command log. Members visit in deterministic
// (site, switch) order. A per-member failure does not abort the
// fan-out and cannot leave that member half-configured: the command
// either applied transactionally or the member keeps its previous
// generation, and the result says which.
func (c *Coordinator) FanOut(cmd psconfig.Command, selector func(Identity) bool) FanOutResult {
	c.mu.Lock()
	c.fleetSeq++
	seq := c.fleetSeq
	c.log = append(c.log, fleetCommand{seq: seq, cmd: cmd})
	c.counters.FanOuts++
	type target struct {
		id   Identity
		addr string
	}
	var targets []target
	var res FanOutResult
	res.Seq = seq
	for _, m := range c.sortedLocked() {
		if m.state != StateAlive || (selector != nil && !selector(m.id)) {
			res.Skipped = append(res.Skipped, m.id)
			c.counters.FanOutSkipped++
			continue
		}
		targets = append(targets, target{id: m.id, addr: m.configAddr})
	}
	apply := c.cfg.Apply
	c.mu.Unlock()

	for _, t := range targets {
		var err error
		if apply != nil {
			err = apply(t.addr, cmd)
		}
		c.mu.Lock()
		m := c.members[t.id]
		if err != nil {
			res.Failed = append(res.Failed, t.id)
			c.counters.FanOutFailed++
		} else {
			if m != nil && seq > m.configSeq {
				m.configSeq = seq
			}
			res.Applied = append(res.Applied, t.id)
			c.counters.FanOutOK++
		}
		c.mu.Unlock()
	}
	return res
}

// Reconcile replays the fleet commands a member missed — everything in
// the log after its per-member generation — in order, stopping at the
// first failure so the member's generation never skips a command. It
// returns the number of commands replayed.
func (c *Coordinator) Reconcile(id Identity) (int, error) {
	c.mu.Lock()
	m, ok := c.members[id]
	if !ok {
		c.mu.Unlock()
		return 0, fmt.Errorf("federation: reconcile: unknown member %s", id)
	}
	from := m.configSeq
	addr := m.configAddr
	var pending []fleetCommand
	for _, fc := range c.log {
		if fc.seq > from {
			pending = append(pending, fc)
		}
	}
	apply := c.cfg.Apply
	c.mu.Unlock()

	replayed := 0
	for _, fc := range pending {
		if apply != nil {
			if err := apply(addr, fc.cmd); err != nil {
				c.mu.Lock()
				c.counters.ReconcileFailures++
				c.mu.Unlock()
				return replayed, fmt.Errorf("federation: reconcile %s at seq %d: %w", id, fc.seq, err)
			}
		}
		replayed++
		c.mu.Lock()
		if m := c.members[id]; m != nil && fc.seq > m.configSeq {
			m.configSeq = fc.seq
		}
		c.counters.Reconciled++
		c.mu.Unlock()
	}
	return replayed, nil
}

// Lagging returns the members whose per-member generation trails the
// fleet generation, in deterministic order — the reconciliation
// work-list after a partial fan-out or a rejoin.
func (c *Coordinator) Lagging() []Identity {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Identity
	for _, m := range c.sortedLocked() {
		if m.configSeq < c.fleetSeq {
			out = append(out, m.id)
		}
	}
	return out
}

// States returns the number of members in each liveness state.
func (c *Coordinator) States() (alive, suspect, dead int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.members {
		switch m.state {
		case StateAlive:
			alive++
		case StateSuspect:
			suspect++
		case StateDead:
			dead++
		}
	}
	return
}

// Counters snapshots the coordinator's event accounting.
func (c *Coordinator) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters
}
