package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LocksAnalyzer enforces the repository's lock discipline: sync
// primitives must never be copied by value, and a function that takes a
// mutex must release it on every return path (or defer the release).
// The control plane, archiver pipeline and collector daemon all share
// state under these mutexes; a silent copy or a leaked lock turns into
// a deadlock or a torn read under production load.
var LocksAnalyzer = &Analyzer{
	Name: "locks",
	Doc:  "sync.Mutex/RWMutex copied by value, or Lock() without Unlock on a return path",
	Run:  runLocks,
}

func runLocks(pass *Pass) {
	checkLockCopies(pass)
	for _, fb := range funcBodies(pass.Pkg.Files) {
		checkLockPairing(pass, fb)
	}
}

// checkLockCopies flags value receivers, value parameters, value
// results and copying assignments whose type holds lock state.
func checkLockCopies(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					for _, field := range n.Recv.List {
						reportLockField(pass, info, field, "receiver")
					}
				}
				if n.Type.Params != nil {
					for _, field := range n.Type.Params.List {
						reportLockField(pass, info, field, "parameter")
					}
				}
				if n.Type.Results != nil {
					for _, field := range n.Type.Results.List {
						reportLockField(pass, info, field, "result")
					}
				}
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					if copiesLockValue(info, rhs) {
						pass.Reportf(rhs.Pos(), "assignment copies lock value: %s has type %s containing a sync primitive",
							exprString(pass.Pkg.Fset, rhs), info.TypeOf(rhs))
					}
				}
			case *ast.RangeStmt:
				// for _, v := range xs where elem type contains a lock.
				if n.Value != nil && n.Tok == token.DEFINE {
					if t := info.TypeOf(n.Value); t != nil && containsLock(t) {
						pass.Reportf(n.Value.Pos(), "range clause copies lock value: element type %s contains a sync primitive", t)
					}
				}
			}
			return true
		})
	}
}

func reportLockField(pass *Pass, info *types.Info, field *ast.Field, kind string) {
	t := info.TypeOf(field.Type)
	if t == nil || !containsLock(t) {
		return
	}
	pass.Reportf(field.Pos(), "%s passes lock by value: type %s contains a sync primitive (use a pointer)", kind, t)
}

// copiesLockValue reports whether evaluating rhs copies existing lock
// state: a dereference, variable, field or index of a lock-containing
// type. Fresh values (composite literals, function-call results used to
// construct) are allowed.
func copiesLockValue(info *types.Info, rhs ast.Expr) bool {
	t := info.TypeOf(rhs)
	if t == nil || !containsLock(t) {
		return false
	}
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// lockEvent is one lock-relevant statement, ordered by source position.
type lockEvent struct {
	pos  token.Pos
	kind int // 0 lock, 1 unlock, 2 deferred unlock, 3 return
	key  string
	read bool // RLock/RUnlock
}

const (
	evLock = iota
	evUnlock
	evDeferUnlock
	evReturn
)

// checkLockPairing walks one function body in source order and reports
// Lock() calls that can reach a return statement while still held.
// The walk is linear (branch-insensitive), which matches how locks are
// used in this codebase: short critical sections, unlocks in the same
// block or deferred.
func checkLockPairing(pass *Pass, fb funcBody) {
	var events []lockEvent
	var collect func(n ast.Node, inDefer bool)
	collect = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if n != fb.node {
					return false // nested literals are separate functions
				}
			case *ast.DeferStmt:
				collect(n.Call, true)
				return false
			case *ast.ReturnStmt:
				events = append(events, lockEvent{pos: n.Pos(), kind: evReturn})
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				var ev int
				read := false
				switch sel.Sel.Name {
				case "Lock":
					ev = evLock
				case "RLock":
					ev, read = evLock, true
				case "Unlock":
					ev = evUnlock
				case "RUnlock":
					ev, read = evUnlock, true
				default:
					return true
				}
				recv := pass.Pkg.Info.TypeOf(sel.X)
				if recv == nil || !isLockType(recv) {
					return true
				}
				if inDefer && ev == evUnlock {
					ev = evDeferUnlock
				}
				events = append(events, lockEvent{
					pos:  n.Pos(),
					kind: ev,
					key:  exprString(pass.Pkg.Fset, sel.X),
					read: read,
				})
			}
			return true
		})
	}
	collect(fb.body, false)
	if len(events) == 0 {
		return
	}

	// Per lock expression: scan events in order, tracking held state.
	type state struct {
		held     bool
		lockPos  token.Pos
		read     bool
		deferred bool
	}
	states := map[string]*state{}
	get := func(key string) *state {
		if s, ok := states[key]; ok {
			return s
		}
		s := &state{}
		states[key] = s
		return s
	}
	for _, e := range events {
		switch e.kind {
		case evLock:
			s := get(e.key)
			if s.held && s.read == e.read && !e.read {
				pass.Reportf(e.pos, "%s.Lock() while already held (locked at %s) in %s: recursive locking deadlocks",
					e.key, pass.Pkg.Fset.Position(s.lockPos), fb.name)
			}
			s.held, s.lockPos, s.read = true, e.pos, e.read
		case evUnlock:
			get(e.key).held = false
		case evDeferUnlock:
			s := get(e.key)
			s.deferred = true
			s.held = false
		case evReturn:
			for key, s := range states {
				if s.held && !s.deferred {
					verb := "Unlock"
					if s.read {
						verb = "RUnlock"
					}
					pass.Reportf(s.lockPos, "%s locked in %s but a return at %s is reachable without %s.%s() (add defer %s.%s())",
						key, fb.name, pass.Pkg.Fset.Position(e.pos), key, verb, key, verb)
					s.held = false // report once per lock site
				}
			}
		}
	}
	// Function end with lock still held and no unlock anywhere.
	for key, s := range states {
		if s.held && !s.deferred {
			verb := "Unlock"
			if s.read {
				verb = "RUnlock"
			}
			pass.Reportf(s.lockPos, "%s locked in %s with no %s.%s() on any path", key, fb.name, key, verb)
		}
	}
}
