package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathPropAnalyzer makes the p4:hotpath contract transitive: the
// constraints the hotalloc pass enforces inside an annotated function
// body — plus the blocking-operation bans below — apply to every
// function reachable from an annotated root through the conservative
// call graph. The per-packet pipeline promises 0 allocs/op AND bounded
// latency; a clean root calling a helper that locks a mutex or builds
// a map breaks the promise just as surely as allocating inline.
//
// Inside any function reachable from a p4:hotpath root (including the
// root itself) the pass reports:
//
//   - sync.Mutex / sync.RWMutex operations (Lock, Unlock, RLock,
//     RUnlock, TryLock, TryRLock) — the packet path must stay
//     lock-free;
//   - time.Now — wall-clock reads desynchronise the simulation clock
//     and cost a vDSO call per packet;
//   - map iteration — unbounded work with nondeterministic order;
//   - channel operations (send, receive, select, close, make(chan)) —
//     every one is a potential block or allocation;
//   - in transitively reached callees only, the hotalloc allocation
//     classes (append growth, map literals, make(map), netip
//     rendering, fmt formatting): hotalloc already reports those in
//     the annotated body itself, and this pass extends them across
//     the call boundary, flagged at the root with the call chain.
//
// A callee that legitimately violates the contract (an amortised batch
// flush, a cold error path) is excluded by annotating its doc comment
// with `p4:hotpath-exempt` plus a justification after the colon, or a
// single offending line with a justified `p4:lint-exempt` comment
// naming this pass. An exemption without a justification is itself
// reported.
//
// Known incompleteness (see the Program doc): calls through plain
// function values and bodies of function literals are not traversed.
var HotPathPropAnalyzer = &Analyzer{
	Name:       "hotpathprop",
	Doc:        "p4:hotpath constraints (locks, time.Now, map iteration, channels, allocation) enforced transitively over the call graph",
	RunProgram: runHotPathProp,
}

const (
	hotpathMark   = "p4:hotpath"
	hotpathExempt = "p4:hotpath-exempt:"
)

// hotViolation is one hot-path contract breach inside a function body.
type hotViolation struct {
	pos   token.Pos
	what  string // short description, e.g. "mutex Lock"
	alloc bool   // belongs to the hotalloc allocation classes
}

func runHotPathProp(pass *ProgramPass) {
	prog := pass.Prog

	// Classify every declared function once: root, exempt, or plain.
	exempt := map[*types.Func]bool{}
	var roots []*FuncInfo
	for _, fi := range prog.Functions() {
		doc := ""
		if fi.Decl.Doc != nil {
			doc = fi.Decl.Doc.Text()
		}
		if idx := strings.Index(doc, hotpathExempt); idx >= 0 {
			exempt[fi.Obj] = true
			reason := doc[idx+len(hotpathExempt):]
			if nl := strings.IndexByte(reason, '\n'); nl >= 0 {
				reason = reason[:nl]
			}
			if strings.TrimSpace(reason) == "" {
				pass.Reportf(fi.Decl.Pos(), "p4:hotpath-exempt on %s has no justification: explain why the hot-path contract does not apply", fi.Name())
			}
			continue
		}
		if strings.Contains(doc, hotpathMark) {
			roots = append(roots, fi)
		}
	}

	// Memoised per-function violation lists. Violations on a line with a
	// justified p4:lint-exempt hotpathprop comment are dropped at the
	// source, so they neither surface directly nor propagate to roots.
	exemptLn := exemptLines(prog.Pkgs, pass.Analyzer.Name)
	cache := map[*types.Func][]hotViolation{}
	violationsOf := func(fi *FuncInfo) []hotViolation {
		if v, ok := cache[fi.Obj]; ok {
			return v
		}
		all := hotViolations(fi)
		v := all[:0]
		for _, hv := range all {
			if !exemptCovers(exemptLn, prog.Fset.Position(hv.pos)) {
				v = append(v, hv)
			}
		}
		cache[fi.Obj] = v
		return v
	}

	for _, root := range roots {
		// Direct violations in the root body: the non-allocation
		// classes (hotalloc owns the allocation ones there).
		for _, v := range violationsOf(root) {
			if v.alloc {
				continue
			}
			pass.Reportf(v.pos, "%s in p4:hotpath function %s: the per-packet path must stay lock-free, clock-free and channel-free", v.what, root.Name())
		}

		// BFS over the call graph; report each violating callee once
		// per root, at the root, with the shortest call chain.
		visited := map[*types.Func]bool{root.Obj: true}
		queue := []*chainNode{{fn: root.Obj}}
		for len(queue) > 0 {
			node := queue[0]
			queue = queue[1:]
			for _, e := range prog.Callees(node.fn) {
				callee := prog.FuncOf(e.Callee)
				if callee == nil || visited[e.Callee] {
					continue
				}
				visited[e.Callee] = true
				if exempt[e.Callee] {
					continue // justified escape hatch: not checked, not traversed
				}
				next := &chainNode{fn: e.Callee, prev: node}
				for _, v := range violationsOf(callee) {
					via := ""
					if e.Dynamic {
						via = fmt.Sprintf(" (dispatched via interface %s)", e.Iface)
					}
					pass.Reportf(root.Decl.Pos(), "p4:hotpath function %s reaches %s in %s via %s%s (at %s)",
						root.Name(), v.what, callee.Name(),
						renderChain(prog, next), via,
						prog.Fset.Position(v.pos))
				}
				queue = append(queue, next)
			}
		}
	}
}

// hotViolations collects the hot-path contract breaches in one
// function body. Function literal subtrees are skipped, matching the
// call graph's treatment of them. Panic arguments are cold (they abort
// the run) and are skipped like in hotalloc.
func hotViolations(fi *FuncInfo) []hotViolation {
	info := fi.Pkg.Info
	parents := fi.Pkg.Parents()
	recycled := recycledSlices(info, fi.Decl.Body)
	var out []hotViolation
	add := func(pos token.Pos, what string, alloc bool) {
		out = append(out, hotViolation{pos: pos, what: what, alloc: alloc})
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if t := info.TypeOf(e.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					add(e.Pos(), "map iteration", false)
				}
			}
		case *ast.SendStmt:
			add(e.Pos(), "channel send", false)
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				add(e.Pos(), "channel receive", false)
			}
		case *ast.SelectStmt:
			add(e.Pos(), "select", false)
		case *ast.CompositeLit:
			if tv, ok := info.Types[e]; ok && !inPanicArg(info, parents, e) {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					add(e.Pos(), "map literal allocation", true)
				}
			}
		case *ast.CallExpr:
			hotCallViolations(fi, info, parents, recycled, e, add)
		}
		return true
	})
	return out
}

// hotCallViolations classifies one call expression.
func hotCallViolations(fi *FuncInfo, info *types.Info, parents parentMap, recycled map[types.Object]bool, call *ast.CallExpr, add func(token.Pos, string, bool)) {
	if inPanicArg(info, parents, call) {
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		b, ok := info.Uses[fun].(*types.Builtin)
		if !ok {
			return
		}
		switch b.Name() {
		case "append":
			if !appendReusesCapacity(fi.Pkg.Fset, info, parents, recycled, call) {
				add(call.Pos(), "append without capacity reuse", true)
			}
		case "make":
			if tv, ok := info.Types[call]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					add(call.Pos(), "make(map) allocation", true)
				case *types.Chan:
					add(call.Pos(), "make(chan)", false)
				}
			}
		case "close":
			if len(call.Args) == 1 {
				if t := info.TypeOf(call.Args[0]); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						add(call.Pos(), "channel close", false)
					}
				}
			}
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		switch {
		case fn.Pkg().Path() == "sync" && isMutexOp(fn.Name()):
			if recv := info.TypeOf(fun.X); recv == nil || isLockType(recv) || isEmbeddedLockRecv(info, fun) {
				add(call.Pos(), "mutex "+fn.Name(), false)
			}
		case fn.Pkg().Path() == "time" && fn.Name() == "Now":
			add(call.Pos(), "time.Now", false)
		case fn.Pkg().Path() == "net/netip" && netipAllocMethods[fn.Name()]:
			add(call.Pos(), "netip "+fn.Name()+" allocation", true)
		case fn.Pkg().Path() == "fmt" && fmtAllocFuncs[fn.Name()]:
			add(call.Pos(), "fmt."+fn.Name()+" allocation", true)
		}
	}
}

// isMutexOp reports whether name is a sync.Mutex/RWMutex method.
func isMutexOp(name string) bool {
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return true
	}
	return false
}

// isEmbeddedLockRecv reports whether a Lock-family call selects a
// promoted method of an embedded sync.Mutex (s.Lock() where s's type
// embeds the mutex).
func isEmbeddedLockRecv(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}
