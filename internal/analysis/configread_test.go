package analysis

import "testing"

func TestConfigRead(t *testing.T) {
	runFixture(t, "configread", "configread")
}
