package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/dataplane").
	Path string
	// Dir is the package directory on disk.
	Dir  string
	Fset *token.FileSet
	// Files holds the package's non-test source files.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-check errors; analysis proceeds with
	// whatever information was recovered.
	TypeErrors []error

	// loader links back to the Loader that produced the package, so
	// NewProgram can fold in the module import closure.
	loader *Loader

	parents parentMap
}

// Parents lazily builds the node→parent index for the package.
func (p *Package) Parents() parentMap {
	if p.parents == nil {
		p.parents = buildParents(p.Files)
	}
	return p.parents
}

// Loader parses and type-checks module packages exactly once, sharing
// one FileSet so diagnostics across packages agree on positions.
// Standard-library imports are resolved from source via go/importer;
// module-internal imports are resolved recursively through the loader
// itself. It deliberately uses nothing outside the standard library.
type Loader struct {
	Fset *token.FileSet

	moduleRoot string
	modulePath string

	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
	std     types.ImporterFrom
}

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		moduleRoot: root,
		modulePath: modPath,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}, nil
}

// findModule walks upward from dir to the enclosing go.mod and parses
// its module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		gomod := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(gomod); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(strings.Trim(strings.TrimSpace(rest), `"`)), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s has no module line", gomod)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Load resolves package patterns into type-checked packages. A pattern
// is a directory path, optionally ending in "/..." to walk the tree
// ("./...", "./internal/...", "internal/dataplane"). Patterns are
// interpreted relative to base (typically the current directory).
func (l *Loader) Load(base string, patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(base, dir)
		}
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q: not a directory", pat)
		}
		if !recursive {
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var out []*Package
	for _, dir := range dirs {
		if !hasGoFiles(dir) {
			continue
		}
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.loadPackage(path, dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") && matchesBuild(dir, name) {
			return true
		}
	}
	return false
}

// matchesBuild reports whether a file belongs to the default build
// configuration. p4lint analyzes the same file set `go build` compiles:
// //go:build expressions (race-only fallbacks, platform files) and
// GOOS/GOARCH filename suffixes are honored, so alternate-tag twins of a
// declaration don't show up as redeclarations.
func matchesBuild(dir, name string) bool {
	ok, err := build.Default.MatchFile(dir, name)
	return err == nil && ok
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.moduleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.moduleRoot)
	}
	if rel == "." {
		return l.modulePath, nil
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// dirFor inverts importPathFor.
func (l *Loader) dirFor(importPath string) (string, bool) {
	if importPath == l.modulePath {
		return l.moduleRoot, true
	}
	rest, ok := strings.CutPrefix(importPath, l.modulePath+"/")
	if !ok {
		return "", false
	}
	return filepath.Join(l.moduleRoot, filepath.FromSlash(rest)), true
}

// Import implements types.Importer: module-internal paths load through
// the loader (so every analyzer sees identical type objects), anything
// else falls back to the standard library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.loadPackage(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadPackage parses and type-checks one package, memoised by import
// path.
func (l *Loader) loadPackage(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !matchesBuild(dir, name) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return l.Fset.Position(files[i].Pos()).Filename < l.Fset.Position(files[j].Pos()).Filename
	})

	pkg := &Package{
		Path:   path,
		Dir:    dir,
		Fset:   l.Fset,
		Files:  files,
		loader: l,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, err := conf.Check(path, l.Fset, files, pkg.Info)
	if tpkg == nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}
