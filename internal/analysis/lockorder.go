package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrderAnalyzer guards the two deadlock classes the concurrent
// subsystems (sharded data plane, resilient shipper, archiver pipeline)
// are exposed to:
//
//  1. Inconsistent acquisition order. The pass builds a whole-program
//     acquisition graph whose nodes are mutex identities — a struct
//     field (Type.mu), a package-level mutex, or a type embedding one —
//     and whose edges record "B acquired while A is held", including
//     acquisitions reached transitively through the call graph. Any
//     cycle in that graph is a schedule where two goroutines hold one
//     lock each and wait for the other's.
//
//  2. Lock held across a blocking operation. In the packages that talk
//     to the network or move data between goroutines
//     (internal/dataplane, internal/resilient, internal/psarchiver),
//     holding a mutex across a channel send/receive/select or a
//     net/os-level I/O call stalls every other goroutine contending for
//     the lock for as long as the peer takes — the bug class the PR-4
//     shipper redesign removed (conn.Write moved outside mu).
//
// The held-set tracking is a linear, source-order approximation of each
// function body: Lock adds, Unlock removes, `defer Unlock` holds to the
// function's end, and function literals are opaque (consistent with the
// call graph). A deliberate release-reacquire pattern is excluded with
// a justified `p4:lint-exempt` line comment naming this pass.
var LockOrderAnalyzer = &Analyzer{
	Name:       "lockorder",
	Doc:        "whole-program mutex acquisition graph: order cycles, and locks held across I/O or channel operations",
	RunProgram: runLockOrder,
}

// lockIOScopes are the package-path fragments where rule 2 (lock held
// across blocking operations) applies; the fixture directory rides the
// list so the rule stays testable.
var lockIOScopes = []string{
	"internal/dataplane", "internal/resilient", "internal/psarchiver",
	"testdata/src/lockorder",
}

// ioPkgs are stdlib packages whose calls mean "waiting on a peer or the
// kernel" — the operations rule 2 bans under a lock. Buffered or
// in-memory writers (bytes, strings, bufio flushes excepted) are not
// listed: they cost memory, not latency.
var ioPkgs = map[string]bool{"net": true, "os": true, "net/http": true, "crypto/tls": true}

// loEvent is one occurrence inside a function body, in source order.
type loEvent struct {
	pos  token.Pos
	kind int          // loEvLock, loEvUnlock, loEvDeferUnlock, loEvCall, loEvChan, loEvIO
	obj  types.Object // lock identity for loEvLock/loEvUnlock
	fn   *types.Func  // callee for loEvCall/loEvIO
	what string       // operation description for loEvChan/loEvIO
}

const (
	loEvLock = iota
	loEvUnlock
	loEvDeferUnlock
	loEvCall
	loEvChan
	loEvIO
)

// lockEdge is "to acquired while from is held".
type lockEdge struct {
	site token.Pos
	via  string // empty for a direct acquisition, callee chain otherwise
}

func runLockOrder(pass *ProgramPass) {
	prog := pass.Prog
	exemptLn := exemptLines(prog.Pkgs, pass.Analyzer.Name)
	skip := func(pos token.Pos) bool {
		return exemptCovers(exemptLn, prog.Fset.Position(pos))
	}

	// Pass 1: per-function events and direct acquisition sets.
	events := map[*types.Func][]loEvent{}
	acquires := map[*types.Func]map[types.Object]bool{}
	for _, fi := range prog.Functions() {
		evs := loEvents(fi)
		events[fi.Obj] = evs
		for _, e := range evs {
			if e.kind == loEvLock && !skip(e.pos) {
				if acquires[fi.Obj] == nil {
					acquires[fi.Obj] = map[types.Object]bool{}
				}
				acquires[fi.Obj][e.obj] = true
			}
		}
	}

	// Transitive closure of acquisitions over the call graph (fixpoint;
	// the graph is small and the sets smaller).
	for changed := true; changed; {
		changed = false
		for _, fi := range prog.Functions() {
			for _, e := range prog.Callees(fi.Obj) {
				for obj := range acquires[e.Callee] {
					if !acquires[fi.Obj][obj] {
						if acquires[fi.Obj] == nil {
							acquires[fi.Obj] = map[types.Object]bool{}
						}
						acquires[fi.Obj][obj] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 2: linear scan of each body, building the acquisition graph
	// and reporting rule-2 findings as they appear.
	edges := map[[2]types.Object]lockEdge{}
	addEdge := func(from, to types.Object, site token.Pos, via string) {
		k := [2]types.Object{from, to}
		if _, ok := edges[k]; !ok {
			edges[k] = lockEdge{site: site, via: via}
		}
	}
	for _, fi := range prog.Functions() {
		ioScoped := pathInScope(fi.Pkg.Path, lockIOScopes)
		held := map[types.Object]token.Pos{}
		heldSorted := func() []types.Object {
			objs := make([]types.Object, 0, len(held))
			for o := range held {
				objs = append(objs, o)
			}
			sort.Slice(objs, func(i, j int) bool { return objLabel(objs[i]) < objLabel(objs[j]) })
			return objs
		}
		for _, e := range events[fi.Obj] {
			if skip(e.pos) {
				if e.kind == loEvUnlock || e.kind == loEvDeferUnlock {
					delete(held, e.obj)
				}
				continue
			}
			switch e.kind {
			case loEvLock:
				if _, already := held[e.obj]; already {
					pass.Reportf(e.pos, "%s acquired in %s while already held (locked at %s): sync mutexes are not reentrant, this goroutine deadlocks",
						objLabel(e.obj), fi.Name(), prog.Fset.Position(held[e.obj]))
					continue
				}
				for _, h := range heldSorted() {
					if h != e.obj {
						addEdge(h, e.obj, e.pos, "")
					}
				}
				held[e.obj] = e.pos
			case loEvUnlock:
				delete(held, e.obj)
			case loEvDeferUnlock:
				// Held until return: keep it in the set.
			case loEvCall:
				for obj := range acquires[e.fn] {
					for _, h := range heldSorted() {
						if h != obj {
							addEdge(h, obj, e.pos, calleeName(prog, e.fn))
						}
					}
				}
			case loEvChan, loEvIO:
				if !ioScoped || len(held) == 0 {
					continue
				}
				h := heldSorted()[0]
				pass.Reportf(e.pos, "%s held across %s in %s (locked at %s): the lock stalls every contending goroutine for as long as the peer takes; move the blocking operation outside the critical section (the PR-4 shipper pattern)",
					objLabel(h), e.what, fi.Name(), prog.Fset.Position(held[h]))
			}
		}
	}

	reportLockCycles(pass, edges)
}

// reportLockCycles finds acquisition-order cycles and reports each once,
// deterministically, at the lexically first edge that closes it.
func reportLockCycles(pass *ProgramPass, edges map[[2]types.Object]lockEdge) {
	prog := pass.Prog
	succ := map[types.Object][]types.Object{}
	for k := range edges {
		succ[k[0]] = append(succ[k[0]], k[1])
	}
	for _, next := range succ {
		sort.Slice(next, func(i, j int) bool { return objLabel(next[i]) < objLabel(next[j]) })
	}
	// path returns a shortest from→to node sequence (BFS), or nil.
	path := func(from, to types.Object) []types.Object {
		type node struct {
			obj  types.Object
			prev *node
		}
		visited := map[types.Object]bool{from: true}
		queue := []*node{{obj: from}}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			if n.obj == to {
				var out []types.Object
				for ; n != nil; n = n.prev {
					out = append(out, n.obj)
				}
				for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
					out[i], out[j] = out[j], out[i]
				}
				return out
			}
			for _, s := range succ[n.obj] {
				if !visited[s] {
					visited[s] = true
					queue = append(queue, &node{obj: s, prev: n})
				}
			}
		}
		return nil
	}

	type keyed struct {
		k [2]types.Object
		e lockEdge
	}
	sorted := make([]keyed, 0, len(edges))
	for k, e := range edges {
		sorted = append(sorted, keyed{k, e})
	}
	sort.Slice(sorted, func(i, j int) bool {
		a, b := prog.Fset.Position(sorted[i].e.site), prog.Fset.Position(sorted[j].e.site)
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	seen := map[string]bool{}
	for _, ke := range sorted {
		from, to := ke.k[0], ke.k[1]
		back := path(to, from)
		if back == nil {
			continue
		}
		cycle := append([]types.Object{from}, back...) // from -> to -> ... -> from
		labels := make([]string, len(cycle))
		for i, o := range cycle {
			labels[i] = objLabel(o)
		}
		canon := canonicalCycle(labels)
		if seen[canon] {
			continue
		}
		seen[canon] = true
		via := ""
		if ke.e.via != "" {
			via = fmt.Sprintf(" (through call to %s)", ke.e.via)
		}
		pass.Reportf(ke.e.site, "lock order cycle %s: %s is acquired while %s is held%s, and the reverse order also occurs; two goroutines taking opposite orders deadlock — pick one global order",
			strings.Join(labels, " -> "), objLabel(to), objLabel(from), via)
	}
}

// canonicalCycle rotates a cycle rendering (first == last) so the
// smallest label leads, making "A->B->A" and "B->A->B" the same cycle.
func canonicalCycle(labels []string) string {
	ring := labels[:len(labels)-1]
	min := 0
	for i := range ring {
		if ring[i] < ring[min] {
			min = i
		}
	}
	out := make([]string, 0, len(labels))
	for i := range ring {
		out = append(out, ring[(min+i)%len(ring)])
	}
	out = append(out, ring[min])
	return strings.Join(out, " -> ")
}

// loEvents flattens one function body into source-ordered lock,
// unlock, call, channel, and I/O events. ast.Inspect visits in source
// order, so the slice needs no extra sorting.
func loEvents(fi *FuncInfo) []loEvent {
	info := fi.Pkg.Info
	var out []loEvent
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// The deferred call runs at return; classify its Lock/Unlock
			// specially and skip the generic call handling.
			if obj, op := mutexCallTarget(info, e.Call); obj != nil {
				kind := loEvDeferUnlock
				if op == "Lock" || op == "RLock" || op == "TryLock" || op == "TryRLock" {
					kind = loEvLock // `defer mu.Lock()` is almost surely a bug; model as an acquisition
				}
				out = append(out, loEvent{pos: e.Pos(), kind: kind, obj: obj})
				return false
			}
			// Other deferred calls are modelled at the defer site — a
			// conservative approximation (they actually run at return).
			return true
		case *ast.SendStmt:
			out = append(out, loEvent{pos: e.Pos(), kind: loEvChan, what: "channel send"})
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				out = append(out, loEvent{pos: e.Pos(), kind: loEvChan, what: "channel receive"})
			}
		case *ast.SelectStmt:
			out = append(out, loEvent{pos: e.Pos(), kind: loEvChan, what: "select"})
		case *ast.CallExpr:
			if obj, op := mutexCallTarget(info, e); obj != nil {
				kind := loEvUnlock
				if op == "Lock" || op == "RLock" || op == "TryLock" || op == "TryRLock" {
					kind = loEvLock
				}
				out = append(out, loEvent{pos: e.Pos(), kind: kind, obj: obj})
				return true
			}
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
					if ioPkgs[fn.Pkg().Path()] {
						out = append(out, loEvent{pos: e.Pos(), kind: loEvIO, fn: fn,
							what: fn.Pkg().Name() + " " + fn.Name() + " I/O"})
						return true
					}
					out = append(out, loEvent{pos: e.Pos(), kind: loEvCall, fn: fn})
					return true
				}
			}
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if fn, ok := info.Uses[id].(*types.Func); ok {
					out = append(out, loEvent{pos: e.Pos(), kind: loEvCall, fn: fn})
				}
			}
		}
		return true
	})
	return out
}

// mutexCallTarget resolves a call to a sync.Mutex/RWMutex method into
// the lock's identity object and the operation name. Identity is the
// struct field for s.mu.Lock(), the variable for a package-level mu,
// and the receiver's named type for promoted methods on embedded locks —
// the granularity the ordering graph needs to compare acquisitions
// across instances.
func mutexCallTarget(info *types.Info, call *ast.CallExpr) (types.Object, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !isMutexOp(sel.Sel.Name) {
		return nil, ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	return lockIdentity(info, sel.X), sel.Sel.Name
}

// lockIdentity maps the receiver expression of a Lock/Unlock call to a
// stable per-type object.
func lockIdentity(info *types.Info, x ast.Expr) types.Object {
	switch e := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			return s.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return nil
		}
		t := obj.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if isLockType(t) {
			return obj // a plain mutex variable
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj() // s.Lock() via embedded mutex: identity is the type
		}
		return obj
	case *ast.IndexExpr:
		return lockIdentity(info, e.X)
	}
	return nil
}

// objLabel renders a lock identity for diagnostics.
func objLabel(obj types.Object) string { return objectLabel(obj) }

// calleeName renders a callee for "through call to X" notes.
func calleeName(prog *Program, fn *types.Func) string {
	if fi := prog.FuncOf(fn); fi != nil {
		return fi.Name()
	}
	return fn.Name()
}

// pathInScope reports whether an import path matches one of the scope
// fragments. Matching is by fragment containment, except that a
// trailing fixture path must terminate the import path so fixture
// subpackages stay out of scope.
func pathInScope(path string, scopes []string) bool {
	for _, s := range scopes {
		if strings.HasPrefix(s, "testdata/") {
			if strings.HasSuffix(path, s) {
				return true
			}
			continue
		}
		if strings.Contains(path, s) {
			return true
		}
	}
	return false
}
