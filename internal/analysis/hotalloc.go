package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAllocAnalyzer polices the zero-allocation contract of functions
// annotated `p4:hotpath` in their doc comment — the per-packet pipeline
// (scheduler, packet arena, data-plane hashing) whose benchmarks assert
// testing.AllocsPerRun == 0. Inside an annotated function it reports:
//
//   - append whose result is not assigned back to the slice it extends
//     (the capacity-reuse idiom `x = append(x, ...)` and appends into a
//     locally trimmed buffer `buf := x[:0]; append(buf, ...)` are the
//     accepted amortised-zero patterns; anything else builds a fresh
//     backing array);
//   - map composite literals and make(map[...]...), which always
//     allocate — hot state belongs in preallocated registers or arrays;
//   - net/netip rendering calls (String, MarshalText, AppendTo, ...)
//     and fmt.Sprintf-family formatting, the allocations the packed
//     FlowKey refactor removed from the per-packet path.
//
// Allocations inside panic arguments are exempt: a panic path aborts
// the simulation, so its cost never lands on a packet.
//
// Functions without the annotation are not inspected: the pass guards
// the declared hot path, it does not ban allocation generally.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "allocations (append growth, map literals, netip/fmt rendering) inside p4:hotpath functions",
	Run:  runHotAlloc,
}

// netipAllocMethods are net/netip methods that build strings or byte
// slices per call.
var netipAllocMethods = map[string]bool{
	"String": true, "StringExpanded": true, "MarshalText": true,
	"MarshalBinary": true, "AppendTo": true,
}

// fmtAllocFuncs are fmt entry points that return freshly built strings
// or errors.
var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

func runHotAlloc(pass *Pass) {
	info := pass.Pkg.Info
	parents := pass.Pkg.Parents()
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Doc == nil {
				continue
			}
			// A p4:hotpath-exempt annotation contains the hotpath marker
			// as a substring but means the opposite.
			doc := fn.Doc.Text()
			if !strings.Contains(doc, "p4:hotpath") || strings.Contains(doc, hotpathExempt) {
				continue
			}
			checkHotFunc(pass, info, parents, fn)
		}
	}
}

func checkHotFunc(pass *Pass, info *types.Info, parents parentMap, fn *ast.FuncDecl) {
	recycled := recycledSlices(info, fn.Body)
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CompositeLit:
			if tv, ok := info.Types[e]; ok && !inPanicArg(info, parents, e) {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(e.Pos(), "map literal allocates in p4:hotpath function %s; hoist the map out of the per-packet path", name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, info, parents, recycled, name, e)
		}
		return true
	})
}

func checkHotCall(pass *Pass, info *types.Info, parents parentMap, recycled map[types.Object]bool, name string, call *ast.CallExpr) {
	if inPanicArg(info, parents, call) {
		return
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj := info.Uses[fun]
		if b, ok := obj.(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if !appendReusesCapacity(pass.Pkg.Fset, info, parents, recycled, call) {
					pass.Reportf(call.Pos(), "append result is not assigned back to its base slice in p4:hotpath function %s: growth allocates a fresh backing array; reuse capacity (x = append(x, ...)) or hoist the buffer", name)
				}
			case "make":
				if tv, ok := info.Types[call]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(call.Pos(), "make(map) allocates in p4:hotpath function %s; hot state belongs in preallocated registers or arrays", name)
					}
				}
			}
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		switch {
		case fn.Pkg().Path() == "net/netip" && netipAllocMethods[fn.Name()]:
			pass.Reportf(call.Pos(), "netip %s call allocates in p4:hotpath function %s; pack addresses once (FlowKey) or cache the rendered form", fn.Name(), name)
		case fn.Pkg().Path() == "fmt" && fmtAllocFuncs[fn.Name()]:
			pass.Reportf(call.Pos(), "fmt.%s allocates in p4:hotpath function %s; format off the per-packet path and cache the result", fn.Name(), name)
		}
	}
}

// inPanicArg reports whether n sits inside the arguments of a panic
// call: that path aborts the run, so its allocations are cold.
func inPanicArg(info *types.Info, parents parentMap, n ast.Node) bool {
	for cur := ast.Node(nil); ; n = cur {
		cur = parents[n]
		if cur == nil {
			return false
		}
		if _, isStmt := cur.(ast.Stmt); isStmt {
			return false
		}
		if call, ok := cur.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					return true
				}
			}
		}
	}
}

// recycledSlices collects local variables initialised from a slice trim
// (buf := x[:0] or buf := x[:n]): appending into one reuses retained
// capacity, the packet arena's idiom for SACK/INT scratch.
func recycledSlices(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			se, ok := rhs.(*ast.SliceExpr)
			if !ok || se.High == nil {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					out[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// appendReusesCapacity reports whether the append call follows one of
// the amortised-zero idioms: its result is assigned back to the slice
// it extends (after unwrapping a trim like x[:0]), or its base is a
// local recycled-capacity buffer.
func appendReusesCapacity(fset *token.FileSet, info *types.Info, parents parentMap, recycled map[types.Object]bool, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	base := call.Args[0]
	if se, ok := base.(*ast.SliceExpr); ok {
		base = se.X
	}
	if id, ok := base.(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil && recycled[obj] {
			return true
		}
	}
	as, ok := parents[call].(*ast.AssignStmt)
	if !ok {
		return false
	}
	for i, rhs := range as.Rhs {
		if rhs != call || i >= len(as.Lhs) {
			continue
		}
		if exprString(fset, as.Lhs[i]) == exprString(fset, base) {
			return true
		}
	}
	return false
}
