package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadFixtureProgram loads one fixture package and builds its Program.
func loadFixtureProgram(t *testing.T, fixture string) (*Program, *Package) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(".", dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	for _, e := range pkgs[0].TypeErrors {
		t.Errorf("type error: %v", e)
	}
	return NewProgram(pkgs), pkgs[0]
}

// funcNamed finds a declared function by its diagnostic name
// ("callThrough", "base.Ping").
func funcNamed(t *testing.T, prog *Program, name string) *FuncInfo {
	t.Helper()
	for _, fi := range prog.Functions() {
		if fi.Name() == name {
			return fi
		}
	}
	t.Fatalf("program has no function %q (have %d functions)", name, len(prog.Functions()))
	return nil
}

// TestCallGraphEmbeddedDispatch checks method-set resolution through
// embedding: a promoted method reached through an interface resolves to
// the embedded type's declaration, for both the embedded type itself
// and the embedding type.
func TestCallGraphEmbeddedDispatch(t *testing.T) {
	prog, _ := loadFixtureProgram(t, "callgraph")

	ping := funcNamed(t, prog, "base.Ping")
	through := funcNamed(t, prog, "callThrough")

	edges := prog.Callees(through.Obj)
	var dynamic int
	for _, e := range edges {
		if e.Callee != ping.Obj {
			t.Errorf("callThrough edge to %s, want only base.Ping", e.Callee.FullName())
			continue
		}
		if !e.Dynamic || e.Iface != "pinger" {
			t.Errorf("edge dynamic=%v iface=%q, want interface dispatch via pinger", e.Dynamic, e.Iface)
		}
		dynamic++
	}
	// base implements pinger directly and derived implements it through
	// the embedded base: conservative expansion produces an edge for
	// each, both resolving to the one promoted body.
	if dynamic != 2 {
		t.Fatalf("callThrough has %d dispatch edges to base.Ping, want 2 (base and derived)", dynamic)
	}
}

// TestCallGraphStaticPromotedSelector checks the concrete-receiver
// path: selecting a promoted method on the embedding type is a static
// edge straight to the embedded declaration.
func TestCallGraphStaticPromotedSelector(t *testing.T) {
	prog, _ := loadFixtureProgram(t, "callgraph")

	ping := funcNamed(t, prog, "base.Ping")
	direct := funcNamed(t, prog, "callDirect")

	edges := prog.Callees(direct.Obj)
	if len(edges) != 1 {
		t.Fatalf("callDirect has %d edges, want 1", len(edges))
	}
	if edges[0].Callee != ping.Obj || edges[0].Dynamic {
		t.Fatalf("callDirect edge = {callee %s, dynamic %v}, want static base.Ping",
			edges[0].Callee.FullName(), edges[0].Dynamic)
	}

	// Two-hop reachability: chainEntry -> callDirect -> base.Ping.
	entry := funcNamed(t, prog, "chainEntry")
	hops := prog.Callees(entry.Obj)
	if len(hops) != 1 || hops[0].Callee != direct.Obj {
		t.Fatalf("chainEntry edges = %v, want the single static hop to callDirect", hops)
	}
}

// TestLoaderBuildTagTwins loads the twin fixture: only the default
// configuration's file may be parsed, or Marker is a redeclaration.
func TestLoaderBuildTagTwins(t *testing.T) {
	_, pkg := loadFixtureProgram(t, "buildtags")
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (the active twin)", len(pkg.Files))
	}
	name := filepath.Base(pkg.Fset.Position(pkg.Files[0].Pos()).Filename)
	if name != "active.go" {
		t.Fatalf("loaded %s, want active.go", name)
	}
}

// TestLoaderBrokenPackageYieldsTypeErrors requires a type-broken (but
// parseable) package to load with collected TypeErrors — a diagnostic,
// not a panic and not a hard failure that would abort the whole run.
func TestLoaderBrokenPackageYieldsTypeErrors(t *testing.T) {
	dir := filepath.Join("testdata", "src", "broken")
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(".", dir)
	if err != nil {
		t.Fatalf("Load must not hard-fail on a type-broken package: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.TypeErrors) == 0 {
		t.Fatal("broken fixture produced no TypeErrors")
	}
	found := false
	for _, e := range pkg.TypeErrors {
		if strings.Contains(e.Error(), "undefinedIdentifier") {
			found = true
		}
	}
	if !found {
		t.Fatalf("TypeErrors do not mention the undefined identifier: %v", pkg.TypeErrors)
	}

	// The analyzers must run over what was recovered without panicking.
	diags := Run(pkgs, All())
	_ = diags
}
