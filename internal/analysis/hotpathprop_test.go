package analysis

import "testing"

func TestHotPathProp(t *testing.T) {
	runFixture(t, "hotpathprop", "hotpathprop")
}
