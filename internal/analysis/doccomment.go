package analysis

import (
	"go/ast"
	"go/token"
)

// DocCommentAnalyzer keeps the repository's reference documentation
// honest: godoc is the API contract readers reach for first, and an
// exported symbol without a doc comment is an undocumented promise. It
// reports:
//
//   - a package none of whose files carries a package comment;
//   - an exported package-level function, or a method on an exported
//     type, without a doc comment;
//   - an exported type, constant or variable declaration without a doc
//     comment on either the declaration group or the individual spec
//     (a documented const/var block covers its members; trailing
//     same-line comments do not count — godoc ignores them).
//
// Methods on unexported receiver types are exempt — they are not part
// of the package's godoc surface. Test files never reach the loader,
// so _test.go helpers are naturally out of scope.
var DocCommentAnalyzer = &Analyzer{
	Name: "doccomment",
	Doc:  "exported symbols or packages missing godoc comments",
	Run:  runDocComment,
}

func runDocComment(pass *Pass) {
	checkPackageComment(pass)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, d)
			case *ast.GenDecl:
				checkGenDoc(pass, d)
			}
		}
	}
}

// checkPackageComment requires at least one file in the package to
// carry a package comment; it reports once, on the first file's
// package clause.
func checkPackageComment(pass *Pass) {
	if len(pass.Pkg.Files) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		if f.Doc != nil && len(f.Doc.List) > 0 {
			return
		}
	}
	first := pass.Pkg.Files[0]
	pass.Reportf(first.Name.Pos(), "package %s has no package comment in any file", first.Name.Name)
}

// checkFuncDoc flags exported functions and exported-receiver methods
// lacking a doc comment.
func checkFuncDoc(pass *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() {
		return
	}
	if d.Recv != nil && !receiverExported(d.Recv) {
		return
	}
	if hasDoc(d.Doc) {
		return
	}
	kind := "function"
	if d.Recv != nil {
		kind = "method"
	}
	pass.Reportf(d.Name.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
}

// receiverExported reports whether the method's receiver base type is
// an exported name (pointer receivers unwrap one level).
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers look like Name[T]; unwrap the index expression.
	switch e := t.(type) {
	case *ast.IndexExpr:
		t = e.X
	case *ast.IndexListExpr:
		t = e.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// checkGenDoc flags exported specs in type/const/var declarations that
// have documentation on neither the group nor the spec itself.
func checkGenDoc(pass *Pass, d *ast.GenDecl) {
	switch d.Tok {
	case token.TYPE, token.CONST, token.VAR:
	default:
		return
	}
	groupDoc := hasDoc(d.Doc)
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if groupDoc || hasDoc(s.Doc) {
				continue
			}
			pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
		case *ast.ValueSpec:
			if groupDoc || hasDoc(s.Doc) {
				continue
			}
			word := "var"
			if d.Tok == token.CONST {
				word = "const"
			}
			for _, name := range s.Names {
				if name.IsExported() {
					pass.Reportf(name.Pos(), "exported %s %s has no doc comment", word, name.Name)
				}
			}
		}
	}
}

// hasDoc reports whether the comment group exists and is non-empty.
func hasDoc(cg *ast.CommentGroup) bool {
	return cg != nil && len(cg.List) > 0
}
