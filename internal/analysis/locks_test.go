package analysis

import "testing"

func TestLocksAnalyzer(t *testing.T) {
	runFixture(t, "locks", "locks")
}
