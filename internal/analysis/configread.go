package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ConfigReadAnalyzer polices the reconfiguration discipline introduced
// with the genconfig generation model (DESIGN.md §5.7): runtime-tunable
// configuration lives in immutable generation snapshots, and the
// boot-time Config fields that merely seed generation zero must never
// be read again once the system is running — a read of the seed copy
// on a packet or tick path silently bypasses every reconfiguration
// published since boot, and can observe a value torn against what the
// rest of the batch used.
//
// Two marker comments drive the pass:
//
//   - `p4:gen-seed` on a struct field declares it seed-only: its value
//     is copied into generation zero and is dead thereafter;
//   - `p4:gen-init` on a function declares it part of the seeding path
//     (constructors, default-filling helpers), where seed reads are
//     the whole point.
//
// Rule one reports every read of a gen-seed field outside a gen-init
// function. Writes are excluded: filling defaults in place is the
// seeding path's business, and a write cannot leak a stale value.
//
// Rule two guards the pin protocol itself: a generation store is any
// type exposing the Acquire/Release/Publish method set (the
// genconfig.Store contract), and a function that calls Acquire on one
// without a matching Release pins its generation forever — retirement
// counters never drain and every superseded snapshot leaks. Handing an
// acquired generation to a caller is legitimate but rare enough to
// demand a justified `p4:lint-exempt configread:` line.
var ConfigReadAnalyzer = &Analyzer{
	Name:       "configread",
	Doc:        "seed-only config fields (p4:gen-seed) must not be read outside seeding code (p4:gen-init), and every generation Acquire needs a Release",
	RunProgram: runConfigRead,
}

const (
	genSeedMarker = "p4:gen-seed"
	genInitMarker = "p4:gen-init"
)

// commentHas reports whether any line of the comment group carries the
// marker.
func commentHas(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	return strings.Contains(cg.Text(), marker)
}

func runConfigRead(pass *ProgramPass) {
	prog := pass.Prog

	// Phase one: collect the seed-only field objects across the whole
	// closure, keyed by types.Object identity so reads are caught in
	// any package.
	seedField := map[types.Object]bool{}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, fld := range st.Fields.List {
					if !commentHas(fld.Doc, genSeedMarker) && !commentHas(fld.Comment, genSeedMarker) {
						continue
					}
					for _, name := range fld.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							seedField[obj] = true
						}
					}
				}
				return true
			})
		}
	}

	// Phase two: per function, flag seed reads outside gen-init code
	// and Acquire calls with no Release on any path.
	for _, pkg := range prog.Pkgs {
		info := pkg.Info
		parents := pkg.Parents()
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				isInit := commentHas(fd.Doc, genInitMarker)
				acquires, releases := 0, 0
				firstAcquire := token.NoPos
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch e := n.(type) {
					case *ast.CallExpr:
						switch genStoreCall(info, e) {
						case "Acquire":
							acquires++
							if firstAcquire == token.NoPos {
								firstAcquire = e.Pos()
							}
						case "Release":
							releases++
						}
					case *ast.SelectorExpr:
						if isInit {
							return true
						}
						s, ok := info.Selections[e]
						if !ok || s.Kind() != types.FieldVal {
							return true
						}
						obj := s.Obj()
						if !seedField[obj] {
							return true
						}
						if isAssignTarget(parents, e) {
							return true
						}
						pass.Reportf(e.Pos(), "read of seed-only config field %s bypasses the generation snapshot: the field only seeds generation zero (p4:gen-seed), so this read misses every reconfiguration since boot; pin a generation (Acquire/Value/Release) or mark the enclosing seeding helper p4:gen-init",
							objectLabel(obj))
					}
					return true
				})
				if acquires > 0 && releases == 0 {
					pass.Reportf(firstAcquire, "generation acquired in %s but never released: an unreleased generation pins every superseded snapshot (Outstanding never drains); pair each Acquire with a Release on all paths",
						fd.Name.Name)
				}
			}
		}
	}
}

// genStoreCall classifies a call as Acquire/Release on a generation
// store — a receiver type exposing the Acquire/Release/Publish method
// set — returning "" for anything else.
func genStoreCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if name != "Acquire" && name != "Release" {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if !isGenStoreType(sig.Recv().Type()) {
		return ""
	}
	return name
}

// isGenStoreType reports whether t (or its pointee) is a named type
// with Acquire, Release and Publish methods. Named.Origin folds
// instantiated generics (genconfig.Store[T]) back to one identity.
func isGenStoreType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	named = named.Origin()
	have := map[string]bool{}
	for i := 0; i < named.NumMethods(); i++ {
		have[named.Method(i).Name()] = true
	}
	return have["Acquire"] && have["Release"] && have["Publish"]
}

// isAssignTarget reports whether the expression is written rather than
// read: the LHS of an assignment or an inc/dec statement.
func isAssignTarget(parents parentMap, n ast.Node) bool {
	switch p := parents[n].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == n {
				return true
			}
		}
	case *ast.IncDecStmt:
		return p.X == n
	}
	return false
}
