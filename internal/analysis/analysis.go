// Package analysis is the repository's domain-aware static-analysis
// layer: a small, stdlib-only analogue of golang.org/x/tools/go/analysis
// specialised for the invariants this P4-perfSONAR reproduction must
// preserve — register bit widths, nanosecond time units, lock
// discipline on shared control-plane state, checked I/O errors on the
// archiver paths, and cancellable goroutines in server code.
//
// A shared Loader parses and type-checks every package once; each
// Analyzer then walks the typed ASTs and reports Diagnostics. The
// cmd/p4lint driver runs the registry over package patterns and prints
// file:line: message lines (or JSON).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Diagnostic is one analyzer finding, positioned in the original
// source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line: form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one static-analysis pass. Exactly one of Run (a
// per-package syntactic/type pass) and RunProgram (a whole-program
// dataflow pass over the call graph) is set.
type Analyzer struct {
	// Name identifies the pass (used by -only and in diagnostics).
	Name string
	// Doc is a one-line description for usage output.
	Doc string
	// Run inspects a type-checked package, reporting findings through
	// pass.Reportf.
	Run func(pass *Pass)
	// RunProgram inspects the whole program at once; facts (hotpath
	// annotations, atomic access sites, lock acquisitions) propagate
	// across function and package boundaries through the Program's
	// call graph.
	RunProgram func(pass *ProgramPass)
}

// Pass bundles everything an analyzer needs to inspect one package.
type Pass struct {
	Pkg      *Package
	Analyzer *Analyzer

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass bundles what a whole-program analyzer needs.
type ProgramPass struct {
	Prog     *Program
	Analyzer *Analyzer

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full registry of passes, in reporting order: the
// per-package syntactic passes first, then the whole-program dataflow
// passes.
func All() []*Analyzer {
	return append(Syntactic(), Deep()...)
}

// Syntactic returns the per-package passes (cheap: one AST walk each).
func Syntactic() []*Analyzer {
	return []*Analyzer{
		LocksAnalyzer,
		TimeUnitsAnalyzer,
		RegWidthAnalyzer,
		UncheckedErrAnalyzer,
		GoLeakAnalyzer,
		HotAllocAnalyzer,
		DocCommentAnalyzer,
	}
}

// Deep returns the whole-program dataflow passes (slower: they build
// the module call graph and run cross-package fixpoints).
func Deep() []*Analyzer {
	return []*Analyzer{
		HotPathPropAnalyzer,
		AtomicMixAnalyzer,
		LockOrderAnalyzer,
		DeterminismAnalyzer,
		ConfigReadAnalyzer,
	}
}

// ByName resolves a comma-separated -only list against the registry.
func ByName(names []string) ([]*Analyzer, error) {
	all := All()
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			known := make([]string, len(all))
			for i, a := range all {
				known[i] = a.Name
			}
			return nil, fmt.Errorf("analysis: unknown analyzer %q (known: %v)", n, known)
		}
	}
	return out, nil
}

// Run executes the given analyzers over the packages and returns the
// combined diagnostics in deterministic order (file, line, pass,
// column, message). Whole-program analyzers run once over the module
// import closure of pkgs; per-package analyzers run per package.
// Findings suppressed by a justified `p4:lint-exempt pass: reason`
// comment are dropped; an exemption without a justification is itself
// a finding.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			prog = NewProgram(pkgs)
		}
		pass := &ProgramPass{Prog: prog, Analyzer: a}
		a.RunProgram(pass)
		out = append(out, pass.diags...)
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Pkg: pkg, Analyzer: a}
			a.Run(pass)
			out = append(out, pass.diags...)
		}
	}

	scope := pkgs
	if prog != nil {
		scope = prog.Pkgs
	}
	out = applyExemptions(out, scope, analyzers)

	sortDiagnostics(out)
	// A package listed twice (overlapping patterns) must not double its
	// findings.
	dedup := out[:0]
	for i, d := range out {
		if i > 0 && d == out[i-1] {
			continue
		}
		dedup = append(dedup, d)
	}
	return dedup
}

// exemptRe matches the line-level escape hatch
// `p4:lint-exempt <pass>: <justification>`. The justification is
// mandatory: an exemption must say why the finding does not apply, so
// a reviewer can audit it without rediscovering the context.
var exemptRe = regexp.MustCompile(`p4:lint-exempt\s+([a-z]+):[ \t]*(.*)`)

// exemption is one parsed p4:lint-exempt directive.
type exemption struct {
	analyzer string
	reason   string
	pos      token.Position
}

// applyExemptions drops diagnostics covered by a justified exemption
// comment on the same line or the line directly above, and reports
// exemptions that name a running pass but carry no justification.
// Exemptions for passes not in the run set are left alone (running
// `-only locks` must not audit determinism exemptions it cannot
// check).
func applyExemptions(diags []Diagnostic, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	running := map[string]bool{}
	for _, a := range analyzers {
		running[a.Name] = true
	}
	// (file, line, pass) -> exemption
	type key struct {
		file string
		line int
		pass string
	}
	index := map[key]exemption{}
	var unjustified []exemption
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := exemptRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					ex := exemption{
						analyzer: m[1],
						reason:   strings.TrimSpace(m[2]),
						pos:      pkg.Fset.Position(c.Pos()),
					}
					if !running[ex.analyzer] {
						continue
					}
					if ex.reason == "" {
						unjustified = append(unjustified, ex)
						continue
					}
					index[key{ex.pos.Filename, ex.pos.Line, ex.analyzer}] = ex
				}
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if _, ok := index[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; ok {
			continue
		}
		if _, ok := index[key{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}]; ok {
			continue
		}
		out = append(out, d)
	}
	for _, ex := range unjustified {
		out = append(out, Diagnostic{
			Pos:      ex.pos,
			Analyzer: ex.analyzer,
			Message:  fmt.Sprintf("p4:lint-exempt %s has no justification: explain why the finding does not apply", ex.analyzer),
		})
	}
	return out
}

// parentMap records the enclosing node of every AST node in a file,
// letting analyzers look "up" the tree (e.g. is this conversion
// immediately multiplied by a unit constant?).
type parentMap map[ast.Node]ast.Node

func buildParents(files []*ast.File) parentMap {
	pm := parentMap{}
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				pm[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return pm
}
