// Package analysis is the repository's domain-aware static-analysis
// layer: a small, stdlib-only analogue of golang.org/x/tools/go/analysis
// specialised for the invariants this P4-perfSONAR reproduction must
// preserve — register bit widths, nanosecond time units, lock
// discipline on shared control-plane state, checked I/O errors on the
// archiver paths, and cancellable goroutines in server code.
//
// A shared Loader parses and type-checks every package once; each
// Analyzer then walks the typed ASTs and reports Diagnostics. The
// cmd/p4lint driver runs the registry over package patterns and prints
// file:line: message lines (or JSON).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Diagnostic is one analyzer finding, positioned in the original
// source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line: form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass (used by -only and in diagnostics).
	Name string
	// Doc is a one-line description for usage output.
	Doc string
	// Run inspects a type-checked package, reporting findings through
	// pass.Reportf.
	Run func(pass *Pass)
}

// Pass bundles everything an analyzer needs to inspect one package.
type Pass struct {
	Pkg      *Package
	Analyzer *Analyzer

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full registry of passes, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		LocksAnalyzer,
		TimeUnitsAnalyzer,
		RegWidthAnalyzer,
		UncheckedErrAnalyzer,
		GoLeakAnalyzer,
		HotAllocAnalyzer,
		DocCommentAnalyzer,
	}
}

// ByName resolves a comma-separated -only list against the registry.
func ByName(names []string) ([]*Analyzer, error) {
	all := All()
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			known := make([]string, len(all))
			for i, a := range all {
				known[i] = a.Name
			}
			return nil, fmt.Errorf("analysis: unknown analyzer %q (known: %v)", n, known)
		}
	}
	return out, nil
}

// Run executes the given analyzers over the packages and returns the
// combined diagnostics sorted by file position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, Analyzer: a}
			a.Run(pass)
			out = append(out, pass.diags...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return out
}

// parentMap records the enclosing node of every AST node in a file,
// letting analyzers look "up" the tree (e.g. is this conversion
// immediately multiplied by a unit constant?).
type parentMap map[ast.Node]ast.Node

func buildParents(files []*ast.File) parentMap {
	pm := parentMap{}
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				pm[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return pm
}
