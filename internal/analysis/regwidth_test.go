package analysis

import "testing"

func TestRegWidthAnalyzer(t *testing.T) {
	runFixture(t, "regwidth", "regwidth")
}
