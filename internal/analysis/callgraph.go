package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Program is the whole-program view the dataflow passes operate on: the
// requested packages plus every module-internal package they import,
// transitively (the loader memoises them, so expanding the closure costs
// nothing), with a conservative call graph over every function
// declaration in that closure.
//
// The graph is conservative in the standard static-analysis sense:
//
//   - Static calls (package-level functions, methods on concrete
//     receivers, qualified stdlib calls) produce exactly one edge.
//   - Calls through an interface method produce one dynamic edge to the
//     corresponding method of every named type in the program whose
//     method set implements the interface — a superset of the targets
//     any execution can reach (method-set dispatch, no pointer
//     analysis).
//   - Calls through plain function values (fields, parameters, locals
//     of function type) produce no edge: a function literal runs when
//     it is invoked, not where it is defined, and without tracking
//     values we cannot know its call sites. Passes that rely on
//     reachability document this as their known incompleteness.
//
// Function literal bodies are likewise not attributed to their
// enclosing declaration: the literal may escape and run on a different
// goroutine long after the declaring function returned.
type Program struct {
	// Pkgs is the analysis closure, sorted by import path.
	Pkgs []*Package
	Fset *token.FileSet

	funcs   map[*types.Func]*FuncInfo
	ordered []*FuncInfo
	callees map[*types.Func][]Edge
}

// FuncInfo pairs a function object with its declaration and package.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Name renders the function for diagnostics: Recv.Name for methods,
// plain name for functions.
func (fi *FuncInfo) Name() string {
	if sig, ok := fi.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fi.Obj.Name()
		}
	}
	return fi.Obj.Name()
}

// Edge is one call-graph edge, positioned at the call site.
type Edge struct {
	Callee  *types.Func
	Site    token.Pos
	Dynamic bool   // resolved through interface method-set dispatch
	Iface   string // interface name for dynamic edges, for messages
}

// NewProgram builds the whole-program view from the requested packages.
// When the packages came from a shared Loader, the module import
// closure is folded in so cross-package edges (a tcp hot function
// calling into simtime) resolve; standalone packages analyze alone.
func NewProgram(pkgs []*Package) *Program {
	if len(pkgs) == 0 {
		return &Program{}
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	if l := pkgs[0].loader; l != nil {
		for path, p := range l.pkgs {
			if _, ok := byPath[path]; !ok {
				byPath[path] = p
			}
		}
	}
	prog := &Program{
		Fset:    pkgs[0].Fset,
		funcs:   make(map[*types.Func]*FuncInfo),
		callees: make(map[*types.Func][]Edge),
	}
	paths := make([]string, 0, len(byPath))
	for path := range byPath {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		prog.Pkgs = append(prog.Pkgs, byPath[path])
	}

	// Index every function declaration in the closure.
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fn, Pkg: pkg}
				prog.funcs[obj] = fi
				prog.ordered = append(prog.ordered, fi)
			}
		}
	}
	sort.Slice(prog.ordered, func(i, j int) bool {
		a, b := prog.ordered[i], prog.ordered[j]
		pa, pb := prog.Fset.Position(a.Decl.Pos()), prog.Fset.Position(b.Decl.Pos())
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		return pa.Line < pb.Line
	})

	// Named types declared in the closure that have methods: the
	// candidate set for interface dispatch.
	named := prog.namedWithMethods()

	for _, fi := range prog.ordered {
		prog.callees[fi.Obj] = prog.collectEdges(fi, named)
	}
	return prog
}

// FuncOf returns the FuncInfo for a function object declared in the
// program, or nil for stdlib/bodyless functions.
func (prog *Program) FuncOf(obj *types.Func) *FuncInfo { return prog.funcs[obj] }

// Functions returns every declared function, in file/line order.
func (prog *Program) Functions() []*FuncInfo { return prog.ordered }

// Callees returns the outgoing edges of fn, in call-site order (dynamic
// fan-out expands in deterministic type-name order).
func (prog *Program) Callees(fn *types.Func) []Edge { return prog.callees[fn] }

// namedWithMethods collects the named types in the program that declare
// or inherit methods, sorted by full name for deterministic dispatch
// expansion.
func (prog *Program) namedWithMethods() []*types.Named {
	seen := map[*types.Named]bool{}
	var out []*types.Named
	for _, fi := range prog.ordered {
		sig := fi.Obj.Type().(*types.Signature)
		if sig.Recv() == nil {
			continue
		}
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		n, ok := t.(*types.Named)
		if !ok || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Obj(), out[j].Obj()
		if a.Pkg() != nil && b.Pkg() != nil && a.Pkg().Path() != b.Pkg().Path() {
			return a.Pkg().Path() < b.Pkg().Path()
		}
		return a.Name() < b.Name()
	})
	return out
}

// collectEdges walks one function body and resolves its call sites.
// Function literal subtrees are skipped (see the Program doc).
func (prog *Program) collectEdges(fi *FuncInfo, named []*types.Named) []Edge {
	info := fi.Pkg.Info
	var edges []Edge
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fn, ok := info.Uses[fun].(*types.Func); ok {
				edges = append(edges, Edge{Callee: fn, Site: call.Pos()})
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				m, ok := sel.Obj().(*types.Func)
				if !ok {
					break
				}
				recv := sel.Recv()
				if iface, ok := recv.Underlying().(*types.Interface); ok {
					edges = append(edges, prog.dispatch(call.Pos(), recv, iface, m.Name(), named)...)
				} else {
					edges = append(edges, Edge{Callee: m, Site: call.Pos()})
				}
				break
			}
			// Qualified call: pkg.Func.
			if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
				edges = append(edges, Edge{Callee: fn, Site: call.Pos()})
			}
		}
		return true
	})
	return edges
}

// dispatch expands an interface-method call to every program type whose
// method set implements the interface.
func (prog *Program) dispatch(site token.Pos, recv types.Type, iface *types.Interface, method string, named []*types.Named) []Edge {
	ifaceName := recv.String()
	if n, ok := recv.(*types.Named); ok {
		ifaceName = n.Obj().Name()
	}
	var out []Edge
	for _, t := range named {
		impl := types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
		if !impl {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, t.Obj().Pkg(), method)
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if prog.funcs[m] == nil {
			// Method inherited from an embedded stdlib type: no body in
			// the program; nothing to traverse.
			continue
		}
		out = append(out, Edge{Callee: m, Site: site, Dynamic: true, Iface: ifaceName})
	}
	return out
}

// CallChain reconstructs a shortest root→target call path from a BFS
// parent map, rendered as "a -> b -> c" for diagnostics.
type chainNode struct {
	fn   *types.Func
	prev *chainNode
}

func renderChain(prog *Program, node *chainNode) string {
	var names []string
	for n := node; n != nil; n = n.prev {
		if fi := prog.funcs[n.fn]; fi != nil {
			names = append(names, fi.Name())
		} else {
			names = append(names, n.fn.Name())
		}
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}
