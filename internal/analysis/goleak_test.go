package analysis

import "testing"

func TestGoLeakAnalyzer(t *testing.T) {
	runFixture(t, "goleak", "goleak")
}
