package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// isNamed reports whether t is the named type pkgPath.name (after
// stripping pointers).
func isNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isLockType reports whether t itself is sync.Mutex or sync.RWMutex.
func isLockType(t types.Type) bool {
	return isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex")
}

// containsLock reports whether a value of type t holds lock state by
// value (so copying it copies the lock).
func containsLock(t types.Type) bool {
	return containsLockDepth(t, 0)
}

func containsLockDepth(t types.Type, depth int) bool {
	if depth > 10 {
		return false
	}
	if isLockType(t) || isNamed(t, "sync", "WaitGroup") || isNamed(t, "sync", "Once") || isNamed(t, "sync", "Cond") {
		if _, isPtr := t.(*types.Pointer); !isPtr {
			return true
		}
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLockDepth(u.Elem(), depth+1)
	}
	return false
}

// isDurationType reports whether t is time.Duration.
func isDurationType(t types.Type) bool { return isNamed(t, "time", "Duration") }

// isSimTime reports whether t is the simulation clock type
// repro/internal/simtime.Time (matched by package suffix so the
// analyzer also works on forks with a different module name).
func isSimTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/simtime")
}

// isTimeQuantity reports whether t carries nanosecond semantics in this
// codebase.
func isTimeQuantity(t types.Type) bool {
	return isDurationType(t) || isSimTime(t)
}

// exprString renders an expression compactly, for use as a map key
// (matching mu in "mu.Lock()" with "mu.Unlock()") and in messages.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// funcBodies yields every function body in the package together with
// its name, covering both declarations and literals.
type funcBody struct {
	name string
	node ast.Node // *ast.FuncDecl or *ast.FuncLit
	body *ast.BlockStmt
}

func funcBodies(files []*ast.File) []funcBody {
	var out []funcBody
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					out = append(out, funcBody{name: fn.Name.Name, node: fn, body: fn.Body})
				}
			case *ast.FuncLit:
				out = append(out, funcBody{name: "func literal", node: fn, body: fn.Body})
			}
			return true
		})
	}
	return out
}
