package analysis

import "testing"

func TestHotAllocAnalyzer(t *testing.T) {
	runFixture(t, "hotalloc", "hotalloc")
}
