package analysis

import "testing"

func TestUncheckedErrAnalyzer(t *testing.T) {
	runFixture(t, "uncheckederr", "uncheckederr")
}
