package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// TimeUnitsAnalyzer guards the nanosecond bookkeeping the measurement
// pipeline lives on. Both time.Duration and simtime.Time count integer
// nanoseconds; the paper's RTT/queue-delay math silently produces
// garbage if a bare number (interpreted as nanoseconds) stands in for a
// scaled duration, or if a counter named in milliseconds/seconds is
// converted without rescaling. It reports:
//
//   - bare nonzero integer constants used where time.Duration or
//     simtime.Time is expected (use unit constants: 5*time.Millisecond,
//     2*simtime.Second);
//   - multiplying two duration-typed values (the result is ns², not a
//     duration);
//   - converting an identifier whose name says milliseconds, micro-
//     seconds or seconds directly to a nanosecond time type without
//     multiplying by a unit constant.
var TimeUnitsAnalyzer = &Analyzer{
	Name: "timeunits",
	Doc:  "bare numeric literals or mis-scaled counters used as time.Duration/simtime.Time",
	Run:  runTimeUnits,
}

// unitConstNames are the scaling constants that make a bare number a
// legitimate duration expression.
var unitConstNames = map[string]bool{
	"Nanosecond": true, "Microsecond": true, "Millisecond": true,
	"Second": true, "Minute": true, "Hour": true,
}

func runTimeUnits(pass *Pass) {
	info := pass.Pkg.Info
	parents := pass.Pkg.Parents()
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			expr, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			tv, ok := info.Types[expr]
			if !ok {
				return true
			}

			// Rule 1: implicit untyped constant -> duration type.
			// Negative constants are sentinels, not durations, and an
			// explicit conversion (simtime.Time(5)) is a deliberate
			// choice; both are exempt.
			if tv.Value != nil && isTimeQuantity(tv.Type) && constant.Sign(tv.Value) > 0 {
				if bareConstant(info, expr) && !inScalarContext(parents, expr) &&
					!inConversion(info, parents, expr) && !declaresUnitConst(info, parents, expr) {
					pass.Reportf(expr.Pos(), "bare constant %s used as %s: write it with a unit constant (e.g. %s)",
						tv.Value, tv.Type, suggestUnit(tv.Type))
					return false
				}
			}

			// Rules 2 and 3 inspect specific expression shapes.
			switch e := expr.(type) {
			case *ast.BinaryExpr:
				// Rule 2: d1 * d2 where both carry nanosecond semantics
				// is ns², not a duration. The stdlib idiom
				// Duration(n) * unit — a conversion-from-integer times a
				// unit held in a constant or variable — is the accepted
				// way to scale and is exempt.
				if e.Op == token.MUL {
					lt, rt := info.Types[e.X], info.Types[e.Y]
					if isTimeQuantity(lt.Type) && isTimeQuantity(rt.Type) &&
						lt.Value == nil && rt.Value == nil &&
						!isIntConversion(info, e.X) && !isIntConversion(info, e.Y) {
						pass.Reportf(e.Pos(), "multiplying two time quantities (%s * %s) yields ns², not a duration; one operand must be a dimensionless scalar",
							lt.Type, rt.Type)
					}
				}
			case *ast.CallExpr:
				checkUnitConversion(pass, info, parents, e)
			}
			return true
		})
	}
}

// bareConstant reports whether the constant expression mentions no unit
// constant and is not declared as a typed duration elsewhere.
func bareConstant(info *types.Info, expr ast.Expr) bool {
	bare := true
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if c, ok := obj.(*types.Const); ok {
			if unitConstNames[c.Name()] && isTimeQuantity(c.Type()) {
				bare = false
			} else if isTimeQuantity(c.Type()) {
				// Named constant already declared with a duration type:
				// its declaration site is the place to check.
				bare = false
			}
		}
		return true
	})
	return bare
}

// inConversion reports whether expr is the operand of an explicit
// conversion to a time quantity type: T(5) states intent.
func inConversion(info *types.Info, parents parentMap, expr ast.Expr) bool {
	p, ok := parents[expr]
	if !ok {
		return false
	}
	call, ok := p.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 || call.Args[0] != expr {
		return false
	}
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// declaresUnitConst reports whether expr is the declaration value of a
// unit constant itself (Nanosecond Time = 1 in the simtime package).
func declaresUnitConst(info *types.Info, parents parentMap, expr ast.Expr) bool {
	p, ok := parents[expr]
	if !ok {
		return false
	}
	spec, ok := p.(*ast.ValueSpec)
	if !ok {
		return false
	}
	for _, name := range spec.Names {
		if unitConstNames[name.Name] {
			return true
		}
	}
	return false
}

// isIntConversion reports whether expr converts an integer expression
// to a time quantity type (the Duration(n) * unit idiom's scalar).
func isIntConversion(info *types.Info, expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType() && isTimeQuantity(tv.Type)
}

// inScalarContext reports whether the constant is used as a
// dimensionless scalar — a multiplier, divisor or shift — where a bare
// number is correct (d / 2, 3 * time.Second's 3, d >> 1).
func inScalarContext(parents parentMap, expr ast.Expr) bool {
	parent, ok := parents[expr]
	if !ok {
		return false
	}
	be, ok := parent.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.MUL, token.QUO, token.REM, token.SHL, token.SHR:
		return true
	}
	return false
}

// checkUnitConversion flags time.Duration(x)/simtime.Time(x) where x is
// named in a coarser unit (ms/us/sec) and the result is not rescaled.
func checkUnitConversion(pass *Pass, info *types.Info, parents parentMap, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || !isTimeQuantity(tv.Type) {
		return
	}
	var name string
	switch arg := call.Args[0].(type) {
	case *ast.Ident:
		name = arg.Name
	case *ast.SelectorExpr:
		name = arg.Sel.Name
	case *ast.StarExpr:
		if id, ok := arg.X.(*ast.Ident); ok {
			name = id.Name
		}
	default:
		return
	}
	unit := coarseUnit(name)
	if unit == "" {
		return
	}
	// A conversion immediately scaled by a unit constant is the correct
	// idiom: time.Duration(ms) * time.Millisecond.
	if p, ok := parents[call]; ok {
		if be, ok := p.(*ast.BinaryExpr); ok && be.Op == token.MUL {
			other := be.X
			if other == call {
				other = be.Y
			}
			if mentionsUnitConst(info, other) {
				return
			}
		}
	}
	pass.Reportf(call.Pos(), "%s(%s) treats a value named in %s as nanoseconds; multiply by the matching unit constant",
		tv.Type, name, unit)
}

// coarseUnit recognises identifier names that declare a non-nanosecond
// unit.
func coarseUnit(name string) string {
	for _, tok := range splitNameTokens(name) {
		switch tok {
		case "ms", "msec", "millis", "millisecond", "milliseconds":
			return "milliseconds"
		case "us", "usec", "micros", "microsecond", "microseconds":
			return "microseconds"
		case "sec", "secs", "second", "seconds":
			return "seconds"
		// "min"/"mins" deliberately excluded: in measurement code they
		// almost always mean minimum, not minutes.
		case "minute", "minutes":
			return "minutes"
		}
	}
	return ""
}

// splitNameTokens splits snake_case and camelCase identifiers into
// lower-cased tokens.
func splitNameTokens(name string) []string {
	var tokens []string
	for _, part := range strings.Split(name, "_") {
		start := 0
		for i := 1; i <= len(part); i++ {
			if i == len(part) || (part[i] >= 'A' && part[i] <= 'Z') {
				if i > start {
					tokens = append(tokens, strings.ToLower(part[start:i]))
				}
				start = i
			}
		}
	}
	return tokens
}

func mentionsUnitConst(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if c, ok := info.Uses[id].(*types.Const); ok && unitConstNames[c.Name()] && isTimeQuantity(c.Type()) {
				found = true
			}
		}
		return true
	})
	return found
}

func suggestUnit(t types.Type) string {
	if isSimTime(t) {
		return "10 * simtime.Millisecond"
	}
	return "10 * time.Millisecond"
}
