package analysis

import "testing"

func TestDocCommentAnalyzer(t *testing.T) {
	runFixture(t, "doccomment", "doccomment")
}
