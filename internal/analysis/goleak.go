package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeakAnalyzer looks for goroutines that can never be told to stop.
// The collector daemon, the Logstash TCP input and the p4runtime server
// all spawn per-connection and accept-loop goroutines; under production
// load a goroutine running an unbounded loop with no cancellation
// signal is a leak that accretes until the process dies. A goroutine
// body counts as cancellable when it can observe a stop: it references
// a context.Context, receives from a channel (done channel, select), or
// participates in a sync.WaitGroup — or when its unbounded loops can
// exit through a return or break (e.g. an accept loop that returns on
// listener-close errors).
var GoLeakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc:  "go statements whose goroutine loops forever with no cancellation signal",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) {
	info := pass.Pkg.Info
	// Index same-package function declarations so `go s.loop()` can be
	// analysed through its body.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			var what string
			switch fun := g.Call.Fun.(type) {
			case *ast.FuncLit:
				body, what = fun.Body, "goroutine literal"
			case *ast.Ident:
				if fd, ok := decls[info.Uses[fun]]; ok {
					body, what = fd.Body, "goroutine "+fun.Name
				}
			case *ast.SelectorExpr:
				if fd, ok := decls[info.Uses[fun.Sel]]; ok {
					body, what = fd.Body, "goroutine "+fun.Sel.Name
				}
			}
			if body == nil {
				return true
			}
			if loop := uncancellableLoop(info, body); loop != nil {
				pass.Reportf(g.Pos(), "%s loops forever with no cancellation signal (no context, done channel, WaitGroup, return or break) — it leaks under load", what)
			}
			return true
		})
	}
}

// uncancellableLoop returns an unbounded for-loop in body that has no
// way out and no stop signal, or nil.
func uncancellableLoop(info *types.Info, body *ast.BlockStmt) *ast.ForStmt {
	if referencesCancellation(info, body) {
		return nil
	}
	var found *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		escapes := false
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ReturnStmt:
				escapes = true
			case *ast.BranchStmt:
				if m.Tok == token.BREAK || m.Tok == token.GOTO {
					escapes = true
				}
			case *ast.FuncLit:
				return false
			}
			return true
		})
		if !escapes {
			found = loop
		}
		return true
	})
	return found
}

// referencesCancellation reports whether the body can observe a stop
// signal: a context.Context value, a channel receive or select, or a
// sync.WaitGroup interaction.
func referencesCancellation(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.Ident:
			if t := info.TypeOf(n); t != nil && isNamed(t, "context", "Context") {
				found = true
			}
		case *ast.SelectorExpr:
			if t := info.TypeOf(n.X); t != nil && isNamed(t, "sync", "WaitGroup") {
				found = true
			}
		}
		return true
	})
	return found
}
