package analysis

import "testing"

func TestDeterminism(t *testing.T) {
	runFixture(t, "determinism", "determinism")
}
