package analysis

import (
	"path/filepath"
	"regexp"
	"testing"
)

// wantRe extracts the expectation from a `// want "pattern"` comment.
// The pattern is a regular expression matched against the diagnostic
// message reported on the same line.
var wantRe = regexp.MustCompile(`//\s*want\s+"(.*)"`)

type wantComment struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

// runFixture type-checks testdata/src/<fixture>, runs one analyzer over
// it, and requires the diagnostics to line up one-to-one with the
// fixture's want comments: every want must be matched by a diagnostic
// on its line, and every diagnostic must be claimed by a want.
func runFixture(t *testing.T, analyzerName, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(".", dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages from %s, want 1", len(pkgs), dir)
	}
	pkg := pkgs[0]
	for _, e := range pkg.TypeErrors {
		t.Errorf("fixture must type-check cleanly: %v", e)
	}
	if t.Failed() {
		t.FailNow()
	}

	var wants []*wantComment
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &wantComment{
					file:    pos.Filename,
					line:    pos.Line,
					pattern: m[1],
					re:      regexp.MustCompile(m[1]),
				})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", fixture)
	}

	analyzers, err := ByName([]string{analyzerName})
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	for _, d := range Run(pkgs, analyzers) {
		claimed := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no %s diagnostic matching %q", w.file, w.line, analyzerName, w.pattern)
		}
	}
}
