package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterminismAnalyzer guards the reproducibility contract of the
// simulation-facing packages: every experiment run with the same seed
// must produce byte-identical output (the witness gate diffs fig CSVs
// against golden copies). Inside the deterministic scope
// (internal/experiments, internal/simtime, internal/core) the pass
// reports:
//
//   - time.Now — wall-clock reads vary run to run; the simulation
//     clock (simtime) is the only time source the scope may consult;
//   - calls that *transitively* reach time.Now through module functions
//     outside the scope, resolved over the whole-program call graph and
//     reported at the deterministic call site with the offending chain;
//   - the global math/rand functions (Intn, Float64, Shuffle, Perm,
//     ...) — the process-wide source is shared and, unseeded, differs
//     across runs; randomness must flow from the experiment seed via
//     rand.New(rand.NewSource(seed));
//   - map iteration whose body feeds an order-sensitive sink — a call
//     per key (scheduling, registration, output), a channel send, or a
//     string/slice accumulation that is never sorted afterwards. The
//     collect-keys-then-sort idiom (append inside the range, sort.Strings
//     after it) is recognised and accepted; per-key calls are flagged
//     regardless, because the calls already happened in map order.
//
// A site that is deliberate (a real-TCP drain loop, telemetry
// timestamps) is excluded with a justified `p4:lint-exempt` line
// comment naming this pass; exempted time.Now sites also stop the
// transitive propagation.
var DeterminismAnalyzer = &Analyzer{
	Name:       "determinism",
	Doc:        "wall clock, unseeded math/rand, and order-sensitive map iteration in the deterministic simulation scope",
	RunProgram: runDeterminism,
}

// determinismScopes are the package-path fragments forming the
// deterministic scope; the fixture directory rides the list so the pass
// stays testable (its subpackages are deliberately out of scope,
// standing in for "the rest of the module").
var determinismScopes = []string{
	"internal/experiments", "internal/simtime", "internal/core",
	"testdata/src/determinism",
}

func runDeterminism(pass *ProgramPass) {
	prog := pass.Prog
	exemptLn := exemptLines(prog.Pkgs, pass.Analyzer.Name)
	skip := func(pos token.Pos) bool {
		return exemptCovers(exemptLn, prog.Fset.Position(pos))
	}

	// Whole-program wall-clock facts: where each function calls time.Now
	// directly (exempted sites do not count), then the transitive
	// closure over the call graph.
	wallAt := map[*types.Func]token.Pos{}
	for _, fi := range prog.Functions() {
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calledFunc(fi.Pkg.Info, call); fn != nil &&
				fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" && !skip(call.Pos()) {
				if _, seen := wallAt[fi.Obj]; !seen {
					wallAt[fi.Obj] = call.Pos()
				}
			}
			return true
		})
	}
	reaches := map[*types.Func]bool{}
	for fn := range wallAt {
		reaches[fn] = true
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range prog.Functions() {
			if reaches[fi.Obj] {
				continue
			}
			for _, e := range prog.Callees(fi.Obj) {
				if reaches[e.Callee] {
					reaches[fi.Obj] = true
					changed = true
					break
				}
			}
		}
	}

	for _, fi := range prog.Functions() {
		if !pathInScope(fi.Pkg.Path, determinismScopes) {
			continue
		}
		info := fi.Pkg.Info

		// Direct wall clock and global math/rand.
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calledFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "time" && fn.Name() == "Now":
				pass.Reportf(call.Pos(), "time.Now in deterministic package %s: wall clock varies run to run; consult the simulation clock (simtime) instead", fi.Pkg.Types.Name())
			case fn.Pkg().Path() == "math/rand" && isGlobalRandFunc(fn):
				pass.Reportf(call.Pos(), "global math/rand.%s in deterministic package %s: the process-wide source is not derived from the experiment seed; use rand.New(rand.NewSource(seed))", fn.Name(), fi.Pkg.Types.Name())
			}
			return true
		})

		// Transitive wall clock through out-of-scope module functions.
		reported := map[token.Pos]bool{}
		for _, e := range prog.Callees(fi.Obj) {
			callee := prog.FuncOf(e.Callee)
			if callee == nil || pathInScope(callee.Pkg.Path, determinismScopes) {
				continue // stdlib (direct time.Now caught above) or flagged in its own scope
			}
			if !reaches[e.Callee] || skip(e.Site) || reported[e.Site] {
				continue
			}
			reported[e.Site] = true
			chain, at := wallChain(prog, e.Callee, wallAt)
			pass.Reportf(e.Site, "call from deterministic package %s reaches time.Now via %s (at %s): thread the simulation clock through, or exempt the site with a justification", fi.Pkg.Types.Name(), chain, prog.Fset.Position(at))
		}

		// Order-sensitive map iteration.
		checkMapOrder(pass, fi)
	}
}

// calledFunc resolves a call expression to its *types.Func for both
// ident and selector call forms, or nil.
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isGlobalRandFunc reports whether fn is a math/rand package-level
// generator (backed by the shared global source). Constructors are
// fine: they are how seeded sources get built.
func isGlobalRandFunc(fn *types.Func) bool {
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf":
		return false
	}
	return true
}

// wallChain reconstructs a shortest call chain from fn to a function
// with a direct time.Now, returning the rendered chain and the clock
// read's position.
func wallChain(prog *Program, fn *types.Func, wallAt map[*types.Func]token.Pos) (string, token.Pos) {
	visited := map[*types.Func]bool{fn: true}
	queue := []*chainNode{{fn: fn}}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		if at, ok := wallAt[node.fn]; ok {
			return renderChain(prog, node), at
		}
		for _, e := range prog.Callees(node.fn) {
			if !visited[e.Callee] {
				visited[e.Callee] = true
				queue = append(queue, &chainNode{fn: e.Callee, prev: node})
			}
		}
	}
	return calleeName(prog, fn), token.NoPos
}

// checkMapOrder flags map iterations whose bodies are order-sensitive.
func checkMapOrder(pass *ProgramPass, fi *FuncInfo) {
	info := fi.Pkg.Info

	// Positions of sort-ish calls in the body (sort.Strings, sortTimes,
	// sortedKeys...), used to accept the collect-then-sort idiom.
	var sortEnds []token.Pos
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
			if id, ok := fun.X.(*ast.Ident); ok && id.Name == "sort" {
				name = "sort" + name
			}
		}
		if strings.Contains(strings.ToLower(name), "sort") {
			sortEnds = append(sortEnds, call.Pos())
		}
		return true
	})
	sortedAfter := func(pos token.Pos) bool {
		for _, p := range sortEnds {
			if p > pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		kind, ok := mapOrderSink(info, rng)
		if !ok {
			return true
		}
		switch kind {
		case "collects":
			if sortedAfter(rng.End()) {
				return true // collect-then-sort idiom: accepted
			}
			pass.Reportf(rng.Pos(), "map iteration accumulates output in nondeterministic order in %s and the result is never sorted: collect the keys, sort them, then iterate (the sortedKeys idiom)", fi.Name())
		default:
			pass.Reportf(rng.Pos(), "map iteration performs a %s per key in %s: the keys arrive in a different order every run; iterate over sorted keys (the sortedKeys idiom) so runs are reproducible", kind, fi.Name())
		}
		return true
	})
}

// mapOrderSink classifies the body of a map range as order-sensitive:
// "call" (an effectful statement per key), "channel send", or
// "collects" (appends/concatenates into state that outlives the loop).
// Bodies that only read, aggregate commutatively (+= of numbers,
// max/min), or mutate the map itself are not sinks.
func mapOrderSink(info *types.Info, rng *ast.RangeStmt) (string, bool) {
	kind := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if kind == "call" || kind == "channel send" {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			kind = "channel send"
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calledFunc(info, call)
			if fn == nil {
				return true // builtins (delete, clear) and func values: order-safe or unknown
			}
			if strings.Contains(strings.ToLower(fn.Name()), "sort") {
				return true
			}
			kind = "call to " + fn.Name()
		case *ast.AssignStmt:
			// x = append(x, ...) or s += ... where the target is
			// declared outside the loop.
			for i, rhs := range s.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					continue
				}
				if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
					continue
				}
				if i < len(s.Lhs) && declaredOutside(info, s.Lhs[i], rng) {
					if kind == "" {
						kind = "collects"
					}
				}
			}
			if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 {
				if t := info.TypeOf(s.Lhs[0]); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 && declaredOutside(info, s.Lhs[0], rng) {
						if kind == "" {
							kind = "collects"
						}
					}
				}
			}
		}
		return true
	})
	return kind, kind != ""
}

// declaredOutside reports whether the expression's root identifier was
// declared before the range statement (so per-iteration writes
// accumulate across the loop).
func declaredOutside(info *types.Info, e ast.Expr, rng *ast.RangeStmt) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			return obj != nil && obj.Pos() < rng.Pos()
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return false
		}
	}
}
