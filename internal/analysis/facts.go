package analysis

import (
	"go/token"
)

// exemptLines collects the justified `p4:lint-exempt <pass>: reason`
// lines for one pass across packages, as file → line set.
//
// applyExemptions already suppresses diagnostics that land on an
// exempted line, but whole-program passes report transitive findings at
// a distant root (a hotpath function, a deterministic caller) where the
// line-level comment cannot reach. Those passes consult this index to
// stop fact propagation at the exempted site itself: an exempted
// time.Now does not make its callers wall-clocked, an exempted Lock
// does not make its root hot-path dirty.
func exemptLines(pkgs []*Package, pass string) map[string]map[int]bool {
	idx := map[string]map[int]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := exemptRe.FindStringSubmatch(c.Text)
					if m == nil || m[1] != pass || len(m[2]) == 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					if idx[pos.Filename] == nil {
						idx[pos.Filename] = map[int]bool{}
					}
					idx[pos.Filename][pos.Line] = true
				}
			}
		}
	}
	return idx
}

// exemptCovers reports whether a source position is covered by an
// exemption on its own line or the line above, mirroring
// applyExemptions' placement rule.
func exemptCovers(idx map[string]map[int]bool, pos token.Position) bool {
	lines := idx[pos.Filename]
	return lines != nil && (lines[pos.Line] || lines[pos.Line-1])
}
