package analysis

import (
	"path/filepath"
	"testing"
)

func TestLoaderResolvesModuleInternalImports(t *testing.T) {
	dir := filepath.Join("testdata", "src", "regwidth")
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(".", dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	// The fixture imports repro/internal/dataplane; a clean type-check
	// proves the loader resolved it through the module, not GOPATH.
	for _, e := range pkg.TypeErrors {
		t.Errorf("type error: %v", e)
	}
	want := "repro/internal/analysis/testdata/src/regwidth"
	if pkg.Path != want {
		t.Errorf("import path = %q, want %q", pkg.Path, want)
	}
}

func TestLoadRecursiveSkipsTestdata(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	// Walking the analysis package itself must not descend into
	// testdata: fixtures are inputs, not packages under analysis.
	pkgs, err := loader.Load(".", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if filepath.Base(filepath.Dir(p.Dir)) == "testdata" || filepath.Base(p.Dir) == "testdata" {
			t.Errorf("recursive load descended into testdata: %s", p.Dir)
		}
	}
	if len(pkgs) != 1 {
		t.Errorf("got %d packages under internal/analysis, want 1 (testdata skipped)", len(pkgs))
	}
}

func TestLoadHonorsBuildConstraints(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	// internal/packet carries a //go:build race twin of pool_norace.go;
	// the loader must pick the same file go build does, or the pair
	// type-checks as a redeclaration.
	pkgs, err := loader.Load(".", "../packet")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	for _, e := range pkg.TypeErrors {
		t.Errorf("type error: %v", e)
	}
	for _, f := range pkg.Files {
		name := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
		if name == "pool_race.go" {
			t.Error("loader included the race-tagged pool_race.go")
		}
	}
}

func TestByNameRejectsUnknownAnalyzer(t *testing.T) {
	if _, err := ByName([]string{"nosuchpass"}); err == nil {
		t.Fatal("ByName must reject unknown analyzer names")
	}
	got, err := ByName([]string{"locks", "regwidth"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "locks" || got[1].Name != "regwidth" {
		t.Fatalf("ByName resolved %v", got)
	}
}
