package analysis

import "testing"

func TestLockOrder(t *testing.T) {
	runFixture(t, "lockorder", "lockorder")
}
