package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// sortDiagnostics puts findings into the reporting order the driver and
// CI rely on being stable run to run: file, line, pass, column,
// message. Run applies it before returning; the ordering regression
// test pins it down as a contract.
func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// RenderText writes the conventional file:line:col: pass: message
// lines.
func RenderText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
}

// RenderJSON writes the diagnostics as an indented JSON array, the
// machine-readable form consumed by dashboards and by the ordering
// regression test.
func RenderJSON(w io.Writer, diags []Diagnostic) error {
	type jsonDiag struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	out := make([]jsonDiag, len(diags))
	for i, d := range diags {
		out[i] = jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// RenderGitHub writes GitHub Actions workflow commands, one ::error
// annotation per finding, so CI failures surface inline on the PR diff.
// Message data is escaped per the workflow-command rules (%, CR, LF;
// plus comma and colon inside properties).
func RenderGitHub(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=p4lint %s::%s\n",
			ghaProperty(d.Pos.Filename), d.Pos.Line, d.Pos.Column,
			ghaProperty(d.Analyzer), ghaData(d.Message))
	}
}

// ghaData escapes a workflow-command data section.
func ghaData(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

// ghaProperty escapes a workflow-command property value.
func ghaProperty(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
	return r.Replace(s)
}
