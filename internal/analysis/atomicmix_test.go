package analysis

import "testing"

func TestAtomicMix(t *testing.T) {
	runFixture(t, "atomicmix", "atomicmix")
}
