package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMixAnalyzer polices the exact race class fixed by hand in PR 1
// (psarchiver pipeline counters) and PR 4 (shipper scrape
// consistency): a field that any code in the module accesses through
// sync/atomic must never be read or written plainly anywhere else.
// Mixed access breaks the happens-before edges the atomic side was
// bought for — a plain read can observe a torn or stale value, and the
// race detector only catches the schedules a test happens to exercise.
//
// The pass runs whole-program: phase one collects every field or
// variable whose address is passed to a sync/atomic Add/Load/Store/
// Swap/CompareAndSwap call, keyed by the types.Object identity shared
// across packages by the loader; phase two reports every plain
// SelectorExpr/Ident access to one of those objects anywhere in the
// closure.
//
// Accepted plain contexts, deliberately excluded:
//
//   - composite-literal field keys (construction before the value is
//     shared cannot race);
//   - len/cap of array fields and value-less `for i := range arr`
//     (array lengths are compile-time constants, no element load);
//   - the address operands of the atomic calls themselves.
//
// A remaining plain access that is provably unshared (e.g. a reset
// under an exclusive-owner contract) is suppressed with a justified
// `p4:lint-exempt` line comment naming this pass.
var AtomicMixAnalyzer = &Analyzer{
	Name:       "atomicmix",
	Doc:        "fields accessed through sync/atomic must not be read or written plainly anywhere in the module",
	RunProgram: runAtomicMix,
}

// atomicFuncPrefixes are the sync/atomic entry points whose first
// argument is the address of the shared word.
func isAtomicFunc(name string) bool {
	for _, p := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		if len(name) >= len(p) && name[:len(p)] == p {
			return true
		}
	}
	return false
}

func runAtomicMix(pass *ProgramPass) {
	prog := pass.Prog

	// Phase one: find atomically-accessed objects and remember the
	// exact AST nodes that form their atomic access paths, so phase two
	// can skip them.
	atomicSite := map[types.Object]token.Pos{} // first atomic access, for messages
	inAtomic := map[ast.Node]bool{}            // nodes inside an atomic address operand
	for _, pkg := range prog.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || !isAtomicFunc(sel.Sel.Name) {
					return true
				}
				fn, ok := info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					return true
				}
				obj := addressedObject(info, un.X)
				if obj == nil {
					return true
				}
				if _, seen := atomicSite[obj]; !seen {
					atomicSite[obj] = call.Pos()
				}
				// Mark the whole address operand subtree as atomic
				// context (covers h.buckets[i] index reads too).
				ast.Inspect(un.X, func(m ast.Node) bool {
					inAtomic[m] = true
					return true
				})
				return true
			})
		}
	}
	if len(atomicSite) == 0 {
		return
	}

	// Phase two: plain accesses.
	type finding struct {
		pos token.Pos
		obj types.Object
		op  string
	}
	var finds []finding
	for _, pkg := range prog.Pkgs {
		info := pkg.Info
		parents := pkg.Parents()
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var obj types.Object
				switch e := n.(type) {
				case *ast.SelectorExpr:
					if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
						obj = s.Obj()
					} else {
						obj = info.Uses[e.Sel]
					}
				case *ast.Ident:
					// Only plain identifiers that are not the Sel of a
					// selector (those are handled above).
					if sel, ok := parents[e].(*ast.SelectorExpr); ok && sel.Sel == e {
						return true
					}
					obj = info.Uses[e]
				default:
					return true
				}
				if obj == nil {
					return true
				}
				if _, tracked := atomicSite[obj]; !tracked {
					return true
				}
				if inAtomic[n] || benignPlainAccess(info, parents, n) {
					return true
				}
				finds = append(finds, finding{pos: n.Pos(), obj: obj, op: accessKind(parents, n)})
				return true
			})
		}
	}
	sort.Slice(finds, func(i, j int) bool { return finds[i].pos < finds[j].pos })
	for _, f := range finds {
		pass.Reportf(f.pos, "%s of %s mixes with its sync/atomic access at %s: a plain access beside atomics is a data race (the PR-1 psarchiver class); use atomic.Load/Store here or move the field fully behind a mutex",
			f.op, objectLabel(f.obj), prog.Fset.Position(atomicSite[f.obj]))
	}
}

// addressedObject resolves the object whose address feeds an atomic
// call: a struct field (through any chain of selectors/indexing), a
// package-level variable, or a local.
func addressedObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X // &arr[i]: the shared object is the array field
		case *ast.SelectorExpr:
			if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
				return s.Obj()
			}
			return info.Uses[x.Sel]
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		default:
			return nil
		}
	}
}

// benignPlainAccess filters the accepted plain contexts: composite
// literal keys, len/cap, and value-less array ranges.
func benignPlainAccess(info *types.Info, parents parentMap, n ast.Node) bool {
	switch p := parents[n].(type) {
	case *ast.KeyValueExpr:
		if p.Key == n {
			if _, inLit := parents[p].(*ast.CompositeLit); inLit {
				return true
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
				return true
			}
		}
	case *ast.RangeStmt:
		if p.X == n && p.Value == nil {
			if t := info.TypeOf(p.X); t != nil {
				if _, isArr := t.Underlying().(*types.Array); isArr {
					return true
				}
			}
		}
	}
	return false
}

// accessKind reports whether the node is written or read, from its
// parent statement.
func accessKind(parents parentMap, n ast.Node) string {
	switch p := parents[n].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == n {
				return "plain write"
			}
		}
	case *ast.IncDecStmt:
		if p.X == n {
			return "plain write"
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return "plain address-taken use"
		}
	case *ast.IndexExpr:
		// arr[i] on the lhs of an assignment: look one level up.
		if p.X == n {
			switch pp := parents[p].(type) {
			case *ast.AssignStmt:
				for _, lhs := range pp.Lhs {
					if lhs == p {
						return "plain write"
					}
				}
			case *ast.IncDecStmt:
				if pp.X == p {
					return "plain write"
				}
			}
		}
	}
	return "plain read"
}

// objectLabel renders a field or variable for messages as Type.field
// or pkg.var.
func objectLabel(obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		// Walk the package scope for the named type owning the field.
		if pkg := v.Pkg(); pkg != nil {
			scope := pkg.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok {
					continue
				}
				st, ok := tn.Type().Underlying().(*types.Struct)
				if !ok {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					if st.Field(i) == v {
						return tn.Name() + "." + v.Name()
					}
				}
			}
		}
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}
