// Package goleak is a fixture for the goleak analyzer: goroutines
// running unbounded loops with no way to be told to stop.
package goleak

import "sync"

func work() {}

func step() error { return nil }

func stop() bool { return false }

// spin loops forever with no exit; launching it as a goroutine leaks.
func spin() {
	for {
		work()
	}
}

type looper struct{}

func (looper) run() {
	for {
		work()
	}
}

// badLiteral launches an unbounded anonymous loop.
func badLiteral() {
	go func() { // want "goroutine literal loops forever with no cancellation signal"
		for {
			work()
		}
	}()
}

// badNamed launches a same-package function that never returns.
func badNamed() {
	go spin() // want "goroutine spin loops forever with no cancellation signal"
}

// badMethod launches a method whose body loops forever.
func badMethod(l looper) {
	go l.run() // want "goroutine run loops forever with no cancellation signal"
}

// goodSelectDone watches a done channel through select.
func goodSelectDone(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

// goodChannelReceive blocks on a receive: it ends when the channel
// closes.
func goodChannelReceive(done chan struct{}) {
	go func() {
		<-done
		work()
	}()
}

// goodBreakEscape can leave the loop.
func goodBreakEscape() {
	go func() {
		for {
			if stop() {
				break
			}
			work()
		}
	}()
}

// goodErrorReturn is the accept-loop idiom: returns when the listener
// closes.
func goodErrorReturn() {
	go func() {
		for {
			if err := step(); err != nil {
				return
			}
		}
	}()
}

// goodRangeChannel drains a channel until it closes.
func goodRangeChannel(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// goodWaitGroup participates in a WaitGroup, so the owner tracks it.
func goodWaitGroup(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		work()
	}()
}
