// Package locks is a fixture for the locks analyzer: mutexes copied by
// value and Lock calls that can leak across a return path.
package locks

import "sync"

// Guarded embeds a mutex by value, so copying it copies lock state.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// badValueReceiver copies the receiver's mutex on every call.
func (g Guarded) badValueReceiver() int { // want "receiver passes lock by value"
	return g.n
}

// goodPointerReceiver takes the lock through a pointer: no copy.
func (g *Guarded) goodPointerReceiver() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// badParam receives a lock-bearing struct by value.
func badParam(g Guarded) int { // want "parameter passes lock by value"
	return g.n
}

// badAssignCopy copies a lock-bearing value out of a pointer.
func badAssignCopy(g *Guarded) int {
	snapshot := *g // want "assignment copies lock value"
	return snapshot.n
}

// badRangeCopy copies each element's mutex into the loop variable.
func badRangeCopy(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want "range clause copies lock value"
		total += g.n
	}
	return total
}

// badLockNoUnlock takes the lock and never releases it.
func badLockNoUnlock(g *Guarded) int {
	g.mu.Lock() // want "reachable without g.mu.Unlock"
	return g.n
}

// badEarlyReturn releases on the happy path but not on the early one.
func badEarlyReturn(g *Guarded, skip bool) int {
	g.mu.Lock() // want "return at .* is reachable without g.mu.Unlock"
	if skip {
		return 0
	}
	n := g.n
	g.mu.Unlock()
	return n
}

// goodDefer releases on every path via defer.
func goodDefer(g *Guarded, skip bool) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if skip {
		return 0
	}
	return g.n
}

// goodPaired unlocks before each return in source order.
func goodPaired(g *Guarded, skip bool) int {
	g.mu.Lock()
	if skip {
		g.mu.Unlock()
		return 0
	}
	n := g.n
	g.mu.Unlock()
	return n
}

// goodRWLock pairs RLock with a deferred RUnlock.
func goodRWLock(mu *sync.RWMutex, n *int) int {
	mu.RLock()
	defer mu.RUnlock()
	return *n
}

// badRLockLeak reads under RLock but forgets to release before
// returning.
func badRLockLeak(mu *sync.RWMutex, n *int) int {
	mu.RLock() // want "reachable without mu.RUnlock"
	return *n
}
