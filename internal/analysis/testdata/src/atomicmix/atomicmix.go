// Package atomicmix exercises the whole-program atomic/plain
// mixed-access pass: any field touched through sync/atomic must be
// atomic everywhere, the race class the psarchiver pipeline counters
// were once bitten by.
package atomicmix

import "sync/atomic"

type counters struct {
	hits uint64
	name string // never atomic: plain access stays legal
}

func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counters) scrape() uint64 {
	return c.hits // want "plain read of counters.hits mixes with its sync/atomic access"
}

func (c *counters) reset() {
	c.hits = 0 // want "plain write of counters.hits"
	c.name = "fresh"
}

func (c *counters) drift() {
	c.hits++ // want "plain write of counters.hits"
}

func (c *counters) ok() uint64 {
	return atomic.LoadUint64(&c.hits)
}

// Construction happens before the value is shared: composite-literal
// keys are accepted.
func newCounters() *counters {
	return &counters{hits: 0, name: "fresh"}
}

// exclusiveReset documents why its plain write cannot race.
func (c *counters) exclusiveReset() {
	c.hits = 0 //p4:lint-exempt atomicmix: called from the test harness before any goroutine starts
}

type histo struct {
	buckets [4]uint64
}

func (h *histo) observe(i int) {
	atomic.AddUint64(&h.buckets[i], 1)
}

// snapshot stays entirely in accepted contexts: len, a value-less
// array range, and atomic loads.
func (h *histo) snapshot() []uint64 {
	out := make([]uint64, 0, len(h.buckets))
	for i := range h.buckets {
		out = append(out, atomic.LoadUint64(&h.buckets[i]))
	}
	return out
}

func (h *histo) bad(i int) uint64 {
	return h.buckets[i] // want "plain read of histo.buckets"
}

var total uint64

func addTotal() {
	atomic.AddUint64(&total, 1)
}

func readTotal() uint64 {
	return total // want "plain read of atomicmix.total"
}
