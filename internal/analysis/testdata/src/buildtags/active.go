//go:build !p4lint_fixture_other

// Package buildtags carries a build-tag twin pair: exactly one of the
// two files is in the default configuration, and a loader that ignored
// constraints would see Marker redeclared.
package buildtags

// Marker reports which twin was compiled.
func Marker() string { return "active" }
