//go:build p4lint_fixture_other

package buildtags

// Marker reports which twin was compiled.
func Marker() string { return "other" }
