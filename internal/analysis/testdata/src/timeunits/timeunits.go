// Package timeunits is a fixture for the timeunits analyzer: bare
// numbers standing in for nanosecond quantities and mis-scaled unit
// conversions.
package timeunits

import (
	"time"

	"repro/internal/simtime"
)

// Config mirrors the option structs the pipeline uses.
type Config struct {
	Timeout time.Duration
	Window  simtime.Time
}

// badBareLiteralField assigns a raw number where a duration belongs.
func badBareLiteralField() Config {
	return Config{
		Timeout: 5000, // want "bare constant 5000 used as time.Duration"
		Window:  7500, // want "bare constant 7500"
	}
}

// badBareArg passes a bare literal as a sleep duration.
func badBareArg() {
	time.Sleep(250) // want "bare constant 250 used as time.Duration"
}

// goodUnitArg scales with a unit constant.
func goodUnitArg() {
	time.Sleep(250 * time.Millisecond)
}

// goodScalarDivision uses the constant as a dimensionless divisor.
func goodScalarDivision(d time.Duration) time.Duration {
	return d / 2
}

// goodZero: zero needs no unit.
func goodZero() Config {
	return Config{Timeout: 0, Window: 0}
}

// badDurationSquared multiplies two time quantities.
func badDurationSquared(a, b time.Duration) time.Duration {
	return a * b // want "multiplying two time quantities"
}

// goodScaleIdiom is the stdlib idiom: conversion-from-integer times a
// unit held in a variable.
func goodScaleIdiom(n int, unit simtime.Time) simtime.Time {
	return simtime.Time(n) * unit
}

// badMsConversion treats a millisecond count as nanoseconds.
func badMsConversion(intervalMs int64) time.Duration {
	return time.Duration(intervalMs) // want "named in milliseconds as nanoseconds"
}

// goodMsConversion rescales the millisecond count properly.
func goodMsConversion(intervalMs int64) time.Duration {
	return time.Duration(intervalMs) * time.Millisecond
}

// badSecConversion treats a second count as simulation nanoseconds.
func badSecConversion(timeoutSec int) simtime.Time {
	return simtime.Time(timeoutSec) // want "named in seconds as nanoseconds"
}

// goodMinIsMinimum: "min" means minimum in measurement code, not
// minutes — no diagnostic.
func goodMinIsMinimum(min float64) simtime.Time {
	return simtime.Time(min)
}

// goodSentinel: negative constants are sentinels, not durations.
func goodSentinel() simtime.Time {
	return simtime.Time(-1)
}
