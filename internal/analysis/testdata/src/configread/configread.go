// Package configread exercises the generation-discipline pass: fields
// marked p4:gen-seed only feed generation zero, so runtime code must
// read the pinned generation value, and every Acquire on a generation
// store needs a matching Release.
package configread

// tuning is the immutable generation payload.
type tuning struct{ Rate float64 }

type gen struct{ v tuning }

func (g *gen) Value() tuning { return g.v }

// store is a stand-in for genconfig.Store: the pass recognises it by
// its Acquire/Release/Publish method set.
type store struct{ cur *gen }

func (s *store) Acquire() *gen  { return s.cur }
func (s *store) Release(g *gen) {}
func (s *store) Publish(build func(tuning) (tuning, error)) error { return nil }

// config is the boot configuration.
type config struct {
	// Rate is the boot-time sample rate. Seed value only (p4:gen-seed).
	Rate float64
	// Name is static configuration; plain reads stay legal.
	Name string
}

type plane struct {
	cfg  config
	gens *store
}

// newPlane seeds the generation store from the boot config; its seed
// reads are the point of the marker.
//
// p4:gen-init
func newPlane(cfg config) *plane {
	if cfg.Rate == 0 {
		cfg.Rate = 1
	}
	return &plane{cfg: cfg, gens: &store{cur: &gen{v: tuning{Rate: cfg.Rate}}}}
}

// process pins one generation per batch: the legal runtime read. The
// unmarked Name field stays readable anywhere.
func (p *plane) process() float64 {
	g := p.gens.Acquire()
	defer p.gens.Release(g)
	return g.Value().Rate + float64(len(p.cfg.Name))
}

// stale reads the seed copy on the runtime path: the bug class, blind
// to every reconfiguration published since boot.
func (p *plane) stale() float64 {
	return p.cfg.Rate // want "read of seed-only config field config.Rate bypasses the generation snapshot"
}

// reseed only writes the seed copy; assignment targets are the seeding
// path's business and cannot leak a stale value.
func (p *plane) reseed(r float64) {
	p.cfg.Rate = r
}

// leak acquires a generation and drops it: retirement never drains.
func (p *plane) leak() float64 {
	g := p.gens.Acquire() // want "generation acquired in leak but never released"
	return g.Value().Rate
}

// handoff legitimately passes the pinned generation to its caller and
// documents why.
func (p *plane) handoff() *gen {
	return p.gens.Acquire() //p4:lint-exempt configread: caller releases after its batch completes
}

// pool is not a generation store (no Publish method): its
// Acquire/Release pairing is out of scope for this pass.
type pool struct{ free []int }

func (p *pool) Acquire() int {
	n := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return n
}

func (p *pool) Release(n int) { p.free = append(p.free, n) }

func usePool(p *pool) int { return p.Acquire() }
