// Package lockorder exercises the whole-program lock-ordering pass:
// acquisition-order cycles (direct and through calls) and locks held
// across blocking operations.
package lockorder

import (
	"net"
	"sync"
)

type a struct {
	mu   sync.Mutex
	peer *b
}

type b struct {
	mu   sync.Mutex
	peer *a
}

// forward acquires a.mu then b.mu.
func (x *a) forward() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.peer.mu.Lock() // want "lock order cycle a.mu -> b.mu -> a.mu"
	defer x.peer.mu.Unlock()
	x.peer.peer = x
}

// backward acquires b.mu, then reaches a.mu transitively through
// lockedTouch — the reverse order, closing the cycle.
func (y *b) backward() {
	y.mu.Lock()
	defer y.mu.Unlock()
	y.peer.lockedTouch()
}

func (x *a) lockedTouch() {
	x.mu.Lock()
	defer x.mu.Unlock()
}

// double re-acquires a lock this goroutine already holds.
func (x *a) double() {
	x.mu.Lock()
	x.mu.Lock() // want "acquired in a.double while already held"
	x.mu.Unlock()
	x.mu.Unlock()
}

// send writes to the network inside the critical section.
func (x *a) send(c net.Conn, buf []byte) {
	x.mu.Lock()
	c.Write(buf) // want "held across net Write I/O"
	x.mu.Unlock()
}

// notify sends on a channel inside the critical section.
func (x *a) notify(ch chan int) {
	x.mu.Lock()
	ch <- 1 // want "held across channel send"
	x.mu.Unlock()
}

// deliberate documents why its in-section send is safe.
func (x *a) deliberate(ch chan int) {
	x.mu.Lock()
	ch <- 1 //p4:lint-exempt lockorder: the channel is buffered to capacity and drained by this goroutine
	x.mu.Unlock()
}

// disciplined releases before blocking: no findings.
func (x *a) disciplined(c net.Conn, buf []byte) {
	x.mu.Lock()
	cp := append([]byte(nil), buf...)
	x.mu.Unlock()
	c.Write(cp)
}
