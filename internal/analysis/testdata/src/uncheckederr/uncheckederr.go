// Package uncheckederr is a fixture for the uncheckederr analyzer:
// call statements that silently drop an error result.
package uncheckederr

import (
	"fmt"
	"strings"
)

// sink mimics an export path whose Close can fail.
type sink struct{}

func (sink) Close() error { return nil }

func mightFail() error { return nil }

func pair() (int, error) { return 0, nil }

func noError() int { return 0 }

// badDroppedMethodError discards a Close error on the export path.
func badDroppedMethodError(s sink) {
	s.Close() // want "error return of s.Close is dropped"
}

// badDroppedFuncError discards a plain error result.
func badDroppedFuncError() {
	mightFail() // want "error return of mightFail is dropped"
}

// badDroppedTupleError discards the error half of a tuple.
func badDroppedTupleError() {
	pair() // want "error return of pair is dropped"
}

// goodExplicitDiscard acknowledges the discard.
func goodExplicitDiscard() {
	_ = mightFail()
}

// goodHandled checks the error.
func goodHandled() error {
	if err := mightFail(); err != nil {
		return err
	}
	return nil
}

// goodDeferredCleanup: deferred cleanup discards are idiomatic.
func goodDeferredCleanup(s sink) {
	defer s.Close()
}

// goodFmtPrinting: fmt's print errors are conventionally ignored.
func goodFmtPrinting() {
	fmt.Println("status")
}

// goodNeverFailingWriter: strings.Builder cannot fail.
func goodNeverFailingWriter() string {
	var b strings.Builder
	b.WriteString("x")
	return b.String()
}

// goodNoError: calls without an error result are fine as statements.
func goodNoError() {
	noError()
}
