// Package broken parses cleanly but does not type-check: the loader
// must surface the failure as collected TypeErrors, not a panic or a
// hard load error, so p4lint can report it and keep analyzing the rest
// of the tree.
package broken

func Use() int {
	return undefinedIdentifier + 1
}
