// Package regwidth is a fixture for the regwidth analyzer: masks,
// shifts and conversions that disagree with a register's declared bit
// width.
package regwidth

import "repro/internal/dataplane"

// tsReg models the 48-bit Tofino ingress timestamp register.
var tsReg = dataplane.NewRegisterWidth("ts", 16, 48)

// flagReg models a 1-bit seen/announced flag register.
var flagReg = dataplane.NewRegisterWidth("flag", 16, 1)

// wideReg keeps the default 64-bit cells: nothing can violate it.
var wideReg = dataplane.NewRegister("wide", 16)

// badConstTooWide writes a constant that needs more bits than declared.
func badConstTooWide() {
	flagReg.Write(0, 2) // want "needs 2 bits but register flagReg is declared 1 bits wide"
}

// badShiftedWrite shifts a runtime value past the declared width before
// storing it, so every bit lands outside the cell.
func badShiftedWrite(v uint64) {
	tsReg.Write(0, v<<48) // want "left shift by 48"
}

// badMaskBeyondWidth masks a read with bits the register cannot hold.
func badMaskBeyondWidth() uint64 {
	return tsReg.Read(0) & 0xFF_FFFF_FFFF_FFFF // want "selects bits beyond register tsReg"
}

// badShiftPastWidth discards every declared bit.
func badShiftPastWidth() uint64 {
	return tsReg.Read(0) >> 48 // want "right shift by 48 discards"
}

// badNarrowConversion truncates the 48-bit value to 32 bits.
func badNarrowConversion() uint32 {
	return uint32(tsReg.Read(0)) // want "conversion to uint32 truncates register tsReg"
}

// goodFittingConst stores a value inside the declared width.
func goodFittingConst() {
	flagReg.Write(0, 1)
	tsReg.Write(1, 0xFFFF_FFFF_FFFF) // exactly 48 bits
}

// goodMaskWithinWidth selects only declared bits.
func goodMaskWithinWidth() uint64 {
	return tsReg.Read(0) & 0xFFFF
}

// goodShiftWithinWidth keeps high declared bits.
func goodShiftWithinWidth() uint64 {
	return tsReg.Read(0) >> 16
}

// goodWideConversion converts to a type at least as wide.
func goodWideConversion() uint64 {
	return uint64(tsReg.Read(0))
}

// goodDynamicValue: runtime values without a shift are not provably
// wrong, so they pass (the hardware masks them).
func goodDynamicValue(iat uint64) {
	tsReg.Max(0, iat)
}

// goodFullWidthRegister: 64-bit registers accept anything.
func goodFullWidthRegister() uint64 {
	wideReg.Write(0, ^uint64(0))
	return wideReg.Read(0) >> 32
}
