// Package hotpathprop exercises the transitive hot-path pass: a clean
// root inherits the violations of everything it can reach through the
// call graph, interface dispatch included, and the two exemption forms
// cut reachability.
package hotpathprop

import (
	"sync"
	"time"
)

type state struct {
	mu sync.Mutex
	n  int
}

// lockingHelper looks harmless at the call site but takes the state
// lock. It is not annotated, so nothing is reported here — the report
// lands on the hot root that reaches it.
func (s *state) lockingHelper() {
	s.mu.Lock()
	s.n++
}

// middle is clean and unannotated: one hop in the chain.
func middle(s *state) {
	s.lockingHelper()
}

// Root is the per-packet entry point; its report carries the full call
// chain to the violation.
//
// p4:hotpath
func Root(s *state) { // want "reaches mutex Lock in state.lockingHelper via Root -> middle -> state.lockingHelper"
	middle(s)
}

// RootDirect violates the contract in its own body.
//
// p4:hotpath
func RootDirect(ch chan int) {
	ch <- 1 // want "channel send in p4:hotpath function RootDirect"
}

// growing allocates on growth: the hotalloc classes propagate across
// the call boundary even though growing itself is unannotated.
func growing(dst []int, v int) []int {
	return append(dst, v)
}

// RootAlloc reaches the allocation one call away.
//
// p4:hotpath
func RootAlloc(buf []int) { // want "reaches append without capacity reuse in growing via RootAlloc -> growing"
	growing(buf, 1)
}

type sink interface{ Put(int) }

type lockySink struct {
	mu sync.Mutex
}

func (l *lockySink) Put(v int) {
	l.mu.Lock()
}

type cleanSink struct {
	total int
}

func (c *cleanSink) Put(v int) { c.total += v }

// RootIface calls through an interface: conservative dispatch reaches
// every implementation, and only the locking one is reported.
//
// p4:hotpath
func RootIface(s sink) { // want "reaches mutex Lock in lockySink.Put via RootIface -> lockySink.Put .dispatched via interface sink."
	s.Put(1)
}

// coldFlush drains accumulated state off the per-packet path.
//
// p4:hotpath-exempt: amortised flush runs once per batch, not per packet
func coldFlush(m map[int]int) {
	for k := range m {
		delete(m, k)
	}
}

// RootExempt reaches coldFlush, whose justified exemption ends both
// checking and traversal.
//
// p4:hotpath
func RootExempt(m map[int]int) {
	coldFlush(m)
}

// badExempt claims the escape hatch without saying why.
//
// p4:hotpath-exempt:
func badExempt() { // want "has no justification"
	time.Now()
}

// RootLineExempt shows the line-level form: the justified comment stops
// the report and the propagation.
//
// p4:hotpath
func RootLineExempt() {
	time.Now() //p4:lint-exempt hotpathprop: timestamp feeds fixture-local telemetry, never the packet path
}
