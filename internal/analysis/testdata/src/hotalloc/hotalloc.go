// Package hotalloc is a fixture for the hotalloc analyzer: allocation
// patterns inside (and outside) p4:hotpath-annotated functions.
package hotalloc

import (
	"fmt"
	"net/netip"
)

// Record mimics a per-flow report.
type Record struct {
	Blocks []uint64
	Label  string
}

// badAppendFresh grows a slice that nothing reuses.
//
// p4:hotpath
func badAppendFresh(r *Record, v uint64) []uint64 {
	out := growElsewhere(r.Blocks)
	out = append(out, v)         // self-append into out: accepted idiom
	fresh := append(r.Blocks, v) // want "append result is not assigned back to its base slice"
	return fresh
}

func growElsewhere(in []uint64) []uint64 { return in }

// badMapLiteral builds a map per packet.
//
// p4:hotpath
func badMapLiteral(v uint64) int {
	m := map[uint64]int{v: 1} // want "map literal allocates in p4:hotpath function badMapLiteral"
	n := make(map[uint64]int) // want "make.map. allocates in p4:hotpath function badMapLiteral"
	n[v] = 2
	return len(m) + len(n)
}

// badNetipString renders an address per packet.
//
// p4:hotpath
func badNetipString(a netip.Addr) string {
	return a.String() // want "netip String call allocates in p4:hotpath function badNetipString"
}

// badSprintf formats per packet.
//
// p4:hotpath
func badSprintf(id uint32) string {
	return fmt.Sprintf("%08x", id) // want "fmt.Sprintf allocates in p4:hotpath function badSprintf"
}

// goodSelfAppend is the capacity-reuse idiom: the result feeds back
// into the slice it extends, so growth amortises to zero.
//
// p4:hotpath
func goodSelfAppend(r *Record, v uint64) {
	r.Blocks = append(r.Blocks, v)
}

// goodTrimmedScratch appends into a locally trimmed buffer, the packet
// arena's SACK/INT recycling pattern.
//
// p4:hotpath
func goodTrimmedScratch(r *Record, vs []uint64) {
	buf := r.Blocks[:0]
	buf = append(buf, vs...)
	r.Blocks = buf
}

// goodSliceLiteral builds a small slice literal: it stays on the stack
// when it does not escape (the monitor-table lookup pattern), so the
// pass leaves slice literals alone.
//
// p4:hotpath
func goodSliceLiteral(v uint64) uint64 {
	keys := []uint64{v, v + 1}
	return keys[0] + keys[1]
}

// goodAs4 reads address bytes without rendering.
//
// p4:hotpath
func goodAs4(a netip.Addr) byte {
	b := a.As4()
	return b[0]
}

// goodPanicFormat formats only to die: a panic path aborts the run, so
// its allocations never land on a packet.
//
// p4:hotpath
func goodPanicFormat(v uint64) uint64 {
	if v == 0 {
		panic(fmt.Sprintf("zero value %d", v))
	}
	return v - 1
}

// coldPath is not annotated: the same allocations are fine here.
func coldPath(a netip.Addr, id uint32) string {
	m := map[uint32]string{id: a.String()}
	return fmt.Sprintf("%v", m)
}
