// Package callgraph exercises Program construction: static edges,
// interface dispatch, and method-set resolution through embedded types
// (a promoted method must resolve to the embedded declaration's body).
package callgraph

type base struct{ n int }

// Ping is the promoted method every path must resolve to.
func (b *base) Ping() { b.n++ }

type derived struct {
	base
	extra int
}

// Pong gives derived its own method set entry so it participates in
// dispatch as a named type.
func (d *derived) Pong() { d.extra++ }

type pinger interface{ Ping() }

// callThrough dispatches through the interface: conservative expansion
// must reach base.Ping for both base and the embedding derived.
func callThrough(p pinger) { p.Ping() }

// callDirect selects the promoted method on the concrete embedding
// type: a static edge to base.Ping.
func callDirect(d *derived) { d.Ping() }

// chainEntry gives reachability tests a two-hop static chain.
func chainEntry(d *derived) { callDirect(d) }
