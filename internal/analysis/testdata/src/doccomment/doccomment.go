package doccomment // want "package doccomment has no package comment"

// The fixture deliberately omits a package comment (the trailing
// comment above is not a doc comment) so the package-level rule fires
// alongside the symbol-level ones.

// Documented is fine: an exported type with a doc comment.
type Documented struct {
	N int
}

type Undocumented struct{} // want "exported type Undocumented has no doc comment"

// unexported types never need docs.
type hidden struct{}

// Grouped declarations: a doc comment on the group covers every spec.
type (
	CoveredByGroup struct{}
	alsoCovered    struct{}
)

type (
	BareInGroup struct{} // want "exported type BareInGroup has no doc comment"
)

// MaxWindow is documented at the spec.
const MaxWindow = 128

const BareConst = 7 // want "exported const BareConst has no doc comment"

// Register widths for the fixture pipeline.
const (
	WidthBytes = 48
	WidthPkts  = 32
)

var BareVar int // want "exported var BareVar has no doc comment"

// DefaultName is documented; the unexported sibling needs nothing.
var (
	// DefaultName labels the fixture flow.
	DefaultName = "fixture"
	internal    = 0
)

func Exported() {} // want "exported function Exported has no doc comment"

// Documented functions pass.
func Fine() {}

func helper() {}

// Method checks: exported receiver + exported method needs a doc.

func (d *Documented) Snapshot() int { return d.N } // want "exported method Snapshot has no doc comment"

// Reset is documented.
func (d *Documented) Reset() { d.N = 0 }

// Unexported receivers are not godoc surface, even for exported names.
func (h hidden) Publish() {}

func (h hidden) push() {}

func init() { _ = internal; helper(); hidden{}.push() }
