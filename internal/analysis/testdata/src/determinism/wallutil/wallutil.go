// Package wallutil stands in for an out-of-scope module package whose
// helpers read the wall clock: the determinism pass must see through it
// via the call graph rather than trusting the package boundary.
package wallutil

import "time"

// Stamp returns a wall-clock timestamp through one more hop.
func Stamp() int64 { return stamp() }

func stamp() int64 { return time.Now().UnixNano() }
