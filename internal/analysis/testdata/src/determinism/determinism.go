// Package determinism exercises the reproducibility pass: wall-clock
// reads (direct and through out-of-scope helpers), the global math/rand
// source, and order-sensitive map iteration.
package determinism

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/analysis/testdata/src/determinism/wallutil"
)

// now reads the wall clock directly.
func now() time.Time {
	return time.Now() // want "time.Now in deterministic package determinism"
}

// viaModule reaches the wall clock through the out-of-scope helper
// package; the report lands here, on the deterministic caller, with
// the chain.
func viaModule() int64 {
	return wallutil.Stamp() // want "reaches time.Now via Stamp -> stamp"
}

// timedRun documents why its wall-clock use is harmless.
func timedRun() int64 {
	return wallutil.Stamp() //p4:lint-exempt determinism: harness-only timing, never written to experiment output
}

// roll draws from the process-global source.
func roll() int {
	return rand.Intn(6) // want "global math/rand.Intn"
}

// seeded derives its stream from the experiment seed: accepted.
func seeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}

// schedule fires an effect per key in map order.
func schedule(tasks map[string]int) {
	for _, t := range tasks { // want "performs a call to runTask per key"
		runTask(t)
	}
}

func runTask(int) {}

// fanout sends per key in map order.
func fanout(m map[string]int, ch chan int) {
	for _, v := range m { // want "performs a channel send per key"
		ch <- v
	}
}

// leakOrder accumulates output that is never sorted.
func leakOrder(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want "accumulates output in nondeterministic order"
		out = append(out, k)
	}
	return out
}

// sortedKeys is the accepted collect-then-sort idiom.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// total aggregates commutatively: order cannot show.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
