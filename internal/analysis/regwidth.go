package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// RegWidthAnalyzer checks code against the declared bit widths of the
// simulated P4 registers. The data plane stores every cell as uint64,
// but the P4 program the model mirrors declares narrower widths —
// 48-bit Tofino timestamps, 1-bit flags, a 48-bit queue signature — and
// a mask, shift or conversion that disagrees with the declared width is
// exactly the class of bug that silently corrupts RTT and queue-delay
// figures on real hardware. The pass binds each register variable to
// the width in its NewRegister/NewRegisterWidth construction and flags:
//
//   - Write/Add/Max of a constant that does not fit the width;
//   - Write of a value shifted left by >= width (every bit lands
//     outside the declared cell);
//   - masking a Read with a constant selecting bits beyond the width;
//   - shifting a Read right by >= width (always zero);
//   - converting a Read to an integer type narrower than the width.
var RegWidthAnalyzer = &Analyzer{
	Name: "regwidth",
	Doc:  "masks/shifts/conversions that exceed or truncate a P4 register's declared bit width",
	Run:  runRegWidth,
}

// registerMethods whose value argument must respect the width.
var registerValueMethods = map[string]int{"Write": 1, "Add": 1, "Max": 1}

func runRegWidth(pass *Pass) {
	widths := collectRegisterWidths(pass)
	if len(widths) == 0 {
		return
	}
	info := pass.Pkg.Info
	parents := pass.Pkg.Parents()
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := registerObject(info, sel.X)
			if obj == nil {
				return true
			}
			width, ok := widths[obj]
			if !ok || width >= 64 {
				return true
			}
			name := exprString(pass.Pkg.Fset, sel.X)
			switch sel.Sel.Name {
			case "Write", "Add", "Max":
				if argIdx := registerValueMethods[sel.Sel.Name]; len(call.Args) > argIdx {
					checkValueFits(pass, info, call.Args[argIdx], name, width)
				}
			case "Read":
				checkReadUse(pass, info, parents, call, name, width)
			}
			return true
		})
	}
}

// collectRegisterWidths binds register variables/fields to the declared
// width in their construction call.
func collectRegisterWidths(pass *Pass) map[types.Object]int {
	info := pass.Pkg.Info
	widths := map[types.Object]int{}
	bind := func(target ast.Expr, width int) {
		if id, ok := target.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				widths[obj] = width
				return
			}
		}
		if obj := registerObject(info, target); obj != nil {
			widths[obj] = width
		}
	}
	bindIdentObj := func(obj types.Object, width int) {
		if obj != nil {
			widths[obj] = width
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.KeyValueExpr:
				if w, ok := constructionWidth(info, n.Value); ok {
					if key, ok := n.Key.(*ast.Ident); ok {
						bindIdentObj(info.Uses[key], w)
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						if w, ok := constructionWidth(info, rhs); ok {
							bind(n.Lhs[i], w)
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i, v := range n.Values {
						if w, ok := constructionWidth(info, v); ok {
							bindIdentObj(info.Defs[n.Names[i]], w)
						}
					}
				}
			}
			return true
		})
	}
	return widths
}

// constructionWidth recognises NewRegister / NewRegisterWidth calls and
// returns the declared width.
func constructionWidth(info *types.Info, e ast.Expr) (int, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return 0, false
	}
	var fnIdent *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fnIdent = fun
	case *ast.SelectorExpr:
		fnIdent = fun.Sel
	default:
		return 0, false
	}
	fn, ok := info.Uses[fnIdent].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/dataplane") {
		return 0, false
	}
	switch fn.Name() {
	case "NewRegister":
		return 64, true
	case "NewRegisterWidth":
		if len(call.Args) == 3 {
			if tv, ok := info.Types[call.Args[2]]; ok && tv.Value != nil {
				if w, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
					return int(w), true
				}
			}
		}
	}
	return 0, false
}

// registerObject resolves the variable or struct field a register
// expression denotes, if its type is *dataplane.Register.
func registerObject(info *types.Info, e ast.Expr) types.Object {
	t := info.TypeOf(e)
	if t == nil {
		return nil
	}
	if !isRegisterType(t) {
		return nil
	}
	switch e := e.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

func isRegisterType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Register" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/dataplane")
}

// checkValueFits flags definite width violations in a value stored to a
// register: constants too wide, or left-shifts that push every bit
// beyond the declared width.
func checkValueFits(pass *Pass, info *types.Info, arg ast.Expr, name string, width int) {
	if tv, ok := info.Types[arg]; ok && tv.Value != nil {
		if bits := constBitLen(tv.Value); bits > width {
			pass.Reportf(arg.Pos(), "value %s needs %d bits but register %s is declared %d bits wide",
				tv.Value, bits, name, width)
			return
		}
	}
	ast.Inspect(arg, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.SHL {
			return true
		}
		tv, ok := info.Types[be.Y]
		if !ok || tv.Value == nil {
			return true
		}
		if shift, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok && int(shift) >= width {
			pass.Reportf(be.Pos(), "left shift by %d stores every bit outside register %s's declared %d-bit width",
				shift, name, width)
		}
		return true
	})
}

// checkReadUse inspects how a Read() result is consumed.
func checkReadUse(pass *Pass, info *types.Info, parents parentMap, call *ast.CallExpr, name string, width int) {
	parent, ok := parents[call]
	if !ok {
		return
	}
	switch p := parent.(type) {
	case *ast.BinaryExpr:
		other := p.X
		if other == call {
			other = p.Y
		}
		switch p.Op {
		case token.AND:
			tv, ok := info.Types[other]
			if !ok || tv.Value == nil {
				return
			}
			if bits := constBitLen(tv.Value); bits > width {
				pass.Reportf(p.Pos(), "mask %s selects bits beyond register %s's declared %d-bit width (always zero)",
					tv.Value, name, width)
			}
		case token.SHR:
			if p.X != call {
				return
			}
			tv, ok := info.Types[p.Y]
			if !ok || tv.Value == nil {
				return
			}
			if shift, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok && int(shift) >= width {
				pass.Reportf(p.Pos(), "right shift by %d discards all %d declared bits of register %s (always zero)",
					shift, width, name)
			}
		}
	case *ast.CallExpr:
		// Conversion T(reg.Read(i)) to a narrower integer type.
		if len(p.Args) != 1 || p.Args[0] != call {
			return
		}
		tv, ok := info.Types[p.Fun]
		if !ok || !tv.IsType() {
			return
		}
		if bits, ok := intTypeBits(tv.Type); ok && bits < width {
			pass.Reportf(p.Pos(), "conversion to %s truncates register %s's declared %d-bit width to %d bits",
				tv.Type, name, width, bits)
		}
	}
}

// constBitLen returns the number of bits needed for a non-negative
// integer constant (0 for zero or non-integer).
func constBitLen(v constant.Value) int {
	iv := constant.ToInt(v)
	if iv.Kind() != constant.Int || constant.Sign(iv) <= 0 {
		return 0
	}
	bits := 0
	for constant.Sign(iv) > 0 {
		iv = constant.Shift(iv, token.SHR, 1)
		bits++
	}
	return bits
}

// intTypeBits returns the bit size of a basic integer type.
func intTypeBits(t types.Type) (int, bool) {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0, false
	}
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8, true
	case types.Int16, types.Uint16:
		return 16, true
	case types.Int32, types.Uint32:
		return 32, true
	case types.Int64, types.Uint64, types.Int, types.Uint, types.Uintptr:
		return 64, true
	}
	return 0, false
}
