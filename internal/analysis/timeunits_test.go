package analysis

import "testing"

func TestTimeUnitsAnalyzer(t *testing.T) {
	runFixture(t, "timeunits", "timeunits")
}
