package analysis

import (
	"go/ast"
	"go/types"
)

// UncheckedErrAnalyzer flags dropped error returns. The archiver and
// export paths (Logstash TCP shipping, OpenSearch indexing, CSV/JSON
// result files) are exactly where a swallowed write error turns a
// measurement gap into silently missing data, so call statements that
// discard an error are reported. An explicit `_ =` assignment is
// treated as an acknowledged discard, deferred cleanup calls are
// idiomatic and skipped, and fmt printing plus the never-failing
// in-memory writers (strings.Builder, bytes.Buffer) are excluded.
var UncheckedErrAnalyzer = &Analyzer{
	Name: "uncheckederr",
	Doc:  "dropped error returns on I/O and archiver paths",
	Run:  runUncheckedErr,
}

// errIgnorePkgFuncs are package-level functions whose errors are
// conventionally ignored.
var errIgnorePkgFuncs = map[string]map[string]bool{
	"fmt": {"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true},
}

// errIgnoreRecvTypes are receiver types whose methods cannot actually
// fail (they implement error-returning interfaces for compatibility).
var errIgnoreRecvTypes = []struct{ pkg, name string }{
	{"strings", "Builder"},
	{"bytes", "Buffer"},
}

func runUncheckedErr(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				return false // deferred cleanup: idiomatic discard
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !returnsError(info, call) || ignoredErrorSource(info, call) {
					return true
				}
				pass.Reportf(call.Pos(), "error return of %s is dropped; handle it or assign to _ explicitly",
					callName(pass, call))
			}
			return true
		})
	}
}

// returnsError reports whether the call's only or last result is an
// error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		return isErrorType(t.At(t.Len() - 1).Type())
	default:
		return isErrorType(tv.Type)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return t.String() == "error"
	}
	return named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// ignoredErrorSource applies the allowlist.
func ignoredErrorSource(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Package-level function: fmt.Println(...) etc.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := info.Uses[id].(*types.PkgName); ok {
			if fns, ok := errIgnorePkgFuncs[pkgName.Imported().Path()]; ok && fns[sel.Sel.Name] {
				return true
			}
			return false
		}
	}
	// Method on a never-failing receiver.
	if recv := info.TypeOf(sel.X); recv != nil {
		for _, ig := range errIgnoreRecvTypes {
			if isNamed(recv, ig.pkg, ig.name) {
				return true
			}
		}
	}
	return false
}

func callName(pass *Pass, call *ast.CallExpr) string {
	return exprString(pass.Pkg.Fset, call.Fun)
}
