package analysis

import (
	"encoding/json"
	"go/token"
	"math/rand"
	"strings"
	"testing"
)

func diag(file string, line, col int, pass, msg string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: col},
		Analyzer: pass,
		Message:  msg,
	}
}

// TestDiagnosticOrdering pins the reporting order contract: file, then
// line, then pass, then column, then message — and nothing else, so
// the order never depends on analyzer registration or traversal order.
func TestDiagnosticOrdering(t *testing.T) {
	want := []Diagnostic{
		diag("a.go", 3, 9, "locks", "b"),
		diag("a.go", 7, 1, "atomicmix", "x"),
		diag("a.go", 7, 1, "locks", "x"),
		diag("a.go", 7, 2, "locks", "x"),
		diag("a.go", 7, 2, "locks", "y"),
		diag("b.go", 1, 1, "determinism", "x"),
	}
	got := make([]Diagnostic, len(want))
	copy(got, want)
	// Deterministic shuffle: the test must not depend on the input
	// already being sorted.
	r := rand.New(rand.NewSource(1))
	r.Shuffle(len(got), func(i, j int) { got[i], got[j] = got[j], got[i] })

	sortDiagnostics(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRenderJSON(t *testing.T) {
	var b strings.Builder
	diags := []Diagnostic{diag("a.go", 3, 9, "locks", "shared field written without mu")}
	if err := RenderJSON(&b, diags); err != nil {
		t.Fatalf("RenderJSON: %v", err)
	}
	var decoded []map[string]interface{}
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d diagnostics, want 1", len(decoded))
	}
	d := decoded[0]
	if d["file"] != "a.go" || d["line"] != float64(3) || d["column"] != float64(9) ||
		d["analyzer"] != "locks" || d["message"] != "shared field written without mu" {
		t.Fatalf("unexpected JSON fields: %v", d)
	}
}

func TestRenderGitHub(t *testing.T) {
	var b strings.Builder
	RenderGitHub(&b, []Diagnostic{
		diag("internal/x/x.go", 12, 4, "lockorder", "mu held across I/O: 100% stall\nsecond line"),
	})
	got := b.String()
	want := "::error file=internal/x/x.go,line=12,col=4,title=p4lint lockorder::mu held across I/O: 100%25 stall%0Asecond line\n"
	if got != want {
		t.Fatalf("GitHub annotation mismatch:\ngot  %q\nwant %q", got, want)
	}
}

// TestRenderText keeps the plain format stable: editors and the CI log
// scraper both parse file:line:col: pass: message.
func TestRenderText(t *testing.T) {
	var b strings.Builder
	RenderText(&b, []Diagnostic{diag("a.go", 3, 9, "locks", "msg")})
	if got, want := b.String(), "a.go:3:9: locks: msg\n"; got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}
