package inband_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/inband"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/tcp"
)

// intSystem builds the standard testbed with both switches INT-enabled
// and an INT sink on external DTN i.
func intSystem(sinkDTN int) (*core.System, *inband.Collector) {
	sys := core.NewSystem(core.Options{
		BottleneckBps: netsim.Mbps(200),
		RTTs: [core.ExternalNetworks]simtime.Time{
			20 * simtime.Millisecond,
			30 * simtime.Millisecond,
			40 * simtime.Millisecond,
		},
		Seed: 5,
	})
	sys.CoreSwitch.INTEnabled = true
	sys.AggSwitch.INTEnabled = true

	col := inband.NewCollector()
	sys.ExternalDTNs[sinkDTN].OnINT = func(pkt *packet.Packet) {
		col.Ingest(inband.Report{
			Flow: pkt.FiveTuple(),
			At:   sys.Engine.Now(),
			Path: inband.Extract(pkt),
		})
	}
	return sys, col
}

func TestINTStacksBuildAcrossHops(t *testing.T) {
	sys, col := intSystem(0)
	sys.Start()
	sys.TransferToExternal(0, 0, 0, 3*simtime.Second, tcp.Config{MSS: 1448}, tcp.Config{})
	sys.Run(4 * simtime.Second)

	if len(col.Reports) == 0 {
		t.Fatal("no INT reports collected")
	}
	r := col.Reports[len(col.Reports)/2]
	if len(r.Path) != 2 {
		t.Fatalf("path length %d, want 2 hops", len(r.Path))
	}
	if r.Path[0].SwitchID != "core-switch" || r.Path[1].SwitchID != "agg-switch" {
		t.Fatalf("path: %+v", r.Path)
	}
	for _, hop := range r.Path {
		if hop.EgressAt <= hop.IngressAt {
			t.Fatalf("hop timestamps not increasing: %+v", hop)
		}
	}
}

func TestINTSinkStripsStack(t *testing.T) {
	sys, _ := intSystem(0)
	sys.Start()
	sys.TransferToExternal(0, 0, 0, 2*simtime.Second, tcp.Config{MSS: 1448}, tcp.Config{})
	sys.Run(3 * simtime.Second)

	// The TCP layer must never see telemetry: the sink extracted it.
	// (Transfer progressing to completion is the evidence — a corrupted
	// packet path would stall — plus the reverse ACK flow must not
	// accumulate stacks at the client.)
	var leaked bool
	sys.InternalDTN.OnINT = func(pkt *packet.Packet) { leaked = true }
	sys.Run(4 * simtime.Second)
	_ = leaked // ACKs cross INT switches too and legitimately carry stacks
}

func TestINTPerHopLatencyReflectsQueueing(t *testing.T) {
	sys, col := intSystem(2)
	sys.Start()
	// Three flows overload the 200 Mbps bottleneck: the core switch's
	// hop latency (its bottleneck queue) must dwarf the agg switch's.
	for i := 0; i < 3; i++ {
		sys.TransferToExternal(2, 0, 0, 8*simtime.Second, tcp.Config{MSS: 1448}, tcp.Config{})
	}
	sys.Run(8 * simtime.Second)

	coreLat := col.HopLatencySeries("core-switch")
	aggLat := col.HopLatencySeries("agg-switch")
	if coreLat == nil || aggLat == nil {
		t.Fatalf("missing hop series: %v", col.Hops())
	}
	if coreLat.Max() < 5*aggLat.Max() {
		t.Fatalf("core hop latency max %.1fus not dominated by queueing (agg %.1fus)",
			coreLat.Max(), aggLat.Max())
	}
	// Queue depths must be visible too.
	if col.HopQueueSeries("core-switch").Max() == 0 {
		t.Fatal("no queue depth telemetry at the bottleneck hop")
	}
}

func TestINTPathReconstruction(t *testing.T) {
	sys, col := intSystem(1)
	sys.Start()
	h := sys.TransferToExternal(1, 0, 0, 2*simtime.Second, tcp.Config{MSS: 1448}, tcp.Config{})
	sys.Run(3 * simtime.Second)
	path := col.PathOf(h.Conn.FiveTuple())
	if len(path) != 2 || path[0] != "core-switch" || path[1] != "agg-switch" {
		t.Fatalf("path: %v", path)
	}
	if col.PathOf(packet.FiveTuple{}) != nil {
		t.Fatal("unknown flow must have no path")
	}
}

func TestINTSummary(t *testing.T) {
	sys, col := intSystem(0)
	sys.Start()
	sys.TransferToExternal(0, 0, 0, 2*simtime.Second, tcp.Config{MSS: 1448}, tcp.Config{})
	sys.Run(3 * simtime.Second)
	s := col.Summary()
	if !strings.Contains(s, "core-switch") || !strings.Contains(s, "agg-switch") {
		t.Fatalf("summary: %q", s)
	}
}

func TestINTDisabledByDefault(t *testing.T) {
	sys := core.NewSystem(core.Options{BottleneckBps: netsim.Mbps(200), Seed: 5})
	got := false
	sys.ExternalDTNs[0].OnINT = func(*packet.Packet) { got = true }
	sys.Start()
	sys.TransferToExternal(0, 0, 0, simtime.Second, tcp.Config{MSS: 1448}, tcp.Config{})
	sys.Run(2 * simtime.Second)
	if got {
		t.Fatal("INT stacks appeared without INTEnabled")
	}
}
