// Package inband implements In-band Network Telemetry (INT), the
// per-packet telemetry mechanism the paper's related work deploys at
// AmLight (Bezerra et al. [3]): INT-capable switches append per-hop
// metadata — switch ID, ingress/egress timestamps, queue depth — to
// transit packets, and a sink at the path's edge strips the stack and
// ships it to a collector. Where the paper's own system observes one
// tapped switch passively, INT extends visibility to every hop of an
// instrumented path; the two are complementary, and this package lets
// the testbed reproduce INT-style per-hop measurements alongside the
// TAP-based ones.
package inband

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// HopMetadata is one INT stack entry, the standard INT-MD fields this
// model carries. It aliases the packet-level type so that packets can
// transport stacks without an import cycle.
type HopMetadata = packet.INTHop

// HopLatency is the packet's time through a hop.
func HopLatency(h HopMetadata) simtime.Time { return h.EgressAt - h.IngressAt }

// Source marks packets for telemetry collection: an INT source embeds
// instructions; this model flags packets via the FlowTag convention
// plus a stack slice carried in simulator metadata.
//
// Stack manipulation helpers operate on the packet's INT field.

// Push appends one hop's metadata to the packet's INT stack.
func Push(pkt *packet.Packet, md HopMetadata) {
	pkt.INTStack = append(pkt.INTStack, md)
}

// Extract removes and returns the packet's INT stack (the sink
// operation: telemetry leaves the packet before delivery).
func Extract(pkt *packet.Packet) []HopMetadata {
	st := pkt.INTStack
	pkt.INTStack = nil
	return st
}

// Report is one collected telemetry record: the packet's flow plus its
// full path stack.
type Report struct {
	Flow packet.FiveTuple
	At   simtime.Time
	Path []HopMetadata
}

// Collector aggregates INT reports into per-hop series, the AmLight
// -style "instantaneous utilisation / per-hop delay" view.
type Collector struct {
	// Reports retains every record in arrival order.
	Reports []Report

	// perHopLatency and perHopQueue accumulate series per switch ID.
	perHopLatency map[string]*metrics.Series
	perHopQueue   map[string]*metrics.Series
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{
		perHopLatency: make(map[string]*metrics.Series),
		perHopQueue:   make(map[string]*metrics.Series),
	}
}

// Ingest consumes one report.
func (c *Collector) Ingest(r Report) {
	c.Reports = append(c.Reports, r)
	for _, hop := range r.Path {
		lat, ok := c.perHopLatency[hop.SwitchID]
		if !ok {
			lat = metrics.NewSeries("hop-latency-" + hop.SwitchID)
			c.perHopLatency[hop.SwitchID] = lat
		}
		lat.Append(r.At, HopLatency(hop).Seconds()*1e6) // microseconds

		q, ok := c.perHopQueue[hop.SwitchID]
		if !ok {
			q = metrics.NewSeries("hop-queue-" + hop.SwitchID)
			c.perHopQueue[hop.SwitchID] = q
		}
		q.Append(r.At, float64(hop.QueueBytes))
	}
}

// HopLatencySeries returns the per-hop latency series for a switch, or
// nil.
func (c *Collector) HopLatencySeries(switchID string) *metrics.Series {
	return c.perHopLatency[switchID]
}

// HopQueueSeries returns the per-hop queue series for a switch, or nil.
func (c *Collector) HopQueueSeries(switchID string) *metrics.Series {
	return c.perHopQueue[switchID]
}

// Hops lists the switch IDs seen, sorted.
func (c *Collector) Hops() []string {
	out := make([]string, 0, len(c.perHopLatency))
	for id := range c.perHopLatency {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// PathOf reconstructs the hop sequence of the most recent report for a
// flow, or nil.
func (c *Collector) PathOf(ft packet.FiveTuple) []string {
	for i := len(c.Reports) - 1; i >= 0; i-- {
		if c.Reports[i].Flow == ft {
			path := make([]string, len(c.Reports[i].Path))
			for j, hop := range c.Reports[i].Path {
				path[j] = hop.SwitchID
			}
			return path
		}
	}
	return nil
}

// Summary renders per-hop statistics.
func (c *Collector) Summary() string {
	out := fmt.Sprintf("INT collector: %d reports\n", len(c.Reports))
	for _, id := range c.Hops() {
		lat := c.perHopLatency[id]
		q := c.perHopQueue[id]
		out += fmt.Sprintf("  hop %-12s latency mean %8.1fus max %8.1fus | queue mean %9.0fB max %9.0fB\n",
			id, lat.Mean(), lat.Max(), q.Mean(), q.Max())
	}
	return out
}
