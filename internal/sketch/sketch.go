// Package sketch provides the memory-bounded ("lean") telemetry tier:
// count-min sketches with explicit (ε, δ) error bounds for per-flow
// byte, packet and loss counting, plus a Bloom dup-filter that detects
// TCP retransmissions without per-flow sequence state. The structures
// follow Liu et al.'s Lean Algorithms (PAPERS.md): where the exact
// register tier (internal/dataplane) dedicates cells to heavy hitters,
// the lean tier absorbs every other flow — and every evicted flow — in
// O(1/ε · ln 1/δ) memory independent of the flow count.
//
// Every update path is pure array arithmetic over preallocated storage
// (the p4:hotpath contract): no allocation, no locking, no stdlib hash
// interface. Accuracy guarantees, per key k with true count a(k) and N
// total inserted count:
//
//	Estimate(k) ≥ a(k)                               (never undercounts)
//	P[ Estimate(k) > a(k) + ε·N ] ≤ δ                (CMS, Cormode & Muthukrishnan)
//
// The dup filter never misses a duplicate it has admitted (no false
// negatives absent an explicit Clear); its false positives overcount
// loss at the analytically-computable rate FPRate returns.
package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Key is the packed wire-format 5-tuple the sketches index by — the
// same 13-byte layout as dataplane.FlowKey (src IP, dst IP, src port,
// dst port, protocol, network byte order), so the data plane converts
// between the two for free.
type Key [13]byte

// mix64 is the splitmix64 finalizer: an invertible avalanche over one
// 64-bit word. Unlike the CRC32 the exact tier uses for flow IDs, it
// never escapes its argument to an interface, keeping sketch updates
// allocation-free.
//
// p4:hotpath
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashRow hashes the key under a row seed: the 13 bytes load as one
// 64-bit word plus a 40-bit tail, each folded through the splitmix64
// finalizer. Distinct seeds emulate the independent hash units a
// hardware sketch dedicates per row.
//
// p4:hotpath
func (k *Key) hashRow(seed uint64) uint64 {
	lo := binary.LittleEndian.Uint64(k[0:8])
	hi := uint64(k[8]) | uint64(k[9])<<8 | uint64(k[10])<<16 |
		uint64(k[11])<<24 | uint64(k[12])<<32
	x := mix64(lo ^ (seed * 0x9e3779b97f4a7c15))
	return mix64(x ^ hi)
}

// Geometry is a sketch's shape together with the error guarantee it
// delivers. Width and Depth are the physical dimensions; Epsilon and
// Delta are the bound the dimensions actually achieve (which is at
// least as tight as what was requested, since dimensions round up).
type Geometry struct {
	// Width is the number of counters per row: ⌈e/ε⌉ for a requested ε.
	Width int
	// Depth is the number of independent hash rows: ⌈ln(1/δ)⌉ for a
	// requested δ.
	Depth int
	// Epsilon is the delivered relative error: overcount ≤ ε·N where N
	// is the total count inserted across all keys.
	Epsilon float64
	// Delta is the delivered failure probability of the ε bound for any
	// single query.
	Delta float64
}

// GeometryFor derives the smallest geometry meeting a requested
// (ε, δ) bound: width = ⌈e/ε⌉, depth = ⌈ln(1/δ)⌉, then recomputes the
// delivered bound from the rounded-up dimensions (ε' = e/width,
// δ' = e^-depth).
func GeometryFor(epsilon, delta float64) Geometry {
	if !(epsilon > 0 && epsilon < 1) || math.IsNaN(epsilon) {
		panic(fmt.Sprintf("sketch: epsilon %g out of range (0,1)", epsilon))
	}
	if !(delta > 0 && delta < 1) || math.IsNaN(delta) {
		panic(fmt.Sprintf("sketch: delta %g out of range (0,1)", delta))
	}
	g := Geometry{
		Width: int(math.Ceil(math.E / epsilon)),
		Depth: int(math.Ceil(math.Log(1 / delta))),
	}
	if g.Depth < 1 {
		g.Depth = 1
	}
	g.Epsilon = math.E / float64(g.Width)
	g.Delta = math.Exp(-float64(g.Depth))
	return g
}

// CMS is a count-min sketch with its analytical error bound attached.
// Rows are stored flat (depth × width) for cache locality; row seeds
// are fixed at construction so two sketches with the same geometry
// index identically (what lets the sharded data plane sum estimates
// across pipes).
type CMS struct {
	width uint64
	depth int
	rows  []uint64 // flat: rows[r*width : (r+1)*width]
	seeds []uint64
	total uint64 // total count inserted (the N of the ε·N bound)
	geom  Geometry
}

// NewCMS builds a sketch with the given geometry (use GeometryFor to
// derive one from a requested bound).
func NewCMS(g Geometry) *CMS {
	if g.Width <= 0 || g.Depth <= 0 {
		panic(fmt.Sprintf("sketch: invalid CMS geometry %dx%d", g.Width, g.Depth))
	}
	c := &CMS{
		width: uint64(g.Width),
		depth: g.Depth,
		rows:  make([]uint64, g.Width*g.Depth),
		seeds: make([]uint64, g.Depth),
		geom:  g,
	}
	for r := range c.seeds {
		c.seeds[r] = mix64(uint64(r) + 0x6a09e667f3bcc909)
	}
	return c
}

// Geometry returns the sketch's shape and delivered (ε, δ) bound.
func (c *CMS) Geometry() Geometry { return c.geom }

// Update adds count to the key's counters in every row.
//
// p4:hotpath
func (c *CMS) Update(k *Key, count uint64) {
	base := uint64(0)
	for r := 0; r < c.depth; r++ {
		c.rows[base+k.hashRow(c.seeds[r])%c.width] += count
		base += c.width
	}
	c.total += count
}

// Estimate returns the key's count estimate: the minimum across rows.
// Never below the true count; above it by more than ErrorBound with
// probability at most Geometry().Delta.
//
// p4:hotpath
func (c *CMS) Estimate(k *Key) uint64 {
	est := ^uint64(0)
	base := uint64(0)
	for r := 0; r < c.depth; r++ {
		if v := c.rows[base+k.hashRow(c.seeds[r])%c.width]; v < est {
			est = v
		}
		base += c.width
	}
	return est
}

// Total returns the total count inserted since construction (or the
// last Clear) — the N the ε·N bound scales with.
func (c *CMS) Total() uint64 { return c.total }

// ErrorBound returns the current analytical overcount bound ⌈ε·N⌉:
// any single Estimate exceeds the true count by more than this with
// probability at most Geometry().Delta.
func (c *CMS) ErrorBound() uint64 {
	return uint64(math.Ceil(c.geom.Epsilon * float64(c.total)))
}

// MemoryBytes returns the sketch's counter storage footprint.
func (c *CMS) MemoryBytes() uint64 { return uint64(len(c.rows)) * 8 }

// Clear zeroes every counter and the total. The never-undercount
// property restarts from the clear.
func (c *CMS) Clear() {
	for i := range c.rows {
		c.rows[i] = 0
	}
	c.total = 0
}

// DupFilter is a Bloom filter over (flow key, sequence number) pairs:
// the lean tier's retransmission detector. A TCP data packet whose
// (key, seq) was already admitted is a duplicate — evidence of loss —
// without any per-flow sequence register. No false negatives absent a
// Clear; false positives (spurious loss counts) occur at the rate
// FPRate computes from the actual insert count.
type DupFilter struct {
	bits    []uint64
	mask    uint64 // bit-index mask (len(bits)*64 - 1, power of two)
	hashes  int
	inserts uint64
}

// NewDupFilter sizes a filter for an expected number of inserts at a
// target false-positive rate: m = ⌈-n·ln(p)/ln²2⌉ bits rounded up to a
// power of two, k = round(m/n · ln 2) hash probes.
func NewDupFilter(expectedInserts int, targetFP float64) *DupFilter {
	if expectedInserts <= 0 {
		expectedInserts = 1 << 20
	}
	if !(targetFP > 0 && targetFP < 1) || math.IsNaN(targetFP) {
		panic(fmt.Sprintf("sketch: dup-filter target FP %g out of range (0,1)", targetFP))
	}
	n := float64(expectedInserts)
	mBits := math.Ceil(-n * math.Log(targetFP) / (math.Ln2 * math.Ln2))
	logBits := int(math.Ceil(math.Log2(mBits)))
	if logBits < 9 {
		logBits = 9 // floor: one cache line of bits
	}
	k := int(math.Round(float64(uint64(1)<<logBits) / n * math.Ln2))
	if k < 1 {
		k = 1
	}
	// Cap the derived probe count at 8: beyond that the FP gain is
	// marginal but every data packet pays the extra probes (the warm
	// insert on the admitted path makes this a hot-path cost).
	if k > 8 {
		k = 8
	}
	return NewDupFilterBits(logBits, k)
}

// NewDupFilterBits builds a filter with 2^logBits bits and the given
// probe count directly.
func NewDupFilterBits(logBits, hashes int) *DupFilter {
	if logBits < 6 || logBits > 40 {
		panic(fmt.Sprintf("sketch: dup-filter logBits %d out of range 6..40", logBits))
	}
	if hashes < 1 || hashes > 16 {
		panic(fmt.Sprintf("sketch: dup-filter hashes %d out of range 1..16", hashes))
	}
	size := uint64(1) << logBits
	return &DupFilter{
		bits:   make([]uint64, size/64),
		mask:   size - 1,
		hashes: hashes,
	}
}

// TestAndSet reports whether (k, seq) was already present, inserting
// it either way. Double hashing (Kirsch–Mitzenmacher) derives all
// probe positions from two mixes of the pair.
//
// p4:hotpath
func (f *DupFilter) TestAndSet(k *Key, seq uint64) bool {
	h1 := k.hashRow(seq)
	h2 := mix64(h1) | 1
	seen := true
	for i := 0; i < f.hashes; i++ {
		bit := (h1 + uint64(i)*h2) & f.mask
		word, shift := bit>>6, bit&63
		if f.bits[word]&(1<<shift) == 0 {
			seen = false
			f.bits[word] |= 1 << shift
		}
	}
	f.inserts++
	return seen
}

// Inserts returns the number of TestAndSet calls since construction or
// the last Clear.
func (f *DupFilter) Inserts() uint64 { return f.inserts }

// FPRate returns the analytical false-positive probability at the
// current fill: (1 - e^(-k·n/m))^k with n the actual insert count.
func (f *DupFilter) FPRate() float64 {
	m := float64(f.mask + 1)
	n := float64(f.inserts)
	k := float64(f.hashes)
	return math.Pow(1-math.Exp(-k*n/m), k)
}

// MemoryBytes returns the filter's bit-array footprint.
func (f *DupFilter) MemoryBytes() uint64 { return uint64(len(f.bits)) * 8 }

// Clear zeroes the filter. Duplicates spanning a clear go undetected —
// the windowing trade-off Lean Algorithms accepts when the filter is
// reset per measurement epoch.
func (f *DupFilter) Clear() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.inserts = 0
}

// Config parameterises a Lean bundle. The zero value defaults to
// ε = 1e-3, δ = 0.01 for the counting sketches and a dup filter sized
// for 4M inserts at 1% false positives.
type Config struct {
	// Epsilon and Delta bound the byte/packet/loss sketches'
	// overcount: ≤ ε·N with probability ≥ 1-δ per query.
	Epsilon, Delta float64
	// DupExpectedInserts sizes the retransmission dup filter for the
	// TCP data packets one measurement window is expected to carry.
	DupExpectedInserts int
	// DupTargetFP is the dup filter's design false-positive rate at
	// DupExpectedInserts.
	DupTargetFP float64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Epsilon == 0 {
		c.Epsilon = 1e-3
	}
	if c.Delta == 0 {
		c.Delta = 0.01
	}
	if c.DupExpectedInserts == 0 {
		c.DupExpectedInserts = 4 << 20
	}
	if c.DupTargetFP == 0 {
		c.DupTargetFP = 0.01
	}
	return c
}

// Lean bundles the lean tier's structures: byte, packet and loss
// sketches sharing one geometry, plus the retransmission dup filter.
// It is what a data-plane pipe updates for every packet the exact
// register tier did not admit, and what evicted exact-tier flows fold
// into.
type Lean struct {
	bytes, pkts, loss *CMS
	dup               *DupFilter
	cfg               Config
}

// NewLean builds the bundle (zero-value cfg = package defaults).
func NewLean(cfg Config) *Lean {
	cfg = cfg.withDefaults()
	g := GeometryFor(cfg.Epsilon, cfg.Delta)
	return &Lean{
		bytes: NewCMS(g),
		pkts:  NewCMS(g),
		loss:  NewCMS(g),
		dup:   NewDupFilter(cfg.DupExpectedInserts, cfg.DupTargetFP),
		cfg:   cfg,
	}
}

// Geometry returns the counting sketches' shared geometry.
func (l *Lean) Geometry() Geometry { return l.bytes.Geometry() }

// Observe counts one packet of wireBytes for the key.
//
// p4:hotpath
func (l *Lean) Observe(k *Key, wireBytes uint64) {
	l.bytes.Update(k, wireBytes)
	l.pkts.Update(k, 1)
}

// SeenSeq records a TCP data packet's (key, seq) in the dup filter and
// reports whether it was already present — a retransmission (or a
// filter false positive).
//
// p4:hotpath
func (l *Lean) SeenSeq(k *Key, seq uint64) bool {
	return l.dup.TestAndSet(k, seq)
}

// CountLoss adds one loss event for the key.
//
// p4:hotpath
func (l *Lean) CountLoss(k *Key) {
	l.loss.Update(k, 1)
}

// Fold adds a flow's exact-tier totals into the sketches — the
// eviction path: the flow's history must survive its register cells.
func (l *Lean) Fold(k *Key, bytes, pkts, loss uint64) {
	if bytes > 0 {
		l.bytes.Update(k, bytes)
	}
	if pkts > 0 {
		l.pkts.Update(k, pkts)
	}
	if loss > 0 {
		l.loss.Update(k, loss)
	}
}

// Estimate returns the key's byte, packet and loss estimates.
//
// p4:hotpath
func (l *Lean) Estimate(k *Key) (bytes, pkts, loss uint64) {
	return l.bytes.Estimate(k), l.pkts.Estimate(k), l.loss.Estimate(k)
}

// Bounds returns the current analytical overcount bounds (⌈ε·N⌉ per
// sketch, each holding with probability ≥ 1-δ).
func (l *Lean) Bounds() (bytes, pkts, loss uint64) {
	return l.bytes.ErrorBound(), l.pkts.ErrorBound(), l.loss.ErrorBound()
}

// Totals returns each sketch's inserted total (the N of its bound).
func (l *Lean) Totals() (bytes, pkts, loss uint64) {
	return l.bytes.Total(), l.pkts.Total(), l.loss.Total()
}

// DupFPRate returns the dup filter's analytical false-positive rate at
// its current fill — the rate at which fresh data packets spuriously
// count as losses.
func (l *Lean) DupFPRate() float64 { return l.dup.FPRate() }

// MemoryBytes returns the bundle's total storage footprint.
func (l *Lean) MemoryBytes() uint64 {
	return l.bytes.MemoryBytes() + l.pkts.MemoryBytes() +
		l.loss.MemoryBytes() + l.dup.MemoryBytes()
}

// ClearWindow resets the dup filter only — the per-epoch windowing of
// Lean Algorithms. The counting sketches (and their bounds) persist.
func (l *Lean) ClearWindow() { l.dup.Clear() }

// Clear resets everything: sketches, totals and the dup filter.
func (l *Lean) Clear() {
	l.bytes.Clear()
	l.pkts.Clear()
	l.loss.Clear()
	l.dup.Clear()
}
