package sketch

import (
	"math"
	"testing"
)

// testRNG is a deterministic splitmix64 stream so the property trials
// are reproducible run to run.
type testRNG struct{ state uint64 }

func (r *testRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// keyFor derives a distinct 13-byte key from an integer flow index.
func keyFor(i uint64) Key {
	var k Key
	h := mix64(i + 1)
	for b := 0; b < 13; b++ {
		k[b] = byte(h >> (uint(b%8) * 8))
	}
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	k[2] = byte(i >> 16)
	k[12] = 6
	return k
}

func TestGeometryFor(t *testing.T) {
	g := GeometryFor(0.001, 0.01)
	if g.Width != int(math.Ceil(math.E/0.001)) {
		t.Errorf("width = %d, want ⌈e/ε⌉ = %d", g.Width, int(math.Ceil(math.E/0.001)))
	}
	if g.Depth != int(math.Ceil(math.Log(1/0.01))) {
		t.Errorf("depth = %d, want ⌈ln(1/δ)⌉ = %d", g.Depth, int(math.Ceil(math.Log(1/0.01))))
	}
	// Rounded-up dimensions must deliver a bound at least as tight as
	// requested.
	if g.Epsilon > 0.001 {
		t.Errorf("delivered ε %g looser than requested 0.001", g.Epsilon)
	}
	if g.Delta > 0.01 {
		t.Errorf("delivered δ %g looser than requested 0.01", g.Delta)
	}
	for _, bad := range []float64{0, 1, -0.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GeometryFor(%g, 0.01) did not panic", bad)
				}
			}()
			GeometryFor(bad, 0.01)
		}()
	}
}

// TestCMSNeverUndercounts is the one-sided error property: over seeded
// trials with heavy key skew, no estimate may fall below the true
// count — including after Fold-style bulk adds.
func TestCMSNeverUndercounts(t *testing.T) {
	for trial := uint64(0); trial < 5; trial++ {
		c := NewCMS(GeometryFor(0.01, 0.05))
		rng := &testRNG{state: trial * 7919}
		const flows = 4000
		truth := make(map[uint64]uint64, flows)
		for i := 0; i < 60000; i++ {
			f := rng.next() % flows
			// Zipf-ish skew: low flow indices send most of the traffic.
			count := uint64(40)
			if f < 16 {
				count = 1460
			}
			k := keyFor(f)
			c.Update(&k, count)
			truth[f] += count
		}
		for f, want := range truth {
			k := keyFor(f)
			if got := c.Estimate(&k); got < want {
				t.Fatalf("trial %d: flow %d estimate %d < true %d", trial, f, got, want)
			}
		}
	}
}

// TestCMSErrorBoundHolds is the (ε, δ) property: the fraction of keys
// whose overcount exceeds the analytical ⌈ε·N⌉ bound must stay within
// the delivered δ, over seeded trials.
func TestCMSErrorBoundHolds(t *testing.T) {
	for trial := uint64(0); trial < 5; trial++ {
		c := NewCMS(GeometryFor(0.01, 0.05))
		rng := &testRNG{state: 1 + trial*104729}
		const flows = 5000
		truth := make(map[uint64]uint64, flows)
		for i := 0; i < 100000; i++ {
			f := rng.next() % flows
			k := keyFor(f)
			c.Update(&k, 1)
			truth[f]++
		}
		bound := c.ErrorBound()
		if bound == 0 {
			t.Fatal("zero error bound after inserts")
		}
		violations := 0
		for f, want := range truth {
			k := keyFor(f)
			if c.Estimate(&k) > want+bound {
				violations++
			}
		}
		frac := float64(violations) / float64(len(truth))
		if delta := c.Geometry().Delta; frac > delta {
			t.Errorf("trial %d: bound violated for %.4f of keys, want ≤ δ = %.4f",
				trial, frac, delta)
		}
	}
}

// TestCMSTotalAndClear pins the bound's N bookkeeping and the clear
// semantics.
func TestCMSTotalAndClear(t *testing.T) {
	c := NewCMS(Geometry{Width: 64, Depth: 2, Epsilon: math.E / 64, Delta: math.Exp(-2)})
	k := keyFor(1)
	c.Update(&k, 100)
	c.Update(&k, 23)
	if c.Total() != 123 {
		t.Errorf("Total = %d, want 123", c.Total())
	}
	if got := c.Estimate(&k); got < 123 {
		t.Errorf("Estimate = %d, want ≥ 123", got)
	}
	wantBound := uint64(math.Ceil(math.E / 64 * 123))
	if c.ErrorBound() != wantBound {
		t.Errorf("ErrorBound = %d, want %d", c.ErrorBound(), wantBound)
	}
	if c.MemoryBytes() != 64*2*8 {
		t.Errorf("MemoryBytes = %d, want %d", c.MemoryBytes(), 64*2*8)
	}
	c.Clear()
	if c.Total() != 0 || c.Estimate(&k) != 0 || c.ErrorBound() != 0 {
		t.Errorf("Clear left state: total %d est %d bound %d",
			c.Total(), c.Estimate(&k), c.ErrorBound())
	}
}

// TestDupFilterNeverMissesDuplicate: every admitted (key, seq) pair
// must test positive on re-probe — a retransmission is never missed
// while the filter is unCleared.
func TestDupFilterNeverMissesDuplicate(t *testing.T) {
	f := NewDupFilter(100000, 0.01)
	rng := &testRNG{state: 42}
	type pair struct {
		flow uint64
		seq  uint64
	}
	inserted := make([]pair, 0, 50000)
	for i := 0; i < 50000; i++ {
		p := pair{flow: rng.next() % 1000, seq: rng.next()}
		k := keyFor(p.flow)
		f.TestAndSet(&k, p.seq)
		inserted = append(inserted, p)
	}
	for _, p := range inserted {
		k := keyFor(p.flow)
		if !f.TestAndSet(&k, p.seq) {
			t.Fatalf("admitted pair (%d, %d) tested negative", p.flow, p.seq)
		}
	}
}

// TestDupFilterFPRate: the measured false-positive fraction on fresh
// pairs must stay near the analytical FPRate (2x slack plus an
// absolute floor absorbs trial variance).
func TestDupFilterFPRate(t *testing.T) {
	f := NewDupFilter(100000, 0.01)
	rng := &testRNG{state: 7}
	for i := 0; i < 100000; i++ {
		k := keyFor(rng.next() % 2000)
		f.TestAndSet(&k, rng.next()|1<<40) // seq space A
	}
	if a := f.FPRate(); a <= 0 || a >= 0.1 {
		t.Fatalf("analytical FP rate %g implausible for design point", a)
	}
	const probes = 50000
	fp := 0
	for i := 0; i < probes; i++ {
		k := keyFor(rng.next() % 2000)
		// Disjoint seq space: every probe pair is fresh, so a positive
		// test is a false positive (the probe's own insert then raises
		// the fill, which the final-fill analytical rate accounts for).
		seq := rng.next() | 1<<41
		if f.TestAndSet(&k, seq&^(1<<40)) {
			fp++
		}
	}
	measured := float64(fp) / probes
	// Every probe ran at or below the final fill, so the final-fill
	// analytical rate (plus statistical slack) upper-bounds the
	// measured fraction.
	if analytical := f.FPRate(); measured > 2*analytical+0.005 {
		t.Errorf("measured FP rate %.5f far above final-fill analytical %.5f", measured, analytical)
	}
}

// TestLeanFoldAndEstimate drives the bundle API end to end: live
// observes plus an eviction fold, then never-undercount and bound
// checks per flow.
func TestLeanFoldAndEstimate(t *testing.T) {
	l := NewLean(Config{Epsilon: 0.01, Delta: 0.05, DupExpectedInserts: 1 << 16, DupTargetFP: 0.01})
	rng := &testRNG{state: 99}
	const flows = 2000
	truthBytes := make([]uint64, flows)
	truthPkts := make([]uint64, flows)
	truthLoss := make([]uint64, flows)
	for i := 0; i < 40000; i++ {
		f := rng.next() % flows
		k := keyFor(f)
		l.Observe(&k, 1500)
		truthBytes[f] += 1500
		truthPkts[f]++
		seq := rng.next() % 64 // heavy seq reuse → real duplicates
		if l.SeenSeq(&k, seq) {
			l.CountLoss(&k)
			truthLoss[f]++ // dup filter has no false negatives, so this is exact-or-over
		}
	}
	// Eviction fold: flow 0 arrives with an exact history.
	k0 := keyFor(0)
	l.Fold(&k0, 1<<20, 700, 3)
	truthBytes[0] += 1 << 20
	truthPkts[0] += 700
	truthLoss[0] += 3

	bBound, pBound, _ := l.Bounds()
	if bBound == 0 || pBound == 0 {
		t.Fatal("zero bounds after traffic")
	}
	violB, violP := 0, 0
	for f := uint64(0); f < flows; f++ {
		k := keyFor(f)
		eb, ep, el := l.Estimate(&k)
		if eb < truthBytes[f] || ep < truthPkts[f] || el < truthLoss[f] {
			t.Fatalf("flow %d undercount: est (%d,%d,%d) truth (%d,%d,%d)",
				f, eb, ep, el, truthBytes[f], truthPkts[f], truthLoss[f])
		}
		if eb > truthBytes[f]+bBound {
			violB++
		}
		if ep > truthPkts[f]+pBound {
			violP++
		}
	}
	delta := l.Geometry().Delta
	if frac := float64(violB) / flows; frac > delta {
		t.Errorf("byte bound violated for %.4f of flows, want ≤ %.4f", frac, delta)
	}
	if frac := float64(violP) / flows; frac > delta {
		t.Errorf("pkt bound violated for %.4f of flows, want ≤ %.4f", frac, delta)
	}
	if l.MemoryBytes() == 0 {
		t.Error("MemoryBytes = 0")
	}
	if l.DupFPRate() <= 0 {
		t.Error("DupFPRate = 0 after inserts")
	}

	// ClearWindow resets only the dup filter; the sketches persist.
	tb, tp, tl := l.Totals()
	l.ClearWindow()
	tb2, tp2, tl2 := l.Totals()
	if tb2 != tb || tp2 != tp || tl2 != tl {
		t.Error("ClearWindow disturbed sketch totals")
	}
	if !l.SeenSeq(&k0, 1) {
		// First probe after a window clear must be unseen...
	} else {
		t.Error("dup filter retained state across ClearWindow")
	}
	l.Clear()
	if b, p, lo := l.Totals(); b != 0 || p != 0 || lo != 0 {
		t.Errorf("Clear left totals (%d,%d,%d)", b, p, lo)
	}
}

// TestLeanDefaults pins the zero-config defaults' derived geometry.
func TestLeanDefaults(t *testing.T) {
	l := NewLean(Config{})
	g := l.Geometry()
	if g.Epsilon > 1e-3 || g.Delta > 0.01 {
		t.Errorf("default geometry (ε=%g, δ=%g) looser than documented ε=1e-3, δ=0.01",
			g.Epsilon, g.Delta)
	}
	// Three counting sketches at the default geometry stay well under a
	// megabyte per pipe — the bounded-memory story.
	if got := l.bytes.MemoryBytes() * 3; got > 1<<20 {
		t.Errorf("default counting sketches use %d bytes, want < 1 MiB", got)
	}
}
