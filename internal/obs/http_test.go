package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("p4_http_test_total", "HTTP test counter.")
	c.Add(5)
	tr := r.NewTrace("lifecycle", 8)
	tr.Add("open", 1, 0)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "p4_http_test_total 5") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}

	code, body = get(t, srv, "/trace")
	if code != http.StatusOK || !strings.Contains(body, "seq=0 open a=1 b=0") {
		t.Errorf("/trace = %d:\n%s", code, body)
	}

	code, body = get(t, srv, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	var obsVars map[string]interface{}
	if err := json.Unmarshal(vars["p4obs"], &obsVars); err != nil {
		t.Fatalf("p4obs var: %v", err)
	}
	if obsVars["p4_http_test_total"] != float64(5) {
		t.Errorf("p4obs.p4_http_test_total = %v, want 5", obsVars["p4_http_test_total"])
	}

	if code, _ := get(t, srv, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
	if code, body := get(t, srv, "/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d:\n%s", code, body)
	}
	if code, _ := get(t, srv, "/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.AddProcessMetrics()
	srv, addr, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "p4_process_goroutines") {
		t.Errorf("process metrics missing:\n%s", body)
	}
}
