package obs

import (
	"strings"
	"testing"
)

// TestPrometheusExpositionGolden pins the /metrics wire format — the
// CI obs job's exposition snapshot. Every renderer (counter, gauge,
// gauge func, histogram, collector group) contributes, with fixed
// observations so the output is byte-deterministic.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("p4_test_events_total", "Events seen.")
	g := r.NewGauge("p4_test_depth", "Current queue depth.")
	r.NewGaugeFunc("p4_test_capacity", "Configured capacity.", func() uint64 { return 4096 })
	h := r.NewHistogram("p4_test_latency_ns", "Operation latency.")
	r.Collect(func(w MetricWriter) {
		w.Gauge("p4_test_group_a", "First of a consistent pair.", 2)
		w.Gauge("p4_test_group_b", "Second of a consistent pair.", 3)
	})

	c.Add(12)
	g.Set(7)
	for _, v := range []uint64{0, 1, 2, 3, 900, 1000} {
		h.Observe(v)
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	want := `# HELP p4_test_events_total Events seen.
# TYPE p4_test_events_total counter
p4_test_events_total 12
# HELP p4_test_depth Current queue depth.
# TYPE p4_test_depth gauge
p4_test_depth 7
# HELP p4_test_capacity Configured capacity.
# TYPE p4_test_capacity gauge
p4_test_capacity 4096
# HELP p4_test_latency_ns Operation latency.
# TYPE p4_test_latency_ns histogram
p4_test_latency_ns_bucket{le="0"} 1
p4_test_latency_ns_bucket{le="1"} 2
p4_test_latency_ns_bucket{le="3"} 4
p4_test_latency_ns_bucket{le="7"} 4
p4_test_latency_ns_bucket{le="15"} 4
p4_test_latency_ns_bucket{le="31"} 4
p4_test_latency_ns_bucket{le="63"} 4
p4_test_latency_ns_bucket{le="127"} 4
p4_test_latency_ns_bucket{le="255"} 4
p4_test_latency_ns_bucket{le="511"} 4
p4_test_latency_ns_bucket{le="1023"} 6
p4_test_latency_ns_bucket{le="+Inf"} 6
p4_test_latency_ns_sum 1906
p4_test_latency_ns_count 6
# HELP p4_test_group_a First of a consistent pair.
# TYPE p4_test_group_a gauge
p4_test_group_a 2
# HELP p4_test_group_b Second of a consistent pair.
# TYPE p4_test_group_b gauge
p4_test_group_b 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
