package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.Add(3)
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge after Add = %d, want 10", got)
	}
	g.Add(^uint64(0)) // -1 in two's complement
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge after decrement = %d, want 9", got)
	}
}

// TestHistogramBuckets pins the log2 bucketing contract: bucket 0
// holds the value 0, bucket i holds [2^(i-1), 2^i).
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {math.MaxUint64, 64},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 10: 1, 11: 1, 64: 1}
	for i, n := range s.Buckets {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	if s.Count != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", s.Count, len(cases))
	}
}

func TestBucketUpper(t *testing.T) {
	cases := map[int]uint64{0: 0, 1: 1, 2: 3, 3: 7, 10: 1023, 64: math.MaxUint64, 70: math.MaxUint64}
	for i, want := range cases {
		if got := BucketUpper(i); got != want {
			t.Errorf("BucketUpper(%d) = %d, want %d", i, got, want)
		}
	}
}

// TestHistogramConcurrent drives Observe from many goroutines — under
// -race this proves the atomic-only mutation contract.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(uint64(w*each + i))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*each {
		t.Fatalf("count = %d, want %d", got, workers*each)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup", "")
}

func TestRegistrySync(t *testing.T) {
	r := NewRegistry()
	synced := 0
	r.Sync = func(f func()) { synced++; f() }
	r.NewGaugeFunc("g", "", func() uint64 { return 1 })
	_ = r.Snapshot()
	if synced != 1 {
		t.Fatalf("Sync ran %d times, want 1", synced)
	}
}

func TestSnapshotValues(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h_ns", "")
	r.Collect(func(w MetricWriter) { w.Gauge("from_collector", "", 5) })
	c.Add(3)
	g.Set(9)
	h.Observe(100)
	snap := r.Snapshot()
	if snap["c_total"] != uint64(3) || snap["g"] != uint64(9) || snap["from_collector"] != uint64(5) {
		t.Fatalf("snapshot = %#v", snap)
	}
	hv, ok := snap["h_ns"].(map[string]interface{})
	if !ok || hv["count"] != uint64(1) || hv["sum"] != uint64(100) {
		t.Fatalf("histogram snapshot = %#v", snap["h_ns"])
	}
}
