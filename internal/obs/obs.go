// Package obs is the system's self-telemetry layer: the measurement
// pipeline measures the network per packet, and this package makes the
// pipeline itself observable with the same discipline. It provides
// atomic counters and gauges, fixed-bucket power-of-two histograms
// (preallocated, mutated with atomic adds only — safe to call from the
// zero-allocation packet path), a bounded ring-buffer event trace for
// report-lifecycle and ladder-transition events, and a Registry that
// renders everything as Prometheus text, expvar JSON, and a /trace
// dump next to net/http/pprof. Everything is stdlib-only.
//
// Design constraints, in order:
//
//  1. Hot-path mutation (Counter.Inc, Gauge.Set, Histogram.Observe,
//     Trace.Add) performs zero heap allocations and takes no registry
//     lock; the per-packet alloc assertions in bench_alloc_test.go run
//     with instrumentation enabled.
//  2. Scrapes see consistent snapshots where consistency carries
//     meaning: multi-metric invariants (the resilient shipper's ladder
//     accounting) are rendered by a Collect callback that reads one
//     mutex-guarded snapshot, not by independent gauges.
//  3. Instrumentation is opt-in and nil-safe: packages hold a nil
//     metrics struct until RegisterObs wires them to a Registry, so
//     the uninstrumented configuration pays only a nil check.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { atomic.AddUint64(&c.v, 1) }

// Add adds n.
func (c *Counter) Add(n uint64) { atomic.AddUint64(&c.v, n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return atomic.LoadUint64(&c.v) }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v uint64
}

// Set stores v.
func (g *Gauge) Set(v uint64) { atomic.StoreUint64(&g.v, v) }

// Add adjusts the gauge by delta (use the two's-complement of a
// negative step to decrement).
func (g *Gauge) Add(delta uint64) { atomic.AddUint64(&g.v, delta) }

// Value returns the current value.
func (g *Gauge) Value() uint64 { return atomic.LoadUint64(&g.v) }

// histBuckets is the fixed bucket count: bucket 0 holds the value 0,
// bucket i (1..64) holds values v with bits.Len64(v) == i, i.e. the
// power-of-two interval [2^(i-1), 2^i). 65 preallocated cells cover
// the entire uint64 range, so Observe never grows anything.
const histBuckets = 65

// Histogram is a fixed-bucket log-scale histogram in the style of
// P4TG's RTT histograms: power-of-two buckets, preallocated, mutated
// with atomic adds only. The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     uint64
}

// Observe records one sample. It allocates nothing and takes no lock.
func (h *Histogram) Observe(v uint64) {
	atomic.AddUint64(&h.buckets[bits.Len64(v)], 1)
	atomic.AddUint64(&h.count, 1)
	atomic.AddUint64(&h.sum, v)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return atomic.LoadUint64(&h.count) }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() uint64 { return atomic.LoadUint64(&h.sum) }

// Snapshot returns an atomic-read copy of the histogram state. The
// per-bucket loads are individually atomic; the snapshot as a whole is
// approximate under concurrent observation, which is the standard
// contract for lock-free histograms.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = atomic.LoadUint64(&h.buckets[i])
	}
	s.Count = atomic.LoadUint64(&h.count)
	s.Sum = atomic.LoadUint64(&h.sum)
	return s
}

// HistogramSnapshot is one scrape's view of a Histogram.
type HistogramSnapshot struct {
	Buckets [histBuckets]uint64
	Count   uint64
	Sum     uint64
}

// BucketUpper returns the inclusive upper bound of bucket i: 0 for
// bucket 0, 2^i − 1 for bucket i ≥ 1 (the largest value whose
// bit-length is i).
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}
