package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one entry in a Trace ring: a static kind string (callers
// pass literals so recording allocates nothing), up to two numeric
// arguments whose meaning the kind defines, a wall-clock stamp and a
// global sequence number. Seq is assigned by Add and never reused, so
// a dump shows exactly how many events were lost to ring wraparound.
type Event struct {
	Seq    uint64
	WallNs int64
	Kind   string
	A, B   uint64
}

// Trace is a bounded ring buffer of lifecycle events. Add overwrites
// the oldest entry when full — a trace is a flight recorder, not a
// log. The ring is preallocated at construction; Add mutates slots in
// place and allocates nothing.
type Trace struct {
	name string

	mu   sync.Mutex
	ring []Event
	next uint64 // total events ever added; next % len(ring) is the write slot
}

// NewTrace builds a standalone trace ring with the given capacity
// (minimum 1). Use Registry.NewTrace to also expose it at /trace.
func NewTrace(name string, capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{name: name, ring: make([]Event, capacity)}
}

// Name returns the trace's registered name.
func (t *Trace) Name() string { return t.name }

// Add records one event. Kind should be a string literal; a and b are
// kind-defined arguments (bytes, counts, durations). Safe for
// concurrent use; zero allocations.
func (t *Trace) Add(kind string, a, b uint64) {
	now := time.Now().UnixNano()
	t.mu.Lock()
	slot := &t.ring[t.next%uint64(len(t.ring))]
	slot.Seq = t.next
	slot.WallNs = now
	slot.Kind = kind
	slot.A = a
	slot.B = b
	t.next++
	t.mu.Unlock()
}

// Len returns the number of events currently retained.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.retained()
}

// Total returns the number of events ever added (retained + lost).
func (t *Trace) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

func (t *Trace) retained() int {
	if t.next < uint64(len(t.ring)) {
		return int(t.next)
	}
	return len(t.ring)
}

// Snapshot appends the retained events to dst in sequence order,
// oldest first, and returns the result.
func (t *Trace) Snapshot(dst []Event) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.retained()
	start := t.next - uint64(n)
	for seq := start; seq < t.next; seq++ {
		dst = append(dst, t.ring[seq%uint64(len(t.ring))])
	}
	return dst
}

// WriteTo renders the retained events as text, one per line, oldest
// first, with a header noting wraparound loss. It implements part of
// the /trace endpoint.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	events := t.Snapshot(nil)
	total := t.Total()
	var n int64
	c, err := fmt.Fprintf(w, "# trace %s: %d events retained, %d total (%d lost to wraparound)\n",
		t.name, len(events), total, total-uint64(len(events)))
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, e := range events {
		ts := time.Unix(0, e.WallNs).UTC().Format("15:04:05.000000")
		c, err := fmt.Fprintf(w, "%s seq=%d %s a=%d b=%d\n", ts, e.Seq, e.Kind, e.A, e.B)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
