package obs

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
)

// MetricWriter receives one scrape's worth of metric samples. The
// Registry passes an implementation rendering Prometheus text or an
// expvar map; Collect callbacks write into whichever is scraping.
type MetricWriter interface {
	// Counter emits a monotonically increasing value.
	Counter(name, help string, v uint64)
	// Gauge emits an instantaneous value.
	Gauge(name, help string, v uint64)
	// Histo emits a full histogram snapshot.
	Histo(name, help string, s HistogramSnapshot)
}

// CollectFunc renders a group of related metrics from one consistent
// snapshot. Registering a CollectFunc (rather than independent gauge
// funcs) is how multi-metric invariants — the shipper's ladder
// accounting — stay exactly true in every scrape.
type CollectFunc func(w MetricWriter)

// Registry owns a named set of metrics, collectors and traces and
// renders them for the HTTP layer. Registration takes the registry
// lock; metric mutation never does.
type Registry struct {
	// Sync, when non-nil, wraps every metric scrape. The collector
	// daemon points it at the mutex that guards the simulation step so
	// scrape-time reads of single-threaded simulation state (register
	// scans, flow-directory sizes) cannot race the engine.
	Sync func(f func())

	mu      sync.Mutex
	order   []string
	entries map[string]entry
	collect []CollectFunc
	traces  []*Trace
}

type entry struct {
	help string
	fn   func(w MetricWriter, name, help string)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]entry)}
}

func (r *Registry) register(name, help string, fn func(w MetricWriter, name, help string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.entries[name] = entry{help: help, fn: fn}
	r.order = append(r.order, name)
}

// NewCounter registers and returns a counter. Duplicate names panic,
// like expvar.Publish.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, func(w MetricWriter, name, help string) {
		w.Counter(name, help, c.Value())
	})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, func(w MetricWriter, name, help string) {
		w.Gauge(name, help, g.Value())
	})
	return g
}

// NewGaugeFunc registers a gauge whose value is computed at scrape
// time. fn runs under Registry.Sync when that is set.
func (r *Registry) NewGaugeFunc(name, help string, fn func() uint64) {
	r.register(name, help, func(w MetricWriter, name, help string) {
		w.Gauge(name, help, fn())
	})
}

// NewHistogram registers and returns a histogram.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	h := &Histogram{}
	r.register(name, help, func(w MetricWriter, name, help string) {
		w.Histo(name, help, h.Snapshot())
	})
	return h
}

// Collect registers a snapshot-consistent metric group.
func (r *Registry) Collect(fn CollectFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collect = append(r.collect, fn)
}

// NewTrace builds a trace ring and exposes it at /trace.
func (r *Registry) NewTrace(name string, capacity int) *Trace {
	t := NewTrace(name, capacity)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.traces = append(r.traces, t)
	return t
}

// Traces returns the registered trace rings in registration order.
func (r *Registry) Traces() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Trace(nil), r.traces...)
}

// AddProcessMetrics registers Go-runtime self-metrics (goroutines,
// heap, GC cycles) — the part of self-telemetry every binary gets for
// free, registry contents aside.
func (r *Registry) AddProcessMetrics() {
	r.Collect(func(w MetricWriter) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		w.Gauge("p4_process_goroutines", "Number of live goroutines.", uint64(runtime.NumGoroutine()))
		w.Gauge("p4_process_heap_alloc_bytes", "Bytes of allocated heap objects.", ms.HeapAlloc)
		w.Counter("p4_process_total_alloc_bytes", "Cumulative bytes allocated for heap objects.", ms.TotalAlloc)
		w.Counter("p4_process_gc_cycles_total", "Completed GC cycles.", uint64(ms.NumGC))
	})
}

// scrape runs every registered renderer and collector against w, under
// Sync when configured.
func (r *Registry) scrape(w MetricWriter) {
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	entries := make(map[string]entry, len(r.entries))
	for k, v := range r.entries {
		entries[k] = v
	}
	collect := append([]CollectFunc(nil), r.collect...)
	sync := r.Sync
	r.mu.Unlock()

	run := func() {
		for _, name := range order {
			e := entries[name]
			e.fn(w, name, e.help)
		}
		for _, fn := range collect {
			fn(w)
		}
	}
	if sync != nil {
		sync(run)
	} else {
		run()
	}
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4), in registration order with
// collectors last.
func (r *Registry) WritePrometheus(w io.Writer) {
	pw := &promWriter{w: w}
	r.scrape(pw)
}

// promWriter renders samples as Prometheus text.
type promWriter struct {
	w io.Writer
}

func (p *promWriter) header(name, help, typ string) {
	if help != "" {
		fmt.Fprintf(p.w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(p.w, "# TYPE %s %s\n", name, typ)
}

func (p *promWriter) Counter(name, help string, v uint64) {
	p.header(name, help, "counter")
	fmt.Fprintf(p.w, "%s %d\n", name, v)
}

func (p *promWriter) Gauge(name, help string, v uint64) {
	p.header(name, help, "gauge")
	fmt.Fprintf(p.w, "%s %d\n", name, v)
}

func (p *promWriter) Histo(name, help string, s HistogramSnapshot) {
	p.header(name, help, "histogram")
	// Power-of-two buckets, rendered cumulatively up to the highest
	// non-empty bucket: le is the inclusive upper bound 2^i − 1.
	top := 0
	for i, c := range s.Buckets {
		if c > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += s.Buckets[i]
		fmt.Fprintf(p.w, "%s_bucket{le=\"%d\"} %d\n", name, BucketUpper(i), cum)
	}
	fmt.Fprintf(p.w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(p.w, "%s_sum %d\n", name, s.Sum)
	fmt.Fprintf(p.w, "%s_count %d\n", name, s.Count)
}

// Snapshot renders every metric as a plain map (for the expvar
// endpoint): counters and gauges map to their value, histograms to a
// {count, sum, buckets} object keyed by inclusive upper bound.
func (r *Registry) Snapshot() map[string]interface{} {
	vw := &varsWriter{out: make(map[string]interface{})}
	r.scrape(vw)
	return vw.out
}

type varsWriter struct {
	out map[string]interface{}
}

func (v *varsWriter) Counter(name, help string, val uint64) { v.out[name] = val }
func (v *varsWriter) Gauge(name, help string, val uint64)   { v.out[name] = val }

func (v *varsWriter) Histo(name, help string, s HistogramSnapshot) {
	buckets := make(map[string]uint64)
	for i, c := range s.Buckets {
		if c > 0 {
			buckets[fmt.Sprintf("le_%d", BucketUpper(i))] = c
		}
	}
	v.out[name] = map[string]interface{}{
		"count":   s.Count,
		"sum":     s.Sum,
		"buckets": buckets,
	}
}

// MetricNames returns the registered metric names, sorted — a test and
// debugging convenience.
func (r *Registry) MetricNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	return names
}
