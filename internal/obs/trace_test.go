package obs

import (
	"strings"
	"testing"
)

// TestTraceRingOrdering pins the flight-recorder contract: events come
// back oldest first in sequence order, before and after wraparound,
// and the total counts events lost to the bounded ring.
func TestTraceRingOrdering(t *testing.T) {
	tr := NewTrace("test", 4)
	tr.Add("a", 1, 0)
	tr.Add("b", 2, 0)
	tr.Add("c", 3, 0)
	got := tr.Snapshot(nil)
	if len(got) != 3 {
		t.Fatalf("retained %d events, want 3", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i) {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, i)
		}
	}
	if got[0].Kind != "a" || got[2].Kind != "c" || got[2].A != 3 {
		t.Errorf("unexpected events: %+v", got)
	}

	// Wrap: 7 total events into a 4-slot ring keeps seqs 3..6.
	tr.Add("d", 4, 0)
	tr.Add("e", 5, 0)
	tr.Add("f", 6, 0)
	tr.Add("g", 7, 0)
	got = tr.Snapshot(nil)
	if len(got) != 4 {
		t.Fatalf("retained %d events after wrap, want 4", len(got))
	}
	wantKinds := []string{"d", "e", "f", "g"}
	for i, e := range got {
		if e.Seq != uint64(i+3) || e.Kind != wantKinds[i] {
			t.Errorf("event %d = seq %d kind %q, want seq %d kind %q",
				i, e.Seq, e.Kind, i+3, wantKinds[i])
		}
	}
	if tr.Total() != 7 || tr.Len() != 4 {
		t.Errorf("total=%d len=%d, want 7 and 4", tr.Total(), tr.Len())
	}
}

func TestTraceWriteTo(t *testing.T) {
	tr := NewTrace("ship", 2)
	tr.Add("ship", 128, 0)
	tr.Add("retry", 0, 1)
	tr.Add("ship", 256, 0)
	var b strings.Builder
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "trace ship: 2 events retained, 3 total (1 lost to wraparound)") {
		t.Errorf("missing header, got:\n%s", out)
	}
	if !strings.Contains(out, "seq=1 retry a=0 b=1") || !strings.Contains(out, "seq=2 ship a=256 b=0") {
		t.Errorf("missing events, got:\n%s", out)
	}
	if strings.Contains(out, "seq=0 ") {
		t.Errorf("overwritten event still rendered:\n%s", out)
	}
}

// TestTraceConcurrent exercises Add under contention (meaningful with
// -race) and checks no sequence number is ever duplicated.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("c", 64)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				tr.Add("e", uint64(i), 0)
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if tr.Total() != 2000 {
		t.Fatalf("total = %d, want 2000", tr.Total())
	}
	seen := map[uint64]bool{}
	for _, e := range tr.Snapshot(nil) {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}
