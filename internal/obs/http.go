package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// expvarReg is the registry whose Snapshot backs the published "p4obs"
// expvar variable. Handler stores the most recent registry it served;
// the variable itself is published once per process (expvar.Publish
// panics on duplicates).
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

func publishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("p4obs", expvar.Func(func() interface{} {
			if reg := expvarReg.Load(); reg != nil {
				return reg.Snapshot()
			}
			return nil
		}))
	})
}

// Handler returns the observability mux:
//
//	/metrics       Prometheus text exposition of every registered metric
//	/trace         dump of every registered trace ring, oldest first
//	/debug/vars    expvar JSON (registry published as "p4obs")
//	/debug/pprof/  the standard pprof index, profile, symbol, trace
//
// The mux is self-contained; nothing is registered on
// http.DefaultServeMux.
func (r *Registry) Handler() http.Handler {
	publishExpvar(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		traces := r.Traces()
		if len(traces) == 0 {
			fmt.Fprintln(w, "# no trace rings registered")
			return
		}
		for _, t := range traces {
			if _, err := t.WriteTo(w); err != nil {
				return
			}
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "p4-psonar self-telemetry\n\n"+
			"  /metrics       Prometheus text\n"+
			"  /trace         event trace rings\n"+
			"  /debug/vars    expvar JSON\n"+
			"  /debug/pprof/  pprof profiles\n")
	})
	return mux
}

// Serve starts the observability endpoint on addr in a background
// goroutine and returns the bound listener address (useful with
// ":0"). Close the returned server to stop it.
func (r *Registry) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() {
		// ErrServerClosed after Close is the orderly path; any other
		// error leaves the endpoint dark, which is not worth crashing a
		// measurement run over.
		_ = srv.Serve(ln)
	}()
	return srv, ln.Addr().String(), nil
}
