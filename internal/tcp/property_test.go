package tcp

import (
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// TestPropertyTransferIntegrity: for any transfer size, loss rate and
// bottleneck in sensible ranges, the receiver must deliver exactly the
// bytes sent, in order, exactly once — TCP's fundamental invariant,
// whatever the loss pattern does to the wire.
func TestPropertyTransferIntegrity(t *testing.T) {
	if testing.Short() {
		t.Skip("property test with many simulations")
	}
	f := func(sizeKB uint16, lossTenths uint8, seed uint16) bool {
		size := uint64(sizeKB%512+1) * 1024     // 1 KB .. 512 KB
		loss := float64(lossTenths%40) / 1000.0 // 0 .. 3.9%

		e := simtime.NewEngine()
		cli := NewHost(e, "c", packet.MustAddr("10.0.0.1"))
		srv := NewHost(e, "s", packet.MustAddr("10.0.1.1"))
		sw := &swNode{engine: e, srvIP: srv.IP()}
		cli.AttachUplink(netsim.NewLink(e, "cu", sw, netsim.Mbps(100), 0, nil))
		srv.AttachUplink(netsim.NewLink(e, "su", sw, netsim.Mbps(100), 0, nil))
		lossLink := netsim.NewLink(e, "ss", srv, netsim.Mbps(50), 2*simtime.Millisecond, simtime.NewRNG(uint64(seed)+1))
		lossLink.LossRate = loss
		sw.toSrv = lossLink
		sw.toCli = netsim.NewLink(e, "sc", cli, netsim.Mbps(100), 2*simtime.Millisecond, simtime.NewRNG(uint64(seed)+2))

		var recvd *Conn
		ln := srv.Listen(5201, Config{})
		ln.OnAccept = func(c *Conn) { recvd = c }
		done := false
		c := cli.Dial(srv.IP(), 5201, Config{MSS: 1448})
		c.OnComplete = func(*Conn) { done = true }
		c.StartTransfer(size)
		e.Run(600 * simtime.Second)

		if !done || recvd == nil {
			return false
		}
		// Exactly-once, in-order delivery.
		return recvd.Stats.BytesRecv == size && recvd.rcvNxt == 1+size+1 // data + FIN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySackScoreboard: merging arbitrary SACK blocks must keep
// the scoreboard sorted, disjoint and within bounds.
func TestPropertySackScoreboard(t *testing.T) {
	f := func(blocks [][2]uint16) bool {
		c := &Conn{sndUna: 100}
		for _, b := range blocks {
			lo, hi := uint64(b[0]), uint64(b[1])
			c.mergeSack(interval{lo, hi})
		}
		prev := uint64(0)
		for _, seg := range c.sacked {
			if seg.lo >= seg.hi {
				return false // empty or inverted
			}
			if seg.lo < c.sndUna {
				return false // below the cumulative ACK
			}
			if seg.lo < prev {
				return false // unsorted or overlapping
			}
			prev = seg.hi
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyOOOBuffer: the receiver's out-of-order list must remain
// sorted and disjoint under arbitrary insertions, and absorb cleanly.
func TestPropertyOOOBuffer(t *testing.T) {
	f := func(ranges [][2]uint16) bool {
		c := &Conn{}
		for _, r := range ranges {
			lo, hi := uint64(r[0]), uint64(r[1])
			if lo >= hi {
				continue
			}
			c.insertOOO(interval{lo, hi})
		}
		prev := uint64(0)
		first := true
		for _, seg := range c.oooSegs {
			if seg.lo >= seg.hi {
				return false
			}
			if !first && seg.lo <= prev {
				return false // must be strictly disjoint
			}
			prev = seg.hi
			first = false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySackedBytesConsistent: sackedBytes equals the sum of the
// clipped scoreboard ranges.
func TestPropertySackedBytesConsistent(t *testing.T) {
	f := func(una uint16, blocks [][2]uint16) bool {
		c := &Conn{sndUna: uint64(una)}
		for _, b := range blocks {
			c.mergeSack(interval{uint64(b[0]), uint64(b[1])})
		}
		var want uint64
		for _, seg := range c.sacked {
			lo := seg.lo
			if lo < c.sndUna {
				lo = c.sndUna
			}
			if seg.hi > lo {
				want += seg.hi - lo
			}
		}
		return c.sackedBytes() == int(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
