// Package tcp implements packet-level TCP endpoints for the simulator:
// NewReno and CUBIC congestion control, slow start, fast
// retransmit/recovery, retransmission timeouts with exponential backoff,
// delayed acknowledgments, receiver flow control, and application-rate
// pacing. The model is deliberately scoped to what the paper's
// experiments exercise — unidirectional bulk transfers whose dynamics
// (slow-start bursts, loss sawtooth, fairness convergence, rwnd and
// pacing caps) the P4 data plane observes.
package tcp

import (
	"fmt"
	"net/netip"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// WindowScale is the fixed TCP window-scale factor every simulated host
// uses (as if negotiated during the handshake). 2^14 with a 16-bit
// window field allows advertising up to 1 GiB, enough for the 125 MB
// BDP of the paper's 10 Gbps x 100 ms path.
const WindowScale = 14

// Host is a simulated end system (a DTN or a perfSONAR node). It owns
// one access link toward its first-hop switch and demultiplexes inbound
// packets to connections by 5-tuple.
type Host struct {
	name   string
	engine *simtime.Engine
	ip     netip.Addr

	uplink    *netsim.Link
	conns     map[packet.FiveTuple]*Conn
	listeners map[uint16]*Listener
	nextPort  uint16
	nextIPID  uint16

	// OnUDP, if set, handles inbound UDP packets (echo responders for
	// latency tests, burst sinks). Unset, UDP is silently consumed.
	OnUDP func(pkt *packet.Packet)

	// OnINT, if set, receives packets carrying an In-band Network
	// Telemetry stack before demultiplexing — the INT sink role. The
	// handler is expected to strip the stack (inband.Extract).
	OnINT func(pkt *packet.Packet)

	// ReceivedPackets counts everything delivered to this host.
	ReceivedPackets uint64
}

// NewHost creates a host with the given address.
func NewHost(e *simtime.Engine, name string, ip netip.Addr) *Host {
	return &Host{
		name:      name,
		engine:    e,
		ip:        ip,
		conns:     make(map[packet.FiveTuple]*Conn),
		listeners: make(map[uint16]*Listener),
		nextPort:  40000,
	}
}

// Name implements netsim.Node.
func (h *Host) Name() string { return h.name }

// IP returns the host address.
func (h *Host) IP() netip.Addr { return h.ip }

// Engine returns the event engine driving this host.
func (h *Host) Engine() *simtime.Engine { return h.engine }

// AttachUplink wires the host's outbound link (toward its first-hop
// switch). Must be called before any traffic is generated.
func (h *Host) AttachUplink(l *netsim.Link) { h.uplink = l }

// Uplink returns the host's outbound link.
func (h *Host) Uplink() *netsim.Link { return h.uplink }

// send transmits a packet out the access link.
func (h *Host) send(pkt *packet.Packet) {
	if h.uplink == nil {
		panic(fmt.Sprintf("tcp: host %s has no uplink", h.name))
	}
	pkt.SentAt = h.engine.Now()
	if pkt.IPID == 0 {
		h.nextIPID++
		if h.nextIPID == 0 {
			h.nextIPID = 1
		}
		pkt.IPID = h.nextIPID
	}
	h.uplink.Send(pkt)
}

// Receive implements netsim.Node: demultiplex to an existing connection
// or to a listener for SYN packets. The host is the packet's terminal
// owner: handlers run synchronously and do not retain it (inband.Extract
// detaches the INT stack it keeps), so the packet is recycled on return.
//
// p4:hotpath
func (h *Host) Receive(pkt *packet.Packet, from *netsim.Link) {
	h.ReceivedPackets++
	if len(pkt.INTStack) > 0 && h.OnINT != nil {
		h.OnINT(pkt)
	}
	if pkt.Proto != packet.ProtoTCP {
		if pkt.Proto == packet.ProtoUDP && h.OnUDP != nil {
			h.OnUDP(pkt)
		}
		pkt.Release()
		return
	}
	key := pkt.FiveTuple().Reverse() // connection keyed by our outbound tuple
	if c, ok := h.conns[key]; ok {
		c.handle(pkt)
		pkt.Release()
		return
	}
	if pkt.Flags&packet.FlagSYN != 0 && pkt.Flags&packet.FlagACK == 0 {
		if ln, ok := h.listeners[pkt.DstPort]; ok {
			c := ln.accept(pkt)
			h.conns[key] = c
			c.handle(pkt)
		}
	}
	pkt.Release()
}

// SendPacket transmits an arbitrary packet out the access link. Traffic
// generators use it for UDP probes and microburst injection.
func (h *Host) SendPacket(pkt *packet.Packet) { h.send(pkt) }

// allocPort hands out an ephemeral source port.
func (h *Host) allocPort() uint16 {
	p := h.nextPort
	h.nextPort++
	if h.nextPort == 0 {
		h.nextPort = 40000
	}
	return p
}

// Listener accepts inbound connections on a port, creating a receiving
// endpoint per new flow.
type Listener struct {
	host *Host
	port uint16
	cfg  Config

	// OnAccept is invoked with each newly accepted connection.
	OnAccept func(*Conn)
}

// Listen registers a listener with the given receive-side configuration
// (notably RcvBufBytes for receiver-limited scenarios).
func (h *Host) Listen(port uint16, cfg Config) *Listener {
	cfg = cfg.withDefaults()
	ln := &Listener{host: h, port: port, cfg: cfg}
	h.listeners[port] = ln
	return ln
}

func (ln *Listener) accept(syn *packet.Packet) *Conn {
	ft := syn.FiveTuple().Reverse() // our tuple: local -> remote
	c := newConn(ln.host, ft, ln.cfg, roleReceiver)
	if ln.OnAccept != nil {
		ln.OnAccept(c)
	}
	return c
}

// Dial opens a sending connection to dstIP:dstPort and begins the
// three-way handshake. The returned connection transmits data once
// StartTransfer (or StartTimed) is called; calls made before the
// handshake completes are queued automatically.
func (h *Host) Dial(dstIP netip.Addr, dstPort uint16, cfg Config) *Conn {
	cfg = cfg.withDefaults()
	ft := packet.FiveTuple{
		SrcIP:   h.ip,
		DstIP:   dstIP,
		SrcPort: h.allocPort(),
		DstPort: dstPort,
		Proto:   packet.ProtoTCP,
	}
	c := newConn(h, ft, cfg, roleSender)
	h.conns[ft] = c
	c.sendSYN()
	return c
}
