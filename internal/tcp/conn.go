package tcp

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/simtime"
)

// Config carries the per-connection knobs the experiments turn.
type Config struct {
	// CC selects the congestion-control algorithm: "cubic" (default,
	// the Linux default the testbed DTNs run) or "reno".
	CC string
	// MSS is the maximum segment payload in bytes. Defaults to 8960,
	// the payload of a 9000-byte jumbo frame (standard for Science DMZ
	// DTNs).
	MSS int
	// InitialCwnd is the initial congestion window in segments
	// (default 10, per RFC 6928).
	InitialCwnd int
	// RcvBufBytes caps the receiver's advertised window. The Fig. 12
	// DTN2 test shrinks this to make the receiver the bottleneck.
	// Defaults to 1 GiB (effectively unlimited).
	RcvBufBytes int
	// PacingBps, when positive, caps the sender's transmission rate.
	// The Fig. 12 DTN3 test sets 500 Mbps to make the sender the
	// bottleneck (an application-limited source).
	PacingBps float64
	// DelayedAckEvery makes the receiver acknowledge every Nth in-order
	// segment (default 2). Out-of-order arrivals are acked immediately.
	DelayedAckEvery int
	// DelayedAckTimeout bounds how long a lone segment may wait for a
	// companion before being acknowledged anyway (default 40 ms, the
	// Linux quick-ack range). Without it, the final odd segment of a
	// transfer would sit unacknowledged until the sender's RTO.
	DelayedAckTimeout simtime.Time
	// RTOMin floors the retransmission timeout (default 200 ms, the
	// Linux value).
	RTOMin simtime.Time
	// FlowTag labels the flow in reports and figures.
	FlowTag string
}

func (c Config) withDefaults() Config {
	if c.CC == "" {
		c.CC = "cubic"
	}
	if c.MSS <= 0 {
		c.MSS = 8960
	}
	if c.InitialCwnd <= 0 {
		c.InitialCwnd = 10
	}
	if c.RcvBufBytes <= 0 {
		c.RcvBufBytes = 1 << 30
	}
	if c.DelayedAckEvery <= 0 {
		c.DelayedAckEvery = 2
	}
	if c.DelayedAckTimeout <= 0 {
		c.DelayedAckTimeout = 40 * simtime.Millisecond
	}
	if c.RTOMin <= 0 {
		c.RTOMin = 200 * simtime.Millisecond
	}
	return c
}

type role int

const (
	roleSender role = iota
	roleReceiver
)

type connState int

const (
	stateSynSent connState = iota
	stateSynReceived
	stateEstablished
	stateClosed
)

// Stats aggregates what a connection did, feeding the terminated-flow
// reports of §3.3.2.
type Stats struct {
	StartTime       simtime.Time
	EndTime         simtime.Time
	SegmentsSent    uint64
	BytesSent       uint64 // payload bytes, including retransmissions
	Retransmissions uint64
	Timeouts        uint64
	FastRecoveries  uint64
	AcksReceived    uint64
	BytesAcked      uint64
	SegmentsRecv    uint64
	BytesRecv       uint64 // in-order payload bytes delivered
	OutOfOrderRecv  uint64
}

// Conn is one endpoint of a simulated TCP connection. A sender endpoint
// transmits application data; a receiver endpoint acknowledges it.
type Conn struct {
	host *Host
	ft   packet.FiveTuple // our outbound tuple (src = this host)
	cfg  Config
	role role

	state connState
	Stats Stats

	// ---- sender state ----
	sndUna  uint64 // lowest unacknowledged sequence
	sndNxt  uint64 // next sequence to transmit
	sndMax  uint64 // highest sequence ever transmitted
	rwnd    int    // peer's advertised window, bytes
	cc      congestionControl
	rto     rtoEstimator
	dupAcks int
	// fast-recovery (NewReno + SACK) state
	inRecovery bool
	recover    uint64
	// sacked holds the peer's selectively-acknowledged ranges; holeScan
	// tracks how far hole retransmission has progressed this recovery
	// round, and holeRound stamps when the scan last wrapped so lost
	// retransmissions are retried once per SRTT.
	sacked    []interval
	holeScan  uint64
	holeRound simtime.Time
	// roundBytes caps how much one rescan round may retransmit (one
	// congestion window), so an incomplete scoreboard cannot trigger
	// line-rate duplicate retransmission.
	roundBytes int
	// Proportional rate reduction (RFC 6937-style): during recovery,
	// transmissions are budgeted against delivered data so the sender
	// cannot blast at NIC rate into an already-overflowing bottleneck.
	prrDelivered  int
	prrOut        int
	recoverFlight int
	// cutSeq rate-limits multiplicative decreases to one per window of
	// data (RFC 5681's congestion-event rule): a single overload
	// episode spawns several back-to-back recoveries — losses keep
	// occurring in data sent during the previous recovery — but they
	// are one congestion event, and compounding the cut would collapse
	// the window far below what one event justifies. A new cut is
	// allowed only once everything outstanding at the previous cut has
	// been acknowledged.
	cutSeq uint64
	hasCut bool
	// rtoTimer is the retransmission timer: one resettable simtime.Timer
	// per connection, re-armed in place (no per-arm closure).
	rtoTimer *simtime.Timer
	// pacing: at most one wake-up is armed at any time — re-arming on
	// every gated trySend call would grow an ever-larger population of
	// stale wake events.
	nextSendAt simtime.Time
	paceTimer  *simtime.Timer
	// minRTT backs the HyStart-style delay-based slow-start exit.
	minRTT simtime.Time
	// application supply: data occupies sequence numbers [1, sndEnd).
	// sndEnd == 0 means the application has not started; maxUint64
	// means a timed transfer still producing data.
	sndEnd       uint64
	finSent      bool
	pendingStart func()

	// ---- receiver state ----
	rcvNxt      uint64
	oooSegs     []interval // out-of-order byte ranges, sorted, disjoint
	unackedSegs int
	// lastOOO is the most recently created/extended out-of-order range
	// (reported first, per RFC 2018); sackCursor rotates the remaining
	// report slots across the whole list so the sender's scoreboard
	// eventually learns every hole even when losses fragment the
	// sequence space into many ranges.
	lastOOO    interval
	sackCursor int
	// tsRecent is the latest timestamp received, echoed back in ACKs
	// (RFC 7323).
	tsRecent int64
	// delackTimer bounds how long a lone segment waits for a companion.
	delackTimer *simtime.Timer

	// OnComplete fires on the sender when every byte of a sized
	// transfer has been acknowledged (and on the receiver when FIN is
	// received).
	OnComplete func(*Conn)

	// SRTT returns smoothed RTT for inspection by tests and the
	// pScheduler baseline tools.
}

type interval struct{ lo, hi uint64 } // [lo, hi)

func newConn(h *Host, ft packet.FiveTuple, cfg Config, r role) *Conn {
	c := &Conn{
		host:  h,
		ft:    ft,
		cfg:   cfg,
		role:  r,
		rwnd:  1 << 30,
		state: stateSynSent,
	}
	c.rto.init(cfg.RTOMin)
	switch cfg.CC {
	case "reno":
		c.cc = newReno(cfg.MSS, cfg.InitialCwnd)
	case "cubic":
		c.cc = newCubic(cfg.MSS, cfg.InitialCwnd)
	case "bbr":
		c.cc = newBBR(cfg.MSS, cfg.InitialCwnd)
	default:
		panic(fmt.Sprintf("tcp: unknown congestion control %q", cfg.CC))
	}
	if r == roleReceiver {
		c.state = stateSynReceived
	}
	c.rtoTimer = simtime.NewTimer(h.engine, c.onTimeout)
	c.paceTimer = simtime.NewTimer(h.engine, c.trySend)
	c.delackTimer = simtime.NewTimer(h.engine, c.delackFire)
	c.Stats.StartTime = h.engine.Now()
	return c
}

// FiveTuple returns the connection's outbound flow identity.
func (c *Conn) FiveTuple() packet.FiveTuple { return c.ft }

// Config returns the connection's configuration.
func (c *Conn) Config() Config { return c.cfg }

// Cwnd returns the current congestion window in bytes.
func (c *Conn) Cwnd() float64 { return c.cc.window() }

// FlightSize returns the bytes in flight (sent, unacknowledged).
func (c *Conn) FlightSize() int { return int(c.sndNxt - c.sndUna) }

// SmoothedRTT returns the sender's smoothed RTT estimate.
func (c *Conn) SmoothedRTT() simtime.Time { return c.rto.srtt }

// Done reports whether the connection has closed.
func (c *Conn) Done() bool { return c.state == stateClosed }

// ---------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------

func (c *Conn) sendSYN() {
	syn := packet.NewTCP(c.ft, 0, 0, packet.FlagSYN, 0)
	syn.FlowTag = c.cfg.FlowTag
	syn.Window = c.advertisedWindow()
	c.sndUna, c.sndNxt, c.sndMax = 0, 1, 1
	c.host.send(syn)
	c.armRTO()
}

func (c *Conn) sendSYNACK() {
	sa := packet.NewTCP(c.ft, 0, c.rcvNxt, packet.FlagSYN|packet.FlagACK, 0)
	sa.FlowTag = c.cfg.FlowTag
	sa.Window = c.advertisedWindow()
	c.host.send(sa)
}

// StartTransfer begins sending exactly totalBytes of application data.
// Safe to call immediately after Dial; transmission starts once the
// handshake completes.
func (c *Conn) StartTransfer(totalBytes uint64) {
	start := func() {
		c.sndEnd = 1 + totalBytes
		c.trySend()
	}
	if c.state == stateEstablished {
		start()
	} else {
		c.pendingStart = start
	}
}

// StartTimed sends continuously until the given absolute virtual time,
// like a duration-limited iPerf3 run.
func (c *Conn) StartTimed(until simtime.Time) {
	start := func() {
		c.sndEnd = ^uint64(0)
		c.trySend()
		c.host.engine.At(until, func() {
			if c.state != stateEstablished || c.finSent {
				return
			}
			// Stop producing new data; everything already transmitted
			// at least once is still delivered reliably.
			c.sndEnd = c.sndMax
			c.maybeFinish()
		})
	}
	if c.state == stateEstablished {
		start()
	} else {
		c.pendingStart = start
	}
}

// ---------------------------------------------------------------------
// Packet handling
// ---------------------------------------------------------------------

func (c *Conn) handle(pkt *packet.Packet) {
	switch {
	case pkt.Flags&packet.FlagSYN != 0 && pkt.Flags&packet.FlagACK == 0:
		// Receiver side: SYN consumes one sequence number.
		c.rcvNxt = pkt.SeqExt + 1
		c.sendSYNACK()
		c.sndUna, c.sndNxt, c.sndMax = 0, 1, 1
	case pkt.Flags&packet.FlagSYN != 0 && pkt.Flags&packet.FlagACK != 0:
		// Sender side: handshake complete.
		if c.state == stateSynSent {
			c.state = stateEstablished
			c.sndUna = 1
			c.rcvNxt = pkt.SeqExt + 1
			c.rwnd = int(pkt.Window) << WindowScale
			c.disarmRTO()
			c.sendAck() // completes the 3-way handshake
			if c.pendingStart != nil {
				start := c.pendingStart
				c.pendingStart = nil
				start()
			}
		}
	case pkt.CarriesData():
		c.handleData(pkt)
	case pkt.Flags&packet.FlagFIN != 0:
		c.handleFIN(pkt)
	case pkt.Flags&packet.FlagACK != 0:
		if c.state == stateSynReceived {
			c.state = stateEstablished
		}
		if c.role == roleSender {
			c.handleAck(pkt)
		}
	}
}

func (c *Conn) handleFIN(pkt *packet.Packet) {
	if c.role != roleReceiver {
		return
	}
	if pkt.TSVal != 0 {
		c.tsRecent = pkt.TSVal
	}
	if pkt.SeqExt == c.rcvNxt {
		c.rcvNxt++
		c.sendAck()
		c.state = stateClosed
		c.Stats.EndTime = c.host.engine.Now()
		if c.OnComplete != nil {
			c.OnComplete(c)
		}
	} else {
		c.sendAck()
	}
}
