package tcp

import (
	"math"

	"repro/internal/simtime"
)

// bbr is a model-based congestion controller in the spirit of BBR
// (Cardwell et al.): instead of reacting to loss, it estimates the
// path's bottleneck bandwidth and minimum RTT and sizes the window to
// their product. The paper's related work (Gomez et al. [16]) studies
// BBRv2 coexistence with CUBIC; this implementation lets the testbed
// reproduce mixed-CCA experiments and feeds the same flight-size
// signature the §4.4 limitation classifier reads.
//
// The model is simplified but preserves BBR's defining behaviours:
//   - windowed max filter over delivery-rate samples (bottleneck bw);
//   - windowed min filter over RTT samples (propagation delay);
//   - cwnd = cwndGain x bw x minRTT;
//   - periodic ProbeBW gain cycling and ProbeRTT drains;
//   - loss does not reduce the window (beyond the cwnd model itself).
type bbr struct {
	mss  float64
	cwnd float64

	// Delivery-rate estimation.
	deliveredBytes uint64
	lastSampleAt   simtime.Time
	lastDelivered  uint64

	// Windowed filters. Pushes are throttled to a few per RTT: the
	// filters are pruned linearly on insert, so per-ACK insertion at
	// high ACK rates would cost O(window) per packet.
	bwFilter    []fsample // max filter, bytes/sec
	rttFilter   []fsample // min filter
	bwBps       float64
	minRTT      simtime.Time
	lastRTTPush simtime.Time

	// State machine: startup → drain → probe_bw (+probe_rtt visits).
	state      bbrState
	cycleIdx   int
	cycleStart simtime.Time
	rttStamp   simtime.Time // last time minRTT was refreshed
	probeUntil simtime.Time
}

type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

type fsample struct {
	at simtime.Time
	v  float64
}

// bbrPacingGains is the ProbeBW gain cycle.
var bbrPacingGains = []float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

const (
	bbrStartupGain = 2.885 // 2/ln(2)
	// bbrCwndGain bounds inflight to ~1.25 BDP. Real BBR paces at the
	// estimated bandwidth and uses a 2x window only as a ceiling; this
	// implementation is window-driven, so the window itself must sit
	// near the BDP or the standing queue starves loss-based flows
	// (the BBRv1 coexistence problem of Gomez et al. [16]).
	bbrCwndGain     = 1.25
	bbrBWWindow     = 10 * simtime.Second
	bbrRTTWindow    = 10 * simtime.Second
	bbrProbeRTTTime = 200 * simtime.Millisecond
)

func newBBR(mss, initialCwnd int) *bbr {
	return &bbr{
		mss:   float64(mss),
		cwnd:  float64(initialCwnd) * float64(mss),
		state: bbrStartup,
	}
}

func (b *bbr) window() float64 { return b.cwnd }

func (b *bbr) onAck(acked int, srtt simtime.Time, now simtime.Time) {
	b.deliveredBytes += uint64(acked)

	// Delivery-rate sample over ~one srtt.
	if b.lastSampleAt == 0 {
		b.lastSampleAt = now
		b.lastDelivered = b.deliveredBytes
	} else if elapsed := now - b.lastSampleAt; elapsed >= srtt && elapsed > 0 {
		rate := float64(b.deliveredBytes-b.lastDelivered) / elapsed.Seconds()
		b.lastSampleAt = now
		b.lastDelivered = b.deliveredBytes
		b.pushBW(rate, now)
	}
	if srtt > 0 && now-b.lastRTTPush >= srtt/4 {
		b.pushRTT(srtt, now)
		b.lastRTTPush = now
	}
	b.advance(now)
	b.updateCwnd(now)
}

func (b *bbr) pushBW(rate float64, now simtime.Time) {
	b.bwFilter = append(b.bwFilter, fsample{now, rate})
	cut := now - bbrBWWindow
	kept := b.bwFilter[:0]
	max := 0.0
	for _, s := range b.bwFilter {
		if s.at >= cut {
			kept = append(kept, s)
			if s.v > max {
				max = s.v
			}
		}
	}
	b.bwFilter = kept
	b.bwBps = max
}

func (b *bbr) pushRTT(rtt simtime.Time, now simtime.Time) {
	b.rttFilter = append(b.rttFilter, fsample{now, float64(rtt)})
	cut := now - bbrRTTWindow
	kept := b.rttFilter[:0]
	min := math.MaxFloat64
	for _, s := range b.rttFilter {
		if s.at >= cut {
			kept = append(kept, s)
			if s.v < min {
				min = s.v
			}
		}
	}
	b.rttFilter = kept
	if min < math.MaxFloat64 {
		newMin := simtime.Time(min)
		if b.minRTT == 0 || newMin < b.minRTT {
			b.rttStamp = now
		}
		b.minRTT = newMin
	}
}

// advance runs the BBR state machine.
func (b *bbr) advance(now simtime.Time) {
	switch b.state {
	case bbrStartup:
		// Leave startup once the bandwidth estimate plateaus: the max
		// filter holding for ~3 estimation windows approximates "no
		// 25% growth in 3 rounds".
		if len(b.bwFilter) >= 6 {
			recent := b.bwFilter[len(b.bwFilter)-1].v
			if recent < 1.1*b.bwBps {
				b.state = bbrDrain
			}
		}
	case bbrDrain:
		// Drain completes when the inflight implied by the window gain
		// has decayed; approximate with one state transition per call
		// once cwnd fits the BDP.
		if b.bwBps > 0 && b.minRTT > 0 && b.cwnd <= b.bdp() {
			b.state = bbrProbeBW
			b.cycleStart = now
		}
	case bbrProbeBW:
		if b.minRTT > 0 && now-b.cycleStart >= b.minRTT {
			b.cycleIdx = (b.cycleIdx + 1) % len(bbrPacingGains)
			b.cycleStart = now
		}
		// Visit ProbeRTT when the min-RTT estimate has gone stale.
		if b.rttStamp > 0 && now-b.rttStamp > bbrRTTWindow {
			b.state = bbrProbeRTT
			b.probeUntil = now + bbrProbeRTTTime
		}
	case bbrProbeRTT:
		if now >= b.probeUntil {
			b.rttStamp = now
			b.state = bbrProbeBW
			b.cycleStart = now
		}
	}
}

func (b *bbr) bdp() float64 {
	return b.bwBps * b.minRTT.Seconds()
}

func (b *bbr) updateCwnd(now simtime.Time) {
	switch b.state {
	case bbrStartup:
		b.cwnd *= 1 + (bbrStartupGain-1)*0.05 // exponential-ish growth per ACK batch
	case bbrDrain:
		target := b.bdp()
		if target > 0 && b.cwnd > target {
			b.cwnd = math.Max(b.cwnd*0.95, target)
		}
	case bbrProbeBW:
		if b.bwBps > 0 && b.minRTT > 0 {
			gain := bbrPacingGains[b.cycleIdx]
			b.cwnd = math.Max(bbrCwndGain*b.bdp()*gain/1.0, 4*b.mss)
		}
	case bbrProbeRTT:
		b.cwnd = math.Max(4*b.mss, b.bdp()*0.5)
	}
	if b.cwnd < 4*b.mss {
		b.cwnd = 4 * b.mss
	}
}

// onLoss applies the BBRv2-style mild loss response: a small bounded
// back-off instead of CUBIC's multiplicative cut, improving coexistence
// without surrendering the bandwidth model.
func (b *bbr) onLoss(flight int, now simtime.Time) {
	b.cwnd = math.Max(b.cwnd*0.9, 4*b.mss)
}

// onTimeout falls back conservatively, as real BBR does on RTO.
func (b *bbr) onTimeout(flight int) { b.cwnd = 4 * b.mss }

func (b *bbr) exitRecovery() {}

func (b *bbr) inSlowStart() bool { return b.state == bbrStartup }

func (b *bbr) exitSlowStart() {
	if b.state == bbrStartup {
		b.state = bbrDrain
	}
}
