package tcp

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// TestHyStartExitsBeforeOverflow: with a deep buffer, the delay-based
// slow-start exit must end the exponential phase before the queue
// overflows — no losses at all on a clean path.
func TestHyStartExitsBeforeOverflow(t *testing.T) {
	// Buffer = 2 BDP: plain slow start would overshoot and lose;
	// HyStart sees the RTT rise and exits first.
	n := newTestNet(t, netsim.Mbps(200), 25*simtime.Millisecond, 2*625_000)
	n.server.Listen(5201, Config{})
	c := n.client.Dial(n.server.IP(), 5201, Config{MSS: 1448})
	c.StartTimed(10 * simtime.Second)
	n.engine.Run(12 * simtime.Second)

	if c.Stats.Timeouts != 0 {
		t.Fatalf("timeouts: %d", c.Stats.Timeouts)
	}
	if n.sw.Dropped != 0 {
		t.Fatalf("HyStart failed: %d drops during startup", n.sw.Dropped)
	}
	if c.Stats.BytesAcked < 100_000_000 {
		t.Fatalf("moved only %d bytes in 10s at 200 Mbps", c.Stats.BytesAcked)
	}
}

// TestBareDuplicateAcksDoNotTriggerRecovery: duplicate ACKs without
// SACK blocks (responses to spurious retransmissions) must not count
// as loss signals.
func TestBareDuplicateAcksDoNotTriggerRecovery(t *testing.T) {
	n := newTestNet(t, netsim.Mbps(100), 5*simtime.Millisecond, 0)
	n.server.Listen(5201, Config{})
	c := n.client.Dial(n.server.IP(), 5201, Config{MSS: 1448})
	c.StartTimed(5 * simtime.Second)
	n.engine.Run(simtime.Second)

	// Inject three bare duplicate ACKs at the current sndUna.
	for i := 0; i < 3; i++ {
		dup := packet.NewTCP(c.ft.Reverse(), 1, c.sndUna, packet.FlagACK, 0)
		dup.Window = 0xffff
		c.handle(dup)
	}
	if c.Stats.FastRecoveries != 0 {
		t.Fatal("bare duplicates fabricated a congestion event")
	}

	// The same duplicates carrying SACK evidence must trigger.
	for i := 0; i < 3; i++ {
		dup := packet.NewTCP(c.ft.Reverse(), 1, c.sndUna, packet.FlagACK, 0)
		dup.Window = 0xffff
		dup.SackBlocks = []packet.SackBlock{{Lo: c.sndUna + 2000, Hi: c.sndUna + 4000}}
		c.handle(dup)
	}
	if c.Stats.FastRecoveries != 1 {
		t.Fatalf("SACK-bearing duplicates must trigger recovery, got %d", c.Stats.FastRecoveries)
	}
}

// TestOneCutPerWindow: recoveries chained within one window of data
// must apply a single multiplicative decrease.
func TestOneCutPerWindow(t *testing.T) {
	n := newTestNet(t, netsim.Mbps(100), 5*simtime.Millisecond, 0)
	n.server.Listen(5201, Config{})
	c := n.client.Dial(n.server.IP(), 5201, Config{MSS: 1448})
	c.StartTimed(5 * simtime.Second)
	n.engine.Run(simtime.Second)

	w0 := c.Cwnd()
	sendDups := func() {
		for i := 0; i < 3; i++ {
			dup := packet.NewTCP(c.ft.Reverse(), 1, c.sndUna, packet.FlagACK, 0)
			dup.Window = 0xffff
			dup.SackBlocks = []packet.SackBlock{{Lo: c.sndUna + 2000, Hi: c.sndUna + 4000}}
			c.handle(dup)
		}
	}
	sendDups()
	if !c.inRecovery {
		t.Fatal("not in recovery")
	}
	w1 := c.Cwnd()
	if w1 >= w0 {
		t.Fatalf("no cut applied: %.0f -> %.0f", w0, w1)
	}
	// Force an exit and an immediate re-entry within the same window.
	c.exitRecovery()
	c.dupAcks = 0
	sendDups()
	if got := c.Cwnd(); got < w1*0.99 {
		t.Fatalf("second cut within one window: %.0f -> %.0f", w1, got)
	}
}

// TestPRRBudgetLimitsRecoveryOutput: during recovery, output must be
// bounded by delivered data scaled to the post-loss window, not by the
// access-link rate.
func TestPRRBudgetLimitsRecoveryOutput(t *testing.T) {
	c := &Conn{cfg: Config{MSS: 1000}.withDefaults()}
	c.cfg.MSS = 1000
	c.cc = newReno(1000, 10)
	c.inRecovery = true
	c.recoverFlight = 100_000
	c.cc.(*reno).cwnd = 50_000 // post-cut window

	// Nothing delivered yet: only the one-MSS slack is allowed.
	if c.prrAllow(1000) && c.prrAllow(3000) {
		t.Fatal("budget must be tight before deliveries")
	}
	// 20 kB delivered -> ~10 kB of output allowed (50k/100k scaling).
	c.prrDelivered = 20_000
	allowed := 0
	for c.prrAllow(1000) {
		c.prrOut += 1000
		allowed += 1000
	}
	if allowed < 9000 || allowed > 12_000 {
		t.Fatalf("PRR allowed %d bytes for 20kB delivered, want ~10kB", allowed)
	}
}

// TestTTLDecrementAndExpiry: routed switches decrement TTL and answer
// expired packets with a notification to the source.
func TestTTLDecrementAndExpiry(t *testing.T) {
	n := newTestNet(t, netsim.Mbps(100), simtime.Millisecond, 0)
	// The tcp test net's swNode is not a switchsim.Switch; this test
	// only checks host-side plumbing of replies, so use the UDP path:
	// covered in switchsim and pscheduler tests instead. Here verify
	// packets sent by hosts carry TTL 64 by default.
	p := packet.NewUDP(packet.FiveTuple{
		SrcIP: n.client.IP(), DstIP: n.server.IP(),
		SrcPort: 9, DstPort: 9, Proto: packet.ProtoUDP,
	}, 10)
	if p.TTL != 64 {
		t.Fatalf("default TTL %d", p.TTL)
	}
}
