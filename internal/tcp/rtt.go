package tcp

import "repro/internal/simtime"

// rtoEstimator implements the RFC 6298 retransmission-timeout
// computation: SRTT/RTTVAR smoothing with a configurable floor and
// exponential backoff on consecutive timeouts.
type rtoEstimator struct {
	srtt     simtime.Time
	rttvar   simtime.Time
	rto      simtime.Time
	rtoMin   simtime.Time
	sampled  bool
	backoffN uint
}

const rtoMax = 60 * simtime.Second

func (r *rtoEstimator) init(rtoMin simtime.Time) {
	r.rtoMin = rtoMin
	r.rto = 1 * simtime.Second // RFC 6298 initial value
}

func (r *rtoEstimator) sample(rtt simtime.Time) {
	if rtt <= 0 {
		rtt = simtime.Nanosecond
	}
	if !r.sampled {
		r.srtt = rtt
		r.rttvar = rtt / 2
		r.sampled = true
	} else {
		diff := r.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		r.rttvar = (3*r.rttvar + diff) / 4
		r.srtt = (7*r.srtt + rtt) / 8
	}
	r.backoffN = 0
	r.rto = r.srtt + 4*r.rttvar
	if r.rto < r.rtoMin {
		r.rto = r.rtoMin
	}
	if r.rto > rtoMax {
		r.rto = rtoMax
	}
}

// timeout returns the current RTO including any backoff.
func (r *rtoEstimator) timeout() simtime.Time {
	t := r.rto << r.backoffN
	if t > rtoMax || t <= 0 {
		t = rtoMax
	}
	return t
}

// backoff doubles the timeout after an expiry (Karn's algorithm).
func (r *rtoEstimator) backoff() {
	if r.backoffN < 10 {
		r.backoffN++
	}
}
