package tcp

import (
	"net/netip"
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// testNet is a minimal dumbbell: client host -- switch -- server host,
// with a configurable bottleneck rate, one-way delay and switch buffer.
type testNet struct {
	engine *simtime.Engine
	client *Host
	server *Host
	sw     *swNode
}

// swNode is a tiny two-port store-and-forward device local to the tcp
// tests (the real topology uses switchsim; keeping this package free of
// that dependency avoids an import cycle in white-box tests).
type swNode struct {
	engine  *simtime.Engine
	toSrv   *netsim.Link
	toCli   *netsim.Link
	srvIP   netip.Addr
	bufSrv  int
	backlog int
	Dropped uint64
}

func (s *swNode) Name() string { return "sw" }

func (s *swNode) Receive(pkt *packet.Packet, from *netsim.Link) {
	if pkt.DstIP == s.srvIP {
		if s.bufSrv > 0 {
			if s.backlog+pkt.WireLen() > s.bufSrv {
				s.Dropped++
				return
			}
			s.backlog += pkt.WireLen()
		}
		s.toSrv.Send(pkt)
		return
	}
	s.toCli.Send(pkt)
}

func newTestNet(t testing.TB, bottleneckBps float64, oneWay simtime.Time, bufBytes int) *testNet {
	e := simtime.NewEngine()
	cli := NewHost(e, "client", packet.MustAddr("10.0.0.1"))
	srv := NewHost(e, "server", packet.MustAddr("10.0.1.1"))
	sw := &swNode{engine: e, srvIP: srv.IP(), bufSrv: bufBytes}

	// Access links are fast; the switch->server link is the bottleneck.
	cli.AttachUplink(netsim.NewLink(e, "cli-up", sw, bottleneckBps*10, 0, nil))
	srv.AttachUplink(netsim.NewLink(e, "srv-up", sw, bottleneckBps*10, 0, nil))
	sw.toSrv = netsim.NewLink(e, "sw-srv", srv, bottleneckBps, oneWay, nil)
	sw.toCli = netsim.NewLink(e, "sw-cli", cli, bottleneckBps*10, oneWay, nil)
	if bufBytes > 0 {
		sw.toSrv.OnDeparture = func(p *packet.Packet, _ simtime.Time) { sw.backlog -= p.WireLen() }
	}
	return &testNet{engine: e, client: cli, server: srv, sw: sw}
}

func TestHandshakeAndSmallTransfer(t *testing.T) {
	n := newTestNet(t, netsim.Mbps(100), 5*simtime.Millisecond, 0)
	n.server.Listen(5201, Config{})
	done := false
	var recvd *Conn
	n.server.listeners[5201].OnAccept = func(c *Conn) { recvd = c }
	c := n.client.Dial(n.server.IP(), 5201, Config{MSS: 1448, FlowTag: "t"})
	c.OnComplete = func(*Conn) { done = true }
	c.StartTransfer(100_000)
	n.engine.Run(10 * simtime.Second)

	if !done {
		t.Fatalf("transfer did not complete; una=%d nxt=%d state=%d", c.sndUna, c.sndNxt, c.state)
	}
	if recvd == nil {
		t.Fatal("server never accepted")
	}
	if recvd.Stats.BytesRecv != 100_000 {
		t.Fatalf("server received %d bytes, want 100000", recvd.Stats.BytesRecv)
	}
	if c.Stats.Retransmissions != 0 {
		t.Fatalf("unexpected retransmissions on a clean path: %d", c.Stats.Retransmissions)
	}
}

func TestThroughputApproachesBottleneck(t *testing.T) {
	// 100 Mbps bottleneck, 10 ms RTT, ample buffer: a 25 MB transfer
	// should take ~2.1 s (plus slow start), i.e. goodput > 70 Mbps.
	n := newTestNet(t, netsim.Mbps(100), 5*simtime.Millisecond, 0)
	n.server.Listen(5201, Config{})
	var end simtime.Time
	c := n.client.Dial(n.server.IP(), 5201, Config{MSS: 1448})
	c.OnComplete = func(*Conn) { end = n.engine.Now() }
	const total = 25_000_000
	c.StartTransfer(total)
	n.engine.Run(60 * simtime.Second)
	if end == 0 {
		t.Fatal("transfer did not complete")
	}
	goodput := float64(total*8) / end.Seconds()
	if goodput < 70e6 || goodput > 100e6 {
		t.Fatalf("goodput %.1f Mbps, want 70-100", goodput/1e6)
	}
}

func TestPacingLimitsRate(t *testing.T) {
	// Sender paced to 20 Mbps on a 100 Mbps path: the Fig. 12 DTN3
	// scenario scaled down. Goodput must sit at the pacing rate.
	n := newTestNet(t, netsim.Mbps(100), 5*simtime.Millisecond, 0)
	n.server.Listen(5201, Config{})
	var end simtime.Time
	c := n.client.Dial(n.server.IP(), 5201, Config{MSS: 1448, PacingBps: netsim.Mbps(20)})
	c.OnComplete = func(*Conn) { end = n.engine.Now() }
	const total = 5_000_000 // 2 s at 20 Mbps
	c.StartTransfer(total)
	n.engine.Run(60 * simtime.Second)
	if end == 0 {
		t.Fatal("transfer did not complete")
	}
	goodput := float64(total*8) / end.Seconds()
	if goodput < 15e6 || goodput > 20.5e6 {
		t.Fatalf("paced goodput %.1f Mbps, want ~20", goodput/1e6)
	}
}

func TestReceiverWindowLimitsRate(t *testing.T) {
	// Receiver buffer 64 KB at 20 ms RTT caps throughput near
	// rwnd/RTT = 26 Mbps on a 100 Mbps path: the Fig. 12 DTN2 scenario.
	n := newTestNet(t, netsim.Mbps(100), 10*simtime.Millisecond, 0)
	n.server.Listen(5201, Config{RcvBufBytes: 64 << 10})
	var end simtime.Time
	c := n.client.Dial(n.server.IP(), 5201, Config{MSS: 1448})
	c.OnComplete = func(*Conn) { end = n.engine.Now() }
	const total = 6_000_000
	c.StartTransfer(total)
	n.engine.Run(60 * simtime.Second)
	if end == 0 {
		t.Fatal("transfer did not complete")
	}
	goodput := float64(total*8) / end.Seconds()
	expected := float64(64<<10) * 8 / 0.020 // rwnd/RTT
	if goodput > expected*1.15 {
		t.Fatalf("goodput %.1f Mbps exceeds rwnd cap %.1f Mbps", goodput/1e6, expected/1e6)
	}
	if goodput < expected*0.5 {
		t.Fatalf("goodput %.1f Mbps far below rwnd cap %.1f Mbps", goodput/1e6, expected/1e6)
	}
	// Flight size must be pinned at the advertised window.
	if c.rwnd > 65<<10 {
		t.Fatalf("advertised window not honoured: %d", c.rwnd)
	}
}

func TestLossRecoveryCompletesTransfer(t *testing.T) {
	// 1% random loss: the transfer must still complete, with
	// retransmissions recorded and loss recovery engaged.
	n := newTestNet(t, netsim.Mbps(100), 5*simtime.Millisecond, 0)
	n.sw.toSrv.LossRate = 0.01
	n.server.Listen(5201, Config{})
	var end simtime.Time
	var recvd *Conn
	n.server.listeners[5201].OnAccept = func(c *Conn) { recvd = c }
	c := n.client.Dial(n.server.IP(), 5201, Config{MSS: 1448})
	c.OnComplete = func(*Conn) { end = n.engine.Now() }
	const total = 3_000_000
	c.StartTransfer(total)
	n.engine.Run(120 * simtime.Second)
	if end == 0 {
		t.Fatalf("transfer did not complete: una=%d nxt=%d max=%d rec=%v", c.sndUna, c.sndNxt, c.sndMax, c.inRecovery)
	}
	if recvd.Stats.BytesRecv != total {
		t.Fatalf("received %d bytes, want %d", recvd.Stats.BytesRecv, total)
	}
	if c.Stats.Retransmissions == 0 {
		t.Fatal("expected retransmissions under 1% loss")
	}
	if c.Stats.FastRecoveries == 0 && c.Stats.Timeouts == 0 {
		t.Fatal("no recovery episodes recorded")
	}
}

func TestSmallBufferCausesDropsAndRecovery(t *testing.T) {
	// Tiny switch buffer: slow-start overshoot must overflow it, and
	// the sender must recover and finish.
	n := newTestNet(t, netsim.Mbps(100), 10*simtime.Millisecond, 30_000)
	n.server.Listen(5201, Config{})
	var end simtime.Time
	c := n.client.Dial(n.server.IP(), 5201, Config{MSS: 1448})
	c.OnComplete = func(*Conn) { end = n.engine.Now() }
	const total = 10_000_000
	c.StartTransfer(total)
	n.engine.Run(120 * simtime.Second)
	if end == 0 {
		t.Fatal("transfer did not complete")
	}
	if n.sw.Dropped == 0 {
		t.Fatal("expected buffer overflow drops")
	}
	if c.Stats.Retransmissions == 0 {
		t.Fatal("expected retransmissions after drops")
	}
}

func TestTimedTransferStopsAtDeadline(t *testing.T) {
	n := newTestNet(t, netsim.Mbps(100), 5*simtime.Millisecond, 0)
	n.server.Listen(5201, Config{})
	var end simtime.Time
	c := n.client.Dial(n.server.IP(), 5201, Config{MSS: 1448})
	c.OnComplete = func(*Conn) { end = n.engine.Now() }
	c.StartTimed(2 * simtime.Second)
	n.engine.Run(30 * simtime.Second)
	if end == 0 {
		t.Fatal("timed transfer did not complete")
	}
	if end < 2*simtime.Second || end > 4*simtime.Second {
		t.Fatalf("completion at %v, want shortly after 2s", end)
	}
	if c.Stats.BytesAcked < 10_000_000 {
		t.Fatalf("timed transfer moved only %d bytes", c.Stats.BytesAcked)
	}
}

func TestRenoCongestionControl(t *testing.T) {
	n := newTestNet(t, netsim.Mbps(100), 5*simtime.Millisecond, 0)
	n.server.Listen(5201, Config{})
	var end simtime.Time
	c := n.client.Dial(n.server.IP(), 5201, Config{MSS: 1448, CC: "reno"})
	c.OnComplete = func(*Conn) { end = n.engine.Now() }
	c.StartTransfer(10_000_000)
	n.engine.Run(60 * simtime.Second)
	if end == 0 {
		t.Fatal("reno transfer did not complete")
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	// Two concurrent timed flows must split the bottleneck roughly
	// fairly (same RTT, same CC) — the Fig. 9 convergence behaviour.
	n := newTestNet(t, netsim.Mbps(100), 5*simtime.Millisecond, 125_000)
	n.server.Listen(5201, Config{})
	c1 := n.client.Dial(n.server.IP(), 5201, Config{MSS: 1448, FlowTag: "f1"})
	c2 := n.client.Dial(n.server.IP(), 5201, Config{MSS: 1448, FlowTag: "f2"})
	c1.StartTimed(20 * simtime.Second)
	c2.StartTimed(20 * simtime.Second)
	n.engine.Run(40 * simtime.Second)

	b1 := float64(c1.Stats.BytesAcked)
	b2 := float64(c2.Stats.BytesAcked)
	if b1 == 0 || b2 == 0 {
		t.Fatal("a flow moved no data")
	}
	ratio := b1 / b2
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("flows badly unfair: %f vs %f bytes (ratio %.2f)", b1, b2, ratio)
	}
	sum := (b1 + b2) * 8 / 20
	if sum < 70e6 {
		t.Fatalf("aggregate %.1f Mbps underutilises the 100 Mbps link", sum/1e6)
	}
}

func TestRTOEstimator(t *testing.T) {
	var r rtoEstimator
	r.init(200 * simtime.Millisecond)
	if r.timeout() != simtime.Second {
		t.Fatalf("initial RTO %v, want 1s", r.timeout())
	}
	r.sample(100 * simtime.Millisecond)
	// First sample: srtt=100ms, rttvar=50ms, rto=300ms.
	if r.timeout() != 300*simtime.Millisecond {
		t.Fatalf("RTO after first sample %v, want 300ms", r.timeout())
	}
	r.backoff()
	if r.timeout() != 600*simtime.Millisecond {
		t.Fatalf("backoff RTO %v, want 600ms", r.timeout())
	}
	r.sample(100 * simtime.Millisecond)
	if r.timeout() >= 600*simtime.Millisecond {
		t.Fatal("sample must reset backoff")
	}
}

func TestRTOFloor(t *testing.T) {
	var r rtoEstimator
	r.init(200 * simtime.Millisecond)
	r.sample(1 * simtime.Millisecond)
	if r.timeout() != 200*simtime.Millisecond {
		t.Fatalf("RTO %v must respect the 200ms floor", r.timeout())
	}
}

func TestSRTTTracksPathRTT(t *testing.T) {
	n := newTestNet(t, netsim.Mbps(100), 25*simtime.Millisecond, 0)
	n.server.Listen(5201, Config{})
	c := n.client.Dial(n.server.IP(), 5201, Config{MSS: 1448, PacingBps: netsim.Mbps(5)})
	c.StartTransfer(1_000_000)
	n.engine.Run(30 * simtime.Second)
	// Path RTT is 50 ms (25 ms each way on the bottleneck hop); with
	// light pacing there is no queueing, so SRTT must sit near 50 ms.
	srtt := c.SmoothedRTT()
	if srtt < 45*simtime.Millisecond || srtt > 70*simtime.Millisecond {
		t.Fatalf("SRTT %v, want ~50ms", srtt)
	}
}

func TestOOOBufferMerges(t *testing.T) {
	c := &Conn{}
	c.insertOOO(interval{10, 20})
	c.insertOOO(interval{30, 40})
	c.insertOOO(interval{15, 35}) // bridges both
	if len(c.oooSegs) != 1 || c.oooSegs[0] != (interval{10, 40}) {
		t.Fatalf("merge failed: %v", c.oooSegs)
	}
	c.insertOOO(interval{50, 60})
	if len(c.oooSegs) != 2 {
		t.Fatalf("disjoint insert failed: %v", c.oooSegs)
	}
}

func TestCubicReducesOnLoss(t *testing.T) {
	cc := newCubic(1448, 10)
	w0 := cc.window()
	cc.onLoss(int(w0), 0)
	// The base window must shrink by beta; window() additionally
	// carries the transient 3-MSS recovery inflation (RFC 5681).
	got := cc.cwnd
	want := w0 * cubicBeta
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("cubic reduction to %.0f, want ~%.0f", got, want)
	}
}

func TestCubicGrowsTowardWmax(t *testing.T) {
	cc := newCubic(1448, 10)
	cc.ssthresh = 0 // force congestion avoidance
	cc.wMax = 100   // segments
	now := simtime.Time(0)
	for i := 0; i < 5000; i++ {
		now += simtime.Millisecond
		cc.onAck(1448, 20*simtime.Millisecond, now)
	}
	segs := cc.cwnd / 1448
	if segs < 90 {
		t.Fatalf("cubic failed to regrow toward wMax: %.1f segments", segs)
	}
}

func TestRenoSlowStartDoubles(t *testing.T) {
	cc := newReno(1000, 10)
	w0 := cc.window()
	// One RTT worth of ACKs in slow start doubles the window.
	for acked := 0; acked < int(w0); acked += 1000 {
		cc.onAck(1000, 0, 0)
	}
	if cc.window() < 2*w0*0.99 {
		t.Fatalf("slow start did not double: %v -> %v", w0, cc.window())
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	cc := newReno(1000, 10)
	cc.ssthresh = cc.cwnd // enter CA immediately
	w0 := cc.window()
	for acked := 0.0; acked < w0; acked += 1000 {
		cc.onAck(1000, 0, 0)
	}
	growth := cc.window() - w0
	if growth < 900 || growth > 1100 {
		t.Fatalf("CA growth per RTT %.0f, want ~1 MSS", growth)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.CC != "cubic" || cfg.MSS != 8960 || cfg.InitialCwnd != 10 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
	if cfg.DelayedAckEvery != 2 || cfg.RTOMin != 200*simtime.Millisecond {
		t.Fatalf("bad defaults: %+v", cfg)
	}
}

func TestAdvertisedWindowScaling(t *testing.T) {
	c := &Conn{cfg: Config{RcvBufBytes: 2 << 20}.withDefaults()}
	w := int(c.advertisedWindow()) << WindowScale
	if w < (2<<20)-(1<<WindowScale) || w > 2<<20 {
		t.Fatalf("advertised %d for 2MiB buffer", w)
	}
}
