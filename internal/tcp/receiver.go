package tcp

import (
	"repro/internal/packet"
)

// advertisedWindow converts the free receive-buffer space into the
// scaled 16-bit window field. The simulated application consumes data
// instantly, so the free space is the whole configured buffer.
func (c *Conn) advertisedWindow() uint16 {
	w := c.cfg.RcvBufBytes >> WindowScale
	if w > 0xffff {
		w = 0xffff
	}
	if w == 0 {
		w = 1
	}
	return uint16(w)
}

// handleData processes an inbound data segment on the receiver side:
// advance rcvNxt for in-order data, buffer out-of-order ranges, and
// generate (possibly delayed) acknowledgments. Out-of-order arrivals
// are acknowledged immediately, producing the duplicate ACKs the sender
// and the P4 data plane both rely on to detect loss.
func (c *Conn) handleData(pkt *packet.Packet) {
	if c.role != roleReceiver {
		return
	}
	c.Stats.SegmentsRecv++
	if pkt.TSVal != 0 {
		c.tsRecent = pkt.TSVal
	}
	lo := pkt.SeqExt
	hi := lo + uint64(pkt.PayloadLen)

	switch {
	case hi <= c.rcvNxt:
		// Entirely duplicate data (sender retransmitted something we
		// already have): re-acknowledge immediately.
		c.sendAck()
	case lo <= c.rcvNxt:
		// In-order (possibly overlapping the left edge).
		delivered := hi - c.rcvNxt
		c.rcvNxt = hi
		c.Stats.BytesRecv += delivered
		c.absorbOOO()
		c.unackedSegs++
		if c.unackedSegs >= c.cfg.DelayedAckEvery {
			c.sendAck()
		} else if !c.delackTimer.Armed() {
			// Delayed-ACK timer: a lone segment must not wait for a
			// companion longer than the timeout, or the sender's RTO
			// fires spuriously on the last odd segment of a transfer.
			// When the timer fires it acknowledges whatever is pending
			// — even segments that arrived after it was armed.
			c.delackTimer.Reset(c.cfg.DelayedAckTimeout)
		}
	default:
		// Out of order: buffer and send an immediate duplicate ACK.
		c.Stats.OutOfOrderRecv++
		c.insertOOO(interval{lo, hi})
		c.lastOOO = interval{lo, hi}
		c.sendAck()
	}
}

// absorbOOO merges buffered out-of-order ranges that rcvNxt has reached.
func (c *Conn) absorbOOO() {
	for len(c.oooSegs) > 0 && c.oooSegs[0].lo <= c.rcvNxt {
		seg := c.oooSegs[0]
		if seg.hi > c.rcvNxt {
			c.Stats.BytesRecv += seg.hi - c.rcvNxt
			c.rcvNxt = seg.hi
		}
		c.oooSegs = c.oooSegs[1:]
	}
}

// insertOOO adds a byte range to the sorted, disjoint out-of-order list.
func (c *Conn) insertOOO(iv interval) {
	// Find insertion point.
	i := 0
	for i < len(c.oooSegs) && c.oooSegs[i].lo < iv.lo {
		i++
	}
	c.oooSegs = append(c.oooSegs, interval{})
	copy(c.oooSegs[i+1:], c.oooSegs[i:])
	c.oooSegs[i] = iv
	// Merge overlaps around i.
	merged := c.oooSegs[:0]
	for _, seg := range c.oooSegs {
		n := len(merged)
		if n > 0 && seg.lo <= merged[n-1].hi {
			if seg.hi > merged[n-1].hi {
				merged[n-1].hi = seg.hi
			}
		} else {
			merged = append(merged, seg)
		}
	}
	c.oooSegs = merged
}

// delackFire is the delayed-ACK timer callback: acknowledge whatever is
// pending, even segments that arrived after the timer was armed.
func (c *Conn) delackFire() {
	if c.unackedSegs > 0 {
		c.sendAck()
	}
}

// sendAck emits a pure acknowledgment carrying the advertised window
// and up to three SACK blocks describing buffered out-of-order data
// (RFC 2018) — what lets the sender repair large burst losses in a few
// round trips instead of one hole per RTT. ACKs come from the packet
// arena; the sending host releases them after processing.
//
// p4:hotpath
func (c *Conn) sendAck() {
	ack := packet.GetTCP(c.ft, c.sndNxt, c.rcvNxt, packet.FlagACK, 0)
	ack.FlowTag = c.cfg.FlowTag
	ack.Window = c.advertisedWindow()
	ack.TSEcr = c.tsRecent // echo the most recent timestamp (RFC 7323)
	// RFC 2018: report the most recently changed range first, then
	// rotate the remaining slots across the list so that, over a train
	// of duplicate ACKs, the sender learns every buffered range.
	if n := len(c.oooSegs); n > 0 {
		if c.lastOOO.hi > c.lastOOO.lo && c.lastOOO.hi > c.rcvNxt {
			ack.SackBlocks = append(ack.SackBlocks, packet.SackBlock{Lo: c.lastOOO.lo, Hi: c.lastOOO.hi})
		}
		for i := 0; i < n && len(ack.SackBlocks) < 3; i++ {
			seg := c.oooSegs[c.sackCursor%n]
			c.sackCursor++
			ack.SackBlocks = append(ack.SackBlocks, packet.SackBlock{Lo: seg.lo, Hi: seg.hi})
		}
	}
	c.unackedSegs = 0
	c.host.send(ack)
}
