package tcp

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

func TestBBRReachesLineRate(t *testing.T) {
	n := newTestNet(t, netsim.Mbps(100), 10*simtime.Millisecond, 0)
	n.server.Listen(5201, Config{})
	c := n.client.Dial(n.server.IP(), 5201, Config{MSS: 1448, CC: "bbr"})
	c.StartTimed(10 * simtime.Second)
	n.engine.Run(12 * simtime.Second)

	goodput := float64(c.Stats.BytesAcked) * 8 / 10
	if goodput < 70e6 {
		t.Fatalf("BBR goodput %.1f Mbps on a 100 Mbps path", goodput/1e6)
	}
}

func TestBBRKeepsQueueShort(t *testing.T) {
	// BBR's defining property vs CUBIC: it sizes the window to the BDP
	// instead of filling the buffer, so the standing queue stays small.
	run := func(cc string) int {
		n := newTestNet(t, netsim.Mbps(100), 10*simtime.Millisecond, 500_000)
		n.server.Listen(5201, Config{})
		c := n.client.Dial(n.server.IP(), 5201, Config{MSS: 1448, CC: cc})
		c.StartTimed(10 * simtime.Second)
		n.engine.Run(10 * simtime.Second)
		return n.sw.backlog
	}
	// Compare late-run backlog: sample at the end of each run.
	bbrQ := run("bbr")
	cubicQ := run("cubic")
	if bbrQ >= cubicQ && cubicQ > 50_000 {
		t.Fatalf("BBR backlog %d not below CUBIC backlog %d", bbrQ, cubicQ)
	}
}

func TestBBRSurvivesRandomLoss(t *testing.T) {
	// Loss-tolerance: at 1% random loss CUBIC collapses its window
	// (cut per event), while BBR holds near the bottleneck estimate.
	run := func(cc string) float64 {
		n := newTestNet(t, netsim.Mbps(100), 10*simtime.Millisecond, 0)
		n.sw.toSrv.LossRate = 0.01
		n.server.Listen(5201, Config{})
		c := n.client.Dial(n.server.IP(), 5201, Config{MSS: 1448, CC: cc})
		c.StartTimed(10 * simtime.Second)
		n.engine.Run(15 * simtime.Second)
		return float64(c.Stats.BytesAcked) * 8 / 10
	}
	bbr := run("bbr")
	cubic := run("cubic")
	if bbr < 1.5*cubic {
		t.Fatalf("BBR (%.1f Mbps) should far outperform CUBIC (%.1f Mbps) under 1%% loss",
			bbr/1e6, cubic/1e6)
	}
}

func TestBBRTransferIntegrity(t *testing.T) {
	n := newTestNet(t, netsim.Mbps(100), 10*simtime.Millisecond, 100_000)
	n.server.Listen(5201, Config{})
	var recvd *Conn
	n.server.listeners[5201].OnAccept = func(c *Conn) { recvd = c }
	done := false
	c := n.client.Dial(n.server.IP(), 5201, Config{MSS: 1448, CC: "bbr"})
	c.OnComplete = func(*Conn) { done = true }
	const total = 5_000_000
	c.StartTransfer(total)
	n.engine.Run(120 * simtime.Second)
	if !done {
		t.Fatal("BBR transfer did not complete")
	}
	if recvd.Stats.BytesRecv != total {
		t.Fatalf("received %d, want %d", recvd.Stats.BytesRecv, total)
	}
}
