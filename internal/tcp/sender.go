package tcp

import (
	"repro/internal/packet"
	"repro/internal/simtime"
)

// effectiveWindow is min(cwnd, peer rwnd) in bytes.
func (c *Conn) effectiveWindow() int {
	w := int(c.cc.window())
	if c.rwnd < w {
		w = c.rwnd
	}
	return w
}

// available reports how many application bytes remain undispatched at
// sndNxt. After a timeout rolls sndNxt back, previously sent data counts
// as available again (go-back-N retransmission).
func (c *Conn) available() uint64 {
	if c.sndEnd == 0 || c.sndNxt >= c.sndEnd {
		return 0
	}
	return c.sndEnd - c.sndNxt
}

// trySend transmits as many new segments as the congestion window,
// receiver window, pacing rate and application supply allow.
func (c *Conn) trySend() {
	if c.state != stateEstablished || c.role != roleSender {
		return
	}
	now := c.host.engine.Now()
	for {
		avail := c.available()
		if avail == 0 {
			c.maybeFinish()
			return
		}
		inFlight := int(c.sndNxt - c.sndUna)
		if c.inRecovery {
			// RFC 6675-style pipe accounting: selectively-acknowledged
			// bytes are no longer in the network, so they do not count
			// against the window. Without this (or with RFC 5681 window
			// inflation) a long recovery would keep pumping new data
			// into an already-overflowing bottleneck queue.
			inFlight -= c.sackedBytes()
		}
		win := c.effectiveWindow()
		if inFlight+c.cfg.MSS > win {
			return // window closed; ACKs will reopen it
		}
		if c.cfg.PacingBps > 0 && c.nextSendAt > now {
			// Pacing gate closed: keep exactly one wake-up armed.
			if !c.paceTimer.Armed() {
				c.paceTimer.Reset(c.nextSendAt - now)
			}
			return
		}
		size := c.cfg.MSS
		if uint64(size) > avail {
			size = int(avail)
		}
		if c.inRecovery {
			if !c.prrAllow(size) {
				return
			}
			c.prrOut += size
		}
		c.sendSegment(c.sndNxt, size, false)
		c.sndNxt += uint64(size)
		if c.sndNxt > c.sndMax {
			c.sndMax = c.sndNxt
		}
		if c.cfg.PacingBps > 0 {
			wire := simtime.Time(float64((size+headerOverhead)*8) / c.cfg.PacingBps * 1e9)
			base := c.nextSendAt
			if base < now {
				base = now
			}
			c.nextSendAt = base + wire
		}
	}
}

// headerOverhead approximates per-segment framing bytes for pacing-rate
// computation (Ethernet + IPv4 + TCP headers).
const headerOverhead = packet.EthernetHeaderLen + packet.IPv4HeaderLen + packet.TCPHeaderLen

// sendSegment emits one data segment. Retransmissions are flagged so
// that RTT sampling obeys Karn's algorithm. Segments come from the
// packet arena: the receiving host releases them after demux.
//
// p4:hotpath
func (c *Conn) sendSegment(seq uint64, size int, isRetransmit bool) {
	pkt := packet.GetTCP(c.ft, seq, c.rcvNxt, packet.FlagACK|packet.FlagPSH, size)
	pkt.FlowTag = c.cfg.FlowTag
	pkt.Window = c.advertisedWindow()
	if !isRetransmit {
		// TCP timestamps (RFC 7323): retransmissions carry no fresh
		// stamp so their echoes cannot produce bogus RTT samples.
		pkt.TSVal = int64(c.host.engine.Now())
	}
	c.host.send(pkt)

	c.Stats.SegmentsSent++
	c.Stats.BytesSent += uint64(size)
	if isRetransmit {
		c.Stats.Retransmissions++
	}
	// RFC 6298 (5.1): start the timer only when it is not already
	// running. Restarting it on every transmission would let a steady
	// stream of sends push the expiry forever into the future, so a
	// lost retransmission would never time out.
	c.ensureRTO()
}

// maybeFinish sends a FIN once all data is dispatched and acknowledged.
func (c *Conn) maybeFinish() {
	if c.role != roleSender || c.finSent || c.state != stateEstablished {
		return
	}
	if c.available() != 0 || c.sndUna != c.sndNxt {
		return
	}
	fin := packet.NewTCP(c.ft, c.sndNxt, c.rcvNxt, packet.FlagFIN|packet.FlagACK, 0)
	fin.FlowTag = c.cfg.FlowTag
	fin.Window = c.advertisedWindow()
	fin.TSVal = int64(c.host.engine.Now())
	c.finSent = true
	c.sndNxt++
	c.sndMax = c.sndNxt
	c.host.send(fin)
	c.armRTO()
}

// ---------------------------------------------------------------------
// ACK processing (NewReno loss recovery, RFC 6582)
// ---------------------------------------------------------------------

func (c *Conn) handleAck(pkt *packet.Packet) {
	ack := pkt.AckExt
	c.rwnd = int(pkt.Window) << WindowScale
	c.Stats.AcksReceived++
	now := c.host.engine.Now()
	sackDelta := 0
	if len(pkt.SackBlocks) > 0 {
		before := 0
		if c.inRecovery {
			before = c.sackedBytes()
		}
		for _, b := range pkt.SackBlocks {
			c.mergeSack(interval{b.Lo, b.Hi})
		}
		if c.inRecovery {
			if d := c.sackedBytes() - before; d > 0 {
				sackDelta = d
			}
		}
	}

	if ack > c.sndUna {
		acked := ack - c.sndUna
		payloadAcked := acked
		if c.finSent && ack == c.sndNxt {
			payloadAcked-- // the FIN consumed one sequence number
		}
		c.Stats.BytesAcked += payloadAcked
		c.sndUna = ack
		c.dupAcks = 0
		for len(c.sacked) > 0 && c.sacked[0].hi <= c.sndUna {
			c.sacked = c.sacked[1:]
		}

		// RTT sample from the timestamp echo (RFC 7323): one sample per
		// ACK. Retransmissions carry no timestamp (Karn), and samples
		// during loss recovery are suppressed — a partial ACK can echo
		// a stamp unrelated to the path delay.
		if pkt.TSEcr != 0 && !c.inRecovery {
			rtt := now - simtime.Time(pkt.TSEcr)
			if rtt > 0 {
				c.rto.sample(rtt)
				if c.minRTT == 0 || rtt < c.minRTT {
					c.minRTT = rtt
				}
				// HyStart-style delay-based exit: a clear RTT rise
				// during slow start means the bottleneck queue is
				// already building — stop doubling before the
				// overshoot becomes a loss storm.
				if c.cc.inSlowStart() {
					threshold := c.minRTT + maxTime(4*simtime.Millisecond, c.minRTT/8)
					if rtt > threshold {
						c.cc.exitSlowStart()
					}
				}
			}
		}

		if c.inRecovery {
			c.prrDelivered += int(acked) + sackDelta
			if ack >= c.recover {
				// Full acknowledgment: leave fast recovery.
				c.exitRecovery()
			} else {
				// Partial ACK: the byte at the new sndUna is another
				// hole. Retransmit it immediately unless the
				// scoreboard says it is already delivered, then keep
				// repairing further holes.
				if sacked, _ := c.isSacked(c.sndUna); !sacked {
					c.retransmitHead()
				}
				c.retransmitHoles(2)
			}
		} else {
			c.cc.onAck(int(acked), c.rto.srtt, now)
		}

		if c.sndUna == c.sndNxt {
			c.disarmRTO()
			if c.finSent {
				c.completeSender()
				return
			}
		} else {
			c.armRTO()
		}
		c.trySend()
		c.maybeFinish()
		return
	}

	// Duplicate ACK (ack == sndUna and there is outstanding data).
	// Only duplicates carrying SACK information count toward loss
	// detection: a genuine hole means the receiver is buffering
	// out-of-order data and reports it, whereas the bare duplicate
	// ACKs elicited by spurious retransmissions carry no blocks and
	// must not fabricate congestion events.
	if ack == c.sndUna && c.sndNxt > c.sndUna && len(pkt.SackBlocks) > 0 {
		c.dupAcks++
		if c.inRecovery {
			// Each duplicate ACK signals another delivered packet:
			// credit the PRR budget and spend it repairing the next
			// SACK hole.
			c.prrDelivered += sackDelta
			if sackDelta == 0 {
				c.prrDelivered += c.cfg.MSS
			}
			c.retransmitHoles(1)
			c.trySend()
			return
		}
		if c.dupAcks == 3 {
			c.enterFastRecovery()
		}
	}
}

// mergeSack folds one SACK block into the scoreboard, keeping the list
// sorted and disjoint.
func (c *Conn) mergeSack(iv interval) {
	if iv.hi <= iv.lo || iv.hi <= c.sndUna {
		return
	}
	if iv.lo < c.sndUna {
		iv.lo = c.sndUna
	}
	i := 0
	for i < len(c.sacked) && c.sacked[i].lo < iv.lo {
		i++
	}
	c.sacked = append(c.sacked, interval{})
	copy(c.sacked[i+1:], c.sacked[i:])
	c.sacked[i] = iv
	merged := c.sacked[:0]
	for _, seg := range c.sacked {
		n := len(merged)
		if n > 0 && seg.lo <= merged[n-1].hi {
			if seg.hi > merged[n-1].hi {
				merged[n-1].hi = seg.hi
			}
		} else {
			merged = append(merged, seg)
		}
	}
	c.sacked = merged
}

// prrAllow reports whether the PRR budget admits another transmission
// of size bytes during recovery: cumulative output is proportional to
// cumulative delivery, scaled by the post-loss window over the flight
// at loss (RFC 6937's sndcnt), with one MSS of slack so the head
// retransmission always goes out.
func (c *Conn) prrAllow(size int) bool {
	if !c.inRecovery {
		return true
	}
	rf := c.recoverFlight
	if rf < 1 {
		rf = 1
	}
	target := int(float64(c.prrDelivered) * c.cc.window() / float64(rf))
	return c.prrOut+size <= target+c.cfg.MSS
}

// sackedBytes sums the scoreboard ranges above sndUna.
func (c *Conn) sackedBytes() int {
	var sum uint64
	for _, seg := range c.sacked {
		lo := seg.lo
		if lo < c.sndUna {
			lo = c.sndUna
		}
		if seg.hi > lo {
			sum += seg.hi - lo
		}
	}
	return int(sum)
}

// isSacked reports whether the byte at seq is covered by the scoreboard.
func (c *Conn) isSacked(seq uint64) (bool, uint64) {
	for _, seg := range c.sacked {
		if seq >= seg.lo && seq < seg.hi {
			return true, seg.hi
		}
		if seg.lo > seq {
			break
		}
	}
	return false, 0
}

// retransmitHoles resends up to n MSS-sized unsacked segments between
// the recovery scan pointer and the recovery point — the SACK-driven
// loss repair that lets a burst of drops heal in a couple of RTTs.
func (c *Conn) retransmitHoles(n int) {
	if !c.inRecovery {
		return
	}
	scan := c.holeScan
	if scan < c.sndUna {
		scan = c.sndUna
	}
	// A "round" is one smoothed RTT. Each round gets a fresh
	// retransmission budget, and if the previous scan pass completed
	// without the cumulative ACK reaching the recovery point, the
	// retransmissions themselves were lost (tail drop on the same
	// saturated queue) — rescan from the head.
	now := c.host.engine.Now()
	srtt := c.rto.srtt
	if srtt <= 0 {
		srtt = 100 * simtime.Millisecond
	}
	if now-c.holeRound >= srtt {
		c.holeRound = now
		c.roundBytes = 0
		if scan >= c.recover && c.sndUna < c.recover {
			scan = c.sndUna
		}
	}
	// One congestion window of retransmissions per rescan round: if
	// the scoreboard is incomplete, blasting the whole range again at
	// line rate would mostly duplicate delivered data.
	if c.roundBytes >= int(c.cc.window()) {
		c.holeScan = scan
		return
	}
	for n > 0 && scan < c.recover {
		if sacked, hi := c.isSacked(scan); sacked {
			scan = hi
			continue
		}
		size := c.cfg.MSS
		if uint64(size) > c.recover-scan {
			size = int(c.recover - scan)
		}
		// Clip the segment at the next sacked range so we never resend
		// delivered bytes.
		for _, seg := range c.sacked {
			if seg.lo > scan && seg.lo < scan+uint64(size) {
				size = int(seg.lo - scan)
				break
			}
		}
		if size <= 0 {
			break
		}
		if scan == c.sndUna && c.finSent && c.sndUna == c.sndNxt-1 {
			break // only the FIN remains; retransmitHead handles it
		}
		if !c.prrAllow(size) {
			break
		}
		c.prrOut += size
		c.sendSegment(scan, size, true)
		c.roundBytes += size
		scan += uint64(size)
		n--
		if c.roundBytes >= int(c.cc.window()) {
			break
		}
	}
	c.holeScan = scan
}

// exitRecovery leaves fast recovery and clears the SACK scoreboard.
func (c *Conn) exitRecovery() {
	c.inRecovery = false
	c.sacked = nil
	c.holeScan = 0
	c.cc.exitRecovery()
}

func (c *Conn) enterFastRecovery() {
	c.inRecovery = true
	c.recover = c.sndNxt
	c.Stats.FastRecoveries++
	c.holeRound = c.host.engine.Now()
	c.roundBytes = 0
	c.recoverFlight = int(c.sndNxt - c.sndUna)
	c.prrDelivered = 0
	c.prrOut = 0
	// One multiplicative decrease per window of data: chained
	// recoveries within the same window belong to one congestion event.
	if !c.hasCut || c.sndUna > c.cutSeq {
		flight := int(c.sndNxt - c.sndUna)
		c.cc.onLoss(flight, c.host.engine.Now())
		c.cutSeq = c.sndNxt
		c.hasCut = true
	}
	c.retransmitHead()
	c.holeScan = c.sndUna + uint64(c.cfg.MSS)
}

// retransmitHead resends the segment starting at sndUna.
func (c *Conn) retransmitHead() {
	size := c.cfg.MSS
	outstanding := c.sndNxt - c.sndUna
	if uint64(size) > outstanding {
		size = int(outstanding)
	}
	if size <= 0 {
		return
	}
	// A FIN occupying the last sequence number retransmits as FIN.
	if c.finSent && c.sndUna == c.sndNxt-1 {
		fin := packet.NewTCP(c.ft, c.sndUna, c.rcvNxt, packet.FlagFIN|packet.FlagACK, 0)
		fin.FlowTag = c.cfg.FlowTag
		fin.Window = c.advertisedWindow()
		c.host.send(fin)
		c.Stats.Retransmissions++
	} else {
		c.sendSegment(c.sndUna, size, true)
	}
	c.armRTO()
}

func (c *Conn) completeSender() {
	if c.state == stateClosed {
		return
	}
	c.state = stateClosed
	c.Stats.EndTime = c.host.engine.Now()
	c.disarmRTO()
	c.paceTimer.Stop()
	if c.OnComplete != nil {
		c.OnComplete(c)
	}
}

// ---------------------------------------------------------------------
// Retransmission timer
// ---------------------------------------------------------------------

func (c *Conn) armRTO() {
	c.rtoTimer.Reset(c.rto.timeout())
}

// ensureRTO arms the timer only if it is not already running.
func (c *Conn) ensureRTO() {
	if !c.rtoTimer.Armed() {
		c.armRTO()
	}
}

func (c *Conn) disarmRTO() {
	c.rtoTimer.Stop()
}

func (c *Conn) onTimeout() {
	if c.state == stateClosed {
		return
	}
	c.Stats.Timeouts++
	if c.state == stateSynSent {
		// Re-send the lost SYN.
		syn := packet.NewTCP(c.ft, 0, 0, packet.FlagSYN, 0)
		syn.FlowTag = c.cfg.FlowTag
		syn.Window = c.advertisedWindow()
		c.host.send(syn)
		c.rto.backoff()
		c.armRTO()
		return
	}
	if c.sndUna == c.sndNxt {
		return // nothing outstanding
	}
	// RTO: collapse to one segment and go back to sndUna (RFC 5681).
	c.inRecovery = false
	c.sacked = nil
	c.holeScan = 0
	c.dupAcks = 0
	flight := int(c.sndNxt - c.sndUna)
	c.cc.onTimeout(flight)
	if c.finSent && c.sndMax == c.sndUna+1 {
		// Only the FIN is outstanding; resend it.
		fin := packet.NewTCP(c.ft, c.sndUna, c.rcvNxt, packet.FlagFIN|packet.FlagACK, 0)
		fin.FlowTag = c.cfg.FlowTag
		fin.Window = c.advertisedWindow()
		c.host.send(fin)
		c.Stats.Retransmissions++
	} else {
		// Go-back-N: retransmit the head segment now; trySend resends
		// the rest as the window reopens.
		c.finSent = false
		size := minInt(c.cfg.MSS, int(c.sndMax-c.sndUna))
		c.sendSegment(c.sndUna, size, true)
		c.sndNxt = c.sndUna + uint64(size)
	}
	c.rto.backoff()
	c.armRTO()
	c.trySend()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxTime(a, b simtime.Time) simtime.Time {
	if a > b {
		return a
	}
	return b
}
