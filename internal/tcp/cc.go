package tcp

import (
	"math"

	"repro/internal/simtime"
)

// congestionControl abstracts the sender's window computation. Windows
// are tracked in bytes.
type congestionControl interface {
	// window returns the current congestion window in bytes.
	window() float64
	// onAck processes a cumulative acknowledgment of ackedBytes outside
	// fast recovery.
	onAck(ackedBytes int, srtt simtime.Time, now simtime.Time)
	// onLoss reacts to entering fast recovery (triple duplicate ACK).
	onLoss(flightBytes int, now simtime.Time)
	// onTimeout reacts to an RTO expiry.
	onTimeout(flightBytes int)
	// exitRecovery restores the window when recovery completes. (The
	// sender uses RFC 6675-style pipe accounting during recovery, so
	// no RFC 5681 window inflation is needed.)
	exitRecovery()
	// inSlowStart reports whether the algorithm is still in the
	// exponential phase.
	inSlowStart() bool
	// exitSlowStart ends the exponential phase at the current window —
	// the HyStart delay-based exit, triggered by the sender when RTT
	// samples show the queue building.
	exitSlowStart()
}

// ---------------------------------------------------------------------
// NewReno
// ---------------------------------------------------------------------

type reno struct {
	mss      float64
	cwnd     float64
	ssthresh float64
}

func newReno(mss, initialCwnd int) *reno {
	return &reno{
		mss:      float64(mss),
		cwnd:     float64(initialCwnd) * float64(mss),
		ssthresh: math.MaxFloat64,
	}
}

func (r *reno) window() float64 { return r.cwnd }

func (r *reno) onAck(acked int, _ simtime.Time, _ simtime.Time) {
	if r.cwnd < r.ssthresh {
		// Slow start: one MSS per acked segment, i.e. acked bytes.
		r.cwnd += float64(acked)
		if r.cwnd > r.ssthresh {
			r.cwnd = r.ssthresh
		}
	} else {
		// Congestion avoidance: ~one MSS per RTT.
		r.cwnd += r.mss * r.mss / r.cwnd
	}
}

func (r *reno) onLoss(flight int, _ simtime.Time) {
	r.ssthresh = math.Max(float64(flight)/2, 2*r.mss)
	r.cwnd = r.ssthresh
}

func (r *reno) onTimeout(flight int) {
	r.ssthresh = math.Max(float64(flight)/2, 2*r.mss)
	r.cwnd = r.mss
}

func (r *reno) exitRecovery() { r.cwnd = r.ssthresh }

func (r *reno) inSlowStart() bool { return r.cwnd < r.ssthresh }

func (r *reno) exitSlowStart() { r.ssthresh = r.cwnd }

// ---------------------------------------------------------------------
// CUBIC (RFC 8312)
// ---------------------------------------------------------------------

const (
	cubicC    = 0.4 // aggressiveness constant, segments/sec^3
	cubicBeta = 0.7 // multiplicative decrease factor
)

type cubic struct {
	mss      float64
	cwnd     float64 // bytes
	ssthresh float64 // bytes
	wMax     float64 // segments, window before the last reduction
	k        float64 // seconds to regrow to wMax
	epoch    simtime.Time
	hasEpoch bool
	// TCP-friendly region estimate
	wEst   float64 // segments
	ackCnt float64
}

func newCubic(mss, initialCwnd int) *cubic {
	return &cubic{
		mss:      float64(mss),
		cwnd:     float64(initialCwnd) * float64(mss),
		ssthresh: math.MaxFloat64,
	}
}

func (c *cubic) window() float64 { return c.cwnd }

func (c *cubic) onAck(acked int, srtt simtime.Time, now simtime.Time) {
	if c.cwnd < c.ssthresh {
		c.cwnd += float64(acked)
		if c.cwnd > c.ssthresh {
			c.cwnd = c.ssthresh
		}
		return
	}
	// Congestion avoidance, cubic growth.
	if !c.hasEpoch {
		c.epoch = now
		c.hasEpoch = true
		segs := c.cwnd / c.mss
		if c.wMax < segs {
			c.wMax = segs
		}
		c.k = math.Cbrt(c.wMax * (1 - cubicBeta) / cubicC)
		c.wEst = segs
		c.ackCnt = 0
	}
	t := (now - c.epoch).Seconds()
	target := cubicC*math.Pow(t-c.k, 3) + c.wMax // segments

	// TCP-friendly window (standard AIMD estimate).
	c.ackCnt += float64(acked) / c.mss
	segs := c.cwnd / c.mss
	if c.ackCnt >= segs {
		c.wEst += 1
		c.ackCnt = 0
	}
	if target < c.wEst {
		target = c.wEst
	}

	if target > segs {
		// Approach the target over roughly one RTT worth of ACKs.
		c.cwnd += (target - segs) / segs * float64(acked)
	} else {
		// Tiny growth to stay responsive even above target.
		c.cwnd += c.mss * 0.01 * float64(acked) / c.cwnd
	}
}

func (c *cubic) onLoss(flight int, now simtime.Time) {
	segs := c.cwnd / c.mss
	// Fast convergence: release bandwidth faster when the window is
	// still below the previous wMax (another flow is ramping up).
	if segs < c.wMax {
		c.wMax = segs * (1 + cubicBeta) / 2
	} else {
		c.wMax = segs
	}
	c.cwnd = math.Max(c.cwnd*cubicBeta, 2*c.mss)
	c.ssthresh = c.cwnd
	c.hasEpoch = false
}

func (c *cubic) onTimeout(flight int) {
	segs := c.cwnd / c.mss
	if segs < c.wMax {
		c.wMax = segs * (1 + cubicBeta) / 2
	} else {
		c.wMax = segs
	}
	c.ssthresh = math.Max(c.cwnd*cubicBeta, 2*c.mss)
	c.cwnd = c.mss
	c.hasEpoch = false
}

func (c *cubic) exitRecovery() {}

func (c *cubic) inSlowStart() bool { return c.cwnd < c.ssthresh }

func (c *cubic) exitSlowStart() {
	c.ssthresh = c.cwnd
	segs := c.cwnd / c.mss
	if c.wMax < segs {
		c.wMax = segs
	}
}
