// Package packet models the network packets the simulated Science DMZ
// carries and the P4 data plane parses. Headers mirror real Ethernet,
// IPv4, TCP and UDP layouts: packets can be marshalled to and parsed
// from actual wire bytes, which is what the data-plane parser tests
// exercise. Inside the simulator packets travel as structs for speed.
package packet

import (
	"fmt"
	"net/netip"

	"repro/internal/simtime"
)

// Proto identifies the transport protocol, using IANA protocol numbers
// as they appear in the IPv4 header.
type Proto uint8

// Transport protocol numbers used by the simulator.
const (
	ProtoTCP Proto = 6
	ProtoUDP Proto = 17
)

// String names the IP protocol (tcp/udp, or the numeric value).
func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// TCP header flag bits.
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagPSH uint8 = 1 << 3
	FlagACK uint8 = 1 << 4
	FlagURG uint8 = 1 << 5
)

// SackBlock is one selectively-acknowledged byte range [Lo, Hi).
type SackBlock struct {
	Lo, Hi uint64
}

// INTHop is one In-band Network Telemetry stack entry: the per-hop
// metadata an INT-enabled switch appends to transit packets. It lives
// in this package so that packets can carry it without an import cycle;
// the inband package provides the collection machinery.
type INTHop struct {
	SwitchID   string
	IngressAt  simtime.Time
	EgressAt   simtime.Time
	QueueBytes int
}

// FiveTuple identifies a flow the way the paper's data plane does:
// source IP, destination IP, source port, destination port, protocol.
type FiveTuple struct {
	SrcIP   netip.Addr
	DstIP   netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   Proto
}

// Reverse returns the 5-tuple with source and destination swapped. The
// paper hashes this "reversed ID" to match acknowledgment packets to the
// flow that elicited them (§4).
func (f FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		SrcIP:   f.DstIP,
		DstIP:   f.SrcIP,
		SrcPort: f.DstPort,
		DstPort: f.SrcPort,
		Proto:   f.Proto,
	}
}

// String renders the flow as src:port>dst:port/proto for logs.
func (f FiveTuple) String() string {
	return fmt.Sprintf("%s:%d>%s:%d/%s", f.SrcIP, f.SrcPort, f.DstIP, f.DstPort, f.Proto)
}

// Packet is a simulated network packet. Length fields are kept
// consistent with the header model: TotalLen covers the IPv4 header and
// everything after it; payload bytes are represented by PayloadLen and
// are not materialised (the simulator never needs payload content).
type Packet struct {
	// Ethernet
	SrcMAC [6]byte
	DstMAC [6]byte

	// IPv4
	TTL      uint8
	Proto    Proto
	SrcIP    netip.Addr
	DstIP    netip.Addr
	IHL      uint8  // header length in 32-bit words, normally 5
	TotalLen uint16 // IPv4 total length: IP header + transport header + payload
	IPID     uint16 // identification field; hosts increment it per packet,
	// and the data plane uses (5-tuple, IPID) to pair the ingress-TAP
	// and egress-TAP copies of the same packet for queuing-delay
	// measurement (§4.2)

	// Transport
	SrcPort uint16
	DstPort uint16

	// TCP only
	Seq        uint32 // wire sequence number (low 32 bits of SeqExt)
	Ack        uint32 // wire acknowledgment number (low 32 bits of AckExt)
	DataOffset uint8  // TCP header length in 32-bit words, normally 5
	Flags      uint8
	Window     uint16 // advertised receive window (scaled value, in WindowScale units)

	// SeqExt and AckExt carry 64-bit extended sequence numbers so the
	// simulator can move more than 4 GB per flow without wrap ambiguity
	// (see DESIGN.md substitution table). Marshal truncates them to the
	// 32-bit wire fields.
	SeqExt uint64
	AckExt uint64

	// PayloadLen is the number of transport payload bytes the packet
	// carries. The bytes themselves are not stored.
	PayloadLen int

	// SackBlocks carries the receiver's selective-acknowledgment
	// ranges (RFC 2018), newest first, at most three — as they would
	// ride in TCP options. The simulator keeps them as struct fields
	// rather than marshalling options bytes; the P4 data plane ignores
	// them (as the paper's pipeline does).
	SackBlocks []SackBlock

	// TSVal and TSEcr model the TCP timestamps option (RFC 7323):
	// senders stamp data with TSVal and receivers echo it back as
	// TSEcr, giving the sender one RTT sample per ACK — what real
	// stacks (and HyStart) rely on. Zero means absent.
	TSVal, TSEcr int64

	// INTStack carries In-band Network Telemetry per-hop metadata
	// appended by INT-enabled switches (the inband package's domain).
	// Nil on un-instrumented paths.
	INTStack []INTHop

	// Simulation metadata (not on the wire).

	// SentAt is the virtual time the packet left its origin host.
	SentAt simtime.Time
	// FlowTag is an optional human-readable label set by traffic
	// generators ("flow1", "dtn2-transfer") used by reports and figures.
	FlowTag string

	// pooled marks packets owned by the package arena (see pool.go).
	// Release is a no-op on packets built with NewTCP/NewUDP or plain
	// struct literals, so callers that retain packets (sinks, recorders)
	// stay safe without knowing how the packet was produced.
	pooled bool
}

// Standard header sizes in bytes.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20
	TCPHeaderLen      = 20
	UDPHeaderLen      = 8
)

// NewTCP builds a TCP packet with consistent length fields.
func NewTCP(ft FiveTuple, seq, ack uint64, flags uint8, payload int) *Packet {
	p := &Packet{
		TTL:        64,
		Proto:      ProtoTCP,
		SrcIP:      ft.SrcIP,
		DstIP:      ft.DstIP,
		IHL:        5,
		SrcPort:    ft.SrcPort,
		DstPort:    ft.DstPort,
		SeqExt:     seq,
		AckExt:     ack,
		Seq:        uint32(seq),
		Ack:        uint32(ack),
		DataOffset: 5,
		Flags:      flags,
		PayloadLen: payload,
	}
	p.TotalLen = uint16(IPv4HeaderLen + TCPHeaderLen + payload)
	return p
}

// NewUDP builds a UDP packet with consistent length fields.
func NewUDP(ft FiveTuple, payload int) *Packet {
	p := &Packet{
		TTL:        64,
		Proto:      ProtoUDP,
		SrcIP:      ft.SrcIP,
		DstIP:      ft.DstIP,
		IHL:        5,
		SrcPort:    ft.SrcPort,
		DstPort:    ft.DstPort,
		PayloadLen: payload,
	}
	p.TotalLen = uint16(IPv4HeaderLen + UDPHeaderLen + payload)
	return p
}

// FiveTuple extracts the packet's flow identity.
func (p *Packet) FiveTuple() FiveTuple {
	return FiveTuple{
		SrcIP:   p.SrcIP,
		DstIP:   p.DstIP,
		SrcPort: p.SrcPort,
		DstPort: p.DstPort,
		Proto:   p.Proto,
	}
}

// WireLen is the packet's on-the-wire size in bytes including the
// Ethernet header; this is the size links serialise.
func (p *Packet) WireLen() int {
	return EthernetHeaderLen + int(p.TotalLen)
}

// TransportHeaderLen returns the transport header size implied by the
// header fields.
func (p *Packet) TransportHeaderLen() int {
	switch p.Proto {
	case ProtoTCP:
		return int(p.DataOffset) * 4
	case ProtoUDP:
		return UDPHeaderLen
	default:
		return 0
	}
}

// IsACKOnly reports whether the packet is a pure TCP acknowledgment:
// the ACK flag set and no payload. Algorithm 1 classifies packets into
// "Seq" (carries data) and "ACK" using the TCP flags and total length;
// this is the ACK side of that classification.
func (p *Packet) IsACKOnly() bool {
	return p.Proto == ProtoTCP && p.Flags&FlagACK != 0 && p.PayloadLen == 0
}

// CarriesData reports whether the packet has transport payload — the
// "Seq" packet type in Algorithm 1.
func (p *Packet) CarriesData() bool {
	return p.PayloadLen > 0
}

// ExpectedAck computes the future acknowledgment number that will cover
// this data packet, exactly as the paper's data plane does:
//
//	eACK = seq_no + (ip.total_len - 4*ip.ihl - 4*tcp.data_offset)
func (p *Packet) ExpectedAck() uint64 {
	payload := int(p.TotalLen) - 4*int(p.IHL) - 4*int(p.DataOffset)
	ack := p.SeqExt + uint64(payload)
	if p.Flags&(FlagSYN|FlagFIN) != 0 {
		ack++
	}
	return ack
}

// Clone returns a copy of the packet. TAPs use Clone so that the
// monitoring path cannot mutate the packet still traversing the
// production path.
//
// p4:hotpath-exempt: Clone is the non-pooled deep copy and allocates by
// design; hot configurations set tap.Pair.Recycle and go through
// ClonePooled, leaving this as the debug-tap fallback.
func (p *Packet) Clone() *Packet {
	q := *p
	q.pooled = false
	if len(p.SackBlocks) > 0 {
		q.SackBlocks = append([]SackBlock(nil), p.SackBlocks...)
	}
	if len(p.INTStack) > 0 {
		q.INTStack = append([]INTHop(nil), p.INTStack...)
	}
	return &q
}

// String summarises the headers for debugging output.
func (p *Packet) String() string {
	if p.Proto == ProtoTCP {
		return fmt.Sprintf("%s seq=%d ack=%d flags=%02x len=%d",
			p.FiveTuple(), p.SeqExt, p.AckExt, p.Flags, p.PayloadLen)
	}
	return fmt.Sprintf("%s len=%d", p.FiveTuple(), p.PayloadLen)
}
