package packet

import "sync"

// The packet arena. At Fig9 scale the simulator moves tens of millions
// of packets through a handful of switches; allocating each one
// individually made the garbage collector the largest consumer of wall
// time after the scheduler. Pooling is safe here because the simulation
// is single-threaded per engine and packet lifetimes are explicit: a
// packet is owned by exactly one component at a time (host send queue,
// link in flight, switch queue, TAP mirror), and the owner either passes
// it on or releases it.
//
// Ownership rules:
//
//   - Whoever drops a packet (queue overflow, link loss, no route, TTL
//     expiry) releases it.
//   - The terminal receiver (tcp.Host after demux, the data plane after
//     a mirrored copy is processed) releases it.
//   - Components that retain packets (netsim.Sink, test recorders) must
//     receive non-pooled packets — Clone() and the New* constructors
//     produce those — or simply never call Release, which is always safe.
var pool = sync.Pool{New: func() any { return new(Packet) }}

// Get returns a zeroed pooled packet. Slice capacity from previous use
// is retained (length reset to zero) so SACK blocks and INT hops appended
// later reuse the old backing arrays.
func Get() *Packet {
	if !poolEnabled {
		return new(Packet)
	}
	p := pool.Get().(*Packet)
	p.pooled = true
	return p
}

// Release returns the packet to the arena. It is a no-op for nil
// packets and for packets not obtained from the pool, so callers can
// release unconditionally at their ownership boundary. After Release the
// caller must not touch the packet again.
//
// p4:hotpath
func (p *Packet) Release() {
	if p == nil || !p.pooled {
		return
	}
	sack := p.SackBlocks[:0]
	ints := p.INTStack[:0]
	*p = Packet{}
	p.SackBlocks = sack
	p.INTStack = ints
	pool.Put(p)
}

// Pooled reports whether the packet is arena-owned (Release will recycle
// it). Exposed for tests and ownership assertions.
func (p *Packet) Pooled() bool { return p.pooled }

// ClonePooled copies the packet into an arena slot, reusing that slot's
// retained SACK/INT backing arrays. TAPs use it for mirror copies when
// the attached monitor is known not to retain them.
//
// p4:hotpath
func (p *Packet) ClonePooled() *Packet {
	q := Get()
	sack := q.SackBlocks[:0]
	ints := q.INTStack[:0]
	pooled := q.pooled
	*q = *p
	q.pooled = pooled
	q.SackBlocks = append(sack, p.SackBlocks...)
	q.INTStack = append(ints, p.INTStack...)
	return q
}

// GetTCP is the pooled equivalent of NewTCP: a TCP packet with
// consistent length fields, drawn from the arena.
//
// p4:hotpath
func GetTCP(ft FiveTuple, seq, ack uint64, flags uint8, payload int) *Packet {
	p := Get()
	p.TTL = 64
	p.Proto = ProtoTCP
	p.SrcIP = ft.SrcIP
	p.DstIP = ft.DstIP
	p.IHL = 5
	p.SrcPort = ft.SrcPort
	p.DstPort = ft.DstPort
	p.SeqExt = seq
	p.AckExt = ack
	p.Seq = uint32(seq)
	p.Ack = uint32(ack)
	p.DataOffset = 5
	p.Flags = flags
	p.PayloadLen = payload
	p.TotalLen = uint16(IPv4HeaderLen + TCPHeaderLen + payload)
	return p
}

// GetUDP is the pooled equivalent of NewUDP.
//
// p4:hotpath
func GetUDP(ft FiveTuple, payload int) *Packet {
	p := Get()
	p.TTL = 64
	p.Proto = ProtoUDP
	p.SrcIP = ft.SrcIP
	p.DstIP = ft.DstIP
	p.IHL = 5
	p.SrcPort = ft.SrcPort
	p.DstPort = ft.DstPort
	p.PayloadLen = payload
	p.TotalLen = uint16(IPv4HeaderLen + UDPHeaderLen + payload)
	return p
}
