package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Marshal serialises the packet to real wire bytes: Ethernet + IPv4 +
// TCP/UDP headers followed by PayloadLen zero bytes. The P4 parser tests
// parse these bytes back, mirroring how the hardware parser consumes a
// byte stream.
func (p *Packet) Marshal() []byte {
	buf := make([]byte, p.WireLen())
	copy(buf[0:6], p.DstMAC[:])
	copy(buf[6:12], p.SrcMAC[:])
	binary.BigEndian.PutUint16(buf[12:14], 0x0800) // EtherType IPv4

	ip := buf[EthernetHeaderLen:]
	ip[0] = 0x40 | (p.IHL & 0x0f) // version 4 + IHL
	binary.BigEndian.PutUint16(ip[2:4], p.TotalLen)
	binary.BigEndian.PutUint16(ip[4:6], p.IPID)
	ip[8] = p.TTL
	ip[9] = uint8(p.Proto)
	src := p.SrcIP.As4()
	dst := p.DstIP.As4()
	copy(ip[12:16], src[:])
	copy(ip[16:20], dst[:])
	binary.BigEndian.PutUint16(ip[10:12], ipChecksum(ip[:4*int(p.IHL)]))

	tp := ip[4*int(p.IHL):]
	switch p.Proto {
	case ProtoTCP:
		binary.BigEndian.PutUint16(tp[0:2], p.SrcPort)
		binary.BigEndian.PutUint16(tp[2:4], p.DstPort)
		binary.BigEndian.PutUint32(tp[4:8], uint32(p.SeqExt))
		binary.BigEndian.PutUint32(tp[8:12], uint32(p.AckExt))
		tp[12] = (p.DataOffset & 0x0f) << 4
		tp[13] = p.Flags
		binary.BigEndian.PutUint16(tp[14:16], p.Window)
	case ProtoUDP:
		binary.BigEndian.PutUint16(tp[0:2], p.SrcPort)
		binary.BigEndian.PutUint16(tp[2:4], p.DstPort)
		binary.BigEndian.PutUint16(tp[4:6], uint16(UDPHeaderLen+p.PayloadLen))
	}
	return buf
}

// Parse reconstructs a Packet from wire bytes produced by Marshal (or
// any well-formed Ethernet/IPv4/TCP|UDP frame). It performs the same
// work as the P4 programmable parser: extract Ethernet, then IPv4, then
// the transport header selected by the IPv4 protocol field.
func Parse(buf []byte) (*Packet, error) {
	if len(buf) < EthernetHeaderLen+IPv4HeaderLen {
		return nil, fmt.Errorf("packet: frame too short (%d bytes)", len(buf))
	}
	if et := binary.BigEndian.Uint16(buf[12:14]); et != 0x0800 {
		return nil, fmt.Errorf("packet: unsupported EtherType 0x%04x", et)
	}
	p := &Packet{}
	copy(p.DstMAC[:], buf[0:6])
	copy(p.SrcMAC[:], buf[6:12])

	ip := buf[EthernetHeaderLen:]
	if ip[0]>>4 != 4 {
		return nil, fmt.Errorf("packet: not IPv4 (version %d)", ip[0]>>4)
	}
	p.IHL = ip[0] & 0x0f
	if int(p.IHL) < 5 || len(ip) < 4*int(p.IHL) {
		return nil, fmt.Errorf("packet: bad IHL %d", p.IHL)
	}
	p.TotalLen = binary.BigEndian.Uint16(ip[2:4])
	p.IPID = binary.BigEndian.Uint16(ip[4:6])
	p.TTL = ip[8]
	p.Proto = Proto(ip[9])
	p.SrcIP = netip.AddrFrom4([4]byte(ip[12:16]))
	p.DstIP = netip.AddrFrom4([4]byte(ip[16:20]))

	tp := ip[4*int(p.IHL):]
	switch p.Proto {
	case ProtoTCP:
		if len(tp) < TCPHeaderLen {
			return nil, fmt.Errorf("packet: truncated TCP header")
		}
		p.SrcPort = binary.BigEndian.Uint16(tp[0:2])
		p.DstPort = binary.BigEndian.Uint16(tp[2:4])
		p.Seq = binary.BigEndian.Uint32(tp[4:8])
		p.Ack = binary.BigEndian.Uint32(tp[8:12])
		p.SeqExt = uint64(p.Seq)
		p.AckExt = uint64(p.Ack)
		p.DataOffset = tp[12] >> 4
		p.Flags = tp[13]
		p.Window = binary.BigEndian.Uint16(tp[14:16])
		p.PayloadLen = int(p.TotalLen) - 4*int(p.IHL) - 4*int(p.DataOffset)
	case ProtoUDP:
		if len(tp) < UDPHeaderLen {
			return nil, fmt.Errorf("packet: truncated UDP header")
		}
		p.SrcPort = binary.BigEndian.Uint16(tp[0:2])
		p.DstPort = binary.BigEndian.Uint16(tp[2:4])
		p.PayloadLen = int(binary.BigEndian.Uint16(tp[4:6])) - UDPHeaderLen
	default:
		return nil, fmt.Errorf("packet: unsupported protocol %d", p.Proto)
	}
	if p.PayloadLen < 0 {
		return nil, fmt.Errorf("packet: inconsistent lengths")
	}
	return p, nil
}

// ipChecksum computes the standard IPv4 header checksum over hdr with
// the checksum field zeroed.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 { // checksum field itself
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// MustAddr parses a dotted-quad address, panicking on malformed input.
// Topology builders use it for literal addresses.
func MustAddr(s string) netip.Addr {
	a, err := netip.ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}
