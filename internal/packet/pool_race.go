//go:build race

package packet

// Under the race detector every sync.Pool Get/Put carries an
// acquire/release annotation, which costs more than the allocation the
// pool avoids — enough to push the experiments suite past go test's
// default timeout on small runners. Pooling only recycles memory, never
// behavior (DESIGN.md §5.1), so race builds fall back to plain
// allocation: Get returns a fresh packet and Release stays a no-op.
const poolEnabled = false
