//go:build !race

package packet

// poolEnabled gates the arena. In normal builds pooling removes the
// per-packet allocation that made the garbage collector the largest
// consumer of wall time after the scheduler.
const poolEnabled = true
