package packet

import (
	"testing"
	"testing/quick"
)

func ft() FiveTuple {
	return FiveTuple{
		SrcIP:   MustAddr("10.0.0.1"),
		DstIP:   MustAddr("192.168.1.9"),
		SrcPort: 40001,
		DstPort: 5201,
		Proto:   ProtoTCP,
	}
}

func TestFiveTupleReverse(t *testing.T) {
	f := ft()
	r := f.Reverse()
	if r.SrcIP != f.DstIP || r.DstIP != f.SrcIP {
		t.Fatal("IPs not swapped")
	}
	if r.SrcPort != f.DstPort || r.DstPort != f.SrcPort {
		t.Fatal("ports not swapped")
	}
	if r.Proto != f.Proto {
		t.Fatal("protocol must be preserved")
	}
	if r.Reverse() != f {
		t.Fatal("double reverse must be identity")
	}
}

func TestNewTCPLengths(t *testing.T) {
	p := NewTCP(ft(), 100, 0, FlagACK|FlagPSH, 1448)
	if int(p.TotalLen) != IPv4HeaderLen+TCPHeaderLen+1448 {
		t.Fatalf("TotalLen=%d", p.TotalLen)
	}
	if p.WireLen() != EthernetHeaderLen+int(p.TotalLen) {
		t.Fatalf("WireLen=%d", p.WireLen())
	}
	if !p.CarriesData() || p.IsACKOnly() {
		t.Fatal("data packet misclassified")
	}
}

func TestNewUDPLengths(t *testing.T) {
	f := ft()
	f.Proto = ProtoUDP
	p := NewUDP(f, 512)
	if int(p.TotalLen) != IPv4HeaderLen+UDPHeaderLen+512 {
		t.Fatalf("TotalLen=%d", p.TotalLen)
	}
}

func TestACKClassification(t *testing.T) {
	ack := NewTCP(ft().Reverse(), 1, 1449, FlagACK, 0)
	if !ack.IsACKOnly() || ack.CarriesData() {
		t.Fatal("pure ACK misclassified")
	}
}

func TestExpectedAck(t *testing.T) {
	p := NewTCP(ft(), 1000, 0, FlagACK, 500)
	// eACK = seq + payload, computed from the header length fields
	// exactly as in Algorithm 1.
	if got := p.ExpectedAck(); got != 1500 {
		t.Fatalf("ExpectedAck=%d, want 1500", got)
	}
}

func TestExpectedAckSYNConsumesSequence(t *testing.T) {
	p := NewTCP(ft(), 0, 0, FlagSYN, 0)
	if got := p.ExpectedAck(); got != 1 {
		t.Fatalf("SYN ExpectedAck=%d, want 1", got)
	}
	f := NewTCP(ft(), 999, 0, FlagFIN|FlagACK, 0)
	if got := f.ExpectedAck(); got != 1000 {
		t.Fatalf("FIN ExpectedAck=%d, want 1000", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := NewTCP(ft(), 7, 8, FlagACK, 100)
	q := p.Clone()
	q.SeqExt = 999
	q.Flags = 0
	if p.SeqExt != 7 || p.Flags != FlagACK {
		t.Fatal("mutating the clone changed the original")
	}
}

func TestMarshalParseRoundTripTCP(t *testing.T) {
	p := NewTCP(ft(), 0x11223344, 0x55667788, FlagACK|FlagPSH, 777)
	p.Window = 4321
	p.TTL = 17
	buf := p.Marshal()
	if len(buf) != p.WireLen() {
		t.Fatalf("marshal length %d, want %d", len(buf), p.WireLen())
	}
	q, err := Parse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.FiveTuple() != p.FiveTuple() {
		t.Fatalf("5-tuple mismatch: %v vs %v", q.FiveTuple(), p.FiveTuple())
	}
	if q.Seq != 0x11223344 || q.Ack != 0x55667788 {
		t.Fatalf("seq/ack mismatch: %x %x", q.Seq, q.Ack)
	}
	if q.Flags != p.Flags || q.Window != p.Window || q.TTL != p.TTL {
		t.Fatal("flag/window/ttl mismatch")
	}
	if q.PayloadLen != 777 {
		t.Fatalf("payload length %d", q.PayloadLen)
	}
}

func TestMarshalParseRoundTripUDP(t *testing.T) {
	f := ft()
	f.Proto = ProtoUDP
	p := NewUDP(f, 256)
	q, err := Parse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q.FiveTuple() != f {
		t.Fatalf("5-tuple mismatch: %v", q.FiveTuple())
	}
	if q.PayloadLen != 256 {
		t.Fatalf("payload %d", q.PayloadLen)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 10),
		make([]byte, 60), // zeroed: EtherType 0 invalid
	}
	for i, buf := range cases {
		if _, err := Parse(buf); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParseRejectsTruncatedTCP(t *testing.T) {
	p := NewTCP(ft(), 1, 2, FlagACK, 0)
	buf := p.Marshal()
	if _, err := Parse(buf[:EthernetHeaderLen+IPv4HeaderLen+4]); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestIPChecksumValid(t *testing.T) {
	p := NewTCP(ft(), 1, 2, FlagACK, 100)
	buf := p.Marshal()
	ip := buf[EthernetHeaderLen : EthernetHeaderLen+IPv4HeaderLen]
	// Recomputing the checksum including the stored checksum field must
	// yield the one's-complement identity: sum of all 16-bit words
	// (including checksum) folds to 0xffff.
	var sum uint32
	for i := 0; i+1 < len(ip); i += 2 {
		sum += uint32(ip[i])<<8 | uint32(ip[i+1])
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	if sum != 0xffff {
		t.Fatalf("IPv4 checksum invalid: folded sum %04x", sum)
	}
}

func TestMarshalParseQuick(t *testing.T) {
	f := func(seq, ack uint32, flags uint8, payload uint16, win uint16) bool {
		pl := int(payload % 8000)
		p := NewTCP(ft(), uint64(seq), uint64(ack), flags|FlagACK, pl)
		p.Window = win
		q, err := Parse(p.Marshal())
		if err != nil {
			return false
		}
		return q.Seq == seq && q.Ack == ack && q.PayloadLen == pl && q.Window == win
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqExtTruncationOnWire(t *testing.T) {
	// 64-bit extended sequence numbers must truncate to 32 bits on the
	// wire (see DESIGN.md substitution table).
	p := NewTCP(ft(), 1<<40|0xdeadbeef, 0, FlagACK, 10)
	q, err := Parse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q.Seq != 0xdeadbeef {
		t.Fatalf("wire seq %x", q.Seq)
	}
}

func TestProtoString(t *testing.T) {
	if ProtoTCP.String() != "tcp" || ProtoUDP.String() != "udp" {
		t.Fatal("proto strings wrong")
	}
	if Proto(99).String() != "proto(99)" {
		t.Fatal("unknown proto string wrong")
	}
}

func BenchmarkMarshal(b *testing.B) {
	p := NewTCP(ft(), 1, 2, FlagACK, 1448)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Marshal()
	}
}

func BenchmarkParse(b *testing.B) {
	buf := NewTCP(ft(), 1, 2, FlagACK, 1448).Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(buf); err != nil {
			b.Fatal(err)
		}
	}
}
