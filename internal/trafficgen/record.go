package trafficgen

import (
	"io"

	"repro/internal/replay"
	"repro/internal/tap"
)

// Recorder is a tap.Monitor tee: every TAP copy is appended to a
// replay trace and forwarded to the inner monitor unchanged, so a live
// simulation can be captured for later high-rate replay (the
// record/replay half of the batch ingest front-end). The recorder
// keeps no reference to the packet — the copy is reduced to its
// value-typed trace record before the inner monitor runs — so it is
// safe behind a recycling TAP pair.
//
// Writes are buffered; call Flush when the simulation ends. The first
// write error sticks and is reported by Flush (a simulation step has
// no useful way to handle a disk error mid-packet).
type Recorder struct {
	inner tap.Monitor
	w     *replay.Writer
	rec   replay.Record
}

// NewRecorder tees copies for inner into a trace written to w. inner
// may be nil to only record.
func NewRecorder(inner tap.Monitor, w io.Writer) *Recorder {
	return &Recorder{inner: inner, w: replay.NewWriter(w)}
}

// ProcessCopy implements tap.Monitor.
func (r *Recorder) ProcessCopy(c tap.Copy) {
	r.rec.FromCopy(c)
	_ = r.w.Write(&r.rec) // first error sticks inside the writer; Flush reports it
	if r.inner != nil {
		r.inner.ProcessCopy(c)
	}
}

// Count reports the records captured so far.
func (r *Recorder) Count() uint64 { return r.w.Count() }

// Flush drains the trace to the underlying writer and returns the
// first error encountered over the recording's lifetime.
func (r *Recorder) Flush() error { return r.w.Flush() }
