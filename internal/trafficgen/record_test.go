package trafficgen

import (
	"bytes"
	"net/netip"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/packet"
	"repro/internal/replay"
	"repro/internal/simtime"
	"repro/internal/tap"
)

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	return netip.MustParseAddr(s)
}

func simAt(i int) simtime.Time { return simtime.Time(i+1) * simtime.Microsecond }

// TestRecorderTee: copies reach the inner monitor unchanged while the
// trace captures them; replaying the trace reproduces the same
// pipeline state the live run built.
func TestRecorderTee(t *testing.T) {
	cfg := dataplane.Config{FlowTableSize: 256}
	live := dataplane.NewPipes(cfg, 1)
	var buf bytes.Buffer
	rec := NewRecorder(live, &buf)

	ft := packet.FiveTuple{
		SrcIP:   mustAddr(t, "10.0.0.1"),
		DstIP:   mustAddr(t, "10.0.0.2"),
		SrcPort: 40000, DstPort: 5201, Proto: packet.ProtoTCP,
	}
	var n uint64
	seq := uint64(1)
	for i := 0; i < 500; i++ {
		pkt := packet.NewTCP(ft, seq, 0, packet.FlagACK, 1460)
		pkt.IPID = uint16(i)
		seq += 1460
		rec.ProcessCopy(tap.Copy{Pkt: pkt, Point: tap.Ingress, At: simAt(i)})
		n++
		if i%3 == 0 {
			rec.ProcessCopy(tap.Copy{Pkt: pkt, Point: tap.Egress, At: simAt(i) + 500})
			n++
		}
	}
	if rec.Count() != n {
		t.Fatalf("recorded %d copies, processed %d", rec.Count(), n)
	}
	if err := rec.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	replayed := dataplane.NewPipes(cfg, 1)
	res := replay.Runner{Plane: replayed}.Run(replay.NewReader(&buf))
	if res.Packets != n {
		t.Fatalf("trace replayed %d records, recorded %d", res.Packets, n)
	}
	if res.Stats != live.StatsSnapshot() {
		t.Fatalf("replayed stats diverge from live run:\n replay %+v\n live   %+v",
			res.Stats, live.StatsSnapshot())
	}
	for _, name := range live.RegisterNames() {
		for idx := uint32(0); idx < uint32(cfg.FlowTableSize); idx++ {
			lv, _ := live.ReadRegister(name, idx)
			rv, _ := replayed.ReadRegister(name, idx)
			if lv != rv {
				t.Fatalf("register %s[%d]: live %d, replayed %d", name, idx, lv, rv)
			}
		}
	}
}
