// Package trafficgen provides the workload generators the experiments
// use: iPerf3-style bulk and timed TCP transfers, application-paced
// senders, and UDP microburst injection — the knobs §5's tests turn.
package trafficgen

import (
	"fmt"
	"net/netip"

	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/tcp"
)

// Transfer describes one iPerf3-like TCP data movement.
type Transfer struct {
	From *tcp.Host
	To   *tcp.Host
	Port uint16
	// Bytes moves a fixed volume; zero means run until Duration.
	Bytes uint64
	// Start is the absolute simulation time the transfer begins.
	Start simtime.Time
	// Duration bounds a timed transfer (iperf3 -t); ignored when Bytes
	// is set.
	Duration simtime.Time
	// SenderConfig tunes the sending endpoint (CC, MSS, pacing).
	SenderConfig tcp.Config
	// ReceiverConfig tunes the receiving endpoint (RcvBufBytes).
	ReceiverConfig tcp.Config
}

// Launch schedules the transfer on the engine and returns a handle
// whose Conn field is populated once the transfer starts.
func (tr Transfer) Launch(e *simtime.Engine) *Handle {
	if tr.Port == 0 {
		tr.Port = 5201 // iperf3's default port
	}
	h := &Handle{}
	tr.To.Listen(tr.Port, tr.ReceiverConfig)
	e.At(tr.Start, func() {
		c := tr.From.Dial(tr.To.IP(), tr.Port, tr.SenderConfig)
		h.Conn = c
		c.OnComplete = func(*tcp.Conn) {
			h.Completed = true
			h.CompletedAt = e.Now()
			if h.OnComplete != nil {
				h.OnComplete(h)
			}
		}
		if tr.Bytes > 0 {
			c.StartTransfer(tr.Bytes)
		} else {
			dur := tr.Duration
			if dur <= 0 {
				dur = 10 * simtime.Second
			}
			c.StartTimed(tr.Start + dur)
		}
	})
	return h
}

// Handle tracks a launched transfer.
type Handle struct {
	Conn        *tcp.Conn
	Completed   bool
	CompletedAt simtime.Time
	OnComplete  func(*Handle)
}

// GoodputBps returns the acknowledged application throughput over the
// transfer's lifetime, or 0 before completion data exists.
func (h *Handle) GoodputBps(now simtime.Time) float64 {
	if h.Conn == nil {
		return 0
	}
	st := h.Conn.Stats
	end := h.CompletedAt
	if end == 0 {
		end = now
	}
	dur := end - st.StartTime
	if dur <= 0 {
		return 0
	}
	return float64(st.BytesAcked) * 8 / dur.Seconds()
}

// Burst injects a UDP microburst: count packets of payload bytes sent
// back-to-back from the host at time at. At the host's access-link rate
// the burst arrives at the core switch as a packet train that fills the
// bottleneck queue within microseconds — the §5.4.1 stimulus.
type Burst struct {
	From    *tcp.Host
	DstIP   netip.Addr
	DstPort uint16
	Count   int
	Payload int
	At      simtime.Time
	// Tag labels burst packets for debugging.
	Tag string
}

// Launch schedules the burst.
func (b Burst) Launch(e *simtime.Engine) {
	if b.Count <= 0 || b.Payload <= 0 {
		panic(fmt.Sprintf("trafficgen: burst needs positive count and payload, got %d x %d", b.Count, b.Payload))
	}
	if b.DstPort == 0 {
		b.DstPort = 9 // discard
	}
	e.At(b.At, func() {
		ft := packet.FiveTuple{
			SrcIP:   b.From.IP(),
			DstIP:   b.DstIP,
			SrcPort: 30000,
			DstPort: b.DstPort,
			Proto:   packet.ProtoUDP,
		}
		// Burst packets come from the arena: the receiving host (or the
		// drop point) recycles them, so a large train allocates nothing.
		for i := 0; i < b.Count; i++ {
			p := packet.GetUDP(ft, b.Payload)
			p.FlowTag = b.Tag
			b.From.SendPacket(p)
		}
	})
}

// EchoResponder installs a UDP echo service on the host: every inbound
// UDP packet is reflected back to its sender. The pScheduler latency
// test uses it as its far end.
func EchoResponder(h *tcp.Host) {
	h.OnUDP = func(pkt *packet.Packet) {
		reply := packet.NewUDP(pkt.FiveTuple().Reverse(), pkt.PayloadLen)
		reply.IPID = pkt.IPID // echo carries the probe identifier back
		reply.FlowTag = pkt.FlowTag
		h.SendPacket(reply)
	}
}
