package trafficgen

import (
	"net/netip"
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/tcp"
)

// wire is a minimal two-host network joined by a forwarding node.
type wire struct {
	engine *simtime.Engine
	a, b   *tcp.Host
}

type fwd struct {
	toA, toB *netsim.Link
	aIP      netip.Addr
}

func (f *fwd) Name() string { return "fwd" }
func (f *fwd) Receive(p *packet.Packet, _ *netsim.Link) {
	if p.DstIP == f.aIP {
		f.toA.Send(p)
	} else {
		f.toB.Send(p)
	}
}

func newWire() *wire {
	e := simtime.NewEngine()
	a := tcp.NewHost(e, "a", packet.MustAddr("10.0.0.1"))
	b := tcp.NewHost(e, "b", packet.MustAddr("10.0.0.2"))
	f := &fwd{aIP: a.IP()}
	a.AttachUplink(netsim.NewLink(e, "a-up", f, netsim.Mbps(100), simtime.Millisecond, nil))
	b.AttachUplink(netsim.NewLink(e, "b-up", f, netsim.Mbps(100), simtime.Millisecond, nil))
	f.toA = netsim.NewLink(e, "to-a", a, netsim.Mbps(100), simtime.Millisecond, nil)
	f.toB = netsim.NewLink(e, "to-b", b, netsim.Mbps(100), simtime.Millisecond, nil)
	return &wire{engine: e, a: a, b: b}
}

func TestTransferSizedCompletes(t *testing.T) {
	w := newWire()
	h := Transfer{
		From:         w.a,
		To:           w.b,
		Bytes:        500_000,
		Start:        simtime.Millisecond,
		SenderConfig: tcp.Config{MSS: 1448},
	}.Launch(w.engine)
	w.engine.Run(30 * simtime.Second)
	if !h.Completed {
		t.Fatal("transfer did not complete")
	}
	if h.Conn.Stats.BytesAcked != 500_000 {
		t.Fatalf("acked %d", h.Conn.Stats.BytesAcked)
	}
	if g := h.GoodputBps(w.engine.Now()); g <= 0 {
		t.Fatalf("goodput %f", g)
	}
}

func TestTransferTimedCompletes(t *testing.T) {
	w := newWire()
	var completed *Handle
	h := Transfer{
		From:         w.a,
		To:           w.b,
		Start:        0,
		Duration:     2 * simtime.Second,
		SenderConfig: tcp.Config{MSS: 1448},
	}.Launch(w.engine)
	h.OnComplete = func(x *Handle) { completed = x }
	w.engine.Run(30 * simtime.Second)
	if completed == nil {
		t.Fatal("timed transfer did not complete")
	}
	if h.CompletedAt < 2*simtime.Second {
		t.Fatalf("completed too early: %v", h.CompletedAt)
	}
}

func TestTransferDefaultPort(t *testing.T) {
	w := newWire()
	h := Transfer{From: w.a, To: w.b, Bytes: 1000, SenderConfig: tcp.Config{MSS: 1448}}.Launch(w.engine)
	w.engine.Run(10 * simtime.Second)
	if !h.Completed {
		t.Fatal("transfer with default port failed")
	}
	if h.Conn.FiveTuple().DstPort != 5201 {
		t.Fatalf("port %d, want iperf3 default 5201", h.Conn.FiveTuple().DstPort)
	}
}

func TestBurstDeliversTrain(t *testing.T) {
	w := newWire()
	var got int
	w.b.OnUDP = func(p *packet.Packet) {
		if p.FlowTag == "burst" {
			got++
		}
	}
	Burst{
		From:    w.a,
		DstIP:   w.b.IP(),
		Count:   100,
		Payload: 1200,
		At:      simtime.Millisecond,
		Tag:     "burst",
	}.Launch(w.engine)
	w.engine.Run(simtime.Second)
	if got != 100 {
		t.Fatalf("delivered %d burst packets", got)
	}
}

func TestBurstBackToBack(t *testing.T) {
	// Burst packets are handed to the NIC in the same instant and
	// serialise back to back: arrival spacing equals serialisation.
	w := newWire()
	var arrivals []simtime.Time
	w.b.OnUDP = func(p *packet.Packet) { arrivals = append(arrivals, w.engine.Now()) }
	Burst{From: w.a, DstIP: w.b.IP(), Count: 10, Payload: 1208, At: 0}.Launch(w.engine)
	w.engine.Run(simtime.Second)
	if len(arrivals) != 10 {
		t.Fatalf("arrivals %d", len(arrivals))
	}
	want := simtime.Time(float64(1250*8) / netsim.Mbps(100) * 1e9) // 1250 wire bytes
	for i := 1; i < len(arrivals); i++ {
		if d := arrivals[i] - arrivals[i-1]; d != want {
			t.Fatalf("spacing %v, want %v", d, want)
		}
	}
}

func TestBurstPanicsOnBadArgs(t *testing.T) {
	w := newWire()
	defer func() {
		if recover() == nil {
			t.Fatal("zero count must panic")
		}
	}()
	Burst{From: w.a, DstIP: w.b.IP(), Count: 0, Payload: 100, At: 0}.Launch(w.engine)
}

func TestEchoResponder(t *testing.T) {
	w := newWire()
	EchoResponder(w.b)
	var echoed *packet.Packet
	w.a.OnUDP = func(p *packet.Packet) { echoed = p }
	ft := packet.FiveTuple{
		SrcIP: w.a.IP(), DstIP: w.b.IP(),
		SrcPort: 9999, DstPort: 9999, Proto: packet.ProtoUDP,
	}
	probe := packet.NewUDP(ft, 64)
	probe.IPID = 77
	w.engine.Schedule(0, func() { w.a.SendPacket(probe) })
	w.engine.Run(simtime.Second)
	if echoed == nil {
		t.Fatal("no echo")
	}
	if echoed.IPID != 77 {
		t.Fatalf("echo lost the probe id: %d", echoed.IPID)
	}
	if echoed.SrcIP != w.b.IP() || echoed.DstIP != w.a.IP() {
		t.Fatal("echo direction wrong")
	}
}
