// Package faultnet provides deterministic network fault injection for
// testing the report-shipping path. Real outages are timing-dependent
// and unreproducible; faultnet instead scripts faults by *byte offset*
// and *operation count*, so a test that says "reset the connection
// after 100 bytes, refuse the next 3 dials" observes exactly the same
// failure sequence on every run.
//
// The building blocks:
//
//   - Listener: an in-memory net.Listener whose Accept side hands out
//     the server half of a net.Pipe. Because net.Pipe is synchronous, a
//     Write that returns success has *delivered* its bytes to the
//     reader — there is no kernel buffer to hide loss in — which is
//     what makes exact delivered-count assertions possible.
//   - Conn / Wrap: a net.Conn wrapper that applies a Script of write
//     faults (reset at a byte offset, partial write, stall).
//   - Listener.Refuse / RefuseNext: scripted dial failures.
//   - Listener.CutAll: kill every live connection, simulating the
//     archiver process dying mid-run.
//
// faultnet is a test harness: nothing in it is used on production
// paths.
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrRefused is returned by Dial while the listener is refusing
// connections (scripted outage).
var ErrRefused = errors.New("faultnet: connection refused (scripted)")

// ErrReset is returned by a faulty Write when a scripted reset fires.
var ErrReset = errors.New("faultnet: connection reset (scripted)")

// FaultKind selects what happens when a scripted fault triggers.
type FaultKind int

const (
	// Reset tears the connection down once AfterBytes bytes have been
	// written: the triggering Write delivers only the bytes up to the
	// offset, both pipe halves close, and the Write returns ErrReset.
	// A mid-record offset therefore leaves the reader holding a
	// partial line — exactly the torn-write case the archiver input
	// must survive.
	Reset FaultKind = iota
	// Stall sleeps for Delay once the offset is reached, then delivers
	// the rest of the Write. Combined with a write deadline shorter
	// than Delay, the post-stall delivery fails with a timeout — the
	// hung-archiver case.
	Stall
)

// Fault is one scripted write fault on a connection.
type Fault struct {
	// AfterBytes triggers the fault once this many bytes have been
	// successfully written on the connection (cumulative across
	// Writes).
	AfterBytes int
	// Kind selects the behaviour at the trigger point.
	Kind FaultKind
	// Delay is the stall duration for Kind == Stall.
	Delay time.Duration
}

// Script is an ordered list of faults, consumed front to back. Faults
// must be ordered by AfterBytes.
type Script []Fault

// Conn wraps a net.Conn and applies a write-fault script. Reads pass
// through untouched. Conn is safe for the usual one-writer/one-reader
// pattern; Write itself is serialised by an internal mutex.
type Conn struct {
	net.Conn

	mu      sync.Mutex
	script  Script
	written int // bytes successfully written so far
}

// Wrap returns conn with the given write-fault script applied.
func Wrap(conn net.Conn, script Script) *Conn {
	return &Conn{Conn: conn, script: script}
}

// Written returns the number of bytes successfully written so far.
func (c *Conn) Written() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.written
}

// Write delivers b to the underlying connection, honouring the fault
// script. It returns the number of bytes actually delivered.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for {
		if len(c.script) == 0 {
			n, err := c.Conn.Write(b[total:])
			c.written += n
			return total + n, err
		}
		f := c.script[0]
		remaining := f.AfterBytes - c.written
		if remaining > len(b)-total {
			// The fault lies beyond this Write.
			n, err := c.Conn.Write(b[total:])
			c.written += n
			return total + n, err
		}
		// Deliver up to the fault offset, then fire it.
		if remaining > 0 {
			n, err := c.Conn.Write(b[total : total+remaining])
			c.written += n
			total += n
			if err != nil {
				return total, err
			}
		}
		c.script = c.script[1:]
		switch f.Kind {
		case Reset:
			_ = c.Conn.Close() // scripted teardown; the reset error is the result
			return total, ErrReset
		case Stall:
			time.Sleep(f.Delay)
			// Loop: deliver the remainder (the underlying conn's
			// write deadline, if set, applies and may now have
			// expired — that is the point of a stall fault).
		default:
			return total, fmt.Errorf("faultnet: unknown fault kind %d", f.Kind)
		}
	}
}

// Listener is an in-memory net.Listener with scripted dial outcomes.
// Servers Accept from it; clients obtain connections with Dial. The
// zero value is not usable — call NewListener.
type Listener struct {
	mu       sync.Mutex
	closed   bool
	refusing bool
	refuseN  int      // refuse the next N dials (counts down)
	scripts  []Script // consumed per successful dial, applied client-side
	conns    []net.Conn
	dials    int // total Dial attempts, for assertions

	backlog chan net.Conn
}

// NewListener returns a listener with an accept backlog of 16.
func NewListener() *Listener {
	return &Listener{backlog: make(chan net.Conn, 16)}
}

// Refuse switches scripted refusal on or off: while on, every Dial
// fails with ErrRefused (the archiver host is down).
func (l *Listener) Refuse(v bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refusing = v
}

// RefuseNext makes the next n Dial calls fail with ErrRefused, then
// dials succeed again.
func (l *Listener) RefuseNext(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refuseN = n
}

// ScriptNext queues a write-fault script; each successful Dial consumes
// one queued script (FIFO) and applies it to the client half. Dials
// beyond the queue get fault-free connections.
func (l *Listener) ScriptNext(scripts ...Script) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.scripts = append(l.scripts, scripts...)
}

// Dials returns the total number of Dial attempts so far, including
// refused ones.
func (l *Listener) Dials() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dials
}

// Dial returns the client half of a new connection, or ErrRefused
// while refusal is scripted. The returned conn applies the next queued
// fault script, if any.
func (l *Listener) Dial() (net.Conn, error) {
	l.mu.Lock()
	l.dials++
	if l.closed {
		l.mu.Unlock()
		return nil, net.ErrClosed
	}
	if l.refusing {
		l.mu.Unlock()
		return nil, ErrRefused
	}
	if l.refuseN > 0 {
		l.refuseN--
		l.mu.Unlock()
		return nil, ErrRefused
	}
	var script Script
	if len(l.scripts) > 0 {
		script = l.scripts[0]
		l.scripts = l.scripts[1:]
	}
	l.mu.Unlock()

	client, server := net.Pipe()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		_ = client.Close()
		_ = server.Close()
		return nil, net.ErrClosed
	}
	// The non-blocking send happens under mu so Close (which closes
	// the backlog channel under the same lock ordering) cannot race a
	// send-on-closed-channel panic.
	select {
	case l.backlog <- server:
		l.conns = append(l.conns, client, server)
	default:
		l.mu.Unlock()
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("faultnet: accept backlog full")
	}
	l.mu.Unlock()
	if script != nil {
		return Wrap(client, script), nil
	}
	return client, nil
}

// CutAll closes every live connection without touching the listener:
// the archiver process died, but the port may come back.
func (l *Listener) CutAll() {
	l.mu.Lock()
	conns := l.conns
	l.conns = nil
	l.mu.Unlock()
	for _, c := range conns {
		_ = c.Close() // scripted outage; errors are the point
	}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, ok := <-l.backlog
	if !ok {
		return nil, net.ErrClosed
	}
	return c, nil
}

// Close implements net.Listener: pending and future Accepts fail and
// all live connections are cut.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.backlog)
	l.CutAll()
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return pipeAddr{} }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "faultnet" }
func (pipeAddr) String() string  { return "faultnet:mem" }
