package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// reader drains a conn into a buffer on a background goroutine
// (net.Pipe writes block until read).
type reader struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	done chan struct{}
}

func drain(c net.Conn) *reader {
	r := &reader{done: make(chan struct{})}
	go func() {
		defer close(r.done)
		tmp := make([]byte, 4096)
		for {
			n, err := c.Read(tmp)
			if n > 0 {
				r.mu.Lock()
				r.buf.Write(tmp[:n])
				r.mu.Unlock()
			}
			if err != nil {
				return
			}
		}
	}()
	return r
}

func (r *reader) bytes() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.buf.Bytes()...)
}

func TestDialAcceptRoundTrip(t *testing.T) {
	l := NewListener()
	defer l.Close()

	go func() {
		c, err := l.Dial()
		if err != nil {
			t.Error(err)
			return
		}
		c.Write([]byte("hello"))
		c.Close()
	}()
	s, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(s)
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestRefuseNextIsExact(t *testing.T) {
	l := NewListener()
	defer l.Close()
	l.RefuseNext(2)
	for i := 0; i < 2; i++ {
		if _, err := l.Dial(); !errors.Is(err, ErrRefused) {
			t.Fatalf("dial %d: want ErrRefused, got %v", i, err)
		}
	}
	c, err := l.Dial()
	if err != nil {
		t.Fatalf("third dial should succeed: %v", err)
	}
	c.Close()
	if l.Dials() != 3 {
		t.Fatalf("dials=%d, want 3", l.Dials())
	}
}

func TestRefuseToggle(t *testing.T) {
	l := NewListener()
	defer l.Close()
	l.Refuse(true)
	if _, err := l.Dial(); !errors.Is(err, ErrRefused) {
		t.Fatalf("want ErrRefused, got %v", err)
	}
	l.Refuse(false)
	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestResetDeliversExactlyUpToOffset(t *testing.T) {
	l := NewListener()
	defer l.Close()
	l.ScriptNext(Script{{AfterBytes: 7, Kind: Reset}})

	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	s, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	r := drain(s)

	n, werr := c.Write([]byte("0123456789"))
	if n != 7 || !errors.Is(werr, ErrReset) {
		t.Fatalf("write: n=%d err=%v, want 7/ErrReset", n, werr)
	}
	<-r.done // reader sees EOF because the pipe closed
	if got := r.bytes(); string(got) != "0123456" {
		t.Fatalf("delivered %q, want %q", got, "0123456")
	}
	// The connection is dead for subsequent writes too.
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write after reset must fail")
	}
}

func TestResetAcrossMultipleWrites(t *testing.T) {
	l := NewListener()
	defer l.Close()
	l.ScriptNext(Script{{AfterBytes: 10, Kind: Reset}})

	c, _ := l.Dial()
	s, _ := l.Accept()
	r := drain(s)

	if n, err := c.Write([]byte("abcdef")); n != 6 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err := c.Write([]byte("ghijkl"))
	if n != 4 || !errors.Is(err, ErrReset) {
		t.Fatalf("second write: n=%d err=%v, want 4/ErrReset", n, err)
	}
	<-r.done
	if got := r.bytes(); string(got) != "abcdefghij" {
		t.Fatalf("delivered %q", got)
	}
}

func TestStallHonoursWriteDeadline(t *testing.T) {
	l := NewListener()
	defer l.Close()
	l.ScriptNext(Script{{AfterBytes: 3, Kind: Stall, Delay: 50 * time.Millisecond}})

	c, _ := l.Dial()
	s, _ := l.Accept()
	drain(s)

	fc := c.(*Conn)
	fc.SetWriteDeadline(time.Now().Add(5 * time.Millisecond))
	n, err := fc.Write([]byte("abcdef"))
	if err == nil {
		t.Fatalf("stalled write must miss its deadline (n=%d)", n)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want timeout error, got %v", err)
	}
	if n != 3 {
		t.Fatalf("delivered %d bytes before the stall, want 3", n)
	}
}

func TestCutAllKillsLiveConns(t *testing.T) {
	l := NewListener()
	defer l.Close()
	c, _ := l.Dial()
	s, _ := l.Accept()
	r := drain(s)
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	l.CutAll()
	<-r.done
	if _, err := c.Write([]byte("dead")); err == nil {
		t.Fatal("write after CutAll must fail")
	}
	if got := r.bytes(); string(got) != "ok" {
		t.Fatalf("delivered %q", got)
	}
	// The listener itself still works.
	c2, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c2.Close()
}

func TestCloseRefusesDialsAndUnblocksAccept(t *testing.T) {
	l := NewListener()
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	if err := <-done; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("accept after close: %v", err)
	}
	if _, err := l.Dial(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("dial after close: %v", err)
	}
	// Idempotent.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicFaultSequence(t *testing.T) {
	// The same script must produce byte-identical delivery on every
	// run — the property the chaos tests rely on.
	run := func() string {
		l := NewListener()
		defer l.Close()
		l.ScriptNext(Script{{AfterBytes: 5, Kind: Reset}}, Script{{AfterBytes: 2, Kind: Reset}})
		var all []byte
		for i := 0; i < 3; i++ {
			c, err := l.Dial()
			if err != nil {
				t.Fatal(err)
			}
			s, _ := l.Accept()
			r := drain(s)
			c.Write([]byte("0123456789"))
			c.Close()
			<-r.done
			all = append(all, r.bytes()...)
			all = append(all, '|')
		}
		return string(all)
	}
	a, b := run(), run()
	if a != b || a != "01234|01|0123456789|" {
		t.Fatalf("non-deterministic or wrong delivery: %q vs %q", a, b)
	}
}
