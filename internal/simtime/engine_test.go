package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run(100)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 100 {
		t.Fatalf("clock should land on until: %v", e.Now())
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run(10)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(10, func() {
		fired = append(fired, e.Now())
		e.Schedule(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run(100)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("nested scheduling wrong: %v", fired)
	}
}

func TestEngineRunStopsAtBoundary(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(50, func() { ran = true })
	e.Run(49)
	if ran {
		t.Fatal("event beyond until must not run")
	}
	if e.Pending() != 1 {
		t.Fatalf("event should remain queued, pending=%d", e.Pending())
	}
	e.Run(50)
	if !ran {
		t.Fatal("event at boundary must run")
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run(20)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past must panic")
		}
	}()
	e.At(5, func() {})
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() { count++; e.Stop() })
	e.Schedule(2, func() { count++ })
	e.Run(10)
	if count != 1 {
		t.Fatalf("Stop should halt the loop, count=%d", count)
	}
}

func TestEngineNegativeDelayClamps(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		fired := false
		e.Schedule(-5, func() { fired = true })
		_ = fired
	})
	e.Run(20) // must not panic
}

func TestTickerFiresPeriodically(t *testing.T) {
	e := NewEngine()
	var at []Time
	NewTicker(e, 100, 50, func(now Time) { at = append(at, now) })
	e.Run(300)
	want := []Time{100, 150, 200, 250, 300}
	if len(at) != len(want) {
		t.Fatalf("got %d firings %v, want %v", len(at), at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("firing %d at %v, want %v", i, at[i], want[i])
		}
	}
}

func TestTickerSetIntervalEscalation(t *testing.T) {
	// The control plane escalates the reporting rate from inside the
	// tick callback when an alert threshold trips; the new interval
	// must take effect for the very next firing.
	e := NewEngine()
	var at []Time
	var tk *Ticker
	tk = NewTicker(e, 0, 100, func(now Time) {
		at = append(at, now)
		if now == 100 {
			tk.SetInterval(10)
		}
	})
	e.Run(130)
	want := []Time{0, 100, 110, 120, 130}
	if len(at) != len(want) {
		t.Fatalf("got %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("firing %d at %v, want %v", i, at[i], want[i])
		}
	}
	if tk.Interval() != 10 {
		t.Fatalf("interval not updated: %v", tk.Interval())
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	n := 0
	tk := NewTicker(e, 0, 10, func(Time) { n++ })
	e.Run(25)
	tk.Stop()
	e.Run(100)
	if n != 3 {
		t.Fatalf("ticker kept firing after Stop: n=%d", n)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		5:               "5ns",
		1500:            "1.500us",
		2 * Millisecond: "2.000ms",
		3 * Second:      "3.000000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestDurationConversion(t *testing.T) {
	if Duration(time.Millisecond) != Millisecond {
		t.Fatal("Duration conversion wrong")
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Seconds conversion wrong")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same stream")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("uniform mean off: %f", mean)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(3.0)
	}
	mean := sum / n
	if mean < 2.9 || mean > 3.1 {
		t.Fatalf("exponential mean off: %f", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(5)
	child := parent.Fork()
	// The child stream must not simply replay the parent stream.
	p2 := NewRNG(5)
	p2.Uint64() // consume what Fork consumed
	same := 0
	for i := 0; i < 100; i++ {
		if child.Uint64() == p2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked stream tracks parent (%d collisions)", same)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%1000), func() {})
		if e.Pending() > 10000 {
			e.RunAll()
		}
	}
	e.RunAll()
}
