package simtime

import "math"

// RNG is a small, fast, deterministic random number generator
// (SplitMix64). The simulator cannot use math/rand's global source or
// wall-clock seeding: every run must be reproducible from an explicit
// seed so that experiments regenerate the same figures.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simtime: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Fork derives an independent generator from this one. Components that
// need their own stream (per-link loss, per-flow jitter) fork the
// scenario RNG so that adding a component does not perturb the streams
// of existing ones.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}
