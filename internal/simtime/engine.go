// Package simtime provides the deterministic discrete-event engine that
// drives every simulation in this repository. Time is virtual and measured
// in integer nanoseconds; events scheduled for the same instant fire in
// the order they were scheduled, which makes whole-system runs
// reproducible bit-for-bit given the same seed.
package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation. It intentionally mirrors the nanosecond granularity of the
// Tofino switch clock the paper relies on.
type Time int64

// Common durations, expressed in Time units for convenience.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts a standard library duration to simulation time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns the timestamp as floating-point seconds, the unit used
// on the x axis of every figure in the paper.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns the timestamp as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String renders the time compactly for logs and reports.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// event is a scheduled callback. seq breaks ties so that events scheduled
// earlier at the same timestamp run first.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all simulated components run on the engine's
// goroutine, which is what makes runs deterministic.
type Engine struct {
	pq      eventHeap
	now     Time
	seq     uint64
	stopped bool

	// Processed counts events executed; useful for benchmarks and as a
	// runaway guard in tests.
	Processed uint64
}

// NewEngine returns an engine positioned at time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.pq)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay. A negative delay is treated as zero
// (fires at the current instant, after already-queued same-instant
// events).
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At runs fn at the absolute virtual time t. Scheduling in the past is a
// programming error and panics: silently reordering history would make
// simulation results meaningless.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("simtime: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.pq, event{at: t, seq: e.seq, fn: fn})
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue drains or the
// next event lies strictly beyond until. The clock is left at until (or
// at the last executed event if the queue drained earlier than until).
func (e *Engine) Run(until Time) {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped {
		next := e.pq[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.pq)
		e.now = next.at
		e.Processed++
		next.fn()
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
}

// RunAll executes every queued event regardless of timestamp. Use only
// in tests with a bounded event population.
func (e *Engine) RunAll() {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped {
		next := heap.Pop(&e.pq).(event)
		e.now = next.at
		e.Processed++
		next.fn()
	}
}

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.pq) }

// Ticker repeatedly invokes fn every interval starting at start, until
// cancel is called. It is the building block for the control plane's
// periodic register extraction.
type Ticker struct {
	engine   *Engine
	interval Time
	fn       func(Time)
	stopped  bool
}

// NewTicker schedules fn to run at start and then every interval.
// interval must be positive.
func NewTicker(e *Engine, start, interval Time, fn func(Time)) *Ticker {
	if interval <= 0 {
		panic("simtime: ticker interval must be positive")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	e.At(start, t.tick)
	return t
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn(t.engine.Now())
	if !t.stopped {
		t.engine.Schedule(t.interval, t.tick)
	}
}

// SetInterval changes the period applied after the next firing. This is
// how the control plane escalates the reporting rate when an alert
// threshold is exceeded.
func (t *Ticker) SetInterval(interval Time) {
	if interval <= 0 {
		panic("simtime: ticker interval must be positive")
	}
	t.interval = interval
}

// Interval returns the current period.
func (t *Ticker) Interval() Time { return t.interval }

// Stop cancels future firings.
func (t *Ticker) Stop() { t.stopped = true }
