// Package simtime provides the deterministic discrete-event engine that
// drives every simulation in this repository. Time is virtual and measured
// in integer nanoseconds; events scheduled for the same instant fire in
// the order they were scheduled, which makes whole-system runs
// reproducible bit-for-bit given the same seed.
//
// The engine is the hottest code in the repository — every packet
// serialisation, propagation, TAP delivery and control-plane tick passes
// through it — so the queue is a typed, inlined 4-ary min-heap rather
// than container/heap: no interface boxing on push/pop, no indirect
// Less/Swap calls, and the backing slice doubles as its own free list
// (pop only shortens the length, so at steady state no event ever
// allocates). See DESIGN.md "Scheduler determinism contract" for why
// this preserves the seed-for-seed reproducibility guarantee.
package simtime

import (
	"fmt"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation. It intentionally mirrors the nanosecond granularity of the
// Tofino switch clock the paper relies on.
type Time int64

// Common durations, expressed in Time units for convenience.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts a standard library duration to simulation time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds returns the timestamp as floating-point seconds, the unit used
// on the x axis of every figure in the paper.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns the timestamp as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String renders the time compactly for logs and reports.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// CallFunc is an argument-carrying callback: the scheduled fire time plus
// two opaque arguments supplied at scheduling time. Hot senders (links,
// TAPs) use package-level CallFunc values with AtCall so that scheduling
// a packet costs no closure allocation — the arguments ride in the event
// itself.
type CallFunc func(now Time, a, b any)

// event is a scheduled callback. seq breaks ties so that events scheduled
// earlier at the same timestamp run first. Exactly one of fn and call is
// set: fn is the ordinary closure path, call the allocation-free
// argument-carrying path.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	call CallFunc
	a, b any
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all simulated components run on the engine's
// goroutine, which is what makes runs deterministic.
type Engine struct {
	// pq is a 4-ary min-heap ordered by (at, seq). The slice is the
	// event free list: pop shortens the length and clears the vacated
	// slot, push reuses the retained capacity, so a warmed engine
	// schedules without allocating.
	pq      []event
	now     Time
	seq     uint64
	stopped bool

	// Processed counts events executed; useful for benchmarks and as a
	// runaway guard in tests.
	Processed uint64
}

// NewEngine returns an engine positioned at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Reserve pre-sizes the event queue for at least n outstanding events,
// avoiding growth reallocations during warm-up.
func (e *Engine) Reserve(n int) {
	if cap(e.pq) < n {
		pq := make([]event, len(e.pq), n)
		copy(pq, e.pq)
		e.pq = pq
	}
}

// less orders events by timestamp, then by scheduling sequence — the
// FIFO-within-instant rule every simulation relies on.
//
// p4:hotpath
func (e *Engine) less(i, j int) bool {
	if e.pq[i].at != e.pq[j].at {
		return e.pq[i].at < e.pq[j].at
	}
	return e.pq[i].seq < e.pq[j].seq
}

// push appends ev and restores the 4-ary heap invariant. It sifts a
// hole up rather than swapping: parents shift down one copy per level
// and ev lands exactly once, instead of three 72-byte event moves per
// level. Ordering is unchanged — the hole stops exactly where the
// swapping loop would have left ev.
//
// p4:hotpath
func (e *Engine) push(ev event) {
	e.pq = append(e.pq, ev)
	pq := e.pq
	i := len(pq) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if pq[parent].at < ev.at || (pq[parent].at == ev.at && pq[parent].seq < ev.seq) {
			break
		}
		pq[i] = pq[parent]
		i = parent
	}
	pq[i] = ev
}

// pop removes and returns the minimum event (sift-down). The vacated
// tail slot is cleared so popped closures and arguments do not pin their
// referents against the garbage collector while the slot waits on the
// free list. Like push, it sifts a hole down against the detached tail
// event's (at, seq) key held in registers: one event copy per level
// instead of a three-copy swap, with the tail landing exactly where the
// swapping loop would have put it.
//
// p4:hotpath
func (e *Engine) pop() event {
	pq := e.pq
	n := len(pq) - 1
	top := pq[0]
	tail := pq[n]
	pq[n] = event{} // release references; the slot stays on the free list
	e.pq = pq[:n]
	tailAt, tailSeq := tail.at, tail.seq
	i := 0
	for {
		// Children of i occupy 4i+1 .. 4i+4.
		first := i<<2 + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		min := first
		minAt, minSeq := pq[min].at, pq[min].seq
		for c := first + 1; c < last; c++ {
			if pq[c].at < minAt || (pq[c].at == minAt && pq[c].seq < minSeq) {
				min, minAt, minSeq = c, pq[c].at, pq[c].seq
			}
		}
		if minAt > tailAt || (minAt == tailAt && minSeq > tailSeq) {
			break
		}
		pq[i] = pq[min]
		i = min
	}
	if n > 0 {
		pq[i] = tail
	}
	return top
}

// Schedule runs fn after delay. A negative delay is treated as zero
// (fires at the current instant, after already-queued same-instant
// events).
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At runs fn at the absolute virtual time t. Scheduling in the past is a
// programming error and panics: silently reordering history would make
// simulation results meaningless.
//
// p4:hotpath
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("simtime: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// AtCall runs call(t, a, b) at the absolute virtual time t. Unlike At,
// the callback carries its arguments in the event itself, so a
// package-level CallFunc schedules without allocating a closure — the
// per-packet path links and TAPs use. Pointer-shaped arguments (pointers,
// maps, channels) also avoid the interface boxing allocation; do not pass
// structs by value here.
//
// p4:hotpath
func (e *Engine) AtCall(t Time, call CallFunc, a, b any) {
	if t < e.now {
		panic(fmt.Sprintf("simtime: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, call: call, a: a, b: b})
}

// ScheduleCall runs call(now+delay, a, b) after delay, clamping negative
// delays to zero like Schedule.
func (e *Engine) ScheduleCall(delay Time, call CallFunc, a, b any) {
	if delay < 0 {
		delay = 0
	}
	e.AtCall(e.now+delay, call, a, b)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue drains or the
// next event lies strictly beyond until. The clock is left at until (or
// at the last executed event if the queue drained earlier than until).
func (e *Engine) Run(until Time) {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped {
		if e.pq[0].at > until {
			break
		}
		next := e.pop()
		e.now = next.at
		e.Processed++
		if next.fn != nil {
			next.fn()
		} else {
			next.call(next.at, next.a, next.b)
		}
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
}

// RunAll executes every queued event regardless of timestamp. Use only
// in tests with a bounded event population.
func (e *Engine) RunAll() {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped {
		next := e.pop()
		e.now = next.at
		e.Processed++
		if next.fn != nil {
			next.fn()
		} else {
			next.call(next.at, next.a, next.b)
		}
	}
}

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.pq) }

// Ticker repeatedly invokes fn every interval starting at start, until
// cancel is called. It is the building block for the control plane's
// periodic register extraction. The rescheduling callback is materialised
// once at construction and reused for every firing — rescheduling in
// place costs one heap push and zero allocations per tick.
type Ticker struct {
	engine   *Engine
	interval Time
	fn       func(Time)
	tickFn   func() // bound once; reused every reschedule
	stopped  bool
}

// NewTicker schedules fn to run at start and then every interval.
// interval must be positive.
func NewTicker(e *Engine, start, interval Time, fn func(Time)) *Ticker {
	if interval <= 0 {
		panic("simtime: ticker interval must be positive")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.tickFn = t.tick
	e.At(start, t.tickFn)
	return t
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn(t.engine.Now())
	if !t.stopped {
		t.engine.Schedule(t.interval, t.tickFn)
	}
}

// SetInterval changes the period applied after the next firing. This is
// how the control plane escalates the reporting rate when an alert
// threshold is exceeded.
func (t *Ticker) SetInterval(interval Time) {
	if interval <= 0 {
		panic("simtime: ticker interval must be positive")
	}
	t.interval = interval
}

// Interval returns the current period.
func (t *Ticker) Interval() Time { return t.interval }

// Stop cancels future firings.
func (t *Ticker) Stop() { t.stopped = true }

// Timer is a resettable one-shot timer. Unlike scheduling a fresh
// closure per arm (the pattern TCP's retransmission timer used), a Timer
// materialises its engine callback once and lazily re-targets pending
// events: re-arming before expiry costs no allocation, and usually no
// new event either. Stale events fire as no-ops.
//
// The semantics match a conventional resettable timer: after Reset(d)
// the callback fires exactly once at now+d unless Reset or Stop
// intervenes first.
type Timer struct {
	engine *Engine
	fn     func()
	fireFn func() // bound once

	deadline Time
	armed    bool
	// pendingAt is the earliest outstanding engine event for this timer
	// (0 when none). Events later than the current deadline are
	// superseded by scheduling an earlier one; superseded events no-op.
	pendingAt Time
	pending   bool
}

// NewTimer creates a disarmed timer that runs fn on expiry.
func NewTimer(e *Engine, fn func()) *Timer {
	t := &Timer{engine: e, fn: fn}
	t.fireFn = t.fire
	return t
}

// Reset (re)arms the timer to fire after d, replacing any earlier
// deadline. Non-positive d fires at the current instant (after queued
// same-instant events).
func (t *Timer) Reset(d Time) {
	if d < 0 {
		d = 0
	}
	t.deadline = t.engine.Now() + d
	t.armed = true
	if !t.pending || t.pendingAt > t.deadline {
		t.pending = true
		t.pendingAt = t.deadline
		t.engine.At(t.deadline, t.fireFn)
	}
}

// Stop disarms the timer. A pending engine event may still fire but will
// find the timer disarmed and do nothing.
func (t *Timer) Stop() { t.armed = false }

// Armed reports whether the timer is waiting to fire.
func (t *Timer) Armed() bool { return t.armed }

func (t *Timer) fire() {
	t.pending = false
	t.pendingAt = 0
	if !t.armed {
		return
	}
	now := t.engine.Now()
	if now < t.deadline {
		// Re-armed to a later deadline since this event was scheduled:
		// chase it.
		t.pending = true
		t.pendingAt = t.deadline
		t.engine.At(t.deadline, t.fireFn)
		return
	}
	t.armed = false
	t.fn()
}
