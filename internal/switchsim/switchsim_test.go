package switchsim

import (
	"net/netip"
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/simtime"
)

func mkPkt(dst string, payload int) *packet.Packet {
	ft := packet.FiveTuple{
		SrcIP:   packet.MustAddr("10.0.0.1"),
		DstIP:   packet.MustAddr(dst),
		SrcPort: 1000,
		DstPort: 2000,
		Proto:   packet.ProtoTCP,
	}
	return packet.NewTCP(ft, 0, 0, packet.FlagACK, payload)
}

func TestSwitchRoutesByPrefix(t *testing.T) {
	e := simtime.NewEngine()
	sw := New(e, "core")
	sinkA := &netsim.Sink{Label: "a"}
	sinkB := &netsim.Sink{Label: "b"}
	la := netsim.NewLink(e, "to-a", sinkA, netsim.Gbps(10), 0, nil)
	lb := netsim.NewLink(e, "to-b", sinkB, netsim.Gbps(10), 0, nil)
	sw.AddRoute(netip.MustParsePrefix("192.168.1.0/24"), la, 0)
	sw.AddRoute(netip.MustParsePrefix("192.168.2.0/24"), lb, 0)

	sw.Receive(mkPkt("192.168.1.5", 100), nil)
	sw.Receive(mkPkt("192.168.2.5", 100), nil)
	sw.Receive(mkPkt("192.168.2.6", 100), nil)
	e.Run(simtime.Second)
	if sinkA.Packets != 1 || sinkB.Packets != 2 {
		t.Fatalf("a=%d b=%d", sinkA.Packets, sinkB.Packets)
	}
}

func TestSwitchLongestPrefixWins(t *testing.T) {
	e := simtime.NewEngine()
	sw := New(e, "core")
	wide := &netsim.Sink{Label: "wide"}
	narrow := &netsim.Sink{Label: "narrow"}
	lw := netsim.NewLink(e, "wide", wide, netsim.Gbps(10), 0, nil)
	ln := netsim.NewLink(e, "narrow", narrow, netsim.Gbps(10), 0, nil)
	sw.AddRoute(netip.MustParsePrefix("192.168.0.0/16"), lw, 0)
	sw.AddRoute(netip.MustParsePrefix("192.168.7.0/24"), ln, 0)
	sw.Receive(mkPkt("192.168.7.1", 10), nil)
	sw.Receive(mkPkt("192.168.8.1", 10), nil)
	e.Run(simtime.Second)
	if narrow.Packets != 1 || wide.Packets != 1 {
		t.Fatalf("narrow=%d wide=%d", narrow.Packets, wide.Packets)
	}
}

func TestSwitchUnroutableDropped(t *testing.T) {
	e := simtime.NewEngine()
	sw := New(e, "core")
	sw.Receive(mkPkt("8.8.8.8", 10), nil)
	if sw.Unroutable != 1 {
		t.Fatal("unroutable packet not counted")
	}
}

func TestSwitchDropTailBuffer(t *testing.T) {
	e := simtime.NewEngine()
	sw := New(e, "core")
	sink := &netsim.Sink{Label: "s"}
	// Slow link so the queue builds instantly.
	l := netsim.NewLink(e, "out", sink, netsim.Mbps(8), 0, nil)
	p := mkPkt("192.168.1.2", 946) // 1000 wire bytes
	port := sw.AddRoute(netip.MustParsePrefix("192.168.1.0/24"), l, 3000)

	for i := 0; i < 5; i++ {
		sw.Receive(p.Clone(), nil)
	}
	// Buffer holds 3 packets of 1000 bytes; 2 dropped.
	if port.DroppedPackets != 2 {
		t.Fatalf("dropped %d, want 2", port.DroppedPackets)
	}
	if port.Occupancy() != 3000 {
		t.Fatalf("occupancy %d, want 3000", port.Occupancy())
	}
	e.Run(simtime.Second)
	if sink.Packets != 3 {
		t.Fatalf("delivered %d, want 3", sink.Packets)
	}
	if port.Occupancy() != 0 {
		t.Fatalf("queue should drain to 0, got %d", port.Occupancy())
	}
	if port.PeakQueueBytes != 3000 {
		t.Fatalf("peak %d, want 3000", port.PeakQueueBytes)
	}
}

func TestSwitchTapsSeeQueuingDelay(t *testing.T) {
	e := simtime.NewEngine()
	sw := New(e, "core")
	sink := &netsim.Sink{Label: "s"}
	l := netsim.NewLink(e, "out", sink, netsim.Mbps(8), 7*simtime.Millisecond, nil)
	sw.AddRoute(netip.MustParsePrefix("192.168.1.0/24"), l, 0)

	type stamp struct {
		at  simtime.Time
		seq uint64
	}
	var ins, outs []stamp
	sw.IngressTap = func(p *packet.Packet, at simtime.Time, _ string) { ins = append(ins, stamp{at, p.SeqExt}) }
	sw.EgressTap = func(p *packet.Packet, at simtime.Time, _ string) { outs = append(outs, stamp{at, p.SeqExt}) }

	p1 := mkPkt("192.168.1.2", 946) // 1ms serialisation
	p1.SeqExt = 1
	p2 := p1.Clone()
	p2.SeqExt = 2
	sw.Receive(p1, nil)
	sw.Receive(p2, nil)
	e.Run(simtime.Second)

	if len(ins) != 2 || len(outs) != 2 {
		t.Fatalf("taps saw %d/%d packets", len(ins), len(outs))
	}
	// Packet 1: arrives t=0, departs after 1 ms serialisation. The
	// egress stamp excludes propagation delay — it's the switch exit.
	if d := outs[0].at - ins[0].at; d != simtime.Millisecond {
		t.Fatalf("pkt1 switch transit %v, want 1ms", d)
	}
	// Packet 2: waits behind packet 1, transit 2 ms.
	if d := outs[1].at - ins[1].at; d != 2*simtime.Millisecond {
		t.Fatalf("pkt2 switch transit %v, want 2ms", d)
	}
}

func TestQueuingDelayFor(t *testing.T) {
	e := simtime.NewEngine()
	sw := New(e, "core")
	sink := &netsim.Sink{Label: "s"}
	l := netsim.NewLink(e, "out", sink, netsim.Mbps(8), 0, nil)
	sw.AddRoute(netip.MustParsePrefix("192.168.1.0/24"), l, 0)
	sw.Receive(mkPkt("192.168.1.2", 946), nil)
	d, err := sw.QueuingDelayFor(packet.MustAddr("192.168.1.9"), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2*simtime.Millisecond { // 1ms backlog + 1ms own serialisation
		t.Fatalf("delay %v", d)
	}
	if _, err := sw.QueuingDelayFor(packet.MustAddr("1.2.3.4"), 100); err == nil {
		t.Fatal("expected no-route error")
	}
}
