// Package switchsim models the legacy (non-programmable) switches of the
// paper's testbed: store-and-forward devices with longest-prefix routing
// and drop-tail, byte-limited output buffers. The core switch in the
// topology is one of these; the buffer-size experiments (Fig. 11) tune
// its output-queue capacity, and the optical TAPs attach to its ports.
package switchsim

import (
	"fmt"
	"net/netip"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// TapHook observes a packet at a fixed point in the switch with a
// nanosecond timestamp and the name of the link involved (the arrival
// link for ingress, the departure port's link for egress; empty when
// unknown). The ingress hook fires when the packet arrives at the
// switch; the egress hook fires when its last bit leaves.
type TapHook func(pkt *packet.Packet, at simtime.Time, link string)

// Port is one switch interface: the attached outbound link plus its
// drop-tail buffer accounting.
type Port struct {
	Link *netsim.Link

	// BufferBytes caps the bytes that may wait in this port's output
	// queue (including the packet currently serialising). Zero means
	// effectively unbounded (1 GiB), which stands in for a deep-buffered
	// core switch.
	BufferBytes int

	queuedBytes  int // bytes accepted but not yet fully transmitted
	drainedUntil simtime.Time

	// Stats
	EnqueuedPackets uint64
	DroppedPackets  uint64
	DroppedBytes    uint64
	PeakQueueBytes  int
}

// Occupancy returns the current queue depth in bytes.
func (p *Port) Occupancy() int { return p.queuedBytes }

// Switch is a store-and-forward legacy switch.
type Switch struct {
	name   string
	engine *simtime.Engine
	routes []route
	ports  map[string]*Port

	// RouterIP, when set, makes the switch a layer-3 hop: it
	// decrements the IPv4 TTL of transit packets and answers expired
	// ones with a TTL-exceeded notification sourced from this address
	// — what traceroute-style tools rely on. Unset, the switch
	// forwards transparently (pure layer-2 behaviour).
	RouterIP netip.Addr

	// INTEnabled makes the switch an In-band Network Telemetry transit
	// hop: it appends per-hop metadata (switch ID, ingress/egress
	// timestamps, queue depth) to every transit packet — the AmLight
	// deployment style of the paper's related work.
	INTEnabled bool

	// TTLExpired counts packets dropped for TTL exhaustion.
	TTLExpired uint64 // keyed by link name

	// IngressTap and EgressTap are the two mirror points the paper's
	// optical TAPs provide (§4.2): one copy as the packet enters the
	// core switch, one as it exits. Either may be nil.
	IngressTap TapHook
	EgressTap  TapHook

	// Stats
	ReceivedPackets uint64
	ForwardedBytes  uint64
	Unroutable      uint64
}

type route struct {
	prefix netip.Prefix
	port   *Port
}

// New creates a switch.
func New(e *simtime.Engine, name string) *Switch {
	return &Switch{
		name:   name,
		engine: e,
		ports:  make(map[string]*Port),
	}
}

// Name implements netsim.Node.
func (s *Switch) Name() string { return s.name }

// AddRoute attaches an output link for destinations inside prefix and
// returns the port so callers can set its buffer size. Longer prefixes
// win; insertion order breaks ties.
func (s *Switch) AddRoute(prefix netip.Prefix, link *netsim.Link, bufferBytes int) *Port {
	port, ok := s.ports[link.Name()]
	if !ok {
		port = &Port{Link: link, BufferBytes: bufferBytes}
		s.ports[link.Name()] = port
		// The egress TAP copy and the queue-byte release both happen
		// when a packet's last bit leaves the port; the link's
		// transmitter provides that instant.
		link.OnDeparture = func(p *packet.Packet, at simtime.Time) {
			port.queuedBytes -= p.WireLen()
			if s.EgressTap != nil {
				s.EgressTap(p, at, link.Name())
			}
			// Complete this switch's INT entry with the departure time.
			if s.INTEnabled {
				if n := len(p.INTStack); n > 0 && p.INTStack[n-1].SwitchID == s.name {
					p.INTStack[n-1].EgressAt = at
				}
			}
		}
	}
	s.routes = append(s.routes, route{prefix: prefix, port: port})
	return port
}

// PortFor returns the port a destination address routes to, or nil.
func (s *Switch) PortFor(dst netip.Addr) *Port {
	var best *Port
	bestBits := -1
	for _, r := range s.routes {
		if r.prefix.Contains(dst) && r.prefix.Bits() > bestBits {
			best = r.port
			bestBits = r.prefix.Bits()
		}
	}
	return best
}

// Receive implements netsim.Node: route the packet, apply drop-tail
// admission against the output buffer, and forward.
//
// p4:hotpath
func (s *Switch) Receive(pkt *packet.Packet, from *netsim.Link) {
	now := s.engine.Now()
	s.ReceivedPackets++
	if s.IngressTap != nil {
		fromName := ""
		if from != nil {
			fromName = from.Name()
		}
		s.IngressTap(pkt, now, fromName)
	}

	if s.RouterIP.IsValid() {
		pkt.TTL--
		if pkt.TTL == 0 {
			s.TTLExpired++
			s.sendTTLExceeded(pkt)
			pkt.Release()
			return
		}
	}

	s.forward(pkt)
}

// forward routes and enqueues a packet on its output port, applying
// drop-tail admission. Dropped packets are recycled here — the switch is
// the last owner on both drop paths.
//
// p4:hotpath
func (s *Switch) forward(pkt *packet.Packet) {
	port := s.PortFor(pkt.DstIP)
	if port == nil {
		s.Unroutable++
		pkt.Release()
		return
	}

	capacity := port.BufferBytes
	if capacity <= 0 {
		capacity = 1 << 30
	}
	wire := pkt.WireLen()
	if port.queuedBytes+wire > capacity {
		port.DroppedPackets++
		port.DroppedBytes += uint64(wire)
		pkt.Release()
		return
	}
	// INT transit: record the hop's ingress time and the queue depth
	// the packet joins behind; the departure hook fills EgressAt.
	if s.INTEnabled {
		pkt.INTStack = append(pkt.INTStack, packet.INTHop{
			SwitchID:   s.name,
			IngressAt:  s.engine.Now(),
			QueueBytes: port.queuedBytes,
		})
	}
	port.queuedBytes += wire
	port.EnqueuedPackets++
	if port.queuedBytes > port.PeakQueueBytes {
		port.PeakQueueBytes = port.queuedBytes
	}
	s.ForwardedBytes += uint64(wire)
	port.Link.Send(pkt)
}

// TTLExceededPort is the UDP source port of TTL-exceeded
// notifications, standing in for the ICMP Time Exceeded message the
// simulator's UDP-only host stack cannot carry.
const TTLExceededPort = 33435

// sendTTLExceeded answers an expired packet with a notification to its
// source, quoting the probe's IP ID so the prober can correlate.
func (s *Switch) sendTTLExceeded(expired *packet.Packet) {
	reply := packet.NewUDP(packet.FiveTuple{
		SrcIP:   s.RouterIP,
		DstIP:   expired.SrcIP,
		SrcPort: TTLExceededPort,
		DstPort: expired.SrcPort,
		Proto:   packet.ProtoUDP,
	}, 36)
	reply.IPID = expired.IPID
	reply.FlowTag = "ttl-exceeded"
	s.forward(reply)
}

// QueuingDelayFor estimates how long a packet enqueued now on the port
// serving dst would wait before fully departing. Useful for assertions
// in tests.
func (s *Switch) QueuingDelayFor(dst netip.Addr, wireLen int) (simtime.Time, error) {
	port := s.PortFor(dst)
	if port == nil {
		return 0, fmt.Errorf("switchsim: no route for %s", dst)
	}
	return port.Link.QueuedDelay() + port.Link.SerializationDelay(wireLen), nil
}
