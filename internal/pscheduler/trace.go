package pscheduler

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/psarchiver"
	"repro/internal/simtime"
	"repro/internal/tcp"
	"repro/internal/trafficgen"
)

// Hop is one traceroute hop: the responding address and the probe's
// round-trip time (zero Router means no response).
type Hop struct {
	TTL    int
	Router string
	RTT    simtime.Time
}

// TraceResult is one completed path trace.
type TraceResult struct {
	Src, Dst  string
	StartedAt simtime.Time
	Hops      []Hop
	// Reached reports whether the destination answered.
	Reached bool
}

// ScheduleTrace runs a traceroute-style path measurement from src to
// dst every interval: one UDP probe per TTL, hop addresses recovered
// from the switches' TTL-exceeded notifications, terminated by the
// destination's echo.
func (s *Scheduler) ScheduleTrace(src, dst *tcp.Host, first, interval simtime.Time, maxHops int) {
	run := func(now simtime.Time) {
		s.runTrace(src, dst, maxHops)
	}
	simtime.NewTicker(s.engine, first, interval, run)
}

func (s *Scheduler) runTrace(src, dst *tcp.Host, maxHops int) {
	trafficgen.EchoResponder(dst)
	port := s.nextProbePort
	s.nextProbePort++
	start := s.engine.Now()

	result := &TraceResult{Src: src.Name(), Dst: dst.Name(), StartedAt: start}
	hops := make([]Hop, maxHops)
	sentAt := make(map[uint16]simtime.Time, maxHops)
	answered := 0

	prevUDP := src.OnUDP
	src.OnUDP = func(pkt *packet.Packet) {
		ttl := int(pkt.IPID) // probes carry their TTL as the IP ID
		if ttl < 1 || ttl > maxHops || pkt.DstPort != port && pkt.SrcPort != port {
			if prevUDP != nil {
				prevUDP(pkt)
			}
			return
		}
		t0, ok := sentAt[pkt.IPID]
		if !ok || hops[ttl-1].Router != "" {
			return
		}
		hops[ttl-1] = Hop{TTL: ttl, Router: pkt.SrcIP.String(), RTT: s.engine.Now() - t0}
		answered++
		if pkt.SrcIP == dst.IP() {
			result.Reached = true
		}
	}

	// One probe per TTL, 50 ms apart (like traceroute's pacing).
	for ttl := 1; ttl <= maxHops; ttl++ {
		ttl := ttl
		s.engine.Schedule(simtime.Time(ttl-1)*50*simtime.Millisecond, func() {
			p := packet.NewUDP(packet.FiveTuple{
				SrcIP:   src.IP(),
				DstIP:   dst.IP(),
				SrcPort: port,
				DstPort: port,
				Proto:   packet.ProtoUDP,
			}, 40)
			p.TTL = uint8(ttl)
			p.IPID = uint16(ttl)
			sentAt[p.IPID] = s.engine.Now()
			src.SendPacket(p)
		})
	}

	// Collect after the probe train plus a grace period.
	s.engine.Schedule(simtime.Time(maxHops)*50*simtime.Millisecond+2*simtime.Second, func() {
		src.OnUDP = prevUDP
		// Trim trailing unanswered hops past the destination.
		last := 0
		for i, h := range hops {
			if h.Router != "" {
				last = i + 1
			}
			if result.Reached && h.Router == dst.IP().String() {
				last = i + 1
				break
			}
		}
		result.Hops = hops[:last]
		s.Traces = append(s.Traces, *result)

		doc := psarchiver.Document{
			"kind":    "pscheduler_trace",
			"time_ns": int64(start),
			"src":     result.Src,
			"dst":     result.Dst,
			"reached": result.Reached,
			"hops":    len(result.Hops),
		}
		s.archive(doc)
	})
}

// RenderTrace formats one trace like the traceroute tool.
func RenderTrace(r TraceResult) string {
	out := fmt.Sprintf("traceroute %s -> %s (reached: %v)\n", r.Src, r.Dst, r.Reached)
	for _, h := range r.Hops {
		if h.Router == "" {
			out += fmt.Sprintf("%2d  *\n", h.TTL)
			continue
		}
		out += fmt.Sprintf("%2d  %-16s %v\n", h.TTL, h.Router, h.RTT)
	}
	return out
}
