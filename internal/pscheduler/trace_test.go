package pscheduler_test

import (
	"strings"
	"testing"

	"repro/internal/pscheduler"
	"repro/internal/simtime"
)

func TestTraceDiscoversPath(t *testing.T) {
	sys := scaledSystem()
	sys.Scheduler.ScheduleTrace(sys.InternalDTN, sys.ExternalDTNs[0],
		simtime.Second, 60*simtime.Second, 6)
	sys.Run(10 * simtime.Second)

	if len(sys.Scheduler.Traces) != 1 {
		t.Fatalf("traces: %d", len(sys.Scheduler.Traces))
	}
	tr := sys.Scheduler.Traces[0]
	if !tr.Reached {
		t.Fatalf("destination not reached: %+v", tr)
	}
	// Path: core switch (172.16.0.1), agg switch (192.168.0.1), DTN1.
	if len(tr.Hops) != 3 {
		t.Fatalf("hops: %+v", tr.Hops)
	}
	if tr.Hops[0].Router != "172.16.0.1" {
		t.Fatalf("hop1: %+v", tr.Hops[0])
	}
	if tr.Hops[1].Router != "192.168.0.1" {
		t.Fatalf("hop2: %+v", tr.Hops[1])
	}
	if tr.Hops[2].Router != sys.ExternalDTNs[0].IP().String() {
		t.Fatalf("hop3: %+v", tr.Hops[2])
	}
	// RTTs must increase with hop depth (more propagation per hop).
	if !(tr.Hops[0].RTT < tr.Hops[1].RTT && tr.Hops[1].RTT < tr.Hops[2].RTT) {
		t.Fatalf("hop RTTs not increasing: %+v", tr.Hops)
	}
}

func TestTraceArchived(t *testing.T) {
	sys := scaledSystem()
	sys.Scheduler.ScheduleTrace(sys.InternalDTN, sys.ExternalDTNs[1],
		simtime.Second, 60*simtime.Second, 6)
	sys.Run(10 * simtime.Second)
	if sys.Store.Count("p4-psonar-pscheduler_trace") != 1 {
		t.Fatalf("trace not archived: %v", sys.Store.Indices())
	}
}

func TestRenderTrace(t *testing.T) {
	sys := scaledSystem()
	sys.Scheduler.ScheduleTrace(sys.InternalDTN, sys.ExternalDTNs[0],
		simtime.Second, 60*simtime.Second, 6)
	sys.Run(10 * simtime.Second)
	out := pscheduler.RenderTrace(sys.Scheduler.Traces[0])
	if !strings.Contains(out, "172.16.0.1") || !strings.Contains(out, "reached: true") {
		t.Fatalf("render: %q", out)
	}
}
