// Package pscheduler models the regular perfSONAR measurement machinery
// the paper compares against (Table 1): pScheduler runs *active* tests
// (iPerf3-style throughput, ping-style latency) between perfSONAR nodes
// on a schedule, and the stock Logstash configuration aggregates each
// test to coarse values — the average for throughput, min/mean/max for
// RTT. The contrast with the P4 system's passive per-packet visibility
// is the heart of the paper's evaluation.
package pscheduler

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/psarchiver"
	"repro/internal/simtime"
	"repro/internal/tcp"
	"repro/internal/trafficgen"
)

// ThroughputResult is one aggregated iperf3-style test outcome: the
// stock perfSONAR Logstash keeps only the average value (§2.3).
type ThroughputResult struct {
	Src, Dst   string
	StartedAt  simtime.Time
	Duration   simtime.Time
	AvgBps     float64
	BytesMoved uint64
	Retransmit uint64
}

// LatencyResult is one aggregated ping-style test outcome: min, mean
// and max RTT (§2.3).
type LatencyResult struct {
	Src, Dst  string
	StartedAt simtime.Time
	Sent      int
	Received  int
	MinRTT    simtime.Time
	MeanRTT   simtime.Time
	MaxRTT    simtime.Time
}

// Scheduler runs active tests between perfSONAR nodes over the same
// simulated network the real traffic crosses.
type Scheduler struct {
	engine   *simtime.Engine
	pipeline *psarchiver.Pipeline

	// Results retains everything locally, in addition to the archiver
	// records, for the Table 1 comparison harness.
	Throughput []ThroughputResult
	Latency    []LatencyResult
	Traces     []TraceResult

	nextProbePort uint16
}

// New creates a scheduler that archives results through the given
// Logstash pipeline (nil disables archiving).
func New(e *simtime.Engine, pipeline *psarchiver.Pipeline) *Scheduler {
	return &Scheduler{engine: e, pipeline: pipeline, nextProbePort: 33434}
}

// ScheduleThroughput runs an iperf3-style test of the given duration
// from src to dst every interval, starting at first. This is the
// periodic active measurement a regular perfSONAR deployment performs.
func (s *Scheduler) ScheduleThroughput(src, dst *tcp.Host, first, interval, duration simtime.Time, cfg tcp.Config) {
	run := func(now simtime.Time) {
		s.runThroughput(src, dst, now, duration, cfg)
	}
	simtime.NewTicker(s.engine, first, interval, run)
}

func (s *Scheduler) runThroughput(src, dst *tcp.Host, start, duration simtime.Time, cfg tcp.Config) {
	port := s.nextProbePort
	s.nextProbePort++
	h := trafficgen.Transfer{
		From:         src,
		To:           dst,
		Port:         port,
		Start:        s.engine.Now(),
		Duration:     duration,
		SenderConfig: cfg,
	}.Launch(s.engine)
	h.OnComplete = func(h *trafficgen.Handle) {
		st := h.Conn.Stats
		dur := h.CompletedAt - st.StartTime
		var avg float64
		if dur > 0 {
			avg = float64(st.BytesAcked) * 8 / dur.Seconds()
		}
		res := ThroughputResult{
			Src:        src.Name(),
			Dst:        dst.Name(),
			StartedAt:  st.StartTime,
			Duration:   dur,
			AvgBps:     avg, // Logstash keeps only the average (§2.3)
			BytesMoved: st.BytesAcked,
			Retransmit: st.Retransmissions,
		}
		s.Throughput = append(s.Throughput, res)
		s.archive(psarchiver.Document{
			"kind":       "pscheduler_throughput",
			"time_ns":    int64(st.StartTime),
			"src":        res.Src,
			"dst":        res.Dst,
			"avg_bps":    res.AvgBps,
			"bytes":      res.BytesMoved,
			"retransmit": res.Retransmit,
		})
	}
}

// ScheduleLatency runs a ping-style probe train from src to dst every
// interval: count UDP probes, one per probeGap, RTT measured against
// the echo responder installed on dst.
func (s *Scheduler) ScheduleLatency(src, dst *tcp.Host, first, interval simtime.Time, count int, probeGap simtime.Time) {
	run := func(now simtime.Time) {
		s.runLatency(src, dst, count, probeGap)
	}
	simtime.NewTicker(s.engine, first, interval, run)
}

func (s *Scheduler) runLatency(src, dst *tcp.Host, count int, probeGap simtime.Time) {
	trafficgen.EchoResponder(dst)
	port := s.nextProbePort
	s.nextProbePort++
	start := s.engine.Now()

	sentAt := make(map[uint16]simtime.Time, count)
	var rtts []simtime.Time
	received := 0

	prevUDP := src.OnUDP
	src.OnUDP = func(pkt *packet.Packet) {
		if pkt.SrcPort != port && pkt.DstPort != port {
			if prevUDP != nil {
				prevUDP(pkt)
			}
			return
		}
		if t0, ok := sentAt[pkt.IPID]; ok {
			rtts = append(rtts, s.engine.Now()-t0)
			delete(sentAt, pkt.IPID)
			received++
		}
	}

	ft := packet.FiveTuple{
		SrcIP:   src.IP(),
		DstIP:   dst.IP(),
		SrcPort: port,
		DstPort: port,
		Proto:   packet.ProtoUDP,
	}
	for i := 0; i < count; i++ {
		i := i
		s.engine.Schedule(simtime.Time(i)*probeGap, func() {
			p := packet.NewUDP(ft, 64)
			p.IPID = uint16(i + 1)
			sentAt[p.IPID] = s.engine.Now()
			src.SendPacket(p)
		})
	}

	// Collect after the train plus a grace period.
	s.engine.Schedule(simtime.Time(count)*probeGap+2*simtime.Second, func() {
		src.OnUDP = prevUDP
		res := LatencyResult{
			Src:       src.Name(),
			Dst:       dst.Name(),
			StartedAt: start,
			Sent:      count,
			Received:  received,
		}
		if len(rtts) > 0 {
			var sum simtime.Time
			res.MinRTT = rtts[0]
			for _, r := range rtts {
				if r < res.MinRTT {
					res.MinRTT = r
				}
				if r > res.MaxRTT {
					res.MaxRTT = r
				}
				sum += r
			}
			res.MeanRTT = sum / simtime.Time(len(rtts))
		}
		s.Latency = append(s.Latency, res)
		s.archive(psarchiver.Document{
			"kind":        "pscheduler_latency",
			"time_ns":     int64(start),
			"src":         res.Src,
			"dst":         res.Dst,
			"sent":        res.Sent,
			"received":    res.Received,
			"min_rtt_ms":  res.MinRTT.Millis(),
			"mean_rtt_ms": res.MeanRTT.Millis(),
			"max_rtt_ms":  res.MaxRTT.Millis(),
		})
	})
}

func (s *Scheduler) archive(doc psarchiver.Document) {
	if s.pipeline != nil {
		s.pipeline.Process(doc)
	}
}

// Summary renders the scheduler's aggregated view — what the regular
// perfSONAR dashboard would show.
func (s *Scheduler) Summary() string {
	out := ""
	for _, t := range s.Throughput {
		out += fmt.Sprintf("throughput %s->%s: avg %.2f Gbps (%d retransmits)\n",
			t.Src, t.Dst, t.AvgBps/1e9, t.Retransmit)
	}
	for _, l := range s.Latency {
		out += fmt.Sprintf("latency %s->%s: min/mean/max %.2f/%.2f/%.2f ms (loss %d/%d)\n",
			l.Src, l.Dst, l.MinRTT.Millis(), l.MeanRTT.Millis(), l.MaxRTT.Millis(),
			l.Sent-l.Received, l.Sent)
	}
	return out
}

// ThroughputMean returns the mean of all archived test averages — the
// coarse longitudinal signal NetSage-style platforms consume.
func (s *Scheduler) ThroughputMean() float64 {
	if len(s.Throughput) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range s.Throughput {
		sum += t.AvgBps
	}
	return sum / float64(len(s.Throughput))
}
