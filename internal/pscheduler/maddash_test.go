package pscheduler_test

import (
	"strings"
	"testing"

	"repro/internal/pscheduler"
	"repro/internal/simtime"
	"repro/internal/tcp"
)

func TestDashboardGradesThroughput(t *testing.T) {
	sys := scaledSystem()
	sys.Scheduler.ScheduleThroughput(sys.LocalPerfNode, sys.ExternalPerf[0],
		simtime.Second, 60*simtime.Second, 3*simtime.Second, tcp.Config{MSS: 1448})
	sys.Run(10 * simtime.Second)

	// With a generous warn threshold the cell is OK.
	cells := sys.Scheduler.Dashboard(pscheduler.DashboardConfig{
		ThroughputWarnBps: 1e6,
		ThroughputCritBps: 1e5,
	})
	if len(cells) != 1 || cells[0].Status != pscheduler.StatusOK {
		t.Fatalf("cells: %+v", cells)
	}
	// With an absurd threshold, the same result grades critical.
	cells = sys.Scheduler.Dashboard(pscheduler.DashboardConfig{
		ThroughputWarnBps: 99e9,
		ThroughputCritBps: 98e9,
	})
	if cells[0].Status != pscheduler.StatusCritical {
		t.Fatalf("cells: %+v", cells)
	}
}

func TestDashboardGradesLatencyLoss(t *testing.T) {
	sys := scaledSystem()
	sys.ExternalAccessLinks[0].LossRate = 0.5
	sys.Scheduler.ScheduleLatency(sys.LocalPerfNode, sys.ExternalDTNs[0],
		simtime.Second, 60*simtime.Second, 20, 50*simtime.Millisecond)
	sys.Run(10 * simtime.Second)

	cells := sys.Scheduler.Dashboard(pscheduler.DashboardConfig{
		LossWarn: 0.05,
		LossCrit: 0.25,
	})
	if len(cells) != 1 {
		t.Fatalf("cells: %+v", cells)
	}
	if cells[0].Status != pscheduler.StatusCritical {
		t.Fatalf("status %v for a 50%%-loss path", cells[0].Status)
	}
}

func TestDashboardKeepsLatestResult(t *testing.T) {
	sys := scaledSystem()
	sys.Scheduler.ScheduleThroughput(sys.LocalPerfNode, sys.ExternalPerf[1],
		simtime.Second, 8*simtime.Second, 2*simtime.Second, tcp.Config{MSS: 1448})
	sys.Run(25 * simtime.Second)
	if len(sys.Scheduler.Throughput) < 2 {
		t.Fatalf("want repeated tests, got %d", len(sys.Scheduler.Throughput))
	}
	cells := sys.Scheduler.Dashboard(pscheduler.DashboardConfig{})
	if len(cells) != 1 {
		t.Fatalf("dashboard must keep one cell per pair: %+v", cells)
	}
	last := sys.Scheduler.Throughput[len(sys.Scheduler.Throughput)-1]
	if cells[0].At != last.StartedAt {
		t.Fatalf("cell not the latest result: %v vs %v", cells[0].At, last.StartedAt)
	}
}

func TestRenderDashboard(t *testing.T) {
	out := pscheduler.RenderDashboard(nil)
	if !strings.Contains(out, "no results") {
		t.Fatalf("empty render: %q", out)
	}
	cells := []pscheduler.Cell{{Src: "a", Dst: "b", Status: pscheduler.StatusWarning, Detail: "1.0 Mbps"}}
	out = pscheduler.RenderDashboard(cells)
	if !strings.Contains(out, "[WARN]") || !strings.Contains(out, "a") {
		t.Fatalf("render: %q", out)
	}
}

func TestCellStatusString(t *testing.T) {
	if pscheduler.StatusOK.String() != "OK" || pscheduler.StatusCritical.String() != "CRIT" ||
		pscheduler.StatusWarning.String() != "WARN" || pscheduler.StatusUnknown.String() != "-" {
		t.Fatal("status strings wrong")
	}
}
