package pscheduler

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/simtime"
)

// This file provides the MaDDash stand-in: perfSONAR deployments
// visualise their measurement mesh as a grid of source/destination
// cells coloured by how the latest results compare against thresholds.
// The grid consumes the scheduler's local result history.

// CellStatus grades one mesh cell.
type CellStatus int

// Cell grades, from healthy to failed, mirroring MaDDash's
// OK/WARNING/CRITICAL colour scheme.
const (
	StatusUnknown CellStatus = iota
	StatusOK
	StatusWarning
	StatusCritical
)

// String renders the grid-cell status the way MaDDash legends do.
func (s CellStatus) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusWarning:
		return "WARN"
	case StatusCritical:
		return "CRIT"
	default:
		return "-"
	}
}

// DashboardConfig sets the grading thresholds.
type DashboardConfig struct {
	// ThroughputWarnBps and ThroughputCritBps grade throughput cells:
	// below warn is a warning, below crit is critical.
	ThroughputWarnBps float64
	ThroughputCritBps float64
	// LossWarn and LossCrit grade latency cells by probe loss fraction.
	LossWarn float64
	LossCrit float64
}

// Cell is one graded mesh entry.
type Cell struct {
	Src, Dst string
	Status   CellStatus
	Detail   string
	At       simtime.Time
}

// Dashboard builds the measurement-mesh grid from the scheduler's
// most recent results.
func (s *Scheduler) Dashboard(cfg DashboardConfig) []Cell {
	latestT := map[[2]string]ThroughputResult{}
	for _, r := range s.Throughput {
		key := [2]string{r.Src, r.Dst}
		if cur, ok := latestT[key]; !ok || r.StartedAt > cur.StartedAt {
			latestT[key] = r
		}
	}
	latestL := map[[2]string]LatencyResult{}
	for _, r := range s.Latency {
		key := [2]string{r.Src, r.Dst}
		if cur, ok := latestL[key]; !ok || r.StartedAt > cur.StartedAt {
			latestL[key] = r
		}
	}

	var cells []Cell
	for key, r := range latestT {
		st := StatusOK
		switch {
		case cfg.ThroughputCritBps > 0 && r.AvgBps < cfg.ThroughputCritBps:
			st = StatusCritical
		case cfg.ThroughputWarnBps > 0 && r.AvgBps < cfg.ThroughputWarnBps:
			st = StatusWarning
		}
		cells = append(cells, Cell{
			Src: key[0], Dst: key[1], Status: st,
			Detail: fmt.Sprintf("%.1f Mbps", r.AvgBps/1e6),
			At:     r.StartedAt,
		})
	}
	for key, r := range latestL {
		st := StatusOK
		lossFrac := 0.0
		if r.Sent > 0 {
			lossFrac = float64(r.Sent-r.Received) / float64(r.Sent)
		}
		switch {
		case cfg.LossCrit > 0 && lossFrac >= cfg.LossCrit:
			st = StatusCritical
		case cfg.LossWarn > 0 && lossFrac >= cfg.LossWarn:
			st = StatusWarning
		}
		cells = append(cells, Cell{
			Src: key[0], Dst: key[1], Status: st,
			Detail: fmt.Sprintf("%.1fms %.0f%%loss", r.MeanRTT.Millis(), lossFrac*100),
			At:     r.StartedAt,
		})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Src != cells[j].Src {
			return cells[i].Src < cells[j].Src
		}
		if cells[i].Dst != cells[j].Dst {
			return cells[i].Dst < cells[j].Dst
		}
		return cells[i].Detail < cells[j].Detail
	})
	return cells
}

// RenderDashboard draws the grid as text.
func RenderDashboard(cells []Cell) string {
	var b strings.Builder
	b.WriteString("perfSONAR mesh dashboard\n")
	for _, c := range cells {
		fmt.Fprintf(&b, "  [%-4s] %-10s -> %-10s %s\n", c.Status, c.Src, c.Dst, c.Detail)
	}
	if len(cells) == 0 {
		b.WriteString("  (no results yet)\n")
	}
	return b.String()
}
