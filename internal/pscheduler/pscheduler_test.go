// Package pscheduler_test exercises the active-test scheduler through
// the assembled system (an external test package avoids the
// core↔pscheduler import cycle).
package pscheduler_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/psarchiver"
	"repro/internal/pscheduler"
	"repro/internal/simtime"
	"repro/internal/tcp"
)

func scaledSystem() *core.System {
	return core.NewSystem(core.Options{
		BottleneckBps: netsim.Mbps(200),
		RTTs: [core.ExternalNetworks]simtime.Time{
			20 * simtime.Millisecond,
			30 * simtime.Millisecond,
			40 * simtime.Millisecond,
		},
		Seed: 3,
	})
}

func TestThroughputTestProducesAggregatedResult(t *testing.T) {
	sys := scaledSystem()
	sys.Scheduler.ScheduleThroughput(sys.LocalPerfNode, sys.ExternalPerf[0],
		simtime.Second, 60*simtime.Second, 3*simtime.Second, tcp.Config{MSS: 1448})
	sys.Run(10 * simtime.Second)

	if len(sys.Scheduler.Throughput) != 1 {
		t.Fatalf("results: %d", len(sys.Scheduler.Throughput))
	}
	r := sys.Scheduler.Throughput[0]
	// A 3 s test at 40 ms RTT spends much of its life in slow start,
	// so the average sits well below line rate but must be plausible.
	if r.AvgBps < 20e6 || r.AvgBps > 200e6 {
		t.Fatalf("avg %.1f Mbps", r.AvgBps/1e6)
	}
	if r.Src != "ps-local" || r.Dst != "ps1" {
		t.Fatalf("endpoints %s -> %s", r.Src, r.Dst)
	}
	if r.BytesMoved == 0 {
		t.Fatal("no bytes recorded")
	}
	// Only ONE value per test: the whole point of the §2.3 granularity
	// critique — no per-second samples exist in the result.
	if sys.Scheduler.ThroughputMean() != r.AvgBps {
		t.Fatal("mean of one result must equal it")
	}
}

func TestThroughputTestRepeatsOnSchedule(t *testing.T) {
	sys := scaledSystem()
	sys.Scheduler.ScheduleThroughput(sys.LocalPerfNode, sys.ExternalPerf[1],
		simtime.Second, 10*simtime.Second, 2*simtime.Second, tcp.Config{MSS: 1448})
	sys.Run(25 * simtime.Second)
	if len(sys.Scheduler.Throughput) != 3 { // t=1, 11, 21
		t.Fatalf("test runs: %d, want 3", len(sys.Scheduler.Throughput))
	}
}

func TestLatencyTestMinMeanMax(t *testing.T) {
	sys := scaledSystem()
	sys.Scheduler.ScheduleLatency(sys.LocalPerfNode, sys.ExternalPerf[2],
		simtime.Second, 60*simtime.Second, 10, 100*simtime.Millisecond)
	sys.Run(10 * simtime.Second)

	if len(sys.Scheduler.Latency) != 1 {
		t.Fatalf("results: %d", len(sys.Scheduler.Latency))
	}
	r := sys.Scheduler.Latency[0]
	if r.Sent != 10 || r.Received != 10 {
		t.Fatalf("sent/received %d/%d", r.Sent, r.Received)
	}
	// Path RTT to network 3 is 40 ms; idle network, so min≈mean≈max.
	if r.MinRTT < 39*simtime.Millisecond || r.MaxRTT > 50*simtime.Millisecond {
		t.Fatalf("rtt range %v..%v", r.MinRTT, r.MaxRTT)
	}
	if r.MeanRTT < r.MinRTT || r.MeanRTT > r.MaxRTT {
		t.Fatal("mean outside min..max")
	}
}

func TestLatencyTestCountsLoss(t *testing.T) {
	sys := scaledSystem()
	sys.ExternalAccessLinks[0].LossRate = 0.5 // brutal loss on the probe path
	// Note: probes to the perfSONAR node ride a different downlink, so
	// impair that host's downlink instead via the scheduler target DTN.
	sys.Scheduler.ScheduleLatency(sys.LocalPerfNode, sys.ExternalDTNs[0],
		simtime.Second, 60*simtime.Second, 20, 50*simtime.Millisecond)
	sys.Run(10 * simtime.Second)
	r := sys.Scheduler.Latency[0]
	if r.Received >= r.Sent {
		t.Fatalf("expected probe loss, got %d/%d", r.Received, r.Sent)
	}
}

func TestResultsArchivedThroughLogstash(t *testing.T) {
	sys := scaledSystem()
	sys.Scheduler.ScheduleThroughput(sys.LocalPerfNode, sys.ExternalPerf[0],
		simtime.Second, 60*simtime.Second, 2*simtime.Second, tcp.Config{MSS: 1448})
	sys.Scheduler.ScheduleLatency(sys.LocalPerfNode, sys.ExternalPerf[0],
		simtime.Second, 60*simtime.Second, 5, 100*simtime.Millisecond)
	sys.Run(10 * simtime.Second)

	if sys.Store.Count("p4-psonar-pscheduler_throughput") != 1 {
		t.Fatalf("throughput docs: %v", sys.Store.Indices())
	}
	if sys.Store.Count("p4-psonar-pscheduler_latency") != 1 {
		t.Fatalf("latency docs: %v", sys.Store.Indices())
	}
	docs := sys.Store.Search(psarchiver.Query{Index: "p4-psonar-pscheduler_latency"})
	if _, ok := docs[0].Float("mean_rtt_ms"); !ok {
		t.Fatalf("latency doc incomplete: %v", docs[0])
	}
}

func TestSummaryRendering(t *testing.T) {
	sys := scaledSystem()
	sys.Scheduler.ScheduleThroughput(sys.LocalPerfNode, sys.ExternalPerf[0],
		simtime.Second, 60*simtime.Second, 2*simtime.Second, tcp.Config{MSS: 1448})
	sys.Run(8 * simtime.Second)
	s := sys.Scheduler.Summary()
	if !strings.Contains(s, "throughput ps-local->ps1") {
		t.Fatalf("summary: %q", s)
	}
}

func TestThroughputMeanEmpty(t *testing.T) {
	s := pscheduler.New(simtime.NewEngine(), nil)
	if s.ThroughputMean() != 0 {
		t.Fatal("empty mean must be 0")
	}
}
