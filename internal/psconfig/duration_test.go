package psconfig

import (
	"testing"

	"repro/internal/simtime"
)

func TestParseISODuration(t *testing.T) {
	cases := map[string]simtime.Time{
		"PT30S":   30 * simtime.Second,
		"PT5M":    5 * 60 * simtime.Second,
		"PT6H":    6 * 3600 * simtime.Second,
		"PT1H30M": 90 * 60 * simtime.Second,
		"P1D":     24 * 3600 * simtime.Second,
		"P1DT12H": 36 * 3600 * simtime.Second,
	}
	for in, want := range cases {
		got, err := ParseISODuration(in)
		if err != nil {
			t.Errorf("%s: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, want %v", in, got, want)
		}
	}
}

func TestParseISODurationErrors(t *testing.T) {
	for _, in := range []string{
		"", "6H", "PT", "P", "PTS", "PT5X", "PT5", "P5H", "PD", "PT1T1S",
	} {
		if _, err := ParseISODuration(in); err == nil {
			t.Errorf("%q: expected error", in)
		}
	}
}
