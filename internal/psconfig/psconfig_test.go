package psconfig

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/controlplane"
)

// fakeTarget implements Target with the same transactional contract
// as the real control plane: the mutation runs on a scratch copy and
// an error publishes nothing.
type fakeTarget struct {
	rc controlplane.RuntimeConfig
}

func newFakeTarget() *fakeTarget { return &fakeTarget{} }

func (f *fakeTarget) Update(mut func(*controlplane.RuntimeConfig) error) error {
	next := f.rc
	if err := mut(&next); err != nil {
		return err
	}
	f.rc = next
	return nil
}

func (f *fakeTarget) rate(m controlplane.Metric) float64 {
	return f.rc.MetricConfig(m).SamplesPerSecond
}

func (f *fakeTarget) alert(m controlplane.Metric) [2]float64 {
	mc := f.rc.MetricConfig(m)
	return [2]float64{mc.AlertThreshold, mc.AlertSamplesPerSecond}
}

// TestFigure6Line1 parses `config-P4 --metric throughput
// --samples_per_second 1` — the first command of Figure 6.
func TestFigure6Line1(t *testing.T) {
	cmd, err := ParseConfigP4([]string{"--metric", "throughput", "--samples_per_second", "1"})
	if err != nil {
		t.Fatal(err)
	}
	tgt := newFakeTarget()
	if err := cmd.Apply(tgt); err != nil {
		t.Fatal(err)
	}
	if tgt.rate(controlplane.MetricThroughput) != 1 {
		t.Fatalf("config: %+v", tgt.rc)
	}
	for _, m := range controlplane.AllMetrics() {
		if m != controlplane.MetricThroughput && tgt.rate(m) != 0 {
			t.Fatalf("metric %s configured unexpectedly: %+v", m, tgt.rc)
		}
		if tgt.alert(m) != [2]float64{} {
			t.Fatalf("alert for %s configured unexpectedly: %+v", m, tgt.rc)
		}
	}
}

// TestFigure6Line2 parses the RTT command of Figure 6.
func TestFigure6Line2(t *testing.T) {
	cmd, err := ParseConfigP4([]string{"--metric", "RTT", "--samples_per_second", "2"})
	if err == nil {
		_ = cmd
		t.Fatal("uppercase RTT is not a valid metric name; the CLI uses rtt")
	}
	cmd, err = ParseConfigP4([]string{"--metric", "rtt", "--samples_per_second", "2"})
	if err != nil {
		t.Fatal(err)
	}
	tgt := newFakeTarget()
	cmd.Apply(tgt)
	if tgt.rate(controlplane.MetricRTT) != 2 {
		t.Fatalf("config: %+v", tgt.rc)
	}
}

// TestFigure6Line3 parses the alert command of Figure 6: queue
// occupancy alerts at 30% and escalates to 10 samples/second.
func TestFigure6Line3(t *testing.T) {
	cmd, err := ParseConfigP4([]string{
		"--metric", "queue_occupancy", "--alert", "--threshold", "30", "--samples_per_second", "10"})
	if err != nil {
		t.Fatal(err)
	}
	tgt := newFakeTarget()
	if err := cmd.Apply(tgt); err != nil {
		t.Fatal(err)
	}
	if got := tgt.alert(controlplane.MetricQueueOccupancy); got[0] != 30 || got[1] != 10 {
		t.Fatalf("alert config: %v", got)
	}
}

func TestNoMetricAppliesToAll(t *testing.T) {
	cmd, err := ParseConfigP4([]string{"--samples_per_second", "5"})
	if err != nil {
		t.Fatal(err)
	}
	tgt := newFakeTarget()
	cmd.Apply(tgt)
	for _, m := range controlplane.AllMetrics() {
		if tgt.rate(m) != 5 {
			t.Fatalf("metric %s not configured", m)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := [][]string{
		{},           // nothing to configure
		{"--metric"}, // missing value
		{"--metric", "bogus", "--samples_per_second", "1"}, // bad metric
		{"--samples_per_second", "abc"},                    // bad rate
		{"--samples_per_second", "-1"},                     // negative rate
		{"--alert"},                                        // alert without threshold
		{"--threshold", "xyz", "--alert"},                  // bad threshold
		{"--unknown", "1"},                                 // unknown flag
	}
	for i, args := range cases {
		if _, err := ParseConfigP4(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestCommandString(t *testing.T) {
	cmd, _ := ParseConfigP4([]string{"--metric", "queue_occupancy", "--alert", "--threshold", "30", "--samples_per_second", "10"})
	want := "psconfig config-P4 --metric queue_occupancy --alert --threshold 30 --samples_per_second 10"
	if cmd.String() != want {
		t.Fatalf("got %q", cmd.String())
	}
}

func TestApplyAgainstRealControlPlane(t *testing.T) {
	// The Target interface must be satisfied by the actual control
	// plane; configure it end to end.
	cp := newRealControlPlane(t)
	cmd, _ := ParseConfigP4([]string{"--metric", "throughput", "--samples_per_second", "4"})
	if err := cmd.Apply(cp); err != nil {
		t.Fatal(err)
	}
	if got := cp.MetricConfigFor(controlplane.MetricThroughput).SamplesPerSecond; got != 4 {
		t.Fatalf("rate=%f", got)
	}
	alert, _ := ParseConfigP4([]string{"--metric", "rtt", "--alert", "--threshold", "90", "--samples_per_second", "20"})
	if err := alert.Apply(cp); err != nil {
		t.Fatal(err)
	}
	mc := cp.MetricConfigFor(controlplane.MetricRTT)
	if mc.AlertThreshold != 90 || mc.AlertSamplesPerSecond != 20 {
		t.Fatalf("alert config: %+v", mc)
	}
}

// TestApplyFailingAllMetricsChangesNothing pins the transactional
// contract at the psconfig layer: an all-metrics command that fails
// validation (rate above the control plane's hard cap, which parses
// fine client-side) leaves the runtime config byte-identical and
// publishes no generation. Under the old per-metric Target this was
// the partial-application bug: metrics before the failing one kept
// the new rate.
func TestApplyFailingAllMetricsChangesNothing(t *testing.T) {
	cp := newRealControlPlane(t)
	// Give each metric a distinct rate so partial application would be
	// visible on whichever prefix got written.
	for i, m := range controlplane.AllMetrics() {
		if err := cp.SetRate(m, float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := json.Marshal(cp.RuntimeSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	gens := cp.ConfigGenerations().Published

	over := fmt.Sprintf("%g", controlplane.MaxSamplesPerSecond*2)
	cmd, err := ParseConfigP4([]string{"--samples_per_second", over})
	if err != nil {
		t.Fatalf("over-cap rate must parse client-side: %v", err)
	}
	if err := cmd.Apply(cp); err == nil {
		t.Fatal("over-cap all-metrics command must be rejected")
	}

	after, err := json.Marshal(cp.RuntimeSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("failed command mutated config:\nbefore %s\nafter  %s", before, after)
	}
	if got := cp.ConfigGenerations().Published; got != gens {
		t.Fatalf("failed command published a generation: %d -> %d", gens, got)
	}
}

func TestTemplateParsingAndP4Commands(t *testing.T) {
	raw := []byte(`{
	  "archives": {
	    "opensearch": {"archiver": "opensearch", "data": {"url": "https://localhost:9200"}}
	  },
	  "tasks": {
	    "p4-throughput": {"type": "p4", "spec": {"metric": "throughput", "samples_per_second": "1"}},
	    "p4-qocc-alert": {"type": "p4", "spec": {"metric": "queue_occupancy", "alert": "true", "threshold": "30", "samples_per_second": "10"}},
	    "classic-test": {"type": "throughput", "interval": "PT6H"}
	  }
	}`)
	tpl, err := ParseTemplate(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(tpl.Archives) != 1 || tpl.Archives["opensearch"].Archiver != "opensearch" {
		t.Fatal("archives wrong")
	}
	cmds, err := tpl.P4Commands()
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 2 {
		t.Fatalf("p4 commands: %d", len(cmds))
	}
	// Sorted task-name order: p4-qocc-alert before p4-throughput.
	if !cmds[0].Alert || cmds[0].Metric != "queue_occupancy" {
		t.Fatalf("first command: %+v", cmds[0])
	}
	if cmds[1].Metric != "throughput" || cmds[1].SamplesPerSecond != 1 {
		t.Fatalf("second command: %+v", cmds[1])
	}
}

func TestTemplateBadJSON(t *testing.T) {
	if _, err := ParseTemplate([]byte("{nope")); err == nil {
		t.Fatal("bad JSON must error")
	}
}

func TestTemplateBadP4Spec(t *testing.T) {
	tpl, err := ParseTemplate([]byte(`{"tasks": {"bad": {"type": "p4", "spec": {"metric": "bogus"}}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tpl.P4Commands(); err == nil {
		t.Fatal("bad p4 spec must error")
	}
}
