package psconfig

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/simtime"
)

// WireCommand is the JSON encoding of a config-P4 command sent from
// the psconfig CLI to a running collector (the switch's control-plane
// agent).
type WireCommand struct {
	Metric           string  `json:"metric,omitempty"`
	SamplesPerSecond float64 `json:"samples_per_second,omitempty"`
	Alert            bool    `json:"alert,omitempty"`
	Threshold        float64 `json:"threshold,omitempty"`
}

// WireResponse acknowledges a WireCommand.
type WireResponse struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// ToWire converts a parsed command for transmission.
func (c Command) ToWire() WireCommand {
	w := WireCommand{Metric: c.Metric, Alert: c.Alert, Threshold: c.Threshold}
	if c.hasSamples {
		w.SamplesPerSecond = c.SamplesPerSecond
	}
	return w
}

// FromWire reconstructs a Command, re-validating every field.
func FromWire(w WireCommand) (Command, error) {
	var args []string
	if w.Metric != "" {
		args = append(args, "--metric", w.Metric)
	}
	if w.SamplesPerSecond > 0 {
		args = append(args, "--samples_per_second", fmt.Sprintf("%g", w.SamplesPerSecond))
	}
	if w.Alert {
		args = append(args, "--alert")
	}
	if w.Threshold > 0 {
		args = append(args, "--threshold", fmt.Sprintf("%g", w.Threshold))
	}
	return ParseConfigP4(args)
}

// SendOptions tunes the client side of the config channel. The zero
// value is usable: every field has a default.
type SendOptions struct {
	// Timeout bounds each attempt: the dial plus the full
	// request/response exchange (default 5s).
	Timeout time.Duration
	// Attempts is the total number of connection attempts (default 3).
	// Only dial failures are retried: once a connection is up, errors
	// and rejections return immediately — the collector may already
	// have applied the command, and a blind resend could double-apply
	// a future non-idempotent command.
	Attempts int
	// BackoffMin and BackoffMax bound the jittered exponential backoff
	// between attempts (defaults 50ms and 1s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Seed feeds the deterministic jitter RNG (default 1); tests pin it
	// so retry schedules are reproducible.
	Seed uint64
	// Dial and Sleep are test seams. Dial defaults to a TCP
	// DialTimeout; Sleep defaults to time.Sleep.
	Dial  func(addr string, timeout time.Duration) (net.Conn, error)
	Sleep func(d time.Duration)
}

// withDefaults fills unset SendOptions fields.
func (o SendOptions) withDefaults() SendOptions {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.Attempts <= 0 {
		o.Attempts = 3
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Dial == nil {
		o.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// Send transmits the command to a collector at addr and waits for the
// acknowledgment, retrying refused connections with the default
// SendWith policy.
func (c Command) Send(addr string, timeout time.Duration) error {
	return c.SendWith(addr, SendOptions{Timeout: timeout})
}

// SendWith transmits the command under an explicit retry policy:
// refused/unreachable dials back off with deterministic equal jitter
// (half the current backoff fixed, half drawn from a seeded RNG) and
// retry up to opts.Attempts times; anything after a successful dial —
// IO errors, timeouts, collector rejections — fails immediately.
func (c Command) SendWith(addr string, opts SendOptions) error {
	opts = opts.withDefaults()
	rng := simtime.NewRNG(opts.Seed)
	backoff := opts.BackoffMin
	var dialErr error
	for attempt := 0; attempt < opts.Attempts; attempt++ {
		if attempt > 0 {
			half := backoff / 2
			opts.Sleep(half + time.Duration(rng.Float64()*float64(half)))
			backoff = backoff * 2
			if backoff > opts.BackoffMax {
				backoff = opts.BackoffMax
			}
		}
		var conn net.Conn
		conn, dialErr = opts.Dial(addr, opts.Timeout)
		if dialErr != nil {
			continue
		}
		return c.exchange(conn, opts.Timeout)
	}
	return fmt.Errorf("psconfig: connecting to collector (%d attempts): %w", opts.Attempts, dialErr)
}

// exchange runs the one-command request/response protocol on an open
// connection.
func (c Command) exchange(conn net.Conn, timeout time.Duration) error {
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return fmt.Errorf("psconfig: setting deadline: %w", err)
	}
	enc := json.NewEncoder(conn)
	if err := enc.Encode(c.ToWire()); err != nil {
		return fmt.Errorf("psconfig: sending command: %w", err)
	}
	var resp WireResponse
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		return fmt.Errorf("psconfig: reading response: %w", err)
	}
	if !resp.OK {
		return fmt.Errorf("psconfig: collector rejected command: %s", resp.Error)
	}
	return nil
}

// ServeOptions tunes the server side of the config channel. The zero
// value is usable: every field has a default.
type ServeOptions struct {
	// ReadTimeout bounds how long a connection may take to deliver its
	// command; WriteTimeout bounds the acknowledgment (defaults 5s
	// each). A client that connects and never sends — or stalls
	// mid-record — is cut at the deadline instead of leaking a
	// goroutine for the listener's lifetime.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// MaxRequestBytes caps the encoded command size (default 64 KiB);
	// an oversized request is rejected without buffering it.
	MaxRequestBytes int64
	// MaxConns caps concurrently-served connections (default 64).
	// Excess connections receive an immediate busy rejection on the
	// accept goroutine rather than queueing without bound.
	MaxConns int
}

// withDefaults fills unset ServeOptions fields.
func (o ServeOptions) withDefaults() ServeOptions {
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 5 * time.Second
	}
	if o.MaxRequestBytes <= 0 {
		o.MaxRequestBytes = 64 << 10
	}
	if o.MaxConns <= 0 {
		o.MaxConns = 64
	}
	return o
}

// ServeConfig accepts config-P4 commands on ln and applies them to
// target until the listener closes, with default ServeOptions. Each
// connection carries one JSON-encoded WireCommand and receives one
// WireResponse.
func ServeConfig(ln net.Listener, target Target) {
	ServeConfigWith(ln, target, ServeOptions{})
}

// ServeConfigWith is ServeConfig with explicit hardening options. It
// returns only after the listener closes AND every in-flight
// connection handler has finished — a graceful drain, so callers can
// close the listener and know no command will race their teardown.
func ServeConfigWith(ln net.Listener, target Target, opts ServeOptions) {
	opts = opts.withDefaults()
	var wg sync.WaitGroup
	defer wg.Wait()
	sem := make(chan struct{}, opts.MaxConns)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		select {
		case sem <- struct{}{}:
		default:
			// At capacity: reject on the accept goroutine, bounded by
			// the write deadline, rather than queueing unboundedly.
			_ = conn.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
			_ = json.NewEncoder(conn).Encode(WireResponse{Error: "psconfig: collector busy"})
			_ = conn.Close()
			continue
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer func() { <-sem }()
			serveConn(conn, target, opts)
		}(conn)
	}
}

// serveConn handles one connection: read a command under the read
// deadline and size cap, apply it transactionally, acknowledge under
// the write deadline.
func serveConn(conn net.Conn, target Target, opts ServeOptions) {
	defer conn.Close()
	resp := WireResponse{OK: true}
	var w WireCommand
	_ = conn.SetReadDeadline(time.Now().Add(opts.ReadTimeout))
	// N+1 so a request of exactly MaxRequestBytes decodes while one
	// byte more distinguishes "oversized" from a malformed document.
	lr := &io.LimitedReader{R: conn, N: opts.MaxRequestBytes + 1}
	if err := json.NewDecoder(bufio.NewReader(lr)).Decode(&w); err != nil {
		if lr.N <= 0 {
			resp = WireResponse{Error: fmt.Sprintf("psconfig: request exceeds %d bytes", opts.MaxRequestBytes)}
		} else {
			resp = WireResponse{Error: err.Error()}
		}
	} else if cmd, err := FromWire(w); err != nil {
		resp = WireResponse{Error: err.Error()}
	} else if err := cmd.Apply(target); err != nil {
		resp = WireResponse{Error: err.Error()}
	}
	// Best-effort acknowledgment: the peer may already be gone.
	_ = conn.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
	_ = json.NewEncoder(conn).Encode(resp)
}
