package psconfig

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// WireCommand is the JSON encoding of a config-P4 command sent from
// the psconfig CLI to a running collector (the switch's control-plane
// agent).
type WireCommand struct {
	Metric           string  `json:"metric,omitempty"`
	SamplesPerSecond float64 `json:"samples_per_second,omitempty"`
	Alert            bool    `json:"alert,omitempty"`
	Threshold        float64 `json:"threshold,omitempty"`
}

// WireResponse acknowledges a WireCommand.
type WireResponse struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// ToWire converts a parsed command for transmission.
func (c Command) ToWire() WireCommand {
	w := WireCommand{Metric: c.Metric, Alert: c.Alert, Threshold: c.Threshold}
	if c.hasSamples {
		w.SamplesPerSecond = c.SamplesPerSecond
	}
	return w
}

// FromWire reconstructs a Command, re-validating every field.
func FromWire(w WireCommand) (Command, error) {
	var args []string
	if w.Metric != "" {
		args = append(args, "--metric", w.Metric)
	}
	if w.SamplesPerSecond > 0 {
		args = append(args, "--samples_per_second", fmt.Sprintf("%g", w.SamplesPerSecond))
	}
	if w.Alert {
		args = append(args, "--alert")
	}
	if w.Threshold > 0 {
		args = append(args, "--threshold", fmt.Sprintf("%g", w.Threshold))
	}
	return ParseConfigP4(args)
}

// Send transmits the command to a collector at addr and waits for the
// acknowledgment.
func (c Command) Send(addr string, timeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return fmt.Errorf("psconfig: connecting to collector: %w", err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return fmt.Errorf("psconfig: setting deadline: %w", err)
	}

	enc := json.NewEncoder(conn)
	if err := enc.Encode(c.ToWire()); err != nil {
		return fmt.Errorf("psconfig: sending command: %w", err)
	}
	var resp WireResponse
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		return fmt.Errorf("psconfig: reading response: %w", err)
	}
	if !resp.OK {
		return fmt.Errorf("psconfig: collector rejected command: %s", resp.Error)
	}
	return nil
}

// ServeConfig accepts config-P4 commands on ln and applies them to
// target until the listener closes. Each connection carries one
// JSON-encoded WireCommand and receives one WireResponse.
func ServeConfig(ln net.Listener, target Target) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			defer conn.Close()
			var w WireCommand
			resp := WireResponse{OK: true}
			if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&w); err != nil {
				resp = WireResponse{Error: err.Error()}
			} else if cmd, err := FromWire(w); err != nil {
				resp = WireResponse{Error: err.Error()}
			} else if err := cmd.Apply(target); err != nil {
				resp = WireResponse{Error: err.Error()}
			}
			// Best-effort acknowledgment: the peer may already be gone.
			_ = json.NewEncoder(conn).Encode(resp)
		}(conn)
	}
}
