package psconfig

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/simtime"
)

// ParseISODuration parses the ISO-8601 duration subset pSConfig
// templates use for test intervals: PT<n>H, PT<n>M, PT<n>S and
// combinations (e.g. "PT1H30M", "PT30S"). Date components (days and
// larger) support the common "P<n>D" form.
func ParseISODuration(s string) (simtime.Time, error) {
	orig := s
	if !strings.HasPrefix(s, "P") {
		return 0, fmt.Errorf("psconfig: duration %q must start with P", orig)
	}
	s = s[1:]

	var total simtime.Time
	inTime := false
	num := ""
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			num += string(r)
		case r == 'T':
			if inTime {
				return 0, fmt.Errorf("psconfig: duration %q has two T markers", orig)
			}
			inTime = true
		default:
			if num == "" {
				return 0, fmt.Errorf("psconfig: duration %q has unit %q without a value", orig, string(r))
			}
			n, err := strconv.Atoi(num)
			if err != nil {
				return 0, fmt.Errorf("psconfig: duration %q: %v", orig, err)
			}
			num = ""
			var unit simtime.Time
			switch r {
			case 'D':
				if inTime {
					return 0, fmt.Errorf("psconfig: duration %q: D after T", orig)
				}
				unit = 24 * 3600 * simtime.Second
			case 'H':
				if !inTime {
					return 0, fmt.Errorf("psconfig: duration %q: H before T", orig)
				}
				unit = 3600 * simtime.Second
			case 'M':
				if !inTime {
					return 0, fmt.Errorf("psconfig: duration %q: M before T (months unsupported)", orig)
				}
				unit = 60 * simtime.Second
			case 'S':
				if !inTime {
					return 0, fmt.Errorf("psconfig: duration %q: S before T", orig)
				}
				unit = simtime.Second
			default:
				return 0, fmt.Errorf("psconfig: duration %q: unknown unit %q", orig, string(r))
			}
			total += simtime.Time(n) * unit
		}
	}
	if num != "" {
		return 0, fmt.Errorf("psconfig: duration %q: trailing number without unit", orig)
	}
	if total <= 0 {
		return 0, fmt.Errorf("psconfig: duration %q is zero", orig)
	}
	return total, nil
}
