package psconfig

import (
	"net"
	"testing"
	"time"

	"repro/internal/controlplane"
)

func TestWireRoundTrip(t *testing.T) {
	cmd, _ := ParseConfigP4([]string{"--metric", "rtt", "--alert", "--threshold", "90", "--samples_per_second", "20"})
	back, err := FromWire(cmd.ToWire())
	if err != nil {
		t.Fatal(err)
	}
	if back.Metric != "rtt" || !back.Alert || back.Threshold != 90 || back.SamplesPerSecond != 20 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}

func TestWireRejectsInvalid(t *testing.T) {
	if _, err := FromWire(WireCommand{Metric: "bogus", SamplesPerSecond: 1}); err == nil {
		t.Fatal("invalid metric must be rejected on the server side")
	}
	if _, err := FromWire(WireCommand{}); err == nil {
		t.Fatal("empty command must be rejected")
	}
}

func TestSendAndServeOverTCP(t *testing.T) {
	cp := newRealControlPlane(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go ServeConfig(ln, cp)

	cmd, _ := ParseConfigP4([]string{"--metric", "throughput", "--samples_per_second", "8"})
	if err := cmd.Send(ln.Addr().String(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := cp.MetricConfigFor(controlplane.MetricThroughput).SamplesPerSecond; got != 8 {
		t.Fatalf("rate=%f after wire apply", got)
	}

	// An invalid command must come back as a rejection, not silence.
	bad := Command{Metric: "throughput"} // nothing to configure
	if err := bad.Send(ln.Addr().String(), 2*time.Second); err == nil {
		t.Fatal("server must reject an empty command")
	}
}

func TestSendConnectError(t *testing.T) {
	cmd, _ := ParseConfigP4([]string{"--samples_per_second", "1"})
	if err := cmd.Send("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Fatal("connecting to a dead port must fail")
	}
}
