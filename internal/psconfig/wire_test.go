package psconfig

import (
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/controlplane"
	"repro/internal/faultnet"
)

// dialVia adapts a faultnet listener to the SendOptions.Dial seam.
func dialVia(l *faultnet.Listener) func(string, time.Duration) (net.Conn, error) {
	return func(string, time.Duration) (net.Conn, error) { return l.Dial() }
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline or the deadline passes (conn-teardown propagation is
// asynchronous, per the resilient leak-test idiom).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline=%d now=%d", baseline, runtime.NumGoroutine())
}

func TestWireRoundTrip(t *testing.T) {
	cmd, _ := ParseConfigP4([]string{"--metric", "rtt", "--alert", "--threshold", "90", "--samples_per_second", "20"})
	back, err := FromWire(cmd.ToWire())
	if err != nil {
		t.Fatal(err)
	}
	if back.Metric != "rtt" || !back.Alert || back.Threshold != 90 || back.SamplesPerSecond != 20 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}

func TestWireRejectsInvalid(t *testing.T) {
	if _, err := FromWire(WireCommand{Metric: "bogus", SamplesPerSecond: 1}); err == nil {
		t.Fatal("invalid metric must be rejected on the server side")
	}
	if _, err := FromWire(WireCommand{}); err == nil {
		t.Fatal("empty command must be rejected")
	}
}

func TestSendAndServeOverTCP(t *testing.T) {
	cp := newRealControlPlane(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go ServeConfig(ln, cp)

	cmd, _ := ParseConfigP4([]string{"--metric", "throughput", "--samples_per_second", "8"})
	if err := cmd.Send(ln.Addr().String(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := cp.MetricConfigFor(controlplane.MetricThroughput).SamplesPerSecond; got != 8 {
		t.Fatalf("rate=%f after wire apply", got)
	}

	// An invalid command must come back as a rejection, not silence.
	bad := Command{Metric: "throughput"} // nothing to configure
	if err := bad.Send(ln.Addr().String(), 2*time.Second); err == nil {
		t.Fatal("server must reject an empty command")
	}
}

func TestSendConnectError(t *testing.T) {
	cmd, _ := ParseConfigP4([]string{"--samples_per_second", "1"})
	if err := cmd.Send("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Fatal("connecting to a dead port must fail")
	}
}

// TestServeConfigNoGoroutineLeakOnSilentClient is the regression test
// for the config-channel goroutine leak: a client that connects and
// never sends used to pin a handler goroutine in Decode for the
// listener's lifetime. With read deadlines the handler must be gone
// shortly after the deadline fires.
func TestServeConfigNoGoroutineLeakOnSilentClient(t *testing.T) {
	cp := newRealControlPlane(t)
	l := faultnet.NewListener()
	done := make(chan struct{})
	go func() {
		defer close(done)
		ServeConfigWith(l, cp, ServeOptions{
			ReadTimeout:  50 * time.Millisecond,
			WriteTimeout: 50 * time.Millisecond,
		})
	}()
	baseline := runtime.NumGoroutine()

	var conns []net.Conn
	for i := 0; i < 5; i++ {
		c, err := l.Dial()
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c) // connect, never send
	}
	waitGoroutines(t, baseline)
	for _, c := range conns {
		c.Close()
	}

	// Graceful drain: closing the listener must end the serve loop.
	l.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeConfigWith did not return after listener close")
	}
}

// TestSendRetriesRefusedDials exercises the bounded-retry client: two
// scripted connection refusals followed by a working listener must
// succeed on the third attempt, with deterministic jittered sleeps.
func TestSendRetriesRefusedDials(t *testing.T) {
	cp := newRealControlPlane(t)
	l := faultnet.NewListener()
	defer l.Close()
	go ServeConfig(l, cp)
	l.RefuseNext(2)

	var slept []time.Duration
	cmd, _ := ParseConfigP4([]string{"--metric", "rtt", "--samples_per_second", "6"})
	err := cmd.SendWith("collector", SendOptions{
		Attempts:   3,
		BackoffMin: 10 * time.Millisecond,
		BackoffMax: 40 * time.Millisecond,
		Seed:       7,
		Dial:       dialVia(l),
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatalf("send must succeed once refusals drain: %v", err)
	}
	if l.Dials() != 3 {
		t.Fatalf("dials=%d, want 3", l.Dials())
	}
	if len(slept) != 2 {
		t.Fatalf("sleeps=%d, want 2 (one per retry)", len(slept))
	}
	// Equal jitter: each sleep lies in [backoff/2, backoff).
	for i, d := range slept {
		backoff := 10 * time.Millisecond << i
		if d < backoff/2 || d >= backoff {
			t.Fatalf("sleep %d = %v outside [%v, %v)", i, d, backoff/2, backoff)
		}
	}
	if got := cp.MetricConfigFor(controlplane.MetricRTT).SamplesPerSecond; got != 6 {
		t.Fatalf("rate=%g after retried send", got)
	}
}

// TestSendRetryExhaustion: a listener that refuses every dial must
// fail after exactly opts.Attempts attempts, not hang.
func TestSendRetryExhaustion(t *testing.T) {
	l := faultnet.NewListener()
	defer l.Close()
	l.Refuse(true)
	cmd, _ := ParseConfigP4([]string{"--samples_per_second", "1"})
	err := cmd.SendWith("collector", SendOptions{
		Attempts: 3,
		Dial:     dialVia(l),
		Sleep:    func(time.Duration) {},
	})
	if err == nil || !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("want exhaustion error naming attempts, got %v", err)
	}
	if l.Dials() != 3 {
		t.Fatalf("dials=%d, want 3", l.Dials())
	}
}

// rawExchange sends raw bytes as the request and decodes the server's
// response. The write runs in the background: net.Pipe is synchronous,
// and a server that (correctly) stops reading — size cap hit, busy
// rejection — would otherwise deadlock the test against its own
// unconsumed request bytes.
func rawExchange(t *testing.T, c net.Conn, raw []byte) WireResponse {
	t.Helper()
	defer c.Close()
	if err := c.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	go func() {
		_, _ = c.Write(raw) // best effort; the server may cut us off
	}()
	var resp WireResponse
	if err := json.NewDecoder(c).Decode(&resp); err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp
}

// TestServeMalformedJSON: garbage on the wire must produce an error
// response, not a crash, and the server must keep serving afterwards.
func TestServeMalformedJSON(t *testing.T) {
	cp := newRealControlPlane(t)
	l := faultnet.NewListener()
	defer l.Close()
	go ServeConfig(l, cp)

	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if resp := rawExchange(t, c, []byte("{nope")); resp.OK || resp.Error == "" {
		t.Fatalf("malformed JSON must be rejected with an error: %+v", resp)
	}

	cmd, _ := ParseConfigP4([]string{"--metric", "throughput", "--samples_per_second", "3"})
	if err := cmd.SendWith("collector", SendOptions{Dial: dialVia(l)}); err != nil {
		t.Fatalf("server must keep serving after a malformed request: %v", err)
	}
}

// TestServeOversizedRequest: a request larger than MaxRequestBytes is
// rejected with a size error instead of being buffered.
func TestServeOversizedRequest(t *testing.T) {
	cp := newRealControlPlane(t)
	l := faultnet.NewListener()
	defer l.Close()
	go ServeConfigWith(l, cp, ServeOptions{MaxRequestBytes: 64})

	big := []byte(`{"metric":"throughput","samples_per_second":1,"pad":"` +
		strings.Repeat("x", 200) + `"}`)
	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	resp := rawExchange(t, c, big)
	if resp.OK || !strings.Contains(resp.Error, "exceeds 64 bytes") {
		t.Fatalf("oversized request not rejected by size: %+v", resp)
	}
}

// TestServeMidRecordReset: a connection reset halfway through the
// request leaves the server healthy for the next command.
func TestServeMidRecordReset(t *testing.T) {
	cp := newRealControlPlane(t)
	l := faultnet.NewListener()
	defer l.Close()
	go ServeConfig(l, cp)

	l.ScriptNext(faultnet.Script{{AfterBytes: 10, Kind: faultnet.Reset}})
	cmd, _ := ParseConfigP4([]string{"--metric", "rtt", "--samples_per_second", "9"})
	if err := cmd.SendWith("collector", SendOptions{Attempts: 1, Dial: dialVia(l)}); err == nil {
		t.Fatal("mid-record reset must surface as a send error")
	}
	if got := cp.MetricConfigFor(controlplane.MetricRTT).SamplesPerSecond; got == 9 {
		t.Fatal("torn command must not be applied")
	}

	if err := cmd.SendWith("collector", SendOptions{Dial: dialVia(l)}); err != nil {
		t.Fatalf("server must keep serving after a reset: %v", err)
	}
	if got := cp.MetricConfigFor(controlplane.MetricRTT).SamplesPerSecond; got != 9 {
		t.Fatalf("rate=%g after clean resend", got)
	}
}

// TestServeStallVsDeadline: a client that stalls mid-record longer
// than the read deadline is cut off; the send fails instead of
// wedging a server goroutine.
func TestServeStallVsDeadline(t *testing.T) {
	cp := newRealControlPlane(t)
	l := faultnet.NewListener()
	defer l.Close()
	go ServeConfigWith(l, cp, ServeOptions{
		ReadTimeout:  50 * time.Millisecond,
		WriteTimeout: 50 * time.Millisecond,
	})

	l.ScriptNext(faultnet.Script{{AfterBytes: 5, Kind: faultnet.Stall, Delay: 300 * time.Millisecond}})
	cmd, _ := ParseConfigP4([]string{"--metric", "rtt", "--samples_per_second", "2"})
	start := time.Now()
	err := cmd.SendWith("collector", SendOptions{Attempts: 1, Timeout: time.Second, Dial: dialVia(l)})
	if err == nil {
		t.Fatal("stalled send must fail once the server cuts the connection")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("stall handling took %v; deadline did not bound it", elapsed)
	}
	if got := cp.MetricConfigFor(controlplane.MetricRTT).SamplesPerSecond; got == 2 {
		t.Fatal("stalled command must not be applied")
	}
}

// TestServeBusyCap: with MaxConns 1 occupied by a silent client, the
// next connection receives an immediate busy rejection.
func TestServeBusyCap(t *testing.T) {
	cp := newRealControlPlane(t)
	l := faultnet.NewListener()
	defer l.Close()
	go ServeConfigWith(l, cp, ServeOptions{MaxConns: 1, ReadTimeout: 2 * time.Second})

	holder, err := l.Dial() // occupies the single slot, sends nothing
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	// The holder's handler start is asynchronous; poll until the second
	// connection observes the busy rejection.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := l.Dial()
		if err != nil {
			t.Fatal(err)
		}
		resp := rawExchange(t, c, []byte(`{"samples_per_second":1}`))
		if !resp.OK && strings.Contains(resp.Error, "busy") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw the busy rejection; last response %+v", resp)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConcurrentCommandsUnderRace drives 16 concurrent commands at one
// collector. Every command must be acknowledged, the final config must
// be internally consistent (some accepted command's value for every
// metric), and no superseded generation may stay pinned.
func TestConcurrentCommandsUnderRace(t *testing.T) {
	cp := newRealControlPlane(t)
	l := faultnet.NewListener()
	defer l.Close()
	go ServeConfig(l, cp)

	metrics := controlplane.AllMetrics()
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := metrics[i%len(metrics)]
			rate := fmt.Sprintf("%d", 1+i)
			cmd, err := ParseConfigP4([]string{"--metric", string(m), "--samples_per_second", rate})
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = cmd.SendWith("collector", SendOptions{Dial: dialVia(l)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("command %d failed: %v", i, err)
		}
	}
	for i, m := range metrics {
		got := cp.MetricConfigFor(m).SamplesPerSecond
		want := map[float64]bool{}
		for j := i; j < 16; j += len(metrics) {
			want[float64(1+j)] = true
		}
		if !want[got] {
			t.Fatalf("metric %s rate %g is not any sent value %v", m, got, want)
		}
	}
	if c := cp.ConfigGenerations(); c.Published != 16 || c.Outstanding != 0 {
		t.Fatalf("generation accounting after 16 commands: %+v", c)
	}
}
