// Package psconfig models the perfSONAR configuration layer the paper
// extends: the pSConfig template format plus the new `config-P4`
// command (Figure 6) through which a perfSONAR node configures the
// programmable switch's control plane at run time — reporting rates
// per metric and alert thresholds with escalated rates.
package psconfig

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/controlplane"
)

// Target is what config-P4 configures: the switch control plane (or a
// remote proxy speaking to one). Update must be transactional — the
// mutation runs against a scratch copy of the runtime config and an
// error publishes nothing — so a config-P4 command either applies to
// every metric it names or to none of them.
type Target interface {
	Update(mut func(*controlplane.RuntimeConfig) error) error
}

// Command is one parsed `psconfig config-P4 ...` invocation.
type Command struct {
	// Metric the configuration applies to; empty applies to all four
	// metrics ("The configuration will be applied to all metrics if the
	// administrator does not use the --metric parameter").
	Metric string
	// SamplesPerSecond is the reporting rate. Without --alert it is the
	// base rate; with --alert it is the escalated rate applied once the
	// threshold trips (Figure 6, line 3).
	SamplesPerSecond float64
	// Alert marks an alert-threshold configuration.
	Alert bool
	// Threshold is the alerting threshold (--threshold), in the
	// metric's units.
	Threshold float64

	hasSamples bool
}

// ParseConfigP4 parses the argument list following `config-P4`.
// Supported flags (Figure 6): --metric <name>, --samples_per_second
// <rate>, --alert, --threshold <value>.
func ParseConfigP4(args []string) (Command, error) {
	var cmd Command
	i := 0
	next := func(flag string) (string, error) {
		i++
		if i >= len(args) {
			return "", fmt.Errorf("psconfig: %s requires a value", flag)
		}
		return args[i], nil
	}
	for ; i < len(args); i++ {
		switch args[i] {
		case "--metric":
			v, err := next("--metric")
			if err != nil {
				return cmd, err
			}
			if !controlplane.ValidMetric(v) {
				return cmd, fmt.Errorf("psconfig: unknown metric %q (valid: throughput, packet_loss, rtt, queue_occupancy)", v)
			}
			cmd.Metric = v
		case "--samples_per_second":
			v, err := next("--samples_per_second")
			if err != nil {
				return cmd, err
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 {
				return cmd, fmt.Errorf("psconfig: invalid samples_per_second %q", v)
			}
			cmd.SamplesPerSecond = f
			cmd.hasSamples = true
		case "--alert":
			cmd.Alert = true
		case "--threshold":
			v, err := next("--threshold")
			if err != nil {
				return cmd, err
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 {
				return cmd, fmt.Errorf("psconfig: invalid threshold %q", v)
			}
			cmd.Threshold = f
		default:
			return cmd, fmt.Errorf("psconfig: unknown flag %q", args[i])
		}
	}
	if cmd.Alert && cmd.Threshold <= 0 {
		return cmd, fmt.Errorf("psconfig: --alert requires --threshold")
	}
	if !cmd.Alert && !cmd.hasSamples {
		return cmd, fmt.Errorf("psconfig: nothing to configure (need --samples_per_second and/or --alert --threshold)")
	}
	return cmd, nil
}

// metricsFor expands the command's target metric list.
func (c Command) metricsFor() []controlplane.Metric {
	if c.Metric != "" {
		return []controlplane.Metric{controlplane.Metric(c.Metric)}
	}
	return controlplane.AllMetrics()
}

// Apply pushes the configuration into the target as one transaction:
// all metrics the command names change together, and any per-metric
// error (even on the last of four metrics) leaves the target's config
// exactly as it was.
func (c Command) Apply(t Target) error {
	return t.Update(func(rc *controlplane.RuntimeConfig) error {
		for _, m := range c.metricsFor() {
			if c.Alert {
				if err := rc.SetAlert(m, c.Threshold, c.SamplesPerSecond); err != nil {
					return err
				}
			} else if c.hasSamples {
				if err := rc.SetRate(m, c.SamplesPerSecond); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// String renders the command back in Figure 6 syntax.
func (c Command) String() string {
	s := "psconfig config-P4"
	if c.Metric != "" {
		s += " --metric " + c.Metric
	}
	if c.Alert {
		s += fmt.Sprintf(" --alert --threshold %g", c.Threshold)
	}
	if c.hasSamples {
		s += fmt.Sprintf(" --samples_per_second %g", c.SamplesPerSecond)
	}
	return s
}

// Template is a minimal pSConfig template: the JSON document a
// perfSONAR node consumes to learn its archives and scheduled tasks.
// The paper's extension adds "p4" task entries whose spec holds
// config-P4 style parameters.
type Template struct {
	Archives map[string]Archive `json:"archives"`
	Tasks    map[string]Task    `json:"tasks"`
}

// Archive names a data sink, e.g. the OpenSearch archiver.
type Archive struct {
	Archiver string            `json:"archiver"`
	Data     map[string]string `json:"data,omitempty"`
}

// Task is one scheduled activity: a classic pScheduler test
// ("throughput", "latency") or the new "p4" monitoring configuration.
type Task struct {
	Type     string            `json:"type"`
	Interval string            `json:"interval,omitempty"` // e.g. "PT6H" for actives
	Spec     map[string]string `json:"spec,omitempty"`
	Archives []string          `json:"archives,omitempty"`
}

// ParseTemplate decodes a pSConfig JSON template.
func ParseTemplate(data []byte) (*Template, error) {
	var t Template
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("psconfig: template: %w", err)
	}
	return &t, nil
}

// P4Commands extracts the config-P4 commands implied by the template's
// "p4" tasks, in sorted task-name order for determinism.
func (t *Template) P4Commands() ([]Command, error) {
	names := make([]string, 0, len(t.Tasks))
	for name, task := range t.Tasks {
		if task.Type == "p4" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var cmds []Command
	for _, name := range names {
		task := t.Tasks[name]
		args := specToArgs(task.Spec)
		cmd, err := ParseConfigP4(args)
		if err != nil {
			return nil, fmt.Errorf("psconfig: task %q: %w", name, err)
		}
		cmds = append(cmds, cmd)
	}
	return cmds, nil
}

func specToArgs(spec map[string]string) []string {
	var args []string
	if v, ok := spec["metric"]; ok {
		args = append(args, "--metric", v)
	}
	if v, ok := spec["samples_per_second"]; ok {
		args = append(args, "--samples_per_second", v)
	}
	if v, ok := spec["alert"]; ok && v == "true" {
		args = append(args, "--alert")
	}
	if v, ok := spec["threshold"]; ok {
		args = append(args, "--threshold", v)
	}
	return args
}
