package psconfig

import (
	"testing"

	"repro/internal/controlplane"
	"repro/internal/dataplane"
	"repro/internal/simtime"
)

// newRealControlPlane builds a minimal live control plane so the tests
// can verify psconfig against the real Target implementation.
func newRealControlPlane(t *testing.T) *controlplane.ControlPlane {
	t.Helper()
	e := simtime.NewEngine()
	dp := dataplane.New(dataplane.Config{})
	sink := &controlplane.MemorySink{}
	cp := controlplane.New(e, dp, sink, controlplane.Config{LinkCapacityBps: 1e9})
	cp.Start()
	return cp
}
