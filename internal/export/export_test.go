package export

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/simtime"
)

func twoSeries() (*metrics.Series, *metrics.Series) {
	a := metrics.NewSeries("alpha")
	b := metrics.NewSeries("beta")
	for i := 0; i < 5; i++ {
		a.Append(simtime.Time(i)*simtime.Second, float64(i))
	}
	b.Append(simtime.Second, 100)
	b.Append(3*simtime.Second, 300)
	return a, b
}

func TestWriteCSV(t *testing.T) {
	a, b := twoSeries()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time_s,alpha,beta" {
		t.Fatalf("header: %q", lines[0])
	}
	if len(lines) != 6 { // 5 union timestamps + header
		t.Fatalf("lines: %d\n%s", len(lines), buf.String())
	}
	// t=1s row has both values.
	found := false
	for _, l := range lines[1:] {
		if strings.HasPrefix(l, "1.000000,") {
			if l != "1.000000,1,100" {
				t.Fatalf("row: %q", l)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("missing merged row")
	}
}

func TestWriteCSVNoSeries(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf); err == nil {
		t.Fatal("empty input must error")
	}
}

func TestSaveCSVAndJSON(t *testing.T) {
	a, b := twoSeries()
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "sub", "out.csv")
	if err := SaveCSV(csvPath, a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(csvPath); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "sub2", "out.json")
	if err := SaveJSON(jsonPath, a, b); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(jsonPath)
	if !strings.Contains(string(data), "\"alpha\"") || !strings.Contains(string(data), "\"t_s\"") {
		t.Fatalf("json: %s", data)
	}
}

func TestSaveCSVPropagatesCreateError(t *testing.T) {
	a, _ := twoSeries()
	dir := t.TempDir()
	// Parent path component is a regular file: MkdirAll must fail and
	// SaveCSV must surface it.
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := SaveCSV(filepath.Join(blocker, "out.csv"), a); err == nil {
		t.Fatal("SaveCSV through a regular file must error")
	}
	// Path itself is a directory: os.Create must fail and SaveCSV must
	// surface it.
	if err := SaveCSV(dir, a); err == nil {
		t.Fatal("SaveCSV onto a directory must error")
	}
}

func TestSaveCSVReadOnlyDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("permission bits do not bind root")
	}
	a, _ := twoSeries()
	dir := t.TempDir()
	ro := filepath.Join(dir, "ro")
	if err := os.Mkdir(ro, 0o555); err != nil {
		t.Fatal(err)
	}
	if err := SaveCSV(filepath.Join(ro, "out.csv"), a); err == nil {
		t.Fatal("SaveCSV into a read-only dir must error")
	}
	if err := SaveJSON(filepath.Join(ro, "out.json"), a); err == nil {
		t.Fatal("SaveJSON into a read-only dir must error")
	}
}

func TestSaveCSVPropagatesWriteError(t *testing.T) {
	// /dev/full accepts the open but fails every write with ENOSPC —
	// the deterministic stand-in for a disk filling up mid-save. Before
	// SaveCSV propagated close/write failures, a caller could be told a
	// truncated file was saved successfully.
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	a, _ := twoSeries()
	if err := SaveCSV("/dev/full", a); err == nil {
		t.Fatal("SaveCSV to /dev/full must report the write failure")
	}
}

func TestSaveJSONPropagatesErrors(t *testing.T) {
	a, _ := twoSeries()
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := SaveJSON(filepath.Join(blocker, "out.json"), a); err == nil {
		t.Fatal("SaveJSON through a regular file must error")
	}
	if err := SaveJSON(dir, a); err == nil {
		t.Fatal("SaveJSON onto a directory must error")
	}
}

func TestChartRendersAllSeries(t *testing.T) {
	a, b := twoSeries()
	out := Chart("test chart", 60, 10, a, b)
	if !strings.Contains(out, "test chart") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("series glyphs missing")
	}
	if !strings.Contains(out, "*=alpha") || !strings.Contains(out, "+=beta") {
		t.Fatal("legend missing")
	}
}

func TestChartEmptySeries(t *testing.T) {
	s := metrics.NewSeries("empty")
	out := Chart("nothing", 40, 8, s)
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart: %q", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	s := metrics.NewSeries("const")
	s.Append(0, 5)
	s.Append(simtime.Second, 5)
	out := Chart("flat", 40, 8, s)
	if strings.Contains(out, "(no data)") {
		t.Fatal("constant series should still draw")
	}
}

func TestChartClampsTinyDimensions(t *testing.T) {
	a, _ := twoSeries()
	out := Chart("tiny", 1, 1, a)
	if len(out) == 0 {
		t.Fatal("no output")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{
		{"1", "2"},
		{"wide-cell", "x"},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines: %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a          long-header") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---------") {
		t.Fatalf("separator: %q", lines[1])
	}
}
