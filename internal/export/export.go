// Package export renders experiment results: CSV and JSON series files
// for plotting, and ASCII charts for the terminal — the repository's
// stand-in for the paper's Grafana dashboards.
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// WriteCSV writes one or more series sharing a time axis to w. Series
// are sampled at their own timestamps; rows are the union of all
// timestamps with empty cells for missing samples.
func WriteCSV(w io.Writer, series ...*metrics.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("export: no series")
	}
	header := []string{"time_s"}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}

	type cell struct {
		col int
		v   float64
	}
	rows := map[int64][]cell{}
	var times []int64
	for col, s := range series {
		for _, p := range s.Points {
			t := int64(p.T)
			if _, ok := rows[t]; !ok {
				times = append(times, t)
			}
			rows[t] = append(rows[t], cell{col: col, v: p.V})
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	for _, t := range times {
		cols := make([]string, len(series)+1)
		cols[0] = fmt.Sprintf("%.6f", float64(t)/1e9)
		for _, c := range rows[t] {
			cols[c.col+1] = fmt.Sprintf("%g", c.v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
			return err
		}
	}
	return nil
}

// SaveCSV writes series to a file, creating parent directories. The
// file's Close error is propagated: on many filesystems delayed writes
// surface only at close, so `defer f.Close()` would silently report a
// truncated file as saved.
func SaveCSV(path string, series ...*metrics.Series) (err error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return WriteCSV(f, series...)
}

// jsonPoint mirrors a sample for JSON output.
type jsonPoint struct {
	T float64 `json:"t_s"`
	V float64 `json:"v"`
}

// SaveJSON writes the series as a JSON object keyed by series name.
// (os.WriteFile already propagates the file's Close error, so unlike
// SaveCSV it needs no extra handling.)
func SaveJSON(path string, series ...*metrics.Series) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	out := map[string][]jsonPoint{}
	for _, s := range series {
		pts := make([]jsonPoint, len(s.Points))
		for i, p := range s.Points {
			pts[i] = jsonPoint{T: p.T.Seconds(), V: p.V}
		}
		out[s.Name] = pts
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Chart renders series as an ASCII line chart of the given size.
// Multiple series share axes and draw with distinct glyphs.
func Chart(title string, width, height int, series ...*metrics.Series) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@'}

	// Bounds.
	minT, maxT := math.MaxFloat64, -math.MaxFloat64
	minV, maxV := 0.0, -math.MaxFloat64
	any := false
	for _, s := range series {
		for _, p := range s.Points {
			ts := p.T.Seconds()
			if ts < minT {
				minT = ts
			}
			if ts > maxT {
				maxT = ts
			}
			if p.V > maxV {
				maxV = p.V
			}
			if p.V < minV {
				minV = p.V
			}
			any = true
		}
	}
	if !any {
		return title + "\n(no data)\n"
	}
	if maxV == minV {
		maxV = minV + 1
	}
	if maxT == minT {
		maxT = minT + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			x := int((p.T.Seconds() - minT) / (maxT - minT) * float64(width-1))
			y := int((p.V - minV) / (maxV - minV) * float64(height-1))
			row := height - 1 - y
			grid[row][x] = g
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%12.4g ┤%s\n", maxV, string(grid[0]))
	for i := 1; i < height-1; i++ {
		fmt.Fprintf(&b, "%12s │%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(&b, "%12.4g ┤%s\n", minV, string(grid[height-1]))
	fmt.Fprintf(&b, "%12s  %-10.4g%*s%10.4g (s)\n", "", minT, width-20, "", maxT)
	legend := make([]string, len(series))
	for i, s := range series {
		legend[i] = fmt.Sprintf("%c=%s", glyphs[i%len(glyphs)], s.Name)
	}
	fmt.Fprintf(&b, "%12s  %s\n", "", strings.Join(legend, "  "))
	return b.String()
}

// Table renders rows as an aligned text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
