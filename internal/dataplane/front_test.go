package dataplane

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tap"
)

// drainInBatches feeds the trace through ProcessFront in fronts of at
// most batch views (batch <= 0 means one front holding everything),
// returning the pipeline and its long-flow announcements.
func drainInBatches(trace []tap.Copy, batch int) (*DataPlane, []LongFlowEvent) {
	d := New(Config{LongFlowBytes: 64 << 10})
	var events []LongFlowEvent
	d.OnLongFlow = func(ev LongFlowEvent) { events = append(events, ev) }
	if batch <= 0 {
		batch = len(trace)
	}
	f := NewFront(batch)
	for _, c := range trace {
		f.AppendCopy(c)
		if f.Len() >= batch {
			d.ProcessFront(f)
			f.Reset()
		}
	}
	d.ProcessFront(f)
	f.Reset()
	return d, events
}

// assertSameState fails unless two pipelines hold byte-identical
// observable state: every register cell, the stats counters, the
// monitor table's hit/miss counters, and the CMS estimates for every
// flow in the trace.
func assertSameState(t *testing.T, label string, want, got *DataPlane, flows int) {
	t.Helper()
	if want.Stats != got.Stats {
		t.Fatalf("%s: stats diverge\nwant %+v\n got %+v", label, want.Stats, got.Stats)
	}
	if want.monitorTable.Hits != got.monitorTable.Hits ||
		want.monitorTable.Misses != got.monitorTable.Misses {
		t.Fatalf("%s: monitor table counters diverge: want %d/%d, got %d/%d",
			label, want.monitorTable.Hits, want.monitorTable.Misses,
			got.monitorTable.Hits, got.monitorTable.Misses)
	}
	for _, name := range want.RegisterNames() {
		w, g := want.RegisterByName(name), got.RegisterByName(name)
		ws := w.Snapshot(nil)
		gs := g.Snapshot(nil)
		for i := range ws {
			if ws[i] != gs[i] {
				t.Fatalf("%s: register %s[%d]: want %d, got %d", label, name, i, ws[i], gs[i])
			}
		}
	}
	for i := 0; i < flows; i++ {
		k := KeyOf(traceFlow(i))
		if we, ge := want.Sketch().EstimateKey(k), got.Sketch().EstimateKey(k); we != ge {
			t.Fatalf("%s: CMS estimate for flow %d: want %d, got %d", label, i, we, ge)
		}
	}
}

// TestFrontBatchEquivalence is the batch-path correctness property:
// any interleaving of batch sizes over the same packet sequence yields
// byte-identical register state, statistics, monitor-table counters,
// sketch estimates and event streams as the per-packet ProcessCopy
// path — fixed sizes 1, 7, 64, one whole-trace front, and seeded
// random splits.
func TestFrontBatchEquivalence(t *testing.T) {
	const flows, pkts = 12, 40
	trace := buildTrace(flows, pkts)

	base := New(Config{LongFlowBytes: 64 << 10})
	var baseEvents []LongFlowEvent
	base.OnLongFlow = func(ev LongFlowEvent) { baseEvents = append(baseEvents, ev) }
	for _, c := range trace {
		base.ProcessCopy(c)
	}

	for _, batch := range []int{1, 7, 64, 0} {
		label := fmt.Sprintf("batch=%d", batch)
		if batch == 0 {
			label = "batch=whole-trace"
		}
		d, events := drainInBatches(trace, batch)
		assertSameState(t, label, base, d, flows)
		if len(events) != len(baseEvents) {
			t.Fatalf("%s: %d long-flow events, want %d", label, len(events), len(baseEvents))
		}
		for i := range events {
			if events[i] != baseEvents[i] {
				t.Fatalf("%s: event %d differs: %+v vs %+v", label, i, events[i], baseEvents[i])
			}
		}
	}

	// Random interleavings: split the trace at seeded-random boundaries
	// so fronts of wildly mixed sizes (including empty ones) replay it.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		d := New(Config{LongFlowBytes: 64 << 10})
		var events []LongFlowEvent
		d.OnLongFlow = func(ev LongFlowEvent) { events = append(events, ev) }
		f := NewFront(64)
		for i := 0; i < len(trace); {
			n := 1 + rng.Intn(200)
			if i+n > len(trace) {
				n = len(trace) - i
			}
			for _, c := range trace[i : i+n] {
				f.AppendCopy(c)
			}
			i += n
			d.ProcessFront(f)
			f.Reset()
			if rng.Intn(3) == 0 {
				d.ProcessFront(f) // empty front: must be a no-op
			}
		}
		assertSameState(t, fmt.Sprintf("random-trial=%d", trial), base, d, flows)
		if len(events) != len(baseEvents) {
			t.Fatalf("random-trial=%d: %d events, want %d", trial, len(events), len(baseEvents))
		}
	}
}

// TestPipesProcessFrontMatchesProcessCopy: the front-end's bulk ingest
// is observationally identical to per-packet ingest at 1 and 4 shards
// (merged registers, stats, events).
func TestPipesProcessFrontMatchesProcessCopy(t *testing.T) {
	const flows, pkts = 12, 40
	trace := buildTrace(flows, pkts)
	for _, shards := range []int{1, 4} {
		perPacket, ppEvents := runTrace(trace, shards)

		bulk := NewPipes(Config{LongFlowBytes: 64 << 10}, shards)
		var bulkEvents []LongFlowEvent
		bulk.SetLongFlowHandler(func(ev LongFlowEvent) { bulkEvents = append(bulkEvents, ev) })
		f := NewFront(97) // deliberately odd capacity
		for _, c := range trace {
			f.AppendCopy(c)
			if f.Len() >= 97 {
				bulk.ProcessFront(f)
				f.Reset()
			}
		}
		bulk.ProcessFront(f)
		f.Reset()
		bulk.Flush()

		if got, want := bulk.StatsSnapshot(), perPacket.StatsSnapshot(); got != want {
			t.Fatalf("shards=%d: stats diverge\nwant %+v\n got %+v", shards, want, got)
		}
		for _, name := range bulk.RegisterNames() {
			size := bulk.Shard(0).RegisterByName(name).Size()
			for idx := 0; idx < size; idx++ {
				bv, _ := bulk.ReadRegister(name, uint32(idx))
				pv, _ := perPacket.ReadRegister(name, uint32(idx))
				if bv != pv {
					t.Fatalf("shards=%d: register %s[%d]: bulk %d, per-packet %d",
						shards, name, idx, bv, pv)
				}
			}
		}
		if len(bulkEvents) != len(ppEvents) {
			t.Fatalf("shards=%d: %d events via fronts, %d per-packet",
				shards, len(bulkEvents), len(ppEvents))
		}
	}
}

// TestFrontReuseConcurrentFillDrain is the -race proof of the Front
// ownership contract: a producer fills one front while a consumer
// drains the other through the sharded front-end, exchanging fronts
// over channels (the handoff is the happens-before edge). Any missing
// synchronisation in Front reuse or ProcessFront surfaces under the
// race detector.
func TestFrontReuseConcurrentFillDrain(t *testing.T) {
	const flows, pkts = 8, 50
	trace := buildTrace(flows, pkts)
	p := NewPipes(Config{LongFlowBytes: 64 << 10}, 4)

	free := make(chan *Front, 2)
	full := make(chan *Front)
	free <- NewFront(64)
	free <- NewFront(64)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for f := range full {
			p.ProcessFront(f)
			f.Reset()
			free <- f
		}
	}()

	f := <-free
	for _, c := range trace {
		f.AppendCopy(c)
		if f.Len() >= 64 {
			full <- f
			f = <-free
		}
	}
	full <- f
	close(full)
	<-done
	p.Flush()

	want, _ := runTrace(trace, 1)
	if got, w := p.StatsSnapshot(), want.StatsSnapshot(); got != w {
		t.Fatalf("concurrent fill/drain diverged from serial run:\nwant %+v\n got %+v", w, got)
	}
}

// TestFrontSpanAndReset pins the Front accessors: Span is last-first,
// Reset keeps capacity.
func TestFrontSpanAndReset(t *testing.T) {
	f := NewFront(8)
	if f.Span() != 0 || f.Len() != 0 {
		t.Fatalf("empty front: len=%d span=%d", f.Len(), f.Span())
	}
	trace := buildTrace(2, 3)
	for _, c := range trace[:5] {
		f.AppendCopy(c)
	}
	if want := trace[4].At - trace[0].At; f.Span() != want {
		t.Fatalf("span = %d, want %d", f.Span(), want)
	}
	f.Reset()
	if f.Len() != 0 {
		t.Fatalf("reset front has %d views", f.Len())
	}
	if cap(f.views) < 5 {
		t.Fatalf("reset dropped capacity: %d", cap(f.views))
	}
}
