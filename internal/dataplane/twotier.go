package dataplane

import (
	"math"
	"math/bits"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/sketch"
)

// This file is the two-tier memory model (DESIGN.md §5.8): the exact
// register tier admits one flow per cell — first writer owns it until
// released or aged out — and every non-admitted packet lands in the
// lean sketch tier (internal/sketch) with (ε, δ)-bounded counters.
// Aliasing, which the single-tier pipeline silently absorbed as
// corrupted cells, becomes a counted event plus a bounded-error
// estimate. Flow-table aging evicts idle unannounced cells, folding
// their exact history into the sketches so no traffic is ever lost to
// the estimate, and per-flow RTT histograms (log₂ buckets, the
// internal/obs layout windowed to plausible RTTs) live in a flat
// register the control plane extracts p50/p95/p99 from.

// RTTHistBuckets is the number of log₂ RTT buckets per flow cell.
// Bucket i covers RTT values whose bit length is rttHistMinBits+i
// (the internal/obs Histogram rule, windowed): bucket 0 absorbs
// everything under 2^rttHistMinBits ns ≈ 1 µs, the last bucket
// everything from 2^(rttHistMinBits+RTTHistBuckets-1) ns ≈ 137 s up.
const RTTHistBuckets = 28

// rttHistMinBits is the histogram window's low edge: bit lengths at or
// below it clamp to bucket 0 (sub-microsecond "RTTs" are measurement
// artifacts, not round trips worth resolution).
const rttHistMinBits = 10

// rttBucket maps an RTT in nanoseconds to its histogram bucket — the
// same bits.Len64 rule internal/obs.Histogram applies, clamped to the
// [rttHistMinBits, rttHistMinBits+RTTHistBuckets) window.
//
// p4:hotpath
func rttBucket(rttNs uint64) uint32 {
	b := bits.Len64(rttNs)
	if b <= rttHistMinBits {
		return 0
	}
	if b >= rttHistMinBits+RTTHistBuckets {
		return RTTHistBuckets - 1
	}
	return uint32(b - rttHistMinBits)
}

// RTTHistUpper returns the inclusive upper bound (ns) of histogram
// bucket i — the obs.BucketUpper of the bucket's absolute bit length.
func RTTHistUpper(i int) simtime.Time {
	if i <= 0 {
		return simtime.Time(obs.BucketUpper(rttHistMinBits))
	}
	if i >= RTTHistBuckets {
		i = RTTHistBuckets - 1
	}
	return simtime.Time(obs.BucketUpper(rttHistMinBits + i))
}

// RTTHist is one flow's extracted RTT distribution: per-bucket sample
// counts read out of the rtt_hist register. A value type — extraction
// loops stay heap-allocation-free.
type RTTHist struct {
	// Buckets holds the per-bucket sample counts (see RTTHistBuckets
	// for the bucket rule).
	Buckets [RTTHistBuckets]uint64
}

// Count returns the histogram's total sample count.
func (h *RTTHist) Count() uint64 {
	var n uint64
	for _, c := range h.Buckets {
		n += c
	}
	return n
}

// Quantile returns the smallest bucket upper bound covering fraction q
// of the samples (0 when the histogram is empty). Quantiles from log₂
// buckets are upper bounds with at most one-octave resolution — the
// trade the P4TG histogram approach makes for in-register storage.
func (h *RTTHist) Quantile(q float64) simtime.Time {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.Buckets {
		cum += h.Buckets[i]
		if cum >= rank {
			return RTTHistUpper(i)
		}
	}
	return RTTHistUpper(RTTHistBuckets - 1)
}

// admitCell is the exact-tier admission gate: the first flow to touch
// a cell owns it (ID witness plus full-key side record) until
// ReleaseFlow or aging frees it. Packets from any other flow are not
// admitted — they must be routed to the lean tier. SlotCollisions
// preserves its historical meaning (distinct flow IDs contending for
// one cell); AliasedPackets counts every packet the gate turned away,
// including the rare full-ID collision where two keys share a CRC32.
//
// p4:hotpath
func (d *DataPlane) admitCell(idx uint32, id FlowID, key FlowKey) bool {
	owner := d.ownerLo.Read(idx)
	if owner == 0 {
		d.ownerLo.Write(idx, uint64(id))
		d.ownerKeys[idx] = key
		return true
	}
	if owner == uint64(id) && d.ownerKeys[idx] == key {
		return true
	}
	if owner != uint64(id) {
		d.Stats.SlotCollisions++
	}
	d.Stats.AliasedPackets++
	if o := d.obs; o != nil {
		o.aliased.Inc()
	}
	return false
}

// ownsCell reports whether the flow (id, key) currently owns its cell
// — the read-only admission check the ACK and egress paths use before
// writing into a cell the data path may not have admitted them to.
//
// p4:hotpath
func (d *DataPlane) ownsCell(idx uint32, id FlowID, key FlowKey) bool {
	return d.ownerLo.Read(idx) == uint64(id) && d.ownerKeys[idx] == key
}

// leanIngress counts one non-admitted ingress packet in the sketch
// tier: bytes and packets always, plus dup-filter loss detection for
// TCP data (a (key, seq) pair seen before is a retransmission).
//
// p4:hotpath
func (d *DataPlane) leanIngress(v *view) {
	lk := sketch.Key(v.key)
	d.lean.Observe(&lk, uint64(v.totalLen))
	if v.data && v.proto == packet.ProtoTCP {
		if d.lean.SeenSeq(&lk, v.seqExt) {
			d.lean.CountLoss(&lk)
		}
	}
}

// AgeFlows is the flow-table aging sweep: every unannounced cell whose
// last_seen is older than window is evicted — its exact byte, packet
// and loss counters fold into the lean sketches under the stored owner
// key (the estimate keeps covering the flow's full history) and the
// cell is released for the next admission. Announced cells are the
// control plane directory's responsibility (its FIN/idle sweep
// releases them with a flow-summary report) and are skipped here, so
// a directory entry never reads a cell that restarted under it.
// Returns the number of cells evicted. O(FlowTableSize): an epoch
// sweep for the extraction cadence, not the packet path.
func (d *DataPlane) AgeFlows(now, window simtime.Time) int {
	evicted := 0
	for i := uint32(0); i < d.tableN; i++ {
		if d.ownerLo.Read(i) == 0 || d.announced.Read(i) == 1 {
			continue
		}
		last := simtime.Time(d.lastSeen.Read(i))
		if last == 0 || now-last <= window {
			continue
		}
		lk := sketch.Key(d.ownerKeys[i])
		d.lean.Fold(&lk, d.bytesReg.Read(i), d.pktsReg.Read(i), d.pktLossReg.Read(i))
		d.ReleaseFlow(FlowID(i))
		evicted++
	}
	if evicted > 0 {
		d.Stats.Evictions += uint64(evicted)
		if o := d.obs; o != nil {
			o.evictions.Add(uint64(evicted))
		}
	}
	return evicted
}

// ReadRTTHist extracts one flow's RTT histogram from the rtt_hist
// register. The histogram lives at the data flow's cell (P4TG-style:
// the distribution belongs to the flow whose segments were timed), so
// pass the data-direction flow ID.
func (d *DataPlane) ReadRTTHist(id FlowID) RTTHist {
	var h RTTHist
	base := (uint32(id) % d.tableN) * RTTHistBuckets
	for b := uint32(0); b < RTTHistBuckets; b++ {
		h.Buckets[b] = d.rttHist.Read(base + b)
	}
	return h
}

// FlowEstimate is the two-tier answer to "how much did this flow
// send": the sketch estimate plus, when the flow owns its exact cell,
// the cell's exact counters. Estimates never undercount; each Bound
// field is the sketch's current analytical ⌈ε·N⌉ overcount cap
// (holding per query with probability ≥ 1-δ).
type FlowEstimate struct {
	// Bytes, Pkts and Loss are the combined totals: sketch estimate
	// plus exact cell when admitted.
	Bytes, Pkts, Loss uint64
	// ExactBytes, ExactPkts and ExactLoss are the exact-tier cell
	// counters (zero when not admitted).
	ExactBytes, ExactPkts, ExactLoss uint64
	// BytesBound, PktsBound and LossBound are the sketches' analytical
	// overcount bounds at the current fill.
	BytesBound, PktsBound, LossBound uint64
	// Admitted reports whether the flow currently owns its exact cell.
	Admitted bool
}

// EstimateFlow returns the flow's two-tier estimate. A flow that was
// admitted, evicted and not re-admitted answers purely from the
// sketches (where its eviction fold lives); a currently-admitted flow
// adds its exact cell on top of whatever sketch residue pre-admission
// or post-eviction traffic left.
func (d *DataPlane) EstimateFlow(key FlowKey) FlowEstimate {
	lk := sketch.Key(key)
	var e FlowEstimate
	e.Bytes, e.Pkts, e.Loss = d.lean.Estimate(&lk)
	e.BytesBound, e.PktsBound, e.LossBound = d.lean.Bounds()
	id := key.Hash()
	idx := uint32(id) % d.tableN
	if d.ownsCell(idx, id, key) {
		e.Admitted = true
		e.ExactBytes = d.bytesReg.Read(idx)
		e.ExactPkts = d.pktsReg.Read(idx)
		e.ExactLoss = d.pktLossReg.Read(idx)
		e.Bytes += e.ExactBytes
		e.Pkts += e.ExactPkts
		e.Loss += e.ExactLoss
	}
	return e
}

// Lean exposes the sketch tier for white-box tests and telemetry.
func (d *DataPlane) Lean() *sketch.Lean { return d.lean }

// FlowTableMemoryBytes returns the exact tier's per-flow storage
// footprint: every per-flow register array (including the RTT
// histogram) plus the 13-byte owner-key side table. The denominator of
// the accuracy-vs-memory trade the scale sweep tables.
func (d *DataPlane) FlowTableMemoryBytes() uint64 {
	var b uint64
	for _, r := range []*Register{
		d.bytesReg, d.pktsReg, d.prevSeqReg, d.pktLossReg, d.rttReg,
		d.qdelayReg, d.highSeqReg, d.highAckReg, d.flightReg,
		d.flightMaxW, d.flightMinW, d.lastArrReg, d.maxIATReg,
		d.firstSeen, d.lastSeen, d.finSeenReg, d.announced, d.ownerLo,
		d.rttHist,
	} {
		b += uint64(r.Size()) * 8
	}
	return b + uint64(len(d.ownerKeys))*13
}

// LeanMemoryBytes returns the sketch tier's storage footprint.
func (d *DataPlane) LeanMemoryBytes() uint64 { return d.lean.MemoryBytes() }
