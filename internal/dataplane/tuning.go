package dataplane

import (
	"fmt"
	"math"

	"repro/internal/genconfig"
	"repro/internal/simtime"
)

// Tuning is the data plane's runtime-tunable parameter set: the
// thresholds a control plane may retune while packets flow, as opposed
// to the compile-time table geometry in Config. It is a pure value, so
// genconfig can publish it as an immutable generation; the pipeline
// pins one generation per batch front (and per ProcessCopy) and reads
// every threshold from that snapshot — a reconfiguration is either
// entirely visible to a batch or entirely invisible (DESIGN.md §5.7).
type Tuning struct {
	// LongFlowBytes is the byte volume at which a flow is declared
	// "long" and announced to the control plane.
	LongFlowBytes uint64
	// BurstFactor, BurstEndFactor, BurstFloor and BurstBaselineTau
	// parameterise the §3.3.3 microburst detector exactly as their
	// Config seed fields do.
	BurstFactor      float64
	BurstEndFactor   float64
	BurstFloor       simtime.Time
	BurstBaselineTau simtime.Time
}

// TuningFrom extracts generation 0 of the runtime tuning from a
// defaulted Config.
//
// p4:gen-init
func TuningFrom(c Config) Tuning {
	return Tuning{
		LongFlowBytes:    c.LongFlowBytes,
		BurstFactor:      c.BurstFactor,
		BurstEndFactor:   c.BurstEndFactor,
		BurstFloor:       c.BurstFloor,
		BurstBaselineTau: c.BurstBaselineTau,
	}
}

// Validate rejects parameter sets the detector pipeline cannot run
// with; UpdateTuning calls it on every candidate generation, so an
// invalid transaction publishes nothing.
func (t Tuning) Validate() error {
	if t.LongFlowBytes == 0 {
		return fmt.Errorf("dataplane: long-flow threshold must be positive")
	}
	if t.BurstFactor <= 1 || math.IsNaN(t.BurstFactor) || math.IsInf(t.BurstFactor, 0) {
		return fmt.Errorf("dataplane: burst factor %g must exceed 1", t.BurstFactor)
	}
	if t.BurstEndFactor <= 0 || t.BurstEndFactor > t.BurstFactor {
		return fmt.Errorf("dataplane: burst end factor %g must be in (0, factor]", t.BurstEndFactor)
	}
	if t.BurstFloor <= 0 {
		return fmt.Errorf("dataplane: burst floor must be positive")
	}
	if t.BurstBaselineTau <= 0 {
		return fmt.Errorf("dataplane: baseline tau must be positive")
	}
	return nil
}

// UpdateTuning transactionally publishes a tuning change: mut runs
// against a scratch copy of the current generation, the result is
// validated, and either the complete new generation is installed with
// one CAS or nothing changes. Safe to call from any goroutine while
// packets flow; in-flight batches finish on the generation they
// pinned, and the next batch front reads the new one.
func (d *DataPlane) UpdateTuning(mut func(*Tuning) error) error {
	_, err := d.tuning.Publish(func(cur Tuning) (Tuning, error) {
		next := cur
		if err := mut(&next); err != nil {
			return Tuning{}, err
		}
		if err := next.Validate(); err != nil {
			return Tuning{}, err
		}
		return next, nil
	})
	return err
}

// CurrentTuning returns a copy of the live tuning generation.
func (d *DataPlane) CurrentTuning() Tuning { return d.tuning.Current() }

// TuningGenerations returns the tuning store's generation accounting;
// Outstanding == 0 proves no in-flight batch still reads a superseded
// generation.
func (d *DataPlane) TuningGenerations() genconfig.Counters { return d.tuning.Counters() }

// TuningStore exposes the generation store itself, for harnesses that
// pin generations alongside the pipeline (the reconfigure-under-load
// experiment's torn-read observers).
func (d *DataPlane) TuningStore() *genconfig.Store[Tuning] { return d.tuning }

// UpdateTuning publishes a tuning change shared by every shard (the
// front-end holds one store; the paper's control plane programs all
// pipes identically).
func (p *Pipes) UpdateTuning(mut func(*Tuning) error) error { return p.shards[0].UpdateTuning(mut) }

// CurrentTuning returns a copy of the live tuning generation.
func (p *Pipes) CurrentTuning() Tuning { return p.shards[0].CurrentTuning() }

// TuningGenerations returns the shared tuning store's accounting.
func (p *Pipes) TuningGenerations() genconfig.Counters { return p.shards[0].TuningGenerations() }

// TuningStore exposes the shared generation store.
func (p *Pipes) TuningStore() *genconfig.Store[Tuning] { return p.shards[0].TuningStore() }
