package dataplane

import "fmt"

// Register is a fixed-size stateful register array, the P4 construct
// the paper's per-flow statistics live in ("dedicated stateful
// registers where the data plane can track 2048 active flows
// simultaneously", §3.3.2). Cells are 64-bit, matching Tofino's paired
// 32-bit register entries.
type Register struct {
	name  string
	cells []uint64
	// width is the declared bit width of each cell, 1..64. Cells are
	// stored as uint64 regardless; the width is the P4-level contract
	// (Tofino timestamps are 48-bit, flag registers 1-bit) that the
	// regwidth static-analysis pass checks masks, shifts and
	// conversions against.
	width int
}

// NewRegister allocates a register array of full 64-bit cells.
func NewRegister(name string, size int) *Register {
	return NewRegisterWidth(name, size, 64)
}

// NewRegisterWidth allocates a register array whose cells carry a
// declared bit width, mirroring the width annotation a P4 register
// definition carries (e.g. Register<bit<48>, _>). The width is
// metadata for tooling and the runtime API; storage stays uint64.
func NewRegisterWidth(name string, size, width int) *Register {
	if size <= 0 {
		panic(fmt.Sprintf("dataplane: register %s must have positive size", name))
	}
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("dataplane: register %s width %d out of range 1..64", name, width))
	}
	return &Register{name: name, cells: make([]uint64, size), width: width}
}

// Name returns the register's P4 instance name.
func (r *Register) Name() string { return r.name }

// Width returns the declared bit width of each cell.
func (r *Register) Width() int { return r.width }

// MaxValue returns the largest value representable in the declared
// width.
func (r *Register) MaxValue() uint64 {
	if r.width >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(r.width)) - 1
}

// Size returns the number of cells.
func (r *Register) Size() int { return len(r.cells) }

// index folds an arbitrary 32-bit value onto the array.
func (r *Register) index(i uint32) uint32 { return i % uint32(len(r.cells)) }

// Read returns cell i (mod size).
func (r *Register) Read(i uint32) uint64 { return r.cells[r.index(i)] }

// Write stores v at cell i (mod size).
func (r *Register) Write(i uint32, v uint64) { r.cells[r.index(i)] = v }

// Add increments cell i (mod size) by delta.
func (r *Register) Add(i uint32, delta uint64) { r.cells[r.index(i)] += delta }

// Max raises cell i to v if v is larger.
func (r *Register) Max(i uint32, v uint64) {
	idx := r.index(i)
	if v > r.cells[idx] {
		r.cells[idx] = v
	}
}

// Snapshot copies the register contents into dst (allocating if nil) —
// the bulk register read the control plane performs through the
// switch-manufacturer APIs.
func (r *Register) Snapshot(dst []uint64) []uint64 {
	if dst == nil || len(dst) < len(r.cells) {
		dst = make([]uint64, len(r.cells))
	}
	copy(dst, r.cells)
	return dst[:len(r.cells)]
}

// Clear zeroes every cell.
func (r *Register) Clear() {
	for i := range r.cells {
		r.cells[i] = 0
	}
}
