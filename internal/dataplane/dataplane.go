// Package dataplane reproduces the paper's P4 measurement pipeline in
// pure Go: per-flow registers (bytes, packets, loss, RTT, flight,
// queue delay), a count-min sketch, and microburst/long-flow
// detection, all driven by TAP copies at line rate with zero
// allocations per packet. DataPlane is one pipe; Pipes shards flows
// across several pipes by canonical flow-key hash — Tofino's
// multi-pipe model — and presents the merged view the control plane
// extracts from (see DESIGN.md §5.4 for the merge semantics).
package dataplane

import (
	"net/netip"
	"sort"

	"repro/internal/genconfig"
	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/sketch"
	"repro/internal/tap"
)

// Config sizes the pipeline's state, mirroring the resource choices a
// P4 program makes at compile time.
type Config struct {
	// FlowTableSize is the number of cells in each per-flow register
	// array. The paper's program tracks 2048 active flows (§3.3.2).
	FlowTableSize int
	// EACKTableSize is the number of cells in the expected-ACK
	// signature/timestamp registers of Algorithm 1.
	EACKTableSize int
	// QSigTableSize is the number of cells in the ingress-timestamp
	// table used to pair the two TAP copies of a packet (§4.2).
	QSigTableSize int
	// CMSWidth and CMSDepth set the count-min sketch geometry used for
	// long-flow detection.
	CMSWidth, CMSDepth int
	// LongFlowBytes is the byte volume at which a flow is declared
	// "long" and announced to the control plane. Seed value only: the
	// live threshold is the Tuning generation's copy (p4:gen-seed).
	LongFlowBytes uint64
	// Microburst detection (§3.3.3). A microburst is a *sudden* queue
	// excursion, so the detector compares each packet's queuing delay
	// against an exponentially-weighted baseline: a burst starts when
	// the delay exceeds BurstFactor x baseline AND the absolute
	// BurstFloor; it ends when the delay falls back below
	// BurstEndFactor x baseline (or under half the floor). The adaptive
	// baseline keeps slow phenomena — CUBIC's standing queue, gradual
	// ramps — from registering as bursts. Seed values only; the live
	// detector reads the Tuning generation (p4:gen-seed).
	BurstFactor float64
	// BurstEndFactor ends a burst (see BurstFactor). Seed value only
	// (p4:gen-seed).
	BurstEndFactor float64
	// BurstFloor is the absolute delay floor below which no excursion
	// counts as a burst (see BurstFactor). Seed value only
	// (p4:gen-seed).
	BurstFloor simtime.Time
	// BurstBaselineTau is the baseline's adaptation time constant. The
	// baseline must adapt by elapsed time, not by packet count — a
	// back-to-back packet train ramps the queue within microseconds,
	// and a per-packet average would chase the ramp and never see it
	// as sudden. Seed value only (p4:gen-seed).
	BurstBaselineTau simtime.Time
	// SketchEpsilon and SketchDelta are the lean tier's (ε, δ) error
	// target: a sketch estimate overcounts by more than ε·N with
	// probability at most δ (DESIGN.md §5.8). Zero values take the
	// sketch package defaults (ε = 1e-3, δ = 0.01).
	SketchEpsilon float64
	SketchDelta   float64
	// DupFilterInserts sizes the lean tier's duplicate filter for the
	// expected number of (flow, seq) pairs per measurement window;
	// DupFilterFP is the tolerated false-positive rate at that fill.
	// Zero values take the sketch package defaults.
	DupFilterInserts int
	DupFilterFP      float64
}

// WithDefaults fills unset fields with the paper-faithful defaults.
//
// p4:gen-init
func (c Config) WithDefaults() Config {
	if c.FlowTableSize <= 0 {
		c.FlowTableSize = 2048
	}
	if c.EACKTableSize <= 0 {
		c.EACKTableSize = 1 << 16
	}
	if c.QSigTableSize <= 0 {
		c.QSigTableSize = 1 << 16
	}
	if c.CMSWidth <= 0 {
		c.CMSWidth = 8192
	}
	if c.CMSDepth <= 0 {
		c.CMSDepth = 4
	}
	if c.LongFlowBytes == 0 {
		c.LongFlowBytes = 1 << 20 // 1 MB
	}
	if c.BurstFactor == 0 {
		c.BurstFactor = 4
	}
	if c.BurstEndFactor == 0 {
		c.BurstEndFactor = 1.5
	}
	if c.BurstFloor == 0 {
		c.BurstFloor = simtime.Millisecond
	}
	if c.BurstBaselineTau == 0 {
		c.BurstBaselineTau = 50 * simtime.Millisecond
	}
	return c
}

// LongFlowEvent is the digest the data plane sends when a flow crosses
// the long-flow threshold: "the ID of the flow, its source and
// destination IP, and its reversed ID" (§4).
type LongFlowEvent struct {
	// ID is the flow's hash identifier; RevID identifies the reverse
	// direction (the paper announces both so the control plane can join
	// RTT samples stored under the ACK flow's ID).
	ID    FlowID
	RevID FlowID
	// Tuple is the announced flow's 5-tuple.
	Tuple packet.FiveTuple
	// At is the simulation time of the announcement.
	At simtime.Time
	// Bytes is the sketch's byte estimate when the threshold tripped.
	Bytes uint64
	// Shard is the pipe that observed the flow (always 0 on an
	// unsharded pipeline; see Pipes).
	Shard int
}

// MicroburstEvent reports one detected microburst with nanosecond
// granularity (§3.3.3): its start time, duration, peak queuing delay
// and how many packets rode the burst.
type MicroburstEvent struct {
	// Start and Duration bound the burst in simulation time.
	Start    simtime.Time
	Duration simtime.Time
	// PeakDelay is the largest queuing delay observed inside the burst.
	PeakDelay simtime.Time
	// Packets counts the packets that rode the burst.
	Packets int
	// Shard is the pipe whose egress queue saw the burst (always 0 on
	// an unsharded pipeline; see Pipes).
	Shard int
}

// Stats counts pipeline-internal events, exposed for tests and the
// ablation benchmarks.
type Stats struct {
	IngressCopies  uint64
	EgressCopies   uint64
	RTTSamples     uint64
	EACKEvictions  uint64 // eACK cells overwritten before being matched
	QSigMismatches uint64 // egress copies whose ingress stamp was evicted
	SlotCollisions uint64 // distinct flows aliasing one register cell
	Microbursts    uint64
	SkippedPackets uint64 // filtered out by the monitor table
	AliasedPackets uint64 // packets the admission gate routed to the sketch tier
	Evictions      uint64 // flow-table cells evicted by the aging sweep
}

// flightNoSample marks a flight-size window with no observations yet.
const flightNoSample = ^uint64(0)

// DataPlane is the P4 pipeline model. It implements tap.Monitor: every
// TAP copy flows through ProcessCopy exactly as mirrored packets flow
// through the switch's programmable parser and match-action stages.
type DataPlane struct {
	cfg Config

	// tuning publishes the runtime-tunable thresholds as immutable
	// generations (DESIGN.md §5.7); Pipes shares one store across all
	// shards. tun is the generation snapshot the current batch pinned —
	// a plain field, single-writer by the pipe contract, loaded once at
	// each batch front so every packet in the batch sees one coherent
	// parameter set.
	tuning *genconfig.Store[Tuning]
	tun    Tuning

	// Per-flow register arrays, indexed by hash(5-tuple) % FlowTableSize.
	bytesReg   *Register // cumulative IPv4 total-length bytes
	pktsReg    *Register // cumulative packets
	prevSeqReg *Register // Algorithm 1: previous sequence number
	pktLossReg *Register // Algorithm 1: retransmission counter
	rttReg     *Register // Algorithm 1: latest RTT (ns), indexed by ACK-flow ID
	qdelayReg  *Register // latest per-flow queuing delay (ns)
	highSeqReg *Register // highest seq+payload seen (flight-size numerator)
	highAckReg *Register // highest cumulative ACK seen for the flow
	flightReg  *Register // current flight estimate (bytes)
	flightMaxW *Register // per-window flight maximum
	flightMinW *Register // per-window flight minimum (flightNoSample = none)
	lastArrReg *Register // last data-packet arrival (ns) for IAT
	maxIATReg  *Register // per-window maximum inter-arrival time (ns)
	firstSeen  *Register
	lastSeen   *Register
	finSeenReg *Register // 1 once a FIN was observed on the flow
	announced  *Register // 1 once the long-flow digest was emitted
	ownerLo    *Register // low 32 bits of owning flow ID, admission witness
	rttHist    *Register // per-flow RTT log₂ histogram, RTTHistBuckets cells per flow

	// ownerKeys is the admission gate's exact side table: the full
	// 13-byte key of each cell's owner, disambiguating the rare CRC32
	// collision the 32-bit ownerLo witness cannot (see admitCell).
	ownerKeys []FlowKey

	// lean is the sketch tier: every packet the admission gate turns
	// away, and every evicted cell's folded history, lands here with
	// (ε, δ)-bounded counters (DESIGN.md §5.8).
	lean *sketch.Lean

	// tableN caches FlowTableSize for the packet path's cell-index
	// reduction (ownerKeys is a plain slice, so unlike Register ops the
	// index must be reduced before use).
	tableN uint32

	// Algorithm 1 expected-ACK table.
	eackSig *Register
	eackTS  *Register

	// Ingress-timestamp table for queuing-delay pairing.
	qSig *Register
	qTS  *Register

	cms *CMS

	// monitorTable is the match-action table steering which traffic
	// the measurement program processes: an LPM match on the IPv4
	// destination with actions "monitor" and "skip". The default
	// action monitors everything; the control plane programs "skip"
	// entries to exclude subnets (e.g. management traffic).
	monitorTable *Table

	// Microburst detector state (per monitored queue; the paper taps
	// one core-switch port).
	inBurst    bool
	burstStart simtime.Time
	burstPeak  simtime.Time
	burstPkts  int
	qBaseline  float64 // time-weighted EWMA of queuing delay, ns
	qBaseTs    simtime.Time
	qBaseInit  bool
	lastQDelay simtime.Time
	lastEgress simtime.Time

	// OnLongFlow and OnMicroburst deliver data-plane digests to the
	// control plane.
	OnLongFlow   func(LongFlowEvent)
	OnMicroburst func(MicroburstEvent)

	// registry indexes every register instance by P4 name for the
	// runtime API (register reads by name, like bfrt/P4Runtime).
	registry map[string]*Register

	// obs is the optional self-telemetry hook (RegisterObs); nil keeps
	// the pipeline uninstrumented at the cost of one branch per packet.
	obs *dpObs

	// idCache memoises flow-key CRC hashing across packets (see
	// flowIDs). Plain fields: a pipe is single-writer by contract.
	idCache [idCacheSize]idCacheEntry

	// batch holds the per-batch hoisted state ProcessFront threads
	// through the inner loop (monitor-table run cache, deferred
	// counter deltas); zeroed at each batch start.
	batch batchState

	Stats Stats
}

// idCacheSize is the number of direct-mapped flow-ID memo entries. Four
// entries cover the handful of flows that interleave at packet
// granularity on one pipe; the index mixes direction-symmetric key
// bytes so a flow and its ACK stream share an entry.
const idCacheSize = 4

// idCacheEntry memoises one packed key (and its reverse) with both CRC
// flow IDs, so same-flow packet runs — and the egress copies and ACKs
// that follow — skip the hash entirely.
type idCacheEntry struct {
	key, rkey FlowKey
	fwd, rev  FlowID
	ok        bool
}

// flowIDs returns the forward and reversed CRC flow IDs for a packed
// key, consulting the direct-mapped memo first. The memo is a pure
// function cache — entries never go stale — and the index is
// direction-symmetric, so an ACK hits the entry its data stream filled.
//
// p4:hotpath
func (d *DataPlane) flowIDs(k FlowKey) (FlowID, FlowID) {
	slot := &d.idCache[(k[3]^k[7]^k[9]^k[11])&(idCacheSize-1)]
	if slot.ok {
		if k == slot.key {
			return slot.fwd, slot.rev
		}
		if k == slot.rkey {
			return slot.rev, slot.fwd
		}
	}
	r := k.Reverse()
	slot.key, slot.rkey = k, r
	slot.fwd, slot.rev = k.Hash(), r.Hash()
	slot.ok = true
	return slot.fwd, slot.rev
}

// New builds a pipeline with the given configuration. The tunable
// subset of cfg seeds generation 0 of the Tuning store; from then on
// the live thresholds are whatever UpdateTuning last published.
//
// p4:gen-init
func New(cfg Config) *DataPlane {
	cfg = cfg.WithDefaults()
	n := cfg.FlowTableSize
	d := &DataPlane{
		cfg:    cfg,
		tuning: genconfig.NewStore(TuningFrom(cfg)),
		tun:    TuningFrom(cfg),
		// Widths mirror the P4 program: Tofino's clock (and therefore
		// every timestamp and timestamp difference) is 48-bit, flag
		// registers are single bits, the queue signature packs a 32-bit
		// flow ID over a 16-bit IP ID, and the paired 32-bit counters
		// present as full 64-bit cells.
		bytesReg:   NewRegister("flow_bytes", n),
		pktsReg:    NewRegister("flow_pkts", n),
		prevSeqReg: NewRegister("prev_seq", n),
		pktLossReg: NewRegister("pkt_loss", n),
		rttReg:     NewRegisterWidth("rtt", n, 48),
		qdelayReg:  NewRegisterWidth("qdelay", n, 48),
		highSeqReg: NewRegister("high_seq", n),
		highAckReg: NewRegister("high_ack", n),
		flightReg:  NewRegister("flight", n),
		flightMaxW: NewRegister("flight_max_w", n),
		flightMinW: NewRegister("flight_min_w", n),
		lastArrReg: NewRegisterWidth("last_arrival", n, 48),
		maxIATReg:  NewRegisterWidth("max_iat_w", n, 48),
		firstSeen:  NewRegisterWidth("first_seen", n, 48),
		lastSeen:   NewRegisterWidth("last_seen", n, 48),
		finSeenReg: NewRegisterWidth("fin_seen", n, 1),
		announced:  NewRegisterWidth("announced", n, 1),
		ownerLo:    NewRegisterWidth("owner_lo", n, 32),
		rttHist:    NewRegisterWidth("rtt_hist", n*RTTHistBuckets, 32),
		ownerKeys:  make([]FlowKey, n),
		tableN:     uint32(n),
		lean: sketch.NewLean(sketch.Config{
			Epsilon:            cfg.SketchEpsilon,
			Delta:              cfg.SketchDelta,
			DupExpectedInserts: cfg.DupFilterInserts,
			DupTargetFP:        cfg.DupFilterFP,
		}),
		eackSig:    NewRegister("eack_sig", cfg.EACKTableSize),
		eackTS:     NewRegisterWidth("eack_ts", cfg.EACKTableSize, 48),
		qSig:       NewRegisterWidth("qsig", cfg.QSigTableSize, 48),
		qTS:        NewRegisterWidth("qts", cfg.QSigTableSize, 48),
		cms:        NewCMS(cfg.CMSWidth, cfg.CMSDepth),
		monitorTable: NewTable("monitored_subnets", 256,
			[]MatchKind{MatchLPM}, []int{32}),
	}
	d.monitorTable.DefaultAction = "monitor"
	d.registry = make(map[string]*Register)
	for _, r := range []*Register{
		d.bytesReg, d.pktsReg, d.prevSeqReg, d.pktLossReg, d.rttReg,
		d.qdelayReg, d.highSeqReg, d.highAckReg, d.flightReg,
		d.flightMaxW, d.flightMinW, d.lastArrReg, d.maxIATReg,
		d.firstSeen, d.lastSeen, d.finSeenReg, d.announced, d.ownerLo,
		d.rttHist, d.eackSig, d.eackTS, d.qSig, d.qTS,
	} {
		d.registry[r.Name()] = r
	}
	for i := 0; i < n; i++ {
		d.flightMinW.Write(uint32(i), flightNoSample)
	}
	return d
}

// Config returns the pipeline configuration after defaulting.
func (d *DataPlane) Config() Config { return d.cfg }

// view is the parsed, value-typed form of one TAP copy: every packet
// field the measurement program reads, captured before the tap pair
// recycles the packet. The sharded front-end (Pipes) batches views and
// replays them on worker goroutines, so nothing downstream of
// parseCopy may retain a *packet.Packet.
type view struct {
	key      FlowKey
	tuple    packet.FiveTuple
	at       simtime.Time
	dstKey   uint64 // packed IPv4 destination, monitor-table key
	seqExt   uint64
	ackExt   uint64
	expAck   uint64 // precomputed ExpectedAck (pure function of the header)
	point    tap.CopyPoint
	totalLen uint16
	ipid     uint16
	proto    packet.Proto
	flags    uint8
	data     bool // CarriesData
	ackOnly  bool // IsACKOnly
}

// parseCopy extracts the pipeline's working set from a TAP copy. The
// packed flow key is computed exactly once here; every derived hash
// (flow ID, reversed ID, CMS rows) reuses its bytes. Egress copies
// parse light: the egress program (queue-delay pairing + microburst
// detection) reads only the flow hash, the IP ID and the timestamp,
// so the full header capture would be pure per-packet overhead on
// half the TAP stream.
//
// p4:hotpath
func parseCopy(c tap.Copy) view {
	pkt := c.Pkt
	if c.Point == tap.Egress {
		return view{
			key:   KeyOf(pkt.FiveTuple()),
			at:    c.At,
			ipid:  pkt.IPID,
			point: tap.Egress,
		}
	}
	ft := pkt.FiveTuple()
	return view{
		key:      KeyOf(ft),
		tuple:    ft,
		at:       c.At,
		dstKey:   ipKey(pkt.DstIP),
		seqExt:   pkt.SeqExt,
		ackExt:   pkt.AckExt,
		expAck:   pkt.ExpectedAck(),
		point:    c.Point,
		totalLen: pkt.TotalLen,
		ipid:     pkt.IPID,
		proto:    pkt.Proto,
		flags:    pkt.Flags,
		data:     pkt.CarriesData(),
		ackOnly:  pkt.IsACKOnly(),
	}
}

// ProcessCopy implements tap.Monitor. Ingress copies drive the
// measurement algorithms; egress copies close the queuing-delay
// measurement and feed the microburst detector. Copies are not retained:
// the TAP pair may recycle the packet as soon as this returns.
// ProcessCopy is the batch of one: the run-to-completion path over a
// whole Front is ProcessFront.
//
// p4:hotpath
func (d *DataPlane) ProcessCopy(c tap.Copy) {
	v := parseCopy(c)
	// The monitor table may be reprogrammed between two per-packet
	// calls; only a batch pins it (see batchState).
	d.batch.monOK = false
	// A batch of one still pins exactly one tuning generation: the
	// packet cannot see a half-applied reconfiguration.
	g := d.tuning.Acquire()
	d.tun = g.Value()
	d.processView(&v)
	d.tuning.Release(g)
}

// batchState is the state ProcessFront hoists out of the batch inner
// loop: the monitor-table run cache. Within one batch the table cannot
// change (batch execution is single-writer and control-plane table
// writes barrier on the front-end flush first), so a run of packets to
// the same destination resolves the match-action decision once; the
// table's hit/miss counters are still advanced per packet, keeping
// observable state identical to the per-packet path.
type batchState struct {
	monDstKey uint64
	monSkip   bool
	monHit    bool
	monOK     bool
}

// ProcessFront drains a parsed batch through the entire ingress/egress
// match-action program run-to-completion — the yanet2 packet_front
// idiom. Per-view cost approaches a few array ops: the copy-count
// statistics and their obs hooks are accumulated in registers and
// committed once per batch, the monitor-table decision is cached
// across same-destination runs, and flow-ID CRCs hit the memo for
// same-flow runs. State after ProcessFront is byte-identical to
// feeding the same views through ProcessCopy one at a time (the batch
// equivalence property test pins this). The front may be reused by the
// caller as soon as ProcessFront returns.
//
// p4:hotpath
func (d *DataPlane) ProcessFront(f *Front) {
	b := f.views
	if len(b) == 0 {
		return
	}
	d.batch.monOK = false
	// Pin one tuning generation for the whole batch: every view in the
	// front sees the same thresholds, and the Release below is what
	// lets a superseded generation retire (the drain proof the
	// reconfigure-under-load experiment asserts on).
	g := d.tuning.Acquire()
	d.tun = g.Value()
	var ingress, egress uint64
	for k := range b {
		if b[k].point == tap.Ingress {
			ingress++
			d.processIngress(&b[k])
		} else {
			egress++
			d.processEgress(&b[k])
		}
	}
	d.Stats.IngressCopies += ingress
	d.Stats.EgressCopies += egress
	if o := d.obs; o != nil {
		o.ingressCopies.Add(ingress)
		o.egressCopies.Add(egress)
	}
	d.tuning.Release(g)
}

// processView runs one parsed copy through the match-action stages.
// It is the replay entry point the sharded front-end uses after
// batching; ProcessCopy is parseCopy + processView.
//
// p4:hotpath
func (d *DataPlane) processView(v *view) {
	switch v.point {
	case tap.Ingress:
		d.Stats.IngressCopies++
		if o := d.obs; o != nil {
			o.ingressCopies.Inc()
		}
		d.processIngress(v)
	case tap.Egress:
		d.Stats.EgressCopies++
		if o := d.obs; o != nil {
			o.egressCopies.Inc()
		}
		d.processEgress(v)
	}
}

// processIngress executes the per-packet measurement program: byte and
// packet counting, long-flow detection, Algorithm 1 (RTT and packet
// loss), flight-size tracking and inter-arrival times.
//
// p4:hotpath
func (d *DataPlane) processIngress(v *view) {
	now := v.at
	// The monitor table decides whether this packet enters the
	// measurement program at all. Within a batch, a run of packets to
	// the same destination resolves the decision from the run cache
	// (advancing the table's hit/miss counters exactly as the lookup
	// would); the first packet of a run does the real lookup.
	var skip bool
	if d.batch.monOK && d.batch.monDstKey == v.dstKey {
		skip = d.batch.monSkip
		if d.batch.monHit {
			d.monitorTable.Hits++
		} else {
			d.monitorTable.Misses++
		}
	} else {
		action, _, hit := d.monitorTable.Lookup([]uint64{v.dstKey})
		skip = action == "skip"
		d.batch = batchState{monDstKey: v.dstKey, monSkip: skip, monHit: hit, monOK: true}
	}
	if skip {
		d.Stats.SkippedPackets++
		if o := d.obs; o != nil {
			o.skipped.Inc()
		}
		return
	}

	key := v.key
	id, revID := d.flowIDs(key)
	idx := uint32(id) % d.tableN

	// Stamp the ingress time for queuing-delay pairing with the egress
	// copy (both directions transit the core switch). Port-level state,
	// not per-flow cells — stamped for every monitored packet so the
	// queue and microburst view covers the sketch-tier traffic too.
	qidx := hash2(id, uint64(v.ipid))
	d.qSig.Write(qidx, uint64(id)<<16|uint64(v.ipid))
	d.qTS.Write(qidx, uint64(now))

	// Admission gate: only the cell's owner writes the exact per-flow
	// registers; everyone else is counted in the sketch tier with
	// (ε, δ)-bounded error instead of silently corrupting the cell.
	if !d.admitCell(idx, id, key) {
		d.leanIngress(v)
		return
	}

	// Byte and packet counters come from the IPv4 total-length field.
	d.bytesReg.Add(idx, uint64(v.totalLen))
	d.pktsReg.Add(idx, 1)
	if d.firstSeen.Read(idx) == 0 {
		d.firstSeen.Write(idx, uint64(now))
	}
	d.lastSeen.Write(idx, uint64(now))

	if v.proto == packet.ProtoTCP && v.flags&packet.FlagFIN != 0 {
		d.finSeenReg.Write(idx, 1)
	}

	switch {
	case v.data:
		d.processData(v, key, id, revID, idx, now)
	case v.ackOnly:
		d.processAck(v, id, revID, now)
	}
}

// processData is the Seq branch of Algorithm 1 plus the auxiliary
// long-flow, flight and IAT bookkeeping.
//
// p4:hotpath
func (d *DataPlane) processData(v *view, key FlowKey, id, revID FlowID, idx uint32, now simtime.Time) {
	// Inter-arrival time (the mmWave blockage signal, §5.4.3).
	if last := d.lastArrReg.Read(idx); last != 0 {
		iat := uint64(now) - last
		d.maxIATReg.Max(idx, iat)
	}
	d.lastArrReg.Write(idx, uint64(now))

	// Long-flow detection via the count-min sketch.
	est := d.cms.UpdateKey(key, uint64(v.totalLen))
	if est >= d.tun.LongFlowBytes && d.announced.Read(idx) == 0 {
		d.announced.Write(idx, 1)
		if d.OnLongFlow != nil {
			d.OnLongFlow(LongFlowEvent{
				ID:    id,
				RevID: revID,
				Tuple: v.tuple,
				At:    now,
				Bytes: est,
			})
		}
	}

	if v.proto != packet.ProtoTCP {
		return
	}

	// Warm the lean tier's duplicate filter even while admitted: if
	// this cell is later evicted, a retransmission of a segment sent
	// during the admitted era must still test positive in the sketch
	// tier. The result is discarded — the exact counter below owns
	// loss accounting while the flow holds its cell.
	lk := sketch.Key(key)
	d.lean.SeenSeq(&lk, v.seqExt)

	// Algorithm 1, Seq branch: a sequence number below the previous one
	// is a retransmission, i.e. evidence of packet loss.
	prev := d.prevSeqReg.Read(idx)
	if v.seqExt < prev {
		d.pktLossReg.Add(idx, 1)
	} else {
		d.prevSeqReg.Write(idx, v.seqExt)

		// Store the expected-ACK signature and timestamp.
		eack := v.expAck
		sig := uint64(revID)<<32 | (eack & 0xffffffff)
		eidx := hash2(revID, eack)
		if old := d.eackSig.Read(eidx); old != 0 && old != sig {
			d.Stats.EACKEvictions++
		}
		d.eackSig.Write(eidx, sig)
		d.eackTS.Write(eidx, uint64(now))
	}

	// Flight size numerator: highest sequence byte dispatched.
	d.highSeqReg.Max(idx, v.expAck)
	d.updateFlight(idx, now)
}

// processAck is the ACK branch of Algorithm 1: match the cumulative ACK
// against a stored expected-ACK signature to produce an RTT sample, and
// advance the data flow's acknowledged high-water mark.
//
// p4:hotpath
func (d *DataPlane) processAck(v *view, id, revID FlowID, now simtime.Time) {
	// The data flow's cell: histogram, high-ACK and flight writes land
	// there, so they require the reverse direction to own it.
	rslot := uint32(revID) % d.tableN
	revOwns := d.ownsCell(rslot, revID, v.key.Reverse())

	ack := v.ackExt
	sig := uint64(id)<<32 | (ack & 0xffffffff)
	eidx := hash2(id, ack)
	if d.eackSig.Read(eidx) == sig {
		ts := d.eackTS.Read(eidx)
		if ts != 0 {
			rtt := uint64(now) - ts
			// Algorithm 1 stores the RTT at the ACK packet's flow ID;
			// the control plane joins it back via the reversed ID.
			d.rttReg.Write(uint32(id), rtt)
			if revOwns {
				// P4TG-style distribution: the sample also lands in the
				// data flow's in-register log₂ histogram.
				d.rttHist.Add(rslot*RTTHistBuckets+rttBucket(rtt), 1)
			}
			d.Stats.RTTSamples++
			if o := d.obs; o != nil {
				o.rttSamples.Inc()
				o.rttNs.Observe(rtt)
			}
		}
		d.eackSig.Write(eidx, 0)
		d.eackTS.Write(eidx, 0)
	}

	// The ACK acknowledges the reverse flow's data.
	if revOwns {
		d.highAckReg.Max(rslot, ack)
		d.updateFlight(rslot, now)
	}
}

// updateFlight recomputes the flow's bytes-in-flight estimate
// (transmitted but unacknowledged, §4.4) and folds it into the
// per-window min/max registers the limitation classifier reads.
func (d *DataPlane) updateFlight(idx uint32, now simtime.Time) {
	hi := d.highSeqReg.Read(idx)
	lo := d.highAckReg.Read(idx)
	var flight uint64
	if hi > lo && lo != 0 {
		flight = hi - lo
	}
	d.flightReg.Write(idx, flight)
	if lo == 0 {
		return // no ACK observed yet; window stats would be misleading
	}
	d.flightMaxW.Max(idx, flight)
	if cur := d.flightMinW.Read(idx); flight < cur {
		d.flightMinW.Write(idx, flight)
	}
}

// processEgress pairs the egress copy with its stored ingress timestamp
// to measure the packet's time inside the core switch (§4.2), updates
// the per-flow queuing-delay register, and runs the per-packet
// microburst detector (§3.3.3).
//
// p4:hotpath
func (d *DataPlane) processEgress(v *view) {
	now := v.at
	id, _ := d.flowIDs(v.key)
	qidx := hash2(id, uint64(v.ipid))
	want := uint64(id)<<16 | uint64(v.ipid)
	if d.qSig.Read(qidx) != want {
		d.Stats.QSigMismatches++
		return
	}
	ingressTS := d.qTS.Read(qidx)
	d.qSig.Write(qidx, 0)
	d.qTS.Write(qidx, 0)
	if ingressTS == 0 || uint64(now) < ingressTS {
		d.Stats.QSigMismatches++
		return
	}
	qdelay := simtime.Time(uint64(now) - ingressTS)
	if o := d.obs; o != nil {
		o.qdelayNs.Observe(uint64(qdelay))
	}
	// The per-flow cell only takes the sample from its owner; the
	// port-level microburst detector below sees every paired packet
	// regardless of which tier the flow lives in.
	slot := uint32(id) % d.tableN
	if d.ownsCell(slot, id, v.key) {
		d.qdelayReg.Write(slot, uint64(qdelay))
	}
	d.lastQDelay = qdelay
	d.lastEgress = now
	d.detectMicroburst(qdelay, now)
}

// detectMicroburst compares each packet's queuing delay against the
// adaptive EWMA baseline: a sudden excursion above BurstFactor x
// baseline (and the absolute floor) opens a burst; falling back toward
// the baseline closes it and emits the event with nanosecond start
// time and duration. The baseline keeps adapting slowly during a burst
// so a sustained congestion episode self-terminates rather than being
// reported as one endless microburst.
// p4:hotpath
func (d *DataPlane) detectMicroburst(qdelay simtime.Time, now simtime.Time) {
	q := float64(qdelay)
	if !d.qBaseInit {
		d.qBaseline = q
		d.qBaseTs = now
		d.qBaseInit = true
		return
	}
	if !d.inBurst {
		if q > d.tun.BurstFactor*d.qBaseline && qdelay >= d.tun.BurstFloor {
			d.inBurst = true
			d.burstStart = now - qdelay // the burst began as the queue built
			if d.burstStart < 0 {
				d.burstStart = 0
			}
			d.burstPeak = qdelay
			d.burstPkts = 1
			d.qBaseTs = now
			return
		}
		d.updateQBaseline(q, now, 1)
		return
	}
	d.burstPkts++
	if qdelay > d.burstPeak {
		d.burstPeak = qdelay
	}
	// During a burst the baseline still adapts (slower), so a sustained
	// congestion episode self-terminates instead of reporting as one
	// endless microburst.
	d.updateQBaseline(q, now, 0.25)
	if q < d.tun.BurstEndFactor*d.qBaseline || qdelay < d.tun.BurstFloor/2 {
		d.inBurst = false
		d.Stats.Microbursts++
		if o := d.obs; o != nil {
			o.microbursts.Inc()
			o.burstNs.Observe(uint64(now - d.burstStart))
		}
		if d.OnMicroburst != nil {
			d.OnMicroburst(MicroburstEvent{
				Start:     d.burstStart,
				Duration:  now - d.burstStart,
				PeakDelay: d.burstPeak,
				Packets:   d.burstPkts,
			})
		}
	}
}

// updateQBaseline folds one queuing-delay sample into the time-weighted
// EWMA baseline: alpha = dt/tau (scaled), clamped to 1. Back-to-back
// trains (dt ~ microseconds) barely move it; slow ramps (dt comparable
// to tau) track.
//
// p4:hotpath
func (d *DataPlane) updateQBaseline(q float64, now simtime.Time, scale float64) {
	dt := float64(now - d.qBaseTs)
	alpha := dt / float64(d.tun.BurstBaselineTau) * scale
	if alpha > 1 {
		alpha = 1
	}
	if alpha > 0 {
		d.qBaseline += (q - d.qBaseline) * alpha
	}
	d.qBaseTs = now
}

// CurrentQueueDelay returns the most recent per-packet queuing delay —
// what a control plane sampling the queue would read.
func (d *DataPlane) CurrentQueueDelay() simtime.Time { return d.lastQDelay }

// SetLongFlowHandler installs the long-flow digest callback (part of
// the Plane interface shared with the sharded front-end).
func (d *DataPlane) SetLongFlowHandler(fn func(LongFlowEvent)) { d.OnLongFlow = fn }

// SetMicroburstHandler installs the microburst digest callback (part
// of the Plane interface shared with the sharded front-end).
func (d *DataPlane) SetMicroburstHandler(fn func(MicroburstEvent)) { d.OnMicroburst = fn }

// StatsSnapshot returns the pipeline-internal event counters (part of
// the Plane interface; for a single pipe it is simply a copy of
// Stats).
func (d *DataPlane) StatsSnapshot() Stats { return d.Stats }

// Flush is the Plane barrier reduced to the single-pipe contract: a
// DataPlane processes every copy synchronously inside ProcessCopy or
// ProcessFront, so when Flush is called there is no batched work to
// replay and no deferred event to deliver, and the method is a
// guaranteed no-op. Callers holding a Plane may therefore call Flush
// unconditionally; only the sharded front-end turns it into a real
// barrier (see Pipes.Flush).
func (d *DataPlane) Flush() {}

// Plane is the pipeline surface the control plane drives: per-flow
// extraction, window resets, flow release, sketch clearing and the
// data-plane digest hooks. Both a single *DataPlane and the sharded
// *Pipes front-end implement it, so control-plane code is agnostic to
// how many pipes carry traffic.
type Plane interface {
	// ReadFlow extracts the merged per-flow snapshot for a flow and
	// its reverse direction.
	ReadFlow(id, revID FlowID) FlowSnapshot
	// ResetWindow clears the per-window registers (flight min/max,
	// max IAT) after an extraction cycle.
	ResetWindow(id FlowID)
	// ReleaseFlow returns a terminated flow's cells to the pool.
	ReleaseFlow(id FlowID)
	// ReadRTTHist extracts the flow's in-register RTT histogram (pass
	// the data-direction flow ID; the distribution lives at its cell).
	ReadRTTHist(id FlowID) RTTHist
	// AgeFlows evicts unannounced flow-table cells idle longer than
	// window, folding their exact counters into the sketch tier, and
	// returns the number of cells evicted.
	AgeFlows(now, window simtime.Time) int
	// ClearCMS zeroes the long-flow sketch (periodic decay).
	ClearCMS()
	// Flush establishes the barrier: all batched packet work is
	// replayed and joined, and deferred events are delivered, before
	// Flush returns. A no-op on an unsharded pipeline.
	Flush()
	// SetLongFlowHandler and SetMicroburstHandler install the digest
	// callbacks that deliver data-plane events upward.
	SetLongFlowHandler(func(LongFlowEvent))
	SetMicroburstHandler(func(MicroburstEvent))
}

// MonitorTable exposes the monitored-subnets match-action table for
// control-plane programming (directly or through the p4runtime layer).
func (d *DataPlane) MonitorTable() *Table { return d.monitorTable }

// RegisterByName looks up a register instance by its P4 name, the way
// the switch runtime API addresses state. Returns nil when unknown.
func (d *DataPlane) RegisterByName(name string) *Register { return d.registry[name] }

// RegisterNames lists the pipeline's register instances, sorted.
func (d *DataPlane) RegisterNames() []string {
	names := make([]string, 0, len(d.registry))
	for n := range d.registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ipKey packs an IPv4 address into a 32-bit table key.
func ipKey(a netip.Addr) uint64 {
	b := a.As4()
	return uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
}

// SkipSubnet programs the monitor table to exclude a destination
// prefix from measurement.
func (d *DataPlane) SkipSubnet(prefix netip.Prefix) error {
	return d.monitorTable.Insert(TableEntry{
		Match: []FieldMatch{{
			Value:     ipKey(prefix.Addr()),
			PrefixLen: prefix.Bits(),
		}},
		Action:   "skip",
		Priority: prefix.Bits(),
	})
}
