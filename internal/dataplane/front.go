package dataplane

import (
	"repro/internal/simtime"
	"repro/internal/tap"
)

// Front is a reused, capacity-retained batch of parsed packet views —
// the software analogue of yanet2's packet_front. A producer fills it
// with AppendCopy (parsing each TAP copy exactly once), hands it to
// DataPlane.ProcessFront or Pipes.ProcessFront to drain
// run-to-completion, then Resets and refills. Reset keeps the backing
// array, so a front that has reached its working-set size never
// allocates again.
//
// A Front is not safe for concurrent use: exactly one goroutine may
// fill or drain it at a time. Ownership passes wholesale — the sharded
// front-end hands each shard's front to one worker, and the worker
// hands it back empty.
type Front struct {
	views []view
}

// NewFront returns an empty front with capacity for n views. n is a
// starting size, not a limit; AppendCopy grows past it.
func NewFront(n int) *Front {
	return &Front{views: make([]view, 0, n)}
}

// Len reports the number of views currently batched.
func (f *Front) Len() int { return len(f.views) }

// Reset empties the front, retaining capacity for reuse.
//
// p4:hotpath
func (f *Front) Reset() { f.views = f.views[:0] }

// AppendCopy parses one TAP copy into the front. The copy is fully
// consumed here — the tap pair may recycle the packet as soon as
// AppendCopy returns.
//
// p4:hotpath
func (f *Front) AppendCopy(c tap.Copy) {
	f.views = append(f.views, parseCopy(c))
}

// append adds an already-parsed view (the sharded front-end parses
// during partitioning, before choosing the shard front).
//
// p4:hotpath
func (f *Front) append(v *view) {
	f.views = append(f.views, *v)
}

// Span is the simulated time covered by the batch: the timestamp
// distance between its first and last view. Deterministic (pure
// simtime), so it can feed an obs histogram without breaking replay
// determinism.
func (f *Front) Span() simtime.Time {
	if len(f.views) < 2 {
		return 0
	}
	return f.views[len(f.views)-1].at - f.views[0].at
}
