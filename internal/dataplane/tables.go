package dataplane

import (
	"fmt"
	"sort"
)

// This file models the P4 match-action table machinery: the construct
// a P4 program uses for forwarding and classification decisions, and
// the surface the control plane programs through the switch
// manufacturer's runtime API. The measurement program of the paper is
// mostly register-based, but its deployment still needs tables (e.g.
// to steer mirrored traffic to the right pipeline and to whitelist
// monitored subnets), and the runtime layer (p4runtime package) exposes
// them exactly like table writes on real hardware.

// MatchKind is a P4 match kind.
type MatchKind int

// The three match kinds the model supports.
const (
	MatchExact MatchKind = iota
	MatchLPM
	MatchTernary
)

// String names the match kind the way P4 table definitions spell it.
func (k MatchKind) String() string {
	switch k {
	case MatchExact:
		return "exact"
	case MatchLPM:
		return "lpm"
	default:
		return "ternary"
	}
}

// FieldMatch matches one header field value.
type FieldMatch struct {
	// Value is the match value (big-endian semantic, as a uint64 for
	// the field widths this model needs).
	Value uint64
	// PrefixLen applies to LPM matches: the number of significant
	// leading bits of Width.
	PrefixLen int
	// Mask applies to ternary matches.
	Mask uint64
}

// TableEntry is one programmed row: match fields, an action name, and
// action parameters, plus a priority for ternary tables.
type TableEntry struct {
	Match    []FieldMatch
	Action   string
	Params   []uint64
	Priority int
}

// Table is a P4 match-action table with a fixed size, a match kind per
// key field, and a default action.
type Table struct {
	name    string
	kinds   []MatchKind
	width   []int // field width in bits, for LPM
	size    int
	entries []TableEntry

	// DefaultAction applies when no entry matches.
	DefaultAction string
	DefaultParams []uint64

	// Stats
	Hits   uint64
	Misses uint64
}

// NewTable declares a table. kinds and widths describe the key fields.
func NewTable(name string, size int, kinds []MatchKind, widths []int) *Table {
	if len(kinds) != len(widths) {
		panic(fmt.Sprintf("dataplane: table %s: %d kinds vs %d widths", name, len(kinds), len(widths)))
	}
	if size <= 0 {
		panic(fmt.Sprintf("dataplane: table %s needs positive size", name))
	}
	return &Table{name: name, kinds: kinds, width: widths, size: size}
}

// Name returns the table's P4 name.
func (t *Table) Name() string { return t.name }

// Len returns the number of programmed entries.
func (t *Table) Len() int { return len(t.entries) }

// Insert adds an entry, enforcing the table's capacity — on hardware a
// full table rejects further entries, and control planes must handle
// it.
func (t *Table) Insert(e TableEntry) error {
	if len(e.Match) != len(t.kinds) {
		return fmt.Errorf("dataplane: table %s: entry has %d fields, key has %d", t.name, len(e.Match), len(t.kinds))
	}
	if len(t.entries) >= t.size {
		return fmt.Errorf("dataplane: table %s full (%d entries)", t.name, t.size)
	}
	t.entries = append(t.entries, e)
	// Ternary and LPM resolve by priority / prefix length: keep the
	// entries sorted so Lookup scans best-first.
	sort.SliceStable(t.entries, func(i, j int) bool {
		if t.entries[i].Priority != t.entries[j].Priority {
			return t.entries[i].Priority > t.entries[j].Priority
		}
		return totalPrefix(t.entries[i]) > totalPrefix(t.entries[j])
	})
	return nil
}

func totalPrefix(e TableEntry) int {
	sum := 0
	for _, m := range e.Match {
		sum += m.PrefixLen
	}
	return sum
}

// Delete removes the first entry whose match fields equal e's.
func (t *Table) Delete(e TableEntry) error {
	for i, cur := range t.entries {
		if matchEqual(cur.Match, e.Match) {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("dataplane: table %s: entry not found", t.name)
}

func matchEqual(a, b []FieldMatch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Lookup matches the key fields against the programmed entries and
// returns the winning action, or the default action on miss.
func (t *Table) Lookup(key []uint64) (action string, params []uint64, hit bool) {
	if len(key) != len(t.kinds) {
		panic(fmt.Sprintf("dataplane: table %s: lookup with %d fields", t.name, len(key)))
	}
	for i := range t.entries {
		if t.entryMatches(&t.entries[i], key) {
			t.Hits++
			return t.entries[i].Action, t.entries[i].Params, true
		}
	}
	t.Misses++
	return t.DefaultAction, t.DefaultParams, false
}

func (t *Table) entryMatches(e *TableEntry, key []uint64) bool {
	for i, m := range e.Match {
		switch t.kinds[i] {
		case MatchExact:
			if key[i] != m.Value {
				return false
			}
		case MatchLPM:
			shift := uint(t.width[i] - m.PrefixLen)
			if m.PrefixLen == 0 {
				continue // matches everything
			}
			if key[i]>>shift != m.Value>>shift {
				return false
			}
		case MatchTernary:
			if key[i]&m.Mask != m.Value&m.Mask {
				return false
			}
		}
	}
	return true
}

// Entries returns a copy of the programmed entries, best-match first.
func (t *Table) Entries() []TableEntry {
	return append([]TableEntry(nil), t.entries...)
}
