package dataplane

import (
	"time"

	"repro/internal/simtime"
)

// FlowSnapshot is one flow's register state as the control plane reads
// it through the switch-manufacturer APIs (§3.2). RTT is joined from
// the reverse-flow register using the reversed ID the long-flow digest
// carried.
type FlowSnapshot struct {
	Bytes      uint64
	Pkts       uint64
	PktLoss    uint64
	RTT        simtime.Time
	QDelay     simtime.Time
	Flight     uint64
	FlightMaxW uint64
	FlightMinW uint64 // flightNoSample if no observation this window
	MaxIAT     simtime.Time
	FirstSeen  simtime.Time
	LastSeen   simtime.Time
	FinSeen    bool
}

// HasFlightWindow reports whether the window min/max registers carried
// any sample.
func (s FlowSnapshot) HasFlightWindow() bool { return s.FlightMinW != flightNoSample }

// ReadFlow performs the control plane's per-flow register reads. id is
// the flow's own hash; revID is its reversed ID (for the RTT join).
// The snapshot is returned by value — the extraction tick reads every
// tracked flow once per metric, and a value snapshot keeps that loop
// heap-allocation-free (callers needing bulk register dumps pass their
// own buffer to Register.Snapshot instead).
func (d *DataPlane) ReadFlow(id, revID FlowID) FlowSnapshot {
	// Self-telemetry: the wall-clock cost of one register extraction
	// (the equivalent of a bfrt read RPC). Only when instrumented —
	// the uninstrumented read pays a single nil check.
	if d.obs != nil {
		defer d.observeExtract(time.Now())
	}
	idx := uint32(id)
	return FlowSnapshot{
		Bytes:      d.bytesReg.Read(idx),
		Pkts:       d.pktsReg.Read(idx),
		PktLoss:    d.pktLossReg.Read(idx),
		RTT:        simtime.Time(d.rttReg.Read(uint32(revID))),
		QDelay:     simtime.Time(d.qdelayReg.Read(idx)),
		Flight:     d.flightReg.Read(idx),
		FlightMaxW: d.flightMaxW.Read(idx),
		FlightMinW: d.flightMinW.Read(idx),
		MaxIAT:     simtime.Time(d.maxIATReg.Read(idx)),
		FirstSeen:  simtime.Time(d.firstSeen.Read(idx)),
		LastSeen:   simtime.Time(d.lastSeen.Read(idx)),
		FinSeen:    d.finSeenReg.Read(idx) == 1,
	}
}

// ResetWindow clears the flow's per-extraction-window registers
// (flight min/max, max IAT). The control plane writes these after each
// read, exactly as a Tofino control plane resets registers through the
// runtime API.
func (d *DataPlane) ResetWindow(id FlowID) {
	idx := uint32(id)
	d.flightMaxW.Write(idx, 0)
	d.flightMinW.Write(idx, flightNoSample)
	d.maxIATReg.Write(idx, 0)
}

// ReleaseFlow clears a terminated flow's announcement latch and
// first/last-seen stamps so the register cell can host a future flow
// cleanly. Cumulative counters are left intact until reused (hardware
// behaviour: the control plane zeroes what it needs).
func (d *DataPlane) ReleaseFlow(id FlowID) {
	idx := uint32(id)
	d.announced.Write(idx, 0)
	d.firstSeen.Write(idx, 0)
	d.lastSeen.Write(idx, 0)
	d.finSeenReg.Write(idx, 0)
	d.bytesReg.Write(idx, 0)
	d.pktsReg.Write(idx, 0)
	d.pktLossReg.Write(idx, 0)
	d.prevSeqReg.Write(idx, 0)
	d.highSeqReg.Write(idx, 0)
	d.highAckReg.Write(idx, 0)
	d.flightReg.Write(idx, 0)
	d.lastArrReg.Write(idx, 0)
	d.qdelayReg.Write(idx, 0)
	d.ownerLo.Write(idx, 0)
	// Release the admission record and the cell's RTT histogram so the
	// next owner starts from a clean distribution.
	slot := idx % d.tableN
	d.ownerKeys[slot] = FlowKey{}
	base := slot * RTTHistBuckets
	for b := uint32(0); b < RTTHistBuckets; b++ {
		d.rttHist.Write(base+b, 0)
	}
	d.ResetWindow(id)
}

// ClearCMS resets the long-flow sketch; the control plane does this
// periodically so stale counts do not keep old flows "long" forever.
func (d *DataPlane) ClearCMS() { d.cms.Clear() }

// Sketch exposes the long-flow CMS for white-box tests and the CMS
// ablation bench.
func (d *DataPlane) Sketch() *CMS { return d.cms }
