package dataplane

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/tap"
)

func flow() packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   packet.MustAddr("172.16.0.10"),
		DstIP:   packet.MustAddr("192.168.1.10"),
		SrcPort: 40001,
		DstPort: 5201,
		Proto:   packet.ProtoTCP,
	}
}

func ingress(p *packet.Packet, at simtime.Time) tap.Copy {
	return tap.Copy{Pkt: p, Point: tap.Ingress, At: at}
}

func egress(p *packet.Packet, at simtime.Time) tap.Copy {
	return tap.Copy{Pkt: p, Point: tap.Egress, At: at}
}

func dataPkt(ft packet.FiveTuple, seq uint64, payload int, ipid uint16) *packet.Packet {
	p := packet.NewTCP(ft, seq, 0, packet.FlagACK|packet.FlagPSH, payload)
	p.IPID = ipid
	return p
}

func ackPkt(ft packet.FiveTuple, ack uint64, ipid uint16) *packet.Packet {
	p := packet.NewTCP(ft.Reverse(), 1, ack, packet.FlagACK, 0)
	p.IPID = ipid
	return p
}

func TestHashDeterministicAndDirectional(t *testing.T) {
	ft := flow()
	if HashFiveTuple(ft) != HashFiveTuple(ft) {
		t.Fatal("hash must be deterministic")
	}
	if HashFiveTuple(ft) == HashReverse(ft) {
		t.Fatal("forward and reverse IDs must differ")
	}
	if HashReverse(ft) != HashFiveTuple(ft.Reverse()) {
		t.Fatal("reverse hash must equal hash of reversed tuple")
	}
}

func TestByteAndPacketCounting(t *testing.T) {
	d := New(Config{})
	ft := flow()
	id := HashFiveTuple(ft)
	d.ProcessCopy(ingress(dataPkt(ft, 1, 1000, 1), 10))
	d.ProcessCopy(ingress(dataPkt(ft, 1001, 500, 2), 20))
	s := d.ReadFlow(id, HashReverse(ft))
	wantBytes := uint64(2*40) + 1500 // two IPv4+TCP headers + payloads
	if s.Bytes != wantBytes {
		t.Fatalf("bytes=%d, want %d", s.Bytes, wantBytes)
	}
	if s.Pkts != 2 {
		t.Fatalf("pkts=%d", s.Pkts)
	}
	if s.FirstSeen != 10 || s.LastSeen != 20 {
		t.Fatalf("seen stamps %v %v", s.FirstSeen, s.LastSeen)
	}
}

func TestAlgorithm1RTT(t *testing.T) {
	// A data packet at t=1ms and its exact cumulative ACK at t=51ms
	// must produce a 50ms RTT sample stored at the ACK flow's ID.
	d := New(Config{})
	ft := flow()
	dp := dataPkt(ft, 1, 1448, 1)
	d.ProcessCopy(ingress(dp, simtime.Millisecond))
	ack := ackPkt(ft, dp.ExpectedAck(), 1)
	d.ProcessCopy(ingress(ack, 51*simtime.Millisecond))

	s := d.ReadFlow(HashFiveTuple(ft), HashReverse(ft))
	if s.RTT != 50*simtime.Millisecond {
		t.Fatalf("RTT=%v, want 50ms", s.RTT)
	}
	if d.Stats.RTTSamples != 1 {
		t.Fatalf("samples=%d", d.Stats.RTTSamples)
	}
}

func TestAlgorithm1RTTNoMatchForUnrelatedAck(t *testing.T) {
	d := New(Config{})
	ft := flow()
	d.ProcessCopy(ingress(dataPkt(ft, 1, 1448, 1), simtime.Millisecond))
	// ACK number that corresponds to no stored eACK: no sample.
	d.ProcessCopy(ingress(ackPkt(ft, 999999, 2), 51*simtime.Millisecond))
	if d.Stats.RTTSamples != 0 {
		t.Fatal("unrelated ACK must not produce an RTT sample")
	}
}

func TestAlgorithm1CumulativeAckMatchesLastSegment(t *testing.T) {
	// Delayed ACKs acknowledge every 2nd segment; the cumulative ACK
	// equals the eACK of the last covered segment, which still matches.
	d := New(Config{})
	ft := flow()
	p1 := dataPkt(ft, 1, 1448, 1)
	p2 := dataPkt(ft, 1449, 1448, 2)
	d.ProcessCopy(ingress(p1, 0))
	d.ProcessCopy(ingress(p2, simtime.Microsecond))
	d.ProcessCopy(ingress(ackPkt(ft, p2.ExpectedAck(), 3), 40*simtime.Millisecond))
	s := d.ReadFlow(HashFiveTuple(ft), HashReverse(ft))
	if d.Stats.RTTSamples != 1 {
		t.Fatalf("samples=%d, want 1", d.Stats.RTTSamples)
	}
	if s.RTT < 39*simtime.Millisecond || s.RTT > 40*simtime.Millisecond {
		t.Fatalf("RTT=%v", s.RTT)
	}
}

func TestAlgorithm1PacketLossOnSequenceRegression(t *testing.T) {
	// Algorithm 1: a sequence number lower than the previous one is a
	// retransmission, counted as a packet loss.
	d := New(Config{})
	ft := flow()
	id := HashFiveTuple(ft)
	d.ProcessCopy(ingress(dataPkt(ft, 1, 1448, 1), 0))
	d.ProcessCopy(ingress(dataPkt(ft, 1449, 1448, 2), 1))
	d.ProcessCopy(ingress(dataPkt(ft, 2897, 1448, 3), 2))
	// Retransmission of the first segment.
	d.ProcessCopy(ingress(dataPkt(ft, 1, 1448, 4), 3))
	s := d.ReadFlow(id, HashReverse(ft))
	if s.PktLoss != 1 {
		t.Fatalf("loss=%d, want 1", s.PktLoss)
	}
	// In-order continuation must not add losses.
	d.ProcessCopy(ingress(dataPkt(ft, 4345, 1448, 5), 4))
	if got := d.ReadFlow(id, HashReverse(ft)).PktLoss; got != 1 {
		t.Fatalf("loss=%d after in-order resume", got)
	}
}

func TestRetransmittedSegmentDoesNotRefreshEACK(t *testing.T) {
	// Algorithm 1 only stores the eACK on the in-order branch, so a
	// retransmission must not overwrite the original timestamp (which
	// would understate RTT).
	d := New(Config{})
	ft := flow()
	p := dataPkt(ft, 1, 1448, 1)
	d.ProcessCopy(ingress(p, simtime.Millisecond))
	d.ProcessCopy(ingress(dataPkt(ft, 1449, 1448, 2), simtime.Millisecond+simtime.Microsecond))
	// Retransmit of seq 1 at t=30ms (lower than prevSeq → loss branch).
	d.ProcessCopy(ingress(dataPkt(ft, 1, 1448, 3), 30*simtime.Millisecond))
	d.ProcessCopy(ingress(ackPkt(ft, p.ExpectedAck(), 4), 51*simtime.Millisecond))
	s := d.ReadFlow(HashFiveTuple(ft), HashReverse(ft))
	if s.RTT != 50*simtime.Millisecond {
		t.Fatalf("RTT=%v, want 50ms measured from the original transmission", s.RTT)
	}
}

func TestLongFlowAnnouncement(t *testing.T) {
	d := New(Config{LongFlowBytes: 10_000})
	ft := flow()
	var events []LongFlowEvent
	d.OnLongFlow = func(ev LongFlowEvent) { events = append(events, ev) }
	for i := 0; i < 20; i++ {
		d.ProcessCopy(ingress(dataPkt(ft, uint64(1+i*1000), 1000, uint16(i)), simtime.Time(i)))
	}
	if len(events) != 1 {
		t.Fatalf("announcements=%d, want exactly 1", len(events))
	}
	ev := events[0]
	if ev.ID != HashFiveTuple(ft) || ev.RevID != HashReverse(ft) {
		t.Fatal("announcement IDs wrong")
	}
	if ev.Tuple != ft {
		t.Fatal("announcement tuple wrong")
	}
	if ev.Bytes < 10_000 {
		t.Fatalf("announced at %d bytes, below threshold", ev.Bytes)
	}
}

func TestShortFlowNotAnnounced(t *testing.T) {
	d := New(Config{LongFlowBytes: 1 << 20})
	ft := flow()
	announced := false
	d.OnLongFlow = func(LongFlowEvent) { announced = true }
	for i := 0; i < 5; i++ {
		d.ProcessCopy(ingress(dataPkt(ft, uint64(1+i*100), 100, uint16(i)), simtime.Time(i)))
	}
	if announced {
		t.Fatal("mouse flow must not be announced")
	}
}

func TestQueuingDelayFromTapPair(t *testing.T) {
	// §4.2: queuing delay = egress-copy time − ingress-copy time.
	d := New(Config{})
	ft := flow()
	id := HashFiveTuple(ft)
	p := dataPkt(ft, 1, 1448, 42)
	d.ProcessCopy(ingress(p, 100*simtime.Microsecond))
	d.ProcessCopy(egress(p, 350*simtime.Microsecond))
	s := d.ReadFlow(id, HashReverse(ft))
	if s.QDelay != 250*simtime.Microsecond {
		t.Fatalf("qdelay=%v, want 250us", s.QDelay)
	}
	if d.CurrentQueueDelay() != 250*simtime.Microsecond {
		t.Fatal("per-port queue delay not updated")
	}
}

func TestEgressWithoutIngressIsMismatch(t *testing.T) {
	d := New(Config{})
	p := dataPkt(flow(), 1, 1448, 7)
	d.ProcessCopy(egress(p, simtime.Millisecond))
	if d.Stats.QSigMismatches != 1 {
		t.Fatalf("mismatches=%d", d.Stats.QSigMismatches)
	}
}

func TestMicroburstDetection(t *testing.T) {
	// Drive per-packet queue delays through a burst profile: quiet
	// baseline, sudden spike far above it, decay back to quiet.
	d := New(Config{BurstFloor: simtime.Millisecond})
	ft := flow()
	var events []MicroburstEvent
	d.OnMicroburst = func(ev MicroburstEvent) { events = append(events, ev) }

	delays := []simtime.Time{
		10 * simtime.Microsecond,
		50 * simtime.Microsecond,
		1500 * simtime.Microsecond, // burst starts
		2500 * simtime.Microsecond, // peak
		800 * simtime.Microsecond,
		100 * simtime.Microsecond, // burst ends
		20 * simtime.Microsecond,
	}
	at := 10 * simtime.Millisecond
	for i, qd := range delays {
		at += 100 * simtime.Microsecond
		p := dataPkt(ft, uint64(1+i*1000), 1000, uint16(i))
		d.ProcessCopy(ingress(p, at-qd))
		d.ProcessCopy(egress(p, at))
	}
	if len(events) != 1 {
		t.Fatalf("bursts=%d, want 1", len(events))
	}
	ev := events[0]
	if ev.PeakDelay != 2500*simtime.Microsecond {
		t.Fatalf("peak=%v", ev.PeakDelay)
	}
	if ev.Packets != 4 { // spike, peak, decay, end
		t.Fatalf("packets=%d", ev.Packets)
	}
	if ev.Duration <= 0 {
		t.Fatalf("duration=%v", ev.Duration)
	}
}

func TestNoMicroburstBelowWatermark(t *testing.T) {
	d := New(Config{BurstFloor: simtime.Millisecond})
	ft := flow()
	fired := false
	d.OnMicroburst = func(MicroburstEvent) { fired = true }
	at := 10 * simtime.Millisecond
	for i := 0; i < 50; i++ {
		at += 100 * simtime.Microsecond
		p := dataPkt(ft, uint64(1+i*1000), 1000, uint16(i))
		d.ProcessCopy(ingress(p, at-500*simtime.Microsecond)) // steady 500us
		d.ProcessCopy(egress(p, at))
	}
	if fired {
		t.Fatal("steady queue must not register as a burst")
	}
}

func TestNoMicroburstOnGradualRamp(t *testing.T) {
	// A standing queue built gradually (the CUBIC sawtooth) must not
	// register as microbursts: the EWMA baseline tracks slow change.
	d := New(Config{BurstFloor: simtime.Millisecond})
	ft := flow()
	bursts := 0
	d.OnMicroburst = func(MicroburstEvent) { bursts++ }
	at := 100 * simtime.Millisecond
	qd := 100 * simtime.Microsecond
	for i := 0; i < 2000; i++ {
		at += 100 * simtime.Microsecond
		// Ramp the queue by 0.5% per packet up to 20ms, then sawtooth.
		qd += qd / 200
		if qd > 20*simtime.Millisecond {
			qd = 10 * simtime.Millisecond
		}
		p := dataPkt(ft, uint64(1+i*1000), 1000, uint16(i))
		d.ProcessCopy(ingress(p, at-qd))
		d.ProcessCopy(egress(p, at))
	}
	if bursts != 0 {
		t.Fatalf("gradual ramp registered %d bursts", bursts)
	}
}

func TestMicroburstAboveStandingQueue(t *testing.T) {
	// A genuine microburst on top of an established standing queue
	// must still be caught: suddenness is relative to the baseline.
	d := New(Config{BurstFloor: simtime.Millisecond})
	ft := flow()
	var events []MicroburstEvent
	d.OnMicroburst = func(ev MicroburstEvent) { events = append(events, ev) }
	at := 100 * simtime.Millisecond
	send := func(qd simtime.Time) {
		at += 100 * simtime.Microsecond
		p := dataPkt(ft, uint64(at), 1000, uint16(at/1000))
		d.ProcessCopy(ingress(p, at-qd))
		d.ProcessCopy(egress(p, at))
	}
	for i := 0; i < 500; i++ {
		send(2 * simtime.Millisecond) // standing queue at 2ms
	}
	for i := 0; i < 10; i++ {
		send(15 * simtime.Millisecond) // the burst
	}
	for i := 0; i < 100; i++ {
		send(2 * simtime.Millisecond) // back to standing
	}
	if len(events) != 1 {
		t.Fatalf("bursts=%d, want 1", len(events))
	}
	if events[0].PeakDelay != 15*simtime.Millisecond {
		t.Fatalf("peak=%v", events[0].PeakDelay)
	}
}

func TestFlightSizeTracking(t *testing.T) {
	d := New(Config{})
	ft := flow()
	id := HashFiveTuple(ft)
	// Send 3 segments, ack the first: flight = 2 segments' bytes.
	p1 := dataPkt(ft, 1, 1000, 1)
	p2 := dataPkt(ft, 1001, 1000, 2)
	p3 := dataPkt(ft, 2001, 1000, 3)
	d.ProcessCopy(ingress(p1, 1))
	d.ProcessCopy(ingress(p2, 2))
	d.ProcessCopy(ingress(p3, 3))
	d.ProcessCopy(ingress(ackPkt(ft, p1.ExpectedAck(), 4), 4))
	s := d.ReadFlow(id, HashReverse(ft))
	if s.Flight != 2000 {
		t.Fatalf("flight=%d, want 2000", s.Flight)
	}
	if !s.HasFlightWindow() {
		t.Fatal("flight window must have samples after an ACK")
	}
}

func TestFlightWindowResetByControlPlane(t *testing.T) {
	d := New(Config{})
	ft := flow()
	id := HashFiveTuple(ft)
	p1 := dataPkt(ft, 1, 1000, 1)
	d.ProcessCopy(ingress(p1, 1))
	d.ProcessCopy(ingress(ackPkt(ft, p1.ExpectedAck(), 2), 2))
	d.ResetWindow(id)
	s := d.ReadFlow(id, HashReverse(ft))
	if s.HasFlightWindow() {
		t.Fatal("window must be empty after reset")
	}
	if s.FlightMaxW != 0 || s.MaxIAT != 0 {
		t.Fatal("window registers not cleared")
	}
}

func TestIATTracking(t *testing.T) {
	d := New(Config{})
	ft := flow()
	id := HashFiveTuple(ft)
	d.ProcessCopy(ingress(dataPkt(ft, 1, 1000, 1), 1*simtime.Millisecond))
	d.ProcessCopy(ingress(dataPkt(ft, 1001, 1000, 2), 2*simtime.Millisecond))
	d.ProcessCopy(ingress(dataPkt(ft, 2001, 1000, 3), 30*simtime.Millisecond))
	s := d.ReadFlow(id, HashReverse(ft))
	if s.MaxIAT != 28*simtime.Millisecond {
		t.Fatalf("maxIAT=%v, want 28ms", s.MaxIAT)
	}
}

func TestFINSeen(t *testing.T) {
	d := New(Config{})
	ft := flow()
	id := HashFiveTuple(ft)
	fin := packet.NewTCP(ft, 5000, 1, packet.FlagFIN|packet.FlagACK, 0)
	fin.IPID = 9
	d.ProcessCopy(ingress(fin, 10))
	if !d.ReadFlow(id, HashReverse(ft)).FinSeen {
		t.Fatal("FIN not recorded")
	}
}

func TestReleaseFlowClearsState(t *testing.T) {
	d := New(Config{LongFlowBytes: 1000})
	ft := flow()
	id := HashFiveTuple(ft)
	announcements := 0
	d.OnLongFlow = func(LongFlowEvent) { announcements++ }
	d.ProcessCopy(ingress(dataPkt(ft, 1, 1000, 1), 1))
	if announcements != 1 {
		t.Fatalf("announcements=%d", announcements)
	}
	d.ReleaseFlow(id)
	s := d.ReadFlow(id, HashReverse(ft))
	if s.Bytes != 0 || s.Pkts != 0 || s.FirstSeen != 0 {
		t.Fatal("release did not clear counters")
	}
	// CMS still remembers the flow, so the very next packet re-announces;
	// after a CMS clear it must not.
	d.ClearCMS()
	d.ProcessCopy(ingress(dataPkt(ft, 2001, 100, 2), 2))
	if announcements != 1 {
		t.Fatalf("flow re-announced after CMS clear: %d", announcements)
	}
}

func TestSlotCollisionCounting(t *testing.T) {
	// A 1-slot table forces every distinct flow onto the same cell.
	d := New(Config{FlowTableSize: 1})
	ftA := flow()
	ftB := flow()
	ftB.SrcPort = 40002
	d.ProcessCopy(ingress(dataPkt(ftA, 1, 100, 1), 1))
	d.ProcessCopy(ingress(dataPkt(ftB, 1, 100, 2), 2))
	if d.Stats.SlotCollisions == 0 {
		t.Fatal("collision not detected")
	}
}

func TestCMSEstimateNeverUnderestimates(t *testing.T) {
	// Count-min property: estimate >= true count, always.
	cms := NewCMS(64, 2)
	type fc struct {
		ft    packet.FiveTuple
		count uint64
	}
	var flows []fc
	base := flow()
	for i := 0; i < 200; i++ {
		ft := base
		ft.SrcPort = uint16(1000 + i)
		c := uint64((i%7 + 1) * 100)
		for j := uint64(0); j < c; j += 100 {
			cms.Update(ft, 100)
		}
		flows = append(flows, fc{ft, c})
	}
	for _, f := range flows {
		if est := cms.Estimate(f.ft); est < f.count {
			t.Fatalf("CMS underestimated: est=%d true=%d", est, f.count)
		}
	}
}

func TestCMSExactWhenSparse(t *testing.T) {
	cms := NewCMS(8192, 4)
	ft := flow()
	cms.Update(ft, 500)
	cms.Update(ft, 700)
	if est := cms.Estimate(ft); est != 1200 {
		t.Fatalf("sparse estimate %d, want exact 1200", est)
	}
}

func TestRegisterSemantics(t *testing.T) {
	r := NewRegister("t", 8)
	r.Write(3, 42)
	if r.Read(3) != 42 || r.Read(11) != 42 { // 11 mod 8 == 3
		t.Fatal("index folding broken")
	}
	r.Add(3, 8)
	if r.Read(3) != 50 {
		t.Fatal("Add broken")
	}
	r.Max(3, 10)
	if r.Read(3) != 50 {
		t.Fatal("Max lowered a value")
	}
	r.Max(3, 99)
	if r.Read(3) != 99 {
		t.Fatal("Max did not raise")
	}
	snap := r.Snapshot(nil)
	if snap[3] != 99 || len(snap) != 8 {
		t.Fatal("snapshot wrong")
	}
	r.Clear()
	if r.Read(3) != 0 {
		t.Fatal("clear failed")
	}
}

func TestEACKEvictionCounted(t *testing.T) {
	// A 1-cell eACK table: the second stored eACK evicts the first.
	d := New(Config{EACKTableSize: 1})
	ft := flow()
	d.ProcessCopy(ingress(dataPkt(ft, 1, 1000, 1), 1))
	d.ProcessCopy(ingress(dataPkt(ft, 1001, 1000, 2), 2))
	if d.Stats.EACKEvictions != 1 {
		t.Fatalf("evictions=%d, want 1", d.Stats.EACKEvictions)
	}
}

func TestUDPFlowCountedButNoTCPAlgorithms(t *testing.T) {
	d := New(Config{})
	ft := flow()
	ft.Proto = packet.ProtoUDP
	id := HashFiveTuple(ft)
	p := packet.NewUDP(ft, 1200)
	p.IPID = 1
	d.ProcessCopy(ingress(p, 5))
	s := d.ReadFlow(id, HashReverse(ft))
	if s.Bytes == 0 || s.Pkts != 1 {
		t.Fatal("UDP bytes not counted")
	}
	if s.PktLoss != 0 || s.RTT != 0 {
		t.Fatal("UDP must not exercise TCP algorithms")
	}
}

func BenchmarkProcessIngressData(b *testing.B) {
	d := New(Config{})
	ft := flow()
	p := dataPkt(ft, 1, 8960, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.SeqExt = uint64(1 + i*8960)
		p.IPID = uint16(i)
		d.ProcessCopy(ingress(p, simtime.Time(i)))
	}
}

func BenchmarkProcessAck(b *testing.B) {
	d := New(Config{})
	ft := flow()
	a := ackPkt(ft, 1449, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.AckExt = uint64(1 + i*1448)
		d.ProcessCopy(ingress(a, simtime.Time(i)))
	}
}
