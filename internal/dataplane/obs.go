package dataplane

import (
	"time"

	"repro/internal/obs"
)

// dpObs is the pipeline's optional self-telemetry: per-packet counters
// mirror Stats with atomic (scrape-safe) semantics, the RTT and
// queuing-delay histograms record every per-packet sample the way
// P4TG's histogram monitoring does, and the extraction histogram
// measures the wall-clock cost of each control-plane register read.
// Every mutation is an atomic add — the per-packet path stays
// zero-allocation with instrumentation enabled (bench_alloc_test.go
// asserts this).
type dpObs struct {
	ingressCopies *obs.Counter
	egressCopies  *obs.Counter
	rttSamples    *obs.Counter
	microbursts   *obs.Counter
	skipped       *obs.Counter
	aliased       *obs.Counter
	evictions     *obs.Counter

	rttNs     *obs.Histogram
	qdelayNs  *obs.Histogram
	burstNs   *obs.Histogram
	extractNs *obs.Histogram
}

// RegisterObs wires the pipeline's self-telemetry into r. Call it
// before traffic starts and do not call it concurrently with packet
// processing; the uninstrumented pipeline pays only a nil check.
func (d *DataPlane) RegisterObs(r *obs.Registry) {
	d.obs = &dpObs{
		ingressCopies: r.NewCounter("p4_dataplane_ingress_copies_total", "TAP ingress copies processed."),
		egressCopies:  r.NewCounter("p4_dataplane_egress_copies_total", "TAP egress copies processed."),
		rttSamples:    r.NewCounter("p4_dataplane_rtt_samples_total", "Algorithm 1 RTT samples produced."),
		microbursts:   r.NewCounter("p4_dataplane_microbursts_total", "Microburst events detected."),
		skipped:       r.NewCounter("p4_dataplane_skipped_packets_total", "Packets excluded by the monitor table."),
		aliased:       r.NewCounter("p4_dataplane_aliased_packets_total", "Packets the admission gate routed to the sketch tier."),
		evictions:     r.NewCounter("p4_dataplane_flow_evictions_total", "Flow-table cells evicted by the aging sweep."),
		rttNs:         r.NewHistogram("p4_dataplane_rtt_ns", "Per-sample RTT (ns), power-of-two buckets."),
		qdelayNs:      r.NewHistogram("p4_dataplane_queue_delay_ns", "Per-packet queuing delay (ns), power-of-two buckets."),
		burstNs:       r.NewHistogram("p4_dataplane_microburst_duration_ns", "Microburst duration (ns), power-of-two buckets."),
		extractNs:     r.NewHistogram("p4_dataplane_extract_wall_ns", "Wall-clock latency of one ReadFlow register extraction (ns)."),
	}
	// Occupancy is scanned at scrape time (never on the packet path).
	// The scan reads single-threaded register state, so the registry's
	// Sync hook must serialise scrapes with the simulation step.
	r.NewGaugeFunc("p4_dataplane_flow_table_occupancy", "Register cells currently owned by a flow.",
		d.OccupiedCells)
	r.NewGaugeFunc("p4_dataplane_flow_table_size", "Configured per-flow register cells.",
		func() uint64 { return uint64(d.cfg.FlowTableSize) })
	r.NewGaugeFunc("p4_dataplane_sketch_memory_bytes", "Lean sketch tier storage footprint.",
		d.LeanMemoryBytes)
}

// OccupiedCells counts flow-table register cells currently owned by a
// flow (collision witness register non-zero). O(FlowTableSize); meant
// for scrape time, not the packet path.
func (d *DataPlane) OccupiedCells() uint64 {
	var n uint64
	for i := 0; i < d.cfg.FlowTableSize; i++ {
		if d.ownerLo.Read(uint32(i)) != 0 {
			n++
		}
	}
	return n
}

// observeExtract times one ReadFlow when instrumentation is on.
func (d *DataPlane) observeExtract(start time.Time) {
	d.obs.extractNs.Observe(uint64(time.Since(start)))
}
