package dataplane

import (
	"fmt"
	"testing"

	"repro/internal/simtime"
)

func TestTuningFromConfigDefaults(t *testing.T) {
	d := New(Config{})
	tun := d.CurrentTuning()
	if tun.LongFlowBytes != 1<<20 || tun.BurstFactor != 4 ||
		tun.BurstEndFactor != 1.5 || tun.BurstFloor != simtime.Millisecond ||
		tun.BurstBaselineTau != 50*simtime.Millisecond {
		t.Fatalf("generation 0 does not match defaults: %+v", tun)
	}
	if err := tun.Validate(); err != nil {
		t.Fatalf("default tuning must validate: %v", err)
	}
}

func TestUpdateTuningTransactional(t *testing.T) {
	d := New(Config{})
	before := d.CurrentTuning()

	// A mutation that sets a valid field and then an invalid one must
	// publish nothing at all.
	err := d.UpdateTuning(func(tn *Tuning) error {
		tn.LongFlowBytes = 5000
		tn.BurstFactor = 0.5 // invalid: must exceed 1
		return nil
	})
	if err == nil {
		t.Fatal("invalid tuning must be rejected")
	}
	if d.CurrentTuning() != before {
		t.Fatalf("failed update changed the live tuning: %+v", d.CurrentTuning())
	}
	if c := d.TuningGenerations(); c.Published != 0 {
		t.Fatalf("failed update published a generation: %+v", c)
	}

	// A mutation that errors itself publishes nothing either.
	boom := fmt.Errorf("boom")
	if err := d.UpdateTuning(func(tn *Tuning) error { tn.LongFlowBytes = 1; return boom }); err != boom {
		t.Fatalf("mutation error not surfaced: %v", err)
	}
	if d.CurrentTuning() != before {
		t.Fatal("erroring mutation changed the live tuning")
	}

	if err := d.UpdateTuning(func(tn *Tuning) error { tn.LongFlowBytes = 5000; return nil }); err != nil {
		t.Fatalf("valid update failed: %v", err)
	}
	if got := d.CurrentTuning().LongFlowBytes; got != 5000 {
		t.Fatalf("LongFlowBytes=%d after update", got)
	}
	if c := d.TuningGenerations(); c.Published != 1 || c.Outstanding != 0 {
		t.Fatalf("counters after one update: %+v", c)
	}
}

func TestTuningValidate(t *testing.T) {
	base := TuningFrom(Config{}.WithDefaults())
	cases := []struct {
		name string
		mut  func(*Tuning)
	}{
		{"zero long-flow", func(tn *Tuning) { tn.LongFlowBytes = 0 }},
		{"factor at 1", func(tn *Tuning) { tn.BurstFactor = 1 }},
		{"end factor above factor", func(tn *Tuning) { tn.BurstEndFactor = tn.BurstFactor + 1 }},
		{"zero end factor", func(tn *Tuning) { tn.BurstEndFactor = 0 }},
		{"zero floor", func(tn *Tuning) { tn.BurstFloor = 0 }},
		{"zero tau", func(tn *Tuning) { tn.BurstBaselineTau = 0 }},
	}
	for _, tc := range cases {
		tn := base
		tc.mut(&tn)
		if tn.Validate() == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tn)
		}
	}
}

func TestUpdateTuningChangesLongFlowThreshold(t *testing.T) {
	// Lowering the long-flow threshold at runtime must make the very
	// next packet batch announce flows the old generation ignored.
	d := New(Config{})
	var events []LongFlowEvent
	d.OnLongFlow = func(ev LongFlowEvent) { events = append(events, ev) }
	ft := flow()
	d.ProcessCopy(ingress(dataPkt(ft, 1, 1400, 1), 10))
	if len(events) != 0 {
		t.Fatal("1.4 kB must not trip the 1 MB default threshold")
	}
	if err := d.UpdateTuning(func(tn *Tuning) error { tn.LongFlowBytes = 2000; return nil }); err != nil {
		t.Fatal(err)
	}
	d.ProcessCopy(ingress(dataPkt(ft, 1401, 1400, 2), 20))
	if len(events) != 1 {
		t.Fatalf("new 2 kB threshold not applied: %d announcements", len(events))
	}
	if c := d.TuningGenerations(); c.Outstanding != 0 {
		t.Fatalf("superseded generation never drained: %+v", c)
	}
}

func TestPipesShareOneTuningStore(t *testing.T) {
	p := NewPipes(Config{}, 4)
	if err := p.UpdateTuning(func(tn *Tuning) error { tn.LongFlowBytes = 4096; return nil }); err != nil {
		t.Fatal(err)
	}
	for i, d := range p.shards {
		if got := d.CurrentTuning().LongFlowBytes; got != 4096 {
			t.Fatalf("shard %d sees LongFlowBytes=%d", i, got)
		}
		if d.tuning != p.shards[0].tuning {
			t.Fatalf("shard %d has a private tuning store", i)
		}
	}
	if c := p.TuningGenerations(); c.Published != 1 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestProcessFrontPinsOneGeneration(t *testing.T) {
	// While a front is mid-flight the pinned generation must be
	// counted outstanding; after the batch it must retire.
	d := New(Config{})
	g := d.TuningStore().Acquire() // simulate an in-flight batch
	if err := d.UpdateTuning(func(tn *Tuning) error { tn.LongFlowBytes = 9000; return nil }); err != nil {
		t.Fatal(err)
	}
	if c := d.TuningGenerations(); c.Outstanding != 1 {
		t.Fatalf("pinned superseded generation not outstanding: %+v", c)
	}
	if g.Value().LongFlowBytes == 9000 {
		t.Fatal("pinned snapshot must keep the old generation's values")
	}
	d.TuningStore().Release(g)
	if c := d.TuningGenerations(); c.Outstanding != 0 {
		t.Fatalf("generation did not retire on release: %+v", c)
	}
}
