package dataplane

import (
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/simtime"
)

func TestTableExactMatch(t *testing.T) {
	tb := NewTable("t", 8, []MatchKind{MatchExact}, []int{32})
	tb.DefaultAction = "drop"
	if err := tb.Insert(TableEntry{Match: []FieldMatch{{Value: 42}}, Action: "fwd", Params: []uint64{3}}); err != nil {
		t.Fatal(err)
	}
	action, params, hit := tb.Lookup([]uint64{42})
	if !hit || action != "fwd" || params[0] != 3 {
		t.Fatalf("lookup: %s %v %v", action, params, hit)
	}
	action, _, hit = tb.Lookup([]uint64{43})
	if hit || action != "drop" {
		t.Fatalf("miss handling: %s %v", action, hit)
	}
	if tb.Hits != 1 || tb.Misses != 1 {
		t.Fatalf("stats %d/%d", tb.Hits, tb.Misses)
	}
}

func TestTableLPMLongestWins(t *testing.T) {
	tb := NewTable("t", 8, []MatchKind{MatchLPM}, []int{32})
	wide := TableEntry{
		Match:    []FieldMatch{{Value: 0xC0A80000, PrefixLen: 16}}, // 192.168/16
		Action:   "wide",
		Priority: 16,
	}
	narrow := TableEntry{
		Match:    []FieldMatch{{Value: 0xC0A80700, PrefixLen: 24}}, // 192.168.7/24
		Action:   "narrow",
		Priority: 24,
	}
	tb.Insert(wide)
	tb.Insert(narrow)
	if a, _, _ := tb.Lookup([]uint64{0xC0A80701}); a != "narrow" {
		t.Fatalf("got %s", a)
	}
	if a, _, _ := tb.Lookup([]uint64{0xC0A80801}); a != "wide" {
		t.Fatalf("got %s", a)
	}
}

func TestTableTernary(t *testing.T) {
	tb := NewTable("t", 8, []MatchKind{MatchTernary}, []int{16})
	tb.Insert(TableEntry{
		Match:    []FieldMatch{{Value: 0x1400, Mask: 0xFF00}}, // ports 0x14xx
		Action:   "mark",
		Priority: 10,
	})
	if a, _, hit := tb.Lookup([]uint64{0x14FF}); !hit || a != "mark" {
		t.Fatalf("ternary match failed: %s", a)
	}
	if _, _, hit := tb.Lookup([]uint64{0x1500}); hit {
		t.Fatal("ternary false positive")
	}
}

func TestTableCapacity(t *testing.T) {
	tb := NewTable("t", 2, []MatchKind{MatchExact}, []int{32})
	tb.Insert(TableEntry{Match: []FieldMatch{{Value: 1}}, Action: "a"})
	tb.Insert(TableEntry{Match: []FieldMatch{{Value: 2}}, Action: "a"})
	if err := tb.Insert(TableEntry{Match: []FieldMatch{{Value: 3}}, Action: "a"}); err == nil {
		t.Fatal("full table must reject inserts")
	}
}

func TestTableDelete(t *testing.T) {
	tb := NewTable("t", 8, []MatchKind{MatchExact}, []int{32})
	e := TableEntry{Match: []FieldMatch{{Value: 7}}, Action: "a"}
	tb.Insert(e)
	if err := tb.Delete(e); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 0 {
		t.Fatal("entry not removed")
	}
	if err := tb.Delete(e); err == nil {
		t.Fatal("deleting a missing entry must error")
	}
}

func TestTableFieldCountValidation(t *testing.T) {
	tb := NewTable("t", 8, []MatchKind{MatchExact, MatchExact}, []int{32, 16})
	if err := tb.Insert(TableEntry{Match: []FieldMatch{{Value: 1}}, Action: "a"}); err == nil {
		t.Fatal("wrong field count must be rejected")
	}
}

func TestMonitorTableSkipsSubnet(t *testing.T) {
	d := New(Config{})
	if err := d.SkipSubnet(netip.MustParsePrefix("192.168.2.0/24")); err != nil {
		t.Fatal(err)
	}

	mk := func(dst string) *packet.Packet {
		ft := flow()
		ft.DstIP = packet.MustAddr(dst)
		p := packet.NewTCP(ft, 1, 0, packet.FlagACK|packet.FlagPSH, 1000)
		p.IPID = 1
		return p
	}
	d.ProcessCopy(ingress(mk("192.168.2.10"), simtime.Millisecond)) // skipped
	d.ProcessCopy(ingress(mk("192.168.1.10"), simtime.Millisecond)) // monitored

	if d.Stats.SkippedPackets != 1 {
		t.Fatalf("skipped=%d", d.Stats.SkippedPackets)
	}
	skipped := packet.FiveTuple{
		SrcIP: flow().SrcIP, DstIP: packet.MustAddr("192.168.2.10"),
		SrcPort: flow().SrcPort, DstPort: flow().DstPort, Proto: packet.ProtoTCP,
	}
	if s := d.ReadFlow(HashFiveTuple(skipped), HashReverse(skipped)); s.Pkts != 0 {
		t.Fatal("skipped packet updated registers")
	}
	monitored := skipped
	monitored.DstIP = packet.MustAddr("192.168.1.10")
	if s := d.ReadFlow(HashFiveTuple(monitored), HashReverse(monitored)); s.Pkts != 1 {
		t.Fatal("monitored packet not counted")
	}
}

func TestMonitorTableDefaultMonitorsEverything(t *testing.T) {
	d := New(Config{})
	p := dataPkt(flow(), 1, 1000, 1)
	d.ProcessCopy(ingress(p, simtime.Millisecond))
	if d.Stats.SkippedPackets != 0 {
		t.Fatal("default action must monitor")
	}
}

func TestTableLookupDeterministicProperty(t *testing.T) {
	// Property: for any set of exact entries, lookup of an inserted key
	// returns its action; lookup of any other key misses.
	f := func(keys []uint32, probe uint32) bool {
		tb := NewTable("t", 1024, []MatchKind{MatchExact}, []int{32})
		tb.DefaultAction = "miss"
		inserted := map[uint64]bool{}
		for _, k := range keys {
			if len(inserted) >= 1024 {
				break
			}
			if inserted[uint64(k)] {
				continue
			}
			if err := tb.Insert(TableEntry{Match: []FieldMatch{{Value: uint64(k)}}, Action: "hit"}); err != nil {
				return false
			}
			inserted[uint64(k)] = true
		}
		a, _, hit := tb.Lookup([]uint64{uint64(probe)})
		if inserted[uint64(probe)] {
			return hit && a == "hit"
		}
		return !hit && a == "miss"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
