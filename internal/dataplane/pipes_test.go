package dataplane

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/tap"
)

// traceFlow returns the i-th synthetic 5-tuple of the merge-property
// trace: internal DTN to one of three external networks, distinct
// source ports.
func traceFlow(i int) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   packet.MustAddr("172.16.0.10"),
		DstIP:   packet.MustAddr(fmt.Sprintf("192.168.%d.10", i%3+1)),
		SrcPort: uint16(40000 + i),
		DstPort: 5201,
		Proto:   packet.ProtoTCP,
	}
}

// aliasFreeFlowIdx returns n trace-flow indices whose forward and
// reverse flow IDs occupy pairwise-distinct flow-table cells at the
// default table size. The merge property is stated for alias-free
// traffic: the admission gate resolves cell aliasing per pipe (the
// loser of a cell goes to the sketch tier), so two aliased flows that
// the partition separates each own an exact cell on their shard while
// a single pipe admits only the first — a deliberate semantic change
// pinned by the eviction/aliasing regression tests, not a merge bug.
func aliasFreeFlowIdx(n int) []int {
	used := make(map[uint32]bool, 2*n)
	idxs := make([]int, 0, n)
	for i := 0; len(idxs) < n; i++ {
		ft := traceFlow(i)
		a := uint32(HashFiveTuple(ft)) % 2048
		b := uint32(HashReverse(ft)) % 2048
		if a == b || used[a] || used[b] {
			continue
		}
		used[a], used[b] = true, true
		idxs = append(idxs, i)
	}
	return idxs
}

// buildTrace constructs a deterministic bidirectional packet trace:
// per flow, interleaved data segments (with a couple of injected
// retransmissions to exercise Algorithm 1's loss branch), matching
// cumulative ACKs in the reverse direction, and egress copies of the
// data packets at a fixed transit delay. Copies are returned in
// global timestamp order, as the TAP pair would deliver them.
func buildTrace(flows, pktsPerFlow int) []tap.Copy {
	idxs := make([]int, flows)
	for i := range idxs {
		idxs[i] = i
	}
	return buildTraceIdx(idxs, pktsPerFlow)
}

// buildTraceIdx is buildTrace over an explicit set of trace-flow
// indices (see aliasFreeFlowIdx).
func buildTraceIdx(idxs []int, pktsPerFlow int) []tap.Copy {
	var trace []tap.Copy
	const mss = 1448
	const transit = 200 * simtime.Microsecond
	for k := 0; k < pktsPerFlow; k++ {
		for _, i := range idxs {
			ft := traceFlow(i)
			at := simtime.Millisecond + simtime.Time(k)*simtime.Millisecond + simtime.Time(i)*simtime.Microsecond
			seq := uint64(1 + k*mss)
			if k > 0 && k%7 == 0 {
				// Injected retransmission: sequence regression.
				seq = uint64(1 + (k-1)*mss)
			}
			data := packet.NewTCP(ft, seq, 0, packet.FlagACK|packet.FlagPSH, mss)
			data.IPID = uint16(i*1000 + k + 1)
			trace = append(trace, tap.Copy{Pkt: data, Point: tap.Ingress, At: at})
			trace = append(trace, tap.Copy{Pkt: data, Point: tap.Egress, At: at + transit})
			// The receiver acknowledges promptly.
			ack := packet.NewTCP(ft.Reverse(), 1, seq+mss, packet.FlagACK, 0)
			ack.IPID = uint16(i*1000 + k + 1)
			trace = append(trace, tap.Copy{Pkt: ack, Point: tap.Ingress, At: at + transit*2})
		}
	}
	sort.SliceStable(trace, func(a, b int) bool { return trace[a].At < trace[b].At })
	return trace
}

// runTrace feeds the trace through a fresh front-end with the given
// shard count, collecting long-flow announcements.
func runTrace(trace []tap.Copy, shards int) (*Pipes, []LongFlowEvent) {
	p := NewPipes(Config{LongFlowBytes: 64 << 10}, shards)
	var announced []LongFlowEvent
	p.SetLongFlowHandler(func(ev LongFlowEvent) { announced = append(announced, ev) })
	for _, c := range trace {
		p.ProcessCopy(c)
	}
	p.Flush()
	return p, announced
}

// TestPipesMergePropertyMatchesSinglePipe is the sharding correctness
// property: for the same packet trace, the merged scrape totals at
// shards=N must equal the single-pipe totals — per-flow bytes, packet
// and loss counters, pipeline statistics (ingress/egress copies, RTT
// samples), occupancy and the announced long-flow set. Shard state is
// disjoint and every shard uses the same table geometry, so summing
// (or max/min/OR-ing, per register kind) reproduces the single-pipe
// cells exactly (DESIGN.md §5.4).
func TestPipesMergePropertyMatchesSinglePipe(t *testing.T) {
	const flows, pkts = 24, 60
	idxs := aliasFreeFlowIdx(flows)
	for _, shards := range []int{2, 3, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			base, baseEvents := runTrace(buildTraceIdx(idxs, pkts), 1)
			sharded, shardedEvents := runTrace(buildTraceIdx(idxs, pkts), shards)

			for _, i := range idxs {
				ft := traceFlow(i)
				id, rev := HashFiveTuple(ft), HashReverse(ft)
				want := base.ReadFlow(id, rev)
				got := sharded.ReadFlow(id, rev)
				if got.Bytes != want.Bytes || got.Pkts != want.Pkts || got.PktLoss != want.PktLoss {
					t.Fatalf("flow %d: merged bytes/pkts/loss %d/%d/%d, single-pipe %d/%d/%d",
						i, got.Bytes, got.Pkts, got.PktLoss, want.Bytes, want.Pkts, want.PktLoss)
				}
				if got.RTT != want.RTT || got.FinSeen != want.FinSeen {
					t.Fatalf("flow %d: merged RTT/fin %v/%v, single-pipe %v/%v",
						i, got.RTT, got.FinSeen, want.RTT, want.FinSeen)
				}
				if got.FirstSeen != want.FirstSeen || got.LastSeen != want.LastSeen {
					t.Fatalf("flow %d: merged first/last seen %v/%v, single-pipe %v/%v",
						i, got.FirstSeen, got.LastSeen, want.FirstSeen, want.LastSeen)
				}
			}

			ws, gs := base.StatsSnapshot(), sharded.StatsSnapshot()
			if gs.IngressCopies != ws.IngressCopies || gs.EgressCopies != ws.EgressCopies {
				t.Fatalf("merged copies %d/%d, single-pipe %d/%d",
					gs.IngressCopies, gs.EgressCopies, ws.IngressCopies, ws.EgressCopies)
			}
			if gs.RTTSamples != ws.RTTSamples {
				t.Fatalf("merged RTT samples %d, single-pipe %d", gs.RTTSamples, ws.RTTSamples)
			}
			// Occupancy is not merge-exact under cell aliasing: two flow
			// directions sharing one cell on a single pipe occupy one cell
			// each when the partition separates them. The sum is bounded
			// below by the single-pipe count and above by the number of
			// flow directions (each of the `flows` 5-tuples plus its ACK
			// direction owns at most one cell per shard).
			occ, baseOcc := sharded.OccupiedCells(), base.OccupiedCells()
			if occ < baseOcc || occ > uint64(2*flows) {
				t.Fatalf("merged occupancy %d outside [%d, %d]", occ, baseOcc, 2*flows)
			}

			// Announcements: every flow the single pipe announced is also
			// announced when sharded. The sharded set may be strictly
			// larger under cell aliasing — on one pipe two data flows
			// sharing a cell share the announced latch, so the second is
			// suppressed; the partition separates them and un-suppresses
			// the announcement (more faithful, not less).
			gotIDs := announcedIDs(shardedEvents)
			for _, id := range announcedIDs(baseEvents) {
				j := sort.Search(len(gotIDs), func(k int) bool { return gotIDs[k] >= id })
				if j == len(gotIDs) || gotIDs[j] != id {
					t.Fatalf("flow %08x announced on the single pipe but not when sharded", uint32(id))
				}
			}
			if len(shardedEvents) < len(baseEvents) || len(shardedEvents) > flows {
				t.Fatalf("announced %d long flows, single-pipe %d, trace has %d", len(shardedEvents), len(baseEvents), flows)
			}
			for _, ev := range shardedEvents {
				if ev.Shard < 0 || ev.Shard >= shards {
					t.Fatalf("event shard %d out of range [0,%d)", ev.Shard, shards)
				}
				if want := shardOf(KeyOf(ev.Tuple), shards); ev.Shard != want {
					t.Fatalf("event shard %d, partition says %d", ev.Shard, want)
				}
			}
		})
	}
}

func announcedIDs(evs []LongFlowEvent) []FlowID {
	ids := make([]FlowID, len(evs))
	for i, ev := range evs {
		ids[i] = ev.ID
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// TestPipesShardPartitionSymmetric pins the canonical keying: both
// directions of a flow must land on the same shard, or Algorithm 1's
// eACK match (stored by the data direction, consumed by the ACK
// direction) breaks across pipes.
func TestPipesShardPartitionSymmetric(t *testing.T) {
	for i := 0; i < 200; i++ {
		ft := traceFlow(i)
		for _, n := range []int{2, 3, 4, 7, 16} {
			fwd := shardOf(KeyOf(ft), n)
			rev := shardOf(KeyOf(ft.Reverse()), n)
			if fwd != rev {
				t.Fatalf("flow %d at %d shards: forward on %d, reverse on %d", i, n, fwd, rev)
			}
			if fwd < 0 || fwd >= n {
				t.Fatalf("shard %d out of range [0,%d)", fwd, n)
			}
		}
	}
}

// TestPipesShardSpread sanity-checks the partition actually spreads
// flows (a constant partition would pass the merge property while
// parallelising nothing).
func TestPipesShardSpread(t *testing.T) {
	const n = 4
	var used [n]int
	for i := 0; i < 256; i++ {
		used[shardOf(KeyOf(traceFlow(i)), n)]++
	}
	for s, c := range used {
		if c == 0 {
			t.Fatalf("shard %d received no flows out of 256", s)
		}
	}
}

// TestPipesSingleShardForwardsSynchronously pins the shards=1 fast
// path: no batching, events delivered inline during ProcessCopy.
func TestPipesSingleShardForwardsSynchronously(t *testing.T) {
	p := NewPipes(Config{LongFlowBytes: 2048}, 1)
	fired := 0
	p.SetLongFlowHandler(func(ev LongFlowEvent) {
		fired++
		if ev.Shard != 0 {
			t.Fatalf("single-pipe event shard = %d", ev.Shard)
		}
	})
	ft := traceFlow(0)
	for k := 0; k < 4; k++ {
		data := packet.NewTCP(ft, uint64(1+k*1448), 0, packet.FlagACK|packet.FlagPSH, 1448)
		data.IPID = uint16(k + 1)
		p.ProcessCopy(tap.Copy{Pkt: data, Point: tap.Ingress, At: simtime.Time(k+1) * simtime.Millisecond})
	}
	if fired != 1 {
		t.Fatalf("long-flow announcements = %d, want 1 (inline)", fired)
	}
	if got := p.StatsSnapshot().IngressCopies; got != 4 {
		t.Fatalf("ingress copies = %d", got)
	}
}

// TestPipesDeferredEventsCarryShard verifies shards>1 semantics: the
// announcement is deferred to the barrier (batching), carries the
// originating shard id, and keeps the packet-time timestamp.
func TestPipesDeferredEventsCarryShard(t *testing.T) {
	p := NewPipes(Config{LongFlowBytes: 2048}, 4)
	var got []LongFlowEvent
	p.SetLongFlowHandler(func(ev LongFlowEvent) { got = append(got, ev) })
	ft := traceFlow(0)
	var last simtime.Time
	for k := 0; k < 4; k++ {
		data := packet.NewTCP(ft, uint64(1+k*1448), 0, packet.FlagACK|packet.FlagPSH, 1448)
		data.IPID = uint16(k + 1)
		last = simtime.Time(k+1) * simtime.Millisecond
		p.ProcessCopy(tap.Copy{Pkt: data, Point: tap.Ingress, At: last})
	}
	if len(got) != 0 {
		t.Fatalf("event delivered before the barrier")
	}
	p.Flush()
	if len(got) != 1 {
		t.Fatalf("announcements after flush = %d, want 1", len(got))
	}
	if want := shardOf(KeyOf(ft), 4); got[0].Shard != want {
		t.Fatalf("event shard = %d, want %d", got[0].Shard, want)
	}
	if got[0].At > last {
		t.Fatalf("event timestamp %v is later than the packets that caused it (%v)", got[0].At, last)
	}
}

// TestPipesConcurrentExtraction hammers every merged read API from
// reader goroutines while a writer streams a trace through
// ProcessCopy — the -race test for the sharded front-end's locking
// (flush workers included). Final totals must still match the trace.
func TestPipesConcurrentExtraction(t *testing.T) {
	trace := buildTrace(16, 40)
	p := NewPipes(Config{}, 4)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < 3; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				ft := traceFlow(r)
				p.ReadFlow(HashFiveTuple(ft), HashReverse(ft))
				p.StatsSnapshot()
				p.OccupiedCells()
				p.CurrentQueueDelay()
				p.ReadRegister("flow_bytes", 7)
				p.EstimateKey(KeyOf(ft))
			}
		}()
	}
	for _, c := range trace {
		p.ProcessCopy(c)
	}
	close(done)
	wg.Wait()
	p.Flush()
	st := p.StatsSnapshot()
	if want := uint64(16 * 40 * 2); st.IngressCopies != want {
		t.Fatalf("ingress copies = %d, want %d", st.IngressCopies, want)
	}
	if want := uint64(16 * 40); st.EgressCopies != want {
		t.Fatalf("egress copies = %d, want %d", st.EgressCopies, want)
	}
}

// TestPipesRegisterMergeSemantics exercises the by-name register
// merge: additive cells sum across shards, first_seen takes the
// earliest stamp, and unknown names are rejected.
func TestPipesRegisterMergeSemantics(t *testing.T) {
	trace := buildTrace(8, 20)
	base, _ := runTrace(trace, 1)
	sharded, _ := runTrace(buildTrace(8, 20), 4)
	for i := 0; i < 8; i++ {
		idx := uint32(HashFiveTuple(traceFlow(i)))
		for _, name := range []string{"flow_bytes", "flow_pkts", "pkt_loss", "first_seen", "last_seen"} {
			want, ok := base.ReadRegister(name, idx)
			if !ok {
				t.Fatalf("register %q unknown on single pipe", name)
			}
			got, ok := sharded.ReadRegister(name, idx)
			if !ok || got != want {
				t.Fatalf("register %q cell %d: merged %d (ok=%v), single-pipe %d", name, idx, got, ok, want)
			}
		}
	}
	if _, ok := sharded.ReadRegister("bogus", 0); ok {
		t.Fatal("unknown register accepted")
	}
	if !sharded.WriteRegister("flow_bytes", 3, 0) {
		t.Fatal("reset of known register rejected")
	}
	if v, _ := sharded.ReadRegister("flow_bytes", 3); v != 0 {
		t.Fatalf("cell not reset on every shard: %d", v)
	}
}
