package dataplane

import (
	"fmt"

	"repro/internal/packet"
)

// CMS is a count-min sketch (Cormode & Muthukrishnan), the structure
// the paper's data plane uses to detect long flows before dedicating
// per-flow register state to them (§4). Counters accumulate bytes.
type CMS struct {
	width uint32
	depth uint32
	rows  [][]uint64
}

// NewCMS builds a sketch with the given geometry. Width is the number
// of counters per row; depth is the number of independent hash rows.
func NewCMS(width, depth int) *CMS {
	if width <= 0 || depth <= 0 {
		panic(fmt.Sprintf("dataplane: invalid CMS geometry %dx%d", width, depth))
	}
	rows := make([][]uint64, depth)
	for i := range rows {
		rows[i] = make([]uint64, width)
	}
	return &CMS{width: uint32(width), depth: uint32(depth), rows: rows}
}

// Update adds count bytes to the flow's counters and returns the new
// estimate (the conservative minimum across rows).
func (c *CMS) Update(ft packet.FiveTuple, count uint64) uint64 {
	return c.UpdateKey(KeyOf(ft), count)
}

// UpdateKey is Update for a pre-packed flow key — the per-packet path,
// which packs the key once and derives every row hash from it.
//
// p4:hotpath
func (c *CMS) UpdateKey(k FlowKey, count uint64) uint64 {
	est := ^uint64(0)
	for row := uint32(0); row < c.depth; row++ {
		idx := k.hashAt(row) % c.width
		c.rows[row][idx] += count
		if v := c.rows[row][idx]; v < est {
			est = v
		}
	}
	return est
}

// Estimate returns the sketch's byte estimate for the flow without
// updating it.
func (c *CMS) Estimate(ft packet.FiveTuple) uint64 {
	return c.EstimateKey(KeyOf(ft))
}

// EstimateKey is Estimate for a pre-packed flow key.
//
// p4:hotpath
func (c *CMS) EstimateKey(k FlowKey) uint64 {
	est := ^uint64(0)
	for row := uint32(0); row < c.depth; row++ {
		idx := k.hashAt(row) % c.width
		if v := c.rows[row][idx]; v < est {
			est = v
		}
	}
	return est
}

// Clear zeroes the sketch. The data plane periodically resets it so
// stale flows do not saturate the counters.
func (c *CMS) Clear() {
	for _, row := range c.rows {
		for i := range row {
			row[i] = 0
		}
	}
}
