package dataplane

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
)

func TestCMSGeometryValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 4}, {4, 0}, {-1, 2}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCMS(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			NewCMS(bad[0], bad[1])
		}()
	}
}

// TestCMSKeyPathNeverUndercounts pins the count-min guarantee on the
// packed-key entry points the per-packet path uses: the estimate is
// always >= the true count, so an elephant can never hide (false
// negatives are impossible; only mice can be over-promoted).
func TestCMSKeyPathNeverUndercounts(t *testing.T) {
	cms := NewCMS(128, 4)
	rng := rand.New(rand.NewSource(23))
	truth := make(map[FlowKey]uint64)
	var keys []FlowKey
	for i := 0; i < 200; i++ {
		keys = append(keys, KeyOf(randomTuple(rng)))
	}
	for i := 0; i < 5000; i++ {
		k := keys[rng.Intn(len(keys))]
		n := uint64(rng.Intn(1500) + 1)
		truth[k] += n
		if est := cms.UpdateKey(k, n); est < truth[k] {
			t.Fatalf("update estimate %d below true count %d", est, truth[k])
		}
	}
	for k, want := range truth {
		if est := cms.EstimateKey(k); est < want {
			t.Fatalf("estimate %d below true count %d", est, want)
		}
	}
}

// TestCMSKeyPathExactWhenSparse verifies a wide sketch counts a few
// flows exactly through the packed-key path: with no collisions the
// min across rows is the true sum.
func TestCMSKeyPathExactWhenSparse(t *testing.T) {
	cms := NewCMS(1<<16, 4)
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 8; i++ {
		k := KeyOf(randomTuple(rng))
		cms.UpdateKey(k, 1000)
		cms.UpdateKey(k, 448)
		if est := cms.EstimateKey(k); est != 1448 {
			t.Fatalf("sparse estimate %d, want exactly 1448", est)
		}
	}
}

// TestCMSTuplePathsDelegate checks the FiveTuple entry points and the
// packed-key ones read and write the same counters.
func TestCMSTuplePathsDelegate(t *testing.T) {
	cms := NewCMS(256, 3)
	rng := rand.New(rand.NewSource(31))
	ft := randomTuple(rng)
	cms.Update(ft, 500)
	if got := cms.EstimateKey(KeyOf(ft)); got != 500 {
		t.Fatalf("EstimateKey after Update = %d, want 500", got)
	}
	cms.UpdateKey(KeyOf(ft), 250)
	if got := cms.Estimate(ft); got != 750 {
		t.Fatalf("Estimate after UpdateKey = %d, want 750", got)
	}
}

func TestCMSClear(t *testing.T) {
	cms := NewCMS(64, 2)
	ft := packet.FiveTuple{
		SrcIP:   packet.MustAddr("172.16.0.1"),
		DstIP:   packet.MustAddr("192.168.1.1"),
		SrcPort: 1,
		DstPort: 2,
		Proto:   packet.ProtoTCP,
	}
	cms.Update(ft, 99)
	cms.Clear()
	if got := cms.Estimate(ft); got != 0 {
		t.Fatalf("estimate after Clear = %d, want 0", got)
	}
}
