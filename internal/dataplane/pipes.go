package dataplane

import (
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/tap"
)

// pipeBatch is the per-shard batch capacity: how many parsed copies a
// shard queues before the front-end forces a barrier flush. Sized so a
// typical inter-extraction interval batches hundreds of packets per
// shard while bounding the state replayed at each barrier.
const pipeBatch = 1024

// Pipes is the multi-pipe front-end: it partitions flows across N
// independent DataPlane shards the way a Tofino's traffic manager
// spreads ports across pipes, each pipe owning a private register
// file, CMS and microburst detector. Both directions of a flow land
// on the same shard (the partition hashes the canonical of the key
// and its reverse), so Algorithm 1's eACK matching and RTT pairing
// keep working unchanged inside one shard.
//
// With shards == 1 every call forwards synchronously to the single
// pipe — byte-identical behaviour and an unchanged 0 allocs/op hot
// path. With shards > 1, ProcessCopy parses the TAP copy into a value
// view and appends it to the owning shard's pre-allocated batch;
// batches are replayed by a bounded worker pool (one worker never
// touches two shards at once) and joined at a barrier before any
// state is read. Packets destined to distinct shards commute — shard
// state is disjoint by construction — so the deferred replay produces
// exactly the per-shard state a serial run would, and every read API
// (ReadFlow, StatsSnapshot, registers, occupancy, CMS) flushes first
// and then merges across shards (see DESIGN.md §5.4 for the merge
// semantics per register kind).
//
// Concurrency contract: all methods are safe for concurrent use at
// any shard count (shards > 1 serialises on an internal mutex; at
// shards == 1 the caller must serialise, as with a bare DataPlane).
// Long-flow and microburst handlers run while that mutex is held and
// must not call back into Pipes.
type Pipes struct {
	shards []*DataPlane
	n      int

	// OnLongFlow and OnMicroburst deliver the merged event streams.
	// Events carry the originating shard id; at shards > 1 they are
	// delivered at the next barrier, in shard order, with original
	// timestamps. Set them via SetLongFlowHandler/SetMicroburstHandler.
	OnLongFlow   func(LongFlowEvent)
	OnMicroburst func(MicroburstEvent)

	mu      sync.Mutex
	fronts  []*Front
	work    []int        // scratch: shards with a non-empty front this flush
	cursor  atomic.Int64 // work-stealing cursor for the flush workers
	workers int

	// Batch-shape telemetry (RegisterObs): views per drained front and
	// the simulated time span each front covers. Atomic observes, so
	// flush workers may record them concurrently.
	frontViews  *obs.Histogram
	frontSpanNs *obs.Histogram

	// Per-shard deferred event buffers, appended by shard hooks during
	// worker replay (single writer per index) and drained in shard
	// order at the barrier.
	lfPend [][]LongFlowEvent
	mbPend [][]MicroburstEvent

	flushes      uint64
	batchedViews uint64
}

// NewPipes builds shards independent pipelines behind one front-end.
// shards < 1 is treated as 1. Every shard gets the same Config (same
// FlowTableSize, so a flow aliases the same cell index on whichever
// shard owns it — the property the merge semantics rely on).
func NewPipes(cfg Config, shards int) *Pipes {
	if shards < 1 {
		shards = 1
	}
	p := &Pipes{n: shards, shards: make([]*DataPlane, shards)}
	for i := range p.shards {
		p.shards[i] = New(cfg)
	}
	// All shards share one tuning store: a published generation is
	// visible to every pipe at its next batch front, exactly as the
	// control plane programs all of Tofino's pipes with one write.
	shared := p.shards[0].tuning
	for _, d := range p.shards[1:] {
		d.tuning = shared
		d.tun = shared.Current()
	}
	if shards == 1 {
		d := p.shards[0]
		d.OnLongFlow = func(ev LongFlowEvent) {
			if p.OnLongFlow != nil {
				p.OnLongFlow(ev)
			}
		}
		d.OnMicroburst = func(ev MicroburstEvent) {
			if p.OnMicroburst != nil {
				p.OnMicroburst(ev)
			}
		}
		return p
	}
	p.workers = runtime.GOMAXPROCS(0)
	if p.workers > shards {
		p.workers = shards
	}
	p.fronts = make([]*Front, shards)
	p.work = make([]int, 0, shards)
	p.lfPend = make([][]LongFlowEvent, shards)
	p.mbPend = make([][]MicroburstEvent, shards)
	for i := range p.shards {
		i := i
		p.fronts[i] = NewFront(pipeBatch)
		p.shards[i].OnLongFlow = func(ev LongFlowEvent) {
			ev.Shard = i
			p.lfPend[i] = append(p.lfPend[i], ev)
		}
		p.shards[i].OnMicroburst = func(ev MicroburstEvent) {
			ev.Shard = i
			p.mbPend[i] = append(p.mbPend[i], ev)
		}
	}
	return p
}

// NumShards returns the pipe count.
func (p *Pipes) NumShards() int { return p.n }

// Shard exposes one underlying pipe for white-box tests and per-shard
// telemetry. Reading shard state directly while traffic is in flight
// at shards > 1 bypasses the barrier; call a merged read first.
func (p *Pipes) Shard(i int) *DataPlane { return p.shards[i] }

// Config returns the (defaulted) per-shard pipeline configuration.
func (p *Pipes) Config() Config { return p.shards[0].Config() }

// canonicalKey returns the lexicographically smaller of a flow key and
// its reverse: one stable representative for both directions, so the
// partition below sends a flow's data and its ACK stream to the same
// shard (Algorithm 1 stores eACK state under the reversed ID and the
// ACK must find it).
//
// p4:hotpath
func canonicalKey(k FlowKey) FlowKey {
	r := k.Reverse()
	for i := 0; i < len(k); i++ {
		if k[i] != r[i] {
			if r[i] < k[i] {
				return r
			}
			return k
		}
	}
	return k
}

// shardOf is the partition function: FlowKey.Hash() of the canonical
// key, modulo the pipe count.
//
// p4:hotpath
func shardOf(k FlowKey, n int) int {
	return int(uint32(canonicalKey(k).Hash()) % uint32(n))
}

// ProcessCopy implements tap.Monitor. At shards == 1 it forwards
// synchronously. At shards > 1 it parses the copy into a value view
// (the tap pair may recycle the packet immediately) and appends it to
// the owning shard's pre-allocated batch — no per-packet goroutines,
// no per-packet allocation; a full batch triggers a barrier flush.
//
// p4:hotpath
func (p *Pipes) ProcessCopy(c tap.Copy) {
	if p.n == 1 {
		p.shards[0].ProcessCopy(c)
		return
	}
	v := parseCopy(c)
	s := shardOf(v.key, p.n)
	p.mu.Lock() //p4:lint-exempt hotpathprop: the batch mutex is the documented serial-equivalence barrier; the critical section only appends to a pre-sized front and is never held across I/O
	p.fronts[s].append(&v)
	p.batchedViews++
	if p.fronts[s].Len() >= pipeBatch {
		p.flushLocked()
	}
	p.mu.Unlock() //p4:lint-exempt hotpathprop: pairs with the exempted Lock above
}

// ProcessFront ingests a whole pre-parsed front in one call — the bulk
// counterpart of ProcessCopy for producers (the replay front-end) that
// batch upstream of the partition. At shards == 1 the front drains
// straight through the single pipe run-to-completion, with events
// delivered inline exactly as ProcessCopy would. At shards > 1 the
// mutex is taken once per front instead of once per packet: every view
// is moved to its owning shard's front and the batch is replayed to
// the barrier before ProcessFront returns, so the caller may reuse f
// (Reset and refill) immediately.
//
// p4:hotpath
func (p *Pipes) ProcessFront(f *Front) {
	if f.Len() == 0 {
		return
	}
	if p.n == 1 {
		if p.frontViews != nil {
			p.frontViews.Observe(uint64(f.Len()))
			p.frontSpanNs.Observe(uint64(f.Span()))
		}
		p.shards[0].ProcessFront(f)
		return
	}
	b := f.views
	p.mu.Lock() //p4:lint-exempt hotpathprop: one acquisition per front, not per packet — this hoist is the point of the batch path
	for k := range b {
		p.fronts[shardOf(b[k].key, p.n)].append(&b[k])
	}
	p.batchedViews += uint64(len(b))
	p.flushLocked()
	p.mu.Unlock() //p4:lint-exempt hotpathprop: pairs with the exempted Lock above
}

// Flush forces the barrier: every batched view is replayed on its
// shard and joined before Flush returns. The engine (or any caller
// about to read state) uses it to re-establish the serial-equivalent
// view. A no-op at shards == 1, where the single pipe's synchronous
// contract (see DataPlane.Flush) already holds.
func (p *Pipes) Flush() {
	if p.n == 1 {
		return
	}
	p.mu.Lock()
	p.flushLocked()
	p.mu.Unlock()
}

// flushLocked replays all pending batches. Shards with work are
// handed to min(GOMAXPROCS, pending) workers via a stealing cursor;
// each worker replays whole shards, so per-shard state stays
// single-writer. The WaitGroup join is the barrier (and the
// happens-before edge making worker writes visible to the caller).
// Deferred shard events are delivered after the join, in shard order.
func (p *Pipes) flushLocked() {
	work := p.work[:0]
	for i := range p.fronts {
		if p.fronts[i].Len() > 0 {
			work = append(work, i)
		}
	}
	p.work = work
	if len(work) == 0 {
		return
	}
	p.flushes++
	if w := min(p.workers, len(work)); w <= 1 {
		for _, i := range work {
			p.replayShard(i)
		}
	} else {
		p.cursor.Store(0)
		var wg sync.WaitGroup
		wg.Add(w)
		for k := 0; k < w; k++ {
			go func() {
				defer wg.Done()
				for {
					j := int(p.cursor.Add(1)) - 1
					if j >= len(p.work) {
						return
					}
					p.replayShard(p.work[j])
				}
			}()
		}
		wg.Wait()
	}
	p.deliverPendingLocked()
}

// replayShard drains one shard's front through its pipeline
// run-to-completion. Called either serially or from exactly one flush
// worker at a time; the histogram observes are atomic, so concurrent
// workers may record them.
func (p *Pipes) replayShard(i int) {
	f := p.fronts[i]
	if p.frontViews != nil {
		p.frontViews.Observe(uint64(f.Len()))
		p.frontSpanNs.Observe(uint64(f.Span()))
	}
	p.shards[i].ProcessFront(f)
	f.Reset()
}

// deliverPendingLocked drains the deferred long-flow and microburst
// buffers in shard order. Handlers run under the front-end mutex and
// must not call back into Pipes.
func (p *Pipes) deliverPendingLocked() {
	for i := 0; i < p.n; i++ {
		if evs := p.lfPend[i]; len(evs) > 0 {
			for _, ev := range evs {
				if p.OnLongFlow != nil {
					p.OnLongFlow(ev)
				}
			}
			p.lfPend[i] = evs[:0]
		}
		if evs := p.mbPend[i]; len(evs) > 0 {
			for _, ev := range evs {
				if p.OnMicroburst != nil {
					p.OnMicroburst(ev)
				}
			}
			p.mbPend[i] = evs[:0]
		}
	}
}

// SetLongFlowHandler installs the merged long-flow digest callback.
func (p *Pipes) SetLongFlowHandler(fn func(LongFlowEvent)) {
	if p.n == 1 {
		p.OnLongFlow = fn
		return
	}
	p.mu.Lock()
	p.OnLongFlow = fn
	p.mu.Unlock()
}

// SetMicroburstHandler installs the merged microburst callback.
func (p *Pipes) SetMicroburstHandler(fn func(MicroburstEvent)) {
	if p.n == 1 {
		p.OnMicroburst = fn
		return
	}
	p.mu.Lock()
	p.OnMicroburst = fn
	p.mu.Unlock()
}

// ReadFlow flushes, then merges the per-flow snapshot across shards:
// additive registers sum (bytes, packets, loss, flight), timestamps
// and high-water marks take the max (RTT, queue delay, last seen,
// window flight max, max IAT), first-write-wins registers take the
// smallest non-zero value (first seen), the window flight minimum
// takes the min (its no-sample sentinel is all-ones, so min is the
// correct identity), and flags OR. Because every shard uses the same
// FlowTableSize, a flow aliases the same cell index everywhere and
// the merged value equals what a single pipe would hold — including
// under cell aliasing (DESIGN.md §5.4).
func (p *Pipes) ReadFlow(id, revID FlowID) FlowSnapshot {
	if p.n == 1 {
		return p.shards[0].ReadFlow(id, revID)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushLocked()
	var s FlowSnapshot
	s.FlightMinW = flightNoSample
	for _, d := range p.shards {
		m := d.ReadFlow(id, revID)
		s.Bytes += m.Bytes
		s.Pkts += m.Pkts
		s.PktLoss += m.PktLoss
		s.Flight += m.Flight
		s.RTT = max(s.RTT, m.RTT)
		s.QDelay = max(s.QDelay, m.QDelay)
		s.FlightMaxW = max(s.FlightMaxW, m.FlightMaxW)
		s.MaxIAT = max(s.MaxIAT, m.MaxIAT)
		s.LastSeen = max(s.LastSeen, m.LastSeen)
		if m.FirstSeen != 0 && (s.FirstSeen == 0 || m.FirstSeen < s.FirstSeen) {
			s.FirstSeen = m.FirstSeen
		}
		if m.FlightMinW < s.FlightMinW {
			s.FlightMinW = m.FlightMinW
		}
		s.FinSeen = s.FinSeen || m.FinSeen
	}
	return s
}

// ResetWindow flushes, then clears the per-window registers on every
// shard (only the owning shard holds state, but a broadcast is what a
// multi-pipe control plane issues).
func (p *Pipes) ResetWindow(id FlowID) {
	if p.n == 1 {
		p.shards[0].ResetWindow(id)
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushLocked()
	for _, d := range p.shards {
		d.ResetWindow(id)
	}
}

// ReleaseFlow flushes, then releases the flow's cells on every shard.
func (p *Pipes) ReleaseFlow(id FlowID) {
	if p.n == 1 {
		p.shards[0].ReleaseFlow(id)
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushLocked()
	for _, d := range p.shards {
		d.ReleaseFlow(id)
	}
}

// ReadRTTHist flushes, then sums the flow's in-register RTT histogram
// buckets across shards (only the owning shard holds samples, but the
// additive merge is also correct under cross-shard cell aliasing).
func (p *Pipes) ReadRTTHist(id FlowID) RTTHist {
	if p.n == 1 {
		return p.shards[0].ReadRTTHist(id)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushLocked()
	var h RTTHist
	for _, d := range p.shards {
		m := d.ReadRTTHist(id)
		for b := range h.Buckets {
			h.Buckets[b] += m.Buckets[b]
		}
	}
	return h
}

// AgeFlows flushes, then runs the aging sweep on every shard and
// returns the total number of cells evicted.
func (p *Pipes) AgeFlows(now, window simtime.Time) int {
	if p.n == 1 {
		return p.shards[0].AgeFlows(now, window)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushLocked()
	evicted := 0
	for _, d := range p.shards {
		evicted += d.AgeFlows(now, window)
	}
	return evicted
}

// EstimateFlow flushes, then answers from the flow's owning shard: the
// partition sends both directions of a key to one shard, so its
// two-tier estimate is the whole-traffic answer.
func (p *Pipes) EstimateFlow(key FlowKey) FlowEstimate {
	if p.n == 1 {
		return p.shards[0].EstimateFlow(key)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushLocked()
	return p.shards[shardOf(key, p.n)].EstimateFlow(key)
}

// FlowTableMemoryBytes sums the exact tier's storage footprint across
// shards; LeanMemoryBytes sums the sketch tier's.
func (p *Pipes) FlowTableMemoryBytes() uint64 {
	var b uint64
	for _, d := range p.shards {
		b += d.FlowTableMemoryBytes()
	}
	return b
}

// LeanMemoryBytes sums the sketch tier's storage footprint across
// shards.
func (p *Pipes) LeanMemoryBytes() uint64 {
	var b uint64
	for _, d := range p.shards {
		b += d.LeanMemoryBytes()
	}
	return b
}

// ClearCMS flushes, then clears every shard's long-flow sketch.
func (p *Pipes) ClearCMS() {
	if p.n == 1 {
		p.shards[0].ClearCMS()
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushLocked()
	for _, d := range p.shards {
		d.ClearCMS()
	}
}

// EstimateKey flushes, then sums the sketch estimate across shards
// (each shard's CMS counted only its own packets, so the sum is the
// whole-traffic estimate a single sketch would give, modulo the
// one-sided CMS overestimation error each shard contributes).
func (p *Pipes) EstimateKey(k FlowKey) uint64 {
	if p.n == 1 {
		return p.shards[0].Sketch().EstimateKey(k)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushLocked()
	var est uint64
	for _, d := range p.shards {
		est += d.Sketch().EstimateKey(k)
	}
	return est
}

// StatsSnapshot flushes, then returns the pipeline counters summed
// across shards.
func (p *Pipes) StatsSnapshot() Stats {
	if p.n == 1 {
		return p.shards[0].Stats
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushLocked()
	var s Stats
	for _, d := range p.shards {
		s.IngressCopies += d.Stats.IngressCopies
		s.EgressCopies += d.Stats.EgressCopies
		s.RTTSamples += d.Stats.RTTSamples
		s.EACKEvictions += d.Stats.EACKEvictions
		s.QSigMismatches += d.Stats.QSigMismatches
		s.SlotCollisions += d.Stats.SlotCollisions
		s.Microbursts += d.Stats.Microbursts
		s.SkippedPackets += d.Stats.SkippedPackets
		s.AliasedPackets += d.Stats.AliasedPackets
		s.Evictions += d.Stats.Evictions
	}
	return s
}

// OccupiedCells flushes, then sums flow-table occupancy across shards
// (shard flow sets are disjoint, so the sum is the union's size up to
// per-shard cell aliasing).
func (p *Pipes) OccupiedCells() uint64 {
	if p.n == 1 {
		return p.shards[0].OccupiedCells()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushLocked()
	var n uint64
	for _, d := range p.shards {
		n += d.OccupiedCells()
	}
	return n
}

// CurrentQueueDelay flushes, then returns the most recent queuing
// delay across shards — the freshest egress observation on any pipe.
func (p *Pipes) CurrentQueueDelay() simtime.Time {
	if p.n == 1 {
		return p.shards[0].CurrentQueueDelay()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushLocked()
	var latest simtime.Time
	var q simtime.Time
	for _, d := range p.shards {
		if d.lastEgress >= latest {
			latest = d.lastEgress
			q = d.lastQDelay
		}
	}
	return q
}

// RegisterNames lists the per-shard register instances (identical on
// every shard), sorted.
func (p *Pipes) RegisterNames() []string { return p.shards[0].RegisterNames() }

// HasRegister reports whether the pipeline declares a register with
// this P4 name.
func (p *Pipes) HasRegister(name string) bool { return p.shards[0].RegisterByName(name) != nil }

// RegisterWidth returns the declared bit width of a register, or 0 if
// unknown.
func (p *Pipes) RegisterWidth(name string) int {
	r := p.shards[0].RegisterByName(name)
	if r == nil {
		return 0
	}
	return r.Width()
}

// ReadRegister flushes, then merges one register cell across shards
// using the register's kind: additive counters sum; first-write-wins
// stamps take the smallest non-zero value; the window flight minimum
// takes the min; everything else (timestamps, high-water marks,
// signatures) takes the max, which on signature tables picks the one
// shard that owns the cell. Returns false for an unknown register.
func (p *Pipes) ReadRegister(name string, idx uint32) (uint64, bool) {
	if p.shards[0].RegisterByName(name) == nil {
		return 0, false
	}
	if p.n == 1 {
		return p.shards[0].RegisterByName(name).Read(idx), true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushLocked()
	return p.mergeRegisterLocked(name, idx), true
}

// mergeRegisterLocked applies the per-kind merge for one cell.
func (p *Pipes) mergeRegisterLocked(name string, idx uint32) uint64 {
	switch name {
	case "flow_bytes", "flow_pkts", "pkt_loss", "flight", "rtt_hist":
		var sum uint64
		for _, d := range p.shards {
			sum += d.RegisterByName(name).Read(idx)
		}
		return sum
	case "first_seen":
		var first uint64
		for _, d := range p.shards {
			v := d.RegisterByName(name).Read(idx)
			if v != 0 && (first == 0 || v < first) {
				first = v
			}
		}
		return first
	case "flight_min_w":
		m := uint64(flightNoSample)
		for _, d := range p.shards {
			if v := d.RegisterByName(name).Read(idx); v < m {
				m = v
			}
		}
		return m
	default:
		var m uint64
		for _, d := range p.shards {
			if v := d.RegisterByName(name).Read(idx); v > m {
				m = v
			}
		}
		return m
	}
}

// WriteRegister flushes, then writes the value to the cell on every
// shard (the runtime API's register reset semantics). Returns false
// for an unknown register.
func (p *Pipes) WriteRegister(name string, idx uint32, v uint64) bool {
	if p.shards[0].RegisterByName(name) == nil {
		return false
	}
	if p.n == 1 {
		p.shards[0].RegisterByName(name).Write(idx, v)
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushLocked()
	for _, d := range p.shards {
		d.RegisterByName(name).Write(idx, v)
	}
	return true
}

// SkipSubnet programs the skip entry into every shard's monitor table
// (the paper's control plane programs all pipes identically).
func (p *Pipes) SkipSubnet(prefix netip.Prefix) error {
	if p.n == 1 {
		return p.shards[0].SkipSubnet(prefix)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushLocked()
	for _, d := range p.shards {
		if err := d.SkipSubnet(prefix); err != nil {
			return err
		}
	}
	return nil
}
