//go:build !race

package dataplane

import "encoding/binary"

// crcSlicing extends crcTable to the slicing-by-8 form: table j maps a
// byte to its CRC contribution from j positions further into the
// message, so one iteration folds 8 input bytes with 8 independent
// table loads instead of 8 dependent byte steps. Built once at init
// from the same Castagnoli polynomial; bit-identical output
// (TestCRCSumMatchesStdlib pins it).
var crcSlicing = func() [8][256]uint32 {
	var t [8][256]uint32
	copy(t[0][:], crcTable[:])
	for i := 0; i < 256; i++ {
		crc := t[0][i]
		for j := 1; j < 8; j++ {
			crc = t[0][byte(crc)] ^ (crc >> 8)
			t[j][i] = crc
		}
	}
	return t
}()

// crcSum computes crc32.Checksum(p, crcTable) with a slicing-by-8 main
// loop and a table-driven tail. The stdlib entry point leaks its
// argument to escape analysis, which would move every packed key to the
// heap; the local loop keeps the 12–17-byte hash inputs on the stack,
// and slicing-by-8 folds the 8-byte head of every key in one step —
// the per-packet program hashes up to ~120 key bytes (flow ID, reversed
// ID, signature indexes, CMS rows), so the fold is a first-order win on
// the batch inner loop. The output is bit-identical to the
// byte-at-a-time loop it replaced (TestCRCSumMatchesStdlib pins it).
//
// p4:hotpath
func crcSum(p []byte) uint32 {
	crc := ^uint32(0)
	for len(p) >= 8 {
		lo := crc ^ binary.LittleEndian.Uint32(p)
		hi := binary.LittleEndian.Uint32(p[4:])
		crc = crcSlicing[7][byte(lo)] ^
			crcSlicing[6][byte(lo>>8)] ^
			crcSlicing[5][byte(lo>>16)] ^
			crcSlicing[4][byte(lo>>24)] ^
			crcSlicing[3][byte(hi)] ^
			crcSlicing[2][byte(hi>>8)] ^
			crcSlicing[1][byte(hi>>16)] ^
			crcSlicing[0][byte(hi>>24)]
		p = p[8:]
	}
	for _, b := range p {
		crc = crcTable[byte(crc)^b] ^ (crc >> 8)
	}
	return ^crc
}
