//go:build !race

package dataplane

// crcSum computes crc32.Checksum(p, crcTable) with the standard
// table-driven loop. The stdlib entry point leaks its argument to
// escape analysis, which would move every packed key to the heap; the
// local loop keeps the 12–17-byte hash inputs on the stack. The output
// is bit-identical (TestCRCSumMatchesStdlib pins it).
//
// p4:hotpath
func crcSum(p []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range p {
		crc = crcTable[byte(crc)^b] ^ (crc >> 8)
	}
	return ^crc
}
