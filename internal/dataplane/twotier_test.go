package dataplane

import (
	"fmt"
	"testing"

	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/sketch"
	"repro/internal/tap"
)

// ttFlow returns the i-th synthetic flow of the two-tier tests.
func ttFlow(i int) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   packet.MustAddr("10.0.0.10"),
		DstIP:   packet.MustAddr(fmt.Sprintf("10.1.%d.%d", (i>>8)&0xff, i&0xff)),
		SrcPort: uint16(41000 + i%1000),
		DstPort: 5201,
		Proto:   packet.ProtoTCP,
	}
}

// sendData feeds one TCP data segment (mss payload bytes at seq)
// through the ingress path.
func sendData(d *DataPlane, ft packet.FiveTuple, seq uint64, mss int, at simtime.Time) {
	pkt := packet.NewTCP(ft, seq, 0, packet.FlagACK|packet.FlagPSH, mss)
	d.ProcessCopy(tap.Copy{Pkt: pkt, Point: tap.Ingress, At: at})
}

// TestAdmissionRoutesAliasedFlowToSketch pins the admission gate: with
// a one-cell table, the first flow owns the exact tier and the second
// flow's traffic is counted — not silently merged into the first
// flow's cell — in the sketch tier, with the aliasing surfaced in
// Stats.
func TestAdmissionRoutesAliasedFlowToSketch(t *testing.T) {
	d := New(Config{FlowTableSize: 1})
	a, b := ttFlow(1), ttFlow(2)
	const mss = 1460
	wire := uint64(mss + 40)
	for k := 0; k < 10; k++ {
		sendData(d, a, uint64(1+k*mss), mss, simtime.Time(k+1)*simtime.Millisecond)
	}
	for k := 0; k < 5; k++ {
		sendData(d, b, uint64(1+k*mss), mss, simtime.Time(k+20)*simtime.Millisecond)
	}
	// A retransmission of b's first segment: the sketch tier must see
	// the duplicate and count the loss.
	sendData(d, b, 1, mss, 30*simtime.Millisecond)

	if d.Stats.AliasedPackets != 6 {
		t.Errorf("AliasedPackets = %d, want 6 (all of b's packets)", d.Stats.AliasedPackets)
	}
	if d.Stats.SlotCollisions == 0 {
		t.Error("SlotCollisions = 0, want aliasing witnessed")
	}

	// The exact cell holds only the owner's traffic.
	ea := d.EstimateFlow(KeyOf(a))
	if !ea.Admitted {
		t.Fatal("owner flow not admitted")
	}
	if ea.ExactBytes != 10*wire || ea.ExactPkts != 10 {
		t.Errorf("owner exact cell = %d B / %d pkts, want %d / 10", ea.ExactBytes, ea.ExactPkts, 10*wire)
	}

	// The aliased flow answers from the sketch tier: never undercounts,
	// and its overcount is within the analytical bound.
	eb := d.EstimateFlow(KeyOf(b))
	if eb.Admitted {
		t.Fatal("aliased flow reported admitted")
	}
	if eb.Bytes < 6*wire || eb.Pkts < 6 {
		t.Errorf("aliased flow estimate %d B / %d pkts undercounts truth %d / 6", eb.Bytes, eb.Pkts, 6*wire)
	}
	if eb.Bytes > 6*wire+eb.BytesBound || eb.Pkts > 6+eb.PktsBound {
		t.Errorf("aliased flow estimate %d B / %d pkts above truth + bound (%d / %d)",
			eb.Bytes, eb.Pkts, 6*wire+eb.BytesBound, 6+eb.PktsBound)
	}
	if eb.Loss < 1 {
		t.Errorf("aliased flow sketch loss = %d, want ≥ 1 (retransmitted segment)", eb.Loss)
	}
}

// TestAgeFlowsEvictsIdleToSketch is the eviction regression: an idle
// unannounced flow's cells are released by the aging sweep, its exact
// history folds into the sketch tier (estimates keep covering the full
// history, never undercounting), and a retransmission arriving after
// eviction is still detected via the warm duplicate filter.
func TestAgeFlowsEvictsIdleToSketch(t *testing.T) {
	d := New(Config{})
	a := ttFlow(3)
	const mss = 1460
	wire := uint64(mss + 40)
	for k := 0; k < 8; k++ {
		sendData(d, a, uint64(1+k*mss), mss, simtime.Time(k+1)*simtime.Millisecond)
	}
	if got := d.OccupiedCells(); got != 1 {
		t.Fatalf("occupancy before aging = %d, want 1", got)
	}

	// Not yet idle: a generous window evicts nothing.
	if n := d.AgeFlows(20*simtime.Millisecond, simtime.Second); n != 0 {
		t.Fatalf("AgeFlows evicted %d flows inside the window", n)
	}
	// Idle past the window: evicted.
	if n := d.AgeFlows(10*simtime.Second, simtime.Second); n != 1 {
		t.Fatalf("AgeFlows evicted %d flows, want 1", n)
	}
	if d.Stats.Evictions != 1 {
		t.Errorf("Stats.Evictions = %d, want 1", d.Stats.Evictions)
	}
	if got := d.OccupiedCells(); got != 0 {
		t.Errorf("occupancy after eviction = %d, want 0", got)
	}
	id, rev := HashFiveTuple(a), HashReverse(a)
	if snap := d.ReadFlow(id, rev); snap.Bytes != 0 || snap.Pkts != 0 || snap.LastSeen != 0 {
		t.Errorf("evicted cell not released: %+v", snap)
	}

	// The history lives on in the sketch tier.
	e := d.EstimateFlow(KeyOf(a))
	if e.Admitted {
		t.Fatal("evicted flow reported admitted")
	}
	if e.Bytes < 8*wire || e.Pkts < 8 {
		t.Errorf("post-eviction estimate %d B / %d pkts undercounts folded truth %d / 8", e.Bytes, e.Pkts, 8*wire)
	}

	// A returning flow re-admits (its cell is free again) and the
	// two-tier estimate keeps covering the full history.
	sendData(d, a, uint64(1+8*mss), mss, 11*simtime.Second)
	e = d.EstimateFlow(KeyOf(a))
	if !e.Admitted {
		t.Fatal("returning flow did not re-admit after eviction")
	}
	if e.Bytes < 9*wire || e.Pkts < 9 {
		t.Errorf("re-admitted estimate %d B / %d pkts undercounts total truth %d / 9", e.Bytes, e.Pkts, 9*wire)
	}

	// The warm duplicate filter remembers admitted-era segments across
	// the eviction, so a retransmission that later lands in the sketch
	// tier is still recognised as a duplicate.
	lk := sketch.Key(KeyOf(a))
	if !d.lean.SeenSeq(&lk, 1) {
		t.Error("warm duplicate filter forgot an admitted-era segment after eviction")
	}
}

// TestAgeFlowsSkipsAnnouncedFlows: announced (directory-owned) cells
// belong to the control plane's FIN/idle sweep, not the aging sweep.
func TestAgeFlowsSkipsAnnouncedFlows(t *testing.T) {
	d := New(Config{LongFlowBytes: 2048})
	a := ttFlow(5)
	for k := 0; k < 4; k++ {
		sendData(d, a, uint64(1+k*1460), 1460, simtime.Time(k+1)*simtime.Millisecond)
	}
	idx := uint32(HashFiveTuple(a)) % d.tableN
	if d.announced.Read(idx) != 1 {
		t.Fatal("flow did not announce at the 2 KiB threshold")
	}
	if n := d.AgeFlows(time10s(), simtime.Second); n != 0 {
		t.Fatalf("AgeFlows evicted %d announced flows, want 0", n)
	}
}

func time10s() simtime.Time { return 10 * simtime.Second }

// TestRTTHistogramExtraction drives Algorithm 1's eACK exchange and
// checks the sample lands in the data flow's in-register histogram
// with the right bucket semantics, and that ReleaseFlow clears it.
func TestRTTHistogramExtraction(t *testing.T) {
	d := New(Config{})
	a := ttFlow(6)
	const mss = 1460
	rtts := []simtime.Time{
		3 * simtime.Millisecond,
		5 * simtime.Millisecond,
		40 * simtime.Millisecond,
	}
	at := simtime.Millisecond
	for k, rtt := range rtts {
		seq := uint64(1 + k*mss)
		pkt := packet.NewTCP(a, seq, 0, packet.FlagACK|packet.FlagPSH, mss)
		d.ProcessCopy(tap.Copy{Pkt: pkt, Point: tap.Ingress, At: at})
		ack := packet.NewTCP(a.Reverse(), 1, seq+mss, packet.FlagACK, 0)
		d.ProcessCopy(tap.Copy{Pkt: ack, Point: tap.Ingress, At: at + rtt})
		at += 100 * simtime.Millisecond
	}
	if d.Stats.RTTSamples != uint64(len(rtts)) {
		t.Fatalf("RTT samples = %d, want %d", d.Stats.RTTSamples, len(rtts))
	}
	id := HashFiveTuple(a)
	h := d.ReadRTTHist(id)
	if h.Count() != uint64(len(rtts)) {
		t.Fatalf("histogram count = %d, want %d", h.Count(), len(rtts))
	}
	// Log₂ buckets answer quantiles as upper bounds within one octave.
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if p50 < rtts[1] || p50 >= 2*rtts[1] {
		t.Errorf("p50 = %v, want in [%v, %v)", p50, rtts[1], 2*rtts[1])
	}
	if p99 < rtts[2] || p99 >= 2*rtts[2] {
		t.Errorf("p99 = %v, want in [%v, %v)", p99, rtts[2], 2*rtts[2])
	}
	if q := h.Quantile(0); q == 0 || q > p50 {
		t.Errorf("q0 = %v, want non-zero and ≤ p50", q)
	}

	d.ReleaseFlow(id)
	if after := d.ReadRTTHist(id); after.Count() != 0 {
		t.Errorf("histogram count after ReleaseFlow = %d, want 0", after.Count())
	}
}

// TestRTTHistogramAcrossPipes checks the sharded merge: samples land
// on the owning shard and the merged read sums them.
func TestRTTHistogramAcrossPipes(t *testing.T) {
	p := NewPipes(Config{}, 4)
	const mss = 1460
	flows := []packet.FiveTuple{ttFlow(7), ttFlow(8), ttFlow(9)}
	for fi, ft := range flows {
		base := simtime.Time(fi+1) * simtime.Second
		for k := 0; k < 2; k++ {
			seq := uint64(1 + k*mss)
			at := base + simtime.Time(k)*100*simtime.Millisecond
			pkt := packet.NewTCP(ft, seq, 0, packet.FlagACK|packet.FlagPSH, mss)
			p.ProcessCopy(tap.Copy{Pkt: pkt, Point: tap.Ingress, At: at})
			ack := packet.NewTCP(ft.Reverse(), 1, seq+mss, packet.FlagACK, 0)
			p.ProcessCopy(tap.Copy{Pkt: ack, Point: tap.Ingress, At: at + 4*simtime.Millisecond})
		}
	}
	p.Flush()
	for _, ft := range flows {
		if h := p.ReadRTTHist(HashFiveTuple(ft)); h.Count() != 2 {
			t.Errorf("flow %v: merged histogram count = %d, want 2", ft, h.Count())
		}
	}
	if n := p.AgeFlows(time10s(), simtime.Second); n != 2*len(flows) {
		t.Errorf("Pipes.AgeFlows evicted %d cells, want %d (both directions per flow)", n, 2*len(flows))
	}
	st := p.StatsSnapshot()
	if st.Evictions != uint64(2*len(flows)) {
		t.Errorf("merged Evictions = %d, want %d", st.Evictions, 2*len(flows))
	}
}

// TestRTTBucketWindow pins the bucket rule's clamping.
func TestRTTBucketWindow(t *testing.T) {
	if b := rttBucket(0); b != 0 {
		t.Errorf("rttBucket(0) = %d", b)
	}
	if b := rttBucket(512); b != 0 {
		t.Errorf("rttBucket(512) = %d, want clamp to 0", b)
	}
	if b := rttBucket(^uint64(0)); b != RTTHistBuckets-1 {
		t.Errorf("rttBucket(max) = %d, want clamp to %d", b, RTTHistBuckets-1)
	}
	// Monotone within the window, and the upper bound covers every
	// in-window value (values past the window clamp to the last bucket
	// whose bound they exceed — that is the clamp check above).
	prev := uint32(0)
	for ns := uint64(1 << 10); ns < 1<<(rttHistMinBits+RTTHistBuckets-1); ns <<= 1 {
		b := rttBucket(ns)
		if b < prev {
			t.Fatalf("rttBucket not monotone at %d ns", ns)
		}
		prev = b
		if upper := RTTHistUpper(int(b)); uint64(upper) < ns {
			t.Errorf("bucket %d upper %d < value %d", b, upper, ns)
		}
	}
}

// TestFlowTableMemoryAccounting sanity-checks the two memory accessors
// the scale sweep tables: the exact tier scales with FlowTableSize,
// the sketch tier does not.
func TestFlowTableMemoryAccounting(t *testing.T) {
	small := New(Config{FlowTableSize: 128})
	big := New(Config{FlowTableSize: 4096})
	if small.FlowTableMemoryBytes() >= big.FlowTableMemoryBytes() {
		t.Error("exact-tier footprint does not scale with table size")
	}
	if small.LeanMemoryBytes() != big.LeanMemoryBytes() {
		t.Error("sketch-tier footprint changed with table size")
	}
	if small.LeanMemoryBytes() == 0 {
		t.Error("LeanMemoryBytes = 0")
	}
}
