package dataplane

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"net/netip"
	"testing"

	"repro/internal/packet"
)

// randomTuple derives a deterministic pseudo-random 5-tuple from rng.
func randomTuple(rng *rand.Rand) packet.FiveTuple {
	var src, dst [4]byte
	binary.BigEndian.PutUint32(src[:], rng.Uint32())
	binary.BigEndian.PutUint32(dst[:], rng.Uint32())
	proto := packet.ProtoTCP
	if rng.Intn(2) == 0 {
		proto = packet.ProtoUDP
	}
	return packet.FiveTuple{
		SrcIP:   netip.AddrFrom4(src),
		DstIP:   netip.AddrFrom4(dst),
		SrcPort: uint16(rng.Uint32()),
		DstPort: uint16(rng.Uint32()),
		Proto:   proto,
	}
}

// TestCRCSumMatchesStdlib pins the hand-rolled table loop to the
// stdlib Castagnoli checksum it replaced: flow IDs feed the witness
// output, so the two must never diverge.
func TestCRCSumMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(32))
		rng.Read(buf)
		if got, want := crcSum(buf), crc32.Checksum(buf, crcTable); got != want {
			t.Fatalf("crcSum(%x) = %08x, stdlib %08x", buf, got, want)
		}
	}
	if crcSum(nil) != crc32.Checksum(nil, crcTable) {
		t.Fatal("crcSum(nil) diverges")
	}
}

// TestFlowKeyLayout pins the packed wire format: hashes are computed
// over these exact bytes, so the layout is part of the flow-ID
// contract.
func TestFlowKeyLayout(t *testing.T) {
	ft := packet.FiveTuple{
		SrcIP:   packet.MustAddr("10.1.2.3"),
		DstIP:   packet.MustAddr("192.168.254.1"),
		SrcPort: 0x1234,
		DstPort: 0xabcd,
		Proto:   packet.ProtoTCP,
	}
	k := KeyOf(ft)
	want := FlowKey{10, 1, 2, 3, 192, 168, 254, 1, 0x12, 0x34, 0xab, 0xcd, byte(packet.ProtoTCP)}
	if k != want {
		t.Fatalf("KeyOf = %v, want %v", k, want)
	}
	rev := k.Reverse()
	wantRev := FlowKey{192, 168, 254, 1, 10, 1, 2, 3, 0xab, 0xcd, 0x12, 0x34, byte(packet.ProtoTCP)}
	if rev != wantRev {
		t.Fatalf("Reverse = %v, want %v", rev, wantRev)
	}
}

// TestKeyPathsMatchTuplePaths verifies the packed-key fast path agrees
// with the tuple entry points for arbitrary tuples.
func TestKeyPathsMatchTuplePaths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		ft := randomTuple(rng)
		k := KeyOf(ft)
		if k.Hash() != HashFiveTuple(ft) {
			t.Fatalf("key hash diverges for %v", ft)
		}
		if k.Reverse() != KeyOf(ft.Reverse()) {
			t.Fatalf("key reverse diverges for %v", ft)
		}
		if k.Reverse().Hash() != HashReverse(ft) {
			t.Fatalf("reverse hash diverges for %v", ft)
		}
		if k.Reverse().Reverse() != k {
			t.Fatalf("reverse not involutive for %v", ft)
		}
	}
}

// TestHashCollisionRate is the collision property test: CRC32 over
// random distinct 5-tuples should collide at roughly the birthday
// bound. With n=20000 draws into 2^32 buckets the expectation is
// n^2/2^33 ≈ 0.05 collisions; 10 would mean the hash lost entropy
// (e.g. a packing bug aliasing fields).
func TestHashCollisionRate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 20000
	seen := make(map[FlowID]FlowKey, n)
	keys := make(map[FlowKey]bool, n)
	collisions := 0
	for len(keys) < n {
		ft := randomTuple(rng)
		k := KeyOf(ft)
		if keys[k] {
			continue // duplicate tuple, not a hash collision
		}
		keys[k] = true
		id := k.Hash()
		if _, dup := seen[id]; dup {
			collisions++
		}
		seen[id] = k
	}
	if collisions > 10 {
		t.Fatalf("%d hash collisions over %d distinct tuples — far above the birthday bound", collisions, n)
	}
}

// TestHashAtRowsIndependent checks the CMS row hashes behave as
// independent functions: different rows map the same key to unrelated
// values, and each row spreads distinct keys (no stuck seed).
func TestHashAtRowsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const rows = 4
	const n = 2000
	// For a pair of rows, count keys where both rows agree modulo a
	// small table; independence predicts n/width matches, not n.
	const width = 64
	agree := 0
	for i := 0; i < n; i++ {
		k := KeyOf(randomTuple(rng))
		if k.hashAt(0)%width == k.hashAt(1)%width {
			agree++
		}
	}
	// Expectation n/width ≈ 31; flag only wild departures.
	if agree > n/width*5 {
		t.Fatalf("rows 0 and 1 agree on %d/%d keys — rows not independent", agree, n)
	}
	for row := uint32(0); row < rows; row++ {
		distinct := make(map[uint32]bool)
		rng2 := rand.New(rand.NewSource(19))
		for i := 0; i < n; i++ {
			distinct[KeyOf(randomTuple(rng2)).hashAt(row)%width] = true
		}
		if len(distinct) < width/2 {
			t.Fatalf("row %d hits only %d/%d buckets", row, len(distinct), width)
		}
	}
}
