// Package dataplane models the P4 program the paper deploys on the
// Tofino switch: a programmable parser feeding match-action logic that
// maintains per-flow state in fixed-size, hash-indexed register arrays.
// The model preserves the hardware's semantics — bounded tables,
// CRC-style hashing, collisions that alias state — so that the control
// plane above it faces the same realities the paper's does.
package dataplane

import (
	"encoding/binary"
	"hash/crc32"

	"repro/internal/packet"
)

// FlowID is the hash of a flow's 5-tuple — the identity the data plane
// reports to the control plane (§4).
type FlowID uint32

// crcTable mirrors the CRC32 polynomial Tofino's hash engines commonly
// use (Castagnoli).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// HashFiveTuple computes the flow ID exactly as the paper's pipeline
// does: a CRC hash over source IP, destination IP, source port,
// destination port and protocol.
func HashFiveTuple(ft packet.FiveTuple) FlowID {
	var buf [13]byte
	src := ft.SrcIP.As4()
	dst := ft.DstIP.As4()
	copy(buf[0:4], src[:])
	copy(buf[4:8], dst[:])
	binary.BigEndian.PutUint16(buf[8:10], ft.SrcPort)
	binary.BigEndian.PutUint16(buf[10:12], ft.DstPort)
	buf[12] = uint8(ft.Proto)
	return FlowID(crc32.Checksum(buf[:], crcTable))
}

// HashReverse computes the "reversed ID": the hash with the source and
// destination fields swapped. The data plane uses it to find the flow
// an acknowledgment belongs to (§4).
func HashReverse(ft packet.FiveTuple) FlowID {
	return HashFiveTuple(ft.Reverse())
}

// hash2 combines a flow ID with a second word (an expected ACK number,
// an IP ID) into a register index, the way the pipeline builds the
// packet signatures of Algorithm 1.
func hash2(id FlowID, v uint64) uint32 {
	var buf [12]byte
	binary.BigEndian.PutUint32(buf[0:4], uint32(id))
	binary.BigEndian.PutUint64(buf[4:12], v)
	return crc32.Checksum(buf[:], crcTable)
}

// hashAt computes a CMS row hash: the same bytes hashed with a
// row-specific seed, emulating the independent hash units of the
// hardware sketch.
func hashAt(ft packet.FiveTuple, row uint32) uint32 {
	var buf [17]byte
	src := ft.SrcIP.As4()
	dst := ft.DstIP.As4()
	copy(buf[0:4], src[:])
	copy(buf[4:8], dst[:])
	binary.BigEndian.PutUint16(buf[8:10], ft.SrcPort)
	binary.BigEndian.PutUint16(buf[10:12], ft.DstPort)
	buf[12] = uint8(ft.Proto)
	binary.BigEndian.PutUint32(buf[13:17], 0x9e3779b9*(row+1))
	return crc32.Checksum(buf[:], crcTable)
}
