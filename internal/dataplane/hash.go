package dataplane

import (
	"encoding/binary"
	"hash/crc32"

	"repro/internal/packet"
)

// FlowID is the hash of a flow's 5-tuple — the identity the data plane
// reports to the control plane (§4).
type FlowID uint32

// crcTable mirrors the CRC32 polynomial Tofino's hash engines commonly
// use (Castagnoli). crcSum (crc_norace.go / crc_race.go) hashes with it.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FlowKey is the wire-format 5-tuple as the parser extracts it: source
// IP, destination IP, source port, destination port, protocol — 13 bytes
// in network byte order. It is a comparable array, so it works as a map
// key, and the per-packet pipeline packs it exactly once: every derived
// hash (flow ID, reversed ID, CMS rows) re-reads these bytes instead of
// re-marshalling through net/netip accessors.
type FlowKey [13]byte

// KeyOf packs a 5-tuple into its wire-format key.
//
// p4:hotpath
func KeyOf(ft packet.FiveTuple) FlowKey {
	var k FlowKey
	src := ft.SrcIP.As4()
	dst := ft.DstIP.As4()
	copy(k[0:4], src[:])
	copy(k[4:8], dst[:])
	binary.BigEndian.PutUint16(k[8:10], ft.SrcPort)
	binary.BigEndian.PutUint16(k[10:12], ft.DstPort)
	k[12] = uint8(ft.Proto)
	return k
}

// Reverse returns the key with source and destination fields swapped —
// byte-identical to KeyOf(ft.Reverse()), without touching netip.
//
// p4:hotpath
func (k FlowKey) Reverse() FlowKey {
	var r FlowKey
	copy(r[0:4], k[4:8])    // src IP <- dst IP
	copy(r[4:8], k[0:4])    // dst IP <- src IP
	copy(r[8:10], k[10:12]) // src port <- dst port
	copy(r[10:12], k[8:10]) // dst port <- src port
	r[12] = k[12]
	return r
}

// Hash computes the flow ID exactly as the paper's pipeline does: a CRC
// hash over the packed 5-tuple.
//
// p4:hotpath
func (k FlowKey) Hash() FlowID {
	return FlowID(crcSum(k[:]))
}

// hashAt computes a CMS row hash: the key's bytes hashed with a
// row-specific seed, emulating the independent hash units of the
// hardware sketch.
//
// p4:hotpath
func (k FlowKey) hashAt(row uint32) uint32 {
	var buf [17]byte
	copy(buf[0:13], k[:])
	binary.BigEndian.PutUint32(buf[13:17], 0x9e3779b9*(row+1))
	return crcSum(buf[:])
}

// HashFiveTuple computes the flow ID from a 5-tuple: a CRC hash over
// source IP, destination IP, source port, destination port and protocol.
func HashFiveTuple(ft packet.FiveTuple) FlowID {
	return KeyOf(ft).Hash()
}

// HashReverse computes the "reversed ID": the hash with the source and
// destination fields swapped. The data plane uses it to find the flow
// an acknowledgment belongs to (§4).
func HashReverse(ft packet.FiveTuple) FlowID {
	return KeyOf(ft).Reverse().Hash()
}

// hash2 combines a flow ID with a second word (an expected ACK number,
// an IP ID) into a register index, the way the pipeline builds the
// packet signatures of Algorithm 1.
//
// p4:hotpath
func hash2(id FlowID, v uint64) uint32 {
	var buf [12]byte
	binary.BigEndian.PutUint32(buf[0:4], uint32(id))
	binary.BigEndian.PutUint64(buf[4:12], v)
	return crcSum(buf[:])
}
