package dataplane

import (
	"fmt"

	"repro/internal/obs"
)

// RegisterObs wires the front-end's self-telemetry into r. At one
// shard this is exactly the single pipe's instrumentation (same metric
// names as before sharding existed). At shards > 1 it registers the
// front-end view — shard count, barrier flushes, batched views, merged
// occupancy — plus a per-shard gauge group (the registry has no label
// support, so shards are distinguished by a name infix, e.g.
// p4_pipes_shard0_ingress_copies_total).
//
// Per-shard gauges read state under the front-end mutex without
// forcing a barrier: a scrape shows the world as of the last flush
// rather than replaying packet work on the scrape thread (barrier
// points must stay driven by the simulation, not by wall-clock
// scrapes).
func (p *Pipes) RegisterObs(r *obs.Registry) {
	// Batch-shape histograms exist at every shard count: how many views
	// each drained front carried and the simulated time span it covered
	// (fill latency in simtime — deterministic, unlike wall clock).
	p.frontViews = r.NewHistogram("p4_pipes_front_views",
		"Views per front drained through the batch path, power-of-two buckets.")
	p.frontSpanNs = r.NewHistogram("p4_pipes_front_span_ns",
		"Simulated fill span (last-first timestamp, ns) per drained front, power-of-two buckets.")
	if p.n == 1 {
		p.shards[0].RegisterObs(r)
		return
	}
	r.NewGaugeFunc("p4_pipes_shards", "Configured data-plane pipes.",
		func() uint64 { return uint64(p.n) })
	r.NewGaugeFunc("p4_pipes_flushes_total", "Barrier flushes executed.",
		p.lockedGauge(func() uint64 { return p.flushes }))
	r.NewGaugeFunc("p4_pipes_batched_views_total", "TAP copies batched through the sharded front-end.",
		p.lockedGauge(func() uint64 { return p.batchedViews }))
	r.NewGaugeFunc("p4_dataplane_flow_table_occupancy", "Flow-table cells owned across all shards (as of the last barrier).",
		p.lockedGauge(p.occupiedLocked))
	r.NewGaugeFunc("p4_dataplane_flow_table_size", "Per-flow register cells per shard.",
		func() uint64 { return uint64(p.Config().FlowTableSize) })
	for i := range p.shards {
		d := p.shards[i]
		prefix := fmt.Sprintf("p4_pipes_shard%d_", i)
		help := fmt.Sprintf(" (pipe %d).", i)
		r.NewGaugeFunc(prefix+"ingress_copies_total", "TAP ingress copies processed"+help,
			p.lockedGauge(func() uint64 { return d.Stats.IngressCopies }))
		r.NewGaugeFunc(prefix+"egress_copies_total", "TAP egress copies processed"+help,
			p.lockedGauge(func() uint64 { return d.Stats.EgressCopies }))
		r.NewGaugeFunc(prefix+"rtt_samples_total", "Algorithm 1 RTT samples produced"+help,
			p.lockedGauge(func() uint64 { return d.Stats.RTTSamples }))
		r.NewGaugeFunc(prefix+"microbursts_total", "Microburst events detected"+help,
			p.lockedGauge(func() uint64 { return d.Stats.Microbursts }))
		r.NewGaugeFunc(prefix+"flow_table_occupancy", "Flow-table cells owned"+help,
			p.lockedGauge(d.OccupiedCells))
	}
}

// lockedGauge serialises a gauge read with packet batching and flush
// workers (worker replay only runs while the mutex is held, so a
// locked read never races shard state).
func (p *Pipes) lockedGauge(read func() uint64) func() uint64 {
	return func() uint64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return read()
	}
}

// occupiedLocked sums shard occupancy without forcing a barrier.
func (p *Pipes) occupiedLocked() uint64 {
	var n uint64
	for _, d := range p.shards {
		n += d.OccupiedCells()
	}
	return n
}
