//go:build race

package dataplane

import "hash/crc32"

// crcSum under the race detector delegates to the stdlib, whose
// architecture-specific assembly is not race-instrumented — the
// table-driven Go loop in crc_norace.go would pay an instrumented load
// per input byte. The heap escape the stdlib forces on its argument is
// irrelevant here (race builds assert behavior, not allocations; the
// AllocsPerRun tests are !race-gated). Both implementations are
// bit-identical (TestCRCSumMatchesStdlib pins the non-race one).
func crcSum(p []byte) uint32 {
	return crc32.Checksum(p, crcTable)
}
