// Package replay is the batch-path ingest front-end: it streams
// multi-million-packet workloads — synthetic traces or recorded binary
// traces — directly into the data plane's run-to-completion Front
// path, bypassing the netsim event loop entirely. Where the simulator
// answers "what does the pipeline measure", replay answers "how fast
// does the pipeline go": the Runner reports wall-clock packets/sec and
// Gbps, the numbers BenchmarkReplayThroughput gates in CI.
//
// The package deliberately lives outside the deterministic simulation
// scope: record timestamps are simulated time (so the pipeline's
// registers behave exactly as under the event loop), but throughput is
// measured on the wall clock, because throughput is a property of this
// machine, not of the model.
package replay

import (
	"net/netip"

	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/tap"
)

// Record is one TAP copy in trace form: exactly the fields the
// data-plane parser reads, in value form, so a trace can be recorded
// from a live simulation and replayed through the batch path without
// reconstructing full packets. The wire encoding is fixed-size
// little-endian (see recordSize and the trace file format in trace.go).
type Record struct {
	// At is the simulated nanosecond timestamp at the TAP.
	At uint64
	// Seq and Ack are the extended TCP sequence/acknowledgment numbers.
	Seq, Ack uint64
	// SrcIP and DstIP are the IPv4 addresses in network byte order.
	SrcIP, DstIP [4]byte
	// SrcPort and DstPort are the transport ports.
	SrcPort, DstPort uint16
	// TotalLen is the IPv4 total length (header + transport + payload).
	TotalLen uint16
	// IPID is the IPv4 identification field pairing the two TAP copies.
	IPID uint16
	// Proto is the IANA transport protocol number.
	Proto uint8
	// Flags carries the TCP flag bits (0 for UDP).
	Flags uint8
	// Point is the TAP position: 0 ingress, 1 egress.
	Point uint8
}

// Source produces records one at a time into a caller-owned scratch
// Record — the zero-allocation streaming contract shared by the
// synthetic generator and the trace reader.
type Source interface {
	// Next fills r with the next record and reports whether one was
	// produced. After Next returns false the source is exhausted.
	Next(r *Record) bool
}

// FromCopy captures a TAP copy into trace form.
func (r *Record) FromCopy(c tap.Copy) {
	pkt := c.Pkt
	r.At = uint64(c.At)
	r.Seq = pkt.SeqExt
	r.Ack = pkt.AckExt
	r.SrcIP = pkt.SrcIP.As4()
	r.DstIP = pkt.DstIP.As4()
	r.SrcPort = pkt.SrcPort
	r.DstPort = pkt.DstPort
	r.TotalLen = pkt.TotalLen
	r.IPID = pkt.IPID
	r.Proto = uint8(pkt.Proto)
	r.Flags = pkt.Flags
	if c.Point == tap.Egress {
		r.Point = 1
	} else {
		r.Point = 0
	}
}

// Fill decodes the record into a caller-owned scratch packet,
// overwriting every field the data-plane parser reads. Header length
// fields assume option-less headers (IHL 5, data offset 5), matching
// what the simulator emits; the payload length is derived from
// TotalLen so CarriesData/IsACKOnly classify exactly as the original
// packet did.
//
// p4:hotpath
func (r *Record) Fill(p *packet.Packet) {
	p.Proto = packet.Proto(r.Proto)
	p.SrcIP = netip.AddrFrom4(r.SrcIP)
	p.DstIP = netip.AddrFrom4(r.DstIP)
	p.SrcPort = r.SrcPort
	p.DstPort = r.DstPort
	p.IHL = 5
	p.TotalLen = r.TotalLen
	p.IPID = r.IPID
	p.SeqExt = r.Seq
	p.AckExt = r.Ack
	p.Seq = uint32(r.Seq)
	p.Ack = uint32(r.Ack)
	p.DataOffset = 5
	p.Flags = r.Flags
	overhead := packet.IPv4HeaderLen + packet.UDPHeaderLen
	if p.Proto == packet.ProtoTCP {
		overhead = packet.IPv4HeaderLen + packet.TCPHeaderLen
	}
	if n := int(r.TotalLen) - overhead; n > 0 {
		p.PayloadLen = n
	} else {
		p.PayloadLen = 0
	}
}

// CopyInto decodes the record into the scratch packet and wraps it as
// the TAP copy the front-end appends.
//
// p4:hotpath
func (r *Record) CopyInto(p *packet.Packet) tap.Copy {
	r.Fill(p)
	pt := tap.Ingress
	if r.Point == 1 {
		pt = tap.Egress
	}
	return tap.Copy{Pkt: p, Point: pt, At: simtime.Time(r.At)}
}

// WireLen is the on-the-wire size the record represents, including the
// Ethernet header — the byte count the Gbps figure is computed from.
func (r *Record) WireLen() uint64 {
	return uint64(packet.EthernetHeaderLen) + uint64(r.TotalLen)
}
