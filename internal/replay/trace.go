package replay

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace file format: an 8-byte magic ("P4TRACE1") followed by
// fixed-size little-endian records until EOF. No count field — a trace
// can be streamed to a pipe and truncation is detected structurally
// (a torn final record fails the read).
const traceMagic = "P4TRACE1"

// recordSize is the encoded size of one Record: 3×u64 + 2×IPv4 +
// 4×u16 + 3×u8 + 1 pad byte.
const recordSize = 44

// errTornTrace reports a trace whose byte length is not a whole number
// of records — the signature of an interrupted recording.
var errTornTrace = errors.New("replay: torn trace record (truncated file?)")

// encode packs the record into its 44-byte wire form.
func (r *Record) encode(b *[recordSize]byte) {
	binary.LittleEndian.PutUint64(b[0:], r.At)
	binary.LittleEndian.PutUint64(b[8:], r.Seq)
	binary.LittleEndian.PutUint64(b[16:], r.Ack)
	copy(b[24:28], r.SrcIP[:])
	copy(b[28:32], r.DstIP[:])
	binary.LittleEndian.PutUint16(b[32:], r.SrcPort)
	binary.LittleEndian.PutUint16(b[34:], r.DstPort)
	binary.LittleEndian.PutUint16(b[36:], r.TotalLen)
	binary.LittleEndian.PutUint16(b[38:], r.IPID)
	b[40] = r.Proto
	b[41] = r.Flags
	b[42] = r.Point
	b[43] = 0
}

// decode unpacks the 44-byte wire form.
func (r *Record) decode(b *[recordSize]byte) {
	r.At = binary.LittleEndian.Uint64(b[0:])
	r.Seq = binary.LittleEndian.Uint64(b[8:])
	r.Ack = binary.LittleEndian.Uint64(b[16:])
	copy(r.SrcIP[:], b[24:28])
	copy(r.DstIP[:], b[28:32])
	r.SrcPort = binary.LittleEndian.Uint16(b[32:])
	r.DstPort = binary.LittleEndian.Uint16(b[34:])
	r.TotalLen = binary.LittleEndian.Uint16(b[36:])
	r.IPID = binary.LittleEndian.Uint16(b[38:])
	r.Proto = b[40]
	r.Flags = b[41]
	r.Point = b[42]
}

// Writer streams records to a trace file. Writes are buffered; call
// Flush before closing the underlying file.
type Writer struct {
	w       *bufio.Writer
	buf     [recordSize]byte
	n       uint64
	started bool
	err     error
}

// NewWriter wraps w as a trace writer. The magic header is emitted on
// the first record, so an aborted recording with zero records leaves
// an empty (not malformed) file.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one record. The first error sticks: later calls
// return it without writing.
func (w *Writer) Write(r *Record) error {
	if w.err != nil {
		return w.err
	}
	if !w.started {
		w.started = true
		if _, err := w.w.WriteString(traceMagic); err != nil {
			w.err = err
			return err
		}
	}
	r.encode(&w.buf)
	if _, err := w.w.Write(w.buf[:]); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count reports the records written so far.
func (w *Writer) Count() uint64 { return w.n }

// Flush drains the buffer to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

// Reader streams records from a trace file. It implements Source;
// check Err after the stream ends to distinguish EOF from a torn or
// malformed trace.
type Reader struct {
	r       *bufio.Reader
	buf     [recordSize]byte
	started bool
	err     error
	done    bool
}

// NewReader wraps r as a trace reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next implements Source: it fills rec with the next record, returning
// false at EOF or on the first error (see Err).
func (rd *Reader) Next(rec *Record) bool {
	if rd.done {
		return false
	}
	if !rd.started {
		rd.started = true
		if _, err := io.ReadFull(rd.r, rd.buf[:len(traceMagic)]); err != nil {
			rd.done = true
			if err != io.EOF { // empty trace is valid: zero records
				rd.err = fmt.Errorf("replay: reading trace header: %w", err)
			}
			return false
		}
		if string(rd.buf[:len(traceMagic)]) != traceMagic {
			rd.done = true
			rd.err = fmt.Errorf("replay: not a trace file (bad magic %q)", rd.buf[:len(traceMagic)])
			return false
		}
	}
	if _, err := io.ReadFull(rd.r, rd.buf[:]); err != nil {
		rd.done = true
		if err == io.ErrUnexpectedEOF {
			rd.err = errTornTrace
		} else if err != io.EOF {
			rd.err = err
		}
		return false
	}
	rec.decode(&rd.buf)
	return true
}

// Err returns the first error encountered, or nil after a clean EOF.
func (rd *Reader) Err() error { return rd.err }
