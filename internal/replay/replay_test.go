package replay

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"

	"repro/internal/dataplane"
	"repro/internal/packet"
	"repro/internal/tap"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

// TestSynthDeterministic: two generators with identical parameters
// emit byte-identical record streams.
func TestSynthDeterministic(t *testing.T) {
	mk := func() *Synth { return &Synth{Flows: 3, Packets: 5000} }
	a, b := mk(), mk()
	var ra, rb Record
	for i := 0; ; i++ {
		oka, okb := a.Next(&ra), b.Next(&rb)
		if oka != okb {
			t.Fatalf("streams diverge in length at record %d", i)
		}
		if !oka {
			break
		}
		if ra != rb {
			t.Fatalf("record %d differs: %+v vs %+v", i, ra, rb)
		}
	}
}

// TestSynthShape checks the generator produces what it promises:
// the exact record count, monotonic timestamps, both TAP points,
// pure ACKs, and at least one retransmission.
func TestSynthShape(t *testing.T) {
	s := &Synth{Flows: 2, Packets: 4000, RetransEvery: 100}
	var (
		r                   Record
		n                   int
		lastAt              uint64
		egress, acks, datas int
		sawRetrans          bool
		prevSeq             = map[[4]byte]uint64{}
	)
	for s.Next(&r) {
		n++
		if r.At < lastAt {
			t.Fatalf("timestamp went backwards at record %d: %d < %d", n, r.At, lastAt)
		}
		lastAt = r.At
		switch {
		case r.Point == 1:
			egress++
		case r.TotalLen == 40:
			acks++
		default:
			datas++
			if r.Seq < prevSeq[r.SrcIP] {
				sawRetrans = true
			}
			if r.Seq > prevSeq[r.SrcIP] {
				prevSeq[r.SrcIP] = r.Seq
			}
		}
	}
	if n != 4000 {
		t.Fatalf("Packets=4000 produced %d records", n)
	}
	if egress == 0 || acks == 0 || datas == 0 {
		t.Fatalf("workload not mixed: %d data, %d acks, %d egress", datas, acks, egress)
	}
	if !sawRetrans {
		t.Fatal("RetransEvery=100 produced no sequence rewind")
	}
}

// TestRecordRoundTrip: encode/decode is the identity, through the
// Writer/Reader pair.
func TestRecordRoundTrip(t *testing.T) {
	src := &Synth{Flows: 3, Packets: 1000}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var recs []Record
	var r Record
	for src.Next(&r) {
		recs = append(recs, r)
		if err := w.Write(&r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("Count=%d, wrote %d", w.Count(), len(recs))
	}
	wantSize := len(traceMagic) + len(recs)*recordSize
	if buf.Len() != wantSize {
		t.Fatalf("trace size %d, want %d", buf.Len(), wantSize)
	}

	rd := NewReader(&buf)
	for i := range recs {
		if !rd.Next(&r) {
			t.Fatalf("stream ended at record %d of %d (err %v)", i, len(recs), rd.Err())
		}
		if r != recs[i] {
			t.Fatalf("record %d round-trip mismatch: %+v vs %+v", i, r, recs[i])
		}
	}
	if rd.Next(&r) {
		t.Fatal("reader produced an extra record")
	}
	if rd.Err() != nil {
		t.Fatalf("clean EOF reported error: %v", rd.Err())
	}
}

// TestReaderRejectsBadMagicAndTornTrace: malformed traces surface as
// errors, not silent truncation.
func TestReaderRejectsBadMagicAndTornTrace(t *testing.T) {
	rd := NewReader(strings.NewReader("NOTATRCE" + strings.Repeat("x", recordSize)))
	var r Record
	if rd.Next(&r) {
		t.Fatal("reader accepted bad magic")
	}
	if rd.Err() == nil {
		t.Fatal("bad magic produced no error")
	}

	var buf bytes.Buffer
	w := NewWriter(&buf)
	src := &Synth{Flows: 1, Packets: 3}
	for src.Next(&r) {
		if err := w.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()-7]
	rd = NewReader(bytes.NewReader(torn))
	n := 0
	for rd.Next(&r) {
		n++
	}
	if n != 2 {
		t.Fatalf("torn trace yielded %d whole records, want 2", n)
	}
	if rd.Err() != errTornTrace {
		t.Fatalf("torn trace error = %v, want errTornTrace", rd.Err())
	}

	// Empty input: valid zero-record trace, no error.
	rd = NewReader(strings.NewReader(""))
	if rd.Next(&r) || rd.Err() != nil {
		t.Fatalf("empty trace: next=%v err=%v", false, rd.Err())
	}
}

// TestRecordFromCopyFill: a TAP copy survives the Record round trip —
// the fields the data-plane parser reads are preserved exactly.
func TestRecordFromCopyFill(t *testing.T) {
	ft := packet.FiveTuple{
		SrcIP:   mustAddr("192.168.7.9"),
		DstIP:   mustAddr("10.20.30.40"),
		SrcPort: 12345, DstPort: 5201, Proto: packet.ProtoTCP,
	}
	orig := packet.NewTCP(ft, 99991, 417, packet.FlagACK|packet.FlagPSH, 1460)
	orig.IPID = 5151
	var r Record
	r.FromCopy(tap.Copy{Pkt: orig, Point: tap.Egress, At: 123456789})

	var got packet.Packet
	c := r.CopyInto(&got)
	if c.Point != tap.Egress || uint64(c.At) != 123456789 {
		t.Fatalf("copy metadata lost: %+v", c)
	}
	if got.FiveTuple() != ft {
		t.Fatalf("five-tuple mismatch: %v vs %v", got.FiveTuple(), ft)
	}
	if got.SeqExt != orig.SeqExt || got.AckExt != orig.AckExt ||
		got.TotalLen != orig.TotalLen || got.IPID != orig.IPID ||
		got.Flags != orig.Flags || got.PayloadLen != orig.PayloadLen ||
		got.ExpectedAck() != orig.ExpectedAck() ||
		got.CarriesData() != orig.CarriesData() ||
		got.IsACKOnly() != orig.IsACKOnly() {
		t.Fatalf("parser-visible fields differ:\n got %+v\nwant %+v", got, *orig)
	}
}

// TestRunnerMatchesPerPacketPath: replaying a synthetic source through
// the Runner's batch path leaves the pipeline in exactly the state the
// per-packet ProcessCopy path produces, at 1 and 4 shards.
func TestRunnerMatchesPerPacketPath(t *testing.T) {
	for _, shards := range []int{1, 4} {
		mkSrc := func() *Synth { return &Synth{Flows: 5, Packets: 20000, RetransEvery: 50} }
		cfg := dataplane.Config{FlowTableSize: 512}

		batch := dataplane.NewPipes(cfg, shards)
		got := Runner{Plane: batch, Batch: 100}.Run(mkSrc())

		serial := dataplane.NewPipes(cfg, shards)
		var (
			r   Record
			pkt packet.Packet
			n   uint64
		)
		src := mkSrc()
		for src.Next(&r) {
			serial.ProcessCopy(r.CopyInto(&pkt))
			n++
		}
		serial.Flush()

		if got.Packets != n {
			t.Fatalf("shards=%d: runner saw %d records, serial %d", shards, got.Packets, n)
		}
		if got.Stats != serial.StatsSnapshot() {
			t.Fatalf("shards=%d: stats diverge\n batch %+v\nserial %+v",
				shards, got.Stats, serial.StatsSnapshot())
		}
		for _, name := range batch.RegisterNames() {
			for idx := uint32(0); idx < uint32(cfg.FlowTableSize); idx++ {
				bv, _ := batch.ReadRegister(name, idx)
				sv, _ := serial.ReadRegister(name, idx)
				if bv != sv {
					t.Fatalf("shards=%d: register %s[%d] = %d via batch, %d serial",
						shards, name, idx, bv, sv)
				}
			}
		}
		if got.PPS() <= 0 || got.Gbps() <= 0 {
			t.Fatalf("throughput not measured: pps=%v gbps=%v", got.PPS(), got.Gbps())
		}
	}
}
